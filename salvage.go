package classpack

import (
	"fmt"

	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/corrupt"
	"classpack/internal/par"
)

// DamageRegion describes one damaged part of an archive found during
// salvage: the wire stream (or container section) it lies in, the byte
// offset within that stream or section (-1 when unknown), what went
// wrong, and how many classes the damage cost.
type DamageRegion struct {
	// Stream is the wire stream or container section ("container" for
	// the stream directory, "trailer" for the whole-archive checksum,
	// "classfile" for reserialization).
	Stream string `json:"stream"`
	// Offset is the byte position within Stream, -1 when unknown. For
	// checksum failures it is the stream payload's offset within the
	// container body.
	Offset int64 `json:"offset"`
	// Cause is the human-readable failure.
	Cause string `json:"cause"`
	// ClassesLost is how many classes this region cost: 0 for damage
	// decoding never touched, 1 for a single skipped class, and
	// everything from the first undecodable class onward for the region
	// that ended decoding (the format is sequential, so nothing after
	// the first decode failure can be trusted).
	ClassesLost int `json:"classes_lost"`
}

// SalvageResult is what Salvage pulled out of a damaged archive.
type SalvageResult struct {
	// Files are the recovered classes in archive order. For version-2
	// (checksummed) archives they are byte-identical to what a clean
	// unpack would have produced; version-1 archives carry no integrity
	// data, so damage that happens to decode is undetectable there.
	Files []File `json:"-"`
	// TotalClasses is the class count the archive's directory declared
	// (0 when the directory itself was unreadable).
	TotalClasses int `json:"total"`
	// Recovered == len(Files).
	Recovered int `json:"recovered"`
	// Lost = TotalClasses - Recovered.
	Lost int `json:"lost"`
	// Damage lists every damaged region found, in detection order.
	Damage []DamageRegion `json:"damage,omitempty"`
}

// Salvage decodes as much of a packed archive as possible instead of
// aborting on the first CorruptError the way Unpack does, and reports
// where the damage lies.
//
// Damage is isolated at two levels. Streams whose CRC32C fails (version
// 2 archives) or whose payload cannot be decoded are quarantined before
// class decoding starts; classes are then decoded sequentially until one
// reads quarantined or inconsistent data. Because the wire format is
// sequential and stateful, every class before that point is recovered
// byte-identically and everything after it is counted lost — salvage
// never returns a class it cannot vouch for. Version-3 archives narrow
// the failure domain further: chunks reset all model state, so a
// damaged chunk costs only its own classes and decoding resumes at the
// next chunk boundary (damage regions carry a "chunkN/" stream prefix).
// Classes that decode but fail to reserialize are skipped individually.
// On version-1 archives,
// which predate the checksums, salvage is best-effort: damage is only
// noticed when decoding trips over it, so recovered classes are not
// guaranteed byte-identical.
//
// The error return is reserved for inputs that are not a packed archive
// at all (bad magic, unknown version, undecodable scheme) and for
// invalid options; all archive damage is reported in the result.
func Salvage(data []byte, opts *Options) (*SalvageResult, error) {
	o := opts.unpackOpts()
	if err := checkConcurrency(o.Concurrency); err != nil {
		return nil, err
	}
	cres, err := core.Salvage(data, o)
	if err != nil {
		return nil, err
	}
	res := &SalvageResult{TotalClasses: cres.TotalClasses}
	if cres.Version == core.Version3 {
		// Version-3 damage is chunk-attributed: the stream name gains a
		// "chunkN/" prefix so a report distinguishes which failure domain
		// each region lies in (chunk framing, index and footer damage
		// stay unprefixed).
		for _, d := range cres.V3Damage {
			r := region(d.Err)
			if d.Chunk >= 0 {
				r.Stream = fmt.Sprintf("chunk%d/%s", d.Chunk, r.Stream)
			}
			r.ClassesLost = d.ClassesLost
			res.Damage = append(res.Damage, r)
		}
		reserializeInto(res, cres.Classes, o.Concurrency)
		return res, nil
	}
	for _, q := range cres.Quarantined {
		res.Damage = append(res.Damage, region(q))
	}
	if cres.Abort != nil {
		lost := 0
		if cres.AbortClass >= 0 {
			lost = cres.TotalClasses - cres.AbortClass
		}
		// When decoding died on a quarantined stream the abort error is
		// that stream's own quarantine entry: attribute the loss there
		// instead of reporting the same damage twice.
		attributed := false
		for i, q := range cres.Quarantined {
			if q == cres.Abort {
				res.Damage[i].ClassesLost = lost
				attributed = true
				break
			}
		}
		if !attributed {
			r := region(cres.Abort)
			r.ClassesLost = lost
			res.Damage = append(res.Damage, r)
		}
	}
	reserializeInto(res, cres.Classes, o.Concurrency)
	return res, nil
}

// reserializeInto writes the decoded classes back to class-file bytes
// and fills in the result's Files and accounting. Reserialization is
// independent per class, so a class that decoded but cannot be written
// back is skipped alone — reported as a "classfile" damage region — and
// its neighbors survive.
func reserializeInto(res *SalvageResult, classes []*classfile.ClassFile, concurrency int) {
	type written struct {
		file File
		err  error
	}
	outs := make([]written, len(classes))
	_ = par.Do(concurrency, len(classes), func(i int) error {
		raw, err := classfile.Write(classes[i])
		if err != nil {
			outs[i].err = err
			return nil
		}
		outs[i].file = File{Name: classes[i].ThisClassName() + ".class", Data: raw}
		return nil
	})
	for i := range outs {
		if outs[i].err != nil {
			res.Damage = append(res.Damage, DamageRegion{
				Stream:      "classfile",
				Offset:      -1,
				Cause:       "reserialize class " + classes[i].ThisClassName() + ": " + outs[i].err.Error(),
				ClassesLost: 1,
			})
			continue
		}
		res.Files = append(res.Files, outs[i].file)
	}
	res.Recovered = len(res.Files)
	res.Lost = res.TotalClasses - res.Recovered
}

// Jar rebuilds a conventional jar from the recovered classes, the same
// layout UnpackToJar produces for a clean archive.
func (r *SalvageResult) Jar() ([]byte, error) {
	return jarFromFiles(r.Files)
}

// region maps a corrupt.Error to the public damage shape.
func region(ce *corrupt.Error) DamageRegion {
	return DamageRegion{Stream: ce.Stream, Offset: ce.Offset, Cause: ce.Cause.Error()}
}
