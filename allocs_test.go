package classpack

import (
	"testing"

	"classpack/internal/bench"
)

// Allocation regression tests. The codec's hot paths went through an
// allocation campaign (zero-copy parsing, per-worker arenas, decoder
// caches); these tests pin generous ceilings — several times above the
// measured values — so a future change that reintroduces a per-item
// allocation in a per-file or per-instruction loop trips the test, while
// ordinary drift (map growth heuristics, runtime changes) does not.
//
// Measured at the time of writing (213_javac corpus at benchScale):
// pack ≈ 4.0k allocs, unpack ≈ 5.4k allocs; before the campaign the same
// corpus cost ≈ 28k and ≈ 16k respectively.

const (
	packAllocCeiling   = 8000  // measured ~4.0k; ceiling ≈ 2x
	unpackAllocCeiling = 11000 // measured ~5.4k; ceiling ≈ 2x
)

func allocCorpus(t *testing.T) ([][]byte, []byte) {
	t.Helper()
	c, err := bench.Load("213_javac", benchScale)
	if err != nil {
		t.Fatal(err)
	}
	files := make([][]byte, len(c.StrippedFiles))
	for i, f := range c.StrippedFiles {
		files[i] = f.Data
	}
	packed, err := Pack(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	return files, packed
}

func TestPackAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement on full corpus")
	}
	files, _ := allocCorpus(t)
	opts := DefaultOptions()
	opts.Concurrency = 1 // serial: no per-worker goroutine noise
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Pack(files, &opts); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("pack: %.0f allocs per run (%d files)", allocs, len(files))
	if allocs > packAllocCeiling {
		t.Errorf("Pack allocated %.0f times per run, ceiling %d", allocs, packAllocCeiling)
	}
}

func TestUnpackAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement on full corpus")
	}
	_, packed := allocCorpus(t)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := UnpackN(packed, 1); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("unpack: %.0f allocs per run (%d packed bytes)", allocs, len(packed))
	if allocs > unpackAllocCeiling {
		t.Errorf("Unpack allocated %.0f times per run, ceiling %d", allocs, unpackAllocCeiling)
	}
}
