GO ?= go

.PHONY: build test verify bench tables serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full hygiene gate: compile everything, vet, then run the
# whole suite under the race detector. Expected clean — the parallel
# pack/unpack pipeline and the bench corpus cache are race-stress-tested.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs the throughput benchmarks that track the parallel
# pipeline's speedup (MB/s at -j 1 vs -j NumCPU).
bench:
	$(GO) test -run=NONE -bench='Benchmark(Pack|Unpack)Throughput' -benchmem .

# serve-smoke boots a real jpackd on a loopback port, packs a synthetic
# corpus through the HTTP client twice, and checks the cache hit and the
# digest round-trip (GET /archive/{digest} must unpack cleanly).
serve-smoke:
	$(GO) run ./cmd/jpackd -smoke

# tables regenerates the paper's Tables 1-8 and Figure 2.
tables:
	$(GO) run ./cmd/benchtables
