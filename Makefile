GO ?= go

.PHONY: build test verify bench tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full hygiene gate: compile everything, vet, then run the
# whole suite under the race detector. Expected clean — the parallel
# pack/unpack pipeline and the bench corpus cache are race-stress-tested.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs the throughput benchmarks that track the parallel
# pipeline's speedup (MB/s at -j 1 vs -j NumCPU).
bench:
	$(GO) test -run=NONE -bench='Benchmark(Pack|Unpack)Throughput' -benchmem .

# tables regenerates the paper's Tables 1-8 and Figure 2.
tables:
	$(GO) run ./cmd/benchtables
