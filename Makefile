GO ?= go

.PHONY: build test lint verify bench bench-smoke bench-compare tables serve-smoke chaos-smoke drill-smoke delta-smoke fuzz-smoke fuzz-corpus

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs go vet plus classpack-vet, the custom nine-analyzer suite:
# the decoder-safety proofs (decodebound, nopanic, corrupterr,
# poolbalance) and the daemon-layer concurrency checks (ctxflow,
# guardedfield, goroutineleak, vfsdirect, balancegen). Any finding
# fails the build; intentional exceptions carry a
# //classpack:vet-allow <analyzer> <reason> comment. -timing prints the
# per-analyzer wall-time table and -budget fails the run if the suite
# (measured in-tool, so go-run compile time is not charged) exceeds
# 30s — the lint gate must stay cheap enough for a pre-push hook.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/classpack-vet -timing -budget 30s ./...

# verify is the full hygiene gate: compile everything, lint (go vet +
# classpack-vet), then run the whole suite under the race detector.
# Expected clean — the parallel pack/unpack pipeline and the bench
# corpus cache are race-stress-tested. The service and cache layers get
# an explicit second race pass: their retry/eviction paths are the most
# concurrency-sensitive in the tree.
verify: lint delta-smoke
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/serve/... ./internal/castore/...

# bench runs the throughput benchmarks that track the parallel
# pipeline's speedup (MB/s at -j 1 vs -j NumCPU).
bench:
	$(GO) test -run=NONE -bench='Benchmark(Pack|Unpack)Throughput' -benchmem .

# bench-smoke keeps the snapshot tooling from rotting: one short
# iteration of the throughput benchmarks through cmd/benchsnap, then
# schema validation of the file it produced. Runs in CI.
bench-smoke:
	$(GO) run ./cmd/benchsnap -n 1 -benchtime 1x \
		-bench '^Benchmark(Pack|Unpack)Throughput$$' -out /tmp/benchsnap-smoke.json
	$(GO) run ./cmd/benchsnap -check /tmp/benchsnap-smoke.json
	$(GO) run ./cmd/benchsnap -ratio -ratio-scale 0.25 -out /tmp/benchsnap-ratio-smoke.json
	$(GO) run ./cmd/benchsnap -check /tmp/benchsnap-ratio-smoke.json
	$(GO) run ./cmd/benchsnap -delta -delta-scale 0.25 -out /tmp/benchsnap-delta-smoke.json
	$(GO) run ./cmd/benchsnap -check /tmp/benchsnap-delta-smoke.json

# bench-compare diffs two recorded snapshots and fails on a >10%
# throughput regression:
#   make bench-compare OLD=BENCH_a.json NEW=BENCH_b.json
bench-compare:
	@test -n "$(OLD)" && test -n "$(NEW)" || \
		{ echo "usage: make bench-compare OLD=BENCH_old.json NEW=BENCH_new.json"; exit 2; }
	$(GO) run ./cmd/benchsnap -compare $(OLD) $(NEW)

# serve-smoke boots a real jpackd on a loopback port, packs a synthetic
# corpus through the HTTP client twice, and checks the cache hit and the
# digest round-trip (GET /archive/{digest} must unpack cleanly).
serve-smoke:
	$(GO) run ./cmd/jpackd -smoke

# chaos-smoke runs the fault-injection matrix in short mode: every fault
# class against every archive section on a >= 50-class corpus, asserting
# detection, byte-identical-prefix salvage, and balanced accounting.
chaos-smoke:
	$(GO) test -short -count=1 -run '^TestChaos' .

# drill-smoke runs the process-level fault drills: a simulated kill -9
# at every filesystem operation of a cache write (restart + Fsck must
# recover byte-identical objects and zero debris), disk-full degraded
# operation and auto-recovery, a 100-request thundering herd coalescing
# onto one encode, overload shedding with 429 + Retry-After, and SIGTERM
# drain under load.
drill-smoke:
	$(GO) test -count=1 -run '^TestCrashDrill|^TestFsckSweeps|^TestPutDiskFull' ./internal/castore
	$(GO) test -count=1 -run '^TestDrill' ./internal/serve

# delta-smoke drives the end-to-end patch workflow through the jpack
# CLI: pack two synthetic versions of a corpus, diff them, apply the
# patch, byte-compare the rebuilt archive, and require the patch to stay
# under 25% of the full archive at a 5% class-change rate.
delta-smoke:
	$(GO) test -count=1 -run '^TestDeltaSmoke$$' ./cmd/jpack

# fuzz-smoke gives each native fuzz harness a short budget on top of the
# checked-in seed corpora — enough to catch regressions in the
# panic-free-decoding guarantee without dominating CI time. The go tool
# accepts one -fuzz pattern per invocation, hence one line per target.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run=NONE -fuzz='^FuzzUnpack$$' -fuzztime=$(FUZZTIME) .
	$(GO) test -run=NONE -fuzz='^FuzzSalvage$$' -fuzztime=$(FUZZTIME) .
	$(GO) test -run=NONE -fuzz='^FuzzChunkIndex$$' -fuzztime=$(FUZZTIME) .
	$(GO) test -run=NONE -fuzz='^FuzzStreamsReader$$' -fuzztime=$(FUZZTIME) ./internal/streams
	$(GO) test -run=NONE -fuzz='^FuzzJazzDecode$$' -fuzztime=$(FUZZTIME) ./internal/jazz
	$(GO) test -run=NONE -fuzz='^FuzzCustomDecode$$' -fuzztime=$(FUZZTIME) ./internal/custom
	$(GO) test -run=NONE -fuzz='^FuzzReadClassFile$$' -fuzztime=$(FUZZTIME) ./internal/classfile

# fuzz-corpus regenerates the checked-in seed corpora under testdata/fuzz
# from internal/synth packs (run after wire-format changes).
fuzz-corpus:
	$(GO) run ./cmd/fuzzcorpus

# tables regenerates the paper's Tables 1-8 and Figure 2.
tables:
	$(GO) run ./cmd/benchtables
