package classpack

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"classpack/internal/core"
	"classpack/internal/corrupt"
	"classpack/internal/delta"
)

// ErrDeltaMismatch is returned (wrapped) by ApplyDelta when the patch
// was computed against a different old archive than the one supplied:
// the old-archive digest recorded in the patch does not match. The
// patch itself is well-formed; it just does not apply here.
var ErrDeltaMismatch = errors.New("classpack: patch does not apply to this archive")

// Diff computes a CJPD patch that transforms oldArchive into newArchive
// (both complete packed archives): classes of the new archive whose
// serialized bytes also appear in the old archive are recorded as
// copies by ordinal, and only added or changed classes travel in the
// patch, packed as a normal chunked payload archive. ApplyDelta
// reconstructs the new archive byte-for-byte.
//
// When both archives use the version-3 chunked layout, chunks whose
// bytes are unchanged between the versions match whole without being
// decoded — diffing two near-identical archives touches only the
// changed chunks, and Diff(a, a) decodes nothing. Only Concurrency,
// MaxDecodedBytes and MaxClassCount of opts are honored (a nil opts
// uses defaults). The new archive must be version 2 or 3; version-1
// archives (which Pack no longer emits) cannot be delta targets.
func Diff(oldArchive, newArchive []byte, opts *Options) ([]byte, error) {
	oldA, err := OpenArchiveBytes(oldArchive, opts)
	if err != nil {
		return nil, fmt.Errorf("classpack: old archive: %w", err)
	}
	newA, err := OpenArchiveBytes(newArchive, opts)
	if err != nil {
		return nil, fmt.Errorf("classpack: new archive: %w", err)
	}
	p, err := diffArchives(oldA, newA, oldArchive, newArchive, opts)
	if err != nil {
		return nil, err
	}
	return p.Encode(), nil
}

// diffArchives builds the patch from two opened archives (whose raw
// bytes the caller still holds; chunk-level matching hashes chunk
// bodies without decoding them).
func diffArchives(oldA, newA *Archive, oldArchive, newArchive []byte, opts *Options) (*delta.Patch, error) {
	if newA.version == core.Version1 {
		return nil, fmt.Errorf("classpack: version-1 archives cannot be delta targets (re-pack as version 2 or 3)")
	}
	const unassigned = -2
	ops := make([]int, newA.NumClasses())
	for i := range ops {
		ops[i] = unassigned
	}

	// Chunk-level shortcut: a new chunk whose body bytes equal an old
	// chunk's maps all its classes positionally — identical bytes decode
	// to identical classes — without decoding either side.
	usedOld := make(map[int]bool)
	if oldA.ix != nil && newA.ix != nil {
		oldByHash := make(map[[sha256.Size]byte]int, len(oldA.ix.Chunks))
		for ci := len(oldA.ix.Chunks) - 1; ci >= 0; ci-- { // first occurrence wins
			ch := oldA.ix.Chunks[ci]
			oldByHash[sha256.Sum256(oldArchive[ch.Off:ch.Off+ch.Len])] = ci
		}
		for ci, ch := range newA.ix.Chunks {
			oci, ok := oldByHash[sha256.Sum256(newArchive[ch.Off:ch.Off+ch.Len])]
			if !ok || oldA.ix.Chunks[oci].Classes != ch.Classes {
				continue
			}
			for i := 0; i < ch.Classes; i++ {
				ops[newA.ix.Start(ci)+i] = oldA.ix.Start(oci) + i
			}
			usedOld[oci] = true
		}
	}

	// Remaining new classes match old classes by content digest. The old
	// side only digests classes in chunks the shortcut did not consume
	// (their classes are already reachable positionally), so an
	// unchanged chunk costs one hash of its compressed bytes, not a
	// decode.
	var newOrds []int
	for g, op := range ops {
		if op == unassigned {
			newOrds = append(newOrds, g)
		}
	}
	var payloadFiles [][]byte
	if len(newOrds) > 0 {
		byDigest := make(map[[sha256.Size]byte]int)
		var oldOrds []int
		if oldA.ix != nil {
			for ci, ch := range oldA.ix.Chunks {
				if usedOld[ci] {
					continue
				}
				start := oldA.ix.Start(ci)
				for i := 0; i < ch.Classes; i++ {
					oldOrds = append(oldOrds, start+i)
				}
			}
		} else {
			for g := 0; g < oldA.NumClasses(); g++ {
				oldOrds = append(oldOrds, g)
			}
		}
		oldFiles, err := oldA.ExtractOrdinals(oldOrds)
		if err != nil {
			return nil, fmt.Errorf("classpack: old archive: %w", err)
		}
		for i, f := range oldFiles {
			h := sha256.Sum256(f.Data)
			if _, ok := byDigest[h]; !ok {
				byDigest[h] = oldOrds[i]
			}
		}
		newFiles, err := newA.ExtractOrdinals(newOrds)
		if err != nil {
			return nil, fmt.Errorf("classpack: new archive: %w", err)
		}
		for i, f := range newFiles {
			if g, ok := byDigest[sha256.Sum256(f.Data)]; ok {
				ops[newOrds[i]] = g
			} else {
				ops[newOrds[i]] = delta.PayloadOp
				payloadFiles = append(payloadFiles, f.Data)
			}
		}
	}

	// Added/changed classes travel as a normal chunked archive encoded
	// with the new archive's coding choices, so the payload compresses
	// with the same models the full archive would use.
	var payload []byte
	if len(payloadFiles) > 0 {
		popts := Options{
			Scheme:       newA.copts.Scheme,
			StackState:   newA.copts.StackState,
			Compress:     newA.copts.Compress,
			Preload:      newA.copts.Preload,
			ChunkClasses: core.DefaultChunkClasses,
		}
		if opts != nil {
			popts.Concurrency = opts.Concurrency
		}
		var err error
		payload, err = Pack(payloadFiles, &popts)
		if err != nil {
			return nil, fmt.Errorf("classpack: packing patch payload: %w", err)
		}
	}

	p := &delta.Patch{
		NewVersion:   newA.version,
		NewOptions:   newArchive[5],
		ChunkClasses: newA.ChunkClasses(),
		OldDigest:    sha256.Sum256(oldArchive),
		NewDigest:    sha256.Sum256(newArchive),
		Ops:          ops,
		Payload:      payload,
	}
	return p, nil
}

// ApplyDelta reconstructs the new archive from the old archive and a
// CJPD patch produced by Diff, returning bytes identical to the new
// archive Diff was given — the reconstruction is re-verified against
// the digest recorded in the patch before it is returned. Copied
// classes extract lazily from the old archive (a version-3 old archive
// decodes only the chunks the patch references); the patch payload
// decodes through the normal checked path. Only Concurrency,
// MaxDecodedBytes and MaxClassCount of opts are honored.
//
// Failures caused by the patch or archive bytes are *CorruptError
// values or wrap one; a well-formed patch built against a different old
// archive fails wrapping ErrDeltaMismatch.
func ApplyDelta(oldArchive, patch []byte, opts *Options) ([]byte, error) {
	uo := opts.unpackOpts()
	if err := checkConcurrency(uo.Concurrency); err != nil {
		return nil, err
	}
	p, err := delta.Parse(patch, core.EffectiveMaxClasses(uo))
	if err != nil {
		return nil, err
	}
	if sha256.Sum256(oldArchive) != p.OldDigest {
		return nil, fmt.Errorf("%w: patch was built against archive %s",
			ErrDeltaMismatch, hex.EncodeToString(p.OldDigest[:]))
	}
	oldA, err := OpenArchiveBytes(oldArchive, opts)
	if err != nil {
		return nil, fmt.Errorf("classpack: old archive: %w", err)
	}
	var copyOrds []int
	for _, op := range p.Ops {
		if op == delta.PayloadOp {
			continue
		}
		if op >= oldA.NumClasses() {
			return nil, corrupt.Errorf("patch", -1,
				"op copies old class %d, archive holds %d", op, oldA.NumClasses())
		}
		copyOrds = append(copyOrds, op)
	}
	copies, err := oldA.ExtractOrdinals(copyOrds)
	if err != nil {
		return nil, fmt.Errorf("classpack: old archive: %w", err)
	}
	var payload []File
	if len(p.Payload) > 0 {
		payload, err = UnpackOpts(p.Payload, opts)
		if err != nil {
			return nil, fmt.Errorf("classpack: patch payload: %w", err)
		}
	}
	if want := p.PayloadClasses(); len(payload) != want {
		return nil, corrupt.Errorf("patch", -1,
			"payload holds %d classes, ops take %d", len(payload), want)
	}
	files := make([][]byte, len(p.Ops))
	nc, np := 0, 0
	for g, op := range p.Ops {
		if op == delta.PayloadOp {
			files[g] = payload[np].Data
			np++
		} else {
			files[g] = copies[nc].Data
			nc++
		}
	}
	// Re-pack with exactly the header choices the patch recorded; the
	// packed format is deterministic, so identical classes and options
	// reproduce the new archive bit for bit.
	hdr := []byte{core.Magic[0], core.Magic[1], core.Magic[2], core.Magic[3], p.NewVersion, p.NewOptions}
	_, copts, err := core.ParseHeader(hdr)
	if err != nil {
		return nil, err
	}
	popts := Options{
		Scheme:       copts.Scheme,
		StackState:   copts.StackState,
		Compress:     copts.Compress,
		Preload:      copts.Preload,
		Concurrency:  uo.Concurrency,
		ChunkClasses: p.ChunkClasses,
	}
	out, err := Pack(files, &popts)
	if err != nil {
		return nil, fmt.Errorf("classpack: reassembling archive: %w", err)
	}
	if sha256.Sum256(out) != p.NewDigest {
		return nil, corrupt.Errorf("patch", -1,
			"reconstructed archive digest differs from the one the patch records")
	}
	return out, nil
}

// DeltaSummary describes a parsed CJPD patch without applying it.
type DeltaSummary struct {
	NewVersion     byte   // container version of the reconstructed archive
	NewClasses     int    // classes in the reconstructed archive
	CopiedClasses  int    // satisfied from the old archive
	PayloadClasses int    // carried in the patch payload
	PayloadBytes   int    // size of the embedded payload archive
	OldDigest      string // hex sha256 of the old archive
	NewDigest      string // hex sha256 of the new archive
}

// DescribeDelta parses a CJPD patch and reports what it would do. Only
// MaxClassCount of opts is honored (it caps the patch's class count).
func DescribeDelta(patch []byte, opts *Options) (*DeltaSummary, error) {
	p, err := delta.Parse(patch, core.EffectiveMaxClasses(opts.unpackOpts()))
	if err != nil {
		return nil, err
	}
	carried := p.PayloadClasses()
	return &DeltaSummary{
		NewVersion:     p.NewVersion,
		NewClasses:     len(p.Ops),
		CopiedClasses:  len(p.Ops) - carried,
		PayloadClasses: carried,
		PayloadBytes:   len(p.Payload),
		OldDigest:      hex.EncodeToString(p.OldDigest[:]),
		NewDigest:      hex.EncodeToString(p.NewDigest[:]),
	}, nil
}
