package classpack

import (
	"bytes"
	"errors"
	"hash/crc32"
	"runtime"
	"testing"

	"classpack/internal/encoding/varint"
)

// bombArchive builds a syntactically valid archive at the given wire
// version whose stream directory claims rawLen decoded bytes backed by
// an empty payload. Version 2 bombs carry correct checksums, so they
// reach the budget check rather than dying at the CRC gate.
func bombArchive(t *testing.T, rawLen uint64, version byte) []byte {
	t.Helper()
	packed, err := Pack(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bomb := append([]byte(nil), packed[:6]...) // real magic/version/options header
	bomb[4] = version
	var body []byte
	body = varint.AppendUint(body, 1) // stream count
	name := "class.meta"
	body = varint.AppendUint(body, uint64(len(name)))
	body = append(body, name...)
	body = varint.AppendUint(body, rawLen) // claimed decoded size
	body = append(body, 1)                 // coding: store
	body = varint.AppendUint(body, 0)      // encoded length: nothing behind the claim
	if version >= 2 {
		castagnoli := crc32.MakeTable(crc32.Castagnoli)
		appendCRC := func(b []byte, c uint32) []byte {
			return append(b, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
		}
		body = appendCRC(body, crc32.Checksum(nil, castagnoli)) // empty payload CRC
		body = appendCRC(body, crc32.Checksum(body, castagnoli))
	}
	return append(bomb, body...)
}

// TestDecompressionBombFailsFast pins the bomb defense at both wire
// versions: a ~40-byte archive claiming a 4 GiB stream must be rejected
// at the directory walk — with ErrTooLarge, and without allocating
// anywhere near the claimed size.
func TestDecompressionBombFailsFast(t *testing.T) {
	for _, version := range []byte{1, 2} {
		bomb := bombArchive(t, 4<<30, version)

		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		_, err := Unpack(bomb)
		runtime.ReadMemStats(&after)

		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("v%d: Unpack(bomb) = %v, want ErrTooLarge", version, err)
		}
		if _, ok := AsCorrupt(err); !ok {
			t.Fatalf("v%d: bomb rejection is not a CorruptError: %v", version, err)
		}
		// Rejection happens before any stream materializes; the whole call
		// should stay within a modest constant, not the 4 GiB claim.
		if delta := after.TotalAlloc - before.TotalAlloc; delta > 1<<20 {
			t.Fatalf("v%d: rejecting the bomb allocated %d bytes", version, delta)
		}
	}
}

// TestOpenArchiveSizeBomb pins the lazy-open defense for version-1/2
// archives (which have no chunk framing, so OpenArchive falls back to
// an eager whole-body read): a hostile caller-supplied size over a tiny
// reader must be rejected against the decode budget in O(1) memory, not
// allocated up front.
func TestOpenArchiveSizeBomb(t *testing.T) {
	packed, err := Pack(sample(t), nil) // version 2, a few KiB
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(packed)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err = OpenArchive(r, 4<<30, nil) // claims 4 GiB backed by the small reader
	runtime.ReadMemStats(&after)

	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("OpenArchive(hostile size) = %v, want ErrTooLarge", err)
	}
	if _, ok := AsCorrupt(err); !ok {
		t.Fatalf("size-bomb rejection is not a CorruptError: %v", err)
	}
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 1<<20 {
		t.Fatalf("rejecting the size bomb allocated %d bytes", delta)
	}

	// A size merely inflated beyond the reader (but within budget) must
	// fail as corruption — short read — after allocating only what
	// actually arrived.
	if _, err := OpenArchive(bytes.NewReader(packed), int64(len(packed))+100, nil); err == nil {
		t.Fatal("OpenArchive accepted a size larger than the reader")
	} else if _, ok := AsCorrupt(err); !ok {
		t.Fatalf("short-read rejection is not a CorruptError: %v", err)
	}

	// And the honest size still opens.
	if _, err := OpenArchive(bytes.NewReader(packed), int64(len(packed)), nil); err != nil {
		t.Fatalf("honest open: %v", err)
	}
}

// TestMaxDecodedBytesOption checks the per-call override: a claim that
// fits the default 1 GiB budget still fails against a caller cap.
func TestMaxDecodedBytesOption(t *testing.T) {
	bomb := bombArchive(t, 1<<20, 2)
	if _, err := Unpack(bomb); errors.Is(err, ErrTooLarge) {
		// The 1 MiB claim is under the default budget; it must fail for
		// a different reason (empty payload), not the cap.
		t.Fatalf("1 MiB claim hit the default cap: %v", err)
	}
	opts := &Options{MaxDecodedBytes: 1 << 16}
	_, err := UnpackOpts(bomb, opts)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("UnpackOpts(bomb, 64KiB cap) = %v, want ErrTooLarge", err)
	}
}

// TestMaxClassCountOption checks the materialization cap: a valid
// archive with a small class-count cap fails with ErrTooLarge before
// decoding any class.
func TestMaxClassCountOption(t *testing.T) {
	files := sample(t)
	if len(files) < 3 {
		t.Fatalf("corpus too small: %d files", len(files))
	}
	files = files[:3]
	packed, err := Pack(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack(packed); err != nil {
		t.Fatalf("pristine archive: %v", err)
	}
	_, err = UnpackOpts(packed, &Options{MaxClassCount: 2})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("UnpackOpts(3 classes, cap 2) = %v, want ErrTooLarge", err)
	}
}
