// Eager class loading (§11 of the paper): instead of caching a downloaded
// archive and loading classes on demand, classes are defined into the VM
// as they arrive off the wire. For that to work without blocking, each
// class's superclass must appear in the archive before the class itself.
//
// This example compiles an inheritance-heavy program, orders the classes
// superclass-first with classpack.OrderForEagerLoading, packs them, and
// then streams the archive with classpack.UnpackEach: as each class is
// decoded it is immediately "defined" into the embedded interpreter, and
// the program starts the moment everything is resident.
package main

import (
	"fmt"
	"log"
	"os"

	"classpack"
	"classpack/internal/classfile"
	"classpack/internal/minijava"
)

const program = `
class Main {
    public static void main(String[] args) {
        Shape s;
        s = new Circle();
        System.out.println(s.area(10));
        s = new Square();
        System.out.println(s.area(10));
        s = new DoubleSquare();
        System.out.println(s.area(10));
    }
}
class Shape {
    public int area(int size) { return 0; }
}
class Circle extends Shape {
    public int area(int r) { return 314 * r * r / 100; }
}
class Square extends Shape {
    public int area(int side) { return side * side; }
}
class DoubleSquare extends Square {
    public int area(int side) { return 2 * side * side; }
}
`

func main() {
	cfs, err := minijava.Compile(program, minijava.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var files [][]byte
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			log.Fatal(err)
		}
		files = append(files, data)
	}

	// §11: "we should make sure that the superclass of X ... appears in
	// the archive before X."
	ordered, err := classpack.OrderForEagerLoading(files)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("archive order (superclass before subclass):")
	for i, data := range ordered {
		cf, err := classfile.Parse(data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d. %-14s extends %s\n", i+1, cf.ThisClassName(), cf.SuperClassName())
	}

	packed, err := classpack.Pack(ordered, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npacked archive: %d bytes\n\n", len(packed))

	// Stream-decode: UnpackEach hands over each class the moment it is
	// complete, so the loader never needs the whole archive in memory.
	var loaded []*classfile.ClassFile
	defined := map[string]bool{"java/lang/Object": true}
	fmt.Println("eager loading as classes arrive:")
	err = classpack.UnpackEach(packed, func(f classpack.File) error {
		cf, err := classfile.Parse(f.Data)
		if err != nil {
			return err
		}
		// The superclass is always already defined, so defineClass never
		// blocks — the §11 deadlock cannot happen with this ordering.
		if super := cf.SuperClassName(); !defined[super] {
			return fmt.Errorf("ordering violated: %s arrived before its superclass %s",
				cf.ThisClassName(), super)
		}
		defined[cf.ThisClassName()] = true
		loaded = append(loaded, cf)
		fmt.Printf("  defined %-14s (%d classes resident)\n", cf.ThisClassName(), len(loaded))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nall classes resident; starting the program:")
	interp := minijava.NewInterp(os.Stdout, loaded)
	if err := interp.RunMain("Main"); err != nil {
		log.Fatal(err)
	}
}
