// Reference-encoding schemes: an interactive version of the paper's
// Table 3/Table 4 ablations. The same application is packed under each
// decodable §5.1 scheme, with and without the §7.1 stack-state
// optimization, showing how each design decision earns its bytes.
package main

import (
	"fmt"
	"log"

	"classpack"
	"classpack/internal/classfile"
	"classpack/internal/synth"
)

func main() {
	profile, err := synth.ProfileByName("213_javac")
	if err != nil {
		log.Fatal(err)
	}
	cfs, err := synth.Generate(profile, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	var files [][]byte
	raw := 0
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			log.Fatal(err)
		}
		files = append(files, data)
		raw += len(data)
	}
	fmt.Printf("corpus: %d classes, %d bytes (javac-like workload)\n\n", len(cfs), raw)

	schemes := []struct {
		name   string
		scheme classpack.Scheme
	}{
		{"Simple (fixed 2-byte ids)", classpack.SchemeSimple},
		{"Basic (compact fixed ids)", classpack.SchemeBasic},
		{"Move-to-front", classpack.SchemeMTFBasic},
		{"MTF + transients", classpack.SchemeMTFTransients},
		{"MTF + use context", classpack.SchemeMTFContext},
		{"MTF + transients + context", classpack.SchemeMTFFull},
	}
	fmt.Printf("%-28s %12s %12s\n", "reference scheme", "no stack st.", "stack state")
	var base int
	for _, s := range schemes {
		var sizes [2]int
		for i, ss := range []bool{false, true} {
			opts := classpack.Options{Scheme: s.scheme, StackState: ss, Compress: true}
			packed, err := classpack.Pack(files, &opts)
			if err != nil {
				log.Fatal(err)
			}
			sizes[i] = len(packed)
		}
		if base == 0 {
			base = sizes[0]
		}
		fmt.Printf("%-28s %8d B    %8d B   (%.1f%% vs Simple)\n",
			s.name, sizes[0], sizes[1], 100*float64(sizes[1])/float64(base))
	}

	// Every variant decodes back to the identical canonical classes.
	opts := classpack.DefaultOptions()
	packed, err := classpack.Pack(files, &opts)
	if err != nil {
		log.Fatal(err)
	}
	out, err := classpack.Unpack(packed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndefault configuration decodes %d classes, %d -> %d bytes (%.0f%%)\n",
		len(out), raw, len(packed), 100*float64(len(packed))/float64(raw))
}
