// Quickstart: compile a small Java-subset program to real class files,
// pack them with the classpack wire format, unpack them, and verify the
// round trip is byte-exact against the canonicalized (stripped) input.
package main

import (
	"bytes"
	"fmt"
	"log"

	"classpack"
	"classpack/internal/classfile"
	"classpack/internal/minijava"
)

const program = `
class Main {
    public static void main(String[] args) {
        System.out.println("factorial of 10:");
        System.out.println(new Fac().compute(10));
    }
}
class Fac {
    public int compute(int num) {
        int result;
        if (num < 1) result = 1;
        else result = num * (this.compute(num - 1));
        return result;
    }
}
`

func main() {
	// Compile the program into ordinary .class file bytes.
	cfs, err := minijava.Compile(program, minijava.CompileOptions{SourceFile: "Fac.java"})
	if err != nil {
		log.Fatal(err)
	}
	var files [][]byte
	total := 0
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			log.Fatal(err)
		}
		files = append(files, data)
		total += len(data)
		fmt.Printf("compiled %-12s %5d bytes\n", cf.ThisClassName()+".class", len(data))
	}

	// Pack with the paper's default configuration (move-to-front with
	// transients and stack-state contexts, per-stream DEFLATE).
	packed, err := classpack.Pack(files, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npacked archive: %d bytes (%.0f%% of the raw classes)\n",
		len(packed), 100*float64(len(packed))/float64(total))

	// Unpack and verify: the output is exactly the stripped input.
	out, err := classpack.Unpack(packed)
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range out {
		want, err := classpack.Strip(files[i])
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(f.Data, want) {
			log.Fatalf("%s differs after the round trip", f.Name)
		}
		if err := classpack.Verify(f.Data); err != nil {
			log.Fatalf("%s: %v", f.Name, err)
		}
		fmt.Printf("verified %-12s %5d bytes (byte-identical to stripped input)\n",
			f.Name, len(f.Data))
	}

	// The program still runs after the round trip.
	restored := make([]*classfile.ClassFile, len(out))
	for i, f := range out {
		if restored[i], err = classfile.Parse(f.Data); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nrunning the unpacked program:")
	interp := minijava.NewInterp(logWriter{}, restored)
	if err := interp.RunMain("Main"); err != nil {
		log.Fatal(err)
	}
}

type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print("  | " + string(p))
	return len(p), nil
}
