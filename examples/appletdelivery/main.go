// Applet delivery: the paper's motivating scenario (§1). A Java
// application must reach a client over a slow mobile or modem link; this
// example builds a realistic multi-class application, packages it as a
// jar, a j0r.gz (whole-archive gzip, §2.1) and a packed archive, and
// reports the transmission time of each at modem and GSM line rates.
package main

import (
	"fmt"
	"log"

	"classpack"
	"classpack/internal/archive"
	"classpack/internal/classfile"
	"classpack/internal/strip"
	"classpack/internal/synth"
)

func main() {
	// An icebrowserbean-sized application (~226 KB of classfiles, Table 1).
	profile, err := synth.ProfileByName("icebrowserbean")
	if err != nil {
		log.Fatal(err)
	}
	cfs, err := synth.Generate(profile, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application: %d classes (HTML browser bean scenario)\n\n", len(cfs))

	// As-distributed files, then the stripped forms every wire format uses.
	var rawFiles [][]byte
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			log.Fatal(err)
		}
		rawFiles = append(rawFiles, data)
	}
	if err := strip.ApplyAll(cfs, strip.Options{}); err != nil {
		log.Fatal(err)
	}
	var files []archive.File
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			log.Fatal(err)
		}
		files = append(files, archive.File{Name: cf.ThisClassName() + ".class", Data: data})
	}

	jar, err := archive.WriteJar(files)
	if err != nil {
		log.Fatal(err)
	}
	j0rgz, err := archive.WriteJ0rGz(files)
	if err != nil {
		log.Fatal(err)
	}
	packed, err := classpack.Pack(rawFiles, nil)
	if err != nil {
		log.Fatal(err)
	}

	links := []struct {
		name string
		bps  float64
	}{
		{"9.6 kbit/s GSM data", 9600},
		{"28.8 kbit/s modem", 28800},
		{"128 kbit/s ISDN", 128000},
	}
	fmt.Printf("%-22s %10s %s\n", "format", "size", "transmission time")
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"jar (per-file gzip)", jar},
		{"j0r.gz (whole gzip)", j0rgz},
		{"packed (this paper)", packed},
	} {
		fmt.Printf("%-22s %7d B ", f.name, len(f.data))
		for _, l := range links {
			secs := float64(len(f.data)) * 8 / l.bps
			fmt.Printf(" %6.1fs@%s", secs, l.name[:4])
		}
		fmt.Println()
	}
	fmt.Printf("\npacked archive is %.0f%% of the jar — a %0.1fx faster download\n",
		100*float64(len(packed))/float64(len(jar)),
		float64(len(jar))/float64(len(packed)))

	// Non-class resources travel in a plain jar next to the packed archive
	// (§12); signatures must be computed over the decompressed classes.
	stats, err := classpack.PackStats(rawFiles, nil)
	if err != nil {
		log.Fatal(err)
	}
	total := stats.Strings + stats.Opcodes + stats.Ints + stats.Refs + stats.Misc
	fmt.Printf("\nwhere the packed bytes go (Table 6 breakdown):\n")
	fmt.Printf("  strings %3.0f%%  opcodes %3.0f%%  ints %3.0f%%  refs %3.0f%%  misc %3.0f%%\n",
		100*float64(stats.Strings)/float64(total), 100*float64(stats.Opcodes)/float64(total),
		100*float64(stats.Ints)/float64(total), 100*float64(stats.Refs)/float64(total),
		100*float64(stats.Misc)/float64(total))
}
