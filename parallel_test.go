package classpack

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
)

// concurrencyLevels is the ladder the determinism tests sweep: the
// serial path, a fixed small pool, an oversubscribed pool, and
// whatever this machine calls "all cores".
func concurrencyLevels() []int {
	levels := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		levels = append(levels, n)
	}
	return levels
}

// TestPackDeterministicAcrossConcurrency packs one corpus at every
// worker count and requires byte-identical archives: parallelism is a
// local performance knob, never a format input.
func TestPackDeterministicAcrossConcurrency(t *testing.T) {
	files := sample(t)
	var want []byte
	for _, j := range concurrencyLevels() {
		opts := DefaultOptions()
		opts.Concurrency = j
		packed, err := Pack(files, &opts)
		if err != nil {
			t.Fatalf("Concurrency=%d: %v", j, err)
		}
		if want == nil {
			want = packed
			continue
		}
		if !bytes.Equal(packed, want) {
			t.Fatalf("Concurrency=%d: archive differs from serial archive (%d vs %d bytes)",
				j, len(packed), len(want))
		}
	}
}

// TestUnpackDeterministicAcrossConcurrency unpacks one archive at every
// worker count and requires Unpack(Pack(x)) == Strip(x) file-for-file
// at each level.
func TestUnpackDeterministicAcrossConcurrency(t *testing.T) {
	files := sample(t)
	packed, err := Pack(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	stripped := make([][]byte, len(files))
	for i, data := range files {
		if stripped[i], err = Strip(data); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range concurrencyLevels() {
		out, err := UnpackN(packed, j)
		if err != nil {
			t.Fatalf("UnpackN(j=%d): %v", j, err)
		}
		if len(out) != len(files) {
			t.Fatalf("UnpackN(j=%d): %d files, want %d", j, len(out), len(files))
		}
		for i, f := range out {
			if !bytes.Equal(f.Data, stripped[i]) {
				t.Fatalf("UnpackN(j=%d): file %d (%s) differs from Strip(x)", j, i, f.Name)
			}
		}
	}
}

// TestPackStatsDeterministicAcrossConcurrency covers the measurement
// path, whose trial codings also fan out.
func TestPackStatsDeterministicAcrossConcurrency(t *testing.T) {
	files := sample(t)
	var want Stats
	for _, j := range concurrencyLevels() {
		opts := DefaultOptions()
		opts.Concurrency = j
		s, err := PackStats(files, &opts)
		if err != nil {
			t.Fatalf("Concurrency=%d: %v", j, err)
		}
		if j == 1 {
			want = s
		} else if s != want {
			t.Fatalf("Concurrency=%d: stats %+v differ from serial %+v", j, s, want)
		}
	}
}

// TestPackParallelErrorMatchesSerial pins the error contract: the
// parallel pipeline reports the same (lowest-index) failure the serial
// loop would.
func TestPackParallelErrorMatchesSerial(t *testing.T) {
	files := sample(t)
	if len(files) < 3 {
		t.Skip("corpus too small")
	}
	files[2] = []byte{0xde, 0xad}
	files[len(files)-1] = []byte{0xbe, 0xef}
	var serialErr error
	for _, j := range concurrencyLevels() {
		opts := DefaultOptions()
		opts.Concurrency = j
		_, err := Pack(files, &opts)
		if err == nil {
			t.Fatalf("Concurrency=%d: corrupt input accepted", j)
		}
		if j == 1 {
			serialErr = err
		} else if err.Error() != serialErr.Error() {
			t.Fatalf("Concurrency=%d: error %q, serial error %q", j, err, serialErr)
		}
	}
}

// TestVerifyAll checks the parallel verifier fan-out keeps per-file
// error slots aligned with its input.
func TestVerifyAll(t *testing.T) {
	files := sample(t)
	files = append(files, []byte{1, 2, 3})
	for _, j := range []int{1, 4} {
		errs := VerifyAll(files, false, j)
		if len(errs) != len(files) {
			t.Fatalf("j=%d: %d error slots for %d files", j, len(errs), len(files))
		}
		for i, err := range errs[:len(errs)-1] {
			if err != nil {
				t.Fatalf("j=%d: valid file %d rejected: %v", j, i, err)
			}
		}
		if errs[len(errs)-1] == nil {
			t.Fatalf("j=%d: corrupt file accepted", j)
		}
	}
	deep := VerifyAll(files[:1], true, 0)
	if deep[0] != nil {
		t.Fatalf("deep verify rejected valid file: %v", deep[0])
	}
}

// TestUnpackToJarNDeterministic covers the jar rebuild path at several
// worker counts.
func TestUnpackToJarNDeterministic(t *testing.T) {
	files := sample(t)
	packed, err := Pack(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, j := range []int{1, 3, 0} {
		jar, err := UnpackToJarN(packed, j)
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		if want == nil {
			want = jar
		} else if !bytes.Equal(jar, want) {
			t.Fatalf("j=%d: jar differs across concurrency", j)
		}
	}
}

// TestConcurrentPackUnpackSharedInput stresses whole-API thread safety:
// many goroutines pack and unpack the same shared input slice at once.
// Run with -race to make this a hygiene check.
func TestConcurrentPackUnpackSharedInput(t *testing.T) {
	files := sample(t)
	packed, err := Pack(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			opts := DefaultOptions()
			opts.Concurrency = 1 + g%3
			p, err := Pack(files, &opts)
			if err != nil {
				done <- err
				return
			}
			if !bytes.Equal(p, packed) {
				done <- fmt.Errorf("goroutine %d: archive differs", g)
				return
			}
			if _, err := UnpackN(p, 1+g%3); err != nil {
				done <- err
				return
			}
			done <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
