package classpack

import (
	"errors"
	"testing"

	"classpack/internal/classfile"
	"classpack/internal/synth"
)

// fuzzSeedPack builds a small valid archive to seed the fuzzer with
// real wire-format structure (the checked-in corpus under
// testdata/fuzz adds more, generated from internal/synth packs).
func fuzzSeedPack(f *testing.F, opts *Options) []byte {
	f.Helper()
	p, err := synth.ProfileByName("209_db")
	if err != nil {
		f.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.02)
	if err != nil {
		f.Fatal(err)
	}
	files := make([][]byte, len(cfs))
	for i, cf := range cfs {
		if files[i], err = classfile.Write(cf); err != nil {
			f.Fatal(err)
		}
	}
	packed, err := Pack(files, opts)
	if err != nil {
		f.Fatal(err)
	}
	return packed
}

// FuzzUnpack feeds arbitrary bytes to the full unpack pipeline. The
// invariant under test: no input panics or blows past the configured
// resource caps — every failure is an error, and cap failures match
// ErrTooLarge.
func FuzzUnpack(f *testing.F) {
	f.Add(fuzzSeedPack(f, nil))
	noSS := DefaultOptions()
	noSS.StackState = false
	noSS.Compress = false
	f.Add(fuzzSeedPack(f, &noSS))
	f.Add([]byte("CJP1"))
	f.Add([]byte{})

	// Caps are deliberately small so the fuzzer proves them: any input
	// that decodes more than this is itself the bug.
	opts := &Options{Concurrency: 1, MaxDecodedBytes: 16 << 20, MaxClassCount: 1 << 10}
	f.Fuzz(func(t *testing.T, data []byte) {
		files, err := UnpackOpts(data, opts)
		if err != nil {
			if _, ok := AsCorrupt(err); !ok && errors.Is(err, ErrTooLarge) {
				t.Fatalf("ErrTooLarge outside a CorruptError chain: %v", err)
			}
			return
		}
		if len(files) > 1<<10 {
			t.Fatalf("decoded %d classes past MaxClassCount", len(files))
		}
	})
}
