package classpack

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/faultinject"
	"classpack/internal/streams"
	"classpack/internal/synth"
)

// chaosCorpusOnce caches the chaos corpus: generating and packing a
// 50+-class archive once keeps the fault matrix fast enough to run in
// full under -race.
var chaosCorpusOnce struct {
	sync.Once
	packed []byte // version-2 archive
	clean  []File // pristine unpack, the salvage oracle
	err    error
}

// chaosCorpus returns a packed >= 50-class synthetic archive and its
// clean unpack.
func chaosCorpus(t testing.TB) (packed []byte, clean []File) {
	t.Helper()
	c := &chaosCorpusOnce
	c.Do(func() {
		p, err := synth.ProfileByName("202_jess")
		if err != nil {
			c.err = err
			return
		}
		cfs, err := synth.GenerateStripped(p, 1.0)
		if err != nil {
			c.err = err
			return
		}
		files := make([][]byte, len(cfs))
		for i, cf := range cfs {
			if files[i], err = classfile.Write(cf); err != nil {
				c.err = err
				return
			}
		}
		if c.packed, err = Pack(files, nil); err != nil {
			c.err = err
			return
		}
		c.clean, c.err = Unpack(c.packed)
	})
	if c.err != nil {
		t.Fatal(c.err)
	}
	if len(c.clean) < 50 {
		t.Fatalf("chaos corpus has %d classes, want >= 50", len(c.clean))
	}
	return c.packed, c.clean
}

// checkSalvage runs Salvage on a damaged version-2 archive and asserts
// the invariants every fault must preserve: no panic (by construction),
// the accounting identity recovered + lost == total, and the prefix
// guarantee — every recovered class is byte-identical to the clean
// unpack, in order. It returns the result for fault-specific checks.
func checkSalvage(t *testing.T, damaged []byte, clean []File) *SalvageResult {
	t.Helper()
	res := checkSalvageAccounting(t, damaged, clean)
	for i, f := range res.Files {
		if f.Name != clean[i].Name || !bytes.Equal(f.Data, clean[i].Data) {
			t.Fatalf("recovered class %d (%s) is not byte-identical to the clean unpack", i, f.Name)
		}
	}
	return res
}

// checkSalvageAccounting asserts only the invariants every archive
// version can promise: no panic, no hard error, and consistent
// accounting. Version-1 archives carry no integrity data, so a fault
// that happens not to derail decoding yields plausible-but-wrong bytes
// the decoder cannot detect — the gap the version-2 checksums close —
// and the byte-identity check does not apply to them.
func checkSalvageAccounting(t *testing.T, damaged []byte, clean []File) *SalvageResult {
	t.Helper()
	res, err := Salvage(damaged, &Options{})
	if err != nil {
		t.Fatalf("Salvage returned a hard error: %v", err)
	}
	if res.Recovered != len(res.Files) {
		t.Fatalf("Recovered = %d but %d files", res.Recovered, len(res.Files))
	}
	if res.Recovered+res.Lost != res.TotalClasses {
		t.Fatalf("recovered %d + lost %d != total %d", res.Recovered, res.Lost, res.TotalClasses)
	}
	if res.TotalClasses != 0 && res.TotalClasses != len(clean) {
		t.Fatalf("TotalClasses = %d, corpus has %d", res.TotalClasses, len(clean))
	}
	return res
}

// damageNames collects the streams named in a damage report.
func damageNames(res *SalvageResult) map[string]bool {
	names := make(map[string]bool, len(res.Damage))
	for _, d := range res.Damage {
		names[d.Stream] = true
	}
	return names
}

// TestChaosMatrix is the fault-injection matrix of the acceptance
// criteria: each fault class applied at every stream-section boundary of
// a >= 50-class archive. Salvage must never panic, must keep the
// recovered+lost == total identity, must only return classes that are
// byte-identical to the clean unpack, and must name the damaged region.
// In -short mode (make chaos-smoke) the matrix subsamples boundaries.
func TestChaosMatrix(t *testing.T) {
	packed, clean := chaosCorpus(t)
	sections, err := streams.Sections(packed[6:], true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) < 10 {
		t.Fatalf("only %d sections in chaos corpus", len(sections))
	}
	stride := 1
	if testing.Short() {
		stride = 5
	}
	for si := 0; si < len(sections); si += stride {
		sect := sections[si]
		// Archive offset of the section payload: 6 header bytes + the
		// payload's offset within the container body.
		off := 6 + int(sect.Off)
		faults := []faultinject.Fault{
			faultinject.BitFlip{Off: off, Bit: 3},
			faultinject.Truncate{Off: off},
			faultinject.ZeroPage{Off: off, Len: 32},
			faultinject.DupBlock{Off: off, Len: 16},
		}
		for _, fault := range faults {
			t.Run(sect.Name+"/"+fault.Name(), func(t *testing.T) {
				res := checkSalvage(t, fault.Apply(packed), clean)
				if len(res.Damage) == 0 {
					t.Fatalf("fault %s in section %s produced no damage report", fault.Name(), sect.Name)
				}
				// The report must implicate the physically damaged place:
				// the targeted stream itself, or — when the fault spills
				// into framing (truncation, inserted or zeroed directory
				// bytes) — the container, trailer, or a later stream.
				names := damageNames(res)
				if !names[sect.Name] && !names["container"] && !names["trailer"] {
					implicated := false
					for _, later := range sections[si:] {
						if names[later.Name] {
							implicated = true
							break
						}
					}
					if !implicated {
						t.Fatalf("damage report %v does not implicate section %s or its framing",
							res.Damage, sect.Name)
					}
				}
			})
		}
	}
}

// TestChaosTrailerOnly pins the localization payoff: damage confined to
// the trailer checksum costs zero classes — everything recovers, and the
// report names the trailer.
func TestChaosTrailerOnly(t *testing.T) {
	packed, clean := chaosCorpus(t)
	flip := faultinject.BitFlip{Off: len(packed) - 2, Bit: 0}
	res := checkSalvage(t, flip.Apply(packed), clean)
	if res.Recovered != len(clean) || res.Lost != 0 {
		t.Fatalf("trailer-only damage lost classes: recovered %d, lost %d", res.Recovered, res.Lost)
	}
	if !damageNames(res)["trailer"] {
		t.Fatalf("trailer damage not reported: %v", res.Damage)
	}
}

// TestChaosPristine pins that salvage of an undamaged archive is a
// clean, complete unpack with an empty damage report.
func TestChaosPristine(t *testing.T) {
	packed, clean := chaosCorpus(t)
	res := checkSalvage(t, packed, clean)
	if res.Recovered != len(clean) || res.Lost != 0 || len(res.Damage) != 0 {
		t.Fatalf("pristine archive salvaged dirty: recovered %d, lost %d, damage %v",
			res.Recovered, res.Lost, res.Damage)
	}
}

// TestChaosVersion1 runs the bit-flip ladder over a legacy (no
// checksum) archive. Without integrity data a flip is only detected when
// decoding trips over it; flips that happen to decode produce silently
// wrong bytes, so only the accounting invariants apply here. That gap —
// observed directly by this test — is what the version-2 checksums
// close, and TestChaosMatrix holds version 2 to the stronger
// byte-identical-prefix guarantee.
func TestChaosVersion1(t *testing.T) {
	_, clean := chaosCorpus(t)
	legacy := packLegacy(t, clean)
	cleanLegacy, err := Unpack(legacy)
	if err != nil {
		t.Fatal(err)
	}
	stride := len(legacy) / 40
	if testing.Short() {
		stride = len(legacy) / 8
	}
	for off := 6; off < len(legacy); off += stride {
		flip := faultinject.BitFlip{Off: off, Bit: 5}
		t.Run(flip.Name(), func(t *testing.T) {
			checkSalvageAccounting(t, flip.Apply(legacy), cleanLegacy)
		})
	}
}

// TestChaosRandomPlan sweeps seeded random faults over the archive so
// the matrix is not limited to hand-picked boundaries; the seed makes
// any failure replayable.
func TestChaosRandomPlan(t *testing.T) {
	packed, clean := chaosCorpus(t)
	plan := faultinject.NewPlan(1999) // the paper's year; any fixed seed works
	n := 64
	if testing.Short() {
		n = 16
	}
	for i := 0; i < n; i++ {
		fault := plan.Next(len(packed))
		t.Run(fault.Name(), func(t *testing.T) {
			checkSalvage(t, fault.Apply(packed), clean)
		})
	}
}

// chaosCorpusV3Once caches the version-3 variant of the chaos corpus:
// the same classes repacked into 8-class chunks.
var chaosCorpusV3Once struct {
	sync.Once
	packed []byte
	clean  []File
	err    error
}

// chaosCorpusV3 returns the chaos corpus packed as a version-3 chunked
// archive, plus its clean unpack.
func chaosCorpusV3(t testing.TB) (packed []byte, clean []File) {
	_, clean = chaosCorpus(t)
	c := &chaosCorpusV3Once
	c.Do(func() {
		raw := make([][]byte, len(clean))
		for i, f := range clean {
			raw[i] = f.Data
		}
		opts := DefaultOptions()
		opts.ChunkClasses = 8
		c.packed, c.err = Pack(raw, &opts)
		if c.err != nil {
			return
		}
		c.clean, c.err = Unpack(c.packed)
	})
	if c.err != nil {
		t.Fatal(c.err)
	}
	if len(c.clean) != len(clean) {
		t.Fatalf("v3 repack holds %d classes, corpus has %d", len(c.clean), len(clean))
	}
	return c.packed, c.clean
}

// checkSalvageV3 asserts the version-3 salvage invariants on a damaged
// chunked archive: no panic, no hard error, consistent accounting, and
// name-matched byte identity — every recovered class carries the exact
// bytes of the same-named clean class. Unlike version 2 the recovered
// set is not a prefix: a damaged chunk leaves a gap and later chunks
// still recover, so identity is checked per name rather than by
// position.
func checkSalvageV3(t *testing.T, damaged []byte, clean []File) *SalvageResult {
	t.Helper()
	res, err := Salvage(damaged, &Options{})
	if err != nil {
		t.Fatalf("Salvage returned a hard error: %v", err)
	}
	if res.Recovered != len(res.Files) {
		t.Fatalf("Recovered = %d but %d files", res.Recovered, len(res.Files))
	}
	if res.Recovered+res.Lost != res.TotalClasses {
		t.Fatalf("recovered %d + lost %d != total %d", res.Recovered, res.Lost, res.TotalClasses)
	}
	// With the index destroyed AND chunks truncated the total comes from
	// the surviving chunk headers, so it can undercount — but it can
	// never exceed the corpus.
	if res.TotalClasses > len(clean) {
		t.Fatalf("TotalClasses = %d, corpus has %d", res.TotalClasses, len(clean))
	}
	// The synth corpus reuses a few class names with different bodies, so
	// identity means byte-equality with one of the clean classes carrying
	// that name.
	want := make(map[string][][]byte, len(clean))
	for _, f := range clean {
		want[f.Name] = append(want[f.Name], f.Data)
	}
	for _, f := range res.Files {
		candidates, ok := want[f.Name]
		if !ok {
			t.Fatalf("salvage invented class %s", f.Name)
		}
		match := false
		for _, data := range candidates {
			if bytes.Equal(f.Data, data) {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("recovered class %s is not byte-identical to the clean unpack", f.Name)
		}
	}
	return res
}

// TestChaosV3Matrix runs the fault ladder over a version-3 chunked
// archive: bit flips, truncations, zeroed pages, and duplicated blocks
// at evenly spaced offsets. Every fault must preserve the v3 salvage
// invariants; faults confined to one chunk must leave at most that
// chunk's classes lost.
func TestChaosV3Matrix(t *testing.T) {
	packed, clean := chaosCorpusV3(t)
	stride := len(packed) / 24
	if testing.Short() {
		stride = len(packed) / 6
	}
	for off := 6; off < len(packed); off += stride {
		faults := []faultinject.Fault{
			faultinject.BitFlip{Off: off, Bit: 3},
			faultinject.Truncate{Off: off},
			faultinject.ZeroPage{Off: off, Len: 32},
			faultinject.DupBlock{Off: off, Len: 16},
		}
		for _, fault := range faults {
			t.Run(fault.Name(), func(t *testing.T) {
				res := checkSalvageV3(t, fault.Apply(packed), clean)
				if len(res.Damage) == 0 && res.Lost == 0 && res.Recovered == len(clean) {
					return // fault landed in slack the decoder never reads
				}
				if len(res.Damage) == 0 {
					t.Fatalf("classes lost (%d) with an empty damage report", res.Lost)
				}
			})
		}
	}
}

// TestChaosV3ChunkIsolation pins the version-3 payoff: a bit flip in
// the middle of the archive body costs at most one chunk of classes,
// where the same fault on a monolithic version-2 archive loses every
// class from the flip onward.
func TestChaosV3ChunkIsolation(t *testing.T) {
	packed, clean := chaosCorpusV3(t)
	ix, err := core.ReadIndex(packed, core.UnpackOpts{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := ix.Chunks
	if len(chunks) < 4 {
		t.Fatalf("corpus packed into %d chunks, want >= 4", len(chunks))
	}
	// Flip a bit in the middle of an interior chunk's body.
	mid := len(chunks) / 2
	off := int(chunks[mid].Off) + int(chunks[mid].Len)/2
	flip := faultinject.BitFlip{Off: off, Bit: 4}
	res := checkSalvageV3(t, flip.Apply(packed), clean)
	if res.Lost == 0 {
		t.Fatal("interior-chunk bit flip went undetected")
	}
	if res.Lost > chunks[mid].Classes {
		t.Fatalf("flip in chunk %d lost %d classes, chunk holds only %d",
			mid, res.Lost, chunks[mid].Classes)
	}
	found := false
	for _, d := range res.Damage {
		if strings.HasPrefix(d.Stream, "chunk") {
			found = true
		}
	}
	if !found {
		t.Fatalf("damage report %v does not attribute a chunk", res.Damage)
	}
}

// TestChaosV3IndexDestroyed pins that the index is pure acceleration:
// zeroing the entire footer and index region costs zero classes —
// salvage walks the chunk framing instead.
func TestChaosV3IndexDestroyed(t *testing.T) {
	packed, clean := chaosCorpusV3(t)
	ix, err := core.ReadIndex(packed, core.UnpackOpts{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := ix.Chunks
	last := chunks[len(chunks)-1]
	indexStart := int(last.Off) + int(last.Len) + 1 // +1 for the sentinel byte
	zero := faultinject.ZeroPage{Off: indexStart, Len: len(packed) - indexStart}
	res := checkSalvageV3(t, zero.Apply(packed), clean)
	if res.Recovered != len(clean) {
		t.Fatalf("index-only damage lost classes: recovered %d of %d (damage %v)",
			res.Recovered, len(clean), res.Damage)
	}
	if len(res.Damage) == 0 {
		t.Fatal("destroyed index produced no damage report")
	}
}
