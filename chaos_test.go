package classpack

import (
	"bytes"
	"sync"
	"testing"

	"classpack/internal/classfile"
	"classpack/internal/faultinject"
	"classpack/internal/streams"
	"classpack/internal/synth"
)

// chaosCorpusOnce caches the chaos corpus: generating and packing a
// 50+-class archive once keeps the fault matrix fast enough to run in
// full under -race.
var chaosCorpusOnce struct {
	sync.Once
	packed []byte // version-2 archive
	clean  []File // pristine unpack, the salvage oracle
	err    error
}

// chaosCorpus returns a packed >= 50-class synthetic archive and its
// clean unpack.
func chaosCorpus(t testing.TB) (packed []byte, clean []File) {
	t.Helper()
	c := &chaosCorpusOnce
	c.Do(func() {
		p, err := synth.ProfileByName("202_jess")
		if err != nil {
			c.err = err
			return
		}
		cfs, err := synth.GenerateStripped(p, 1.0)
		if err != nil {
			c.err = err
			return
		}
		files := make([][]byte, len(cfs))
		for i, cf := range cfs {
			if files[i], err = classfile.Write(cf); err != nil {
				c.err = err
				return
			}
		}
		if c.packed, err = Pack(files, nil); err != nil {
			c.err = err
			return
		}
		c.clean, c.err = Unpack(c.packed)
	})
	if c.err != nil {
		t.Fatal(c.err)
	}
	if len(c.clean) < 50 {
		t.Fatalf("chaos corpus has %d classes, want >= 50", len(c.clean))
	}
	return c.packed, c.clean
}

// checkSalvage runs Salvage on a damaged version-2 archive and asserts
// the invariants every fault must preserve: no panic (by construction),
// the accounting identity recovered + lost == total, and the prefix
// guarantee — every recovered class is byte-identical to the clean
// unpack, in order. It returns the result for fault-specific checks.
func checkSalvage(t *testing.T, damaged []byte, clean []File) *SalvageResult {
	t.Helper()
	res := checkSalvageAccounting(t, damaged, clean)
	for i, f := range res.Files {
		if f.Name != clean[i].Name || !bytes.Equal(f.Data, clean[i].Data) {
			t.Fatalf("recovered class %d (%s) is not byte-identical to the clean unpack", i, f.Name)
		}
	}
	return res
}

// checkSalvageAccounting asserts only the invariants every archive
// version can promise: no panic, no hard error, and consistent
// accounting. Version-1 archives carry no integrity data, so a fault
// that happens not to derail decoding yields plausible-but-wrong bytes
// the decoder cannot detect — the gap the version-2 checksums close —
// and the byte-identity check does not apply to them.
func checkSalvageAccounting(t *testing.T, damaged []byte, clean []File) *SalvageResult {
	t.Helper()
	res, err := Salvage(damaged, &Options{})
	if err != nil {
		t.Fatalf("Salvage returned a hard error: %v", err)
	}
	if res.Recovered != len(res.Files) {
		t.Fatalf("Recovered = %d but %d files", res.Recovered, len(res.Files))
	}
	if res.Recovered+res.Lost != res.TotalClasses {
		t.Fatalf("recovered %d + lost %d != total %d", res.Recovered, res.Lost, res.TotalClasses)
	}
	if res.TotalClasses != 0 && res.TotalClasses != len(clean) {
		t.Fatalf("TotalClasses = %d, corpus has %d", res.TotalClasses, len(clean))
	}
	return res
}

// damageNames collects the streams named in a damage report.
func damageNames(res *SalvageResult) map[string]bool {
	names := make(map[string]bool, len(res.Damage))
	for _, d := range res.Damage {
		names[d.Stream] = true
	}
	return names
}

// TestChaosMatrix is the fault-injection matrix of the acceptance
// criteria: each fault class applied at every stream-section boundary of
// a >= 50-class archive. Salvage must never panic, must keep the
// recovered+lost == total identity, must only return classes that are
// byte-identical to the clean unpack, and must name the damaged region.
// In -short mode (make chaos-smoke) the matrix subsamples boundaries.
func TestChaosMatrix(t *testing.T) {
	packed, clean := chaosCorpus(t)
	sections, err := streams.Sections(packed[6:], true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) < 10 {
		t.Fatalf("only %d sections in chaos corpus", len(sections))
	}
	stride := 1
	if testing.Short() {
		stride = 5
	}
	for si := 0; si < len(sections); si += stride {
		sect := sections[si]
		// Archive offset of the section payload: 6 header bytes + the
		// payload's offset within the container body.
		off := 6 + int(sect.Off)
		faults := []faultinject.Fault{
			faultinject.BitFlip{Off: off, Bit: 3},
			faultinject.Truncate{Off: off},
			faultinject.ZeroPage{Off: off, Len: 32},
			faultinject.DupBlock{Off: off, Len: 16},
		}
		for _, fault := range faults {
			t.Run(sect.Name+"/"+fault.Name(), func(t *testing.T) {
				res := checkSalvage(t, fault.Apply(packed), clean)
				if len(res.Damage) == 0 {
					t.Fatalf("fault %s in section %s produced no damage report", fault.Name(), sect.Name)
				}
				// The report must implicate the physically damaged place:
				// the targeted stream itself, or — when the fault spills
				// into framing (truncation, inserted or zeroed directory
				// bytes) — the container, trailer, or a later stream.
				names := damageNames(res)
				if !names[sect.Name] && !names["container"] && !names["trailer"] {
					implicated := false
					for _, later := range sections[si:] {
						if names[later.Name] {
							implicated = true
							break
						}
					}
					if !implicated {
						t.Fatalf("damage report %v does not implicate section %s or its framing",
							res.Damage, sect.Name)
					}
				}
			})
		}
	}
}

// TestChaosTrailerOnly pins the localization payoff: damage confined to
// the trailer checksum costs zero classes — everything recovers, and the
// report names the trailer.
func TestChaosTrailerOnly(t *testing.T) {
	packed, clean := chaosCorpus(t)
	flip := faultinject.BitFlip{Off: len(packed) - 2, Bit: 0}
	res := checkSalvage(t, flip.Apply(packed), clean)
	if res.Recovered != len(clean) || res.Lost != 0 {
		t.Fatalf("trailer-only damage lost classes: recovered %d, lost %d", res.Recovered, res.Lost)
	}
	if !damageNames(res)["trailer"] {
		t.Fatalf("trailer damage not reported: %v", res.Damage)
	}
}

// TestChaosPristine pins that salvage of an undamaged archive is a
// clean, complete unpack with an empty damage report.
func TestChaosPristine(t *testing.T) {
	packed, clean := chaosCorpus(t)
	res := checkSalvage(t, packed, clean)
	if res.Recovered != len(clean) || res.Lost != 0 || len(res.Damage) != 0 {
		t.Fatalf("pristine archive salvaged dirty: recovered %d, lost %d, damage %v",
			res.Recovered, res.Lost, res.Damage)
	}
}

// TestChaosVersion1 runs the bit-flip ladder over a legacy (no
// checksum) archive. Without integrity data a flip is only detected when
// decoding trips over it; flips that happen to decode produce silently
// wrong bytes, so only the accounting invariants apply here. That gap —
// observed directly by this test — is what the version-2 checksums
// close, and TestChaosMatrix holds version 2 to the stronger
// byte-identical-prefix guarantee.
func TestChaosVersion1(t *testing.T) {
	_, clean := chaosCorpus(t)
	legacy := packLegacy(t, clean)
	cleanLegacy, err := Unpack(legacy)
	if err != nil {
		t.Fatal(err)
	}
	stride := len(legacy) / 40
	if testing.Short() {
		stride = len(legacy) / 8
	}
	for off := 6; off < len(legacy); off += stride {
		flip := faultinject.BitFlip{Off: off, Bit: 5}
		t.Run(flip.Name(), func(t *testing.T) {
			checkSalvageAccounting(t, flip.Apply(legacy), cleanLegacy)
		})
	}
}

// TestChaosRandomPlan sweeps seeded random faults over the archive so
// the matrix is not limited to hand-picked boundaries; the seed makes
// any failure replayable.
func TestChaosRandomPlan(t *testing.T) {
	packed, clean := chaosCorpus(t)
	plan := faultinject.NewPlan(1999) // the paper's year; any fixed seed works
	n := 64
	if testing.Short() {
		n = 16
	}
	for i := 0; i < n; i++ {
		fault := plan.Next(len(packed))
		t.Run(fault.Name(), func(t *testing.T) {
			checkSalvage(t, fault.Apply(packed), clean)
		})
	}
}
