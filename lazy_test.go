package classpack

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"testing"

	"classpack/internal/bench"
	"classpack/internal/classfile"
	"classpack/internal/synth"
)

// packV3Sample packs the sample corpus into a v3 archive with small
// chunks.
func packV3Sample(t *testing.T, chunk int) ([][]byte, []byte) {
	t.Helper()
	files := sample(t)
	packed, err := Pack(files, &Options{Scheme: SchemeMTFFull, StackState: true, Compress: true, ChunkClasses: chunk})
	if err != nil {
		t.Fatal(err)
	}
	return files, packed
}

// TestExtractClassEqualsUnpack pins the ISSUE acceptance: ExtractClass
// output is byte-equal to the full-unpack output for every class in the
// bench corpus.
func TestExtractClassEqualsUnpack(t *testing.T) {
	c, err := bench.Load("213_javac", benchScale)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([][]byte, len(c.Unstripped))
	for i, f := range c.Unstripped {
		raw[i] = f.Data
	}
	opts := DefaultOptions()
	opts.ChunkClasses = 8
	packed, err := Pack(raw, &opts)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := OpenArchiveBytes(packed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version() != 3 {
		t.Fatalf("version = %d, want 3", a.Version())
	}
	if a.NumClasses() != len(full) {
		t.Fatalf("NumClasses = %d, want %d", a.NumClasses(), len(full))
	}
	for _, f := range full {
		got, err := a.ExtractClass(f.Name)
		if err != nil {
			t.Fatalf("ExtractClass(%q): %v", f.Name, err)
		}
		if !bytes.Equal(got, f.Data) {
			t.Fatalf("ExtractClass(%q) differs from full unpack", f.Name)
		}
	}
}

// TestOpenArchiveLazyReads pins the O(chunk) property on a ≥500-class
// archive: extracting one class reads and decodes only a small fraction
// of what a full decode does, and allocates proportionally.
func TestOpenArchiveLazyReads(t *testing.T) {
	if testing.Short() {
		t.Skip("large synth archive skipped in -short mode")
	}
	p, err := synth.ProfileByName("rt")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfs) < 500 {
		t.Fatalf("corpus has %d classes, want >= 500", len(cfs))
	}
	raw := make([][]byte, len(cfs))
	for i, cf := range cfs {
		if raw[i], err = classfile.Write(cf); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultOptions()
	opts.ChunkClasses = 16
	opts.Concurrency = 1
	packed, err := Pack(raw, &opts)
	if err != nil {
		t.Fatal(err)
	}

	// One extraction from a fresh archive.
	one, err := OpenArchiveBytes(packed, &opts)
	if err != nil {
		t.Fatal(err)
	}
	// Extraction goes by ordinal: the synth corpus carries a few
	// duplicate class names, which by-name extraction refuses.
	names := one.ClassNames()
	singleAlloc := allocBytes(t, func() {
		if _, err := one.ExtractOrdinals([]int{len(names) / 2}); err != nil {
			t.Fatal(err)
		}
	})
	singleRead, singleDecoded := one.BytesRead(), one.DecodedBytes()

	// A full extraction from another fresh archive, for scale.
	all, err := OpenArchiveBytes(packed, &opts)
	if err != nil {
		t.Fatal(err)
	}
	fullAlloc := allocBytes(t, func() {
		for g := range names {
			if _, err := all.ExtractOrdinals([]int{g}); err != nil {
				t.Fatal(err)
			}
		}
	})
	fullRead, fullDecoded := all.BytesRead(), all.DecodedBytes()

	if singleRead*5 > int64(len(packed)) {
		t.Errorf("single extract read %d of %d archive bytes (>1/5)", singleRead, len(packed))
	}
	if singleDecoded*10 > fullDecoded {
		t.Errorf("single extract decoded %d of %d total bytes (>1/10)", singleDecoded, fullDecoded)
	}
	if singleRead*10 > fullRead {
		t.Errorf("single extract read %d bytes, full extraction %d (>1/10)", singleRead, fullRead)
	}
	if singleAlloc*5 > fullAlloc {
		t.Errorf("single extract allocated %d bytes, full extraction %d (>1/5)", singleAlloc, fullAlloc)
	}
}

// TestDuplicateClassNames pins the ambiguity fix: when an archive holds
// two classes with the same name but different bytes, by-name extraction
// refuses with ErrAmbiguousClass instead of silently serving whichever
// occurrence was indexed last, while ordinal-based extraction still
// reaches every occurrence and matches a full Unpack.
func TestDuplicateClassNames(t *testing.T) {
	raw := sample(t)
	var dup []byte
	for _, f := range raw {
		if m, ok, err := synth.MutateClass(f); err != nil {
			t.Fatal(err)
		} else if ok {
			dup = m
			raw = [][]byte{f, raw[len(raw)-1], m}
			break
		}
	}
	if dup == nil {
		t.Fatal("no mutable class in corpus")
	}
	for _, chunk := range []int{0, 1} { // version 2 and version 3
		opts := DefaultOptions()
		opts.ChunkClasses = chunk
		packed, err := Pack(raw, &opts)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Unpack(packed)
		if err != nil {
			t.Fatal(err)
		}
		if full[0].Name != full[2].Name || bytes.Equal(full[0].Data, full[2].Data) {
			t.Fatal("corpus construction broken: want same name, different bytes")
		}
		a, err := OpenArchiveBytes(packed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.ExtractClass(full[0].Name); !errors.Is(err, ErrAmbiguousClass) {
			t.Fatalf("chunk=%d: ExtractClass(dup) = %v, want ErrAmbiguousClass", chunk, err)
		}
		if _, err := a.ExtractClasses([]string{full[1].Name, full[0].Name}); !errors.Is(err, ErrAmbiguousClass) {
			t.Fatalf("chunk=%d: ExtractClasses(dup) = %v, want ErrAmbiguousClass", chunk, err)
		}
		// The unambiguous class still extracts by name.
		got, err := a.ExtractClass(full[1].Name)
		if err != nil {
			t.Fatalf("chunk=%d: ExtractClass(unique): %v", chunk, err)
		}
		if !bytes.Equal(got, full[1].Data) {
			t.Fatalf("chunk=%d: unique class bytes differ", chunk)
		}
		// Ordinal selection surfaces every occurrence.
		ords, err := a.SelectOrdinals(full[0].Name)
		if err != nil {
			t.Fatal(err)
		}
		if len(ords) != 2 || ords[0] != 0 || ords[1] != 2 {
			t.Fatalf("chunk=%d: SelectOrdinals(dup) = %v, want [0 2]", chunk, ords)
		}
		files, err := a.ExtractOrdinals([]int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := range files {
			if files[i].Name != full[i].Name || !bytes.Equal(files[i].Data, full[i].Data) {
				t.Fatalf("chunk=%d: ordinal %d differs from full unpack", chunk, i)
			}
		}
		if _, err := a.ExtractOrdinals([]int{3}); err == nil {
			t.Fatalf("chunk=%d: ExtractOrdinals accepted an out-of-range ordinal", chunk)
		}
	}
}

// allocBytes measures the heap bytes allocated while running f.
func allocBytes(t *testing.T, f func()) int64 {
	t.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return int64(after.TotalAlloc - before.TotalAlloc)
}

func TestOpenArchiveV2Eager(t *testing.T) {
	files := sample(t)
	packed, err := Pack(files, nil) // ChunkClasses 0 → version 2
	if err != nil {
		t.Fatal(err)
	}
	full, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := OpenArchiveBytes(packed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version() != 2 {
		t.Fatalf("version = %d, want 2", a.Version())
	}
	if a.Chunks() != nil || a.ChunkClasses() != 0 {
		t.Fatal("version-2 archive reported chunks")
	}
	for _, f := range full {
		got, err := a.ExtractClass(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, f.Data) {
			t.Fatalf("ExtractClass(%q) differs from full unpack", f.Name)
		}
	}
}

func TestExtractClasses(t *testing.T) {
	_, packed := packV3Sample(t, 2)
	a, err := OpenArchiveBytes(packed, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := a.ClassNames()
	if len(names) < 4 {
		t.Fatalf("corpus too small: %d classes", len(names))
	}
	// Request out of archive order, spanning chunks, with a ".class"
	// suffix mixed in.
	req := []string{names[len(names)-1], names[0] + ".class", names[len(names)/2]}
	out, err := a.ExtractClasses(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(req) {
		t.Fatalf("got %d files, want %d", len(out), len(req))
	}
	for i, f := range out {
		wantName := req[i]
		if !bytes.HasSuffix([]byte(wantName), []byte(".class")) {
			wantName += ".class"
		}
		if f.Name != wantName {
			t.Fatalf("file %d: name %q, want %q", i, f.Name, wantName)
		}
		want, err := a.ExtractClass(req[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Data, want) {
			t.Fatalf("file %d (%s): ExtractClasses differs from ExtractClass", i, f.Name)
		}
	}
	if _, err := a.ExtractClasses([]string{"no/such/Class"}); !errors.Is(err, ErrClassNotFound) {
		t.Fatalf("missing class: err = %v, want ErrClassNotFound", err)
	}
	if _, err := a.ExtractClass("no/such/Class"); !errors.Is(err, ErrClassNotFound) {
		t.Fatalf("missing class: err = %v, want ErrClassNotFound", err)
	}
}

func TestSelect(t *testing.T) {
	_, packed := packV3Sample(t, 4)
	a, err := OpenArchiveBytes(packed, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := a.ClassNames()
	// Every class, via a glob over its own package.
	all, err := a.Select("*/*", "*", "*/*/*", "*/*/*/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(names) {
		t.Fatalf("globs matched %d of %d classes", len(all), len(names))
	}
	// Exact name, with and without suffix.
	for _, pat := range []string{names[0], names[0] + ".class"} {
		got, err := a.Select(pat)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != names[0] {
			t.Fatalf("Select(%q) = %v, want [%s]", pat, got, names[0])
		}
	}
	// No match is empty, not an error.
	got, err := a.Select("no/such/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Select(no/such/*) = %v, want empty", got)
	}
	// A malformed pattern is an error.
	if _, err := a.Select("a[/b"); err == nil {
		t.Fatal("Select accepted a malformed pattern")
	}
}

func TestPackStreamPublic(t *testing.T) {
	files := sample(t)
	opts := DefaultOptions()
	opts.ChunkClasses = 4
	packed, err := Pack(files, &opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	i := 0
	err = PackStream(&buf, func() ([]byte, error) {
		if i == len(files) {
			return nil, io.EOF
		}
		f := files[i]
		i++
		return f, nil
	}, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), packed) {
		t.Fatalf("PackStream output (%d bytes) != Pack output (%d bytes)", buf.Len(), len(packed))
	}
}

func TestUnpackStreamPublic(t *testing.T) {
	files := sample(t)
	for _, chunk := range []int{0, 3} { // version 2 and version 3
		opts := DefaultOptions()
		opts.ChunkClasses = chunk
		packed, err := Pack(files, &opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Unpack(packed)
		if err != nil {
			t.Fatal(err)
		}
		var got []File
		err = UnpackStream(bytes.NewReader(packed), func(f File) error {
			got = append(got, f)
			return nil
		}, nil)
		if err != nil {
			t.Fatalf("chunk=%d: UnpackStream: %v", chunk, err)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: got %d files, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i].Name != want[i].Name || !bytes.Equal(got[i].Data, want[i].Data) {
				t.Fatalf("chunk=%d: file %d differs", chunk, i)
			}
		}
	}
}

func TestV3RoundTripAllConcurrency(t *testing.T) {
	files := sample(t)
	opts := DefaultOptions()
	opts.ChunkClasses = 4
	var first []byte
	for _, j := range []int{1, 2, 8, 0} {
		opts.Concurrency = j
		packed, err := Pack(files, &opts)
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		if first == nil {
			first = packed
		} else if !bytes.Equal(first, packed) {
			t.Fatalf("j=%d produced different v3 bytes", j)
		}
		out, err := UnpackN(packed, j)
		if err != nil {
			t.Fatalf("j=%d: unpack: %v", j, err)
		}
		for i, f := range out {
			want, err := Strip(files[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(f.Data, want) {
				t.Fatalf("j=%d: file %d differs from Strip", j, i)
			}
		}
	}
}
