package classpack

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path"
	"strings"
	"sync"

	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/corrupt"
	"classpack/internal/strip"
)

// ErrClassNotFound is returned (wrapped) by Archive.ExtractClass and
// ExtractClasses when the archive holds no class of the requested name.
var ErrClassNotFound = errors.New("classpack: class not found in archive")

// Archive is a random-access view of a packed archive. For a version-3
// archive it reads only the 6-byte header and the trailing class index
// at open; class bodies decode lazily, one chunk at a time, when
// extracted — so serving one class from an N-class archive costs
// O(chunk) decode work and memory, not O(N). Version-1/2 archives have
// no internal framing, so they are decoded eagerly at open and served
// from memory.
//
// An Archive is safe for concurrent use. It retains the io.ReaderAt.
type Archive struct {
	mu sync.Mutex

	r       *countingReaderAt
	size    int64
	version byte
	copts   core.Options
	uo      core.UnpackOpts

	ix     *core.Index // version 3 only
	names  []string    // class binary names in archive order
	byName map[string]int

	files []File // version 1/2: eager decode of the whole archive

	cachedChunk int // last decoded chunk (-1 = none)
	cachedFiles []File

	decoded int64
}

// countingReaderAt counts the bytes actually requested from the
// underlying reader, so tests (and curious callers) can observe that
// lazy extraction reads O(chunk) of the archive.
type countingReaderAt struct {
	r io.ReaderAt
	n int64 // accessed under Archive.mu or before the Archive escapes
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.n += int64(n)
	return n, err
}

// OpenArchive opens a packed archive for random access over an
// io.ReaderAt of the given size. Only Concurrency, MaxDecodedBytes and
// MaxClassCount of opts are honored (coding choices travel in the
// archive); MaxDecodedBytes bounds each chunk decode. A nil opts uses
// defaults. Failures caused by the archive bytes are *CorruptError
// values or wrap one.
func OpenArchive(r io.ReaderAt, size int64, opts *Options) (*Archive, error) {
	uo := opts.unpackOpts()
	if err := checkConcurrency(uo.Concurrency); err != nil {
		return nil, err
	}
	cr := &countingReaderAt{r: r}
	var hdr [6]byte
	if _, err := cr.ReadAt(hdr[:], 0); err != nil {
		return nil, corrupt.Errorf("header", 0, "reading archive header: %v", err)
	}
	ver, copts, err := core.ParseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	a := &Archive{r: cr, size: size, version: ver, copts: copts, uo: uo, cachedChunk: -1}
	if ver != core.Version3 {
		// No chunk framing to seek over: decode the whole body once.
		data := make([]byte, size)
		if _, err := cr.ReadAt(data, 0); err != nil {
			return nil, corrupt.Errorf("container", 0, "reading archive: %v", err)
		}
		files, decoded, err := decodeBody(copts, data[6:], ver != core.Version1, uo)
		if err != nil {
			return nil, err
		}
		a.files = files
		a.decoded = decoded
		a.names = make([]string, len(files))
		for i, f := range files {
			a.names[i] = strings.TrimSuffix(f.Name, ".class")
		}
	} else {
		ix, err := core.ReadIndexAt(cr, size, uo)
		if err != nil {
			return nil, err
		}
		a.ix = ix
		a.names = ix.Names
	}
	a.byName = make(map[string]int, len(a.names))
	for i, n := range a.names {
		if _, ok := a.byName[n]; !ok {
			a.byName[n] = i
		}
	}
	return a, nil
}

// OpenArchiveBytes is OpenArchive over an in-memory archive.
func OpenArchiveBytes(data []byte, opts *Options) (*Archive, error) {
	return OpenArchive(bytes.NewReader(data), int64(len(data)), opts)
}

// decodeBody decodes one container body into serialized class files and
// reports the decoded wire-stream bytes.
func decodeBody(copts core.Options, body []byte, checked bool, uo core.UnpackOpts) ([]File, int64, error) {
	var files []File
	decoded, err := core.DecodeChunk(copts, body, checked, uo, func(ord int, cf *classfile.ClassFile) error {
		raw, err := classfile.Write(cf)
		if err != nil {
			return err
		}
		files = append(files, File{Name: cf.ThisClassName() + ".class", Data: raw})
		return nil
	})
	if err != nil {
		return nil, decoded, err
	}
	return files, decoded, nil
}

// Version is the archive's container version (1, 2 or 3).
func (a *Archive) Version() byte { return a.version }

// NumClasses is the number of classes in the archive.
func (a *Archive) NumClasses() int { return len(a.names) }

// ClassNames returns every class binary name in archive order.
func (a *Archive) ClassNames() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// ChunkClasses is the archive's classes-per-chunk (0 for version 1/2).
func (a *Archive) ChunkClasses() int {
	if a.ix == nil {
		return 0
	}
	return a.ix.ChunkClasses
}

// ChunkSummary describes one chunk without decoding it.
type ChunkSummary struct {
	Classes         int
	CompressedBytes int64
}

// Chunks summarizes the archive's chunks; nil for version 1/2.
func (a *Archive) Chunks() []ChunkSummary {
	if a.ix == nil {
		return nil
	}
	out := make([]ChunkSummary, len(a.ix.Chunks))
	for i, ch := range a.ix.Chunks {
		out[i] = ChunkSummary{Classes: ch.Classes, CompressedBytes: ch.Len}
	}
	return out
}

// BytesRead is the total bytes requested from the underlying reader so
// far — header, index, and the chunks extraction actually touched.
func (a *Archive) BytesRead() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.r.n
}

// DecodedBytes is the total decoded wire-stream bytes materialized so
// far across all chunk decodes (what MaxDecodedBytes budgets per
// chunk). Extracting one class from a fresh version-3 archive decodes
// only its containing chunk, and this counter proves it.
func (a *Archive) DecodedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.decoded
}

// trimClass strips an optional ".class" suffix, so callers can use
// either the binary name or the jar member name.
func trimClass(name string) string { return strings.TrimSuffix(name, ".class") }

// ExtractClass returns the named class's serialized bytes (the same
// bytes a full Unpack would produce for it). The name is the binary
// name, with or without a ".class" suffix. For a version-3 archive only
// the containing chunk is decoded; the last decoded chunk is cached, so
// iterating classes in archive order decodes each chunk once. A missing
// class reports an error wrapping ErrClassNotFound.
func (a *Archive) ExtractClass(name string) ([]byte, error) {
	name = trimClass(name)
	g, ok := a.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrClassNotFound, name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.fileAt(g)
	if err != nil {
		return nil, err
	}
	return f.Data, nil
}

// fileAt returns the serialized file for an archive ordinal, decoding
// (and caching) its chunk if needed. Caller holds a.mu.
func (a *Archive) fileAt(g int) (File, error) {
	if a.ix == nil {
		return a.files[g], nil
	}
	ci := a.ix.ChunkOf(g)
	files, err := a.chunkFiles(ci)
	if err != nil {
		return File{}, err
	}
	return files[g-a.ix.Start(ci)], nil
}

// chunkFiles decodes chunk ci (or returns the cached decode). Caller
// holds a.mu.
func (a *Archive) chunkFiles(ci int) ([]File, error) {
	if ci == a.cachedChunk {
		return a.cachedFiles, nil
	}
	ch := a.ix.Chunks[ci]
	body := make([]byte, ch.Len)
	if _, err := a.r.ReadAt(body, ch.Off); err != nil {
		return nil, corrupt.Errorf("chunks", ch.Off, "reading chunk %d: %v", ci, err)
	}
	start := a.ix.Start(ci)
	var files []File
	decoded, err := core.DecodeChunk(a.copts, body, true, a.uo, func(ord int, cf *classfile.ClassFile) error {
		if start+ord >= len(a.names) || cf.ThisClassName() != a.names[start+ord] {
			return corrupt.Errorf("index", -1, "chunk %d class %d is %q, index disagrees", ci, ord, cf.ThisClassName())
		}
		raw, err := classfile.Write(cf)
		if err != nil {
			return err
		}
		files = append(files, File{Name: cf.ThisClassName() + ".class", Data: raw})
		return nil
	})
	a.decoded += decoded
	if err != nil {
		return nil, fmt.Errorf("classpack: chunk %d: %w", ci, err)
	}
	if len(files) != ch.Classes {
		return nil, corrupt.Errorf("index", -1, "chunk %d holds %d classes, index says %d", ci, len(files), ch.Classes)
	}
	a.cachedChunk, a.cachedFiles = ci, files
	return files, nil
}

// ExtractClasses extracts the named classes, returned in input order.
// Chunks are decoded in ascending order, each at most once per call, so
// a subset clustered in one chunk costs one chunk decode regardless of
// subset size.
func (a *Archive) ExtractClasses(names []string) ([]File, error) {
	ords := make([]int, len(names))
	for i, name := range names {
		g, ok := a.byName[trimClass(name)]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrClassNotFound, name)
		}
		ords[i] = g
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]File, len(names))
	if a.ix == nil {
		for i, g := range ords {
			out[i] = a.files[g]
		}
		return out, nil
	}
	// Resolve chunk by chunk in ascending order so each chunk is decoded
	// at most once even when the request order jumps around.
	byChunk := make(map[int][]int) // chunk -> positions in the request
	maxChunk := 0
	for i, g := range ords {
		ci := a.ix.ChunkOf(g)
		byChunk[ci] = append(byChunk[ci], i)
		if ci > maxChunk {
			maxChunk = ci
		}
	}
	for ci := 0; ci <= maxChunk; ci++ {
		positions, ok := byChunk[ci]
		if !ok {
			continue
		}
		files, err := a.chunkFiles(ci)
		if err != nil {
			return nil, err
		}
		for _, i := range positions {
			out[i] = files[ords[i]-a.ix.Start(ci)]
		}
	}
	return out, nil
}

// Select returns the archive's class names (in archive order) matching
// any of the given patterns. A pattern containing path.Match
// metacharacters is matched against the binary name ("java/util/*",
// "com/acme/**" is NOT supported — path.Match is single-star); any
// other pattern is an exact binary name, with or without ".class".
// A malformed pattern is an error; an empty result is not.
func (a *Archive) Select(patterns ...string) ([]string, error) {
	exact := make(map[string]bool)
	var globs []string
	for _, p := range patterns {
		if strings.ContainsAny(p, "*?[\\") {
			// Validate the pattern up front so a bad one fails loudly
			// rather than silently matching nothing.
			if _, err := path.Match(p, ""); err != nil {
				return nil, fmt.Errorf("classpack: pattern %q: %w", p, err)
			}
			globs = append(globs, p)
			continue
		}
		exact[trimClass(p)] = true
	}
	var out []string
	for _, name := range a.names {
		if exact[name] {
			out = append(out, name)
			continue
		}
		for _, g := range globs {
			if ok, _ := path.Match(g, name); ok {
				out = append(out, name)
				break
			}
		}
	}
	return out, nil
}

// PackStream packs class files supplied one at a time by next — which
// returns io.EOF to finish — writing a version-3 archive to w while
// holding at most one chunk of classes in memory. It is the streaming
// counterpart of Pack for inputs too large to materialize; the output
// is byte-identical to Pack of the same files with the same
// ChunkClasses. A nil opts (or ChunkClasses <= 0) chunks every 64
// classes.
func PackStream(w io.Writer, next func() ([]byte, error), opts *Options) error {
	c := opts.core()
	if err := checkConcurrency(c.Concurrency); err != nil {
		return err
	}
	if c.ChunkClasses <= 0 {
		c.ChunkClasses = core.DefaultChunkClasses
	}
	var scratch strip.Scratch
	i := 0
	return core.PackStream(w, func() (*classfile.ClassFile, error) {
		raw, err := next()
		if err != nil {
			return nil, err // io.EOF terminates cleanly
		}
		cf, err := classfile.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("classpack: file %d: %w", i, err)
		}
		if err := strip.ApplyScratch(cf, strip.Options{}, &scratch); err != nil {
			return nil, fmt.Errorf("classpack: file %d: %w", i, err)
		}
		i++
		return cf, nil
	}, c)
}

// UnpackStream decodes an archive from an io.Reader, invoking visit
// with each class file as it completes. A version-3 archive is decoded
// one chunk at a time off its length-prefix framing — the whole archive
// is never materialized — with the trailing index verified after the
// last chunk; version-1/2 archives are buffered and decoded in place.
// A nil opts uses defaults. A visit error aborts and is returned
// verbatim.
func UnpackStream(r io.Reader, visit func(File) error, opts *Options) error {
	uo := opts.unpackOpts()
	if err := checkConcurrency(uo.Concurrency); err != nil {
		return err
	}
	return core.UnpackReader(r, uo, func(cf *classfile.ClassFile) error {
		raw, err := classfile.Write(cf)
		if err != nil {
			return err
		}
		return visit(File{Name: cf.ThisClassName() + ".class", Data: raw})
	})
}
