package classpack

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path"
	"strings"
	"sync"

	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/corrupt"
	"classpack/internal/strip"
)

// ErrClassNotFound is returned (wrapped) by Archive.ExtractClass and
// ExtractClasses when the archive holds no class of the requested name.
var ErrClassNotFound = errors.New("classpack: class not found in archive")

// ErrAmbiguousClass is returned (wrapped) by Archive.ExtractClass and
// ExtractClasses when the requested name occurs more than once in the
// archive, so "the class of that name" is not well defined. Address each
// occurrence by ordinal instead: SelectOrdinals returns every match and
// ExtractOrdinals extracts them, exactly as a full Unpack would.
var ErrAmbiguousClass = errors.New("classpack: class name occurs more than once in archive")

// eagerBodySlack bounds how much larger than the decode budget an
// archive opened through the version-1/2 eager fallback may claim to
// be: encoded streams never exceed their raw size (store is the
// fallback coding), so a valid archive is at most the decoded bytes
// plus directory overhead. The same reasoning as core's chunk framing.
const eagerBodySlack = 1 << 16

// Archive is a random-access view of a packed archive. For a version-3
// archive it reads only the 6-byte header and the trailing class index
// at open; class bodies decode lazily, one chunk at a time, when
// extracted — so serving one class from an N-class archive costs
// O(chunk) decode work and memory, not O(N). Version-1/2 archives have
// no internal framing, so they are decoded eagerly at open and served
// from memory.
//
// An Archive is safe for concurrent use. It retains the io.ReaderAt.
type Archive struct {
	mu sync.Mutex

	r       *countingReaderAt
	size    int64
	version byte
	copts   core.Options
	uo      core.UnpackOpts

	ix     *core.Index // version 3 only
	names  []string    // class binary names in archive order
	byName map[string]int
	dup    map[string]bool // names occurring more than once (usually nil)

	files []File // version 1/2: eager decode of the whole archive

	cachedChunk int // last decoded chunk (-1 = none)
	cachedFiles []File

	decoded int64
}

// countingReaderAt counts the bytes actually requested from the
// underlying reader, so tests (and curious callers) can observe that
// lazy extraction reads O(chunk) of the archive.
type countingReaderAt struct {
	r io.ReaderAt
	n int64 // accessed under Archive.mu or before the Archive escapes
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.n += int64(n)
	return n, err
}

// OpenArchive opens a packed archive for random access over an
// io.ReaderAt of the given size. Only Concurrency, MaxDecodedBytes and
// MaxClassCount of opts are honored (coding choices travel in the
// archive); MaxDecodedBytes bounds each chunk decode. A nil opts uses
// defaults. Failures caused by the archive bytes are *CorruptError
// values or wrap one.
func OpenArchive(r io.ReaderAt, size int64, opts *Options) (*Archive, error) {
	uo := opts.unpackOpts()
	if err := checkConcurrency(uo.Concurrency); err != nil {
		return nil, err
	}
	cr := &countingReaderAt{r: r}
	var hdr [6]byte
	if _, err := cr.ReadAt(hdr[:], 0); err != nil {
		return nil, corrupt.Errorf("header", 0, "reading archive header: %v", err)
	}
	ver, copts, err := core.ParseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	a := &Archive{r: cr, size: size, version: ver, copts: copts, uo: uo, cachedChunk: -1}
	if ver != core.Version3 {
		// No chunk framing to seek over: decode the whole body once. The
		// caller-supplied size is untrusted until bytes actually arrive,
		// so charge it against the decode budget before allocating — a
		// hostile size over a tiny reader must fail in O(1) memory, like
		// every other declared length on the decode path — and then read
		// incrementally, growing the buffer with the bytes actually
		// received rather than trusting size with one up-front make.
		if size < 6 {
			return nil, corrupt.Errorf("container", size, "declared size %d is smaller than the header", size)
		}
		if budget := core.EffectiveBudget(uo); size-6 > budget+eagerBodySlack {
			return nil, corrupt.TooLarge("container", 0,
				"%d-byte archive exceeds the %d-byte decode budget", size, budget)
		}
		var buf bytes.Buffer
		if _, err := io.Copy(&buf, io.NewSectionReader(cr, 0, size)); err != nil {
			return nil, corrupt.Errorf("container", 0, "reading archive: %v", err)
		}
		data := buf.Bytes()
		if int64(len(data)) != size {
			return nil, corrupt.Errorf("container", int64(len(data)),
				"archive is %d bytes, caller declared %d", len(data), size)
		}
		files, decoded, err := decodeBody(copts, data[6:], ver != core.Version1, uo)
		if err != nil {
			return nil, err
		}
		a.files = files
		a.decoded = decoded
		a.names = make([]string, len(files))
		for i, f := range files {
			a.names[i] = strings.TrimSuffix(f.Name, ".class")
		}
	} else {
		ix, err := core.ReadIndexAt(cr, size, uo)
		if err != nil {
			return nil, err
		}
		a.ix = ix
		a.names = ix.Names
	}
	a.byName = make(map[string]int, len(a.names))
	for i, n := range a.names {
		if _, ok := a.byName[n]; ok {
			// Duplicate entries make by-name lookup ambiguous; remember
			// them so ExtractClass can refuse instead of silently serving
			// the first occurrence's bytes for every request.
			if a.dup == nil {
				a.dup = make(map[string]bool)
			}
			a.dup[n] = true
			continue
		}
		a.byName[n] = i
	}
	return a, nil
}

// ordinalOf resolves a class name to its archive ordinal, failing with
// ErrClassNotFound for absent names and ErrAmbiguousClass for names the
// archive carries more than once.
func (a *Archive) ordinalOf(name string) (int, error) {
	n := trimClass(name)
	g, ok := a.byName[n]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrClassNotFound, name)
	}
	if a.dup[n] {
		return 0, fmt.Errorf("%w: %q (use SelectOrdinals + ExtractOrdinals to address each occurrence)",
			ErrAmbiguousClass, name)
	}
	return g, nil
}

// OpenArchiveBytes is OpenArchive over an in-memory archive.
func OpenArchiveBytes(data []byte, opts *Options) (*Archive, error) {
	return OpenArchive(bytes.NewReader(data), int64(len(data)), opts)
}

// decodeBody decodes one container body into serialized class files and
// reports the decoded wire-stream bytes.
func decodeBody(copts core.Options, body []byte, checked bool, uo core.UnpackOpts) ([]File, int64, error) {
	var files []File
	decoded, err := core.DecodeChunk(copts, body, checked, uo, func(ord int, cf *classfile.ClassFile) error {
		raw, err := classfile.Write(cf)
		if err != nil {
			return err
		}
		files = append(files, File{Name: cf.ThisClassName() + ".class", Data: raw})
		return nil
	})
	if err != nil {
		return nil, decoded, err
	}
	return files, decoded, nil
}

// Version is the archive's container version (1, 2 or 3).
func (a *Archive) Version() byte { return a.version }

// NumClasses is the number of classes in the archive.
func (a *Archive) NumClasses() int { return len(a.names) }

// ClassNames returns every class binary name in archive order.
func (a *Archive) ClassNames() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// ChunkClasses is the archive's classes-per-chunk (0 for version 1/2).
func (a *Archive) ChunkClasses() int {
	if a.ix == nil {
		return 0
	}
	return a.ix.ChunkClasses
}

// ChunkSummary describes one chunk without decoding it.
type ChunkSummary struct {
	Classes         int
	CompressedBytes int64
}

// Chunks summarizes the archive's chunks; nil for version 1/2.
func (a *Archive) Chunks() []ChunkSummary {
	if a.ix == nil {
		return nil
	}
	out := make([]ChunkSummary, len(a.ix.Chunks))
	for i, ch := range a.ix.Chunks {
		out[i] = ChunkSummary{Classes: ch.Classes, CompressedBytes: ch.Len}
	}
	return out
}

// BytesRead is the total bytes requested from the underlying reader so
// far — header, index, and the chunks extraction actually touched.
func (a *Archive) BytesRead() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.r.n
}

// DecodedBytes is the total decoded wire-stream bytes materialized so
// far across all chunk decodes (what MaxDecodedBytes budgets per
// chunk). Extracting one class from a fresh version-3 archive decodes
// only its containing chunk, and this counter proves it.
func (a *Archive) DecodedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.decoded
}

// trimClass strips an optional ".class" suffix, so callers can use
// either the binary name or the jar member name.
func trimClass(name string) string { return strings.TrimSuffix(name, ".class") }

// ExtractClass returns the named class's serialized bytes (the same
// bytes a full Unpack would produce for it). The name is the binary
// name, with or without a ".class" suffix. For a version-3 archive only
// the containing chunk is decoded; the last decoded chunk is cached, so
// iterating classes in archive order decodes each chunk once. A missing
// class reports an error wrapping ErrClassNotFound; a name the archive
// carries more than once reports one wrapping ErrAmbiguousClass.
func (a *Archive) ExtractClass(name string) ([]byte, error) {
	g, err := a.ordinalOf(name)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.fileAt(g)
	if err != nil {
		return nil, err
	}
	return f.Data, nil
}

// fileAt returns the serialized file for an archive ordinal, decoding
// (and caching) its chunk if needed. Caller holds a.mu.
func (a *Archive) fileAt(g int) (File, error) {
	if a.ix == nil {
		return a.files[g], nil
	}
	ci := a.ix.ChunkOf(g)
	files, err := a.chunkFiles(ci)
	if err != nil {
		return File{}, err
	}
	return files[g-a.ix.Start(ci)], nil
}

// chunkFiles decodes chunk ci (or returns the cached decode). Caller
// holds a.mu.
func (a *Archive) chunkFiles(ci int) ([]File, error) {
	if ci == a.cachedChunk {
		return a.cachedFiles, nil
	}
	ch := a.ix.Chunks[ci]
	body := make([]byte, ch.Len)
	if _, err := a.r.ReadAt(body, ch.Off); err != nil {
		return nil, corrupt.Errorf("chunks", ch.Off, "reading chunk %d: %v", ci, err)
	}
	start := a.ix.Start(ci)
	var files []File
	decoded, err := core.DecodeChunk(a.copts, body, true, a.uo, func(ord int, cf *classfile.ClassFile) error {
		if start+ord >= len(a.names) || cf.ThisClassName() != a.names[start+ord] {
			return corrupt.Errorf("index", -1, "chunk %d class %d is %q, index disagrees", ci, ord, cf.ThisClassName())
		}
		raw, err := classfile.Write(cf)
		if err != nil {
			return err
		}
		files = append(files, File{Name: cf.ThisClassName() + ".class", Data: raw})
		return nil
	})
	a.decoded += decoded
	if err != nil {
		return nil, fmt.Errorf("classpack: chunk %d: %w", ci, err)
	}
	if len(files) != ch.Classes {
		return nil, corrupt.Errorf("index", -1, "chunk %d holds %d classes, index says %d", ci, len(files), ch.Classes)
	}
	a.cachedChunk, a.cachedFiles = ci, files
	return files, nil
}

// ExtractClasses extracts the named classes, returned in input order.
// Chunks are decoded in ascending order, each at most once per call, so
// a subset clustered in one chunk costs one chunk decode regardless of
// subset size. Names the archive carries more than once report an error
// wrapping ErrAmbiguousClass (see ExtractOrdinals).
func (a *Archive) ExtractClasses(names []string) ([]File, error) {
	ords := make([]int, len(names))
	for i, name := range names {
		g, err := a.ordinalOf(name)
		if err != nil {
			return nil, err
		}
		ords[i] = g
	}
	return a.ExtractOrdinals(ords)
}

// ExtractOrdinals extracts classes by archive ordinal (0-based position
// in archive order, the order ClassNames reports), returned in input
// order. Ordinals address every class unambiguously — including
// duplicate-named entries, which by-name extraction refuses — so
// extracting 0..NumClasses-1 reproduces a full Unpack exactly. Chunks
// decode in ascending order, each at most once per call.
func (a *Archive) ExtractOrdinals(ords []int) ([]File, error) {
	for _, g := range ords {
		if g < 0 || g >= len(a.names) {
			return nil, fmt.Errorf("classpack: ordinal %d out of range [0,%d)", g, len(a.names))
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]File, len(ords))
	if a.ix == nil {
		for i, g := range ords {
			out[i] = a.files[g]
		}
		return out, nil
	}
	// Resolve chunk by chunk in ascending order so each chunk is decoded
	// at most once even when the request order jumps around.
	byChunk := make(map[int][]int) // chunk -> positions in the request
	maxChunk := 0
	for i, g := range ords {
		ci := a.ix.ChunkOf(g)
		byChunk[ci] = append(byChunk[ci], i)
		if ci > maxChunk {
			maxChunk = ci
		}
	}
	for ci := 0; ci <= maxChunk; ci++ {
		positions, ok := byChunk[ci]
		if !ok {
			continue
		}
		files, err := a.chunkFiles(ci)
		if err != nil {
			return nil, err
		}
		for _, i := range positions {
			out[i] = files[ords[i]-a.ix.Start(ci)]
		}
	}
	return out, nil
}

// Select returns the archive's class names (in archive order) matching
// any of the given patterns. A pattern containing path.Match
// metacharacters is matched against the binary name ("java/util/*",
// "com/acme/**" is NOT supported — path.Match is single-star); any
// other pattern is an exact binary name, with or without ".class".
// A malformed pattern is an error; an empty result is not. An archive
// with duplicate entries yields the duplicated name once per occurrence;
// pass the result to ExtractOrdinals via SelectOrdinals (not
// ExtractClasses, which refuses ambiguous names) to extract such sets.
func (a *Archive) Select(patterns ...string) ([]string, error) {
	ords, err := a.SelectOrdinals(patterns...)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, g := range ords {
		out = append(out, a.names[g])
	}
	return out, nil
}

// SelectOrdinals is Select returning archive ordinals instead of names:
// every class matching any pattern, in archive order, one ordinal per
// occurrence. Feed the result to ExtractOrdinals; unlike name-keyed
// extraction this round-trips archives with duplicate entries, matching
// what a full Unpack produces for them.
func (a *Archive) SelectOrdinals(patterns ...string) ([]int, error) {
	exact := make(map[string]bool)
	var globs []string
	for _, p := range patterns {
		if strings.ContainsAny(p, "*?[\\") {
			// Validate the pattern up front so a bad one fails loudly
			// rather than silently matching nothing.
			if _, err := path.Match(p, ""); err != nil {
				return nil, fmt.Errorf("classpack: pattern %q: %w", p, err)
			}
			globs = append(globs, p)
			continue
		}
		exact[trimClass(p)] = true
	}
	var out []int
	for i, name := range a.names {
		if exact[name] {
			out = append(out, i)
			continue
		}
		for _, g := range globs {
			if ok, _ := path.Match(g, name); ok {
				out = append(out, i)
				break
			}
		}
	}
	return out, nil
}

// PackStream packs class files supplied one at a time by next — which
// returns io.EOF to finish — writing a version-3 archive to w while
// holding at most one chunk of classes in memory. It is the streaming
// counterpart of Pack for inputs too large to materialize; the output
// is byte-identical to Pack of the same files with the same
// ChunkClasses. A nil opts (or ChunkClasses <= 0) chunks every 64
// classes.
func PackStream(w io.Writer, next func() ([]byte, error), opts *Options) error {
	c := opts.core()
	if err := checkConcurrency(c.Concurrency); err != nil {
		return err
	}
	if c.ChunkClasses <= 0 {
		c.ChunkClasses = core.DefaultChunkClasses
	}
	var scratch strip.Scratch
	i := 0
	return core.PackStream(w, func() (*classfile.ClassFile, error) {
		raw, err := next()
		if err != nil {
			return nil, err // io.EOF terminates cleanly
		}
		cf, err := classfile.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("classpack: file %d: %w", i, err)
		}
		if err := strip.ApplyScratch(cf, strip.Options{}, &scratch); err != nil {
			return nil, fmt.Errorf("classpack: file %d: %w", i, err)
		}
		i++
		return cf, nil
	}, c)
}

// UnpackStream decodes an archive from an io.Reader, invoking visit
// with each class file as it completes. A version-3 archive is decoded
// one chunk at a time off its length-prefix framing — the whole archive
// is never materialized — with the trailing index verified after the
// last chunk; version-1/2 archives are buffered and decoded in place.
// A nil opts uses defaults. A visit error aborts and is returned
// verbatim.
func UnpackStream(r io.Reader, visit func(File) error, opts *Options) error {
	uo := opts.unpackOpts()
	if err := checkConcurrency(uo.Concurrency); err != nil {
		return err
	}
	return core.UnpackReader(r, uo, func(cf *classfile.ClassFile) error {
		raw, err := classfile.Write(cf)
		if err != nil {
			return err
		}
		return visit(File{Name: cf.ThisClassName() + ".class", Data: raw})
	})
}
