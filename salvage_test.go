package classpack

import (
	"strings"
	"testing"

	"classpack/internal/classfile"
	"classpack/internal/synth"
)

// salvageClasses returns a few decoded synthetic classes for driving
// the reserialization path directly.
func salvageClasses(t *testing.T, n int) []*classfile.ClassFile {
	t.Helper()
	p, err := synth.ProfileByName("209_db")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfs) < n {
		t.Fatalf("profile produced %d classes, need %d", len(cfs), n)
	}
	return cfs[:n]
}

// TestReserializeSkipsUnwritableClass drives the per-class
// reserialization step with one class that cannot be written back (an
// empty constant pool is unrepresentable in the class-file format). The
// broken class must be skipped alone, reported as classfile damage, and
// its neighbors must survive.
func TestReserializeSkipsUnwritableClass(t *testing.T) {
	good := salvageClasses(t, 2)
	broken := &classfile.ClassFile{} // empty Pool: classfile.Write fails
	classes := []*classfile.ClassFile{good[0], broken, good[1]}

	res := &SalvageResult{TotalClasses: len(classes)}
	reserializeInto(res, classes, 1)

	if res.Recovered != 2 || len(res.Files) != 2 {
		t.Fatalf("recovered %d files (%d counted), want 2", len(res.Files), res.Recovered)
	}
	if res.Lost != 1 {
		t.Fatalf("lost = %d, want 1", res.Lost)
	}
	for i, want := range []*classfile.ClassFile{good[0], good[1]} {
		raw, err := classfile.Write(want)
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Files[i].Data) != string(raw) {
			t.Fatalf("file %d not byte-identical to direct Write", i)
		}
		if res.Files[i].Name != want.ThisClassName()+".class" {
			t.Fatalf("file %d named %q", i, res.Files[i].Name)
		}
	}
	if len(res.Damage) != 1 {
		t.Fatalf("damage = %v, want one classfile region", res.Damage)
	}
	d := res.Damage[0]
	if d.Stream != "classfile" || d.Offset != -1 || d.ClassesLost != 1 {
		t.Fatalf("damage region = %+v", d)
	}
	if !strings.Contains(d.Cause, "reserialize class") {
		t.Fatalf("damage cause %q", d.Cause)
	}
}

// TestReserializeAllUnwritable: when every decoded class fails to write
// back, the result is empty but the accounting still balances.
func TestReserializeAllUnwritable(t *testing.T) {
	classes := []*classfile.ClassFile{{}, {}}
	res := &SalvageResult{TotalClasses: 2}
	reserializeInto(res, classes, 2)
	if res.Recovered != 0 || res.Lost != 2 || len(res.Files) != 0 {
		t.Fatalf("recovered=%d lost=%d files=%d", res.Recovered, res.Lost, len(res.Files))
	}
	if len(res.Damage) != 2 {
		t.Fatalf("damage = %v, want two regions", res.Damage)
	}
}

// TestSalvageRejectsNonArchives: the hard-error return is reserved for
// inputs that are not packed archives at all.
func TestSalvageRejectsNonArchives(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("CJP1"), []byte("not an archive"), {0xca, 0xfe, 0xba, 0xbe}} {
		if res, err := Salvage(data, nil); err == nil {
			t.Fatalf("Salvage(%q) = %+v, want error", data, res)
		}
	}
	if _, err := Salvage([]byte("CJP1\x02\x00"), &Options{Concurrency: -2}); err == nil {
		t.Fatal("Salvage accepted invalid concurrency")
	}
}

// TestSalvageOverCapArchive: an archive whose directory declares more
// classes than MaxClassCount is rejected by the class-count cap before
// decoding, not salvaged into a bomb.
func TestSalvageOverCapArchive(t *testing.T) {
	packed, _ := chaosCorpus(t) // >= 50 classes
	opts := DefaultOptions()
	opts.MaxClassCount = 3
	res, err := Salvage(packed, &opts)
	if err != nil {
		// Rejecting outright is acceptable: the cap is a resource guard.
		return
	}
	if res.Recovered > 3 {
		t.Fatalf("salvage decoded %d classes past MaxClassCount 3", res.Recovered)
	}
}

// TestSalvageResultJar: the recovered files round-trip through the jar
// writer the same way a clean unpack does.
func TestSalvageResultJar(t *testing.T) {
	packed, clean := chaosCorpus(t)
	res, err := Salvage(packed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 || len(res.Files) != len(clean) {
		t.Fatalf("pristine salvage lost %d of %d", res.Lost, res.TotalClasses)
	}
	jar, err := res.Jar()
	if err != nil {
		t.Fatal(err)
	}
	want, err := UnpackToJar(packed)
	if err != nil {
		t.Fatal(err)
	}
	if string(jar) != string(want) {
		t.Fatal("salvage jar differs from UnpackToJar on a pristine archive")
	}
}
