package classpack

import (
	"bytes"
	"errors"
	"testing"

	"classpack/internal/classfile"
	"classpack/internal/faultinject"
	"classpack/internal/synth"
)

// bumpedSample returns the sample corpus and a deterministically
// mutated "next release" of it: ~rate of the classes differ by one
// bytecode constant, and one extra class is appended.
func bumpedSample(t *testing.T, rate float64) (v1, v2 [][]byte) {
	t.Helper()
	v1 = sample(t)
	mut, changed, err := synth.MutateClasses(v1, rate, 7)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("version bump mutated nothing")
	}
	// The "release" also adds a class: a mutated twin of the first
	// mutable corpus member (different bytes than any old class).
	for _, f := range v1 {
		extra, ok, err := synth.MutateClass(f)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			return v1, append(mut, extra)
		}
	}
	t.Fatal("no corpus class is mutable")
	return nil, nil
}

// TestDeltaRoundTrip pins the tentpole acceptance:
// ApplyDelta(old, Diff(old, new)) == new byte-for-byte, across v2→v3,
// v3→v3 and v3→v2 pairs, at several chunk sizes, and at every worker
// count — with the patch bytes themselves identical at every -j.
func TestDeltaRoundTrip(t *testing.T) {
	oldFiles, newFiles := bumpedSample(t, 0.10)
	cases := []struct{ oldChunk, newChunk int }{
		{0, 8},  // v2 -> v3
		{8, 8},  // v3 -> v3, same chunking
		{4, 16}, // v3 -> v3, re-chunked
		{8, 0},  // v3 -> v2
	}
	for _, tc := range cases {
		oldOpts, newOpts := DefaultOptions(), DefaultOptions()
		oldOpts.ChunkClasses, newOpts.ChunkClasses = tc.oldChunk, tc.newChunk
		oldArc, err := Pack(oldFiles, &oldOpts)
		if err != nil {
			t.Fatal(err)
		}
		newArc, err := Pack(newFiles, &newOpts)
		if err != nil {
			t.Fatal(err)
		}
		var first []byte
		for _, j := range []int{1, 2, 0} {
			opts := &Options{Concurrency: j}
			patch, err := Diff(oldArc, newArc, opts)
			if err != nil {
				t.Fatalf("chunks %d->%d j=%d: Diff: %v", tc.oldChunk, tc.newChunk, j, err)
			}
			if first == nil {
				first = patch
			} else if !bytes.Equal(first, patch) {
				t.Fatalf("chunks %d->%d: j=%d produced different patch bytes", tc.oldChunk, tc.newChunk, j)
			}
			got, err := ApplyDelta(oldArc, patch, opts)
			if err != nil {
				t.Fatalf("chunks %d->%d j=%d: ApplyDelta: %v", tc.oldChunk, tc.newChunk, j, err)
			}
			if !bytes.Equal(got, newArc) {
				t.Fatalf("chunks %d->%d j=%d: reconstruction is not byte-identical", tc.oldChunk, tc.newChunk, j)
			}
		}
		sum, err := DescribeDelta(first, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sum.NewClasses != len(newFiles) || sum.PayloadClasses == 0 ||
			sum.CopiedClasses+sum.PayloadClasses != sum.NewClasses {
			t.Fatalf("chunks %d->%d: summary %+v inconsistent", tc.oldChunk, tc.newChunk, sum)
		}
		if len(first) >= len(newArc) {
			t.Errorf("chunks %d->%d: patch (%d bytes) is no smaller than the archive (%d bytes)",
				tc.oldChunk, tc.newChunk, len(first), len(newArc))
		}
	}
}

// TestDeltaIdenticalArchives pins the degenerate case: diffing an
// archive against itself yields a payload-free patch a fraction of the
// archive's size, and — for chunked archives — decodes nothing on
// either side (unchanged chunks match by body hash alone).
func TestDeltaIdenticalArchives(t *testing.T) {
	opts := DefaultOptions()
	opts.ChunkClasses = 8
	arc, err := Pack(sample(t), &opts)
	if err != nil {
		t.Fatal(err)
	}
	oldA, err := OpenArchiveBytes(arc, nil)
	if err != nil {
		t.Fatal(err)
	}
	newA, err := OpenArchiveBytes(arc, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := diffArchives(oldA, newA, arc, arc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := oldA.DecodedBytes() + newA.DecodedBytes(); got != 0 {
		t.Errorf("identical diff decoded %d bytes, want 0", got)
	}
	if p.PayloadClasses() != 0 || len(p.Payload) != 0 {
		t.Errorf("identical diff carries a payload: %d classes, %d bytes",
			p.PayloadClasses(), len(p.Payload))
	}
	patch := p.Encode()
	if len(patch)*4 > len(arc) {
		t.Errorf("identity patch is %d bytes for a %d-byte archive", len(patch), len(arc))
	}
	got, err := ApplyDelta(arc, patch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, arc) {
		t.Fatal("identity patch did not reproduce the archive")
	}
}

// TestDeltaTouchesOnlyChangedChunks pins the lazy-diff property on a
// version bump over a corpus large enough to span many chunks: the
// diff decodes strictly less than a full extraction of both archives
// would, because unchanged chunks match by body hash alone.
func TestDeltaTouchesOnlyChangedChunks(t *testing.T) {
	p, err := synth.ProfileByName("rt")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	oldFiles := make([][]byte, len(cfs))
	for i, cf := range cfs {
		if oldFiles[i], err = classfile.Write(cf); err != nil {
			t.Fatal(err)
		}
	}
	newFiles, changed, err := synth.MutateClasses(oldFiles, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 || changed*4 > len(oldFiles) {
		t.Fatalf("version bump changed %d of %d classes", changed, len(oldFiles))
	}
	opts := DefaultOptions()
	opts.ChunkClasses = 4
	oldArc, err := Pack(oldFiles, &opts)
	if err != nil {
		t.Fatal(err)
	}
	newArc, err := Pack(newFiles, &opts)
	if err != nil {
		t.Fatal(err)
	}
	fullDecoded := func(arc []byte) int64 {
		a, err := OpenArchiveBytes(arc, nil)
		if err != nil {
			t.Fatal(err)
		}
		ords := make([]int, a.NumClasses())
		for i := range ords {
			ords[i] = i
		}
		if _, err := a.ExtractOrdinals(ords); err != nil {
			t.Fatal(err)
		}
		return a.DecodedBytes()
	}
	full := fullDecoded(oldArc) + fullDecoded(newArc)
	oldA, err := OpenArchiveBytes(oldArc, nil)
	if err != nil {
		t.Fatal(err)
	}
	newA, err := OpenArchiveBytes(newArc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := diffArchives(oldA, newA, oldArc, newArc, nil); err != nil {
		t.Fatal(err)
	}
	diffed := oldA.DecodedBytes() + newA.DecodedBytes()
	if diffed >= full {
		t.Errorf("diff decoded %d bytes, full extraction %d — no chunk was skipped", diffed, full)
	}
}

// TestDeltaMismatch: a well-formed patch applied to the wrong base
// archive fails with ErrDeltaMismatch, not garbage output.
func TestDeltaMismatch(t *testing.T) {
	oldFiles, newFiles := bumpedSample(t, 0.10)
	opts := DefaultOptions()
	opts.ChunkClasses = 8
	oldArc, err := Pack(oldFiles, &opts)
	if err != nil {
		t.Fatal(err)
	}
	newArc, err := Pack(newFiles, &opts)
	if err != nil {
		t.Fatal(err)
	}
	patch, err := Diff(oldArc, newArc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyDelta(newArc, patch, nil); !errors.Is(err, ErrDeltaMismatch) {
		t.Fatalf("ApplyDelta(wrong base) = %v, want ErrDeltaMismatch", err)
	}
}

// TestDeltaCorruptPatch drives a deterministic fault-injection plan
// over a real patch: every mutant must either fail with a CorruptError
// (the whole-patch CRC catches any single corruption) or — if the fault
// landed outside the encoded bytes — reproduce the new archive exactly.
func TestDeltaCorruptPatch(t *testing.T) {
	oldFiles, newFiles := bumpedSample(t, 0.10)
	opts := DefaultOptions()
	opts.ChunkClasses = 8
	oldArc, err := Pack(oldFiles, &opts)
	if err != nil {
		t.Fatal(err)
	}
	newArc, err := Pack(newFiles, &opts)
	if err != nil {
		t.Fatal(err)
	}
	patch, err := Diff(oldArc, newArc, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(42)
	for i := 0; i < 60; i++ {
		fault := plan.Next(len(patch))
		mutant := fault.Apply(bytes.Clone(patch))
		if bytes.Equal(mutant, patch) {
			continue
		}
		got, err := ApplyDelta(oldArc, mutant, nil)
		if err == nil {
			if !bytes.Equal(got, newArc) {
				t.Fatalf("fault %s: corrupt patch applied to wrong bytes", fault.Name())
			}
			continue
		}
		if _, ok := AsCorrupt(err); !ok && !errors.Is(err, ErrDeltaMismatch) {
			t.Fatalf("fault %s: error %v is neither CorruptError nor ErrDeltaMismatch", fault.Name(), err)
		}
	}
}

// TestDeltaCaps: patch decoding honors MaxClassCount (ops) and
// MaxDecodedBytes (payload), both wrapping ErrTooLarge.
func TestDeltaCaps(t *testing.T) {
	oldFiles, newFiles := bumpedSample(t, 0.10)
	opts := DefaultOptions()
	opts.ChunkClasses = 8
	oldArc, err := Pack(oldFiles, &opts)
	if err != nil {
		t.Fatal(err)
	}
	newArc, err := Pack(newFiles, &opts)
	if err != nil {
		t.Fatal(err)
	}
	patch, err := Diff(oldArc, newArc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyDelta(oldArc, patch, &Options{MaxClassCount: 2}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("MaxClassCount=2: %v, want ErrTooLarge", err)
	}
	if _, err := ApplyDelta(oldArc, patch, &Options{MaxDecodedBytes: 64}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("MaxDecodedBytes=64: %v, want ErrTooLarge", err)
	}
	if _, err := ApplyDelta(oldArc, patch, nil); err != nil {
		t.Fatalf("default caps must pass: %v", err)
	}
}

// TestDeltaVersion1Target: version-1 archives cannot be delta targets.
func TestDeltaVersion1Target(t *testing.T) {
	raw := sample(t)
	asFiles := make([]File, len(raw))
	for i, d := range raw {
		asFiles[i] = File{Data: d}
	}
	v1arc := packLegacy(t, asFiles)
	opts := DefaultOptions()
	opts.ChunkClasses = 8
	v3arc, err := Pack(sample(t), &opts)
	if err != nil {
		t.Fatal(err)
	}
	// v1 as the *old* side is fine.
	patch, err := Diff(v1arc, v3arc, nil)
	if err != nil {
		t.Fatalf("Diff(v1 -> v3): %v", err)
	}
	got, err := ApplyDelta(v1arc, patch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v3arc) {
		t.Fatal("v1->v3 reconstruction differs")
	}
	// v1 as the *new* side is rejected.
	if _, err := Diff(v3arc, v1arc, nil); err == nil {
		t.Fatal("Diff accepted a version-1 delta target")
	}
}
