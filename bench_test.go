package classpack

import (
	"fmt"
	"runtime"
	"testing"

	"classpack/internal/bench"
	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/refs"
	"classpack/internal/strip"
	"classpack/internal/synth"
)

// benchScale keeps `go test -bench=.` tractable; cmd/benchtables runs the
// full paper-scale corpora (-scale 1.0).
const benchScale = 0.05

// Tables 1–8 and Figure 2: one benchmark per experiment. Each regenerates
// the complete table over all 19 corpora (corpora are cached per process,
// so iterations time the measurement itself).

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table4(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table5(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table6(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table7(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table8(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure2(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCorpus loads the stripped javac-like corpus once.
func benchCorpus(b *testing.B) []*classfile.ClassFile {
	b.Helper()
	c, err := bench.Load("213_javac", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return c.Stripped
}

// Throughput benchmarks for the compressor and decompressor (Table 7's
// underlying measurement, reported per byte of wire format).

func BenchmarkPack(b *testing.B) {
	cfs := benchCorpus(b)
	packed, err := core.Pack(cfs, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(packed)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Pack(cfs, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	cfs := benchCorpus(b)
	packed, err := core.Pack(cfs, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(packed)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Unpack(packed); err != nil {
			b.Fatal(err)
		}
	}
}

// benchThroughputInput loads the javac-like corpus as raw stripped file
// bytes — the whole-pipeline input the public API consumes — plus their
// total size for b.SetBytes.
func benchThroughputInput(b *testing.B) ([][]byte, int64) {
	b.Helper()
	c, err := bench.Load("213_javac", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	files := make([][]byte, len(c.StrippedFiles))
	var total int64
	for i, f := range c.StrippedFiles {
		files[i] = f.Data
		total += int64(len(f.Data))
	}
	return files, total
}

// benchJobLevels reports the worker counts the throughput benchmarks
// sweep: the serial baseline and all cores (when they differ).
func benchJobLevels() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkPackThroughput measures end-to-end pack MB/s (parse + strip +
// encode + compress) over class-file input bytes, at -j 1 and -j
// NumCPU, tracking the parallel pipeline's speedup in BENCH_*.json.
func BenchmarkPackThroughput(b *testing.B) {
	files, total := benchThroughputInput(b)
	for _, j := range benchJobLevels() {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Concurrency = j
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Pack(files, &opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUnpackThroughput measures end-to-end unpack MB/s (decompress
// + decode + reserialize) over reproduced class-file bytes, at -j 1 and
// -j NumCPU.
func BenchmarkUnpackThroughput(b *testing.B) {
	files, total := benchThroughputInput(b)
	packed, err := Pack(files, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range benchJobLevels() {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := UnpackN(packed, j); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation benchmarks for the design decisions DESIGN.md calls out: each
// reports the packed size through the custom "bytes" metric so the cost
// of turning a feature off is visible next to its speed.

func benchPackOption(b *testing.B, opts core.Options) {
	cfs := benchCorpus(b)
	packed, err := core.Pack(cfs, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Pack(cfs, opts); err != nil {
			b.Fatal(err)
		}
	}
	// Reported after the loop: ResetTimer clears metrics recorded earlier.
	b.ReportMetric(float64(len(packed)), "packed-bytes")
}

func BenchmarkAblationDefault(b *testing.B) {
	benchPackOption(b, core.DefaultOptions())
}

func BenchmarkAblationNoStackState(b *testing.B) {
	benchPackOption(b, core.Options{Scheme: refs.MTFFull, StackState: false, Compress: true})
}

func BenchmarkAblationNoTransients(b *testing.B) {
	benchPackOption(b, core.Options{Scheme: refs.MTFContext, StackState: true, Compress: true})
}

func BenchmarkAblationNoContext(b *testing.B) {
	benchPackOption(b, core.Options{Scheme: refs.MTFTransients, StackState: true, Compress: true})
}

func BenchmarkAblationBasicScheme(b *testing.B) {
	benchPackOption(b, core.Options{Scheme: refs.Basic, StackState: true, Compress: true})
}

func BenchmarkAblationNoCompress(b *testing.B) {
	benchPackOption(b, core.Options{Scheme: refs.MTFFull, StackState: true, Compress: false})
}

// BenchmarkArithVsFlate reproduces the §5 coder comparison on virtual
// method reference indices.
func BenchmarkArithVsFlate(b *testing.B) {
	fl, ar, err := bench.ArithVsFlate(benchScale, "213_javac")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(fl), "flate-bytes")
	b.ReportMetric(float64(ar), "arith-bytes")
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.ArithVsFlate(benchScale, "213_javac"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStrip measures the §2 canonicalization alone.
func BenchmarkStrip(b *testing.B) {
	p, err := synth.ProfileByName("213_javac")
	if err != nil {
		b.Fatal(err)
	}
	cfs, err := synth.Generate(p, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	raw := make([][]byte, len(cfs))
	total := 0
	for i, cf := range cfs {
		if raw[i], err = classfile.Write(cf); err != nil {
			b.Fatal(err)
		}
		total += len(raw[i])
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, data := range raw {
			cf, err := classfile.Parse(data)
			if err != nil {
				b.Fatal(err)
			}
			if err := strip.Apply(cf, strip.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblationPreload(b *testing.B) {
	opts := core.DefaultOptions()
	opts.Preload = true
	benchPackOption(b, opts)
}
