package classpack

import (
	"bytes"
	"fmt"
	"testing"

	"classpack/internal/archive"
	"classpack/internal/classfile"
	"classpack/internal/minijava"
	"classpack/internal/synth"
)

// sample returns raw (unstripped) classfile bytes from a generated corpus.
func sample(t testing.TB) [][]byte {
	t.Helper()
	p, err := synth.ProfileByName("Hanoi")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.Generate(p, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	files := make([][]byte, len(cfs))
	for i, cf := range cfs {
		if files[i], err = classfile.Write(cf); err != nil {
			t.Fatal(err)
		}
	}
	return files
}

func TestPackUnpackEqualsStrip(t *testing.T) {
	files := sample(t)
	packed, err := Pack(files, nil)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	out, err := Unpack(packed)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if len(out) != len(files) {
		t.Fatalf("got %d files, want %d", len(out), len(files))
	}
	for i, f := range out {
		want, err := Strip(files[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Data, want) {
			t.Fatalf("file %d (%s): Unpack(Pack(x)) != Strip(x)", i, f.Name)
		}
		if err := Verify(f.Data); err != nil {
			t.Fatalf("file %d: %v", i, err)
		}
		if len(f.Name) < 7 || f.Name[len(f.Name)-6:] != ".class" {
			t.Fatalf("file %d: bad name %q", i, f.Name)
		}
	}
}

func TestPackCompresses(t *testing.T) {
	files := sample(t)
	packed, err := Pack(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range files {
		total += len(f)
	}
	if len(packed)*2 >= total {
		t.Fatalf("packed %d bytes of %d raw: less than 2x", len(packed), total)
	}
}

func TestCustomOptions(t *testing.T) {
	files := sample(t)
	opts := Options{Scheme: SchemeBasic, StackState: false, Compress: true}
	packed, err := Pack(files, &opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(files) {
		t.Fatal("class count mismatch")
	}
}

func TestJarRoundTrip(t *testing.T) {
	files := sample(t)
	var members []archive.File
	for i, data := range files {
		cf, err := classfile.Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		_ = i
		members = append(members, archive.File{Name: cf.ThisClassName() + ".class", Data: data})
	}
	members = append(members, archive.File{Name: "logo.png", Data: []byte{1, 2, 3}})
	jar, err := archive.WriteJar(members)
	if err != nil {
		t.Fatal(err)
	}
	packed, skipped, err := PackJar(jar, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "logo.png" {
		t.Fatalf("skipped = %v", skipped)
	}
	outJar, err := UnpackToJar(packed)
	if err != nil {
		t.Fatal(err)
	}
	outMembers, err := archive.ReadJar(outJar)
	if err != nil {
		t.Fatal(err)
	}
	if len(outMembers) != len(files) {
		t.Fatalf("jar has %d members, want %d", len(outMembers), len(files))
	}
	for _, m := range outMembers {
		if err := Verify(m.Data); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestPackStats(t *testing.T) {
	files := sample(t)
	s, err := PackStats(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Strings <= 0 || s.Opcodes <= 0 || s.Ints <= 0 || s.Refs <= 0 {
		t.Fatalf("empty stat categories: %+v", s)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Pack([][]byte{{1, 2, 3}}, nil); err == nil {
		t.Error("Pack of junk succeeded")
	}
	if _, err := Unpack([]byte("not an archive")); err == nil {
		t.Error("Unpack of junk succeeded")
	}
	if _, err := Strip([]byte("junk")); err == nil {
		t.Error("Strip of junk succeeded")
	}
	if err := Verify([]byte("junk")); err == nil {
		t.Error("Verify of junk succeeded")
	}
	bad := Options{Scheme: 2 /* Freq: not decodable */, StackState: true, Compress: true}
	if _, err := Pack(sample(t), &bad); err == nil {
		t.Error("Pack with undecodable scheme succeeded")
	}
}

func TestStripIdempotent(t *testing.T) {
	files := sample(t)
	once, err := Strip(files[0])
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Strip(once)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(once, twice) {
		t.Fatal("Strip not idempotent")
	}
	if len(once) >= len(files[0]) {
		t.Fatalf("Strip did not shrink: %d -> %d", len(files[0]), len(once))
	}
}

func TestUnpackEachStreamsInOrder(t *testing.T) {
	files := sample(t)
	packed, err := Pack(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	all, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	err = UnpackEach(packed, func(f File) error {
		seen = append(seen, f.Name)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(all) {
		t.Fatalf("streamed %d classes, want %d", len(seen), len(all))
	}
	for i := range all {
		if seen[i] != all[i].Name {
			t.Fatalf("order diverged at %d: %s vs %s", i, seen[i], all[i].Name)
		}
	}
	// An aborting visitor stops the stream.
	calls := 0
	sentinel := fmt.Errorf("stop")
	err = UnpackEach(packed, func(File) error {
		calls++
		return sentinel
	})
	if err != sentinel || calls != 1 {
		t.Fatalf("abort: err=%v calls=%d", err, calls)
	}
}

func TestOrderForEagerLoading(t *testing.T) {
	cfs, err := minijava.Compile(`
class Main { public static void main(String[] a) { System.out.println(1); } }
class C extends B { public int f() { return 3; } }
class B extends A { public int f() { return 2; } }
class A { public int f() { return 1; } }
`, minijava.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var files [][]byte
	for _, cf := range cfs {
		data, werr := classfile.Write(cf)
		if werr != nil {
			t.Fatal(werr)
		}
		files = append(files, data)
	}
	ordered, err := OrderForEagerLoading(files)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, data := range ordered {
		cf, perr := classfile.Parse(data)
		if perr != nil {
			t.Fatal(perr)
		}
		pos[cf.ThisClassName()] = i
	}
	if !(pos["A"] < pos["B"] && pos["B"] < pos["C"]) {
		t.Fatalf("order violates superclass-first: %v", pos)
	}
	// Packing the ordered set still round-trips.
	packed, err := Pack(ordered, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack(packed); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDeep(t *testing.T) {
	files := sample(t)
	for _, data := range files {
		if err := VerifyDeep(data); err != nil {
			t.Fatal(err)
		}
	}
	// A class with broken bytecode passes Verify but not VerifyDeep.
	cf, err := classfile.Parse(files[0])
	if err != nil {
		t.Fatal(err)
	}
	for mi := range cf.Methods {
		if code := classfile.CodeOf(&cf.Methods[mi]); code != nil && len(code.Code) > 0 {
			code.Code = []byte{0x60, 0xb1} // iadd on an empty stack; return
			break
		}
	}
	bad, err := classfile.Write(cf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(bad); err != nil {
		t.Fatalf("structural verify rejected: %v", err)
	}
	if err := VerifyDeep(bad); err == nil {
		t.Fatal("VerifyDeep accepted stack underflow")
	}
}

// breakBytecode rewrites the first non-empty method body of a class to
// iadd-on-empty-stack followed by return: structurally valid, rejected
// by the dataflow verifier at pc 0.
func breakBytecode(t *testing.T, data []byte) []byte {
	t.Helper()
	cf, err := classfile.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for mi := range cf.Methods {
		if code := classfile.CodeOf(&cf.Methods[mi]); code != nil && len(code.Code) > 0 {
			code.Code = []byte{0x60, 0xb1} // iadd; return
			break
		}
	}
	bad, err := classfile.Write(cf)
	if err != nil {
		t.Fatal(err)
	}
	return bad
}

func TestVerifyBytecode(t *testing.T) {
	files := sample(t)
	verdicts, err := VerifyBytecode(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) == 0 {
		t.Fatal("no method verdicts for a class with methods")
	}
	for _, v := range verdicts {
		if !v.OK || v.Err != "" {
			t.Fatalf("valid class got failing verdict: %+v", v)
		}
		if v.Class == "" || v.Method == "" || v.Desc == "" {
			t.Fatalf("verdict missing method identity: %+v", v)
		}
	}

	bad := breakBytecode(t, files[0])
	verdicts, err = VerifyBytecode(bad)
	if err != nil {
		t.Fatalf("per-method verify failed structurally: %v", err)
	}
	failures := 0
	for _, v := range verdicts {
		if v.OK {
			continue
		}
		failures++
		if v.PC < 0 || v.Op == "" || v.Err == "" {
			t.Fatalf("failing verdict lacks pc/op context: %+v", v)
		}
	}
	if failures != 1 {
		t.Fatalf("%d failing verdicts, want exactly the broken method", failures)
	}

	// File-level damage is the error, not a verdict.
	if _, err := VerifyBytecode([]byte{0xde, 0xad}); err == nil {
		t.Fatal("VerifyBytecode accepted garbage")
	}
}
