// Package classpack compresses collections of Java class files into the
// packed wire format of William Pugh's "Compressing Java Class Files"
// (PLDI 1999), and decompresses such archives back into byte-identical
// class files.
//
// The format typically reaches 1/2 to 1/5 of the size of a compressed jar
// file by restructuring classfile information (factoring package names out
// of class names and class names out of type signatures), sharing
// constants across all files in the archive, encoding references through
// per-kind move-to-front queues keyed by an approximate stack state, and
// separating dissimilar data into independently DEFLATE-compressed
// streams.
//
// Basic usage:
//
//	packed, err := classpack.Pack(classfileBytes, nil)
//	...
//	files, err := classpack.Unpack(packed)
//
// As in the paper (§2), packing canonicalizes its input: debugging
// attributes (SourceFile, LineNumberTable, LocalVariableTable) and
// unrecognized attributes are removed, and the constant pool is
// garbage-collected and sorted. Unpack reproduces exactly those
// canonicalized files; Strip applies the same canonicalization alone, so
// Unpack(Pack(x)) == Strip(x) byte for byte.
package classpack

import (
	"fmt"
	"sort"

	"classpack/internal/archive"
	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/corrupt"
	"classpack/internal/par"
	"classpack/internal/refs"
	"classpack/internal/strip"
	"classpack/internal/verifier"
)

// CorruptError describes malformed or hostile archive data: the wire
// stream (or container section) decoding broke in, the byte offset
// within it when one is known (-1 otherwise), and the underlying cause.
// Every Unpack-path failure caused by the archive bytes is a
// *CorruptError or wraps one; extract it with errors.As or AsCorrupt.
type CorruptError = corrupt.Error

// ErrTooLarge is wrapped (test with errors.Is) by decode failures caused
// by a resource cap — MaxDecodedBytes, MaxClassCount, or a structural
// per-item limit — rather than malformed bytes. It is how callers tell
// "decompression bomb" apart from "garbage input".
var ErrTooLarge = corrupt.ErrTooLarge

// AsCorrupt extracts the first *CorruptError in err's chain, if any.
func AsCorrupt(err error) (*CorruptError, bool) { return corrupt.As(err) }

// Scheme selects a reference-encoding scheme (§5.1 of the paper).
type Scheme = refs.Scheme

// Reference-encoding schemes usable in Options. MTFFull — move-to-front
// with transients and use context — is the paper's shipping configuration.
const (
	SchemeSimple        = refs.Simple
	SchemeBasic         = refs.Basic
	SchemeMTFBasic      = refs.MTFBasic
	SchemeMTFTransients = refs.MTFTransients
	SchemeMTFContext    = refs.MTFContext
	SchemeMTFFull       = refs.MTFFull
)

// SchemeByName maps the conventional command-line names (as used by
// jpack -scheme and the jpackd -scheme flag) to Scheme values. The
// empty string means the default, SchemeMTFFull.
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "simple":
		return SchemeSimple, nil
	case "basic":
		return SchemeBasic, nil
	case "mtf":
		return SchemeMTFBasic, nil
	case "mtf-transients":
		return SchemeMTFTransients, nil
	case "mtf-context":
		return SchemeMTFContext, nil
	case "mtf-full", "":
		return SchemeMTFFull, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}

// Options control the packed format. The zero value is not valid; start
// from DefaultOptions.
type Options struct {
	// Scheme is the reference coding; it must be decodable
	// (SchemeSimple/Basic/MTF*).
	Scheme Scheme
	// StackState enables §7.1 typed-opcode collapsing and stack-context
	// method-reference pools.
	StackState bool
	// Compress enables per-stream DEFLATE compression.
	Compress bool
	// Preload seeds the reference pools with a standard table of common
	// JDK names (§14 of the paper); helpful mainly for small archives.
	Preload bool
	// Concurrency bounds the worker pool used for per-file
	// parse/canonicalize and per-stream compression: 0 means all cores,
	// 1 reproduces the serial path exactly. It is a local performance
	// knob only — the packed bytes are identical for every value.
	Concurrency int
	// MaxDecodedBytes caps the total decoded size of all wire streams
	// during unpacking (0 = a 1 GiB default). The cap is charged against
	// each stream's declared size before anything is inflated or
	// allocated, so a small archive claiming a huge payload fails in
	// time and memory proportional to the archive itself, with an error
	// wrapping ErrTooLarge. Decode-side only; ignored by Pack.
	MaxDecodedBytes int64
	// MaxClassCount caps the number of classes unpacking will
	// materialize (0 = 1<<20). Decode-side only; ignored by Pack.
	MaxClassCount int
	// ChunkClasses selects the version-3 random-access layout: a
	// positive value groups that many classes per chunk, each chunk
	// encoded from reset reference models, with a trailing seekable
	// class index so OpenArchive can extract any class in O(chunk) work.
	// Zero (the default) keeps the monolithic version-2 layout. Smaller
	// chunks extract faster but compress worse — models reset at every
	// chunk boundary. 64 is a reasonable starting point.
	ChunkClasses int
}

// DefaultOptions returns the paper's evaluated configuration.
func DefaultOptions() Options {
	o := core.DefaultOptions()
	return Options{Scheme: o.Scheme, StackState: o.StackState, Compress: o.Compress}
}

func (o *Options) core() core.Options {
	if o == nil {
		return core.DefaultOptions()
	}
	return core.Options{Scheme: o.Scheme, StackState: o.StackState,
		Compress: o.Compress, Preload: o.Preload, Concurrency: o.Concurrency,
		ChunkClasses: o.ChunkClasses}
}

// unpackOpts extracts the decode-side knobs; coding choices are read
// from the archive header, so the rest of Options is ignored.
func (o *Options) unpackOpts() core.UnpackOpts {
	if o == nil {
		return core.UnpackOpts{}
	}
	return core.UnpackOpts{Concurrency: o.Concurrency,
		MaxDecodedBytes: o.MaxDecodedBytes, MaxClassCount: o.MaxClassCount}
}

// File is one class file by name. Names follow the jar convention:
// the class's binary name plus ".class".
type File struct {
	Name string
	Data []byte
}

// checkConcurrency rejects negative worker bounds up front with a
// clear error, instead of leaving the interpretation to the worker
// pool (which would silently treat them as "all cores").
func checkConcurrency(concurrency int) error {
	if concurrency < 0 {
		return fmt.Errorf("classpack: negative Concurrency %d (use 0 for all cores, 1 for serial)",
			concurrency)
	}
	return nil
}

// Pack parses, canonicalizes (Strip), and packs a collection of class
// files into a single archive. A nil opts uses DefaultOptions. Per-file
// parsing and canonicalization fan out over Options.Concurrency workers
// (negative values are an error); the packed bytes are identical for
// every worker count.
func Pack(files [][]byte, opts *Options) ([]byte, error) {
	c := opts.core()
	if err := checkConcurrency(c.Concurrency); err != nil {
		return nil, err
	}
	cfs, err := parseAndStrip(files, c.Concurrency)
	if err != nil {
		return nil, err
	}
	return core.Pack(cfs, c)
}

// parseAndStrip runs the per-file front half of the pack pipeline —
// parse plus §2 canonicalization — on a bounded worker pool, each worker
// reusing one strip scratch arena across all its files. Results land by
// index, so downstream encoding sees files in input order.
func parseAndStrip(files [][]byte, concurrency int) ([]*classfile.ClassFile, error) {
	cfs := make([]*classfile.ClassFile, len(files))
	scratch := make([]strip.Scratch, par.Workers(concurrency, len(files)))
	err := par.DoWorkers(concurrency, len(files), func(w, i int) error {
		cf, err := classfile.Parse(files[i])
		if err != nil {
			return fmt.Errorf("classpack: file %d: %w", i, err)
		}
		if err := strip.ApplyScratch(cf, strip.Options{}, &scratch[w]); err != nil {
			return fmt.Errorf("classpack: file %d: %w", i, err)
		}
		cfs[i] = cf
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cfs, nil
}

// Unpack decompresses a packed archive into class files using all
// cores. Decompression is deterministic: it reproduces Strip of each
// input file byte for byte, regardless of worker count.
func Unpack(data []byte) ([]File, error) {
	return UnpackN(data, 0)
}

// UnpackN is Unpack with an explicit worker bound (0 = all cores, 1 =
// fully serial; negative values are an error). Stream decompression
// fans out first; classes are then decoded sequentially (reference
// pools are stateful) and the final per-file serialization fans out
// again, re-sequenced by index.
func UnpackN(data []byte, concurrency int) ([]File, error) {
	return unpackFiles(data, core.UnpackOpts{Concurrency: concurrency})
}

// UnpackOpts is Unpack with explicit decode options: Concurrency,
// MaxDecodedBytes and MaxClassCount are honored; the coding fields are
// ignored because the archive header fixes them. A nil opts behaves
// like Unpack. Failures caused by the archive bytes are *CorruptError
// values (or wrap one); cap violations additionally match ErrTooLarge.
func UnpackOpts(data []byte, opts *Options) ([]File, error) {
	return unpackFiles(data, opts.unpackOpts())
}

func unpackFiles(data []byte, o core.UnpackOpts) ([]File, error) {
	if err := checkConcurrency(o.Concurrency); err != nil {
		return nil, err
	}
	var cfs []*classfile.ClassFile
	err := core.UnpackStreamOpts(data, o, func(cf *classfile.ClassFile) error {
		cfs = append(cfs, cf)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]File, len(cfs))
	err = par.Do(o.Concurrency, len(cfs), func(i int) error {
		raw, err := classfile.Write(cfs[i])
		if err != nil {
			return err
		}
		out[i] = File{Name: cfs[i].ThisClassName() + ".class", Data: raw}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// UnpackEach decodes a packed archive sequentially, calling visit with
// each class file as soon as it is complete. The archive format is
// sequential, so an eager class loader (§11 of the paper) can define each
// class the moment it arrives instead of caching the whole archive; order
// the input superclass-first (see OrderForEagerLoading) so no definition
// blocks. A visit error aborts decoding.
func UnpackEach(data []byte, visit func(File) error) error {
	return core.UnpackStream(data, func(cf *classfile.ClassFile) error {
		raw, err := classfile.Write(cf)
		if err != nil {
			return err
		}
		return visit(File{Name: cf.ThisClassName() + ".class", Data: raw})
	})
}

// OrderForEagerLoading reorders class files so that every superclass
// precedes its subclasses (classes whose superclass is outside the set
// come first, then by inheritance depth). Packing in this order lets an
// eager loader define each decoded class immediately (§11: "we should
// make sure that the superclass of X ... appears in the archive before
// X"). The sort is stable within a depth.
func OrderForEagerLoading(files [][]byte) ([][]byte, error) {
	type entry struct {
		data  []byte
		name  string
		super string
	}
	entries := make([]entry, len(files))
	err := par.Do(0, len(files), func(i int) error {
		cf, err := classfile.Parse(files[i])
		if err != nil {
			return fmt.Errorf("classpack: file %d: %w", i, err)
		}
		entries[i] = entry{data: files[i], name: cf.ThisClassName(), super: cf.SuperClassName()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	byName := make(map[string]int, len(files))
	for i := range entries {
		byName[entries[i].name] = i
	}
	depth := make([]int, len(entries))
	var depthOf func(i int, guard int) int
	depthOf = func(i, guard int) int {
		if guard > len(entries) {
			return 0 // inheritance cycle in input; treat as root
		}
		if depth[i] != 0 {
			return depth[i]
		}
		d := 1
		if j, ok := byName[entries[i].super]; ok {
			d = 1 + depthOf(j, guard+1)
		}
		depth[i] = d
		return d
	}
	for i := range entries {
		depthOf(i, 0)
	}
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return depth[idx[a]] < depth[idx[b]] })
	out := make([][]byte, len(entries))
	for i, j := range idx {
		out[i] = entries[j].data
	}
	return out, nil
}

// Strip canonicalizes a single class file per §2 of the paper: debugging
// and unrecognized attributes are removed, and the constant pool is
// garbage-collected, deduplicated, and sorted.
func Strip(data []byte) ([]byte, error) {
	cf, err := classfile.Parse(data)
	if err != nil {
		return nil, err
	}
	if err := strip.Apply(cf, strip.Options{}); err != nil {
		return nil, err
	}
	return classfile.Write(cf)
}

// Verify structurally validates a class file (constant-pool cross
// references and member descriptors).
func Verify(data []byte) error {
	cf, err := classfile.Parse(data)
	if err != nil {
		return err
	}
	return classfile.Verify(cf)
}

// VerifyAll verifies a collection of class files on up to concurrency
// workers (0 = all cores, 1 = serial) and returns one error slot per
// file, aligned with the input; nil entries are valid files. A negative
// concurrency fills every slot with the same validation error. With deep
// set, each file additionally passes through the dataflow bytecode
// verifier (see VerifyDeep).
func VerifyAll(files [][]byte, deep bool, concurrency int) []error {
	errs := make([]error, len(files))
	if err := checkConcurrency(concurrency); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	_ = par.Do(concurrency, len(files), func(i int) error {
		if deep {
			errs[i] = VerifyDeep(files[i])
		} else {
			errs[i] = Verify(files[i])
		}
		return nil
	})
	return errs
}

// VerifyDeep additionally runs a dataflow bytecode verifier over every
// method (pre-Java-6-style type inference: stack discipline, operand
// types, frame merges, definite assignment of locals). Reference types
// are checked typelessly — subtype relationships would require the full
// class hierarchy, which a single file does not carry.
func VerifyDeep(data []byte) error {
	cf, err := classfile.Parse(data)
	if err != nil {
		return err
	}
	if err := classfile.Verify(cf); err != nil {
		return err
	}
	return verifier.Class(cf)
}

// MethodVerdict is one method's outcome from the dataflow bytecode
// verifier: either OK, or the failure located by pc and opcode.
type MethodVerdict struct {
	Class  string // class binary name
	Method string // method name
	Desc   string // method descriptor
	OK     bool
	PC     int    // failing bytecode offset; -1 when OK or when the failure is structural
	Op     string // failing opcode mnemonic; "" when OK or structural
	Err    string // failure message; "" when OK
}

// VerifyBytecode parses one class file and runs the dataflow bytecode
// verifier over every method independently, returning one verdict per
// method rather than stopping at the first failure. The error reports
// damage to the file itself (parse or constant-pool structure), which
// prevents any method from being judged.
func VerifyBytecode(data []byte) ([]MethodVerdict, error) {
	cf, err := classfile.Parse(data)
	if err != nil {
		return nil, err
	}
	if err := classfile.Verify(cf); err != nil {
		return nil, err
	}
	verdicts := verifier.ClassVerdicts(cf)
	out := make([]MethodVerdict, len(verdicts))
	for i, v := range verdicts {
		out[i] = MethodVerdict{
			Class:  cf.ThisClassName(),
			Method: v.Method,
			Desc:   v.Desc,
			OK:     v.OK(),
			PC:     -1,
		}
		if v.Err != nil {
			out[i].PC = v.Err.PC
			out[i].Op = v.Err.Op
			out[i].Err = v.Err.Err.Error()
		}
	}
	return out, nil
}

// PackJar packs every ".class" member of a jar (zip) archive, skipping
// other members, whose names are returned (§12: non-class files travel in
// a conventional jar alongside the packed archive).
func PackJar(jarData []byte, opts *Options) (packed []byte, skipped []string, err error) {
	members, err := archive.ReadJar(jarData)
	if err != nil {
		return nil, nil, err
	}
	var files [][]byte
	for _, m := range members {
		if len(m.Name) > 6 && m.Name[len(m.Name)-6:] == ".class" {
			files = append(files, m.Data)
		} else {
			skipped = append(skipped, m.Name)
		}
	}
	packed, err = Pack(files, opts)
	return packed, skipped, err
}

// UnpackToJar decompresses a packed archive and rebuilds a conventional
// jar file (per-file DEFLATE) from the classes, usable by any JVM.
func UnpackToJar(data []byte) ([]byte, error) {
	return UnpackToJarN(data, 0)
}

// UnpackToJarN is UnpackToJar with an explicit worker bound (0 = all
// cores, 1 = serial).
func UnpackToJarN(data []byte, concurrency int) ([]byte, error) {
	files, err := UnpackN(data, concurrency)
	if err != nil {
		return nil, err
	}
	return jarFromFiles(files)
}

// UnpackToJarOpts is UnpackToJar with explicit decode options (see
// UnpackOpts).
func UnpackToJarOpts(data []byte, opts *Options) ([]byte, error) {
	files, err := UnpackOpts(data, opts)
	if err != nil {
		return nil, err
	}
	return jarFromFiles(files)
}

func jarFromFiles(files []File) ([]byte, error) {
	members := make([]archive.File, len(files))
	for i, f := range files {
		members[i] = archive.File{Name: f.Name, Data: f.Data}
	}
	return archive.WriteJar(members)
}

// JarFromFiles builds a conventional jar from class files — the same
// layout UnpackToJar produces — for callers assembling subsets via
// Archive.ExtractClasses.
func JarFromFiles(files []File) ([]byte, error) { return jarFromFiles(files) }

// Stats describes a packed archive's composition by stream category
// (the Table 6 breakdown): compressed bytes attributed to strings,
// opcodes, integers, references, and miscellaneous streams.
type Stats struct {
	Strings, Opcodes, Ints, Refs, Misc int
}

// PackStats packs the files and reports where the bytes went.
func PackStats(files [][]byte, opts *Options) (Stats, error) {
	c := opts.core()
	if err := checkConcurrency(c.Concurrency); err != nil {
		return Stats{}, err
	}
	cfs, err := parseAndStrip(files, c.Concurrency)
	if err != nil {
		return Stats{}, err
	}
	sizes, err := core.PackStats(cfs, c)
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	for key, sz := range sizes {
		switch key[:3] {
		case "str":
			s.Strings += sz[1]
		case "ops":
			s.Opcodes += sz[1]
		case "int":
			s.Ints += sz[1]
		case "ref":
			s.Refs += sz[1]
		default:
			s.Misc += sz[1]
		}
	}
	return s, nil
}
