// Package classpack compresses collections of Java class files into the
// packed wire format of William Pugh's "Compressing Java Class Files"
// (PLDI 1999), and decompresses such archives back into byte-identical
// class files.
//
// The format typically reaches 1/2 to 1/5 of the size of a compressed jar
// file by restructuring classfile information (factoring package names out
// of class names and class names out of type signatures), sharing
// constants across all files in the archive, encoding references through
// per-kind move-to-front queues keyed by an approximate stack state, and
// separating dissimilar data into independently DEFLATE-compressed
// streams.
//
// Basic usage:
//
//	packed, err := classpack.Pack(classfileBytes, nil)
//	...
//	files, err := classpack.Unpack(packed)
//
// As in the paper (§2), packing canonicalizes its input: debugging
// attributes (SourceFile, LineNumberTable, LocalVariableTable) and
// unrecognized attributes are removed, and the constant pool is
// garbage-collected and sorted. Unpack reproduces exactly those
// canonicalized files; Strip applies the same canonicalization alone, so
// Unpack(Pack(x)) == Strip(x) byte for byte.
package classpack

import (
	"fmt"
	"sort"

	"classpack/internal/archive"
	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/refs"
	"classpack/internal/strip"
	"classpack/internal/verifier"
)

// Scheme selects a reference-encoding scheme (§5.1 of the paper).
type Scheme = refs.Scheme

// Reference-encoding schemes usable in Options. MTFFull — move-to-front
// with transients and use context — is the paper's shipping configuration.
const (
	SchemeSimple        = refs.Simple
	SchemeBasic         = refs.Basic
	SchemeMTFBasic      = refs.MTFBasic
	SchemeMTFTransients = refs.MTFTransients
	SchemeMTFContext    = refs.MTFContext
	SchemeMTFFull       = refs.MTFFull
)

// Options control the packed format. The zero value is not valid; start
// from DefaultOptions.
type Options struct {
	// Scheme is the reference coding; it must be decodable
	// (SchemeSimple/Basic/MTF*).
	Scheme Scheme
	// StackState enables §7.1 typed-opcode collapsing and stack-context
	// method-reference pools.
	StackState bool
	// Compress enables per-stream DEFLATE compression.
	Compress bool
	// Preload seeds the reference pools with a standard table of common
	// JDK names (§14 of the paper); helpful mainly for small archives.
	Preload bool
}

// DefaultOptions returns the paper's evaluated configuration.
func DefaultOptions() Options {
	o := core.DefaultOptions()
	return Options{Scheme: o.Scheme, StackState: o.StackState, Compress: o.Compress}
}

func (o *Options) core() core.Options {
	if o == nil {
		return core.DefaultOptions()
	}
	return core.Options{Scheme: o.Scheme, StackState: o.StackState,
		Compress: o.Compress, Preload: o.Preload}
}

// File is one class file by name. Names follow the jar convention:
// the class's binary name plus ".class".
type File struct {
	Name string
	Data []byte
}

// Pack parses, canonicalizes (Strip), and packs a collection of class
// files into a single archive. A nil opts uses DefaultOptions.
func Pack(files [][]byte, opts *Options) ([]byte, error) {
	cfs := make([]*classfile.ClassFile, len(files))
	for i, data := range files {
		cf, err := classfile.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("classpack: file %d: %w", i, err)
		}
		if err := strip.Apply(cf, strip.Options{}); err != nil {
			return nil, fmt.Errorf("classpack: file %d: %w", i, err)
		}
		cfs[i] = cf
	}
	return core.Pack(cfs, opts.core())
}

// Unpack decompresses a packed archive into class files. Decompression is
// deterministic: it reproduces Strip of each input file byte for byte.
func Unpack(data []byte) ([]File, error) {
	cfs, err := core.Unpack(data)
	if err != nil {
		return nil, err
	}
	out := make([]File, len(cfs))
	for i, cf := range cfs {
		raw, err := classfile.Write(cf)
		if err != nil {
			return nil, err
		}
		out[i] = File{Name: cf.ThisClassName() + ".class", Data: raw}
	}
	return out, nil
}

// UnpackEach decodes a packed archive sequentially, calling visit with
// each class file as soon as it is complete. The archive format is
// sequential, so an eager class loader (§11 of the paper) can define each
// class the moment it arrives instead of caching the whole archive; order
// the input superclass-first (see OrderForEagerLoading) so no definition
// blocks. A visit error aborts decoding.
func UnpackEach(data []byte, visit func(File) error) error {
	return core.UnpackStream(data, func(cf *classfile.ClassFile) error {
		raw, err := classfile.Write(cf)
		if err != nil {
			return err
		}
		return visit(File{Name: cf.ThisClassName() + ".class", Data: raw})
	})
}

// OrderForEagerLoading reorders class files so that every superclass
// precedes its subclasses (classes whose superclass is outside the set
// come first, then by inheritance depth). Packing in this order lets an
// eager loader define each decoded class immediately (§11: "we should
// make sure that the superclass of X ... appears in the archive before
// X"). The sort is stable within a depth.
func OrderForEagerLoading(files [][]byte) ([][]byte, error) {
	type entry struct {
		data  []byte
		name  string
		super string
	}
	entries := make([]entry, len(files))
	byName := make(map[string]int, len(files))
	for i, data := range files {
		cf, err := classfile.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("classpack: file %d: %w", i, err)
		}
		entries[i] = entry{data: data, name: cf.ThisClassName(), super: cf.SuperClassName()}
		byName[entries[i].name] = i
	}
	depth := make([]int, len(entries))
	var depthOf func(i int, guard int) int
	depthOf = func(i, guard int) int {
		if guard > len(entries) {
			return 0 // inheritance cycle in input; treat as root
		}
		if depth[i] != 0 {
			return depth[i]
		}
		d := 1
		if j, ok := byName[entries[i].super]; ok {
			d = 1 + depthOf(j, guard+1)
		}
		depth[i] = d
		return d
	}
	for i := range entries {
		depthOf(i, 0)
	}
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return depth[idx[a]] < depth[idx[b]] })
	out := make([][]byte, len(entries))
	for i, j := range idx {
		out[i] = entries[j].data
	}
	return out, nil
}

// Strip canonicalizes a single class file per §2 of the paper: debugging
// and unrecognized attributes are removed, and the constant pool is
// garbage-collected, deduplicated, and sorted.
func Strip(data []byte) ([]byte, error) {
	cf, err := classfile.Parse(data)
	if err != nil {
		return nil, err
	}
	if err := strip.Apply(cf, strip.Options{}); err != nil {
		return nil, err
	}
	return classfile.Write(cf)
}

// Verify structurally validates a class file (constant-pool cross
// references and member descriptors).
func Verify(data []byte) error {
	cf, err := classfile.Parse(data)
	if err != nil {
		return err
	}
	return classfile.Verify(cf)
}

// VerifyDeep additionally runs a dataflow bytecode verifier over every
// method (pre-Java-6-style type inference: stack discipline, operand
// types, frame merges, definite assignment of locals). Reference types
// are checked typelessly — subtype relationships would require the full
// class hierarchy, which a single file does not carry.
func VerifyDeep(data []byte) error {
	cf, err := classfile.Parse(data)
	if err != nil {
		return err
	}
	if err := classfile.Verify(cf); err != nil {
		return err
	}
	return verifier.Class(cf)
}

// PackJar packs every ".class" member of a jar (zip) archive, skipping
// other members, whose names are returned (§12: non-class files travel in
// a conventional jar alongside the packed archive).
func PackJar(jarData []byte, opts *Options) (packed []byte, skipped []string, err error) {
	members, err := archive.ReadJar(jarData)
	if err != nil {
		return nil, nil, err
	}
	var files [][]byte
	for _, m := range members {
		if len(m.Name) > 6 && m.Name[len(m.Name)-6:] == ".class" {
			files = append(files, m.Data)
		} else {
			skipped = append(skipped, m.Name)
		}
	}
	packed, err = Pack(files, opts)
	return packed, skipped, err
}

// UnpackToJar decompresses a packed archive and rebuilds a conventional
// jar file (per-file DEFLATE) from the classes, usable by any JVM.
func UnpackToJar(data []byte) ([]byte, error) {
	files, err := Unpack(data)
	if err != nil {
		return nil, err
	}
	members := make([]archive.File, len(files))
	for i, f := range files {
		members[i] = archive.File{Name: f.Name, Data: f.Data}
	}
	return archive.WriteJar(members)
}

// Stats describes a packed archive's composition by stream category
// (the Table 6 breakdown): compressed bytes attributed to strings,
// opcodes, integers, references, and miscellaneous streams.
type Stats struct {
	Strings, Opcodes, Ints, Refs, Misc int
}

// PackStats packs the files and reports where the bytes went.
func PackStats(files [][]byte, opts *Options) (Stats, error) {
	cfs := make([]*classfile.ClassFile, len(files))
	for i, data := range files {
		cf, err := classfile.Parse(data)
		if err != nil {
			return Stats{}, err
		}
		if err := strip.Apply(cf, strip.Options{}); err != nil {
			return Stats{}, err
		}
		cfs[i] = cf
	}
	sizes, err := core.PackStats(cfs, opts.core())
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	for key, sz := range sizes {
		switch key[:3] {
		case "str":
			s.Strings += sz[1]
		case "ops":
			s.Opcodes += sz[1]
		case "int":
			s.Ints += sz[1]
		case "ref":
			s.Refs += sz[1]
		default:
			s.Misc += sz[1]
		}
	}
	return s, nil
}
