package classpack

import (
	"bytes"
	"strings"
	"testing"

	"classpack/internal/archive"
	"classpack/internal/classfile"
)

// TestNegativeConcurrencyRejected pins the API contract: a negative
// worker bound is an input error with a self-explanatory message, not
// something the worker pool quietly reinterprets as "all cores".
func TestNegativeConcurrencyRejected(t *testing.T) {
	files := sample(t)
	opts := DefaultOptions()
	opts.Concurrency = -1

	wantErr := func(what string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s accepted Concurrency -1", what)
		}
		if !strings.Contains(err.Error(), "Concurrency") {
			t.Fatalf("%s: error %q does not name Concurrency", what, err)
		}
	}

	_, err := Pack(files, &opts)
	wantErr("Pack", err)
	_, err = PackStats(files, &opts)
	wantErr("PackStats", err)
	_, _, err = PackJar(validJar(t, files), &opts)
	wantErr("PackJar", err)

	packed, err := Pack(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = UnpackN(packed, -1)
	wantErr("UnpackN", err)
	_, err = UnpackToJarN(packed, -3)
	wantErr("UnpackToJarN", err)

	errs := VerifyAll(files, false, -2)
	if len(errs) != len(files) {
		t.Fatalf("VerifyAll returned %d slots, want %d", len(errs), len(files))
	}
	for i, e := range errs {
		wantErr("VerifyAll slot", e)
		_ = i
	}

	// Zero and positive bounds still work.
	opts.Concurrency = 0
	if _, err := Pack(files, &opts); err != nil {
		t.Fatalf("Pack with Concurrency 0: %v", err)
	}
	if _, err := UnpackN(packed, 1); err != nil {
		t.Fatalf("UnpackN with concurrency 1: %v", err)
	}
}

// validJar wraps raw class bytes into a jar, named by their class names.
func validJar(t *testing.T, files [][]byte) []byte {
	t.Helper()
	var members []archive.File
	for _, data := range files {
		cf, err := classfile.Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, archive.File{Name: cf.ThisClassName() + ".class", Data: data})
	}
	jar, err := archive.WriteJar(members)
	if err != nil {
		t.Fatal(err)
	}
	return jar
}

// TestPackJarRoundTripNonClassEntries packs a jar that mixes classes
// with resources, asserting the skipped list names exactly the
// non-class members (in jar order) and that every class payload
// round-trips byte-identically to its canonicalized (stripped) form,
// both via Unpack and via the rebuilt jar.
func TestPackJarRoundTripNonClassEntries(t *testing.T) {
	files := sample(t)
	strippedByName := make(map[string][]byte)
	var members []archive.File
	for _, data := range files {
		cf, err := classfile.Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		name := cf.ThisClassName() + ".class"
		stripped, err := Strip(data)
		if err != nil {
			t.Fatal(err)
		}
		strippedByName[name] = stripped
		members = append(members, archive.File{Name: name, Data: data})
	}
	nonClass := []archive.File{
		{Name: "META-INF/MANIFEST.MF", Data: []byte("Manifest-Version: 1.0\n")},
		{Name: "res/strings.properties", Data: []byte("hello=world\n")},
		{Name: "res/logo.png", Data: bytes.Repeat([]byte{7}, 64)},
	}
	// Interleave a resource between classes so order assertions are real.
	mixed := append([]archive.File{nonClass[0]}, members...)
	mixed = append(mixed, nonClass[1], nonClass[2])
	jar, err := archive.WriteJar(mixed)
	if err != nil {
		t.Fatal(err)
	}

	packed, skipped, err := PackJar(jar, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != len(nonClass) {
		t.Fatalf("skipped %d members, want %d: %v", len(skipped), len(nonClass), skipped)
	}
	for i, want := range []string{"META-INF/MANIFEST.MF", "res/strings.properties", "res/logo.png"} {
		if skipped[i] != want {
			t.Fatalf("skipped[%d] = %q, want %q", i, skipped[i], want)
		}
	}

	// Unpack: every class comes back byte-identical to Strip(original).
	out, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(files) {
		t.Fatalf("unpacked %d classes, want %d", len(out), len(files))
	}
	for _, f := range out {
		want, ok := strippedByName[f.Name]
		if !ok {
			t.Fatalf("unpacked unexpected class %s", f.Name)
		}
		if !bytes.Equal(f.Data, want) {
			t.Fatalf("%s: unpacked payload differs from stripped original", f.Name)
		}
	}

	// UnpackToJar: the rebuilt jar carries the same byte-identical
	// payloads (and, per §12, no resurrected resources).
	outJar, err := UnpackToJar(packed)
	if err != nil {
		t.Fatal(err)
	}
	outMembers, err := archive.ReadJar(outJar)
	if err != nil {
		t.Fatal(err)
	}
	if len(outMembers) != len(files) {
		t.Fatalf("rebuilt jar has %d members, want %d", len(outMembers), len(files))
	}
	for _, m := range outMembers {
		want, ok := strippedByName[m.Name]
		if !ok {
			t.Fatalf("rebuilt jar has unexpected member %s", m.Name)
		}
		if !bytes.Equal(m.Data, want) {
			t.Fatalf("%s: rebuilt jar payload differs from stripped original", m.Name)
		}
	}
}
