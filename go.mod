module classpack

go 1.22
