package classpack

import (
	"bytes"
	"testing"

	"classpack/internal/core"
)

// packLegacy packs already-canonicalized class bytes into a version-1
// (checksum-free) archive, the layout every pre-integrity release wrote.
func packLegacy(t testing.TB, files []File) []byte {
	t.Helper()
	raw := make([][]byte, len(files))
	for i, f := range files {
		raw[i] = f.Data
	}
	cfs, err := parseAndStrip(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := core.PackVersion(cfs, (*Options)(nil).core(), core.Version1)
	if err != nil {
		t.Fatal(err)
	}
	return packed
}

// TestLegacyVersion1RoundTrip pins backward compatibility: a version-1
// archive (no per-stream checksums, no trailer) must still unpack
// byte-identically through the same Unpack entry point, dispatching on
// the header's version byte.
func TestLegacyVersion1RoundTrip(t *testing.T) {
	files := sample(t)
	stripped := make([][]byte, len(files))
	var err error
	for i, f := range files {
		if stripped[i], err = Strip(f); err != nil {
			t.Fatal(err)
		}
	}
	current, err := Pack(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if current[4] != core.Version2 {
		t.Fatalf("Pack emits version %d, want %d", current[4], core.Version2)
	}
	clean, err := Unpack(current)
	if err != nil {
		t.Fatal(err)
	}
	legacy := packLegacy(t, clean)
	if legacy[4] != core.Version1 {
		t.Fatalf("legacy archive has version %d, want %d", legacy[4], core.Version1)
	}
	if len(legacy) >= len(current) {
		t.Fatalf("legacy archive (%d bytes) not smaller than checked archive (%d bytes)",
			len(legacy), len(current))
	}
	out, err := Unpack(legacy)
	if err != nil {
		t.Fatalf("Unpack(version-1 archive): %v", err)
	}
	if len(out) != len(stripped) {
		t.Fatalf("legacy unpack: %d files, want %d", len(out), len(stripped))
	}
	for i, f := range out {
		if !bytes.Equal(f.Data, stripped[i]) {
			t.Fatalf("legacy unpack: file %d (%s) differs from Strip(x)", i, f.Name)
		}
	}
}

// TestCheckedArchiveDeterministicAcrossConcurrency pins that the
// version-2 layout — checksums included — is byte-identical at every
// worker count, and that each worker count round-trips.
func TestCheckedArchiveDeterministicAcrossConcurrency(t *testing.T) {
	files := sample(t)
	var want []byte
	for _, j := range concurrencyLevels() {
		opts := DefaultOptions()
		opts.Concurrency = j
		packed, err := Pack(files, &opts)
		if err != nil {
			t.Fatalf("Concurrency=%d: %v", j, err)
		}
		if packed[4] != core.Version2 {
			t.Fatalf("Concurrency=%d: version %d, want %d", j, packed[4], core.Version2)
		}
		if want == nil {
			want = packed
		} else if !bytes.Equal(packed, want) {
			t.Fatalf("Concurrency=%d: checked archive differs from serial archive", j)
		}
		if _, err := UnpackN(packed, j); err != nil {
			t.Fatalf("UnpackN(j=%d) of checked archive: %v", j, err)
		}
	}
}

// TestChecksumOverhead pins the acceptance bound: the integrity layer
// (4 bytes per stream + 4-byte trailer) must cost at most 0.5% of the
// packed size on a bench-scale corpus.
func TestChecksumOverhead(t *testing.T) {
	_, clean := chaosCorpus(t)
	raw := make([][]byte, len(clean))
	for i, f := range clean {
		raw[i] = f.Data
	}
	cfs, err := parseAndStrip(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := core.PackVersion(cfs, (*Options)(nil).core(), core.Version1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := core.PackVersion(cfs, (*Options)(nil).core(), core.Version2)
	if err != nil {
		t.Fatal(err)
	}
	overhead := len(v2) - len(v1)
	if overhead <= 0 {
		t.Fatalf("checked archive not larger: v1 %d, v2 %d", len(v1), len(v2))
	}
	if 200*overhead > len(v1) {
		t.Fatalf("checksum overhead %d bytes is more than 0.5%% of %d packed bytes",
			overhead, len(v1))
	}
}
