package dump

import (
	"bytes"
	"strings"
	"testing"

	"classpack/internal/classfile"
	"classpack/internal/minijava"
	"classpack/internal/synth"
)

func compiled(t *testing.T) []*classfile.ClassFile {
	t.Helper()
	cfs, err := minijava.Compile(`
class Main { public static void main(String[] a) {
    System.out.println(new Box().grow(3));
} }
class Box {
    int size;
    public int grow(int by) {
        int i;
        i = 0;
        while (i < by) { size = size + 2; i = i + 1; }
        return size;
    }
}
`, minijava.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return cfs
}

func TestClassDump(t *testing.T) {
	var buf bytes.Buffer
	for _, cf := range compiled(t) {
		if err := Class(&buf, cf, Options{Pool: true, Code: true}); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, want := range []string{
		"class Main extends java/lang/Object",
		"class Box extends java/lang/Object",
		"method public static main([Ljava/lang/String;)V",
		"method public grow(I)I",
		"field protected I size",
		"constant pool:",
		"Methodref",
		"getfield",
		"putfield",
		"iload",
		"ifeq",
		"goto",
		"ireturn",
		"java/io/PrintStream.println:(I)V",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

func TestDumpEveryFormat(t *testing.T) {
	// A corpus class exercises switches, handlers, wide ops, and every
	// constant kind; Class must render them all without error.
	p, err := synth.ProfileByName("jmark20")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, cf := range cfs {
		if err := Class(&buf, cf, Options{Pool: true, Code: true}); err != nil {
			t.Fatalf("%s: %v", cf.ThisClassName(), err)
		}
	}
	out := buf.String()
	for _, want := range []string{"tableswitch", "lookupswitch", "exception table:", "catch"} {
		if !strings.Contains(out, want) {
			t.Errorf("corpus dump missing %q", want)
		}
	}
}

func TestOpcodeHistogram(t *testing.T) {
	names, counts, err := OpcodeHistogram(compiled(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 || len(names) != len(counts) {
		t.Fatalf("histogram sizes %d/%d", len(names), len(counts))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatal("histogram not sorted by count")
		}
	}
	found := false
	for _, n := range names {
		if n == "aload_0" {
			found = true
		}
	}
	if !found {
		t.Error("histogram missing aload_0")
	}
}

func TestFlagsText(t *testing.T) {
	if got := flagsText(classfile.AccPublic|classfile.AccStatic, true); got != "public static" {
		t.Errorf("flagsText = %q", got)
	}
	if got := flagsText(0, false); got != "package-private" {
		t.Errorf("flagsText(0) = %q", got)
	}
	if got := flagsText(classfile.AccSynchronized, true); got != "synchronized" {
		t.Errorf("flagsText(sync) = %q", got)
	}
}
