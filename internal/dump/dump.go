// Package dump renders classfiles in a javap-like textual form: header,
// constant pool, members, and disassembled bytecode. It drives the
// `jpack dump` subcommand and doubles as a debugging aid for every other
// package in the repository.
package dump

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
)

// Options control the rendering.
type Options struct {
	// Pool prints the constant pool table.
	Pool bool
	// Code disassembles method bodies.
	Code bool
}

// Class writes a textual rendering of cf.
func Class(w io.Writer, cf *classfile.ClassFile, opts Options) error {
	fmt.Fprintf(w, "class %s", cf.ThisClassName())
	if super := cf.SuperClassName(); super != "" {
		fmt.Fprintf(w, " extends %s", super)
	}
	if len(cf.Interfaces) > 0 {
		names := make([]string, len(cf.Interfaces))
		for i, idx := range cf.Interfaces {
			names[i] = cf.ClassNameAt(idx)
		}
		fmt.Fprintf(w, " implements %s", strings.Join(names, ", "))
	}
	fmt.Fprintf(w, "\n  version %d.%d, flags 0x%04x\n",
		cf.MajorVersion, cf.MinorVersion, cf.AccessFlags)

	if opts.Pool {
		fmt.Fprintln(w, "  constant pool:")
		for i := 1; i < len(cf.Pool); i++ {
			c := &cf.Pool[i]
			if c.Kind == classfile.KindInvalid {
				continue
			}
			fmt.Fprintf(w, "    #%-4d %-18s %s\n", i, c.Kind, constText(cf, uint16(i)))
			if c.Kind.Wide() {
				i++
			}
		}
	}

	for i := range cf.Fields {
		f := &cf.Fields[i]
		fmt.Fprintf(w, "  field %s %s %s%s\n", flagsText(f.AccessFlags, false),
			cf.MemberDesc(f), cf.MemberName(f), attrSuffix(cf, f.Attrs))
	}
	for i := range cf.Methods {
		m := &cf.Methods[i]
		fmt.Fprintf(w, "  method %s %s%s%s\n", flagsText(m.AccessFlags, true),
			cf.MemberName(m), cf.MemberDesc(m), attrSuffix(cf, m.Attrs))
		if !opts.Code {
			continue
		}
		code := classfile.CodeOf(m)
		if code == nil {
			continue
		}
		fmt.Fprintf(w, "    code: stack=%d locals=%d length=%d\n",
			code.MaxStack, code.MaxLocals, len(code.Code))
		if err := Code(w, cf, code); err != nil {
			return fmt.Errorf("dump: %s.%s: %w", cf.ThisClassName(), cf.MemberName(m), err)
		}
	}
	return nil
}

// attrSuffix summarizes non-code attributes.
func attrSuffix(cf *classfile.ClassFile, attrs []classfile.Attribute) string {
	var parts []string
	for _, a := range attrs {
		switch a := a.(type) {
		case *classfile.ConstantValueAttr:
			parts = append(parts, "= "+constText(cf, a.Index))
		case *classfile.ExceptionsAttr:
			names := make([]string, len(a.Classes))
			for i, c := range a.Classes {
				names[i] = cf.ClassNameAt(c)
			}
			parts = append(parts, "throws "+strings.Join(names, ", "))
		case *classfile.SyntheticAttr:
			parts = append(parts, "synthetic")
		case *classfile.DeprecatedAttr:
			parts = append(parts, "deprecated")
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "  (" + strings.Join(parts, "; ") + ")"
}

var flagNames = []struct {
	bit  uint16
	name string
	// methodOnly disambiguates the 0x0020 bit.
	methodMeaning string
}{
	{classfile.AccPublic, "public", "public"},
	{classfile.AccPrivate, "private", "private"},
	{classfile.AccProtected, "protected", "protected"},
	{classfile.AccStatic, "static", "static"},
	{classfile.AccFinal, "final", "final"},
	{classfile.AccSuper, "", "synchronized"},
	{classfile.AccVolatile, "volatile", ""},
	{classfile.AccTransient, "transient", ""},
	{classfile.AccNative, "", "native"},
	{classfile.AccAbstract, "abstract", "abstract"},
}

func flagsText(flags uint16, method bool) string {
	var out []string
	for _, f := range flagNames {
		if flags&f.bit == 0 {
			continue
		}
		name := f.name
		if method {
			name = f.methodMeaning
		}
		if name != "" {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return "package-private"
	}
	return strings.Join(out, " ")
}

// constText renders a constant-pool entry's value.
func constText(cf *classfile.ClassFile, idx uint16) string {
	if int(idx) >= len(cf.Pool) {
		return fmt.Sprintf("<bad index %d>", idx)
	}
	c := &cf.Pool[idx]
	switch c.Kind {
	case classfile.KindUtf8:
		return fmt.Sprintf("%q", c.Utf8)
	case classfile.KindInteger:
		return fmt.Sprint(c.Int)
	case classfile.KindFloat:
		return fmt.Sprintf("%gf", c.Float)
	case classfile.KindLong:
		return fmt.Sprintf("%dL", c.Long)
	case classfile.KindDouble:
		return fmt.Sprintf("%gd", c.Double)
	case classfile.KindClass:
		return cf.ClassNameAt(idx)
	case classfile.KindString:
		return fmt.Sprintf("%q", cf.Utf8At(c.Str))
	case classfile.KindNameAndType:
		return cf.Utf8At(c.Name) + ":" + cf.Utf8At(c.Desc)
	case classfile.KindFieldref, classfile.KindMethodref, classfile.KindInterfaceMethodref:
		nat := cf.Pool[c.NameAndType]
		return fmt.Sprintf("%s.%s:%s", cf.ClassNameAt(c.Class),
			cf.Utf8At(nat.Name), cf.Utf8At(nat.Desc))
	default:
		return "<invalid>"
	}
}

// Code disassembles one Code attribute.
func Code(w io.Writer, cf *classfile.ClassFile, code *classfile.CodeAttr) error {
	insns, err := bytecode.Decode(code.Code)
	if err != nil {
		return err
	}
	for i := range insns {
		fmt.Fprintf(w, "      %4d: %s\n", insns[i].Offset, Insn(cf, &insns[i]))
	}
	if len(code.Handlers) > 0 {
		fmt.Fprintln(w, "      exception table:")
		for _, h := range code.Handlers {
			catch := "any"
			if h.CatchType != 0 {
				catch = cf.ClassNameAt(h.CatchType)
			}
			fmt.Fprintf(w, "        [%d, %d) -> %d  catch %s\n",
				h.StartPC, h.EndPC, h.HandlerPC, catch)
		}
	}
	return nil
}

// Insn renders one instruction with symbolic operands.
func Insn(cf *classfile.ClassFile, in *bytecode.Instruction) string {
	name := in.Op.String()
	if in.Wide {
		name = "wide " + name
	}
	switch bytecode.FormatOf(in.Op) {
	case bytecode.FmtNone:
		return name
	case bytecode.FmtLocal:
		return fmt.Sprintf("%-15s %d", name, in.A)
	case bytecode.FmtIinc:
		return fmt.Sprintf("%-15s %d, %+d", name, in.A, in.B)
	case bytecode.FmtSByte, bytecode.FmtSShort:
		return fmt.Sprintf("%-15s %d", name, in.A)
	case bytecode.FmtNewArray:
		return fmt.Sprintf("%-15s %s", name, atypeName(in.A))
	case bytecode.FmtCP1, bytecode.FmtCP2:
		return fmt.Sprintf("%-15s #%d  // %s", name, in.A, constText(cf, uint16(in.A)))
	case bytecode.FmtInvokeInterface:
		return fmt.Sprintf("%-15s #%d, %d  // %s", name, in.A, in.B, constText(cf, uint16(in.A)))
	case bytecode.FmtMultiANewArray:
		return fmt.Sprintf("%-15s #%d, dims=%d  // %s", name, in.A, in.B, constText(cf, uint16(in.A)))
	case bytecode.FmtBranch2, bytecode.FmtBranch4:
		return fmt.Sprintf("%-15s -> %d", name, in.A)
	case bytecode.FmtTableSwitch:
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s { // %d..%d, default -> %d\n", name, in.Low, in.High, in.Default)
		for i, t := range in.Targets {
			fmt.Fprintf(&sb, "              %6d: -> %d\n", in.Low+int32(i), t)
		}
		sb.WriteString("            }")
		return sb.String()
	case bytecode.FmtLookupSwitch:
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s { // %d pairs, default -> %d\n", name, len(in.Keys), in.Default)
		for i, k := range in.Keys {
			fmt.Fprintf(&sb, "              %6d: -> %d\n", k, in.Targets[i])
		}
		sb.WriteString("            }")
		return sb.String()
	default:
		return name
	}
}

func atypeName(atype int) string {
	names := map[int]string{4: "boolean", 5: "char", 6: "float", 7: "double",
		8: "byte", 9: "short", 10: "int", 11: "long"}
	if n, ok := names[atype]; ok {
		return n
	}
	return fmt.Sprintf("atype=%d", atype)
}

// OpcodeHistogram tallies opcode frequencies over a set of classfiles,
// most frequent first — handy when inspecting corpus realism.
func OpcodeHistogram(cfs []*classfile.ClassFile) ([]string, []int, error) {
	counts := map[bytecode.Op]int{}
	for _, cf := range cfs {
		for mi := range cf.Methods {
			code := classfile.CodeOf(&cf.Methods[mi])
			if code == nil {
				continue
			}
			insns, err := bytecode.Decode(code.Code)
			if err != nil {
				return nil, nil, err
			}
			for i := range insns {
				counts[insns[i].Op]++
			}
		}
	}
	type oc struct {
		op bytecode.Op
		n  int
	}
	var all []oc
	for op, n := range counts {
		all = append(all, oc{op, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].op < all[j].op
	})
	names := make([]string, len(all))
	ns := make([]int, len(all))
	for i, e := range all {
		names[i] = e.op.String()
		ns[i] = e.n
	}
	return names, ns, nil
}
