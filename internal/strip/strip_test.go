package strip

import (
	"testing"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
)

// buildVictim makes a classfile with debug attributes, garbage constants,
// duplicate constants, and ldc-referenced scalars.
func buildVictim(t *testing.T) *classfile.ClassFile {
	t.Helper()
	b := classfile.NewBuilder("p/Victim", "java/lang/Object", classfile.AccPublic)
	b.AttachSourceFile("Victim.java")

	// Garbage: never referenced from anything.
	b.CF.Pool = append(b.CF.Pool,
		classfile.Constant{Kind: classfile.KindUtf8, Utf8: "zz_unused"},
		classfile.Constant{Kind: classfile.KindInteger, Int: 987654},
	)
	// Duplicate Utf8 entries with identical content.
	b.CF.Pool = append(b.CF.Pool,
		classfile.Constant{Kind: classfile.KindUtf8, Utf8: "dupName"},
		classfile.Constant{Kind: classfile.KindUtf8, Utf8: "dupName"},
	)
	dupA := uint16(len(b.CF.Pool) - 2)
	dupB := uint16(len(b.CF.Pool) - 1)

	cInt := b.Int(7)
	cStr := b.String("ldc me")
	cLong := b.Long(1 << 33)
	fRef := b.Fieldref("p/Victim", "x", "I")

	m := b.AddMethod(classfile.AccPublic, "go", "()I")
	a := bytecode.NewAssembler()
	a.Ldc(cInt)
	a.Ldc(cStr)
	a.Op(bytecode.Pop)
	a.Ldc2(cLong)
	a.Op(bytecode.Pop2)
	a.Local(bytecode.Aload, 0)
	a.CP(bytecode.Getfield, fRef)
	a.Op(bytecode.Iadd)
	a.Op(bytecode.Ireturn)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	attr := &classfile.CodeAttr{MaxStack: 3, MaxLocals: 1, Code: code}
	attr.Attrs = append(attr.Attrs, &classfile.LineNumberTableAttr{
		Entries: []classfile.LineNumber{{StartPC: 0, Line: 1}},
	})
	lnIdx := b.Utf8("LineNumberTable")
	attr.Attrs[0].(*classfile.LineNumberTableAttr).NameIndex = lnIdx
	b.AttachCode(m, attr)

	// Two fields whose names are the duplicate Utf8 entries.
	b.CF.Fields = append(b.CF.Fields,
		classfile.Member{AccessFlags: classfile.AccPublic, Name: dupA, Desc: b.Utf8("I")},
		classfile.Member{AccessFlags: classfile.AccPublic, Name: dupB, Desc: b.Utf8("I")},
	)
	b.AddField(classfile.AccPublic, "x", "I")

	b.CF.Attrs = append(b.CF.Attrs, &classfile.UnknownAttr{Name: "Mystery", Data: []byte{1}})
	// Give the unknown attribute a name entry so Verify passes pre-strip.
	b.CF.Attrs[len(b.CF.Attrs)-1].(*classfile.UnknownAttr).NameIndex = b.Utf8("Mystery")

	cf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := classfile.Verify(cf); err != nil {
		t.Fatal(err)
	}
	return cf
}

func poolStats(cf *classfile.ClassFile) (utf8, ints, total int) {
	for i := 1; i < len(cf.Pool); i++ {
		switch cf.Pool[i].Kind {
		case classfile.KindUtf8:
			utf8++
		case classfile.KindInteger:
			ints++
		}
		if cf.Pool[i].Kind != classfile.KindInvalid {
			total++
		}
	}
	return
}

func TestApplyShrinksAndStaysValid(t *testing.T) {
	cf := buildVictim(t)
	_, _, before := poolStats(cf)
	if err := Apply(cf, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := classfile.Verify(cf); err != nil {
		t.Fatalf("stripped file invalid: %v", err)
	}
	_, _, after := poolStats(cf)
	if after >= before {
		t.Fatalf("pool did not shrink: %d -> %d", before, after)
	}
	// Garbage is gone.
	for i := 1; i < len(cf.Pool); i++ {
		if cf.Pool[i].Kind == classfile.KindUtf8 && cf.Pool[i].Utf8 == "zz_unused" {
			t.Error("unused Utf8 survived")
		}
		if cf.Pool[i].Kind == classfile.KindInteger && cf.Pool[i].Int == 987654 {
			t.Error("unused Integer survived")
		}
	}
	// Debug and unknown attributes are gone; Code survived.
	for _, a := range cf.Attrs {
		switch a.(type) {
		case *classfile.SourceFileAttr, *classfile.UnknownAttr:
			t.Errorf("attribute %s survived", a.AttrName())
		}
	}
	if classfile.CodeOf(&cf.Methods[0]) == nil {
		t.Fatal("Code attribute lost")
	}
	for _, a := range classfile.CodeOf(&cf.Methods[0]).Attrs {
		if _, ok := a.(*classfile.LineNumberTableAttr); ok {
			t.Error("LineNumberTable survived inside Code")
		}
	}
	// Writable and reparsable.
	data, err := classfile.Write(cf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := classfile.Parse(data); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatesMerge(t *testing.T) {
	cf := buildVictim(t)
	if err := Apply(cf, Options{}); err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := 1; i < len(cf.Pool); i++ {
		if cf.Pool[i].Kind == classfile.KindUtf8 && cf.Pool[i].Utf8 == "dupName" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("dupName appears %d times after strip, want 1", count)
	}
	// Both fields still name "dupName".
	if cf.Utf8At(cf.Fields[0].Name) != "dupName" || cf.Utf8At(cf.Fields[1].Name) != "dupName" {
		t.Fatal("field names corrupted by merge")
	}
}

func TestLdcConstantsGetLowIndices(t *testing.T) {
	cf := buildVictim(t)
	if err := Apply(cf, Options{}); err != nil {
		t.Fatal(err)
	}
	code := classfile.CodeOf(&cf.Methods[0])
	insns, err := bytecode.Decode(code.Code)
	if err != nil {
		t.Fatal(err)
	}
	sawLdc := 0
	for i := range insns {
		in := &insns[i]
		switch in.Op {
		case bytecode.Ldc:
			sawLdc++
			if in.A > 0xff {
				t.Fatalf("ldc operand %d exceeds one byte", in.A)
			}
			k := cf.Pool[in.A].Kind
			if k != classfile.KindInteger && k != classfile.KindString {
				t.Fatalf("ldc points at %v", k)
			}
		case bytecode.Getfield:
			if cf.Pool[in.A].Kind != classfile.KindFieldref {
				t.Fatalf("getfield points at %v", cf.Pool[in.A].Kind)
			}
		case bytecode.Ldc2W:
			if cf.Pool[in.A].Kind != classfile.KindLong {
				t.Fatalf("ldc2_w points at %v", cf.Pool[in.A].Kind)
			}
			if cf.Pool[in.A].Long != 1<<33 {
				t.Fatalf("long value corrupted: %d", cf.Pool[in.A].Long)
			}
		}
	}
	if sawLdc != 2 {
		t.Fatalf("saw %d ldc instructions, want 2", sawLdc)
	}
	// Values must have followed the renumbering.
	var sawInt, sawStr bool
	for i := 1; i < len(cf.Pool); i++ {
		switch cf.Pool[i].Kind {
		case classfile.KindInteger:
			sawInt = cf.Pool[i].Int == 7
		case classfile.KindString:
			sawStr = cf.Utf8At(cf.Pool[i].Str) == "ldc me"
		}
	}
	if !sawInt || !sawStr {
		t.Fatal("ldc constant values lost")
	}
}

func TestPoolSortedByType(t *testing.T) {
	cf := buildVictim(t)
	if err := Apply(cf, Options{}); err != nil {
		t.Fatal(err)
	}
	// Utf8 entries must come last and be sorted by content.
	lastNonUtf8 := 0
	firstUtf8 := len(cf.Pool)
	var prev string
	for i := 1; i < len(cf.Pool); i++ {
		c := &cf.Pool[i]
		if c.Kind == classfile.KindInvalid {
			continue
		}
		if c.Kind == classfile.KindUtf8 {
			if i < firstUtf8 {
				firstUtf8 = i
			}
			if prev != "" && c.Utf8 < prev {
				t.Fatalf("Utf8 not sorted: %q after %q", c.Utf8, prev)
			}
			prev = c.Utf8
		} else {
			lastNonUtf8 = i
		}
	}
	if lastNonUtf8 > firstUtf8 {
		t.Fatalf("non-Utf8 entry at %d after first Utf8 at %d", lastNonUtf8, firstUtf8)
	}
}

func TestKeepDebug(t *testing.T) {
	cf := buildVictim(t)
	if err := Apply(cf, Options{KeepDebug: true}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range cf.Attrs {
		if _, ok := a.(*classfile.SourceFileAttr); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("SourceFile dropped despite KeepDebug")
	}
	if err := classfile.Verify(cf); err != nil {
		t.Fatal(err)
	}
}

func TestApplyIdempotent(t *testing.T) {
	cf := buildVictim(t)
	if err := Apply(cf, Options{}); err != nil {
		t.Fatal(err)
	}
	once, err := classfile.Write(cf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(cf, Options{}); err != nil {
		t.Fatal(err)
	}
	twice, err := classfile.Write(cf)
	if err != nil {
		t.Fatal(err)
	}
	if string(once) != string(twice) {
		t.Fatal("Apply is not idempotent")
	}
}

func TestApplyRejectsBadBytecode(t *testing.T) {
	cf := buildVictim(t)
	code := classfile.CodeOf(&cf.Methods[0])
	code.Code = []byte{0xfe} // undefined opcode
	if err := Apply(cf, Options{}); err == nil {
		t.Fatal("Apply accepted undecodable bytecode")
	}
}

func TestKeepDebugRenumbersDebugAttrs(t *testing.T) {
	// With KeepDebug, LNT/LVT survive and their Utf8 references must be
	// renumbered consistently.
	b := classfile.NewBuilder("p/D", "java/lang/Object", classfile.AccPublic)
	m := b.AddMethod(classfile.AccPublic, "f", "()V")
	attr := &classfile.CodeAttr{MaxStack: 0, MaxLocals: 1, Code: []byte{0xb1}}
	lnt := &classfile.LineNumberTableAttr{Entries: []classfile.LineNumber{{StartPC: 0, Line: 3}}}
	lnt.NameIndex = b.Utf8("LineNumberTable")
	lvt := &classfile.LocalVariableTableAttr{Entries: []classfile.LocalVariable{{
		StartPC: 0, Length: 1, Name: b.Utf8("this"), Desc: b.Utf8("Lp/D;"), Slot: 0,
	}}}
	lvt.NameIndex = b.Utf8("LocalVariableTable")
	attr.Attrs = append(attr.Attrs, lnt, lvt)
	b.AttachCode(m, attr)
	b.AttachSourceFile("D.java")
	cf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(cf, Options{KeepDebug: true}); err != nil {
		t.Fatal(err)
	}
	if err := classfile.Verify(cf); err != nil {
		t.Fatal(err)
	}
	code := classfile.CodeOf(&cf.Methods[0])
	var gotLVT *classfile.LocalVariableTableAttr
	for _, a := range code.Attrs {
		if v, ok := a.(*classfile.LocalVariableTableAttr); ok {
			gotLVT = v
		}
	}
	if gotLVT == nil {
		t.Fatal("LVT dropped despite KeepDebug")
	}
	if cf.Utf8At(gotLVT.Entries[0].Name) != "this" || cf.Utf8At(gotLVT.Entries[0].Desc) != "Lp/D;" {
		t.Fatal("LVT references corrupted by renumbering")
	}
}

func TestEmptyExceptionsAttrDropped(t *testing.T) {
	b := classfile.NewBuilder("p/E", "java/lang/Object", classfile.AccPublic)
	m := b.AddMethod(classfile.AccPublic|classfile.AccAbstract, "f", "()V")
	b.AttachExceptions(m, nil)
	cf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(cf, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, a := range cf.Methods[0].Attrs {
		if _, ok := a.(*classfile.ExceptionsAttr); ok {
			t.Fatal("empty Exceptions attribute survived")
		}
	}
}

func TestAttrOrderCanonical(t *testing.T) {
	// Build a method with Exceptions before Code; strip must reorder so
	// the unpacker's fixed emission order matches byte-for-byte.
	b := classfile.NewBuilder("p/O", "java/lang/Object", classfile.AccPublic)
	m := b.AddMethod(classfile.AccPublic, "f", "()V")
	b.AttachExceptions(m, []string{"java/lang/Exception"})
	b.AttachCode(m, &classfile.CodeAttr{MaxStack: 0, MaxLocals: 1, Code: []byte{0xb1}})
	cf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(cf, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := cf.Methods[0].Attrs[0].(*classfile.CodeAttr); !ok {
		t.Fatalf("first attribute is %T, want Code", cf.Methods[0].Attrs[0])
	}
	if _, ok := cf.Methods[0].Attrs[1].(*classfile.ExceptionsAttr); !ok {
		t.Fatalf("second attribute is %T, want Exceptions", cf.Methods[0].Attrs[1])
	}
}
