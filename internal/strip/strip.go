// Package strip implements the §2 canonicalizations the paper applies
// before any compression, to make jar-format comparisons fair:
//
//   - remove LineNumberTable, LocalVariableTable and SourceFile attributes
//     (and, optionally, unrecognized attributes, which the pack format
//     cannot renumber);
//   - garbage-collect the constant pool, merging duplicate entries;
//   - sort constant-pool entries by type, and Utf8 entries by content.
//
// Renumbering honors §9: integer, float and string constants referenced by
// the one-byte ldc instruction are placed at the smallest indices so ldc
// never needs to grow into ldc_w, keeping all code offsets valid.
package strip

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/par"
)

// Options selects which transformations Apply performs. Unrecognized
// attributes are always dropped: their constant-pool references cannot be
// updated during renumbering (§2 of the paper).
type Options struct {
	// KeepDebug retains LineNumberTable/LocalVariableTable/SourceFile.
	KeepDebug bool
}

// Apply transforms cf in place and reports an error if the classfile's
// bytecode cannot be decoded.
func Apply(cf *classfile.ClassFile, opts Options) error {
	return ApplyScratch(cf, opts, nil)
}

// Scratch holds the reusable working memory of one renumber pass:
// the decoded-instruction arena, mark tables, and content-key buffers.
// One Scratch serves one goroutine; passing the same Scratch to
// successive Apply calls eliminates nearly all per-file allocation.
// The zero value is ready for use.
type Scratch struct {
	arena  []bytecode.Instruction
	codes  []decodedCode
	used   []bool
	ldcRef []bool
	keys   []string
	kbuf   []byte
}

// boolTable returns buf resized to n and cleared, reallocating only when
// it has grown.
func boolTable(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// ApplyScratch is Apply with caller-owned scratch memory (nil behaves
// like Apply).
func ApplyScratch(cf *classfile.ClassFile, opts Options, sc *Scratch) error {
	dropAttrs(cf, opts)
	return renumber(cf, nil, sc)
}

// RenumberWithCode performs the garbage-collect/sort/renumber step using
// pre-decoded instruction lists for Code attributes whose byte arrays do
// not exist yet; the unpacker uses it to build canonical classfiles
// without first encoding code with out-of-range ldc indices.
func RenumberWithCode(cf *classfile.ClassFile, decoded map[*classfile.CodeAttr][]bytecode.Instruction) error {
	return RenumberWithCodeScratch(cf, decoded, nil)
}

// RenumberWithCodeScratch is RenumberWithCode with caller-owned scratch
// memory (nil behaves like RenumberWithCode).
func RenumberWithCodeScratch(cf *classfile.ClassFile, decoded map[*classfile.CodeAttr][]bytecode.Instruction, sc *Scratch) error {
	dropAttrs(cf, Options{})
	return renumber(cf, decoded, sc)
}

// ApplyAll strips every classfile in the slice serially. It is
// ApplyAllN with one worker.
func ApplyAll(cfs []*classfile.ClassFile, opts Options) error {
	return ApplyAllN(cfs, opts, 1)
}

// ApplyAllN strips the classfiles on up to concurrency workers (<= 0
// meaning all cores). Each classfile is canonicalized in place and
// independently of the others, so the result is identical for every
// worker count; the error returned is the one the serial loop would
// report first.
func ApplyAllN(cfs []*classfile.ClassFile, opts Options, concurrency int) error {
	scratch := make([]Scratch, par.Workers(concurrency, len(cfs)))
	return par.DoWorkers(concurrency, len(cfs), func(w, i int) error {
		if err := ApplyScratch(cfs[i], opts, &scratch[w]); err != nil {
			return fmt.Errorf("strip %s: %w", cfs[i].ThisClassName(), err)
		}
		return nil
	})
}

func keepAttr(a classfile.Attribute, opts Options) bool {
	switch a.(type) {
	case *classfile.LineNumberTableAttr, *classfile.LocalVariableTableAttr, *classfile.SourceFileAttr:
		return opts.KeepDebug
	case *classfile.UnknownAttr:
		return false
	default:
		return true
	}
}

func filterAttrs(attrs []classfile.Attribute, opts Options) []classfile.Attribute {
	out := attrs[:0]
	for _, a := range attrs {
		if !keepAttr(a, opts) {
			continue
		}
		if c, ok := a.(*classfile.CodeAttr); ok {
			c.Attrs = filterAttrs(c.Attrs, opts)
		}
		out = append(out, a)
	}
	return out
}

func dropAttrs(cf *classfile.ClassFile, opts Options) {
	cf.Attrs = filterAttrs(cf.Attrs, opts)
	for i := range cf.Fields {
		cf.Fields[i].Attrs = filterAttrs(cf.Fields[i].Attrs, opts)
	}
	for i := range cf.Methods {
		cf.Methods[i].Attrs = filterAttrs(cf.Methods[i].Attrs, opts)
	}
}

// attrRank fixes a canonical attribute order so that files rebuilt by the
// unpacker serialize identically to stripped originals.
func attrRank(a classfile.Attribute) int {
	switch a.(type) {
	case *classfile.CodeAttr, *classfile.ConstantValueAttr, *classfile.InnerClassesAttr:
		return 0
	case *classfile.ExceptionsAttr:
		return 1
	case *classfile.SourceFileAttr:
		return 2
	case *classfile.LineNumberTableAttr:
		return 3
	case *classfile.LocalVariableTableAttr:
		return 4
	case *classfile.SyntheticAttr:
		return 5
	case *classfile.DeprecatedAttr:
		return 6
	default:
		return 7
	}
}

// normalizeAttrs sorts attributes into canonical order and drops empty
// Exceptions and InnerClasses attributes (they carry no information and
// the wire format cannot distinguish them from absence).
func normalizeAttrs(attrs []classfile.Attribute) []classfile.Attribute {
	out := attrs[:0]
	for _, a := range attrs {
		switch a := a.(type) {
		case *classfile.ExceptionsAttr:
			if len(a.Classes) == 0 {
				continue
			}
		case *classfile.InnerClassesAttr:
			if len(a.Entries) == 0 {
				continue
			}
		case *classfile.CodeAttr:
			a.Attrs = normalizeAttrs(a.Attrs)
		}
		out = append(out, a)
	}
	sort.SliceStable(out, func(i, j int) bool { return attrRank(out[i]) < attrRank(out[j]) })
	return out
}

// sortGroup assigns the coarse ordering of §2/§9: ldc-referenced scalars
// first (so they land at one-byte indices), then other scalars, wide
// constants, symbolic entries, and finally Utf8 sorted by content.
func sortGroup(kind classfile.ConstKind, ldcRef bool) int {
	if ldcRef {
		return 0
	}
	switch kind {
	case classfile.KindInteger:
		return 1
	case classfile.KindFloat:
		return 2
	case classfile.KindString:
		return 3
	case classfile.KindLong:
		return 4
	case classfile.KindDouble:
		return 5
	case classfile.KindClass:
		return 6
	case classfile.KindNameAndType:
		return 7
	case classfile.KindFieldref:
		return 8
	case classfile.KindMethodref:
		return 9
	case classfile.KindInterfaceMethodref:
		return 10
	case classfile.KindUtf8:
		return 11
	default:
		return 12
	}
}

// contentKey returns a string that identifies a constant by value, used
// both to merge duplicates and as the deterministic sort key.
func contentKey(pool []classfile.Constant, idx uint16, depth int) string {
	return string(appendContentKey(nil, pool, idx, depth))
}

// appendContentKey is contentKey into a caller-owned buffer. The bytes
// replicate the historical fmt verbs exactly ("%d", "%08x", "%016x"):
// the keys order the renumbered pool, so any drift changes packed output.
func appendContentKey(dst []byte, pool []classfile.Constant, idx uint16, depth int) []byte {
	if idx == 0 || int(idx) >= len(pool) || depth > 4 {
		return strconv.AppendUint(append(dst, '!'), uint64(idx), 10)
	}
	c := &pool[idx]
	switch c.Kind {
	case classfile.KindUtf8:
		return append(append(dst, 'u'), c.Utf8...)
	case classfile.KindInteger:
		return strconv.AppendInt(append(dst, 'i'), int64(c.Int), 10)
	case classfile.KindFloat:
		return appendHexPad(append(dst, 'f'), uint64(float32Bits(c.Float)), 8)
	case classfile.KindLong:
		return strconv.AppendInt(append(dst, 'j'), c.Long, 10)
	case classfile.KindDouble:
		return appendHexPad(append(dst, 'd'), float64Bits(c.Double), 16)
	case classfile.KindClass:
		return appendContentKey(append(dst, 'c'), pool, c.Name, depth+1)
	case classfile.KindString:
		return appendContentKey(append(dst, 's'), pool, c.Str, depth+1)
	case classfile.KindNameAndType:
		dst = appendContentKey(append(dst, 'n'), pool, c.Name, depth+1)
		return appendContentKey(append(dst, 0), pool, c.Desc, depth+1)
	case classfile.KindFieldref, classfile.KindMethodref, classfile.KindInterfaceMethodref:
		dst = appendContentKey(append(dst, 'A'+byte(c.Kind)), pool, c.Class, depth+1)
		return appendContentKey(append(dst, 0), pool, c.NameAndType, depth+1)
	default:
		return strconv.AppendUint(append(dst, '?'), uint64(idx), 10)
	}
}

// appendHexPad appends v as exactly width lowercase hex digits
// (fmt's "%0<width>x" for values that fit).
func appendHexPad(dst []byte, v uint64, width int) []byte {
	const digits = "0123456789abcdef"
	var buf [16]byte
	for i := width - 1; i >= 0; i-- {
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return append(dst, buf[:width]...)
}

// decodedCode records one Code attribute's decoded instructions: either a
// caller-supplied slice (insns non-nil, the unpack path) or a range of
// the Scratch arena (the arena may have been reallocated by later
// appends, so ranges are resolved against the final arena).
type decodedCode struct {
	attr       *classfile.CodeAttr
	insns      []bytecode.Instruction
	start, end int
}

func renumber(cf *classfile.ClassFile, decoded map[*classfile.CodeAttr][]bytecode.Instruction, sc *Scratch) error {
	if sc == nil {
		sc = &Scratch{}
	}
	cf.Attrs = normalizeAttrs(cf.Attrs)
	for i := range cf.Fields {
		cf.Fields[i].Attrs = normalizeAttrs(cf.Fields[i].Attrs)
	}
	for i := range cf.Methods {
		cf.Methods[i].Attrs = normalizeAttrs(cf.Methods[i].Attrs)
	}
	pool := cf.Pool
	sc.used = boolTable(sc.used, len(pool))
	sc.ldcRef = boolTable(sc.ldcRef, len(pool))
	used, ldcRef := sc.used, sc.ldcRef

	var mark func(idx uint16)
	mark = func(idx uint16) {
		if idx == 0 || int(idx) >= len(pool) || used[idx] {
			return
		}
		used[idx] = true
		c := &pool[idx]
		switch c.Kind {
		case classfile.KindClass:
			mark(c.Name)
		case classfile.KindString:
			mark(c.Str)
		case classfile.KindNameAndType:
			mark(c.Name)
			mark(c.Desc)
		case classfile.KindFieldref, classfile.KindMethodref, classfile.KindInterfaceMethodref:
			mark(c.Class)
			mark(c.NameAndType)
		}
	}

	// Roots: header, members, attributes, and bytecode operands.
	mark(cf.ThisClass)
	mark(cf.SuperClass)
	for _, i := range cf.Interfaces {
		mark(i)
	}
	markMembers := func(members []classfile.Member) {
		for i := range members {
			mark(members[i].Name)
			mark(members[i].Desc)
			markAttrs(members[i].Attrs, mark)
		}
	}
	markMembers(cf.Fields)
	markMembers(cf.Methods)
	markAttrs(cf.Attrs, mark)

	codes := sc.codes[:0]
	arena := sc.arena[:0]
	for mi := range cf.Methods {
		code := classfile.CodeOf(&cf.Methods[mi])
		if code == nil {
			continue
		}
		dc := decodedCode{attr: code}
		insns, ok := decoded[code]
		if !ok {
			start := len(arena)
			grown, err := bytecode.DecodeAppend(arena, code.Code)
			if err != nil {
				return fmt.Errorf("method %s%s: %w",
					cf.MemberName(&cf.Methods[mi]), cf.MemberDesc(&cf.Methods[mi]), err)
			}
			arena = grown
			dc.start, dc.end = start, len(arena)
			insns = arena[start:] // valid for marking until the next append
		} else {
			dc.insns = insns
		}
		for i := range insns {
			in := &insns[i]
			if bytecode.IsCPRef(in.Op) {
				mark(uint16(in.A))
				if in.Op == bytecode.Ldc {
					ldcRef[in.A] = true
				}
			}
		}
		codes = append(codes, dc)
	}
	sc.arena, sc.codes = arena, codes

	// Merge duplicates and order survivors.
	keys := sc.keys
	if cap(keys) < len(pool) {
		keys = make([]string, len(pool))
	} else {
		keys = keys[:len(pool)]
		clear(keys)
	}
	sc.keys = keys
	for i := 1; i < len(pool); i++ {
		if used[i] {
			sc.kbuf = appendContentKey(sc.kbuf[:0], pool, uint16(i), 0)
			keys[i] = string(sc.kbuf)
		}
	}
	// A constant is ldc-referenced if any duplicate of it is.
	ldcByKey := make(map[string]bool)
	for i := 1; i < len(pool); i++ {
		if used[i] && ldcRef[i] {
			ldcByKey[keys[i]] = true
		}
	}
	type entry struct {
		key   string
		group int
		first int // original index of the first occurrence
	}
	var entries []entry
	seen := make(map[string]bool)
	for i := 1; i < len(pool); i++ {
		if !used[i] || seen[keys[i]] {
			continue
		}
		seen[keys[i]] = true
		entries = append(entries, entry{
			key:   keys[i],
			group: sortGroup(pool[i].Kind, ldcByKey[keys[i]]),
			first: i,
		})
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].group != entries[b].group {
			return entries[a].group < entries[b].group
		}
		if entries[a].key != entries[b].key {
			return entries[a].key < entries[b].key
		}
		return entries[a].first < entries[b].first
	})

	// Lay out the new pool and build the translation map.
	newPool := make([]classfile.Constant, 1, len(pool))
	newIndexByKey := make(map[string]uint16, len(entries))
	for _, e := range entries {
		idx := uint16(len(newPool))
		newPool = append(newPool, pool[e.first])
		if pool[e.first].Kind.Wide() {
			newPool = append(newPool, classfile.Constant{})
		}
		newIndexByKey[e.key] = idx
	}
	if len(newPool) > 0xFFFF {
		return fmt.Errorf("strip: renumbered pool overflows (%d entries)", len(newPool))
	}
	remap := func(idx uint16) uint16 {
		if idx == 0 {
			return 0
		}
		return newIndexByKey[keys[idx]]
	}
	// Verify the §9 guarantee before rewriting any code.
	for i := 1; i < len(pool); i++ {
		if used[i] && ldcRef[i] && remap(uint16(i)) > 0xff {
			return fmt.Errorf("strip: ldc constant remapped to index %d > 255", remap(uint16(i)))
		}
	}

	// Rewrite internal pool references.
	for i := 1; i < len(newPool); i++ {
		c := &newPool[i]
		switch c.Kind {
		case classfile.KindClass:
			c.Name = remap(c.Name)
		case classfile.KindString:
			c.Str = remap(c.Str)
		case classfile.KindNameAndType:
			c.Name = remap(c.Name)
			c.Desc = remap(c.Desc)
		case classfile.KindFieldref, classfile.KindMethodref, classfile.KindInterfaceMethodref:
			c.Class = remap(c.Class)
			c.NameAndType = remap(c.NameAndType)
		}
		if c.Kind.Wide() {
			i++
		}
	}
	// Rewrite structural references.
	cf.ThisClass = remap(cf.ThisClass)
	cf.SuperClass = remap(cf.SuperClass)
	for i := range cf.Interfaces {
		cf.Interfaces[i] = remap(cf.Interfaces[i])
	}
	remapMembers := func(members []classfile.Member) {
		for i := range members {
			members[i].Name = remap(members[i].Name)
			members[i].Desc = remap(members[i].Desc)
			remapAttrs(members[i].Attrs, remap)
		}
	}
	remapMembers(cf.Fields)
	remapMembers(cf.Methods)
	remapAttrs(cf.Attrs, remap)
	// Rewrite bytecode operands and re-encode.
	for _, dc := range codes {
		insns := dc.insns
		if insns == nil {
			insns = arena[dc.start:dc.end]
		}
		for i := range insns {
			in := &insns[i]
			if bytecode.IsCPRef(in.Op) {
				in.A = int(remap(uint16(in.A)))
			}
		}
		code, err := bytecode.Encode(insns)
		if err != nil {
			return fmt.Errorf("strip: re-encode: %w", err)
		}
		if dc.attr.Code != nil && len(code) != len(dc.attr.Code) {
			return fmt.Errorf("strip: code size changed from %d to %d", len(dc.attr.Code), len(code))
		}
		dc.attr.Code = code
	}
	cf.Pool = newPool
	return nil
}

func markAttrs(attrs []classfile.Attribute, mark func(uint16)) {
	for _, a := range attrs {
		mark(a2nameIndex(a))
		switch a := a.(type) {
		case *classfile.CodeAttr:
			for _, h := range a.Handlers {
				mark(h.CatchType)
			}
			markAttrs(a.Attrs, mark)
		case *classfile.ConstantValueAttr:
			mark(a.Index)
		case *classfile.ExceptionsAttr:
			for _, c := range a.Classes {
				mark(c)
			}
		case *classfile.SourceFileAttr:
			mark(a.Index)
		case *classfile.LocalVariableTableAttr:
			for _, e := range a.Entries {
				mark(e.Name)
				mark(e.Desc)
			}
		case *classfile.InnerClassesAttr:
			for _, e := range a.Entries {
				mark(e.Inner)
				mark(e.Outer)
				mark(e.InnerName)
			}
		}
	}
}

func remapAttrs(attrs []classfile.Attribute, remap func(uint16) uint16) {
	for _, a := range attrs {
		setNameIndex(a, remap(a2nameIndex(a)))
		switch a := a.(type) {
		case *classfile.CodeAttr:
			for i := range a.Handlers {
				a.Handlers[i].CatchType = remap(a.Handlers[i].CatchType)
			}
			remapAttrs(a.Attrs, remap)
		case *classfile.ConstantValueAttr:
			a.Index = remap(a.Index)
		case *classfile.ExceptionsAttr:
			for i := range a.Classes {
				a.Classes[i] = remap(a.Classes[i])
			}
		case *classfile.SourceFileAttr:
			a.Index = remap(a.Index)
		case *classfile.LocalVariableTableAttr:
			for i := range a.Entries {
				a.Entries[i].Name = remap(a.Entries[i].Name)
				a.Entries[i].Desc = remap(a.Entries[i].Desc)
			}
		case *classfile.InnerClassesAttr:
			for i := range a.Entries {
				a.Entries[i].Inner = remap(a.Entries[i].Inner)
				a.Entries[i].Outer = remap(a.Entries[i].Outer)
				a.Entries[i].InnerName = remap(a.Entries[i].InnerName)
			}
		}
	}
}

// a2nameIndex reads an attribute's name index via its interface; the field
// itself is promoted but the accessor on the interface is unexported.
func a2nameIndex(a classfile.Attribute) uint16 {
	switch a := a.(type) {
	case *classfile.CodeAttr:
		return a.NameIndex
	case *classfile.ConstantValueAttr:
		return a.NameIndex
	case *classfile.ExceptionsAttr:
		return a.NameIndex
	case *classfile.SourceFileAttr:
		return a.NameIndex
	case *classfile.LineNumberTableAttr:
		return a.NameIndex
	case *classfile.LocalVariableTableAttr:
		return a.NameIndex
	case *classfile.SyntheticAttr:
		return a.NameIndex
	case *classfile.DeprecatedAttr:
		return a.NameIndex
	case *classfile.InnerClassesAttr:
		return a.NameIndex
	case *classfile.UnknownAttr:
		return a.NameIndex
	default:
		return 0
	}
}

func setNameIndex(a classfile.Attribute, idx uint16) {
	switch a := a.(type) {
	case *classfile.CodeAttr:
		a.NameIndex = idx
	case *classfile.ConstantValueAttr:
		a.NameIndex = idx
	case *classfile.ExceptionsAttr:
		a.NameIndex = idx
	case *classfile.SourceFileAttr:
		a.NameIndex = idx
	case *classfile.LineNumberTableAttr:
		a.NameIndex = idx
	case *classfile.LocalVariableTableAttr:
		a.NameIndex = idx
	case *classfile.SyntheticAttr:
		a.NameIndex = idx
	case *classfile.DeprecatedAttr:
		a.NameIndex = idx
	case *classfile.InnerClassesAttr:
		a.NameIndex = idx
	case *classfile.UnknownAttr:
		a.NameIndex = idx
	}
}

func float32Bits(v float32) uint32 { return math.Float32bits(v) }
func float64Bits(v float64) uint64 { return math.Float64bits(v) }
