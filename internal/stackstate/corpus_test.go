package stackstate_test

import (
	"testing"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/stackstate"
	"classpack/internal/synth"
)

// TestSimSymmetryOverCorpus drives two independent simulations — one fed
// resolver info (the compressor side), one fed reconstructed info (the
// decompressor side) — over every method of a generated corpus, asserting
// that the collapse transposition inverts and the contexts never diverge.
// This exercises essentially every Step arm on realistic opcode mixes.
func TestSimSymmetryOverCorpus(t *testing.T) {
	for _, name := range []string{"jmark20", "222_mpegaudio", "213_javac"} {
		t.Run(name, func(t *testing.T) {
			p, err := synth.ProfileByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfs, err := synth.GenerateStripped(p, 0.03)
			if err != nil {
				t.Fatal(err)
			}
			collapsed, total := 0, 0
			for _, cf := range cfs {
				res := stackstate.NewClassFileResolver(cf)
				for mi := range cf.Methods {
					code := classfile.CodeOf(&cf.Methods[mi])
					if code == nil {
						continue
					}
					insns, err := bytecode.Decode(code.Code)
					if err != nil {
						t.Fatal(err)
					}
					var handlers []int
					for _, h := range code.Handlers {
						handlers = append(handlers, int(h.HandlerPC))
					}
					enc := stackstate.New(res, handlers)
					dec := stackstate.New(res, handlers)
					for i := range insns {
						in := &insns[i]
						enc.Begin(in.Offset)
						dec.Begin(in.Offset)
						if e, d := enc.ContextID(), dec.ContextID(); e != d {
							t.Fatalf("%s method %d offset %d: contexts %d vs %d",
								cf.ThisClassName(), mi, in.Offset, e, d)
						}
						wire := enc.WireOp(in.Op)
						if wire != in.Op {
							collapsed++
						}
						total++
						if back := dec.SourceOp(wire); back != in.Op {
							t.Fatalf("%s method %d offset %d: %s -> %s -> %s",
								cf.ThisClassName(), mi, in.Offset, in.Op, wire, back)
						}
						info := stackstate.InfoFor(res, in)
						enc.StepInfo(in, info)
						dec.StepInfo(in, info)
					}
				}
			}
			if collapsed == 0 {
				t.Fatal("no opcode collapsed over an entire corpus")
			}
			t.Logf("%s: %d/%d opcodes collapsed (%.1f%%)", name, collapsed, total,
				100*float64(collapsed)/float64(total))
		})
	}
}
