package stackstate

import (
	"classpack/internal/bytecode"
	"classpack/internal/classfile"
)

// typeKinds returns the stack slots a value of type t occupies.
func typeKinds(t classfile.Type) []Kind {
	if t.Dims > 0 {
		return []Kind{Ref}
	}
	switch t.Base {
	case 'B', 'C', 'S', 'Z', 'I':
		return []Kind{Int}
	case 'F':
		return []Kind{Float}
	case 'J':
		return []Kind{Long, Hi}
	case 'D':
		return []Kind{Double, Hi}
	case 'L':
		return []Kind{Ref}
	case 'V':
		return nil
	default:
		return []Kind{Unknown}
	}
}

func (s *Sim) lose() {
	s.known = false
	s.stack = s.stack[:0]
}

func (s *Sim) pop(slots int) {
	if !s.known {
		return
	}
	// slots < 0 can only come from a corrupt operand (e.g. a decoded
	// multianewarray dimension count); it must degrade the simulation,
	// not grow the slice past its length.
	if slots < 0 || len(s.stack) < slots {
		s.lose()
		return
	}
	s.stack = s.stack[:len(s.stack)-slots]
}

func (s *Sim) push(kinds ...Kind) {
	if !s.known {
		return
	}
	s.stack = append(s.stack, kinds...)
}

// save remembers the state for a forward branch target if the one
// remembered slot (§7.1) is free.
func (s *Sim) save(offset, target int) {
	if target <= offset || s.haveSaved {
		return
	}
	s.haveSaved = true
	s.savedTarget = target
	s.savedStack = append(s.savedStack[:0], s.stack...)
	s.savedKnown = s.known
}

// OpInfo carries the constant-pool facts an instruction needs for the
// simulation. The compressor fills it from the source classfile's pool;
// the decompressor fills it from the decoded reference — both sides derive
// it from the same logical data, keeping the simulations in lockstep.
type OpInfo struct {
	HasField bool
	Field    classfile.Type

	HasMethod bool
	Params    []classfile.Type
	Ret       classfile.Type

	HasConst bool
	Const    Kind
}

// InfoFor builds the OpInfo for in using a Resolver.
func InfoFor(res Resolver, in *bytecode.Instruction) OpInfo {
	var info OpInfo
	switch in.Op {
	case bytecode.Getstatic, bytecode.Putstatic, bytecode.Getfield, bytecode.Putfield:
		info.Field, info.HasField = res.FieldType(in.A)
	case bytecode.Invokevirtual, bytecode.Invokespecial, bytecode.Invokestatic, bytecode.Invokeinterface:
		info.Params, info.Ret, info.HasMethod = res.MethodType(in.A)
	case bytecode.Ldc, bytecode.LdcW, bytecode.Ldc2W:
		info.Const, info.HasConst = res.ConstKind(in.A)
	}
	return info
}

// Step advances the simulation over the actual (source) instruction,
// resolving operand information through the Resolver passed to New.
// Begin must have been called with in.Offset first.
func (s *Sim) Step(in *bytecode.Instruction) {
	s.StepInfo(in, InfoFor(s.res, in))
}

// StepInfo advances the simulation using caller-supplied operand
// information instead of the Resolver.
func (s *Sim) StepInfo(in *bytecode.Instruction, info OpInfo) {
	op := in.Op
	switch {
	case op >= bytecode.Iconst0 && op <= bytecode.Iconst5 || op == bytecode.IconstM1 ||
		op == bytecode.Bipush || op == bytecode.Sipush:
		s.push(Int)
	case op == bytecode.AconstNull:
		s.push(Ref)
	case op == bytecode.Lconst0 || op == bytecode.Lconst1:
		s.push(Long, Hi)
	case op >= bytecode.Fconst0 && op <= bytecode.Fconst2:
		s.push(Float)
	case op == bytecode.Dconst0 || op == bytecode.Dconst1:
		s.push(Double, Hi)
	case op == bytecode.Ldc || op == bytecode.LdcW:
		if info.HasConst {
			s.push(info.Const)
		} else {
			s.push(Unknown)
		}
	case op == bytecode.Ldc2W:
		if info.HasConst && (info.Const == Long || info.Const == Double) {
			s.push(info.Const, Hi)
		} else {
			s.push(Unknown, Unknown)
		}
	case op == bytecode.Iload || op >= bytecode.Iload0 && op <= bytecode.Iload3:
		s.push(Int)
	case op == bytecode.Lload || op >= bytecode.Lload0 && op <= bytecode.Lload3:
		s.push(Long, Hi)
	case op == bytecode.Fload || op >= bytecode.Fload0 && op <= bytecode.Fload3:
		s.push(Float)
	case op == bytecode.Dload || op >= bytecode.Dload0 && op <= bytecode.Dload3:
		s.push(Double, Hi)
	case op == bytecode.Aload || op >= bytecode.Aload0 && op <= bytecode.Aload3:
		s.push(Ref)
	case op == bytecode.Iaload || op == bytecode.Baload || op == bytecode.Caload || op == bytecode.Saload:
		s.pop(2)
		s.push(Int)
	case op == bytecode.Laload:
		s.pop(2)
		s.push(Long, Hi)
	case op == bytecode.Faload:
		s.pop(2)
		s.push(Float)
	case op == bytecode.Daload:
		s.pop(2)
		s.push(Double, Hi)
	case op == bytecode.Aaload:
		s.pop(2)
		s.push(Ref)
	case op == bytecode.Istore || op == bytecode.Fstore || op == bytecode.Astore ||
		op >= bytecode.Istore0 && op <= bytecode.Istore3 ||
		op >= bytecode.Fstore0 && op <= bytecode.Fstore3 ||
		op >= bytecode.Astore0 && op <= bytecode.Astore3:
		s.pop(1)
	case op == bytecode.Lstore || op == bytecode.Dstore ||
		op >= bytecode.Lstore0 && op <= bytecode.Lstore3 ||
		op >= bytecode.Dstore0 && op <= bytecode.Dstore3:
		s.pop(2)
	case op == bytecode.Iastore || op == bytecode.Fastore || op == bytecode.Aastore ||
		op == bytecode.Bastore || op == bytecode.Castore || op == bytecode.Sastore:
		s.pop(3)
	case op == bytecode.Lastore || op == bytecode.Dastore:
		s.pop(4)
	case op == bytecode.Pop:
		s.pop(1)
	case op == bytecode.Pop2:
		s.pop(2)
	case op == bytecode.Dup:
		if s.known && len(s.stack) >= 1 {
			s.push(s.stack[len(s.stack)-1])
		} else {
			s.lose()
		}
	case op == bytecode.DupX1, op == bytecode.DupX2, op == bytecode.Dup2,
		op == bytecode.Dup2X1, op == bytecode.Dup2X2:
		s.dupVariant(op)
	case op == bytecode.Swap:
		if s.known && len(s.stack) >= 2 {
			n := len(s.stack)
			s.stack[n-1], s.stack[n-2] = s.stack[n-2], s.stack[n-1]
		} else {
			s.lose()
		}
	case op == bytecode.Iadd || op == bytecode.Isub || op == bytecode.Imul ||
		op == bytecode.Idiv || op == bytecode.Irem || op == bytecode.Iand ||
		op == bytecode.Ior || op == bytecode.Ixor ||
		op == bytecode.Ishl || op == bytecode.Ishr || op == bytecode.Iushr:
		s.pop(2)
		s.push(Int)
	case op == bytecode.Ladd || op == bytecode.Lsub || op == bytecode.Lmul ||
		op == bytecode.Ldiv || op == bytecode.Lrem || op == bytecode.Land ||
		op == bytecode.Lor || op == bytecode.Lxor:
		s.pop(4)
		s.push(Long, Hi)
	case op == bytecode.Lshl || op == bytecode.Lshr || op == bytecode.Lushr:
		s.pop(3) // long + int shift amount
		s.push(Long, Hi)
	case op == bytecode.Fadd || op == bytecode.Fsub || op == bytecode.Fmul ||
		op == bytecode.Fdiv || op == bytecode.Frem:
		s.pop(2)
		s.push(Float)
	case op == bytecode.Dadd || op == bytecode.Dsub || op == bytecode.Dmul ||
		op == bytecode.Ddiv || op == bytecode.Drem:
		s.pop(4)
		s.push(Double, Hi)
	case op == bytecode.Ineg:
		s.pop(1)
		s.push(Int)
	case op == bytecode.Lneg:
		s.pop(2)
		s.push(Long, Hi)
	case op == bytecode.Fneg:
		s.pop(1)
		s.push(Float)
	case op == bytecode.Dneg:
		s.pop(2)
		s.push(Double, Hi)
	case op == bytecode.Iinc:
		// no stack effect
	case op == bytecode.I2l:
		s.pop(1)
		s.push(Long, Hi)
	case op == bytecode.I2f:
		s.pop(1)
		s.push(Float)
	case op == bytecode.I2d:
		s.pop(1)
		s.push(Double, Hi)
	case op == bytecode.L2i:
		s.pop(2)
		s.push(Int)
	case op == bytecode.L2f:
		s.pop(2)
		s.push(Float)
	case op == bytecode.L2d:
		s.pop(2)
		s.push(Double, Hi)
	case op == bytecode.F2i:
		s.pop(1)
		s.push(Int)
	case op == bytecode.F2l:
		s.pop(1)
		s.push(Long, Hi)
	case op == bytecode.F2d:
		s.pop(1)
		s.push(Double, Hi)
	case op == bytecode.D2i:
		s.pop(2)
		s.push(Int)
	case op == bytecode.D2l:
		s.pop(2)
		s.push(Long, Hi)
	case op == bytecode.D2f:
		s.pop(2)
		s.push(Float)
	case op == bytecode.I2b || op == bytecode.I2c || op == bytecode.I2s:
		s.pop(1)
		s.push(Int)
	case op == bytecode.Lcmp:
		s.pop(4)
		s.push(Int)
	case op == bytecode.Fcmpl || op == bytecode.Fcmpg:
		s.pop(2)
		s.push(Int)
	case op == bytecode.Dcmpl || op == bytecode.Dcmpg:
		s.pop(4)
		s.push(Int)
	case op >= bytecode.Ifeq && op <= bytecode.Ifle ||
		op == bytecode.Ifnull || op == bytecode.Ifnonnull:
		s.pop(1)
		s.save(in.Offset, in.A)
	case op >= bytecode.IfIcmpeq && op <= bytecode.IfAcmpne:
		s.pop(2)
		s.save(in.Offset, in.A)
	case op == bytecode.Goto || op == bytecode.GotoW:
		s.save(in.Offset, in.A)
		s.terminated = true
	case op == bytecode.Jsr || op == bytecode.JsrW:
		// jsr pushes a return address at the target; too irregular for the
		// single-save model, so give up on both paths.
		s.lose()
		s.terminated = true
	case op == bytecode.Ret:
		s.lose()
		s.terminated = true
	case op == bytecode.Tableswitch || op == bytecode.Lookupswitch:
		s.pop(1)
		s.terminated = true
	case op == bytecode.Ireturn || op == bytecode.Freturn || op == bytecode.Areturn ||
		op == bytecode.Lreturn || op == bytecode.Dreturn || op == bytecode.Return ||
		op == bytecode.Athrow:
		s.terminated = true
	case op == bytecode.Getstatic:
		if info.HasField {
			s.push(typeKinds(info.Field)...)
		} else {
			s.lose()
		}
	case op == bytecode.Putstatic:
		if info.HasField {
			s.pop(len(typeKinds(info.Field)))
		} else {
			s.lose()
		}
	case op == bytecode.Getfield:
		if info.HasField {
			s.pop(1)
			s.push(typeKinds(info.Field)...)
		} else {
			s.lose()
		}
	case op == bytecode.Putfield:
		if info.HasField {
			s.pop(1 + len(typeKinds(info.Field)))
		} else {
			s.lose()
		}
	case op == bytecode.Invokevirtual || op == bytecode.Invokespecial ||
		op == bytecode.Invokestatic || op == bytecode.Invokeinterface:
		if !info.HasMethod {
			s.lose()
			return
		}
		slots := 0
		for _, p := range info.Params {
			slots += len(typeKinds(p))
		}
		if op != bytecode.Invokestatic {
			slots++ // receiver
		}
		s.pop(slots)
		s.push(typeKinds(info.Ret)...)
	case op == bytecode.New:
		s.push(Ref)
	case op == bytecode.Newarray || op == bytecode.Anewarray:
		s.pop(1)
		s.push(Ref)
	case op == bytecode.Arraylength:
		s.pop(1)
		s.push(Int)
	case op == bytecode.Checkcast:
		s.pop(1)
		s.push(Ref)
	case op == bytecode.Instanceof:
		s.pop(1)
		s.push(Int)
	case op == bytecode.Monitorenter || op == bytecode.Monitorexit:
		s.pop(1)
	case op == bytecode.Multianewarray:
		s.pop(in.B)
		s.push(Ref)
	case op == bytecode.Nop:
		// nothing
	default:
		s.lose()
	}
}

// dupVariant models the dup_x and dup2 family as slot shuffles.
func (s *Sim) dupVariant(op bytecode.Op) {
	if !s.known {
		return
	}
	n := len(s.stack)
	switch op {
	case bytecode.DupX1:
		if n < 2 {
			s.lose()
			return
		}
		v := s.stack[n-1]
		s.stack = append(s.stack, 0)
		copy(s.stack[n-1:], s.stack[n-2:n])
		s.stack[n-2] = v
	case bytecode.DupX2:
		if n < 3 {
			s.lose()
			return
		}
		v := s.stack[n-1]
		s.stack = append(s.stack, 0)
		copy(s.stack[n-2:], s.stack[n-3:n])
		s.stack[n-3] = v
	case bytecode.Dup2:
		if n < 2 {
			s.lose()
			return
		}
		s.stack = append(s.stack, s.stack[n-2], s.stack[n-1])
	case bytecode.Dup2X1:
		if n < 3 {
			s.lose()
			return
		}
		a, b := s.stack[n-2], s.stack[n-1]
		s.stack = append(s.stack, 0, 0)
		copy(s.stack[n-1:], s.stack[n-3:n])
		s.stack[n-3], s.stack[n-2] = a, b
	case bytecode.Dup2X2:
		if n < 4 {
			s.lose()
			return
		}
		a, b := s.stack[n-2], s.stack[n-1]
		s.stack = append(s.stack, 0, 0)
		copy(s.stack[n-2:], s.stack[n-4:n])
		s.stack[n-4], s.stack[n-3] = a, b
	}
}
