// Package stackstate implements the approximate stack-state computation of
// §7.1 of the paper. The simulation tracks the kinds of values on the
// operand stack, remembering state over at most one forward branch and
// never across a backward branch, exactly as the paper prescribes — the
// decompressor re-runs the identical computation, so the collapsed opcode
// stream is invertible.
//
// Collapsing is a per-family transposition: when the state predicts member
// e of an opcode family, the family representative (the int variant) and e
// swap places in the wire alphabet. The frequent case therefore codes as
// the representative regardless of type, and the mapping is bijective even
// when the approximation disagrees with the real machine state.
//
// The same simulation supplies the "top two stack values" context used to
// split method-reference move-to-front queues (§5.1.6).
package stackstate

import (
	"classpack/internal/bytecode"
	"classpack/internal/classfile"
)

// Kind is the abstract type of one operand-stack slot.
type Kind uint8

// Slot kinds. Long and Double occupy two slots; the upper slot is Hi.
const (
	Unknown Kind = iota
	Int
	Float
	Ref
	Long
	Double
	Hi   // second slot of a Long or Double
	Addr // returnAddress pushed by jsr
)

// NumContexts is the number of distinct ContextID values.
const NumContexts = 36

// Resolver supplies the constant-pool information the simulation needs to
// model field accesses, method calls, and constant loads.
type Resolver interface {
	// FieldType returns the declared type of the field reference at the
	// given constant-pool index.
	FieldType(cpIndex int) (classfile.Type, bool)
	// MethodType returns the parameter and return types of the method
	// reference at the given constant-pool index.
	MethodType(cpIndex int) (params []classfile.Type, ret classfile.Type, ok bool)
	// ConstKind returns the kind pushed by ldc/ldc_w/ldc2_w for the
	// constant at the given index.
	ConstKind(cpIndex int) (Kind, bool)
}

// Sim is the shared compressor/decompressor stack simulation for one
// method body. Create one per method with New, then for each instruction
// call WireOp (compressor) or SourceOp (decompressor) followed by Step.
type Sim struct {
	res      Resolver
	handlers []int // exception-handler entry offsets (few per method)

	stack []Kind
	known bool // false: stack depth itself is unknown

	// One remembered forward-branch state (§7.1).
	savedTarget int
	savedStack  []Kind
	savedKnown  bool
	haveSaved   bool

	// terminated is set after an unconditional transfer; the next
	// instruction starts with unknown state unless a save or handler
	// applies.
	terminated bool
}

// New returns a simulation for a method whose exception handlers begin at
// the given code offsets. The stack starts empty (method entry).
func New(res Resolver, handlerOffsets []int) *Sim {
	s := &Sim{}
	s.Reset(res, handlerOffsets)
	return s
}

// Reset reinitializes the simulation for a new method body, reusing the
// existing allocations. Equivalent to New(res, handlerOffsets) except for
// the identity of the receiver.
func (s *Sim) Reset(res Resolver, handlerOffsets []int) {
	s.res = res
	s.handlers = append(s.handlers[:0], handlerOffsets...)
	s.stack = s.stack[:0]
	s.known = true
	s.savedTarget = 0
	s.savedStack = s.savedStack[:0]
	s.savedKnown = false
	s.haveSaved = false
	s.terminated = false
}

// isHandler reports whether offset is an exception-handler entry. Methods
// have few handlers, so a linear scan beats a map.
func (s *Sim) isHandler(offset int) bool {
	for _, o := range s.handlers {
		if o == offset {
			return true
		}
	}
	return false
}

// Begin must be called with the instruction's offset before WireOp /
// SourceOp / ContextID for that instruction; it applies handler-entry and
// saved-branch state.
func (s *Sim) Begin(offset int) {
	if s.haveSaved && s.savedTarget < offset {
		s.haveSaved = false
	}
	switch {
	case s.isHandler(offset):
		// Handler entry: the stack holds exactly the thrown exception.
		s.stack = append(s.stack[:0], Ref)
		s.known = true
		if s.haveSaved && s.savedTarget == offset {
			s.haveSaved = false
		}
	case s.haveSaved && s.savedTarget == offset:
		if s.terminated || !s.known {
			s.stack = append(s.stack[:0], s.savedStack...)
			s.known = s.savedKnown
		} else if s.known && s.savedKnown && !kindsEqual(s.stack, s.savedStack) {
			s.known = false
		}
		s.haveSaved = false
	case s.terminated:
		s.known = false
		s.stack = s.stack[:0]
	}
	s.terminated = false
}

func kindsEqual(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// top returns the value kind of the top stack value (collapsing the two
// slots of a wide value), or Unknown.
func (s *Sim) top() Kind { return s.valueAt(0) }

// second returns the value kind of the value below the top value.
func (s *Sim) second() Kind {
	d := 1
	if k := s.valueAt(0); k == Long || k == Double {
		d = 2
	}
	return s.valueAt(d)
}

// valueAt returns the kind of the value whose top slot is depth slots from
// the top of the stack.
func (s *Sim) valueAt(depth int) Kind {
	if !s.known || len(s.stack) <= depth {
		return Unknown
	}
	k := s.stack[len(s.stack)-1-depth]
	if k == Hi {
		if len(s.stack) <= depth+1 {
			return Unknown
		}
		return s.stack[len(s.stack)-2-depth]
	}
	return k
}

// ContextID returns a small id derived from the kinds of the top two stack
// values, used to select per-context move-to-front queues (§5.1.6).
func (s *Sim) ContextID() int {
	ctx := func(k Kind) int {
		switch k {
		case Int:
			return 1
		case Long:
			return 2
		case Float:
			return 3
		case Double:
			return 4
		case Ref:
			return 5
		default:
			return 0
		}
	}
	return ctx(s.top())*6 + ctx(s.second())
}

// WireOp returns the opcode to place in the compressed stream for the
// actual source opcode (the compressor direction of the collapse).
func (s *Sim) WireOp(op bytecode.Op) bytecode.Op { return s.transpose(op) }

// SourceOp returns the actual opcode for a wire opcode (the decompressor
// direction). SourceOp(WireOp(op)) == op for every state.
func (s *Sim) SourceOp(wire bytecode.Op) bytecode.Op { return s.transpose(wire) }

// transpose swaps the family representative with the member the current
// state predicts; all other opcodes map to themselves. Being a
// transposition, the mapping is its own inverse.
func (s *Sim) transpose(op bytecode.Op) bytecode.Op {
	f, ok := familyOf[op]
	if !ok {
		return op
	}
	e := f.predict(s)
	switch op {
	case f.rep:
		return e
	case e:
		return f.rep
	default:
		return op
	}
}

// family describes one collapsible opcode family (§7.1): members are
// distinguished by the kind of a stack value the simulation tracks.
type family struct {
	rep bytecode.Op
	// predict returns the member the current state selects, or rep when
	// the state is insufficient.
	predict func(s *Sim) bytecode.Op
}

// byTop builds a family whose member is selected by the top value kind.
func byTop(rep bytecode.Op, m map[Kind]bytecode.Op) *family {
	return &family{rep: rep, predict: func(s *Sim) bytecode.Op {
		if op, ok := m[s.top()]; ok {
			return op
		}
		return rep
	}}
}

// bySecond builds a family selected by the second value kind (shifts).
func bySecond(rep bytecode.Op, m map[Kind]bytecode.Op) *family {
	return &family{rep: rep, predict: func(s *Sim) bytecode.Op {
		if op, ok := m[s.second()]; ok {
			return op
		}
		return rep
	}}
}

var familyOf = map[bytecode.Op]*family{}

func register(f *family, members ...bytecode.Op) {
	for _, m := range members {
		familyOf[m] = f
	}
}

func init() {
	type quad struct{ i, l, f, d bytecode.Op }
	for _, q := range []quad{
		{bytecode.Iadd, bytecode.Ladd, bytecode.Fadd, bytecode.Dadd},
		{bytecode.Isub, bytecode.Lsub, bytecode.Fsub, bytecode.Dsub},
		{bytecode.Imul, bytecode.Lmul, bytecode.Fmul, bytecode.Dmul},
		{bytecode.Idiv, bytecode.Ldiv, bytecode.Fdiv, bytecode.Ddiv},
		{bytecode.Irem, bytecode.Lrem, bytecode.Frem, bytecode.Drem},
		{bytecode.Ineg, bytecode.Lneg, bytecode.Fneg, bytecode.Dneg},
	} {
		register(byTop(q.i, map[Kind]bytecode.Op{Int: q.i, Long: q.l, Float: q.f, Double: q.d}),
			q.i, q.l, q.f, q.d)
	}
	for _, p := range [][2]bytecode.Op{
		{bytecode.Iand, bytecode.Land},
		{bytecode.Ior, bytecode.Lor},
		{bytecode.Ixor, bytecode.Lxor},
	} {
		register(byTop(p[0], map[Kind]bytecode.Op{Int: p[0], Long: p[1]}), p[0], p[1])
	}
	for _, p := range [][2]bytecode.Op{
		{bytecode.Ishl, bytecode.Lshl},
		{bytecode.Ishr, bytecode.Lshr},
		{bytecode.Iushr, bytecode.Lushr},
	} {
		register(bySecond(p[0], map[Kind]bytecode.Op{Int: p[0], Long: p[1]}), p[0], p[1])
	}
	register(byTop(bytecode.Ireturn, map[Kind]bytecode.Op{
		Int: bytecode.Ireturn, Long: bytecode.Lreturn, Float: bytecode.Freturn,
		Double: bytecode.Dreturn, Ref: bytecode.Areturn,
	}), bytecode.Ireturn, bytecode.Lreturn, bytecode.Freturn, bytecode.Dreturn, bytecode.Areturn)
	register(byTop(bytecode.Istore, map[Kind]bytecode.Op{
		Int: bytecode.Istore, Long: bytecode.Lstore, Float: bytecode.Fstore,
		Double: bytecode.Dstore, Ref: bytecode.Astore,
	}), bytecode.Istore, bytecode.Lstore, bytecode.Fstore, bytecode.Dstore, bytecode.Astore)
	for slot := 0; slot < 4; slot++ {
		o := bytecode.Op(slot)
		register(byTop(bytecode.Istore0+o, map[Kind]bytecode.Op{
			Int: bytecode.Istore0 + o, Long: bytecode.Lstore0 + o, Float: bytecode.Fstore0 + o,
			Double: bytecode.Dstore0 + o, Ref: bytecode.Astore0 + o,
		}), bytecode.Istore0+o, bytecode.Lstore0+o, bytecode.Fstore0+o, bytecode.Dstore0+o, bytecode.Astore0+o)
	}
	// Conversions grouped by target type, selected by source (top) kind.
	register(byTop(bytecode.I2l, map[Kind]bytecode.Op{
		Int: bytecode.I2l, Float: bytecode.F2l, Double: bytecode.D2l,
	}), bytecode.I2l, bytecode.F2l, bytecode.D2l)
	register(byTop(bytecode.L2i, map[Kind]bytecode.Op{
		Long: bytecode.L2i, Float: bytecode.F2i, Double: bytecode.D2i,
	}), bytecode.L2i, bytecode.F2i, bytecode.D2i)
	register(byTop(bytecode.I2f, map[Kind]bytecode.Op{
		Int: bytecode.I2f, Long: bytecode.L2f, Double: bytecode.D2f,
	}), bytecode.I2f, bytecode.L2f, bytecode.D2f)
	register(byTop(bytecode.I2d, map[Kind]bytecode.Op{
		Int: bytecode.I2d, Long: bytecode.L2d, Float: bytecode.F2d,
	}), bytecode.I2d, bytecode.L2d, bytecode.F2d)
}
