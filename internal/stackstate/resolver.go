package stackstate

import (
	"classpack/internal/classfile"
)

// ClassFileResolver resolves constant-pool queries against a parsed
// classfile; it is the Resolver used when compressing real class files.
type ClassFileResolver struct {
	cf *classfile.ClassFile
}

// NewClassFileResolver returns a resolver over cf.
func NewClassFileResolver(cf *classfile.ClassFile) *ClassFileResolver {
	return &ClassFileResolver{cf: cf}
}

func (r *ClassFileResolver) constAt(idx int) *classfile.Constant {
	if idx <= 0 || idx >= len(r.cf.Pool) {
		return nil
	}
	return &r.cf.Pool[idx]
}

// FieldType implements Resolver.
func (r *ClassFileResolver) FieldType(cpIndex int) (classfile.Type, bool) {
	c := r.constAt(cpIndex)
	if c == nil || c.Kind != classfile.KindFieldref {
		return classfile.Type{}, false
	}
	nat := r.constAt(int(c.NameAndType))
	if nat == nil || nat.Kind != classfile.KindNameAndType {
		return classfile.Type{}, false
	}
	t, err := classfile.ParseFieldDescriptor(r.cf.Utf8At(nat.Desc))
	if err != nil {
		return classfile.Type{}, false
	}
	return t, true
}

// MethodType implements Resolver.
func (r *ClassFileResolver) MethodType(cpIndex int) ([]classfile.Type, classfile.Type, bool) {
	c := r.constAt(cpIndex)
	if c == nil || (c.Kind != classfile.KindMethodref && c.Kind != classfile.KindInterfaceMethodref) {
		return nil, classfile.Type{}, false
	}
	nat := r.constAt(int(c.NameAndType))
	if nat == nil || nat.Kind != classfile.KindNameAndType {
		return nil, classfile.Type{}, false
	}
	params, ret, err := classfile.ParseMethodDescriptor(r.cf.Utf8At(nat.Desc))
	if err != nil {
		return nil, classfile.Type{}, false
	}
	return params, ret, true
}

// ConstKind implements Resolver.
func (r *ClassFileResolver) ConstKind(cpIndex int) (Kind, bool) {
	c := r.constAt(cpIndex)
	if c == nil {
		return Unknown, false
	}
	switch c.Kind {
	case classfile.KindInteger:
		return Int, true
	case classfile.KindFloat:
		return Float, true
	case classfile.KindString:
		return Ref, true
	case classfile.KindLong:
		return Long, true
	case classfile.KindDouble:
		return Double, true
	default:
		return Unknown, false
	}
}
