package stackstate

import (
	"classpack/internal/classfile"
)

// DescCache memoizes descriptor parses keyed by the descriptor string.
// Descriptors repeat heavily across the methods and classes of one
// archive, so one cache per pack pass turns almost every parse into a
// map hit. The cached params slices are shared — they are read-only in
// the simulation (StepInfo only ranges over them).
type DescCache struct {
	fields  map[string]fieldEntry
	methods map[string]methodEntry
}

type fieldEntry struct {
	t  classfile.Type
	ok bool
}

type methodEntry struct {
	params []classfile.Type
	ret    classfile.Type
	ok     bool
}

// NewDescCache returns an empty descriptor cache.
func NewDescCache() *DescCache {
	return &DescCache{
		fields:  make(map[string]fieldEntry),
		methods: make(map[string]methodEntry),
	}
}

func (c *DescCache) fieldType(desc string) (classfile.Type, bool) {
	if e, ok := c.fields[desc]; ok {
		return e.t, e.ok
	}
	t, err := classfile.ParseFieldDescriptor(desc)
	e := fieldEntry{t: t, ok: err == nil}
	c.fields[desc] = e
	return e.t, e.ok
}

func (c *DescCache) methodType(desc string) ([]classfile.Type, classfile.Type, bool) {
	if e, ok := c.methods[desc]; ok {
		return e.params, e.ret, e.ok
	}
	params, ret, err := classfile.ParseMethodDescriptor(desc)
	e := methodEntry{params: params, ret: ret, ok: err == nil}
	c.methods[desc] = e
	return e.params, e.ret, e.ok
}

// ClassFileResolver resolves constant-pool queries against a parsed
// classfile; it is the Resolver used when compressing real class files.
type ClassFileResolver struct {
	cf    *classfile.ClassFile
	cache *DescCache
}

// NewClassFileResolver returns a resolver over cf with its own cache.
func NewClassFileResolver(cf *classfile.ClassFile) *ClassFileResolver {
	return &ClassFileResolver{cf: cf, cache: NewDescCache()}
}

// Reset repoints the resolver at a new classfile. The descriptor cache
// is kept: its keys are descriptor strings, valid across classfiles.
func (r *ClassFileResolver) Reset(cf *classfile.ClassFile) { r.cf = cf }

func (r *ClassFileResolver) constAt(idx int) *classfile.Constant {
	if idx <= 0 || idx >= len(r.cf.Pool) {
		return nil
	}
	return &r.cf.Pool[idx]
}

// FieldType implements Resolver.
func (r *ClassFileResolver) FieldType(cpIndex int) (classfile.Type, bool) {
	c := r.constAt(cpIndex)
	if c == nil || c.Kind != classfile.KindFieldref {
		return classfile.Type{}, false
	}
	nat := r.constAt(int(c.NameAndType))
	if nat == nil || nat.Kind != classfile.KindNameAndType {
		return classfile.Type{}, false
	}
	return r.cache.fieldType(r.cf.Utf8At(nat.Desc))
}

// MethodType implements Resolver.
func (r *ClassFileResolver) MethodType(cpIndex int) ([]classfile.Type, classfile.Type, bool) {
	c := r.constAt(cpIndex)
	if c == nil || (c.Kind != classfile.KindMethodref && c.Kind != classfile.KindInterfaceMethodref) {
		return nil, classfile.Type{}, false
	}
	nat := r.constAt(int(c.NameAndType))
	if nat == nil || nat.Kind != classfile.KindNameAndType {
		return nil, classfile.Type{}, false
	}
	return r.cache.methodType(r.cf.Utf8At(nat.Desc))
}

// ConstKind implements Resolver.
func (r *ClassFileResolver) ConstKind(cpIndex int) (Kind, bool) {
	c := r.constAt(cpIndex)
	if c == nil {
		return Unknown, false
	}
	switch c.Kind {
	case classfile.KindInteger:
		return Int, true
	case classfile.KindFloat:
		return Float, true
	case classfile.KindString:
		return Ref, true
	case classfile.KindLong:
		return Long, true
	case classfile.KindDouble:
		return Double, true
	default:
		return Unknown, false
	}
}
