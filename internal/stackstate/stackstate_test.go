package stackstate

import (
	"testing"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
)

// buildClass assembles a classfile with one method exercising typed
// opcode families, returning the classfile and the method's instructions.
func buildClass(t *testing.T) (*classfile.ClassFile, []bytecode.Instruction, []int) {
	t.Helper()
	b := classfile.NewBuilder("T", "java/lang/Object", classfile.AccPublic)
	fI := b.Fieldref("T", "i", "I")
	fD := b.Fieldref("T", "d", "D")
	mLong := b.Methodref("T", "lng", "()J")
	mStr := b.Methodref("T", "s", "(I)Ljava/lang/String;")
	cFloat := b.Float(1.5)
	cStr := b.String("x")

	a := bytecode.NewAssembler()
	skip := a.NewLabel()
	// Float arithmetic: fadd should collapse.
	a.Op(bytecode.Fconst1)
	a.Op(bytecode.Fconst2)
	a.Op(bytecode.Fadd)
	a.Local(bytecode.Fstore, 1)
	// Double via getstatic.
	a.Local(bytecode.Aload, 0)
	a.CP(bytecode.Getfield, fD)
	a.Op(bytecode.Dconst1)
	a.Op(bytecode.Dmul)
	a.Local(bytecode.Dstore, 2)
	// Long from a call, shifted.
	a.Local(bytecode.Aload, 0)
	a.CP(bytecode.Invokevirtual, mLong)
	a.Op(bytecode.Iconst2)
	a.Op(bytecode.Lshl)
	a.Op(bytecode.Lneg)
	a.Local(bytecode.Lstore, 4)
	// Int work with a forward branch.
	a.Local(bytecode.Aload, 0)
	a.CP(bytecode.Getfield, fI)
	a.Op(bytecode.Iconst3)
	a.Op(bytecode.Iadd)
	a.Branch(bytecode.Ifeq, skip)
	a.Ldc(uint16(cFloat))
	a.Op(bytecode.Pop)
	a.Bind(skip)
	a.Ldc(uint16(cStr))
	a.Op(bytecode.Pop)
	// Conversions.
	a.Op(bytecode.Iconst1)
	a.Op(bytecode.I2d)
	a.Op(bytecode.D2l)
	a.Op(bytecode.L2i)
	a.Local(bytecode.Aload, 0)
	a.Op(bytecode.Swap)
	a.Op(bytecode.Pop)
	a.CP(bytecode.Invokevirtual, mStr)
	a.Op(bytecode.Pop)
	a.Op(bytecode.Return)

	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	insns, err := bytecode.Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	// mStr takes (this, int): fix the stack by loading this before the int.
	cf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cf, insns, nil
}

func TestCollapseRoundTrip(t *testing.T) {
	cf, insns, handlers := buildClass(t)
	res := NewClassFileResolver(cf)
	enc := New(res, handlers)
	dec := New(res, handlers)
	collapsed := 0
	for i := range insns {
		in := &insns[i]
		enc.Begin(in.Offset)
		dec.Begin(in.Offset)
		wire := enc.WireOp(in.Op)
		if wire != in.Op {
			collapsed++
		}
		back := dec.SourceOp(wire)
		if back != in.Op {
			t.Fatalf("offset %d: %s -> wire %s -> %s", in.Offset, in.Op, wire, back)
		}
		if e, d := enc.ContextID(), dec.ContextID(); e != d {
			t.Fatalf("offset %d: context diverged %d vs %d", in.Offset, e, d)
		}
		enc.Step(in)
		din := *in
		din.Op = back
		dec.Step(&din)
	}
	if collapsed == 0 {
		t.Fatal("no opcode was collapsed; the simulation is not engaging")
	}
}

func TestSpecificCollapses(t *testing.T) {
	cf, _, _ := buildClass(t)
	res := NewClassFileResolver(cf)
	s := New(res, nil)
	s.Begin(0)
	// Two floats on the stack: fadd must code as the family rep iadd.
	s.Step(&bytecode.Instruction{Op: bytecode.Fconst1})
	s.Step(&bytecode.Instruction{Op: bytecode.Fconst2})
	if got := s.WireOp(bytecode.Fadd); got != bytecode.Iadd {
		t.Errorf("WireOp(fadd) = %s, want iadd", got)
	}
	// And symmetrically, an actual iadd there codes as fadd.
	if got := s.WireOp(bytecode.Iadd); got != bytecode.Fadd {
		t.Errorf("WireOp(iadd) = %s, want fadd", got)
	}
	// freturn collapses to ireturn.
	s.Step(&bytecode.Instruction{Op: bytecode.Fadd})
	if got := s.WireOp(bytecode.Freturn); got != bytecode.Ireturn {
		t.Errorf("WireOp(freturn) = %s, want ireturn", got)
	}
	// fstore_0 collapses to istore_0.
	if got := s.WireOp(bytecode.Fstore0); got != bytecode.Istore0 {
		t.Errorf("WireOp(fstore_0) = %s, want istore_0", got)
	}
}

func TestShiftUsesSecondValue(t *testing.T) {
	cf, _, _ := buildClass(t)
	s := New(NewClassFileResolver(cf), nil)
	s.Begin(0)
	s.Step(&bytecode.Instruction{Op: bytecode.Lconst1})
	s.Step(&bytecode.Instruction{Op: bytecode.Iconst2})
	// Top is int (shift amount), second is long: lshl is predicted.
	if got := s.WireOp(bytecode.Lshl); got != bytecode.Ishl {
		t.Errorf("WireOp(lshl) = %s, want ishl", got)
	}
}

func TestUnknownStatePassesThrough(t *testing.T) {
	cf, _, _ := buildClass(t)
	s := New(NewClassFileResolver(cf), nil)
	s.Begin(0)
	s.Step(&bytecode.Instruction{Op: bytecode.Goto, A: 10}) // terminates flow
	s.Begin(3)
	// State unknown: every family member codes as itself.
	for _, op := range []bytecode.Op{bytecode.Fadd, bytecode.Iadd, bytecode.Dmul, bytecode.Lreturn} {
		if got := s.WireOp(op); got != op {
			t.Errorf("unknown state: WireOp(%s) = %s, want identity", op, got)
		}
	}
}

func TestHandlerEntryState(t *testing.T) {
	cf, _, _ := buildClass(t)
	s := New(NewClassFileResolver(cf), []int{8})
	s.Begin(0)
	s.Step(&bytecode.Instruction{Op: bytecode.Goto, Offset: 0, A: 8})
	s.Begin(8)
	// Handler entry holds exactly the thrown exception: areturn collapses.
	if got := s.WireOp(bytecode.Areturn); got != bytecode.Ireturn {
		t.Errorf("handler entry: WireOp(areturn) = %s, want ireturn", got)
	}
	if got := s.ContextID(); got != 5*6+0 {
		t.Errorf("handler entry context = %d, want %d", got, 5*6)
	}
}

func TestForwardBranchStateRestored(t *testing.T) {
	cf, _, _ := buildClass(t)
	s := New(NewClassFileResolver(cf), nil)
	// iconst_1; ifeq +6; (fall-through) fconst_0; freturn | target at 6.
	s.Begin(0)
	s.Step(&bytecode.Instruction{Op: bytecode.Iconst1, Offset: 0})
	s.Begin(1)
	s.Step(&bytecode.Instruction{Op: bytecode.Ifeq, Offset: 1, A: 6})
	s.Begin(4)
	s.Step(&bytecode.Instruction{Op: bytecode.Return, Offset: 4})
	// At offset 6 the saved (empty, known) state is restored.
	s.Begin(6)
	if !s.known || len(s.stack) != 0 {
		t.Fatalf("state at branch target: known=%v stack=%v", s.known, s.stack)
	}
}

func TestResolverFailuresLoseState(t *testing.T) {
	cf, _, _ := buildClass(t)
	s := New(NewClassFileResolver(cf), nil)
	s.Begin(0)
	s.Step(&bytecode.Instruction{Op: bytecode.Getstatic, A: 9999})
	if s.known {
		t.Fatal("state still known after unresolvable getstatic")
	}
}

func TestContextIDRange(t *testing.T) {
	cf, _, _ := buildClass(t)
	s := New(NewClassFileResolver(cf), nil)
	ops := []bytecode.Op{
		bytecode.Iconst1, bytecode.Fconst1, bytecode.Lconst1,
		bytecode.Dconst1, bytecode.AconstNull,
	}
	s.Begin(0)
	for _, op := range ops {
		s.Step(&bytecode.Instruction{Op: op})
		if id := s.ContextID(); id < 0 || id >= NumContexts {
			t.Fatalf("ContextID %d out of range", id)
		}
	}
	// Top = ref (aconst_null), second = double.
	if got := s.ContextID(); got != 5*6+4 {
		t.Fatalf("ContextID = %d, want %d", got, 5*6+4)
	}
}

func TestDupShuffles(t *testing.T) {
	cf, _, _ := buildClass(t)
	s := New(NewClassFileResolver(cf), nil)
	s.Begin(0)
	s.Step(&bytecode.Instruction{Op: bytecode.Iconst1})
	s.Step(&bytecode.Instruction{Op: bytecode.AconstNull})
	s.Step(&bytecode.Instruction{Op: bytecode.Dup})
	want := []Kind{Int, Ref, Ref}
	if !kindsEqual(s.stack, want) {
		t.Fatalf("after dup: %v, want %v", s.stack, want)
	}
	s.Step(&bytecode.Instruction{Op: bytecode.DupX2})
	want = []Kind{Ref, Int, Ref, Ref}
	if !kindsEqual(s.stack, want) {
		t.Fatalf("after dup_x2: %v, want %v", s.stack, want)
	}
	s.Step(&bytecode.Instruction{Op: bytecode.Dup2X2})
	want = []Kind{Ref, Ref, Ref, Int, Ref, Ref}
	if !kindsEqual(s.stack, want) {
		t.Fatalf("after dup2_x2: %v, want %v", s.stack, want)
	}
}
