package stackstate

import (
	"math/rand"
	"testing"

	"classpack/internal/bytecode"
)

// TestSimNeverPanicsOnArbitraryInstructions ports the core decoder's
// corrupt-input pattern to the §7.1 stack simulator: during unpack the
// Sim is driven by instructions decoded from untrusted bytes, so any
// opcode with any operands — including negative slots and constant-pool
// indexes far outside the pool — must degrade to unknown state, never
// panic.
func TestSimNeverPanicsOnArbitraryInstructions(t *testing.T) {
	cf, _, _ := buildClass(t)
	res := NewClassFileResolver(cf)
	rng := rand.New(rand.NewSource(99))
	operand := func() int {
		switch rng.Intn(4) {
		case 0:
			return rng.Intn(1 << 16) // plausible CP index / slot
		case 1:
			return -1 - rng.Intn(1<<16) // negative
		case 2:
			return 1 << 30 // far out of range
		default:
			return rng.Intn(8)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		s := New(res, []int{0, 4})
		s.Begin(0)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Sim panicked on arbitrary instructions: %v", r)
				}
			}()
			for i := 0; i < 64; i++ {
				in := bytecode.Instruction{
					Offset:  i,
					Op:      bytecode.Op(rng.Intn(256)),
					A:       operand(),
					B:       operand(),
					Default: operand(),
				}
				s.Step(&in)
				_ = s.ContextID()
				_ = s.WireOp(in.Op)
				_ = s.SourceOp(in.Op)
			}
		}()
	}
}
