package minijava

import (
	"fmt"
	"io"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
)

// Interp executes the subset of JVM bytecode the MiniJava compiler emits,
// over a set of classfiles. It verifies compiled programs end to end (and
// re-verifies them after a pack/unpack round trip).
type Interp struct {
	out     io.Writer
	classes map[string]*classfile.ClassFile
	methods map[string][]bytecode.Instruction // "Class.name(desc)" -> insns
	steps   int
	maxStep int
}

// value is a JVM value: int32, *object, *intArray, or string.
type value any

type object struct {
	class  string
	fields map[string]value // keyed "DeclClass.name"
}

type intArray struct {
	elems []int32
}

// NewInterp builds an interpreter over the classfiles.
func NewInterp(out io.Writer, cfs []*classfile.ClassFile) *Interp {
	in := &Interp{
		out:     out,
		classes: map[string]*classfile.ClassFile{},
		methods: map[string][]bytecode.Instruction{},
		maxStep: 50_000_000,
	}
	for _, cf := range cfs {
		in.classes[cf.ThisClassName()] = cf
	}
	return in
}

// RunMain executes className.main(String[]).
func (in *Interp) RunMain(className string) error {
	cf, ok := in.classes[className]
	if !ok {
		return fmt.Errorf("interp: no class %s", className)
	}
	m := in.findMethod(cf, "main", "([Ljava/lang/String;)V")
	if m == nil {
		return fmt.Errorf("interp: %s has no main", className)
	}
	_, err := in.invoke(cf, m, []value{nil})
	return err
}

func (in *Interp) findMethod(cf *classfile.ClassFile, name, desc string) *classfile.Member {
	for i := range cf.Methods {
		m := &cf.Methods[i]
		if cf.MemberName(m) == name && cf.MemberDesc(m) == desc {
			return m
		}
	}
	return nil
}

// resolveVirtual walks the dynamic class chain to the implementing class.
func (in *Interp) resolveVirtual(dynClass, name, desc string) (*classfile.ClassFile, *classfile.Member, error) {
	for cls := dynClass; cls != ""; {
		cf, ok := in.classes[cls]
		if !ok {
			break
		}
		if m := in.findMethod(cf, name, desc); m != nil {
			return cf, m, nil
		}
		cls = cf.SuperClassName()
	}
	return nil, nil, fmt.Errorf("interp: no method %s.%s%s", dynClass, name, desc)
}

func (in *Interp) insnsOf(cf *classfile.ClassFile, m *classfile.Member) ([]bytecode.Instruction, error) {
	key := cf.ThisClassName() + "." + cf.MemberName(m) + cf.MemberDesc(m)
	if insns, ok := in.methods[key]; ok {
		return insns, nil
	}
	code := classfile.CodeOf(m)
	if code == nil {
		return nil, fmt.Errorf("interp: %s is abstract", key)
	}
	insns, err := bytecode.Decode(code.Code)
	if err != nil {
		return nil, err
	}
	in.methods[key] = insns
	return insns, nil
}

func asInt(v value) (int32, error) {
	if i, ok := v.(int32); ok {
		return i, nil
	}
	return 0, fmt.Errorf("interp: expected int, got %T", v)
}

// invoke runs one method frame and returns its result (nil for void).
func (in *Interp) invoke(cf *classfile.ClassFile, m *classfile.Member, args []value) (value, error) {
	insns, err := in.insnsOf(cf, m)
	if err != nil {
		return nil, err
	}
	byOffset := make(map[int]int, len(insns))
	for i := range insns {
		byOffset[insns[i].Offset] = i
	}
	code := classfile.CodeOf(m)
	locals := make([]value, int(code.MaxLocals)+1)
	copy(locals, args)
	var stack []value
	push := func(v value) { stack = append(stack, v) }
	popv := func() value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	popInt := func() (int32, error) { return asInt(popv()) }

	ip := 0
	for {
		in.steps++
		if in.steps > in.maxStep {
			return nil, fmt.Errorf("interp: step budget exhausted (infinite loop?)")
		}
		if ip >= len(insns) {
			return nil, fmt.Errorf("interp: fell off the end of %s", cf.MemberName(m))
		}
		insn := &insns[ip]
		op := insn.Op
		switch {
		case op >= bytecode.Iconst0 && op <= bytecode.Iconst5:
			push(int32(op - bytecode.Iconst0))
		case op == bytecode.IconstM1:
			push(int32(-1))
		case op == bytecode.Bipush || op == bytecode.Sipush:
			push(int32(insn.A))
		case op == bytecode.Ldc || op == bytecode.LdcW:
			c := &cf.Pool[insn.A]
			switch c.Kind {
			case classfile.KindInteger:
				push(c.Int)
			case classfile.KindString:
				push(cf.Utf8At(c.Str))
			default:
				return nil, fmt.Errorf("interp: ldc of %v", c.Kind)
			}
		case op == bytecode.AconstNull:
			push(nil)
		case op == bytecode.Iload || op >= bytecode.Iload0 && op <= bytecode.Iload3:
			push(locals[localSlot(insn, bytecode.Iload0)])
		case op == bytecode.Aload || op >= bytecode.Aload0 && op <= bytecode.Aload3:
			push(locals[localSlot(insn, bytecode.Aload0)])
		case op == bytecode.Istore || op >= bytecode.Istore0 && op <= bytecode.Istore3:
			locals[localSlot(insn, bytecode.Istore0)] = popv()
		case op == bytecode.Astore || op >= bytecode.Astore0 && op <= bytecode.Astore3:
			locals[localSlot(insn, bytecode.Astore0)] = popv()
		case op == bytecode.Dup:
			push(stack[len(stack)-1])
		case op == bytecode.Pop:
			popv()
		case op == bytecode.Ineg:
			a, err := popInt()
			if err != nil {
				return nil, err
			}
			push(-a)
		case op >= bytecode.Iadd && op <= bytecode.Ixor:
			b, err := popInt()
			if err != nil {
				return nil, err
			}
			a, err := popInt()
			if err != nil {
				return nil, err
			}
			r, err := intArith(op, a, b)
			if err != nil {
				return nil, err
			}
			push(r)
		case op == bytecode.Iinc:
			cur, err := asInt(locals[insn.A])
			if err != nil {
				return nil, err
			}
			locals[insn.A] = cur + int32(insn.B)
		case op >= bytecode.Ifeq && op <= bytecode.Ifle:
			a, err := popInt()
			if err != nil {
				return nil, err
			}
			if intCond1(op, a) {
				ip = byOffset[insn.A]
				continue
			}
		case op >= bytecode.IfIcmpeq && op <= bytecode.IfIcmple:
			b, err := popInt()
			if err != nil {
				return nil, err
			}
			a, err := popInt()
			if err != nil {
				return nil, err
			}
			if intCond2(op, a, b) {
				ip = byOffset[insn.A]
				continue
			}
		case op == bytecode.IfAcmpeq || op == bytecode.IfAcmpne:
			b := popv()
			a := popv()
			eq := a == b
			if (op == bytecode.IfAcmpeq) == eq {
				ip = byOffset[insn.A]
				continue
			}
		case op == bytecode.Goto || op == bytecode.GotoW:
			ip = byOffset[insn.A]
			continue
		case op == bytecode.Newarray:
			n, err := popInt()
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, fmt.Errorf("interp: negative array size %d", n)
			}
			push(&intArray{elems: make([]int32, n)})
		case op == bytecode.Iaload:
			idx, err := popInt()
			if err != nil {
				return nil, err
			}
			arr, ok := popv().(*intArray)
			if !ok {
				return nil, fmt.Errorf("interp: iaload on non-array")
			}
			if int(idx) < 0 || int(idx) >= len(arr.elems) {
				return nil, fmt.Errorf("interp: index %d out of bounds %d", idx, len(arr.elems))
			}
			push(arr.elems[idx])
		case op == bytecode.Iastore:
			v, err := popInt()
			if err != nil {
				return nil, err
			}
			idx, err := popInt()
			if err != nil {
				return nil, err
			}
			arr, ok := popv().(*intArray)
			if !ok {
				return nil, fmt.Errorf("interp: iastore on non-array")
			}
			if int(idx) < 0 || int(idx) >= len(arr.elems) {
				return nil, fmt.Errorf("interp: index %d out of bounds %d", idx, len(arr.elems))
			}
			arr.elems[idx] = v
		case op == bytecode.Arraylength:
			arr, ok := popv().(*intArray)
			if !ok {
				return nil, fmt.Errorf("interp: arraylength on non-array")
			}
			push(int32(len(arr.elems)))
		case op == bytecode.New:
			push(&object{class: cf.ClassNameAt(uint16(insn.A)), fields: map[string]value{}})
		case op == bytecode.Getfield:
			owner, name, _, err := in.fieldRef(cf, insn.A)
			if err != nil {
				return nil, err
			}
			obj, ok := popv().(*object)
			if !ok {
				return nil, fmt.Errorf("interp: getfield on non-object")
			}
			v, ok := obj.fields[owner+"."+name]
			if !ok {
				v = defaultFieldValue(cf, insn.A)
			}
			push(v)
		case op == bytecode.Putfield:
			owner, name, _, err := in.fieldRef(cf, insn.A)
			if err != nil {
				return nil, err
			}
			v := popv()
			obj, ok := popv().(*object)
			if !ok {
				return nil, fmt.Errorf("interp: putfield on non-object")
			}
			obj.fields[owner+"."+name] = v
		case op == bytecode.Getstatic:
			owner, name, _, err := in.fieldRef(cf, insn.A)
			if err != nil {
				return nil, err
			}
			if owner != "java/lang/System" || name != "out" {
				return nil, fmt.Errorf("interp: getstatic %s.%s unsupported", owner, name)
			}
			push("java/lang/System.out")
		case op == bytecode.Invokevirtual:
			ret, err := in.callVirtual(cf, insn.A, &stack)
			if err != nil {
				return nil, err
			}
			if ret != nil {
				push(*ret)
			}
		case op == bytecode.Invokespecial:
			owner, name, desc, err := in.methodRef(cf, insn.A)
			if err != nil {
				return nil, err
			}
			if name != "<init>" {
				return nil, fmt.Errorf("interp: invokespecial %s unsupported", name)
			}
			// Constructors in this subset only chain to super and return;
			// pop the receiver (and there are never arguments).
			if desc != "()V" {
				return nil, fmt.Errorf("interp: constructor %s%s unsupported", name, desc)
			}
			_ = owner
			popv()
		case op == bytecode.Ireturn || op == bytecode.Areturn:
			return popv(), nil
		case op == bytecode.Return:
			return nil, nil
		default:
			return nil, fmt.Errorf("interp: unsupported opcode %s at %d in %s.%s",
				op, insn.Offset, cf.ThisClassName(), cf.MemberName(m))
		}
		ip++
	}
}

func localSlot(insn *bytecode.Instruction, base bytecode.Op) int {
	if insn.Op >= base && insn.Op <= base+3 {
		return int(insn.Op - base)
	}
	return insn.A
}

func intArith(op bytecode.Op, a, b int32) (int32, error) {
	switch op {
	case bytecode.Iadd:
		return a + b, nil
	case bytecode.Isub:
		return a - b, nil
	case bytecode.Imul:
		return a * b, nil
	case bytecode.Idiv:
		if b == 0 {
			return 0, fmt.Errorf("interp: division by zero")
		}
		return a / b, nil
	case bytecode.Irem:
		if b == 0 {
			return 0, fmt.Errorf("interp: division by zero")
		}
		return a % b, nil
	case bytecode.Iand:
		return a & b, nil
	case bytecode.Ior:
		return a | b, nil
	case bytecode.Ixor:
		return a ^ b, nil
	case bytecode.Ishl:
		return a << (uint32(b) & 31), nil
	case bytecode.Ishr:
		return a >> (uint32(b) & 31), nil
	case bytecode.Iushr:
		return int32(uint32(a) >> (uint32(b) & 31)), nil
	default:
		return 0, fmt.Errorf("interp: %s is not an int op", op)
	}
}

func intCond1(op bytecode.Op, a int32) bool {
	switch op {
	case bytecode.Ifeq:
		return a == 0
	case bytecode.Ifne:
		return a != 0
	case bytecode.Iflt:
		return a < 0
	case bytecode.Ifge:
		return a >= 0
	case bytecode.Ifgt:
		return a > 0
	default: // Ifle
		return a <= 0
	}
}

func intCond2(op bytecode.Op, a, b int32) bool {
	switch op {
	case bytecode.IfIcmpeq:
		return a == b
	case bytecode.IfIcmpne:
		return a != b
	case bytecode.IfIcmplt:
		return a < b
	case bytecode.IfIcmpge:
		return a >= b
	case bytecode.IfIcmpgt:
		return a > b
	default: // IfIcmple
		return a <= b
	}
}

func (in *Interp) fieldRef(cf *classfile.ClassFile, idx int) (owner, name, desc string, err error) {
	c := &cf.Pool[idx]
	if c.Kind != classfile.KindFieldref {
		return "", "", "", fmt.Errorf("interp: index %d is not a field", idx)
	}
	nat := &cf.Pool[c.NameAndType]
	return cf.ClassNameAt(c.Class), cf.Utf8At(nat.Name), cf.Utf8At(nat.Desc), nil
}

func (in *Interp) methodRef(cf *classfile.ClassFile, idx int) (owner, name, desc string, err error) {
	c := &cf.Pool[idx]
	if c.Kind != classfile.KindMethodref {
		return "", "", "", fmt.Errorf("interp: index %d is not a method", idx)
	}
	nat := &cf.Pool[c.NameAndType]
	return cf.ClassNameAt(c.Class), cf.Utf8At(nat.Name), cf.Utf8At(nat.Desc), nil
}

// defaultFieldValue returns the JVM default for an unset field.
func defaultFieldValue(cf *classfile.ClassFile, idx int) value {
	c := &cf.Pool[idx]
	nat := &cf.Pool[c.NameAndType]
	desc := cf.Utf8At(nat.Desc)
	if desc == "I" || desc == "Z" {
		return int32(0)
	}
	return nil
}

// callVirtual dispatches an invokevirtual, including the println builtins.
func (in *Interp) callVirtual(cf *classfile.ClassFile, idx int, stack *[]value) (*value, error) {
	owner, name, desc, err := in.methodRef(cf, idx)
	if err != nil {
		return nil, err
	}
	params, ret, err := classfile.ParseMethodDescriptor(desc)
	if err != nil {
		return nil, err
	}
	nargs := len(params)
	s := *stack
	args := make([]value, nargs+1)
	copy(args, s[len(s)-nargs-1:])
	*stack = s[:len(s)-nargs-1]

	if owner == "java/io/PrintStream" && name == "println" {
		switch desc {
		case "(I)V":
			fmt.Fprintln(in.out, args[1])
		case "(Z)V":
			v, err := asInt(args[1])
			if err != nil {
				return nil, err
			}
			fmt.Fprintln(in.out, v != 0)
		case "(Ljava/lang/String;)V":
			fmt.Fprintln(in.out, args[1])
		default:
			return nil, fmt.Errorf("interp: println%s unsupported", desc)
		}
		return nil, nil
	}
	obj, ok := args[0].(*object)
	if !ok {
		return nil, fmt.Errorf("interp: virtual call %s.%s on %T", owner, name, args[0])
	}
	implCF, implM, err := in.resolveVirtual(obj.class, name, desc)
	if err != nil {
		return nil, err
	}
	result, err := in.invoke(implCF, implM, args)
	if err != nil {
		return nil, err
	}
	if ret.Slots() == 0 {
		return nil, nil
	}
	return &result, nil
}
