// Package minijava implements a small compiler for MiniJava — the classic
// teaching subset of Java (classes with single inheritance, int / boolean /
// int[] / object types, virtual methods) extended with string literals in
// println, full comparison operators, division and modulo, and else-less
// if. It compiles straight to Java class files through the classfile and
// bytecode packages, providing real compiler output for the examples and
// a seed of verifiably-valid classfiles for the corpus generator.
package minijava

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokString
	tokKeyword
	tokPunct
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"class": true, "extends": true, "public": true, "static": true,
	"void": true, "main": true, "int": true, "boolean": true, "String": true,
	"if": true, "else": true, "while": true, "return": true, "this": true,
	"new": true, "true": true, "false": true, "length": true,
}

// Error is a positioned compile error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("minijava: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos+1 >= len(l.src) {
					return errf(startLine, startCol, "unterminated block comment")
				}
				if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// twoCharPuncts are matched before single characters.
var twoCharPuncts = []string{"&&", "||", "<=", ">=", "==", "!="}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peekByte()
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.pos
		for l.pos < len(l.src) {
			c := l.peekByte()
			if !unicode.IsLetter(rune(c)) && !unicode.IsDigit(rune(c)) && c != '_' {
				break
			}
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.peekByte())) {
			l.advance()
		}
		return token{kind: tokInt, text: l.src[start:l.pos], line: line, col: col}, nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, errf(line, col, "unterminated string literal")
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\n' {
				return token{}, errf(line, col, "newline in string literal")
			}
			if c == '\\' {
				if l.pos >= len(l.src) {
					return token{}, errf(line, col, "unterminated escape")
				}
				switch e := l.advance(); e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					return token{}, errf(line, col, "bad escape \\%c", e)
				}
				continue
			}
			sb.WriteByte(c)
		}
		return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
	default:
		for _, p := range twoCharPuncts {
			if strings.HasPrefix(l.src[l.pos:], p) {
				l.advance()
				l.advance()
				return token{kind: tokPunct, text: p, line: line, col: col}, nil
			}
		}
		switch c {
		case '{', '}', '(', ')', '[', ']', ';', ',', '.', '=', '<', '>',
			'+', '-', '*', '/', '%', '!', '&':
			l.advance()
			return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
		}
		return token{}, errf(line, col, "unexpected character %q", c)
	}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
