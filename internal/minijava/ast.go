package minijava

// AST node definitions. Every node carries the source position of its
// first token for diagnostics.

type pos struct{ line, col int }

// Program is a parsed compilation unit: a main class plus class
// declarations.
type Program struct {
	Main    *MainClass
	Classes []*ClassDecl
}

// MainClass is `class Id { public static void main(String[] a) { stmts } }`.
type MainClass struct {
	pos
	Name    string
	ArgName string
	Vars    []*VarDecl
	Body    []Stmt
}

// ClassDecl is an ordinary class with optional superclass.
type ClassDecl struct {
	pos
	Name    string
	Extends string // "" for none
	Fields  []*VarDecl
	Methods []*MethodDecl
}

// VarDecl declares a field or local.
type VarDecl struct {
	pos
	Type TypeExpr
	Name string
}

// MethodDecl is `public Type name(params) { vars stmts return expr; }`.
type MethodDecl struct {
	pos
	Ret    TypeExpr
	Name   string
	Params []*VarDecl
	Vars   []*VarDecl
	Body   []Stmt
	Result Expr
}

// TypeExpr is a surface type.
type TypeExpr struct {
	pos
	Kind  typeKind
	Class string // for object types
}

type typeKind int

const (
	tyInt typeKind = iota
	tyBool
	tyIntArray
	tyClass
	tyString // internal: string literals only
	tyVoid   // internal: statement-expression results
)

func (t TypeExpr) String() string {
	switch t.Kind {
	case tyInt:
		return "int"
	case tyBool:
		return "boolean"
	case tyIntArray:
		return "int[]"
	case tyClass:
		return t.Class
	case tyString:
		return "String"
	default:
		return "void"
	}
}

// Stmt is a statement node.
type Stmt interface{ stmtPos() pos }

// BlockStmt is `{ stmts }`.
type BlockStmt struct {
	pos
	Stmts []Stmt
}

// IfStmt is `if (cond) then [else els]`.
type IfStmt struct {
	pos
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
}

// WhileStmt is `while (cond) body`.
type WhileStmt struct {
	pos
	Cond Expr
	Body Stmt
}

// PrintStmt is `System.out.println(expr);`.
type PrintStmt struct {
	pos
	Arg Expr
}

// VarRef is a resolved variable target, filled in by the typechecker.
type VarRef struct {
	Type       TypeExpr
	IsField    bool
	FieldClass string // declaring class when IsField
	Slot       int    // local slot otherwise
}

// AssignStmt is `name = expr;`.
type AssignStmt struct {
	pos
	Name   string
	Target VarRef
	Value  Expr
}

// ArrayAssignStmt is `name[index] = expr;`.
type ArrayAssignStmt struct {
	pos
	Name   string
	Target VarRef
	Index  Expr
	Value  Expr
}

func (s *BlockStmt) stmtPos() pos       { return s.pos }
func (s *IfStmt) stmtPos() pos          { return s.pos }
func (s *WhileStmt) stmtPos() pos       { return s.pos }
func (s *PrintStmt) stmtPos() pos       { return s.pos }
func (s *AssignStmt) stmtPos() pos      { return s.pos }
func (s *ArrayAssignStmt) stmtPos() pos { return s.pos }

// Expr is an expression node; the typechecker records each node's type.
type Expr interface {
	exprPos() pos
	exprType() TypeExpr
	setType(TypeExpr)
}

type exprBase struct {
	pos
	typ TypeExpr
}

func (e *exprBase) exprPos() pos       { return e.pos }
func (e *exprBase) exprType() TypeExpr { return e.typ }
func (e *exprBase) setType(t TypeExpr) { e.typ = t }

// BinaryExpr covers && || < <= > >= == != + - * / %.
type BinaryExpr struct {
	exprBase
	Op          string
	Left, Right Expr
}

// NotExpr is `!expr`.
type NotExpr struct {
	exprBase
	Operand Expr
}

// IndexExpr is `arr[i]`.
type IndexExpr struct {
	exprBase
	Array, Index Expr
}

// LengthExpr is `arr.length`.
type LengthExpr struct {
	exprBase
	Array Expr
}

// CallExpr is `recv.name(args)`.
type CallExpr struct {
	exprBase
	Recv Expr
	Name string
	Args []Expr
	// Static resolution recorded by the typechecker.
	DeclClass string // class whose declaration defines the method
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int32
}

// BoolLit is true/false.
type BoolLit struct {
	exprBase
	Value bool
}

// StringLit is a string literal (println only).
type StringLit struct {
	exprBase
	Value string
}

// IdentExpr is a variable reference (local, parameter, or field).
type IdentExpr struct {
	exprBase
	Name string
	// Resolution recorded by the typechecker.
	IsField    bool
	FieldClass string // declaring class when IsField
	Slot       int    // local slot otherwise
}

// ThisExpr is `this`.
type ThisExpr struct{ exprBase }

// NewArrayExpr is `new int[len]`.
type NewArrayExpr struct {
	exprBase
	Len Expr
}

// NewObjectExpr is `new Class()`.
type NewObjectExpr struct {
	exprBase
	Class string
}
