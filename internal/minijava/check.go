package minijava

import "fmt"

// classInfo is the symbol-table entry for one declared class.
type classInfo struct {
	decl    *ClassDecl
	super   *classInfo
	fields  map[string]*VarDecl
	methods map[string]*MethodDecl
}

// checker resolves names and types over a program.
type checker struct {
	classes map[string]*classInfo
	order   []string // declaration order
}

// Check typechecks the program, annotating expression types and name
// resolutions in place, and returns the class table.
func Check(prog *Program) (*checker, error) {
	c := &checker{classes: map[string]*classInfo{}}
	if _, ok := c.classes[prog.Main.Name]; ok {
		return nil, errf(prog.Main.line, prog.Main.col, "duplicate class %s", prog.Main.Name)
	}
	for _, cd := range prog.Classes {
		if cd.Name == prog.Main.Name {
			return nil, errf(cd.line, cd.col, "class %s conflicts with the main class", cd.Name)
		}
		if _, ok := c.classes[cd.Name]; ok {
			return nil, errf(cd.line, cd.col, "duplicate class %s", cd.Name)
		}
		info := &classInfo{decl: cd, fields: map[string]*VarDecl{}, methods: map[string]*MethodDecl{}}
		for _, f := range cd.Fields {
			if _, ok := info.fields[f.Name]; ok {
				return nil, errf(f.line, f.col, "duplicate field %s in %s", f.Name, cd.Name)
			}
			info.fields[f.Name] = f
		}
		for _, m := range cd.Methods {
			if _, ok := info.methods[m.Name]; ok {
				return nil, errf(m.line, m.col, "duplicate method %s in %s (no overloading in MiniJava)", m.Name, cd.Name)
			}
			info.methods[m.Name] = m
		}
		c.classes[cd.Name] = info
		c.order = append(c.order, cd.Name)
	}
	// Link superclasses and reject cycles.
	for _, name := range c.order {
		info := c.classes[name]
		if info.decl.Extends == "" {
			continue
		}
		super, ok := c.classes[info.decl.Extends]
		if !ok {
			return nil, errf(info.decl.line, info.decl.col,
				"class %s extends unknown class %s", name, info.decl.Extends)
		}
		info.super = super
	}
	for _, name := range c.order {
		seen := map[*classInfo]bool{}
		for info := c.classes[name]; info != nil; info = info.super {
			if seen[info] {
				return nil, errf(info.decl.line, info.decl.col,
					"inheritance cycle through %s", info.decl.Name)
			}
			seen[info] = true
		}
	}
	// Check class types mentioned in declarations.
	for _, name := range c.order {
		info := c.classes[name]
		for _, f := range info.decl.Fields {
			if err := c.checkType(f.Type); err != nil {
				return nil, err
			}
		}
		for _, m := range info.decl.Methods {
			if err := c.checkType(m.Ret); err != nil {
				return nil, err
			}
			for _, p := range m.Params {
				if err := c.checkType(p.Type); err != nil {
					return nil, err
				}
			}
			for _, v := range m.Vars {
				if err := c.checkType(v.Type); err != nil {
					return nil, err
				}
			}
		}
	}
	// Overriding methods must keep the exact signature.
	for _, name := range c.order {
		info := c.classes[name]
		if info.super == nil {
			continue
		}
		for mname, m := range info.methods {
			base, baseClass := c.lookupMethod(info.super, mname)
			if base == nil {
				continue
			}
			if !sameSignature(m, base) {
				return nil, errf(m.line, m.col,
					"method %s.%s overrides %s.%s with a different signature",
					name, mname, baseClass, mname)
			}
		}
	}
	// Check bodies.
	for _, name := range c.order {
		info := c.classes[name]
		for _, m := range info.decl.Methods {
			if err := c.checkMethod(info, m); err != nil {
				return nil, err
			}
		}
	}
	// Main body: statics only — no this, no fields.
	sc := &scope{checker: c, class: nil, slots: map[string]scopeVar{}}
	sc.slots[prog.Main.ArgName] = scopeVar{typ: TypeExpr{Kind: tyString}, slot: 0}
	next := 1
	for _, v := range prog.Main.Vars {
		if err := c.checkType(v.Type); err != nil {
			return nil, err
		}
		if _, ok := sc.slots[v.Name]; ok {
			return nil, errf(v.line, v.col, "duplicate local %s", v.Name)
		}
		sc.slots[v.Name] = scopeVar{typ: v.Type, slot: next}
		next++
	}
	for _, s := range prog.Main.Body {
		if err := sc.checkStmt(s); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// typeEq compares surface types ignoring source positions.
func typeEq(a, b TypeExpr) bool { return a.Kind == b.Kind && a.Class == b.Class }

func sameSignature(a, b *MethodDecl) bool {
	if len(a.Params) != len(b.Params) || !typeEq(a.Ret, b.Ret) {
		return false
	}
	for i := range a.Params {
		if !typeEq(a.Params[i].Type, b.Params[i].Type) {
			return false
		}
	}
	return true
}

func (c *checker) checkType(t TypeExpr) error {
	if t.Kind == tyClass {
		if _, ok := c.classes[t.Class]; !ok {
			return errf(t.line, t.col, "unknown type %s", t.Class)
		}
	}
	return nil
}

// lookupMethod walks the superclass chain.
func (c *checker) lookupMethod(info *classInfo, name string) (*MethodDecl, string) {
	for ; info != nil; info = info.super {
		if m, ok := info.methods[name]; ok {
			return m, info.decl.Name
		}
	}
	return nil, ""
}

// lookupField walks the superclass chain.
func (c *checker) lookupField(info *classInfo, name string) (*VarDecl, string) {
	for ; info != nil; info = info.super {
		if f, ok := info.fields[name]; ok {
			return f, info.decl.Name
		}
	}
	return nil, ""
}

// assignable reports whether a value of type src can flow into dst.
func (c *checker) assignable(src, dst TypeExpr) bool {
	if src.Kind != tyClass || dst.Kind != tyClass {
		return src.Kind == dst.Kind
	}
	for info := c.classes[src.Class]; info != nil; info = info.super {
		if info.decl.Name == dst.Class {
			return true
		}
	}
	return false
}

// scopeVar is a parameter or local with its frame slot.
type scopeVar struct {
	typ  TypeExpr
	slot int
}

// scope is the method-body checking context.
type scope struct {
	checker *checker
	class   *classInfo // nil inside main (no this)
	slots   map[string]scopeVar
}

func (c *checker) checkMethod(info *classInfo, m *MethodDecl) error {
	sc := &scope{checker: c, class: info, slots: map[string]scopeVar{}}
	next := 1 // slot 0 is this
	for _, p := range m.Params {
		if _, ok := sc.slots[p.Name]; ok {
			return errf(p.line, p.col, "duplicate parameter %s", p.Name)
		}
		sc.slots[p.Name] = scopeVar{typ: p.Type, slot: next}
		next++
	}
	for _, v := range m.Vars {
		if _, ok := sc.slots[v.Name]; ok {
			return errf(v.line, v.col, "duplicate local %s", v.Name)
		}
		sc.slots[v.Name] = scopeVar{typ: v.Type, slot: next}
		next++
	}
	for _, s := range m.Body {
		if err := sc.checkStmt(s); err != nil {
			return err
		}
	}
	rt, err := sc.checkExpr(m.Result)
	if err != nil {
		return err
	}
	if !c.assignable(rt, m.Ret) {
		return errf(m.Result.exprPos().line, m.Result.exprPos().col,
			"cannot return %s from method returning %s", rt, m.Ret)
	}
	return nil
}

func (sc *scope) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		for _, inner := range s.Stmts {
			if err := sc.checkStmt(inner); err != nil {
				return err
			}
		}
		return nil
	case *IfStmt:
		t, err := sc.checkExpr(s.Cond)
		if err != nil {
			return err
		}
		if t.Kind != tyBool {
			return errf(s.line, s.col, "if condition is %s, want boolean", t)
		}
		if err := sc.checkStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return sc.checkStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		t, err := sc.checkExpr(s.Cond)
		if err != nil {
			return err
		}
		if t.Kind != tyBool {
			return errf(s.line, s.col, "while condition is %s, want boolean", t)
		}
		return sc.checkStmt(s.Body)
	case *PrintStmt:
		t, err := sc.checkExpr(s.Arg)
		if err != nil {
			return err
		}
		switch t.Kind {
		case tyInt, tyBool, tyString:
			return nil
		default:
			return errf(s.line, s.col, "cannot println a %s", t)
		}
	case *AssignStmt:
		vt, err := sc.resolveVar(s.pos, s.Name, &s.Target)
		if err != nil {
			return err
		}
		et, err := sc.checkExpr(s.Value)
		if err != nil {
			return err
		}
		if !sc.checker.assignable(et, vt) {
			return errf(s.line, s.col, "cannot assign %s to %s %s", et, vt, s.Name)
		}
		return nil
	case *ArrayAssignStmt:
		vt, err := sc.resolveVar(s.pos, s.Name, &s.Target)
		if err != nil {
			return err
		}
		if vt.Kind != tyIntArray {
			return errf(s.line, s.col, "%s is %s, not int[]", s.Name, vt)
		}
		it, err := sc.checkExpr(s.Index)
		if err != nil {
			return err
		}
		if it.Kind != tyInt {
			return errf(s.line, s.col, "array index is %s, want int", it)
		}
		et, err := sc.checkExpr(s.Value)
		if err != nil {
			return err
		}
		if et.Kind != tyInt {
			return errf(s.line, s.col, "array element is %s, want int", et)
		}
		return nil
	default:
		return fmt.Errorf("minijava: unknown statement %T", s)
	}
}

// resolveVar resolves an assignment target name, recording the resolution
// in ref for the code generator.
func (sc *scope) resolveVar(p pos, name string, ref *VarRef) (TypeExpr, error) {
	ident := &IdentExpr{exprBase: exprBase{pos: p}, Name: name}
	t, err := sc.resolveIdent(ident)
	if err != nil {
		return TypeExpr{}, err
	}
	*ref = VarRef{Type: t, IsField: ident.IsField, FieldClass: ident.FieldClass, Slot: ident.Slot}
	return t, nil
}

func (sc *scope) resolveIdent(e *IdentExpr) (TypeExpr, error) {
	if v, ok := sc.slots[e.Name]; ok {
		e.IsField = false
		e.Slot = v.slot
		e.setType(v.typ)
		return v.typ, nil
	}
	if sc.class != nil {
		if f, declClass := sc.checker.lookupField(sc.class, e.Name); f != nil {
			e.IsField = true
			e.FieldClass = declClass
			e.setType(f.Type)
			return f.Type, nil
		}
	}
	return TypeExpr{}, errf(e.line, e.col, "undefined variable %s", e.Name)
}

func (sc *scope) checkExpr(e Expr) (TypeExpr, error) {
	switch e := e.(type) {
	case *IntLit:
		e.setType(TypeExpr{Kind: tyInt})
	case *BoolLit:
		e.setType(TypeExpr{Kind: tyBool})
	case *StringLit:
		e.setType(TypeExpr{Kind: tyString})
	case *ThisExpr:
		if sc.class == nil {
			return TypeExpr{}, errf(e.line, e.col, "this is not available in main")
		}
		e.setType(TypeExpr{Kind: tyClass, Class: sc.class.decl.Name})
	case *IdentExpr:
		return sc.resolveIdent(e)
	case *NotExpr:
		t, err := sc.checkExpr(e.Operand)
		if err != nil {
			return TypeExpr{}, err
		}
		if t.Kind != tyBool {
			return TypeExpr{}, errf(e.line, e.col, "! applied to %s", t)
		}
		e.setType(TypeExpr{Kind: tyBool})
	case *BinaryExpr:
		lt, err := sc.checkExpr(e.Left)
		if err != nil {
			return TypeExpr{}, err
		}
		rt, err := sc.checkExpr(e.Right)
		if err != nil {
			return TypeExpr{}, err
		}
		switch e.Op {
		case "&&", "||":
			if lt.Kind != tyBool || rt.Kind != tyBool {
				return TypeExpr{}, errf(e.line, e.col, "%s applied to %s and %s", e.Op, lt, rt)
			}
			e.setType(TypeExpr{Kind: tyBool})
		case "<", "<=", ">", ">=":
			if lt.Kind != tyInt || rt.Kind != tyInt {
				return TypeExpr{}, errf(e.line, e.col, "%s applied to %s and %s", e.Op, lt, rt)
			}
			e.setType(TypeExpr{Kind: tyBool})
		case "==", "!=":
			if !sc.checker.assignable(lt, rt) && !sc.checker.assignable(rt, lt) {
				return TypeExpr{}, errf(e.line, e.col, "%s compares %s and %s", e.Op, lt, rt)
			}
			if lt.Kind == tyString || rt.Kind == tyString {
				return TypeExpr{}, errf(e.line, e.col, "cannot compare strings")
			}
			e.setType(TypeExpr{Kind: tyBool})
		case "+", "-", "*", "/", "%":
			if lt.Kind != tyInt || rt.Kind != tyInt {
				return TypeExpr{}, errf(e.line, e.col, "%s applied to %s and %s", e.Op, lt, rt)
			}
			e.setType(TypeExpr{Kind: tyInt})
		default:
			return TypeExpr{}, errf(e.line, e.col, "unknown operator %s", e.Op)
		}
	case *IndexExpr:
		at, err := sc.checkExpr(e.Array)
		if err != nil {
			return TypeExpr{}, err
		}
		if at.Kind != tyIntArray {
			return TypeExpr{}, errf(e.line, e.col, "indexing a %s", at)
		}
		it, err := sc.checkExpr(e.Index)
		if err != nil {
			return TypeExpr{}, err
		}
		if it.Kind != tyInt {
			return TypeExpr{}, errf(e.line, e.col, "array index is %s, want int", it)
		}
		e.setType(TypeExpr{Kind: tyInt})
	case *LengthExpr:
		at, err := sc.checkExpr(e.Array)
		if err != nil {
			return TypeExpr{}, err
		}
		if at.Kind != tyIntArray {
			return TypeExpr{}, errf(e.line, e.col, ".length of a %s", at)
		}
		e.setType(TypeExpr{Kind: tyInt})
	case *CallExpr:
		rt, err := sc.checkExpr(e.Recv)
		if err != nil {
			return TypeExpr{}, err
		}
		if rt.Kind != tyClass {
			return TypeExpr{}, errf(e.line, e.col, "calling a method on %s", rt)
		}
		m, declClass := sc.checker.lookupMethod(sc.checker.classes[rt.Class], e.Name)
		if m == nil {
			return TypeExpr{}, errf(e.line, e.col, "class %s has no method %s", rt.Class, e.Name)
		}
		if len(e.Args) != len(m.Params) {
			return TypeExpr{}, errf(e.line, e.col, "%s.%s takes %d arguments, got %d",
				rt.Class, e.Name, len(m.Params), len(e.Args))
		}
		for i, arg := range e.Args {
			at, err := sc.checkExpr(arg)
			if err != nil {
				return TypeExpr{}, err
			}
			if !sc.checker.assignable(at, m.Params[i].Type) {
				return TypeExpr{}, errf(e.line, e.col, "argument %d of %s.%s is %s, want %s",
					i+1, rt.Class, e.Name, at, m.Params[i].Type)
			}
		}
		e.DeclClass = declClass
		e.setType(m.Ret)
	case *NewArrayExpr:
		lt, err := sc.checkExpr(e.Len)
		if err != nil {
			return TypeExpr{}, err
		}
		if lt.Kind != tyInt {
			return TypeExpr{}, errf(e.line, e.col, "array length is %s, want int", lt)
		}
		e.setType(TypeExpr{Kind: tyIntArray})
	case *NewObjectExpr:
		if _, ok := sc.checker.classes[e.Class]; !ok {
			return TypeExpr{}, errf(e.line, e.col, "unknown class %s", e.Class)
		}
		e.setType(TypeExpr{Kind: tyClass, Class: e.Class})
	default:
		return TypeExpr{}, fmt.Errorf("minijava: unknown expression %T", e)
	}
	return e.exprType(), nil
}
