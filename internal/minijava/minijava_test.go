package minijava

import (
	"bytes"
	"strings"
	"testing"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/strip"
)

const facSource = `
class Main {
    public static void main(String[] a) {
        System.out.println(new Fac().compute(10));
    }
}
class Fac {
    public int compute(int num) {
        int result;
        if (num < 1) result = 1;
        else result = num * (this.compute(num - 1));
        return result;
    }
}
`

// compileRun compiles source and runs main, returning printed output.
func compileRun(t *testing.T, src string) string {
	t.Helper()
	cfs, err := Compile(src, CompileOptions{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, cf := range cfs {
		if err := classfile.Verify(cf); err != nil {
			t.Fatalf("%s: %v", cf.ThisClassName(), err)
		}
		for mi := range cf.Methods {
			if code := classfile.CodeOf(&cf.Methods[mi]); code != nil {
				if err := bytecode.Check(code.Code); err != nil {
					t.Fatalf("%s.%s: %v", cf.ThisClassName(), cf.MemberName(&cf.Methods[mi]), err)
				}
			}
		}
	}
	var out bytes.Buffer
	interp := NewInterp(&out, cfs)
	if err := interp.RunMain(cfs[0].ThisClassName()); err != nil {
		t.Fatalf("RunMain: %v", err)
	}
	return out.String()
}

func TestFactorial(t *testing.T) {
	if got := compileRun(t, facSource); got != "3628800\n" {
		t.Fatalf("output = %q, want 3628800", got)
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	src := `
class Main { public static void main(String[] a) {
    System.out.println(2 + 3 * 4);
    System.out.println((2 + 3) * 4);
    System.out.println(17 / 5);
    System.out.println(17 % 5);
    System.out.println(10 - 2 - 3);
} }
`
	want := "14\n20\n3\n2\n5\n"
	if got := compileRun(t, src); got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
}

func TestBooleansAndComparisons(t *testing.T) {
	src := `
class Main { public static void main(String[] a) {
    System.out.println(1 < 2);
    System.out.println(2 <= 1);
    System.out.println(3 > 2 && 2 > 1);
    System.out.println(1 > 2 || 2 > 1);
    System.out.println(!(1 == 1));
    System.out.println(1 != 2);
    System.out.println(true && false);
} }
`
	want := "true\nfalse\ntrue\ntrue\nfalse\ntrue\nfalse\n"
	if got := compileRun(t, src); got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand must not run when && short-circuits: dividing by
	// zero would abort the interpreter.
	src := `
class Main { public static void main(String[] a) {
    System.out.println(new T().safe(0));
} }
class T {
    public boolean safe(int x) {
        boolean r;
        r = 0 < x && 10 / x > 0;
        return r;
    }
}
`
	if got := compileRun(t, src); got != "false\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestWhileAndArrays(t *testing.T) {
	src := `
class Main { public static void main(String[] a) {
    System.out.println(new Summer().sum(10));
} }
class Summer {
    public int sum(int n) {
        int[] vals;
        int i;
        int total;
        vals = new int[n];
        i = 0;
        while (i < vals.length) {
            vals[i] = i * i;
            i = i + 1;
        }
        total = 0;
        i = 0;
        while (i < n) {
            total = total + vals[i];
            i = i + 1;
        }
        return total;
    }
}
`
	if got := compileRun(t, src); got != "285\n" {
		t.Fatalf("output = %q, want 285", got)
	}
}

func TestInheritanceAndVirtualDispatch(t *testing.T) {
	src := `
class Main { public static void main(String[] a) {
    Animal x;
    x = new Cat();
    System.out.println(x.speak());
    x = new Dog();
    System.out.println(x.speak());
    System.out.println(x.legs());
} }
class Animal {
    int legCount;
    public int speak() { return 0; }
    public int legs() { legCount = 4; return legCount; }
}
class Cat extends Animal {
    public int speak() { return 1; }
}
class Dog extends Animal {
    public int speak() { return 2; }
}
`
	if got := compileRun(t, src); got != "1\n2\n4\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestFieldsAcrossInheritance(t *testing.T) {
	src := `
class Main { public static void main(String[] a) {
    System.out.println(new Counter().bump(5));
} }
class Base { int total; public int read() { return total; } }
class Counter extends Base {
    public int bump(int n) {
        int i;
        i = 0;
        while (i < n) { total = total + 2; i = i + 1; }
        return this.read();
    }
}
`
	if got := compileRun(t, src); got != "10\n" {
		t.Fatalf("output = %q, want 10", got)
	}
}

func TestStringPrintln(t *testing.T) {
	src := `
class Main { public static void main(String[] a) {
    System.out.println("hello, minijava");
    System.out.println("escapes: \"quoted\" and tab\t!");
} }
`
	want := "hello, minijava\nescapes: \"quoted\" and tab\t!\n"
	if got := compileRun(t, src); got != want {
		t.Fatalf("output = %q", got)
	}
}

func TestPackageOption(t *testing.T) {
	cfs, err := Compile(facSource, CompileOptions{Package: "demo/app", SourceFile: "Fac.java"})
	if err != nil {
		t.Fatal(err)
	}
	if got := cfs[0].ThisClassName(); got != "demo/app/Main" {
		t.Fatalf("main class = %q", got)
	}
	if got := cfs[1].ThisClassName(); got != "demo/app/Fac" {
		t.Fatalf("class = %q", got)
	}
	var out bytes.Buffer
	if err := NewInterp(&out, cfs).RunMain("demo/app/Main"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "3628800\n" {
		t.Fatalf("output = %q", out.String())
	}
}

// TestCompiledProgramSurvivesPacking is the repository's flagship
// integration test: compile → pack → unpack → run, asserting the program
// behaves identically after the compression round trip.
func TestCompiledProgramSurvivesPacking(t *testing.T) {
	cfs, err := Compile(facSource, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := new(bytes.Buffer)
	if err := NewInterp(before, cfs).RunMain("Main"); err != nil {
		t.Fatal(err)
	}
	if err := strip.ApplyAll(cfs, strip.Options{}); err != nil {
		t.Fatal(err)
	}
	packed, err := core.Pack(cfs, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	after := new(bytes.Buffer)
	if err := NewInterp(after, back).RunMain("Main"); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Fatalf("behavior changed after packing: %q vs %q", before.String(), after.String())
	}
}

func TestTypeErrors(t *testing.T) {
	cases := map[string]string{
		"int cond":        `class M { public static void main(String[] a) { if (1) {} } }`,
		"bad assign":      `class M { public static void main(String[] a) { } } class C { public int f() { boolean b; b = 3; return 0; } }`,
		"unknown class":   `class M { public static void main(String[] a) { System.out.println(new Zork().f()); } }`,
		"unknown method":  `class M { public static void main(String[] a) { System.out.println(new C().g()); } } class C { public int f() { return 0; } }`,
		"undefined var":   `class M { public static void main(String[] a) { x = 1; } }`,
		"arity mismatch":  `class M { public static void main(String[] a) { System.out.println(new C().f(1)); } } class C { public int f() { return 0; } }`,
		"this in main":    `class M { public static void main(String[] a) { System.out.println(this.f()); } }`,
		"bad override":    `class M { public static void main(String[] a) { } } class A { public int f() { return 0; } } class B extends A { public boolean f() { return true; } }`,
		"cycle":           `class M { public static void main(String[] a) { } } class A extends B { } class B extends A { }`,
		"println object":  `class M { public static void main(String[] a) { System.out.println(new C()); } } class C { public int f() { return 0; } }`,
		"string compare":  `class M { public static void main(String[] a) { System.out.println("a" == "b"); } }`,
		"dup class":       `class M { public static void main(String[] a) { } } class A { } class A { }`,
		"extends unknown": `class M { public static void main(String[] a) { } } class A extends Zork { }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Compile(src, CompileOptions{}); err == nil {
				t.Fatalf("compiled successfully")
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         ``,
		"no main":       `class M { }`,
		"missing semi":  `class M { public static void main(String[] a) { x = 1 } }`,
		"bad stmt":      `class M { public static void main(String[] a) { 1 + 2; } }`,
		"no return":     `class M { public static void main(String[] a) { } } class C { public int f() { } }`,
		"bad string":    `class M { public static void main(String[] a) { System.out.println("unterminated); } }`,
		"bad comment":   `class M { /* never closed`,
		"huge int":      `class M { public static void main(String[] a) { System.out.println(99999999999); } }`,
		"trailing junk": `class M { public static void main(String[] a) { } } @`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Compile(src, CompileOptions{}); err == nil {
				t.Fatalf("compiled successfully")
			}
		})
	}
}

func TestErrorsArePositioned(t *testing.T) {
	src := "class M {\n  public static void main(String[] a) {\n    x = 1;\n  }\n}"
	_, err := Compile(src, CompileOptions{})
	if err == nil {
		t.Fatal("compiled")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not carry line 3", err)
	}
}

func TestComments(t *testing.T) {
	src := `
// leading comment
class Main { public static void main(String[] a) {
    /* block
       comment */
    System.out.println(7); // trailing
} }
`
	if got := compileRun(t, src); got != "7\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestInterpreterRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"division by zero": `
class Main { public static void main(String[] a) {
    System.out.println(new D().div(1, 0));
} }
class D { public int div(int a, int b) { return a / b; } }
`,
		"index out of bounds": `
class Main { public static void main(String[] a) {
    int[] xs;
    xs = new int[2];
    xs[5] = 1;
} }
`,
		"negative array size": `
class Main { public static void main(String[] a) {
    int[] xs;
    xs = new int[0 - 3];
    System.out.println(xs.length);
} }
`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			cfs, err := Compile(src, CompileOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			if err := NewInterp(&out, cfs).RunMain("Main"); err == nil {
				t.Fatalf("interpreter did not report the error (output %q)", out.String())
			}
		})
	}
}

func TestInterpreterStepBudget(t *testing.T) {
	cfs, err := Compile(`
class Main { public static void main(String[] a) {
    while (true) { }
} }
`, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	interp := NewInterp(&out, cfs)
	interp.maxStep = 10000
	if err := interp.RunMain("Main"); err == nil {
		t.Fatal("infinite loop did not exhaust the step budget")
	}
}

func TestFieldDefaults(t *testing.T) {
	// Unassigned fields read as JVM defaults (0 / false / null).
	src := `
class Main { public static void main(String[] a) {
    System.out.println(new C().geti());
    System.out.println(new C().getb());
} }
class C {
    int i;
    boolean b;
    public int geti() { return i; }
    public boolean getb() { return b; }
}
`
	if got := compileRun(t, src); got != "0\nfalse\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestDeepRecursion(t *testing.T) {
	// Fibonacci both stresses frames and checks arithmetic.
	src := `
class Main { public static void main(String[] a) {
    System.out.println(new Fib().fib(20));
} }
class Fib {
    public int fib(int n) {
        int r;
        if (n < 2) r = n;
        else r = this.fib(n - 1) + this.fib(n - 2);
        return r;
    }
}
`
	if got := compileRun(t, src); got != "6765\n" {
		t.Fatalf("output = %q", got)
	}
}
