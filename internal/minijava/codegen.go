package minijava

import (
	"fmt"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
)

// CompileOptions adjust code generation.
type CompileOptions struct {
	// Package places all generated classes into a package
	// ("com/example" -> com/example/Main).
	Package string
	// SourceFile attaches SourceFile attributes naming this file.
	SourceFile string
}

// gen is the per-program code generator.
type gen struct {
	checker *checker
	opts    CompileOptions
}

func (g *gen) qualify(class string) string {
	if g.opts.Package == "" {
		return class
	}
	return g.opts.Package + "/" + class
}

// descOf maps a surface type to a JVM descriptor.
func (g *gen) descOf(t TypeExpr) string {
	switch t.Kind {
	case tyInt:
		return "I"
	case tyBool:
		return "Z"
	case tyIntArray:
		return "[I"
	case tyString:
		return "Ljava/lang/String;"
	case tyClass:
		return "L" + g.qualify(t.Class) + ";"
	default:
		return "V"
	}
}

func (g *gen) methodDesc(m *MethodDecl) string {
	desc := "("
	for _, p := range m.Params {
		desc += g.descOf(p.Type)
	}
	return desc + ")" + g.descOf(m.Ret)
}

// Compile parses, typechecks, and compiles MiniJava source into class
// files (the main class first).
func Compile(src string, opts CompileOptions) ([]*classfile.ClassFile, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := Check(prog)
	if err != nil {
		return nil, err
	}
	g := &gen{checker: c, opts: opts}
	var out []*classfile.ClassFile
	mainCF, err := g.mainClass(prog.Main)
	if err != nil {
		return nil, err
	}
	out = append(out, mainCF)
	for _, name := range c.order {
		cf, err := g.classDecl(c.classes[name])
		if err != nil {
			return nil, err
		}
		out = append(out, cf)
	}
	return out, nil
}

func (g *gen) newBuilder(name, super string) *classfile.Builder {
	b := classfile.NewBuilder(g.qualify(name), super,
		classfile.AccPublic|classfile.AccSuper)
	if g.opts.SourceFile != "" {
		b.AttachSourceFile(g.opts.SourceFile)
	}
	return b
}

// emitDefaultCtor emits `<init>()V` calling the superclass constructor.
func (g *gen) emitDefaultCtor(b *classfile.Builder, super string) error {
	m := b.AddMethod(classfile.AccPublic, "<init>", "()V")
	a := bytecode.NewAssembler()
	a.Local(bytecode.Aload, 0)
	a.CP(bytecode.Invokespecial, b.Methodref(super, "<init>", "()V"))
	a.Op(bytecode.Return)
	code, err := a.Assemble()
	if err != nil {
		return err
	}
	b.AttachCode(m, &classfile.CodeAttr{MaxStack: 1, MaxLocals: 1, Code: code})
	return nil
}

func (g *gen) mainClass(mc *MainClass) (*classfile.ClassFile, error) {
	b := g.newBuilder(mc.Name, "java/lang/Object")
	if err := g.emitDefaultCtor(b, "java/lang/Object"); err != nil {
		return nil, err
	}
	m := b.AddMethod(classfile.AccPublic|classfile.AccStatic, "main", "([Ljava/lang/String;)V")
	mg := &methodGen{gen: g, b: b, a: bytecode.NewAssembler(), maxLocals: 1 + len(mc.Vars)}
	for _, s := range mc.Body {
		if err := mg.stmt(s); err != nil {
			return nil, err
		}
	}
	mg.a.Op(bytecode.Return)
	code, err := mg.a.Assemble()
	if err != nil {
		return nil, err
	}
	b.AttachCode(m, &classfile.CodeAttr{
		MaxStack: uint16(mg.maxDepth + 1), MaxLocals: uint16(mg.maxLocals), Code: code,
	})
	cf, err := b.Build()
	if err != nil {
		return nil, err
	}
	return cf, classfile.Verify(cf)
}

func (g *gen) classDecl(info *classInfo) (*classfile.ClassFile, error) {
	super := "java/lang/Object"
	if info.super != nil {
		super = g.qualify(info.super.decl.Name)
	}
	b := g.newBuilder(info.decl.Name, super)
	for _, f := range info.decl.Fields {
		b.AddField(classfile.AccProtected, f.Name, g.descOf(f.Type))
	}
	if err := g.emitDefaultCtor(b, super); err != nil {
		return nil, err
	}
	for _, m := range info.decl.Methods {
		if err := g.method(b, info, m); err != nil {
			return nil, fmt.Errorf("minijava: %s.%s: %w", info.decl.Name, m.Name, err)
		}
	}
	cf, err := b.Build()
	if err != nil {
		return nil, err
	}
	return cf, classfile.Verify(cf)
}

func (g *gen) method(b *classfile.Builder, info *classInfo, m *MethodDecl) error {
	member := b.AddMethod(classfile.AccPublic, m.Name, g.methodDesc(m))
	mg := &methodGen{gen: g, b: b, a: bytecode.NewAssembler(),
		maxLocals: 1 + len(m.Params) + len(m.Vars)}
	for _, s := range m.Body {
		if err := mg.stmt(s); err != nil {
			return err
		}
	}
	if err := mg.expr(m.Result); err != nil {
		return err
	}
	switch m.Ret.Kind {
	case tyInt, tyBool:
		mg.a.Op(bytecode.Ireturn)
	default:
		mg.a.Op(bytecode.Areturn)
	}
	code, err := mg.a.Assemble()
	if err != nil {
		return err
	}
	b.AttachCode(member, &classfile.CodeAttr{
		MaxStack: uint16(mg.maxDepth + 1), MaxLocals: uint16(mg.maxLocals), Code: code,
	})
	return nil
}

// methodGen emits one method body, tracking operand-stack depth for
// max_stack.
type methodGen struct {
	gen       *gen
	b         *classfile.Builder
	a         *bytecode.Assembler
	depth     int
	maxDepth  int
	maxLocals int
}

func (mg *methodGen) push(n int) {
	mg.depth += n
	if mg.depth > mg.maxDepth {
		mg.maxDepth = mg.depth
	}
}

func (mg *methodGen) pop(n int) { mg.depth -= n }

func (mg *methodGen) constInt(v int32) {
	switch {
	case v >= -1 && v <= 5:
		mg.a.Op(bytecode.Iconst0 + bytecode.Op(v))
	case v >= -128 && v <= 127:
		mg.a.SByte(int(v))
	case v >= -32768 && v <= 32767:
		mg.a.SShort(int(v))
	default:
		mg.a.Ldc(mg.b.Int(v))
	}
	mg.push(1)
}

func isRefType(t TypeExpr) bool {
	return t.Kind == tyClass || t.Kind == tyIntArray || t.Kind == tyString
}

func (mg *methodGen) loadVar(ref VarRef, name string) {
	if ref.IsField {
		mg.a.Local(bytecode.Aload, 0)
		mg.push(1)
		mg.a.CP(bytecode.Getfield, mg.b.Fieldref(
			mg.gen.qualify(ref.FieldClass), name, mg.gen.descOf(ref.Type)))
		return
	}
	if isRefType(ref.Type) {
		mg.a.Local(bytecode.Aload, ref.Slot)
	} else {
		mg.a.Local(bytecode.Iload, ref.Slot)
	}
	mg.push(1)
}

func (mg *methodGen) stmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		for _, inner := range s.Stmts {
			if err := mg.stmt(inner); err != nil {
				return err
			}
		}
	case *IfStmt:
		if err := mg.expr(s.Cond); err != nil {
			return err
		}
		elseL := mg.a.NewLabel()
		endL := mg.a.NewLabel()
		mg.a.Branch(bytecode.Ifeq, elseL)
		mg.pop(1)
		if err := mg.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			mg.a.Branch(bytecode.Goto, endL)
			mg.a.Bind(elseL)
			if err := mg.stmt(s.Else); err != nil {
				return err
			}
		} else {
			mg.a.Bind(elseL)
		}
		mg.a.Bind(endL)
	case *WhileStmt:
		loop := mg.a.NewLabel()
		end := mg.a.NewLabel()
		mg.a.Bind(loop)
		if err := mg.expr(s.Cond); err != nil {
			return err
		}
		mg.a.Branch(bytecode.Ifeq, end)
		mg.pop(1)
		if err := mg.stmt(s.Body); err != nil {
			return err
		}
		mg.a.Branch(bytecode.Goto, loop)
		mg.a.Bind(end)
	case *PrintStmt:
		mg.a.CP(bytecode.Getstatic, mg.b.Fieldref(
			"java/lang/System", "out", "Ljava/io/PrintStream;"))
		mg.push(1)
		if err := mg.expr(s.Arg); err != nil {
			return err
		}
		var desc string
		switch s.Arg.exprType().Kind {
		case tyInt:
			desc = "(I)V"
		case tyBool:
			desc = "(Z)V"
		default:
			desc = "(Ljava/lang/String;)V"
		}
		mg.a.CP(bytecode.Invokevirtual, mg.b.Methodref("java/io/PrintStream", "println", desc))
		mg.pop(2)
	case *AssignStmt:
		if s.Target.IsField {
			mg.a.Local(bytecode.Aload, 0)
			mg.push(1)
			if err := mg.expr(s.Value); err != nil {
				return err
			}
			mg.a.CP(bytecode.Putfield, mg.b.Fieldref(
				mg.gen.qualify(s.Target.FieldClass), s.Name, mg.gen.descOf(s.Target.Type)))
			mg.pop(2)
			return nil
		}
		if err := mg.expr(s.Value); err != nil {
			return err
		}
		if isRefType(s.Target.Type) {
			mg.a.Local(bytecode.Astore, s.Target.Slot)
		} else {
			mg.a.Local(bytecode.Istore, s.Target.Slot)
		}
		mg.pop(1)
	case *ArrayAssignStmt:
		mg.loadVar(s.Target, s.Name)
		if err := mg.expr(s.Index); err != nil {
			return err
		}
		if err := mg.expr(s.Value); err != nil {
			return err
		}
		mg.a.Op(bytecode.Iastore)
		mg.pop(3)
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
	return nil
}

func (mg *methodGen) expr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		mg.constInt(e.Value)
	case *BoolLit:
		if e.Value {
			mg.a.Op(bytecode.Iconst1)
		} else {
			mg.a.Op(bytecode.Iconst0)
		}
		mg.push(1)
	case *StringLit:
		mg.a.Ldc(mg.b.String(e.Value))
		mg.push(1)
	case *ThisExpr:
		mg.a.Local(bytecode.Aload, 0)
		mg.push(1)
	case *IdentExpr:
		mg.loadVar(VarRef{Type: e.exprType(), IsField: e.IsField,
			FieldClass: e.FieldClass, Slot: e.Slot}, e.Name)
	case *NotExpr:
		if err := mg.expr(e.Operand); err != nil {
			return err
		}
		mg.a.Op(bytecode.Iconst1)
		mg.push(1)
		mg.a.Op(bytecode.Ixor)
		mg.pop(1)
	case *BinaryExpr:
		return mg.binary(e)
	case *IndexExpr:
		if err := mg.expr(e.Array); err != nil {
			return err
		}
		if err := mg.expr(e.Index); err != nil {
			return err
		}
		mg.a.Op(bytecode.Iaload)
		mg.pop(1)
	case *LengthExpr:
		if err := mg.expr(e.Array); err != nil {
			return err
		}
		mg.a.Op(bytecode.Arraylength)
	case *CallExpr:
		if err := mg.expr(e.Recv); err != nil {
			return err
		}
		for _, arg := range e.Args {
			if err := mg.expr(arg); err != nil {
				return err
			}
		}
		m := mg.gen.checker.classes[e.DeclClass].methods[e.Name]
		mg.a.CP(bytecode.Invokevirtual, mg.b.Methodref(
			mg.gen.qualify(e.DeclClass), e.Name, mg.gen.methodDesc(m)))
		mg.pop(len(e.Args) + 1)
		mg.push(1) // every MiniJava method returns a value
	case *NewArrayExpr:
		if err := mg.expr(e.Len); err != nil {
			return err
		}
		mg.a.NewArray(10) // T_INT
	case *NewObjectExpr:
		name := mg.gen.qualify(e.Class)
		mg.a.CP(bytecode.New, mg.b.Class(name))
		mg.push(1)
		mg.a.Op(bytecode.Dup)
		mg.push(1)
		mg.a.CP(bytecode.Invokespecial, mg.b.Methodref(name, "<init>", "()V"))
		mg.pop(1)
	default:
		return fmt.Errorf("unknown expression %T", e)
	}
	return nil
}

// binary emits &&/|| with short-circuiting, comparisons as 0/1 values,
// and arithmetic directly.
func (mg *methodGen) binary(e *BinaryExpr) error {
	switch e.Op {
	case "&&", "||":
		shortL := mg.a.NewLabel()
		endL := mg.a.NewLabel()
		if err := mg.expr(e.Left); err != nil {
			return err
		}
		if e.Op == "&&" {
			mg.a.Branch(bytecode.Ifeq, shortL)
		} else {
			mg.a.Branch(bytecode.Ifne, shortL)
		}
		mg.pop(1)
		if err := mg.expr(e.Right); err != nil {
			return err
		}
		mg.a.Branch(bytecode.Goto, endL)
		mg.pop(1)
		mg.a.Bind(shortL)
		if e.Op == "&&" {
			mg.a.Op(bytecode.Iconst0)
		} else {
			mg.a.Op(bytecode.Iconst1)
		}
		mg.a.Bind(endL)
		mg.push(1)
		return nil
	case "<", "<=", ">", ">=", "==", "!=":
		if err := mg.expr(e.Left); err != nil {
			return err
		}
		if err := mg.expr(e.Right); err != nil {
			return err
		}
		isRef := isRefType(e.Left.exprType())
		var op bytecode.Op
		switch e.Op {
		case "<":
			op = bytecode.IfIcmplt
		case "<=":
			op = bytecode.IfIcmple
		case ">":
			op = bytecode.IfIcmpgt
		case ">=":
			op = bytecode.IfIcmpge
		case "==":
			op = bytecode.IfIcmpeq
			if isRef {
				op = bytecode.IfAcmpeq
			}
		case "!=":
			op = bytecode.IfIcmpne
			if isRef {
				op = bytecode.IfAcmpne
			}
		}
		trueL := mg.a.NewLabel()
		endL := mg.a.NewLabel()
		mg.a.Branch(op, trueL)
		mg.pop(2)
		mg.a.Op(bytecode.Iconst0)
		mg.a.Branch(bytecode.Goto, endL)
		mg.a.Bind(trueL)
		mg.a.Op(bytecode.Iconst1)
		mg.a.Bind(endL)
		mg.push(1)
		return nil
	default:
		if err := mg.expr(e.Left); err != nil {
			return err
		}
		if err := mg.expr(e.Right); err != nil {
			return err
		}
		var op bytecode.Op
		switch e.Op {
		case "+":
			op = bytecode.Iadd
		case "-":
			op = bytecode.Isub
		case "*":
			op = bytecode.Imul
		case "/":
			op = bytecode.Idiv
		case "%":
			op = bytecode.Irem
		default:
			return fmt.Errorf("unknown operator %s", e.Op)
		}
		mg.a.Op(op)
		mg.pop(1)
		return nil
	}
}
