package minijava

import "strconv"

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) atKw(kw string) bool   { return p.at(tokKeyword, kw) }
func (p *parser) atPunct(s string) bool { return p.at(tokPunct, s) }

func (p *parser) take() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectPunct(s string) (token, error) {
	if !p.atPunct(s) {
		return token{}, errf(p.cur().line, p.cur().col, "expected %q, found %s", s, p.cur())
	}
	return p.take(), nil
}

func (p *parser) expectKw(kw string) (token, error) {
	if !p.atKw(kw) {
		return token{}, errf(p.cur().line, p.cur().col, "expected %q, found %s", kw, p.cur())
	}
	return p.take(), nil
}

func (p *parser) expectIdent() (token, error) {
	if p.cur().kind != tokIdent {
		return token{}, errf(p.cur().line, p.cur().col, "expected identifier, found %s", p.cur())
	}
	return p.take(), nil
}

// Parse parses a MiniJava compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	if prog.Main, err = p.mainClass(); err != nil {
		return nil, err
	}
	for !p.at(tokEOF, "") {
		cd, err := p.classDecl()
		if err != nil {
			return nil, err
		}
		prog.Classes = append(prog.Classes, cd)
	}
	return prog, nil
}

func (p *parser) mainClass() (*MainClass, error) {
	start, err := p.expectKw("class")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for _, kw := range []string{"public", "static", "void", "main"} {
		if _, err := p.expectKw(kw); err != nil {
			return nil, err
		}
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if _, err := p.expectKw("String"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("["); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	arg, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var vars []*VarDecl
	for p.atKw("int") || p.atKw("boolean") ||
		(p.cur().kind == tokIdent && p.cur().text != "System" && p.peek().kind == tokIdent) {
		v, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		vars = append(vars, v)
	}
	var body []Stmt
	for !p.atPunct("}") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	if _, err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return &MainClass{pos: pos{start.line, start.col}, Name: name.text,
		ArgName: arg.text, Vars: vars, Body: body}, nil
}

func (p *parser) classDecl() (*ClassDecl, error) {
	start, err := p.expectKw("class")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cd := &ClassDecl{pos: pos{start.line, start.col}, Name: name.text}
	if p.atKw("extends") {
		p.take()
		super, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cd.Extends = super.text
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	// Fields until the first `public`.
	for !p.atPunct("}") && !p.atKw("public") {
		v, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		cd.Fields = append(cd.Fields, v)
	}
	for p.atKw("public") {
		m, err := p.methodDecl()
		if err != nil {
			return nil, err
		}
		cd.Methods = append(cd.Methods, m)
	}
	if _, err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return cd, nil
}

func (p *parser) typeExpr() (TypeExpr, error) {
	t := p.cur()
	switch {
	case p.atKw("int"):
		p.take()
		if p.atPunct("[") {
			p.take()
			if _, err := p.expectPunct("]"); err != nil {
				return TypeExpr{}, err
			}
			return TypeExpr{pos: pos{t.line, t.col}, Kind: tyIntArray}, nil
		}
		return TypeExpr{pos: pos{t.line, t.col}, Kind: tyInt}, nil
	case p.atKw("boolean"):
		p.take()
		return TypeExpr{pos: pos{t.line, t.col}, Kind: tyBool}, nil
	case t.kind == tokIdent:
		p.take()
		return TypeExpr{pos: pos{t.line, t.col}, Kind: tyClass, Class: t.text}, nil
	default:
		return TypeExpr{}, errf(t.line, t.col, "expected a type, found %s", t)
	}
}

func (p *parser) varDecl() (*VarDecl, error) {
	ty, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &VarDecl{pos: ty.pos, Type: ty, Name: name.text}, nil
}

func (p *parser) methodDecl() (*MethodDecl, error) {
	start, err := p.expectKw("public")
	if err != nil {
		return nil, err
	}
	ret, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &MethodDecl{pos: pos{start.line, start.col}, Ret: ret, Name: name.text}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.atPunct(")") {
		if len(m.Params) > 0 {
			if _, err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		ty, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		m.Params = append(m.Params, &VarDecl{pos: ty.pos, Type: ty, Name: pn.text})
	}
	p.take() // ')'
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	// Local declarations: `Type id ;` — distinguished from statements by
	// lookahead (type keyword, or ident ident).
	for {
		if p.atKw("int") || p.atKw("boolean") ||
			(p.cur().kind == tokIdent && p.peek().kind == tokIdent) {
			v, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			m.Vars = append(m.Vars, v)
			continue
		}
		break
	}
	for !p.atKw("return") {
		if p.at(tokEOF, "") || p.atPunct("}") {
			return nil, errf(p.cur().line, p.cur().col, "method %s must end with a return statement", m.Name)
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		m.Body = append(m.Body, s)
	}
	p.take() // return
	if m.Result, err = p.expression(); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return m, nil
}

func (p *parser) statement() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atPunct("{"):
		p.take()
		blk := &BlockStmt{pos: pos{t.line, t.col}}
		for !p.atPunct("}") {
			if p.at(tokEOF, "") {
				return nil, errf(t.line, t.col, "unterminated block")
			}
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, s)
		}
		p.take()
		return blk, nil
	case p.atKw("if"):
		p.take()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.statement()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{pos: pos{t.line, t.col}, Cond: cond, Then: then}
		if p.atKw("else") {
			p.take()
			if st.Else, err = p.statement(); err != nil {
				return nil, err
			}
		}
		return st, nil
	case p.atKw("while"):
		p.take()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{pos: pos{t.line, t.col}, Cond: cond, Body: body}, nil
	case t.kind == tokIdent && t.text == "System":
		// System.out.println(expr);
		p.take()
		if _, err := p.expectPunct("."); err != nil {
			return nil, err
		}
		out, err := p.expectIdent()
		if err != nil || out.text != "out" {
			return nil, errf(t.line, t.col, "expected System.out.println")
		}
		if _, err := p.expectPunct("."); err != nil {
			return nil, err
		}
		pr, err := p.expectIdent()
		if err != nil || pr.text != "println" {
			return nil, errf(t.line, t.col, "expected System.out.println")
		}
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		arg, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &PrintStmt{pos: pos{t.line, t.col}, Arg: arg}, nil
	case t.kind == tokIdent && p.peek().kind == tokPunct && p.peek().text == "=":
		p.take()
		p.take()
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{pos: pos{t.line, t.col}, Name: t.text, Value: val}, nil
	case t.kind == tokIdent && p.peek().kind == tokPunct && p.peek().text == "[":
		p.take()
		p.take()
		idx, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ArrayAssignStmt{pos: pos{t.line, t.col}, Name: t.text, Index: idx, Value: val}, nil
	default:
		return nil, errf(t.line, t.col, "expected a statement, found %s", t)
	}
}

// Expression precedence (low to high): && ||, comparisons, + -, * / %,
// unary !, postfix ([] .length .call), primary.

func (p *parser) expression() (Expr, error) { return p.andOr() }

func (p *parser) andOr() (Expr, error) {
	left, err := p.comparison()
	if err != nil {
		return nil, err
	}
	for p.atPunct("&&") || p.atPunct("||") {
		op := p.take()
		right, err := p.comparison()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{exprBase: exprBase{pos: pos{op.line, op.col}},
			Op: op.text, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) comparison() (Expr, error) {
	left, err := p.additive()
	if err != nil {
		return nil, err
	}
	for p.atPunct("<") || p.atPunct("<=") || p.atPunct(">") || p.atPunct(">=") ||
		p.atPunct("==") || p.atPunct("!=") {
		op := p.take()
		right, err := p.additive()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{exprBase: exprBase{pos: pos{op.line, op.col}},
			Op: op.text, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) additive() (Expr, error) {
	left, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.atPunct("+") || p.atPunct("-") {
		op := p.take()
		right, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{exprBase: exprBase{pos: pos{op.line, op.col}},
			Op: op.text, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) multiplicative() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") || p.atPunct("/") || p.atPunct("%") {
		op := p.take()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{exprBase: exprBase{pos: pos{op.line, op.col}},
			Op: op.text, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) unary() (Expr, error) {
	if p.atPunct("!") {
		t := p.take()
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{exprBase: exprBase{pos: pos{t.line, t.col}}, Operand: operand}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atPunct("["):
			t := p.take()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{exprBase: exprBase{pos: pos{t.line, t.col}}, Array: e, Index: idx}
		case p.atPunct("."):
			t := p.take()
			if p.atKw("length") {
				p.take()
				e = &LengthExpr{exprBase: exprBase{pos: pos{t.line, t.col}}, Array: e}
				continue
			}
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("("); err != nil {
				return nil, err
			}
			call := &CallExpr{exprBase: exprBase{pos: pos{t.line, t.col}}, Recv: e, Name: name.text}
			for !p.atPunct(")") {
				if len(call.Args) > 0 {
					if _, err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				arg, err := p.expression()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			p.take()
			e = call
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.take()
		v, err := strconv.ParseInt(t.text, 10, 32)
		if err != nil {
			return nil, errf(t.line, t.col, "integer %s out of range", t.text)
		}
		return &IntLit{exprBase: exprBase{pos: pos{t.line, t.col}}, Value: int32(v)}, nil
	case t.kind == tokString:
		p.take()
		return &StringLit{exprBase: exprBase{pos: pos{t.line, t.col}}, Value: t.text}, nil
	case p.atKw("true"), p.atKw("false"):
		p.take()
		return &BoolLit{exprBase: exprBase{pos: pos{t.line, t.col}}, Value: t.text == "true"}, nil
	case p.atKw("this"):
		p.take()
		return &ThisExpr{exprBase: exprBase{pos: pos{t.line, t.col}}}, nil
	case p.atKw("new"):
		p.take()
		if p.atKw("int") {
			p.take()
			if _, err := p.expectPunct("["); err != nil {
				return nil, err
			}
			length, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &NewArrayExpr{exprBase: exprBase{pos: pos{t.line, t.col}}, Len: length}, nil
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &NewObjectExpr{exprBase: exprBase{pos: pos{t.line, t.col}}, Class: name.text}, nil
	case t.kind == tokIdent:
		p.take()
		return &IdentExpr{exprBase: exprBase{pos: pos{t.line, t.col}}, Name: t.text}, nil
	case p.atPunct("("):
		p.take()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errf(t.line, t.col, "expected an expression, found %s", t)
	}
}
