package castore

import (
	"container/list"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// FsckReport summarizes one recovery sweep of the store directory.
type FsckReport struct {
	Objects        int   // sealed objects verified and indexed
	Bytes          int64 // their total on-disk bytes
	TempsRemoved   int   // orphaned put-*/probe-* scratch files deleted
	CorruptRemoved int   // valid-key files that failed digest verification, deleted
}

// Fsck is the thorough startup recovery pass: it sweeps every orphaned
// temp file regardless of age, reads and re-verifies every object
// against its sealed digest (catching truncation and bit rot that the
// Open shape check defers to first Get), deletes what fails, and
// rebuilds the LRU index from the survivors. After a process death at
// any point in Put, an Open followed by Fsck yields a store with zero
// orphan temps, zero corrupt objects, and every previously sealed
// object intact.
//
// Fsck assumes it is the directory's only writer — the single-daemon
// startup situation. Running it while another store instance is
// mid-Put on the same directory would sweep that write's temp file.
func (s *Store) Fsck() (FsckReport, error) {
	type found struct {
		entry
		mtime int64
	}
	var rep FsckReport
	var objs []found
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if !ValidKey(name) {
			// Exclusive ownership lets Fsck sweep even fresh temp files;
			// foreign junk stays untouched, as with Open.
			if isTempName(name) {
				if s.fs.Remove(path) == nil {
					rep.TempsRemoved++
				}
			}
			return nil
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			// An unreadable object cannot be served; drop it now rather
			// than surfacing I/O errors on every future Get.
			if s.fs.Remove(path) == nil {
				rep.CorruptRemoved++
			}
			return nil
		}
		if _, ok := unseal(name, raw); !ok {
			s.fs.Remove(path)
			rep.CorruptRemoved++
			return nil
		}
		var mtime int64
		if info, ierr := d.Info(); ierr == nil {
			mtime = info.ModTime().UnixNano()
		}
		objs = append(objs, found{entry{name, int64(len(raw))}, mtime})
		rep.Objects++
		rep.Bytes += int64(len(raw))
		return nil
	})
	if err != nil {
		return rep, err
	}
	// Oldest first, so the most recent survivor lands at the LRU front —
	// the same recency approximation Open uses.
	sort.Slice(objs, func(a, b int) bool { return objs[a].mtime < objs[b].mtime })
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index = make(map[string]*list.Element, len(objs))
	s.lru.Init()
	s.size = 0
	for i := range objs {
		e := objs[i].entry
		s.index[e.key] = s.lru.PushFront(&entry{e.key, e.size})
		s.size += e.size
	}
	s.evictLocked()
	return rep, nil
}
