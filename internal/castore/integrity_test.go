package castore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"classpack/internal/faultinject"
)

// damageObject rewrites the on-disk object for key with fault applied.
func damageObject(t *testing.T, dir, key string, fault faultinject.Fault) {
	t.Helper()
	path := filepath.Join(dir, key[:2], key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fault.Apply(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGetEvictsDamagedObject pins the self-healing contract: any byte
// damage to a stored object turns its next Get into a miss (never an
// error, never damaged bytes), the object is evicted from disk and
// index, and a fresh Put restores service.
func TestGetEvictsDamagedObject(t *testing.T) {
	data := bytes.Repeat([]byte("packed "), 100)
	faults := []faultinject.Fault{
		faultinject.BitFlip{Off: 10, Bit: 0},            // payload damage
		faultinject.BitFlip{Off: len(data) + 3, Bit: 7}, // hash damage
		faultinject.Truncate{Off: len(data) / 2},        // torn write
		faultinject.Truncate{Off: trailerSize - 1},      // shorter than a trailer
		faultinject.ZeroPage{Off: 0, Len: 64},           // lost page
		faultinject.DupBlock{Off: 0, Len: 32},           // replayed write
	}
	for _, fault := range faults {
		t.Run(fault.Name(), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			key := Key(data)
			if err := s.Put(key, data); err != nil {
				t.Fatal(err)
			}
			damageObject(t, dir, key, fault)
			got, ok, err := s.Get(key)
			if err != nil {
				t.Fatalf("Get of damaged object errored: %v", err)
			}
			if ok {
				t.Fatalf("Get served a damaged object (%d bytes)", len(got))
			}
			if s.Len() != 0 {
				t.Fatalf("damaged object still indexed: Len = %d", s.Len())
			}
			if _, err := os.Stat(filepath.Join(dir, key[:2], key)); !os.IsNotExist(err) {
				t.Fatalf("damaged object still on disk (stat err = %v)", err)
			}
			// The cache heals: the same key stores and serves again.
			if err := s.Put(key, data); err != nil {
				t.Fatal(err)
			}
			got, ok, err = s.Get(key)
			if err != nil || !ok || !bytes.Equal(got, data) {
				t.Fatalf("re-Put after eviction: ok=%v err=%v", ok, err)
			}
		})
	}
}

// TestRenamedObjectMisses pins that the key is bound into the trailer
// hash: a valid sealed object renamed to a different key — exactly what
// a name-trusting index rebuild would serve — fails verification.
func TestRenamedObjectMisses(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the real object")
	key := Key(data)
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	other := Key([]byte("a different input"))
	otherDir := filepath.Join(dir, other[:2])
	if err := os.MkdirAll(otherDir, 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, key[:2], key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(otherDir, other), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Reopen so the rebuild indexes the renamed file from its name alone.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened store indexed %d objects, want 2", s2.Len())
	}
	if _, ok, err := s2.Get(other); ok || err != nil {
		t.Fatalf("Get of renamed object: ok=%v err=%v, want a clean miss", ok, err)
	}
	if got, ok, _ := s2.Get(key); !ok || !bytes.Equal(got, data) {
		t.Fatal("original object no longer served")
	}
}

// TestOpenDropsStructurallyInvalidFiles pins that the rebuild does not
// index valid-key-named files that are not sealed objects (legacy
// trailer-less objects, truncated-below-trailer files) and removes them.
func TestOpenDropsStructurallyInvalidFiles(t *testing.T) {
	dir := t.TempDir()
	legacy := Key([]byte("legacy"))
	tiny := Key([]byte("tiny"))
	for key, content := range map[string][]byte{
		legacy: bytes.Repeat([]byte("no trailer here "), 10),
		tiny:   []byte("x"),
	} {
		if err := os.MkdirAll(filepath.Join(dir, key[:2]), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, key[:2], key), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("rebuild indexed %d structurally invalid files", s.Len())
	}
	for _, key := range []string{legacy, tiny} {
		if _, err := os.Stat(filepath.Join(dir, key[:2], key)); !os.IsNotExist(err) {
			t.Fatalf("invalid file %s not dropped (stat err = %v)", key[:8], err)
		}
	}
}

// TestSealUnsealRoundTrip covers the trailer helpers directly, including
// the empty payload.
func TestSealUnsealRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("p"), bytes.Repeat([]byte("xy"), 1000)} {
		key := Key(payload)
		got, ok := unseal(key, seal(key, payload))
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("seal/unseal round trip failed for %d-byte payload", len(payload))
		}
		if _, ok := unseal(Key([]byte("other")), seal(key, payload)); ok {
			t.Fatal("unseal accepted an object sealed for a different key")
		}
	}
}
