package castore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKeySectionBoundaries(t *testing.T) {
	if Key([]byte("ab"), []byte("c")) == Key([]byte("a"), []byte("bc")) {
		t.Fatal("section boundaries do not affect the key")
	}
	if Key([]byte("x")) != Key([]byte("x")) {
		t.Fatal("key is not deterministic")
	}
	if !ValidKey(Key([]byte("x"))) {
		t.Fatal("Key output is not a ValidKey")
	}
}

func TestValidKey(t *testing.T) {
	for _, bad := range []string{"", "ab", strings.Repeat("g", 64), strings.Repeat("A", 64), strings.Repeat("a", 63)} {
		if ValidKey(bad) {
			t.Errorf("ValidKey(%q) = true", bad)
		}
	}
	if !ValidKey(strings.Repeat("0a", 32)) {
		t.Error("valid key rejected")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("packed bytes")
	key := Key(data)
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get returned %q, want %q", got, data)
	}
	if _, ok, _ := s.Get(Key([]byte("absent"))); ok {
		t.Fatal("Get of absent key reported ok")
	}
	if want := int64(len(data) + trailerSize); s.Len() != 1 || s.Size() != want {
		t.Fatalf("Len/Size = %d/%d, want 1/%d", s.Len(), s.Size(), want)
	}
}

func TestPutRejectsInvalidKey(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("nothex", []byte("x")); err == nil {
		t.Fatal("invalid key accepted")
	}
}

func TestLRUEviction(t *testing.T) {
	// Cap sized (in sealed-object bytes) to hold two 10-byte payloads but
	// not three.
	s, err := Open(t.TempDir(), int64(2*(10+trailerSize))+5)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 3)
	for i := range keys {
		data := bytes.Repeat([]byte{byte('a' + i)}, 10)
		keys[i] = Key(data)
		if err := s.Put(keys[i], data); err != nil {
			t.Fatal(err)
		}
	}
	// Three objects exceed the cap: the oldest (keys[0]) must be gone.
	if _, ok, _ := s.Get(keys[0]); ok {
		t.Fatal("oldest object survived eviction")
	}
	for _, k := range keys[1:] {
		if _, ok, _ := s.Get(k); !ok {
			t.Fatalf("recent object %s evicted", k[:8])
		}
	}
	// Touch keys[1] so keys[2] becomes the eviction candidate.
	if _, _, err := s.Get(keys[1]); err != nil {
		t.Fatal(err)
	}
	d4 := bytes.Repeat([]byte{'z'}, 10)
	if err := s.Put(Key(d4), d4); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(keys[2]); ok {
		t.Fatal("LRU order ignored: untouched object survived over touched one")
	}
	if _, ok, _ := s.Get(keys[1]); !ok {
		t.Fatal("recently touched object evicted")
	}
}

func TestOversizeObjectIsKept(t *testing.T) {
	s, err := Open(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{'b'}, 50)
	if err := s.Put(Key(big), big); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(Key(big)); !ok {
		t.Fatal("object larger than the cap was evicted by its own Put")
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 3; i++ {
		data := []byte(fmt.Sprintf("object %d", i))
		k := Key(data)
		keys = append(keys, k)
		if err := s.Put(k, data); err != nil {
			t.Fatal(err)
		}
		// mtime granularity on some filesystems is coarse; space the
		// writes so reopen sees distinct recency.
		now := time.Now()
		os.Chtimes(filepath.Join(dir, k[:2], k), now, now.Add(time.Duration(i)*time.Second))
	}
	// A stray temp file must not be indexed.
	if err := os.WriteFile(filepath.Join(dir, keys[0][:2], "put-stray"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("reopened store has %d objects, want 3", s2.Len())
	}
	for i, k := range keys {
		got, ok, err := s2.Get(k)
		if err != nil || !ok {
			t.Fatalf("reopened Get(%s): ok=%v err=%v", k[:8], ok, err)
		}
		if want := fmt.Sprintf("object %d", i); string(got) != want {
			t.Fatalf("reopened Get(%s) = %q, want %q", k[:8], got, want)
		}
	}

	// Reopen with a cap that forces eviction of the two oldest.
	s3, err := Open(dir, int64(len("object 0")))
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 1 {
		t.Fatalf("capped reopen kept %d objects, want 1", s3.Len())
	}
	if _, ok, _ := s3.Get(keys[2]); !ok {
		t.Fatal("capped reopen evicted the most recent object")
	}
}

func TestGetAfterExternalDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("doomed")
	k := Key(data)
	if err := s.Put(k, data); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, k[:2], k)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(k); ok || err != nil {
		t.Fatalf("Get of externally deleted object: ok=%v err=%v", ok, err)
	}
	if s.Len() != 0 {
		t.Fatalf("index still holds %d entries after external delete", s.Len())
	}
}

func TestNoPartialObjectsVisible(t *testing.T) {
	// Every file under the store directory with a valid-key name must be
	// a complete object: Put writes to a temp name and renames.
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{'p'}, 1<<16)
	k := Key(data)
	if err := s.Put(k, data); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, k[:2], k))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data)+trailerSize {
		t.Fatalf("on-disk object is %d bytes, want %d payload + %d trailer",
			len(got), len(data), trailerSize)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				data := []byte(fmt.Sprintf("worker %d item %d", g, i%5))
				k := Key(data)
				if err := s.Put(k, data); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := s.Get(k)
				if err != nil {
					t.Error(err)
					return
				}
				if ok && !bytes.Equal(got, data) {
					t.Errorf("corrupt read: %q", got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
