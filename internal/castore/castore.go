// Package castore implements the content-addressed on-disk cache behind
// jpackd: packed archives keyed by the SHA-256 of their input (plus the
// pack-option fingerprint), stored one file per object under a two-level
// fan-out directory, with an LRU byte cap.
//
// Writes are crash-safe: each object lands in a temp file in its final
// directory, is fsynced, and is renamed into place with a directory
// fsync after the rename, so a reader never observes a partially
// written object and a completed Put survives power loss. The
// in-memory index is rebuilt from the directory on Open (recency
// approximated by mtime), so the cache survives daemon restarts; Open
// also sweeps orphaned temp files older than a staleness bound, and
// Fsck performs the thorough startup recovery: every temp file removed,
// every object re-verified against its sealed digest, index rebuilt.
//
// The store is self-healing: every object carries an integrity trailer
// (SHA-256 over key and payload plus a magic), Get verifies it on every
// read and turns damage into an eviction plus a cache miss, and the Open
// rebuild never trusts file names — structurally invalid files are
// dropped immediately and renamed or bit-rotted objects fail the hash on
// first Get. A corrupted cache therefore costs a re-encode, never a
// wrong answer.
package castore

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"classpack/internal/vfs"
)

// FS and File alias the internal/vfs interfaces so callers configure
// fault-injecting filesystems through the castore API without importing
// vfs themselves.
type (
	FS   = vfs.FS
	File = vfs.File
)

// OSFS returns the real-filesystem implementation of FS.
func OSFS() FS { return vfs.OS() }

// Object files are payload ‖ sha256(key ‖ payload) ‖ trailerMagic.
// Binding the key into the hash means a file renamed to another key —
// the failure the rebuild-from-directory path would otherwise trust —
// fails verification just like flipped payload bits.
const trailerMagic = "CAS1"

// trailerSize is the on-disk overhead of the integrity trailer.
const trailerSize = sha256.Size + len(trailerMagic)

// seal appends the integrity trailer for key to payload.
func seal(key string, payload []byte) []byte {
	h := sha256.New()
	io.WriteString(h, key)
	h.Write(payload)
	out := make([]byte, 0, len(payload)+trailerSize)
	out = append(out, payload...)
	out = append(out, h.Sum(nil)...)
	return append(out, trailerMagic...)
}

// unseal verifies raw as a sealed object for key and returns its
// payload. ok is false on any mismatch: too short, wrong magic, or a
// hash that does not match the key and payload.
func unseal(key string, raw []byte) (payload []byte, ok bool) {
	if len(raw) < trailerSize || string(raw[len(raw)-len(trailerMagic):]) != trailerMagic {
		return nil, false
	}
	payload = raw[:len(raw)-trailerSize]
	want := raw[len(payload) : len(payload)+sha256.Size]
	h := sha256.New()
	io.WriteString(h, key)
	h.Write(payload)
	if !bytes.Equal(h.Sum(nil), want) {
		return nil, false
	}
	return payload, true
}

// sealedShape reports whether the file at path is structurally a sealed
// object: big enough for a trailer and ending in the magic. The hash is
// deliberately not checked here — Open calls this for every file, and
// the full verification happens lazily on first Get, which catches what
// a shape check cannot (bit rot, renamed objects).
func sealedShape(path string, size int64) bool {
	if size < int64(trailerSize) {
		return false
	}
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [len(trailerMagic)]byte
	if _, err := f.ReadAt(magic[:], size-int64(len(trailerMagic))); err != nil {
		return false
	}
	return string(magic[:]) == trailerMagic
}

// Key returns the store key for the given byte sections: the hex SHA-256
// of their concatenation, each section prefixed by its length so that
// section boundaries are unambiguous ("ab"+"c" never collides with
// "a"+"bc").
func Key(sections ...[]byte) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, s := range sections {
		n := len(s)
		for i := 7; i >= 0; i-- {
			lenBuf[i] = byte(n)
			n >>= 8
		}
		h.Write(lenBuf[:])
		h.Write(s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ValidKey reports whether k is a well-formed store key (64 lowercase
// hex digits). Handlers use it to reject malformed digests before
// touching the filesystem.
func ValidKey(k string) bool {
	if len(k) != 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// staleTempAge bounds how old an orphaned temp file must be before the
// Open scan deletes it. The bound exists because Open may race another
// store instance sharing the directory whose Put is mid-flight; a temp
// file this old belongs to no live write. Fsck, which asserts exclusive
// ownership, removes temp files regardless of age.
const staleTempAge = time.Hour

// isTempName reports whether name is one of the store's own scratch
// files: Put temp files ("put-*") and write probes ("probe-*").
func isTempName(name string) bool {
	return strings.HasPrefix(name, "put-") || strings.HasPrefix(name, "probe-")
}

type entry struct {
	key  string
	size int64
}

// Store is a size-capped content-addressed object cache. All methods are
// safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64
	fs       FS

	mu    sync.Mutex
	index map[string]*list.Element // key -> element whose Value is *entry
	lru   *list.List               // front = most recently used
	size  int64
}

// Open creates (if needed) and indexes a store rooted at dir. maxBytes
// caps the total object bytes; 0 or negative means unlimited. Existing
// objects are re-indexed with recency approximated by file mtime, so a
// reopened cache evicts in roughly the same order it would have before
// the restart. Orphaned temp files older than staleTempAge — debris of
// a write interrupted long ago — are deleted during the scan.
func Open(dir string, maxBytes int64) (*Store, error) {
	return OpenFS(dir, maxBytes, OSFS())
}

// OpenFS is Open with an explicit filesystem for the store's write
// path, the seam the fault drills script crash points and disk faults
// through. Production callers use Open.
func OpenFS(dir string, maxBytes int64, fsys FS) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		fs:       fsys,
		index:    make(map[string]*list.Element),
		lru:      list.New(),
	}
	type found struct {
		entry
		mtime int64
	}
	var objs []found
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		key := d.Name()
		if !ValidKey(key) {
			if isTempName(key) {
				if info, ierr := d.Info(); ierr == nil && time.Since(info.ModTime()) > staleTempAge {
					s.fs.Remove(path)
				}
			}
			return nil // fresh temp file or foreign junk; leave it alone
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent delete
		}
		// A valid-key name proves nothing about the content: drop files
		// that are not even shaped like sealed objects (truncated writes,
		// pre-trailer legacy objects) instead of indexing them. Hash
		// verification happens on first Get.
		if !sealedShape(path, info.Size()) {
			s.fs.Remove(path)
			return nil
		}
		objs = append(objs, found{entry{key, info.Size()}, info.ModTime().UnixNano()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Oldest first, so the most recent object ends up at the LRU front.
	sort.Slice(objs, func(a, b int) bool { return objs[a].mtime < objs[b].mtime })
	for i := range objs {
		e := objs[i].entry
		s.index[e.key] = s.lru.PushFront(&entry{e.key, e.size})
		s.size += e.size
	}
	s.evictLocked()
	return s, nil
}

// path returns the object path: dir/ab/abcdef... The two-character
// fan-out keeps directories small for large caches.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Put stores data under key, overwriting any existing object, and evicts
// least-recently-used objects if the cap is exceeded. The newly written
// object is never evicted by its own Put, even when it alone exceeds the
// cap — the caller already has the bytes, and serving them is the point.
// The object is written with an integrity trailer that Get verifies.
//
// The write is durable as well as atomic: the temp file is fsynced
// before the rename (so the rename can never expose an empty or partial
// object after power loss) and the containing directory is fsynced
// after it (so the rename itself survives a crash). A process death at
// any point loses at most this one object, never a previously sealed
// one.
func (s *Store) Put(key string, data []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("castore: invalid key %q", key)
	}
	objDir := filepath.Join(s.dir, key[:2])
	if err := s.fs.MkdirAll(objDir, 0o755); err != nil {
		return err
	}
	sealed := seal(key, data)
	// Temp file in the final directory so the rename is atomic (same
	// filesystem) and a crash leaves only a "put-*" file that Open and
	// Fsck sweep.
	tmp, err := s.fs.CreateTemp(objDir, "put-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(sealed); err != nil {
		tmp.Close()
		s.fs.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		s.fs.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		s.fs.Remove(tmpName)
		return err
	}
	if err := s.fs.Chmod(tmpName, 0o644); err != nil {
		s.fs.Remove(tmpName)
		return err
	}
	if err := s.fs.Rename(tmpName, s.path(key)); err != nil {
		s.fs.Remove(tmpName)
		return err
	}
	if err := s.fs.SyncDir(objDir); err != nil {
		// The object is in place and readable, but its durability is
		// uncertain; report the fault without indexing it. The file stays
		// on disk — a later Open or Fsck indexes it if it survived.
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok {
		s.size -= el.Value.(*entry).size
		s.lru.Remove(el)
	}
	s.index[key] = s.lru.PushFront(&entry{key, int64(len(sealed))})
	s.size += int64(len(sealed))
	s.evictLocked()
	return nil
}

// Get returns the object stored under key and marks it most recently
// used. ok is false when the key is absent (or its file vanished out
// from under the index, in which case the index entry is dropped).
// Every read verifies the object's integrity trailer; a mismatch —
// flipped bits, truncation, a file renamed under a different key —
// evicts the object and reports a plain miss, so callers simply
// re-encode instead of serving damaged bytes.
func (s *Store) Get(key string) (data []byte, ok bool, err error) {
	s.mu.Lock()
	el, found := s.index[key]
	if found {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !found {
		return nil, false, nil
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			s.forget(key)
			return nil, false, nil
		}
		return nil, false, err
	}
	payload, ok := unseal(key, raw)
	if !ok {
		s.fs.Remove(s.path(key))
		s.forget(key)
		return nil, false, nil
	}
	return payload, true, nil
}

// Probe checks that the store's volume currently accepts durable
// writes: it creates, writes, fsyncs, and removes a scratch file in the
// store root. The degraded-mode recovery loop in jpackd calls it to
// decide when a full or failing disk has come back.
func (s *Store) Probe() error {
	f, err := s.fs.CreateTemp(s.dir, "probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	_, werr := f.Write([]byte("castore write probe"))
	serr := f.Sync()
	cerr := f.Close()
	rerr := s.fs.Remove(name)
	for _, err := range []error{werr, serr, cerr, rerr} {
		if err != nil {
			return err
		}
	}
	return nil
}

// forget drops a key from the index without touching the filesystem
// (used when the backing file was deleted externally).
func (s *Store) forget(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok {
		s.size -= el.Value.(*entry).size
		s.lru.Remove(el)
		delete(s.index, key)
	}
}

// evictLocked removes least-recently-used objects until the store fits
// the cap, always leaving at least one (the most recent) object.
// s.mu must be held.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.size > s.maxBytes && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.index, e.key)
		s.size -= e.size
		s.fs.Remove(s.path(e.key))
	}
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len reports the number of cached objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Size reports the total bytes of cached objects.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}
