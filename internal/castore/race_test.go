package castore

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestSeededConcurrentPutGetEvict hammers one capped store from many
// goroutines with a seeded workload — Puts, Gets, and cap-driven
// evictions interleaving — under the race detector (this file rides the
// `make verify` race pass). Every Get must return either a miss or the
// exact payload for its key, and a post-storm Fsck must find zero
// corrupt objects.
func TestSeededConcurrentPutGetEvict(t *testing.T) {
	const (
		workers  = 8
		opsEach  = 300
		keyPool  = 24
		capBytes = 4 << 10 // small enough that eviction churns constantly
	)
	st, err := Open(t.TempDir(), capBytes)
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic payload per key, so any Get can be verified.
	keys := make([]string, keyPool)
	payloads := make([][]byte, keyPool)
	for i := range keys {
		payloads[i] = bytes.Repeat([]byte{byte(i)}, 64+i*16)
		keys[i] = Key(payloads[i])
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < opsEach; op++ {
				i := rng.Intn(keyPool)
				if rng.Intn(2) == 0 {
					if err := st.Put(keys[i], payloads[i]); err != nil {
						t.Errorf("Put %s: %v", keys[i][:8], err)
						return
					}
				} else {
					got, ok, err := st.Get(keys[i])
					if err != nil {
						t.Errorf("Get %s: %v", keys[i][:8], err)
						return
					}
					if ok && !bytes.Equal(got, payloads[i]) {
						t.Errorf("Get %s returned wrong payload", keys[i][:8])
						return
					}
				}
			}
		}(int64(0x5eed + w))
	}
	wg.Wait()

	if st.Size() > capBytes {
		// The only allowed overshoot is a single oversize object, and
		// every payload here is far below the cap.
		t.Errorf("store size %d exceeds cap %d after storm", st.Size(), capBytes)
	}
	rep, err := st.Fsck()
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if rep.CorruptRemoved != 0 {
		t.Errorf("Fsck found %d corrupt objects after concurrent storm", rep.CorruptRemoved)
	}
}
