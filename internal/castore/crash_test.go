package castore

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"classpack/internal/faultinject"
)

// listTemps walks dir and returns every scratch-named file still on disk.
func listTemps(t *testing.T, dir string) []string {
	t.Helper()
	var temps []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if isTempName(d.Name()) {
			temps = append(temps, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", dir, err)
	}
	return temps
}

// TestCrashDrillEveryWritePoint is the crash matrix of the fault drills:
// simulate a kill -9 at every filesystem operation of one Put, restart
// the store, run Fsck, and require full recovery — zero orphan temps,
// zero corrupt objects, every previously sealed object byte-identical,
// and the in-flight object either absent or intact. The crash points are
// enumerated from a dry-run operation trace, so a reshaped write path
// grows new drill points automatically instead of silently escaping the
// matrix.
func TestCrashDrillEveryWritePoint(t *testing.T) {
	// Dry run: trace the op sequence of one clean Put.
	dryFS := faultinject.NewCrashFS()
	dryStore, err := OpenFS(t.TempDir(), 0, dryFS)
	if err != nil {
		t.Fatalf("dry-run OpenFS: %v", err)
	}
	dryFS.ResetTrace() // drop OpenFS's own mkdir; keep only Put's ops
	dryKey := Key([]byte("dry"))
	if err := dryStore.Put(dryKey, []byte("dry payload")); err != nil {
		t.Fatalf("dry-run Put: %v", err)
	}
	trace := dryFS.Trace()
	if len(trace) < 6 {
		t.Fatalf("dry-run trace %v suspiciously short; the drill would be vacuous", trace)
	}

	// Crash points: each (op, nth-occurrence) position in the trace.
	type point struct {
		op string
		n  int
	}
	var points []point
	seen := map[string]int{}
	for _, op := range trace {
		seen[op]++
		points = append(points, point{op, seen[op]})
	}

	seeds := map[string][]byte{}
	for i := 0; i < 3; i++ {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		seeds[Key([]byte{byte(i)})] = payload
	}
	inKey := Key([]byte("in-flight"))
	inPayload := bytes.Repeat([]byte("x"), 333)

	for _, pt := range points {
		t.Run(fmt.Sprintf("%s-%d", pt.op, pt.n), func(t *testing.T) {
			dir := t.TempDir()
			seeded, err := Open(dir, 0)
			if err != nil {
				t.Fatalf("seed Open: %v", err)
			}
			for k, v := range seeds {
				if err := seeded.Put(k, v); err != nil {
					t.Fatalf("seed Put: %v", err)
				}
			}

			cfs := faultinject.NewCrashFS()
			st, err := OpenFS(dir, 0, cfs)
			if err != nil {
				t.Fatalf("OpenFS: %v", err)
			}
			cfs.CrashAt(pt.op, pt.n) // after OpenFS: only Put's ops count
			if err := st.Put(inKey, inPayload); err == nil {
				t.Fatalf("Put survived a crash at %s #%d", pt.op, pt.n)
			}

			// Restart: a fresh store over the real filesystem, then the
			// thorough recovery pass.
			re, err := Open(dir, 0)
			if err != nil {
				t.Fatalf("restart Open: %v", err)
			}
			rep, err := re.Fsck()
			if err != nil {
				t.Fatalf("Fsck: %v", err)
			}
			if temps := listTemps(t, dir); len(temps) != 0 {
				t.Errorf("orphan temp files survived recovery: %v", temps)
			}
			if rep.CorruptRemoved != 0 {
				t.Errorf("Fsck removed %d corrupt objects; a crashed Put must never corrupt a sealed object", rep.CorruptRemoved)
			}
			for k, want := range seeds {
				got, ok, err := re.Get(k)
				if err != nil || !ok {
					t.Fatalf("seeded object %s lost after crash at %s #%d (ok=%v err=%v)", k[:8], pt.op, pt.n, ok, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("seeded object %s not byte-identical after recovery", k[:8])
				}
			}
			// The in-flight object may be lost (crash before rename) or
			// fully present (crash at/after the directory sync) — never
			// torn.
			if got, ok, err := re.Get(inKey); err != nil {
				t.Errorf("in-flight Get: %v", err)
			} else if ok && !bytes.Equal(got, inPayload) {
				t.Error("in-flight object present but not byte-identical")
			}
		})
	}
}

// TestFsckSweepsTempsAndCorruptObjects pins Fsck's sweep policy: all
// scratch files go regardless of age, shape-valid objects with bad
// digests go, good objects and foreign junk stay.
func TestFsckSweepsTempsAndCorruptObjects(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	goodKey := Key([]byte("good"))
	if err := st.Put(goodKey, []byte("good payload")); err != nil {
		t.Fatal(err)
	}
	// A fresh temp file: Open would spare it, Fsck must not.
	tempPath := filepath.Join(dir, goodKey[:2], "put-123456")
	if err := os.WriteFile(tempPath, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A shape-valid object (right length, right magic) whose digest is
	// wrong — what Open defers to first Get, Fsck catches eagerly.
	badKey := Key([]byte("bad"))
	badRaw := append(bytes.Repeat([]byte("z"), 10+trailerSize-len(trailerMagic)), trailerMagic...)
	if err := os.MkdirAll(filepath.Join(dir, badKey[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, badKey[:2], badKey), badRaw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Foreign junk is not the store's to delete.
	junk := filepath.Join(dir, "README")
	if err := os.WriteFile(junk, []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := st.Fsck()
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if rep.TempsRemoved != 1 || rep.CorruptRemoved != 1 || rep.Objects != 1 {
		t.Fatalf("report = %+v, want 1 temp removed, 1 corrupt removed, 1 object", rep)
	}
	if _, err := os.Stat(tempPath); !os.IsNotExist(err) {
		t.Error("temp file survived Fsck")
	}
	if _, err := os.Stat(junk); err != nil {
		t.Error("foreign junk deleted by Fsck")
	}
	if got, ok, err := st.Get(goodKey); err != nil || !ok || !bytes.Equal(got, []byte("good payload")) {
		t.Errorf("good object damaged by Fsck (ok=%v err=%v)", ok, err)
	}
	if st.Len() != 1 {
		t.Errorf("index has %d entries after rebuild, want 1", st.Len())
	}
}

// TestOpenSweepsOnlyStaleTemps pins Open's conservative sweep: old
// orphans go, fresh temp files (possibly another instance's live write)
// stay.
func TestOpenSweepsOnlyStaleTemps(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(sub, "put-stale")
	fresh := filepath.Join(sub, "put-fresh")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("tmp"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 0); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp deleted by Open — could be another instance's live write")
	}
}

// TestPutDiskFullLeavesNoDebris: an ENOSPC Put fails cleanly — error
// surfaced, temp file removed (a full disk can still unlink), store
// still serving its existing objects.
func TestPutDiskFullLeavesNoDebris(t *testing.T) {
	dir := t.TempDir()
	cfs := faultinject.NewCrashFS()
	st, err := OpenFS(dir, 0, cfs)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("seed"))
	if err := st.Put(key, []byte("seed payload")); err != nil {
		t.Fatal(err)
	}
	cfs.SetWriteError(syscall.ENOSPC)
	if err := st.Put(Key([]byte("new")), []byte("does not fit")); err != syscall.ENOSPC {
		t.Fatalf("Put on full disk: err = %v, want ENOSPC", err)
	}
	if temps := listTemps(t, dir); len(temps) != 0 {
		t.Errorf("ENOSPC Put left debris: %v", temps)
	}
	if err := st.Probe(); err != syscall.ENOSPC {
		t.Fatalf("Probe on full disk: err = %v, want ENOSPC", err)
	}
	cfs.SetWriteError(nil)
	if err := st.Probe(); err != nil {
		t.Fatalf("Probe after recovery: %v", err)
	}
	if got, ok, err := st.Get(key); err != nil || !ok || !bytes.Equal(got, []byte("seed payload")) {
		t.Errorf("existing object unreadable during/after disk-full (ok=%v err=%v)", ok, err)
	}
}
