// Package refs implements the reference-encoding schemes of §5.1 of the
// paper. Every scheme turns a sequence of reference events (object keys,
// optionally with a stack-state context) into a byte stream that the
// caller compresses with DEFLATE.
//
// Schemes marked decodable drive the real pack format; Freq and Cache
// assign ids from global frequencies and are measurement-only competitors,
// exactly as in the paper, where the cost of transmitting their dictionary
// is likewise ignored (§5).
package refs

import (
	"fmt"
	"sort"

	"classpack/internal/corrupt"
	"classpack/internal/encoding/varint"
	"classpack/internal/mtf"
)

// badRef reports an out-of-range reference decoded from a corrupt
// stream. The caller (core) knows which wire stream was being read;
// here only the codec-level cause is known.
func badRef(format string, args ...any) error {
	return corrupt.Errorf("refs", -1, format, args...)
}

// Scheme selects one of the §5.1 variants.
type Scheme int

// The §5.1 scheme family, in the paper's order (Table 3 columns).
const (
	// Simple: fixed sequential ids, two bytes each, merged pools.
	Simple Scheme = iota
	// Basic: fixed sequential ids, compact encoding.
	Basic
	// Freq: ids by global frequency; singletons share one id.
	Freq
	// Cache: Freq behind a 16-element move-to-front cache per context.
	Cache
	// MTFBasic: plain move-to-front queue per pool.
	MTFBasic
	// MTFTransients: move-to-front, singletons bypass the queue.
	MTFTransients
	// MTFContext: move-to-front with per-context queues.
	MTFContext
	// MTFFull: transients and context combined (the shipping scheme).
	MTFFull
)

// String returns the scheme's Table 3 column label.
func (s Scheme) String() string {
	switch s {
	case Simple:
		return "Simple"
	case Basic:
		return "Basic"
	case Freq:
		return "Freq"
	case Cache:
		return "Cache"
	case MTFBasic:
		return "MTF Basic"
	case MTFTransients:
		return "MTF Transients"
	case MTFContext:
		return "MTF Context"
	case MTFFull:
		return "MTF Trans+Ctx"
	}
	return "unknown"
}

// Decodable reports whether the scheme has a decoder (Freq and Cache are
// measurement-only).
func (s Scheme) Decodable() bool { return s != Freq && s != Cache }

// Event is one reference occurrence.
type Event struct {
	Ctx int    // stack-state context (used by Cache, MTFContext, MTFFull)
	Key string // canonical identity of the referenced object
}

// Encoder encodes a stream of events for one pool.
type Encoder interface {
	// Encode appends the coding of ev to buf and reports whether this is
	// the object's first (definition-carrying) occurrence.
	Encode(buf []byte, ev Event) (out []byte, isNew bool)
}

// Decoder mirrors an Encoder. After Decode reports isNew, the caller
// reconstructs the key from the definition stream and calls Define with
// the same transient flag.
type Decoder interface {
	Decode(r varint.ByteReader, ctx int) (key string, isNew, transient bool, err error)
	Define(ctx int, key string, transient bool)
}

// Preloadable is implemented by every decodable codec: Preload seeds the
// pool with an object treated as already seen, implementing the paper's
// §14 "standard set of preloaded references" extension. Encoder and
// decoder must preload identical keys in identical order.
type Preloadable interface {
	Preload(key string)
}

// NewEncoder builds an encoder. counts must map every key to its total
// occurrence count for Freq, Cache, MTFTransients and MTFFull; other
// schemes ignore it.
func NewEncoder(s Scheme, counts map[string]int) Encoder {
	switch s {
	case Simple:
		return &simpleEnc{ids: map[string]int{}}
	case Basic:
		return &basicEnc{ids: map[string]int{}}
	case Freq:
		return newFreqEnc(counts)
	case Cache:
		return &cacheEnc{freq: newFreqEnc(counts), caches: map[int]*mtf.Naive[string]{}}
	case MTFBasic:
		return &mtfEnc{q: mtf.New[string]()}
	case MTFTransients:
		return &mtfEnc{q: mtf.New[string](), counts: counts, transients: true}
	case MTFContext:
		return &ctxCodec{counts: nil, queues: map[int]*mtf.Queue[string]{}, seen: map[string]bool{}}
	case MTFFull:
		return &ctxCodec{counts: counts, queues: map[int]*mtf.Queue[string]{}, seen: map[string]bool{}}
	}
	//classpack:vet-allow nopanic scheme tags are internal constants on the encode side; decoders use NewDecoder, which reports unknown schemes as ok=false
	panic(fmt.Sprintf("refs: unknown scheme %d", s))
}

// NewDecoder builds the decoder for a decodable scheme; ok is false
// otherwise.
func NewDecoder(s Scheme) (Decoder, bool) {
	switch s {
	case Simple:
		return &simpleDec{}, true
	case Basic:
		return &basicDec{}, true
	case MTFBasic:
		return &mtfDec{q: mtf.New[string]()}, true
	case MTFTransients:
		return &mtfDec{q: mtf.New[string](), transients: true}, true
	case MTFContext:
		return &ctxCodec{queues: map[int]*mtf.Queue[string]{}, seen: map[string]bool{}}, true
	case MTFFull:
		return &ctxCodec{counts: map[string]int{}, transientDec: true, queues: map[int]*mtf.Queue[string]{}, seen: map[string]bool{}}, true
	default:
		return nil, false
	}
}

// ---- Simple ----

type simpleEnc struct {
	ids map[string]int
}

func appendU16Escape(buf []byte, id int) []byte {
	// Two bytes as the paper prescribes; ids past 0xfffe take an escape so
	// huge pools stay encodable.
	if id < 0xffff {
		return append(buf, byte(id>>8), byte(id))
	}
	buf = append(buf, 0xff, 0xff)
	return varint.AppendUint(buf, uint64(id-0xffff))
}

func readU16Escape(r varint.ByteReader) (int, error) {
	hi, err := r.ReadByte()
	if err != nil {
		return 0, err
	}
	lo, err := r.ReadByte()
	if err != nil {
		return 0, err
	}
	id := int(hi)<<8 | int(lo)
	if id == 0xffff {
		extra, err := varint.ReadUint(r)
		if err != nil {
			return 0, err
		}
		// Keep the id in int range: a corrupt escape must not overflow
		// into a negative index.
		if extra > 1<<31 {
			return 0, badRef("escaped id offset %d out of range", extra)
		}
		id += int(extra)
	}
	return id, nil
}

func (e *simpleEnc) Encode(buf []byte, ev Event) ([]byte, bool) {
	if id, ok := e.ids[ev.Key]; ok {
		return appendU16Escape(buf, id), false
	}
	id := len(e.ids)
	e.ids[ev.Key] = id
	return appendU16Escape(buf, id), true
}

type simpleDec struct {
	keys []string
}

func (d *simpleDec) Decode(r varint.ByteReader, ctx int) (string, bool, bool, error) {
	id, err := readU16Escape(r)
	if err != nil {
		return "", false, false, err
	}
	if id == len(d.keys) {
		return "", true, false, nil
	}
	if id < 0 || id > len(d.keys) {
		return "", false, false, badRef("simple id %d ahead of pool size %d", id, len(d.keys))
	}
	return d.keys[id], false, false, nil
}

func (d *simpleDec) Define(ctx int, key string, transient bool) {
	d.keys = append(d.keys, key)
}

// ---- Basic ----

type basicEnc struct {
	ids map[string]int
}

// appendBounded writes v drawn from [0, n) with the §6 range coding when
// the range is small enough, or a varint otherwise.
func appendBounded(buf []byte, v, n int) []byte {
	if n <= 1<<16 {
		return varint.NewBounded(n).Append(buf, v)
	}
	return varint.AppendUint(buf, uint64(v))
}

func readBounded(r varint.ByteReader, n int) (int, error) {
	if n <= 1<<16 {
		c := varint.NewBounded(n)
		b0, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		// A second byte follows only when the lead byte is reserved; probe
		// with a zero continuation to learn the width.
		if v, used, err := c.Decode([]byte{b0, 0}); err == nil && used == 1 {
			return v, nil
		}
		b1, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		v, _, err := c.Decode([]byte{b0, b1})
		return v, err
	}
	v, err := varint.ReadUint(r)
	return int(v), err
}

func (e *basicEnc) Encode(buf []byte, ev Event) ([]byte, bool) {
	n := len(e.ids) + 1 // ids 0..len-1, len means "new"
	if id, ok := e.ids[ev.Key]; ok {
		return appendBounded(buf, id, n), false
	}
	e.ids[ev.Key] = len(e.ids)
	return appendBounded(buf, n-1, n), true
}

type basicDec struct {
	keys []string
}

func (d *basicDec) Decode(r varint.ByteReader, ctx int) (string, bool, bool, error) {
	n := len(d.keys) + 1
	id, err := readBounded(r, n)
	if err != nil {
		return "", false, false, err
	}
	if id == len(d.keys) {
		return "", true, false, nil
	}
	// id can be negative when a corrupt varint overflowed int in
	// readBounded; both directions are out of range.
	if id < 0 || id > len(d.keys) {
		return "", false, false, badRef("basic id %d out of range", id)
	}
	return d.keys[id], false, false, nil
}

func (d *basicDec) Define(ctx int, key string, transient bool) {
	d.keys = append(d.keys, key)
}

// ---- Freq ----

type freqEnc struct {
	rank map[string]int // 0 = shared singleton id, else 1-based rank
}

func newFreqEnc(counts map[string]int) *freqEnc {
	type kc struct {
		key   string
		count int
	}
	var all []kc
	for k, c := range counts {
		if c > 1 {
			all = append(all, kc{k, c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].key < all[j].key
	})
	rank := make(map[string]int, len(all))
	for i, e := range all {
		rank[e.key] = i + 1
	}
	return &freqEnc{rank: rank}
}

func (e *freqEnc) Encode(buf []byte, ev Event) ([]byte, bool) {
	// First-occurrence tracking still matters for the definition stream,
	// but the index itself is the fixed frequency rank (0 for singletons).
	return varint.AppendUint(buf, uint64(e.rank[ev.Key])), false
}

// ---- Cache ----

type cacheEnc struct {
	freq   *freqEnc
	caches map[int]*mtf.Naive[string]
}

const cacheSize = 16

func (e *cacheEnc) Encode(buf []byte, ev Event) ([]byte, bool) {
	c := e.caches[ev.Ctx]
	if c == nil {
		c = mtf.NewNaive[string]()
		e.caches[ev.Ctx] = c
	}
	if pos, ok := c.Use(ev.Key); ok {
		if pos <= cacheSize {
			return varint.AppendUint(buf, uint64(pos)), false
		}
	} else {
		c.PushFront(ev.Key)
	}
	return varint.AppendUint(buf, uint64(cacheSize+1+e.freq.rank[ev.Key])), false
}

// ---- MTF Basic / Transients ----

type mtfEnc struct {
	q          *mtf.Queue[string]
	counts     map[string]int
	transients bool
	seen       map[string]bool
}

func (e *mtfEnc) Encode(buf []byte, ev Event) ([]byte, bool) {
	if e.transients {
		if pos, ok := e.q.Use(ev.Key); ok {
			return varint.AppendUint(buf, uint64(pos)+1), false
		}
		if e.seen == nil {
			e.seen = map[string]bool{}
		}
		if e.seen[ev.Key] {
			// A transient repeated: should not happen when counts are
			// accurate; re-emit as a fresh transient to stay decodable.
			return append(buf, 0), true
		}
		e.seen[ev.Key] = true
		if e.counts[ev.Key] == 1 {
			return append(buf, 0), true // transient, bypasses the queue
		}
		e.q.PushFront(ev.Key)
		return append(buf, 1), true
	}
	if pos, ok := e.q.Use(ev.Key); ok {
		return varint.AppendUint(buf, uint64(pos)), false
	}
	e.q.PushFront(ev.Key)
	return append(buf, 0), true
}

type mtfDec struct {
	q          *mtf.Queue[string]
	transients bool
}

func (d *mtfDec) Decode(r varint.ByteReader, ctx int) (string, bool, bool, error) {
	v, err := varint.ReadUint(r)
	if err != nil {
		return "", false, false, err
	}
	if d.transients {
		switch v {
		case 0:
			return "", true, true, nil
		case 1:
			return "", true, false, nil
		default:
			// Compare in uint64 before narrowing: a 64-bit position must
			// not wrap into a small (or negative) int and pass the check.
			if v-1 > uint64(d.q.Len()) {
				return "", false, false, badRef("mtf position %d beyond %d", v-1, d.q.Len())
			}
			key, ok := d.q.TryTake(int(v) - 1)
			if !ok {
				return "", false, false, badRef("mtf position %d beyond %d", v-1, d.q.Len())
			}
			return key, false, false, nil
		}
	}
	if v == 0 {
		return "", true, false, nil
	}
	if v > uint64(d.q.Len()) {
		return "", false, false, badRef("mtf position %d beyond %d", v, d.q.Len())
	}
	key, ok := d.q.TryTake(int(v))
	if !ok {
		return "", false, false, badRef("mtf position %d beyond %d", v, d.q.Len())
	}
	return key, false, false, nil
}

func (d *mtfDec) Define(ctx int, key string, transient bool) {
	if transient && d.transients {
		return
	}
	if d.q.Contains(key) {
		return // corrupt stream re-defining an object; tolerated, not fatal
	}
	d.q.PushFront(key)
}

// ---- MTF Context / Full ----

// ctxCodec implements both the encoder and decoder for the per-context
// schemes: it keeps one queue per context and, per §5.1.6, inserts every
// newly seen object into all queues (existing queues immediately, later
// queues at creation, seeded with the first-seen order).
type ctxCodec struct {
	counts       map[string]int // nil for plain MTFContext encoding
	transientDec bool           // decoder-side flag for MTFFull
	queues       map[int]*mtf.Queue[string]
	seen         map[string]bool
	order        []string // persistent keys in first-seen order
}

func (c *ctxCodec) transientsEnabled() bool { return c.counts != nil || c.transientDec }

func (c *ctxCodec) queue(ctx int) *mtf.Queue[string] {
	q := c.queues[ctx]
	if q == nil {
		q = mtf.New[string]()
		// Seed with every persistent object seen so far, oldest first, so
		// the most recently defined object ends up nearest the front.
		for _, k := range c.order {
			q.PushFront(k)
		}
		c.queues[ctx] = q
	}
	return q
}

func (c *ctxCodec) insertEverywhere(key string) {
	if c.seen[key] {
		return // duplicate definition (corrupt stream); tolerated
	}
	c.seen[key] = true
	c.order = append(c.order, key)
	for _, q := range c.queues {
		q.PushFront(key)
	}
}

// Encode implements Encoder.
func (c *ctxCodec) Encode(buf []byte, ev Event) ([]byte, bool) {
	q := c.queue(ev.Ctx)
	if c.transientsEnabled() {
		if c.seen[ev.Key] {
			pos, ok := q.Use(ev.Key)
			if !ok {
				// Repeated transient; re-encode as a fresh transient.
				return append(buf, 0), true
			}
			return varint.AppendUint(buf, uint64(pos)+1), false
		}
		if c.counts[ev.Key] == 1 {
			return append(buf, 0), true
		}
		c.insertEverywhere(ev.Key)
		return append(buf, 1), true
	}
	if c.seen[ev.Key] {
		pos, ok := q.Use(ev.Key)
		if !ok {
			return nil, false // unreachable: seen keys are in every queue
		}
		return varint.AppendUint(buf, uint64(pos)), false
	}
	c.insertEverywhere(ev.Key)
	return append(buf, 0), true
}

// Decode implements Decoder.
func (c *ctxCodec) Decode(r varint.ByteReader, ctx int) (string, bool, bool, error) {
	q := c.queue(ctx)
	v, err := varint.ReadUint(r)
	if err != nil {
		return "", false, false, err
	}
	if c.transientsEnabled() {
		switch v {
		case 0:
			return "", true, true, nil
		case 1:
			return "", true, false, nil
		default:
			if v-1 > uint64(q.Len()) {
				return "", false, false, badRef("ctx mtf position %d beyond %d", v-1, q.Len())
			}
			key, ok := q.TryTake(int(v) - 1)
			if !ok {
				return "", false, false, badRef("ctx mtf position %d beyond %d", v-1, q.Len())
			}
			return key, false, false, nil
		}
	}
	if v == 0 {
		return "", true, false, nil
	}
	if v > uint64(q.Len()) {
		return "", false, false, badRef("ctx mtf position %d beyond %d", v, q.Len())
	}
	key, ok := q.TryTake(int(v))
	if !ok {
		return "", false, false, badRef("ctx mtf position %d beyond %d", v, q.Len())
	}
	return key, false, false, nil
}

// Define implements Decoder.
func (c *ctxCodec) Define(ctx int, key string, transient bool) {
	if transient && c.transientsEnabled() {
		return
	}
	c.queue(ctx) // ensure the defining context's queue exists first
	c.insertEverywhere(key)
}

// Preload implements Preloadable.
func (e *simpleEnc) Preload(key string) { e.ids[key] = len(e.ids) }

// Preload implements Preloadable.
func (d *simpleDec) Preload(key string) { d.keys = append(d.keys, key) }

// Preload implements Preloadable.
func (e *basicEnc) Preload(key string) { e.ids[key] = len(e.ids) }

// Preload implements Preloadable.
func (d *basicDec) Preload(key string) { d.keys = append(d.keys, key) }

// Preload implements Preloadable.
func (e *mtfEnc) Preload(key string) { e.q.PushFront(key) }

// Preload implements Preloadable.
func (d *mtfDec) Preload(key string) { d.q.PushFront(key) }

// Preload implements Preloadable.
func (c *ctxCodec) Preload(key string) {
	c.queue(0)
	c.insertEverywhere(key)
}

// CountKeys tallies total occurrences per key over a trace; the result
// feeds the schemes that need future knowledge.
func CountKeys(events []Event) map[string]int {
	counts := make(map[string]int)
	for _, ev := range events {
		counts[ev.Key]++
	}
	return counts
}
