package refs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"classpack/internal/archive"
	"classpack/internal/corrupt"
	"classpack/internal/encoding/varint"
)

// genTrace produces a reference trace with Zipf-like key reuse and a few
// contexts, resembling real method-reference streams.
func genTrace(seed int64, n, universe, contexts int) []Event {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(universe-1))
	events := make([]Event, n)
	for i := range events {
		events[i] = Event{
			Ctx: rng.Intn(contexts),
			Key: fmt.Sprintf("obj-%d", zipf.Uint64()),
		}
	}
	return events
}

// roundTrip encodes a trace and decodes it back, simulating the packer
// protocol: first occurrences carry the key out of band.
func roundTrip(t *testing.T, s Scheme, events []Event) []byte {
	t.Helper()
	enc := NewEncoder(s, CountKeys(events))
	dec, ok := NewDecoder(s)
	if !ok {
		t.Fatalf("%v not decodable", s)
	}
	var buf []byte
	var defs []string // out-of-band definitions in order
	for _, ev := range events {
		var isNew bool
		buf, isNew = enc.Encode(buf, ev)
		if isNew {
			defs = append(defs, ev.Key)
		}
	}
	r := bytes.NewReader(buf)
	di := 0
	for i, ev := range events {
		key, isNew, transient, err := dec.Decode(r, ev.Ctx)
		if err != nil {
			t.Fatalf("%v: decode event %d: %v", s, i, err)
		}
		if isNew {
			if di >= len(defs) {
				t.Fatalf("%v: decoder wants definition %d, only %d sent", s, di, len(defs))
			}
			key = defs[di]
			di++
			dec.Define(ev.Ctx, key, transient)
		}
		if key != ev.Key {
			t.Fatalf("%v: event %d decoded %q, want %q", s, i, key, ev.Key)
		}
	}
	if di != len(defs) {
		t.Fatalf("%v: consumed %d of %d definitions", s, di, len(defs))
	}
	if r.Len() != 0 {
		t.Fatalf("%v: %d trailing bytes", s, r.Len())
	}
	return buf
}

func TestRoundTripAllDecodableSchemes(t *testing.T) {
	events := genTrace(1, 20000, 800, 6)
	for _, s := range []Scheme{Simple, Basic, MTFBasic, MTFTransients, MTFContext, MTFFull} {
		t.Run(s.String(), func(t *testing.T) { roundTrip(t, s, events) })
	}
}

func TestRoundTripSingleContext(t *testing.T) {
	events := genTrace(2, 5000, 100, 1)
	for _, s := range []Scheme{MTFContext, MTFFull} {
		roundTrip(t, s, events)
	}
}

func TestRoundTripManySingletons(t *testing.T) {
	// Mostly unique keys stress the transient path.
	var events []Event
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		if rng.Intn(4) == 0 {
			events = append(events, Event{Ctx: rng.Intn(3), Key: "hot"})
		} else {
			events = append(events, Event{Ctx: rng.Intn(3), Key: fmt.Sprintf("once-%d", i)})
		}
	}
	for _, s := range []Scheme{MTFTransients, MTFFull} {
		roundTrip(t, s, events)
	}
}

func TestTransientsBypassQueue(t *testing.T) {
	events := []Event{
		{Key: "a"}, {Key: "solo"}, {Key: "a"}, {Key: "b"}, {Key: "a"}, {Key: "b"},
	}
	enc := NewEncoder(MTFTransients, CountKeys(events))
	var buf []byte
	for _, ev := range events {
		buf, _ = enc.Encode(buf, ev)
	}
	// Expected stream: a new-persistent(1), solo transient(0),
	// a at pos1(2), b new-persistent(1), a at pos2(3), b at pos2(3).
	want := []byte{1, 0, 2, 1, 3, 3}
	if !bytes.Equal(buf, want) {
		t.Fatalf("stream = %v, want %v", buf, want)
	}
}

func TestContextQueuesShareDefinitions(t *testing.T) {
	// An object defined in context 0 must be referenceable from context 1
	// without being re-defined (§5.1.6).
	events := []Event{
		{Ctx: 0, Key: "m"},
		{Ctx: 1, Key: "m"},
		{Ctx: 1, Key: "m"},
	}
	enc := NewEncoder(MTFContext, nil)
	var buf []byte
	newCount := 0
	for _, ev := range events {
		var isNew bool
		buf, isNew = enc.Encode(buf, ev)
		if isNew {
			newCount++
		}
	}
	if newCount != 1 {
		t.Fatalf("object defined %d times, want 1", newCount)
	}
	roundTrip(t, MTFContext, events)
}

func TestLateContextSeeding(t *testing.T) {
	// A queue created after several definitions must hold them all.
	var events []Event
	for i := 0; i < 10; i++ {
		events = append(events, Event{Ctx: 0, Key: fmt.Sprintf("k%d", i)})
	}
	for i := 9; i >= 0; i-- {
		events = append(events, Event{Ctx: 7, Key: fmt.Sprintf("k%d", i)})
	}
	roundTrip(t, MTFContext, events)
	roundTrip(t, MTFFull, events)
}

func TestMTFBeatsSimpleOnSkewedTraces(t *testing.T) {
	// The paper's Table 3 ordering: compressed MTF streams are smaller
	// than compressed Simple streams on locality-rich traces.
	events := genTrace(4, 30000, 2000, 4)
	counts := CountKeys(events)
	sizes := map[Scheme]int{}
	for _, s := range []Scheme{Simple, Basic, MTFBasic, MTFFull} {
		enc := NewEncoder(s, counts)
		var buf []byte
		for _, ev := range events {
			buf, _ = enc.Encode(buf, ev)
		}
		sizes[s] = archive.FlateSize(buf)
	}
	if !(sizes[MTFBasic] < sizes[Simple]) {
		t.Errorf("MTFBasic %d not smaller than Simple %d", sizes[MTFBasic], sizes[Simple])
	}
	if !(sizes[Basic] < sizes[Simple]) {
		t.Errorf("Basic %d not smaller than Simple %d", sizes[Basic], sizes[Simple])
	}
	if !(sizes[MTFFull] < sizes[Simple]) {
		t.Errorf("MTFFull %d not smaller than Simple %d", sizes[MTFFull], sizes[Simple])
	}
}

func TestFreqAndCacheEncodeOnly(t *testing.T) {
	events := genTrace(5, 2000, 150, 3)
	counts := CountKeys(events)
	for _, s := range []Scheme{Freq, Cache} {
		if s.Decodable() {
			t.Errorf("%v claims to be decodable", s)
		}
		if _, ok := NewDecoder(s); ok {
			t.Errorf("NewDecoder(%v) succeeded", s)
		}
		enc := NewEncoder(s, counts)
		var buf []byte
		for _, ev := range events {
			buf, _ = enc.Encode(buf, ev)
		}
		if len(buf) == 0 {
			t.Errorf("%v produced no output", s)
		}
	}
}

func TestCacheHitsAreSmall(t *testing.T) {
	// Repeated references must stay inside the 16-entry cache coding.
	events := []Event{{Key: "x"}, {Key: "x"}, {Key: "x"}}
	enc := NewEncoder(Cache, CountKeys(events))
	var buf []byte
	for _, ev := range events {
		buf, _ = enc.Encode(buf, ev)
	}
	// First: miss (17 + rank), then two hits at position 1.
	if buf[len(buf)-1] != 1 || buf[len(buf)-2] != 1 {
		t.Fatalf("cache stream = %v", buf)
	}
}

func TestDecodeCorruptStream(t *testing.T) {
	for _, s := range []Scheme{Basic, MTFBasic, MTFTransients, MTFContext, MTFFull} {
		dec, _ := NewDecoder(s)
		// Position far beyond any queue.
		r := bytes.NewReader([]byte{0xff, 0x7f})
		if _, isNew, _, err := dec.Decode(r, 0); err == nil && !isNew {
			t.Errorf("%v: corrupt position accepted", s)
		}
	}
}

func TestSimpleEscapeForHugePools(t *testing.T) {
	enc := NewEncoder(Simple, nil).(*simpleEnc)
	var buf []byte
	// Force an id beyond the two-byte range via direct table injection.
	for i := 0; i < 0xffff; i++ {
		enc.ids[fmt.Sprintf("filler-%d", i)] = i
	}
	buf, isNew := enc.Encode(buf, Event{Key: "big"})
	if !isNew {
		t.Fatal("new key not flagged")
	}
	dec, _ := NewDecoder(Simple)
	sd := dec.(*simpleDec)
	sd.keys = make([]string, 0xffff)
	r := bytes.NewReader(buf)
	_, isNew, _, err := sd.Decode(r, 0)
	if err != nil || !isNew {
		t.Fatalf("escape decode: isNew=%v err=%v", isNew, err)
	}
}

// TestDecodeBadPositionIsCorrupt hand-crafts reference streams whose MTF
// positions point beyond the queue — including 64-bit values that would
// wrap a naive int cast — and checks every decodable scheme reports a
// structured corrupt error instead of panicking.
func TestDecodeBadPositionIsCorrupt(t *testing.T) {
	huge := varint.AppendUint(nil, 1<<62) // wraps negative if narrowed to int64->int carelessly
	small := varint.AppendUint(nil, 5)    // beyond a queue holding one element
	for _, s := range []Scheme{Basic, MTFBasic, MTFTransients, MTFContext, MTFFull} {
		for _, tc := range []struct {
			name string
			data []byte
		}{{"huge", huge}, {"small", small}} {
			dec, ok := NewDecoder(s)
			if !ok {
				t.Fatalf("%v: no decoder", s)
			}
			dec.Define(0, "only-key", false)
			_, isNew, _, err := dec.Decode(bytes.NewReader(tc.data), 0)
			if isNew {
				continue // position landed on a "new object" escape: fine
			}
			if err == nil {
				t.Errorf("%v/%s: bad position accepted", s, tc.name)
				continue
			}
			if _, isCorrupt := corrupt.As(err); !isCorrupt {
				t.Errorf("%v/%s: error is not a corrupt.Error: %v", s, tc.name, err)
			}
			// The decoder must stay usable: the defined key still decodes.
			v := uint64(1)
			switch s {
			case Basic:
				v = 0 // basic ids are 0-based
			case MTFTransients, MTFFull:
				v = 2 // transient escapes shift positions by one
			}
			pos := varint.AppendUint(nil, v)
			key, isNew, _, err := dec.Decode(bytes.NewReader(pos), 0)
			if err != nil || isNew || key != "only-key" {
				t.Errorf("%v/%s: decoder unusable after corrupt stream: %q, %v, %v", s, tc.name, key, isNew, err)
			}
		}
	}
}
