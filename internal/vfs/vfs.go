// Package vfs defines the minimal mutating-filesystem interface behind
// castore's write path. The production store runs on OS (the real
// filesystem); the fault drills substitute a crash-point-scriptable
// implementation (internal/faultinject.CrashFS) to prove that a process
// death at any write point loses at most the in-flight object. The
// package sits below both castore and faultinject so either side can
// depend on it without a cycle.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// FS abstracts the mutating filesystem operations a content-addressed
// store performs while writing: directory creation, temp-file creation,
// permission, rename, removal, and directory fsync. Reads are not part
// of the interface — after a simulated crash, recovery reopens the
// directory through the real filesystem, exactly like a restarted
// daemon.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	CreateTemp(dir, pattern string) (File, error)
	Chmod(name string, mode fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making completed renames
	// durable across power loss.
	SyncDir(dir string) error
}

// File is the writable handle FS.CreateTemp returns.
type File interface {
	io.Writer
	Name() string
	Sync() error
	Close() error
}

// OS returns the real-filesystem implementation of FS.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Chmod(name string, mode fs.FileMode) error { return os.Chmod(name, mode) }
func (osFS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                  { return os.Remove(name) }

// SyncDir opens dir read-only and fsyncs it.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (osFS) SyncDir(dir string) error { return SyncDir(dir) }
