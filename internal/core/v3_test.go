package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"classpack/internal/classfile"
	"classpack/internal/corrupt"
	"classpack/internal/synth"
)

// v3Opts is the default configuration with chunking enabled.
func v3Opts(chunk int) Options {
	opts := DefaultOptions()
	opts.ChunkClasses = chunk
	return opts
}

// synthStripped generates a stripped synthetic corpus with serialized
// reference bytes.
func synthStripped(t testing.TB, scale float64) ([]*classfile.ClassFile, [][]byte) {
	t.Helper()
	p, err := synth.ProfileByName("202_jess")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, scale)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(cfs))
	for i, cf := range cfs {
		if want[i], err = classfile.Write(cf); err != nil {
			t.Fatal(err)
		}
	}
	return cfs, want
}

// checkClasses verifies decoded classes serialize byte-identically to
// want, in order.
func checkClasses(t *testing.T, got []*classfile.ClassFile, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d classes, want %d", len(got), len(want))
	}
	for i, cf := range got {
		data, err := classfile.Write(cf)
		if err != nil {
			t.Fatalf("class %d: write: %v", i, err)
		}
		if !bytes.Equal(data, want[i]) {
			t.Fatalf("class %d (%s) differs after v3 round trip", i, cf.ThisClassName())
		}
	}
}

func TestV3RoundTripChunkSizes(t *testing.T) {
	cfs := buildTestClasses(t)
	want := strippedBytes(t, cfs)
	for _, chunk := range []int{1, 2, 64, 10000} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			packed, err := Pack(cfs, v3Opts(chunk))
			if err != nil {
				t.Fatalf("Pack: %v", err)
			}
			if packed[4] != Version3 {
				t.Fatalf("version byte = %d, want %d", packed[4], Version3)
			}
			back, err := Unpack(packed)
			if err != nil {
				t.Fatalf("Unpack: %v", err)
			}
			checkClasses(t, back, want)
		})
	}
}

func TestV3ZeroChunkStaysV2(t *testing.T) {
	cfs := buildTestClasses(t)
	packed, err := Pack(cfs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if packed[4] != Version2 {
		t.Fatalf("ChunkClasses=0 packed version %d, want %d", packed[4], Version2)
	}
}

func TestV3Deterministic(t *testing.T) {
	cfs := buildTestClasses(t)
	opts := v3Opts(2)
	var first []byte
	for _, j := range []int{1, 2, 3, 8, 0} {
		opts.Concurrency = j
		packed, err := Pack(cfs, opts)
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		if first == nil {
			first = packed
			continue
		}
		if !bytes.Equal(packed, first) {
			t.Fatalf("j=%d produced different v3 bytes", j)
		}
	}
}

func TestV3PackStreamMatchesPack(t *testing.T) {
	cfs := buildTestClasses(t)
	opts := v3Opts(2)
	opts.Concurrency = 4
	packed, err := Pack(cfs, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	i := 0
	next := func() (*classfile.ClassFile, error) {
		if i == len(cfs) {
			return nil, io.EOF
		}
		cf := cfs[i]
		i++
		return cf, nil
	}
	if err := PackStream(&buf, next, opts); err != nil {
		t.Fatalf("PackStream: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), packed) {
		t.Fatalf("PackStream output (%d bytes) differs from Pack (%d bytes)", buf.Len(), len(packed))
	}
}

func TestV3UnpackReader(t *testing.T) {
	cfs := buildTestClasses(t)
	want := strippedBytes(t, cfs)
	for _, ver := range []struct {
		name string
		opts Options
	}{
		{"v2", DefaultOptions()},
		{"v3", v3Opts(2)},
	} {
		t.Run(ver.name, func(t *testing.T) {
			packed, err := Pack(cfs, ver.opts)
			if err != nil {
				t.Fatal(err)
			}
			var back []*classfile.ClassFile
			err = UnpackReader(bytes.NewReader(packed), UnpackOpts{}, func(cf *classfile.ClassFile) error {
				back = append(back, cf)
				return nil
			})
			if err != nil {
				t.Fatalf("UnpackReader: %v", err)
			}
			checkClasses(t, back, want)
		})
	}
}

func TestV3EmptyArchive(t *testing.T) {
	packed, err := Pack(nil, v3Opts(64))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty v3 archive decoded %d classes", len(out))
	}
	ix, err := ReadIndex(packed, UnpackOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumClasses() != 0 || len(ix.Chunks) != 0 {
		t.Fatalf("empty archive index: %d classes, %d chunks", ix.NumClasses(), len(ix.Chunks))
	}
}

func TestV3Index(t *testing.T) {
	cfs := buildTestClasses(t)
	packed, err := Pack(cfs, v3Opts(2))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ReadIndex(packed, UnpackOpts{})
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	if ix.ChunkClasses != 2 {
		t.Fatalf("ChunkClasses = %d, want 2", ix.ChunkClasses)
	}
	if want := (len(cfs) + 1) / 2; len(ix.Chunks) != want {
		t.Fatalf("%d chunks, want %d", len(ix.Chunks), want)
	}
	if ix.NumClasses() != len(cfs) {
		t.Fatalf("index lists %d classes, want %d", ix.NumClasses(), len(cfs))
	}
	for i, cf := range cfs {
		name := cf.ThisClassName()
		if ix.Names[i] != name {
			t.Fatalf("index name %d = %q, want %q", i, ix.Names[i], name)
		}
		chunk, ord, ok := ix.Locate(name)
		if !ok {
			t.Fatalf("Locate(%q) not found", name)
		}
		if chunk != i/2 || ord != i%2 {
			t.Fatalf("Locate(%q) = (%d,%d), want (%d,%d)", name, chunk, ord, i/2, i%2)
		}
	}
	if _, _, ok := ix.Locate("no/such/Class"); ok {
		t.Fatal("Locate found a class that does not exist")
	}
}

// TestV3ChunkDecodesStandalone pins the core random-access property: a
// chunk body sliced out by the index decodes on its own, with no other
// chunk touched.
func TestV3ChunkDecodesStandalone(t *testing.T) {
	cfs := buildTestClasses(t)
	want := strippedBytes(t, cfs)
	packed, err := Pack(cfs, v3Opts(1))
	if err != nil {
		t.Fatal(err)
	}
	_, opts, err := ParseHeader(packed[:6])
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ReadIndex(packed, UnpackOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for ci, ch := range ix.Chunks {
		body := packed[ch.Off : ch.Off+ch.Len]
		var got []*classfile.ClassFile
		if _, err := DecodeChunk(opts, body, true, UnpackOpts{}, func(ord int, cf *classfile.ClassFile) error {
			got = append(got, cf)
			return nil
		}); err != nil {
			t.Fatalf("chunk %d: %v", ci, err)
		}
		checkClasses(t, got, want[ix.Start(ci):ix.Start(ci)+ch.Classes])
	}
}

func TestV3CorruptIndex(t *testing.T) {
	cfs := buildTestClasses(t)
	packed, err := Pack(cfs, v3Opts(2))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ReadIndex(packed, UnpackOpts{})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func(b []byte)) {
		t.Run(name, func(t *testing.T) {
			b := bytes.Clone(packed)
			f(b)
			if _, err := ReadIndex(b, UnpackOpts{}); err == nil {
				t.Fatal("ReadIndex accepted a corrupt index")
			} else if _, ok := corrupt.As(err); !ok {
				t.Fatalf("ReadIndex error %T is not a corrupt.Error: %v", err, err)
			}
			if _, err := Unpack(b); err == nil {
				t.Fatal("Unpack accepted a corrupt index")
			}
		})
	}
	mutate("footer-magic", func(b []byte) { b[len(b)-1] ^= 0xff })
	mutate("footer-length", func(b []byte) { b[len(b)-9] ^= 0xff })
	mutate("blob-bitflip", func(b []byte) { b[ix.blobOff+1] ^= 0x40 })
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 5, footerSize, footerSize + 10, len(packed) - 7} {
			if _, err := ReadIndex(packed[:len(packed)-cut], UnpackOpts{}); err == nil {
				t.Fatalf("ReadIndex accepted an archive truncated by %d bytes", cut)
			}
		}
	})
}

func TestV3BudgetHonored(t *testing.T) {
	cfs := buildTestClasses(t)
	packed, err := Pack(cfs, v3Opts(1))
	if err != nil {
		t.Fatal(err)
	}
	err = UnpackStreamOpts(packed, UnpackOpts{MaxDecodedBytes: 64}, func(*classfile.ClassFile) error { return nil })
	if !errors.Is(err, corrupt.ErrTooLarge) {
		t.Fatalf("tiny budget: err = %v, want ErrTooLarge", err)
	}
	err = UnpackReader(bytes.NewReader(packed), UnpackOpts{MaxDecodedBytes: 64}, func(*classfile.ClassFile) error { return nil })
	if !errors.Is(err, corrupt.ErrTooLarge) {
		t.Fatalf("tiny budget (reader): err = %v, want ErrTooLarge", err)
	}
	if _, err := Salvage(packed, UnpackOpts{MaxClassCount: 1}); err != nil {
		t.Fatalf("Salvage returned a hard error on a capped archive: %v", err)
	}
}

func TestV3ClassCountCap(t *testing.T) {
	cfs := buildTestClasses(t)
	packed, err := Pack(cfs, v3Opts(1))
	if err != nil {
		t.Fatal(err)
	}
	err = UnpackStreamOpts(packed, UnpackOpts{MaxClassCount: 1}, func(*classfile.ClassFile) error { return nil })
	if !errors.Is(err, corrupt.ErrTooLarge) {
		t.Fatalf("class cap: err = %v, want ErrTooLarge", err)
	}
}

func TestV3SalvageChunkIsolation(t *testing.T) {
	cfs := buildTestClasses(t)
	want := strippedBytes(t, cfs)
	names := make(map[string]int, len(cfs))
	for i, cf := range cfs {
		names[cf.ThisClassName()] = i
	}
	packed, err := Pack(cfs, v3Opts(1))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ReadIndex(packed, UnpackOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle chunk's body.
	victim := 1
	b := bytes.Clone(packed)
	ch := ix.Chunks[victim]
	for off := ch.Off + ch.Len/4; off < ch.Off+ch.Len; off += ch.Len / 4 {
		b[off] ^= 0xa5
	}
	res, err := Salvage(b, UnpackOpts{})
	if err != nil {
		t.Fatalf("Salvage: %v", err)
	}
	if res.Version != Version3 {
		t.Fatalf("salvage version = %d, want %d", res.Version, Version3)
	}
	if res.TotalClasses != len(cfs) {
		t.Fatalf("TotalClasses = %d, want %d", res.TotalClasses, len(cfs))
	}
	if len(res.Classes) != len(cfs)-1 {
		t.Fatalf("recovered %d classes, want %d", len(res.Classes), len(cfs)-1)
	}
	// Chunks after the damaged one must recover byte-identically: match
	// by name, since the damaged chunk leaves a gap.
	for _, cf := range res.Classes {
		i, ok := names[cf.ThisClassName()]
		if !ok {
			t.Fatalf("salvage invented class %q", cf.ThisClassName())
		}
		if i == victim {
			t.Fatalf("salvage recovered the damaged class %q", cf.ThisClassName())
		}
		got, err := classfile.Write(cf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("recovered class %q differs from the clean original", cf.ThisClassName())
		}
	}
	lost := 0
	sawVictim := false
	for _, d := range res.V3Damage {
		lost += d.ClassesLost
		if d.Chunk == victim {
			sawVictim = true
		}
		if d.Chunk >= 0 && d.Chunk != victim {
			t.Fatalf("damage attributed to intact chunk %d: %v", d.Chunk, d.Err)
		}
	}
	if !sawVictim {
		t.Fatalf("no damage attributed to chunk %d: %+v", victim, res.V3Damage)
	}
	if lost != 1 {
		t.Fatalf("damage accounts for %d lost classes, want 1", lost)
	}
}

func TestV3SalvageDestroyedIndex(t *testing.T) {
	cfs := buildTestClasses(t)
	packed, err := Pack(cfs, v3Opts(1))
	if err != nil {
		t.Fatal(err)
	}
	b := bytes.Clone(packed)
	for i := len(b) - footerSize; i < len(b); i++ {
		b[i] = 0
	}
	res, err := Salvage(b, UnpackOpts{})
	if err != nil {
		t.Fatalf("Salvage: %v", err)
	}
	// The framing walk drives recovery: a destroyed index costs nothing.
	if len(res.Classes) != len(cfs) {
		t.Fatalf("recovered %d classes with a destroyed index, want %d", len(res.Classes), len(cfs))
	}
	found := false
	for _, d := range res.V3Damage {
		if d.Chunk == -1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no container-level damage recorded for the destroyed index: %+v", res.V3Damage)
	}
}

func TestV3LargeCorpusRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("large corpus round trip skipped in -short mode")
	}
	cfs, want := synthStripped(t, 0.5)
	packed, err := Pack(cfs, v3Opts(16))
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	checkClasses(t, back, want)
}
