// Package core implements the paper's packed wire format for collections
// of Java class files: a symmetric preorder traversal of the restructured
// representation (§4) that encodes references through per-kind (and, for
// method references, per-stack-context) move-to-front pools (§5),
// separates dissimilar data into independently compressed streams (§7, §8),
// and collapses typed opcodes using the approximate stack state (§7.1).
//
// Decoding is deterministic: Unpack(Pack(files)) reproduces the stripped
// classfiles byte-for-byte.
package core

import (
	"classpack/internal/bytecode"
	"classpack/internal/refs"
)

// Magic identifies a packed archive.
var Magic = [4]byte{'C', 'J', 'P', '1'}

// Wire-format versions. Version 1 carries no integrity data; version 2
// adds a CRC32C (Castagnoli) of every stream's encoded payload to the
// stream directory and a whole-container trailer checksum. Version 3
// groups classes into chunks — each chunk an independent version-2-style
// checked container encoded from reset reference models — and appends a
// seekable class index, so any class can be extracted in O(chunk) work.
// The decoder dispatches on the header's version byte, so all three stay
// readable; Pack emits version 2 for the monolithic layout and version 3
// when Options.ChunkClasses asks for chunking.
const (
	Version1 = 1
	Version2 = 2
	Version3 = 3

	// version is what Pack emits when ChunkClasses is zero.
	version = Version2
)

// DefaultChunkClasses is the classes-per-chunk used by the version-3
// encoder when Options.ChunkClasses does not choose a positive value
// (PackVersion with Version3, PackStream).
const DefaultChunkClasses = 64

// Options control the encoder. The decoder reads the choices from the
// archive header, so any combination round-trips.
type Options struct {
	// Scheme selects the reference coding (must be Decodable). The paper's
	// shipping configuration is MTFFull (move-to-front with transients and
	// use context, §10).
	Scheme refs.Scheme
	// StackState enables the §7.1 opcode collapsing and the §5.1.6
	// stack-state contexts for method references.
	StackState bool
	// Compress enables per-stream DEFLATE (disable for the Table 5
	// "not gzip'd" ablation).
	Compress bool
	// Preload seeds every reference pool with a standard table of common
	// JDK names and references (the §14 extension). The flag travels in
	// the archive header; both sides must know the same table.
	Preload bool
	// Concurrency bounds the workers used for parallel stream
	// compression (0 = all cores, 1 = serial). It is a local performance
	// knob only: it does not travel in the archive header and never
	// changes the packed bytes.
	Concurrency int
	// ChunkClasses selects the version-3 chunked layout: a positive
	// value groups that many classes per chunk, each chunk encoded from
	// reset reference models into its own checked container, with a
	// seekable class index appended so single classes extract in
	// O(chunk) work. Zero (the default) keeps the monolithic version-2
	// layout. The value is recorded in the index, not the header byte.
	ChunkClasses int
}

// DefaultOptions is the paper's evaluated configuration (§10).
func DefaultOptions() Options {
	return Options{Scheme: refs.MTFFull, StackState: true, Compress: true}
}

// Stream names. The first path segment is the Table 6 category:
// str (Strings), ops (Opcodes), int (Ints), ref (Refs), msc (Misc).
const (
	sMeta     = "int.meta"   // counts, flags, lengths
	sMaxes    = "int.code"   // max_stack, max_locals
	sIntCV    = "int.cv"     // integer constant values (fields)
	sIntLdc   = "int.ldc"    // integer constants loaded by ldc
	sIntImm   = "int.imm"    // bipush/sipush/iinc immediates
	sOpcodes  = "ops.code"   // one byte per instruction
	sRegs     = "msc.reg"    // register numbers
	sBranch   = "msc.branch" // relative branch offsets
	sSwitch   = "msc.switch" // switch defaults, bounds, keys, targets
	sHandler  = "msc.handler"
	sFloat    = "msc.float"  // float bit patterns
	sDouble   = "msc.double" // double bit patterns
	sLong     = "msc.long"   // long values
	sClassDef = "msc.classdef"
	sMiscOp   = "msc.op" // newarray atype, multianewarray dims
)

// refsScheme narrows a header byte to a scheme value.
func refsScheme(b byte) refs.Scheme { return refs.Scheme(b) }

// refStream returns the index stream for a pool. The names are
// precomputed: building them per reference dominated the allocation
// profile of both directions.
func refStream(p poolID) string { return refStreamName[p] }

var refStreamName [numPools]string

// strCat identifies a string category (§8). Each category owns a
// length and a character stream; the pairs are precomputed like the
// ref streams.
type strCat int

const (
	catPkg strCat = iota
	catCls
	catMname
	catFname
	catStr
	numStrCats
)

var strCatName = [numStrCats]string{"pkg", "cls", "mname", "fname", "str"}

// strLenName and strChrName are the per-category length and character
// stream names (§8: lengths separate from characters).
var strLenName, strChrName [numStrCats]string

func init() {
	for p := range refStreamName {
		refStreamName[p] = "ref." + poolName[poolID(p)]
	}
	for c := range strCatName {
		strLenName[c] = "str." + strCatName[c] + ".len"
		strChrName[c] = "str." + strCatName[c] + ".chr"
	}
}

// poolID identifies a reference pool. Separate pools are kept for virtual,
// interface, static and special method references and for static and
// instance field references (§5.1).
type poolID int

const (
	poolPackage poolID = iota
	poolSimple
	poolClass
	poolSig
	poolMethodName
	poolFieldName
	poolFieldInstance
	poolFieldStatic
	poolMethodVirtual
	poolMethodSpecial
	poolMethodStatic
	poolMethodInterface
	poolString
	numPools
)

var poolName = [numPools]string{
	"pkg", "cls", "class", "sig", "mname", "fname",
	"field.i", "field.s", "meth.v", "meth.sp", "meth.st", "meth.if", "strc",
}

// contextual reports whether the pool's references use stack-state
// contexts (§5.1.6: method references only).
func (p poolID) contextual() bool {
	switch p {
	case poolMethodVirtual, poolMethodSpecial, poolMethodStatic, poolMethodInterface:
		return true
	}
	return false
}

// Pseudo-opcodes replacing the constant-loading instructions in the wire
// opcode stream; they name the constant's type so the decoder knows which
// value stream to read (§3 footnote 1) and preserve the ldc/ldc_w width.
const (
	opLdcInt     bytecode.Op = 0xca + iota // ldc of an Integer
	opLdcFloat                             // ldc of a Float
	opLdcString                            // ldc of a String
	opLdcWInt                              // ldc_w of an Integer
	opLdcWFloat                            // ldc_w of a Float
	opLdcWString                           // ldc_w of a String
	opLdc2Long                             // ldc2_w of a Long
	opLdc2Double                           // ldc2_w of a Double

	// numWireOps is the wire opcode alphabet size.
	numWireOps = int(opLdc2Double) + 1
)

// Extended flag bits layered above the 16 JVM access-flag bits in the
// varint-coded flags word; generic attributes become flags (§4).
const (
	flagHasSuper   = 1 << 16 // class: has a superclass
	flagHasInner   = 1 << 17 // class: InnerClasses attribute present
	flagHasConst   = 1 << 16 // field: ConstantValue present
	flagHasCode    = 1 << 16 // method: Code attribute present
	flagSynthetic  = 1 << 18
	flagDeprecated = 1 << 19
	// Inner-class entry flags (above the entry's access bits).
	flagInnerHasOuter = 1 << 16
	flagInnerHasName  = 1 << 17
)
