package core

import (
	"math/rand"
	"testing"
)

// TestUnpackNeverPanicsOnCorruptInput mutates valid archives and feeds
// random garbage to Unpack: every outcome must be a clean error or a
// (possibly wrong) decode, never a panic.
func TestUnpackNeverPanicsOnCorruptInput(t *testing.T) {
	cfs := buildTestClasses(t)
	strippedBytes(t, cfs)
	packed, err := Pack(cfs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	try := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unpack panicked on corrupt input: %v", r)
			}
		}()
		_, _ = Unpack(data)
	}
	// Single-byte flips across the whole archive.
	for trial := 0; trial < 3000; trial++ {
		mut := append([]byte(nil), packed...)
		i := rng.Intn(len(mut))
		mut[i] ^= byte(1 + rng.Intn(255))
		try(mut)
	}
	// Truncations.
	for cut := 0; cut < len(packed); cut += 7 {
		try(packed[:cut])
	}
	// Multi-byte corruption bursts.
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), packed...)
		for k := 0; k < 8; k++ {
			mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
		}
		try(mut)
	}
	// Pure garbage with a valid header prefix.
	for trial := 0; trial < 500; trial++ {
		data := make([]byte, rng.Intn(256))
		rng.Read(data)
		copy(data, Magic[:])
		try(data)
	}
}
