package core

import (
	"classpack/internal/classfile"
	"classpack/internal/corrupt"
	"classpack/internal/streams"
)

// SalvageResult is what Salvage recovered from a (possibly damaged)
// archive.
type SalvageResult struct {
	// TotalClasses is the class count the archive's directory declares,
	// or 0 when the count itself was unreadable or failed a resource cap.
	TotalClasses int
	// Classes are the fully decoded classes, in archive order. The wire
	// format is sequential and stateful (reference pools, per-stream
	// positions), so once one class fails to decode nothing after it can
	// be trusted: Classes is always an intact prefix of the archive.
	Classes []*classfile.ClassFile
	// Quarantined lists container-level damage in detection order:
	// streams whose checksum mismatched or whose payload failed to
	// decode, trailer damage, and directory damage. A quarantined stream
	// only costs classes if decoding actually reads it (see Abort).
	Quarantined []*corrupt.Error
	// Abort is the failure that ended class decoding, nil when every
	// declared class decoded. When decoding first touches a quarantined
	// stream, Abort is that stream's quarantining error.
	Abort *corrupt.Error
	// AbortClass is the index of the class being decoded when Abort hit
	// (-1 when Abort is nil or the class count itself was unreadable).
	AbortClass int
}

// Salvage decodes as much of a packed archive as the damage allows,
// instead of failing on the first corrupt byte the way Unpack does.
// Checksum-failing streams (version 2 archives) and streams whose
// payload cannot be decoded are quarantined up front; classes are then
// decoded sequentially until one reads damaged or inconsistent data,
// and every class completed before that point is returned.
//
// The error return is reserved for inputs that are not a packed archive
// at all (bad magic, unknown version, undecodable scheme): the 6-byte
// header is the root of trust, and without it there is nothing to
// salvage against.
func Salvage(data []byte, o UnpackOpts) (*SalvageResult, error) {
	opts, err := header(data)
	if err != nil {
		return nil, err
	}
	r, quarantined := streams.NewSalvageReader(data[6:], o.Concurrency, o.MaxDecodedBytes, data[4] != Version1)
	u := newUnpacker(opts, r)
	if opts.Preload {
		preloadUnpacker(u)
	}
	res := &SalvageResult{Quarantined: quarantined, AbortClass: -1}
	count, err := u.meta.Uint()
	if err != nil {
		res.Abort = asCorrupt(sMeta, err)
		return res, nil
	}
	maxClasses := o.MaxClassCount
	if maxClasses <= 0 {
		maxClasses = DefaultMaxClassCount
	}
	if count > uint64(maxClasses) {
		res.Abort = corrupt.TooLarge(sMeta, -1, "class count %d exceeds cap %d", count, maxClasses)
		return res, nil
	}
	res.TotalClasses = int(count)
	for i := uint64(0); i < count; i++ {
		cf, err := u.class()
		if err != nil {
			res.Abort = asCorrupt(sMeta, err)
			res.AbortClass = int(i)
			break
		}
		res.Classes = append(res.Classes, cf)
	}
	return res, nil
}

// asCorrupt normalizes any decode failure to a *corrupt.Error, tagging
// errors from outside the taxonomy with the stream they surfaced in.
func asCorrupt(stream string, err error) *corrupt.Error {
	if ce, ok := corrupt.As(err); ok {
		return ce
	}
	return corrupt.New(stream, -1, err)
}
