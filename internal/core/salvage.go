package core

import (
	"classpack/internal/classfile"
	"classpack/internal/corrupt"
	"classpack/internal/encoding/varint"
	"classpack/internal/streams"
)

// SalvageResult is what Salvage recovered from a (possibly damaged)
// archive.
type SalvageResult struct {
	// Version is the archive's container version byte.
	Version byte
	// TotalClasses is the class count the archive declares, or 0 when
	// the count itself was unreadable or failed a resource cap. For
	// version-3 archives the trailing index is authoritative when it
	// parses; otherwise the sum of readable per-chunk declarations is
	// used, so the figure can undercount when framing damage hides
	// whole chunks.
	TotalClasses int
	// Classes are the fully decoded classes, in archive order. Within
	// one container body the wire format is sequential and stateful
	// (reference pools, per-stream positions), so once one class fails
	// to decode nothing after it in the same body can be trusted: for
	// version-1/2 archives Classes is always an intact prefix of the
	// archive. Version-3 chunks reset all model state, so decoding
	// resumes at the next chunk boundary and Classes may have gaps —
	// consult V3Damage for which chunks lost classes.
	Classes []*classfile.ClassFile
	// Quarantined lists container-level damage in detection order:
	// streams whose checksum mismatched or whose payload failed to
	// decode, trailer damage, and directory damage. A quarantined stream
	// only costs classes if decoding actually reads it (see Abort).
	// Version-3 archives report per-chunk damage in V3Damage instead.
	Quarantined []*corrupt.Error
	// Abort is the failure that ended class decoding, nil when every
	// declared class decoded. When decoding first touches a quarantined
	// stream, Abort is that stream's quarantining error. Unused for
	// version-3 archives (chunk failures don't end decoding).
	Abort *corrupt.Error
	// AbortClass is the index of the class being decoded when Abort hit
	// (-1 when Abort is nil or the class count itself was unreadable).
	AbortClass int
	// V3Damage lists version-3 damage in detection order: per-chunk
	// quarantines and decode aborts, plus container-level failures
	// (chunk framing, index, footer) attributed to Chunk == -1.
	V3Damage []V3Damage
}

// V3Damage describes one piece of damage found while salvaging a
// version-3 archive.
type V3Damage struct {
	// Chunk is the damaged chunk's index, or -1 for container-level
	// damage (chunk framing, the class index, the footer).
	Chunk int
	// Err is the underlying failure.
	Err *corrupt.Error
	// ClassesLost is how many classes this damage cost. Classes that
	// cannot be attributed to a specific failure (chunks hidden behind
	// framing damage, chunks whose own class count was unreadable) are
	// charged to the last damage entry.
	ClassesLost int
}

// chunkSalvage is the outcome of best-effort decoding one container
// body (a whole version-1/2 archive body, or one version-3 chunk).
type chunkSalvage struct {
	declared    int // body's declared class count, -1 when unreadable
	classes     []*classfile.ClassFile
	quarantined []*corrupt.Error
	abort       *corrupt.Error // failure that ended decoding, nil if complete
	abortAt     int            // class index when abort hit, -1 otherwise
	decoded     int64          // decoded wire-stream bytes (budget charge)
}

// salvageBody decodes as many classes as possible from one container
// body, quarantining damaged streams up front and stopping at the first
// class that reads damaged or inconsistent data.
func salvageBody(opts Options, o UnpackOpts, body []byte, checked bool) chunkSalvage {
	r, quarantined := streams.NewSalvageReader(body, o.Concurrency, o.MaxDecodedBytes, checked)
	cs := chunkSalvage{declared: -1, abortAt: -1, quarantined: quarantined, decoded: r.DecodedBytes()}
	u := newUnpacker(opts, r)
	if opts.Preload {
		preloadUnpacker(u)
	}
	count, err := u.meta.Uint()
	if err != nil {
		cs.abort = asCorrupt(sMeta, err)
		return cs
	}
	maxClasses := effectiveMaxClasses(o)
	if count > uint64(maxClasses) {
		cs.abort = corrupt.TooLarge(sMeta, -1, "class count %d exceeds cap %d", count, maxClasses)
		return cs
	}
	cs.declared = int(count)
	for i := uint64(0); i < count; i++ {
		cf, err := u.class()
		if err != nil {
			cs.abort = asCorrupt(sMeta, err)
			cs.abortAt = int(i)
			break
		}
		cs.classes = append(cs.classes, cf)
	}
	return cs
}

// Salvage decodes as much of a packed archive as the damage allows,
// instead of failing on the first corrupt byte the way Unpack does.
// Checksum-failing streams (version 2 and later) and streams whose
// payload cannot be decoded are quarantined up front; classes are then
// decoded sequentially until one reads damaged or inconsistent data,
// and every class completed before that point is returned. Version-3
// chunks are isolated failure domains: a damaged chunk costs only its
// own classes, and decoding resumes at the next chunk boundary.
//
// The error return is reserved for inputs that are not a packed archive
// at all (bad magic, unknown version, undecodable scheme): the 6-byte
// header is the root of trust, and without it there is nothing to
// salvage against.
func Salvage(data []byte, o UnpackOpts) (*SalvageResult, error) {
	opts, err := header(data)
	if err != nil {
		return nil, err
	}
	if data[4] == Version3 {
		return salvageV3(data, opts, o), nil
	}
	cs := salvageBody(opts, o, data[6:], data[4] != Version1)
	res := &SalvageResult{
		Version:     data[4],
		Classes:     cs.classes,
		Quarantined: cs.quarantined,
		Abort:       cs.abort,
		AbortClass:  cs.abortAt,
	}
	if cs.declared >= 0 {
		res.TotalClasses = cs.declared
	}
	return res, nil
}

// salvageV3 walks the chunk framing sequentially — the framing, not the
// index, drives recovery, so a destroyed index costs no classes — and
// salvages each chunk in isolation. The shared decoded-bytes budget is
// charged per chunk like Unpack does.
func salvageV3(data []byte, opts Options, o UnpackOpts) *SalvageResult {
	res := &SalvageResult{Version: Version3, AbortClass: -1}
	ix, ixErr := ReadIndex(data, o)
	if ixErr != nil {
		res.V3Damage = append(res.V3Damage, V3Damage{Chunk: -1, Err: asCorrupt(sIndex, ixErr)})
	}
	budget := effectiveBudget(o)
	maxClasses := effectiveMaxClasses(o)
	pos := 6
	declaredSum := 0
	for ci := 0; ; ci++ {
		v, w, err := varint.Uint(data[pos:])
		if err != nil {
			res.V3Damage = append(res.V3Damage,
				V3Damage{Chunk: -1, Err: corrupt.Errorf(sChunks, int64(pos), "chunk %d length: %v", ci, err)})
			break
		}
		pos += w
		if v == 0 {
			break
		}
		if v > uint64(len(data)-pos) {
			res.V3Damage = append(res.V3Damage,
				V3Damage{Chunk: -1, Err: corrupt.Errorf(sChunks, int64(pos), "chunk %d body truncated", ci)})
			break
		}
		body := data[pos : pos+int(v)]
		pos += int(v)
		if budget < 1 {
			res.V3Damage = append(res.V3Damage, V3Damage{Chunk: -1,
				Err: corrupt.TooLarge(sChunks, int64(pos), "decoded budget exhausted before chunk %d", ci)})
			break
		}
		if len(res.Classes) >= maxClasses {
			res.V3Damage = append(res.V3Damage, V3Damage{Chunk: -1,
				Err: corrupt.TooLarge(sChunks, int64(pos), "class cap %d reached before chunk %d", maxClasses, ci)})
			break
		}
		co := o
		co.MaxDecodedBytes = budget
		co.MaxClassCount = maxClasses - len(res.Classes)
		cs := salvageBody(opts, co, body, true)
		budget -= cs.decoded
		for _, q := range cs.quarantined {
			if q != cs.abort {
				res.V3Damage = append(res.V3Damage, V3Damage{Chunk: ci, Err: q})
			}
		}
		res.Classes = append(res.Classes, cs.classes...)
		if cs.declared >= 0 {
			declaredSum += cs.declared
		}
		if cs.abort != nil {
			lost := 0
			if cs.declared >= 0 {
				lost = cs.declared - len(cs.classes)
			}
			res.V3Damage = append(res.V3Damage, V3Damage{Chunk: ci, Err: cs.abort, ClassesLost: lost})
		}
	}
	total := declaredSum
	if total > maxClasses {
		// Several aborting chunks can each declare close to the cap; the
		// sum of their claims is not evidence of real classes beyond it.
		total = maxClasses
	}
	if ixErr == nil {
		// The index is authoritative when it parses: it also counts
		// chunks the framing walk never reached.
		total = ix.NumClasses()
	}
	if total < len(res.Classes) {
		// A lying index cannot make recovered classes count as lost.
		total = len(res.Classes)
	}
	res.TotalClasses = total
	attributed := 0
	for _, d := range res.V3Damage {
		attributed += d.ClassesLost
	}
	if un := total - len(res.Classes) - attributed; un > 0 {
		if len(res.V3Damage) == 0 {
			// The framing walk ended cleanly (e.g. a zeroed length uvarint
			// reads as the sentinel) yet the index counts more classes:
			// report the premature end itself.
			res.V3Damage = append(res.V3Damage, V3Damage{Chunk: -1,
				Err: corrupt.Errorf(sChunks, int64(pos), "chunk framing ends early: %d classes unaccounted for", un)})
		}
		res.V3Damage[len(res.V3Damage)-1].ClassesLost += un
	}
	return res
}

// asCorrupt normalizes any decode failure to a *corrupt.Error, tagging
// errors from outside the taxonomy with the stream they surfaced in.
func asCorrupt(stream string, err error) *corrupt.Error {
	if ce, ok := corrupt.As(err); ok {
		return ce
	}
	return corrupt.New(stream, -1, err)
}
