package core

import (
	"bytes"
	"fmt"
	"testing"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/refs"
	"classpack/internal/strip"
	"classpack/internal/synth"
)

// buildTestClasses assembles a small multi-class "application" exercising
// shared packages, method/field references of every kind, all constant
// types, exception handlers, switches, and inner classes.
func buildTestClasses(t testing.TB) []*classfile.ClassFile {
	t.Helper()
	var cfs []*classfile.ClassFile

	// com/acme/util/Helper: static utilities, string and double constants.
	{
		b := classfile.NewBuilder("com/acme/util/Helper", "java/lang/Object",
			classfile.AccPublic|classfile.AccSuper)
		f := b.AddField(classfile.AccPublic|classfile.AccStatic|classfile.AccFinal, "VERSION", "Ljava/lang/String;")
		b.AttachConstantValue(f, b.String("1.0.2"))
		fd := b.AddField(classfile.AccPublic|classfile.AccStatic, "SCALE", "D")
		b.AttachConstantValue(fd, b.Double(2.5))

		m := b.AddMethod(classfile.AccPublic|classfile.AccStatic, "clamp", "(II)I")
		a := bytecode.NewAssembler()
		big := a.NewLabel()
		a.Local(bytecode.Iload, 0)
		a.Local(bytecode.Iload, 1)
		a.Branch(bytecode.IfIcmpgt, big)
		a.Local(bytecode.Iload, 0)
		a.Op(bytecode.Ireturn)
		a.Bind(big)
		a.Local(bytecode.Iload, 1)
		a.Op(bytecode.Ireturn)
		code, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		b.AttachCode(m, &classfile.CodeAttr{MaxStack: 2, MaxLocals: 2, Code: code})
		cf, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		cfs = append(cfs, cf)
	}

	// com/acme/app/Main: calls Helper, uses every ldc type, switches,
	// handlers, interface calls, arrays.
	{
		b := classfile.NewBuilder("com/acme/app/Main", "java/lang/Object",
			classfile.AccPublic|classfile.AccSuper)
		b.AddInterface("java/lang/Runnable")
		fCount := b.Fieldref("com/acme/app/Main", "count", "I")
		b.AddField(classfile.AccPrivate, "count", "I")
		fStatic := b.Fieldref("com/acme/app/Main", "shared", "J")
		b.AddField(classfile.AccPrivate|classfile.AccStatic, "shared", "J")
		mClamp := b.Methodref("com/acme/util/Helper", "clamp", "(II)I")
		mRun := b.InterfaceMethodref("java/lang/Runnable", "run", "()V")
		mInit := b.Methodref("java/lang/Object", "<init>", "()V")
		cStr := b.String("the quick brown fox")
		cInt := b.Int(123456)
		cFloat := b.Float(3.5)
		cLong := b.Long(1 << 40)
		cDouble := b.Double(0.125)
		exc := b.Class("java/lang/Exception")

		ctor := b.AddMethod(classfile.AccPublic, "<init>", "()V")
		a := bytecode.NewAssembler()
		a.Local(bytecode.Aload, 0)
		a.CP(bytecode.Invokespecial, mInit)
		a.Op(bytecode.Return)
		code, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		b.AttachCode(ctor, &classfile.CodeAttr{MaxStack: 1, MaxLocals: 1, Code: code})

		run := b.AddMethod(classfile.AccPublic, "run", "()V")
		a = bytecode.NewAssembler()
		l1, l2, l3, def, end := a.NewLabel(), a.NewLabel(), a.NewLabel(), a.NewLabel(), a.NewLabel()
		hStart, hEnd, hCatch := a.NewLabel(), a.NewLabel(), a.NewLabel()
		a.Bind(hStart)
		a.Ldc(uint16(cInt))
		a.Ldc(uint16(cFloat))
		a.Op(bytecode.F2i)
		a.Op(bytecode.Iadd) // int+int after conversion
		a.Local(bytecode.Istore, 1)
		a.Ldc2(cLong)
		a.CP(bytecode.Putstatic, fStatic)
		a.Ldc2(cDouble)
		a.Op(bytecode.D2i)
		a.Local(bytecode.Istore, 2)
		a.Ldc(uint16(cStr))
		a.Op(bytecode.Pop)
		a.Local(bytecode.Aload, 0)
		a.CP(bytecode.Getfield, fCount)
		a.Local(bytecode.Iload, 1)
		a.CP(bytecode.Invokestatic, mClamp)
		a.TableSwitch(0, []bytecode.Label{l1, l2, l3}, def)
		a.Bind(l1)
		a.Local(bytecode.Aload, 0)
		a.InvokeInterface(mRun, 1)
		a.Branch(bytecode.Goto, end)
		a.Bind(l2)
		a.Local(bytecode.Aload, 0)
		a.Op(bytecode.Dup)
		a.CP(bytecode.Getfield, fCount)
		a.Op(bytecode.Iconst1)
		a.Op(bytecode.Iadd)
		a.CP(bytecode.Putfield, fCount)
		a.Branch(bytecode.Goto, end)
		a.Bind(l3)
		a.Op(bytecode.Iconst3)
		a.NewArray(10) // int[]
		a.Op(bytecode.Pop)
		a.CP(bytecode.Anewarray, b.Class("java/lang/String"))
		// anewarray needs a count; rearrange: push count first.
		a.Op(bytecode.Pop)
		a.Branch(bytecode.Goto, end)
		a.Bind(def)
		a.Local(bytecode.Iload, 2)
		a.LookupSwitch([]int32{-100, 7, 2000}, []bytecode.Label{end, end, end}, end)
		a.Bind(hEnd)
		a.Bind(hCatch)
		a.Op(bytecode.Pop) // drop exception
		a.Bind(end)
		a.Op(bytecode.Return)
		code, err = a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		attr := &classfile.CodeAttr{MaxStack: 6, MaxLocals: 3, Code: code}
		// Handler range over the front of the method.
		insns, err := bytecode.Decode(code)
		if err != nil {
			t.Fatal(err)
		}
		lastOff := insns[len(insns)-1].Offset
		attr.Handlers = []classfile.ExceptionHandler{
			{StartPC: 0, EndPC: uint16(lastOff / 2), HandlerPC: uint16(lastOff), CatchType: exc},
			{StartPC: 0, EndPC: uint16(lastOff / 3), HandlerPC: uint16(lastOff)},
		}
		b.AttachCode(run, attr)
		b.AttachExceptions(run, []string{"java/io/IOException", "java/lang/InterruptedException"})

		abs := b.AddMethod(classfile.AccPublic|classfile.AccAbstract, "pending",
			"(J[Ljava/lang/String;)Lcom/acme/util/Helper;")
		_ = abs

		b.CF.Attrs = append(b.CF.Attrs, &classfile.InnerClassesAttr{
			Entries: []classfile.InnerClass{{
				Inner:       b.Class("com/acme/app/Main$Inner"),
				Outer:       b.CF.ThisClass,
				InnerName:   b.Utf8("Inner"),
				AccessFlags: classfile.AccPublic | classfile.AccStatic,
			}},
		})
		b.CF.Attrs[len(b.CF.Attrs)-1].(*classfile.InnerClassesAttr).NameIndex = b.Utf8("InnerClasses")

		cf, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		cfs = append(cfs, cf)
	}

	// com/acme/app/Main$Inner: synthetic member, deprecated method.
	{
		b := classfile.NewBuilder("com/acme/app/Main$Inner", "com/acme/app/Main",
			classfile.AccPublic|classfile.AccSuper)
		f := b.AddField(classfile.AccPrivate, "this$0", "Lcom/acme/app/Main;")
		sa := &classfile.SyntheticAttr{}
		sa.NameIndex = b.Utf8("Synthetic")
		f.Attrs = append(f.Attrs, sa)
		m := b.AddMethod(classfile.AccPublic, "legacy", "()V")
		da := &classfile.DeprecatedAttr{}
		da.NameIndex = b.Utf8("Deprecated")
		m.Attrs = append(m.Attrs, da)
		a := bytecode.NewAssembler()
		a.Op(bytecode.Return)
		code, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		b.AttachCode(m, &classfile.CodeAttr{MaxStack: 0, MaxLocals: 1, Code: code})
		cf, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		cfs = append(cfs, cf)
	}
	return cfs
}

// strippedBytes strips and serializes the classfiles.
func strippedBytes(t testing.TB, cfs []*classfile.ClassFile) [][]byte {
	t.Helper()
	if err := strip.ApplyAll(cfs, strip.Options{}); err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(cfs))
	for i, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = data
	}
	return out
}

func roundTrip(t *testing.T, opts Options) {
	t.Helper()
	cfs := buildTestClasses(t)
	want := strippedBytes(t, cfs)
	packed, err := Pack(cfs, opts)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	back, err := Unpack(packed)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if len(back) != len(cfs) {
		t.Fatalf("got %d classes, want %d", len(back), len(cfs))
	}
	for i, cf := range back {
		if err := classfile.Verify(cf); err != nil {
			t.Fatalf("class %d: verify: %v", i, err)
		}
		got, err := classfile.Write(cf)
		if err != nil {
			t.Fatalf("class %d: write: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("class %d (%s): %d-byte output differs from %d-byte stripped input",
				i, cf.ThisClassName(), len(got), len(want[i]))
		}
	}
}

func TestRoundTripDefault(t *testing.T) { roundTrip(t, DefaultOptions()) }

func TestRoundTripAllOptionCombos(t *testing.T) {
	for _, scheme := range []refs.Scheme{refs.Simple, refs.Basic, refs.MTFBasic,
		refs.MTFTransients, refs.MTFContext, refs.MTFFull} {
		for _, ss := range []bool{false, true} {
			for _, comp := range []bool{false, true} {
				opts := Options{Scheme: scheme, StackState: ss, Compress: comp}
				t.Run(fmt.Sprintf("%v/ss=%v/z=%v", scheme, ss, comp), func(t *testing.T) {
					roundTrip(t, opts)
				})
			}
		}
	}
}

func TestPackRejectsUndecodableScheme(t *testing.T) {
	cfs := buildTestClasses(t)
	strippedBytes(t, cfs)
	for _, s := range []refs.Scheme{refs.Freq, refs.Cache} {
		if _, err := Pack(cfs, Options{Scheme: s, Compress: true}); err == nil {
			t.Errorf("Pack with %v succeeded", s)
		}
	}
}

func TestPackedSmallerThanFlateOfFiles(t *testing.T) {
	cfs := buildTestClasses(t)
	want := strippedBytes(t, cfs)
	packed, err := Pack(cfs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range want {
		total += len(d)
	}
	if len(packed) >= total {
		t.Fatalf("packed %d bytes not smaller than raw %d", len(packed), total)
	}
}

func TestUnpackErrors(t *testing.T) {
	cfs := buildTestClasses(t)
	strippedBytes(t, cfs)
	packed, err := Pack(cfs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack(nil); err == nil {
		t.Error("Unpack(nil) succeeded")
	}
	if _, err := Unpack([]byte("XXXXXX")); err == nil {
		t.Error("Unpack of junk succeeded")
	}
	bad := append([]byte(nil), packed...)
	bad[4] = 99
	if _, err := Unpack(bad); err == nil {
		t.Error("Unpack of wrong version succeeded")
	}
	if _, err := Unpack(packed[:len(packed)/2]); err == nil {
		t.Error("Unpack of truncated archive succeeded")
	}
}

func TestPackStats(t *testing.T) {
	cfs := buildTestClasses(t)
	strippedBytes(t, cfs)
	sizes, err := PackStats(cfs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var cats = map[string]bool{}
	for name, sz := range sizes {
		if sz[0] < 0 || sz[1] < 0 || sz[1] > sz[0]+16 {
			t.Errorf("stream %s: sizes %v implausible", name, sz)
		}
		cats[name[:3]] = true
	}
	for _, want := range []string{"str", "ops", "int", "ref", "msc"} {
		if !cats[want] {
			t.Errorf("no stream in category %q", want)
		}
	}
}

func TestPackDeterministic(t *testing.T) {
	cfs := buildTestClasses(t)
	strippedBytes(t, cfs)
	a, err := Pack(cfs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pack(cfs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Pack is not deterministic")
	}
}

func TestRoundTripWithPreload(t *testing.T) {
	for _, scheme := range []refs.Scheme{refs.Simple, refs.Basic, refs.MTFBasic,
		refs.MTFTransients, refs.MTFContext, refs.MTFFull} {
		opts := Options{Scheme: scheme, StackState: true, Compress: true, Preload: true}
		t.Run(scheme.String(), func(t *testing.T) { roundTrip(t, opts) })
	}
}

func TestPreloadShrinksStdlibHeavyArchives(t *testing.T) {
	// The test classes lean on java/lang and java/io heavily; preloading
	// those names should shrink the packed archive (§14 predicts a win on
	// small archives).
	cfs := buildTestClasses(t)
	strippedBytes(t, cfs)
	plain, err := Pack(cfs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Preload = true
	preloaded, err := Pack(cfs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(preloaded) >= len(plain) {
		t.Fatalf("preload did not shrink the archive: %d vs %d", len(preloaded), len(plain))
	}
}

func TestPreloadFlagTravelsInHeader(t *testing.T) {
	cfs := buildTestClasses(t)
	strippedBytes(t, cfs)
	opts := DefaultOptions()
	opts.Preload = true
	packed, err := Pack(cfs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if decodeOptions(packed[5]) != opts {
		t.Fatalf("header options = %+v, want %+v", decodeOptions(packed[5]), opts)
	}
	// Decoding uses the header bit; no options are supplied to Unpack.
	if _, err := Unpack(packed); err != nil {
		t.Fatal(err)
	}
}

func TestLargeCorpusRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("large corpus round trip skipped in -short mode")
	}
	p, err := synth.ProfileByName("202_jess")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(cfs))
	for i, cf := range cfs {
		if want[i], err = classfile.Write(cf); err != nil {
			t.Fatal(err)
		}
	}
	packed, err := Pack(cfs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	for i, cf := range back {
		got, err := classfile.Write(cf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("class %d differs on a large corpus", i)
		}
	}
}

func TestEmptyArchive(t *testing.T) {
	packed, err := Pack(nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty archive decoded %d classes", len(out))
	}
}
