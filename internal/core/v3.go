// Version-3 container: the random-access layout. Classes are grouped
// into chunks of Options.ChunkClasses; each chunk is encoded from reset
// reference models (fresh MTF pools, §5) into its own checked streams
// container — exactly the version-2 body, including the per-stream and
// trailer CRC32Cs — so chunks decode independently and damage stays
// chunk-local. After the chunks comes a seekable index mapping every
// class name to its (chunk, ordinal) with per-chunk byte ranges, so one
// class extracts in O(chunk) decode work and bounded memory.
//
// Layout after the common 6-byte header (magic, version=3, options):
//
//	repeat:  uvarint(len(body)) ‖ body     one checked container per chunk
//	uvarint(0)                             end-of-chunks sentinel
//	index blob                             coding byte ‖ uvarint(rawLen) ‖ payload
//	crc32c(index blob)                     4 bytes, big-endian, Castagnoli
//	uint64be(len(index blob))              8 bytes
//	"CJPX"                                 footer magic
//
// The raw (pre-DEFLATE) index is all varints: chunkClasses, chunk count,
// then per chunk {absolute body offset, body length, class count}, then
// the class count followed by every class name (length-prefixed) in
// archive order. The footer is fixed-width so a reader can find the
// index from the end of the file with two reads.
package core

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"classpack/internal/archive"
	"classpack/internal/classfile"
	"classpack/internal/corrupt"
	"classpack/internal/encoding/varint"
	"classpack/internal/par"
	"classpack/internal/streams"
)

// Section names of the version-3 container structure in corrupt errors.
const (
	sChunks = "chunks" // the chunk length-prefix framing
	sIndex  = "index"  // the trailing class index
	sFooter = "footer" // the fixed-width footer
)

// indexMagic closes every version-3 archive.
var indexMagic = [4]byte{'C', 'J', 'P', 'X'}

// footerSize is the fixed tail: 8-byte big-endian index length plus the
// footer magic. The index blob's CRC32C sits immediately before it.
const footerSize = 8 + 4

// Index blob codings (mirroring the stream codings: DEFLATE or stored).
const (
	idxFlate byte = 0
	idxStore byte = 1
)

// chunkBodySlack bounds how much larger than the remaining decode budget
// a streamed chunk body may claim to be: encoded streams never exceed
// their raw size (store is the fallback coding), so a valid body is at
// most the decoded bytes plus directory overhead (names, varints, CRCs).
const chunkBodySlack = 1 << 16

// v3CRC is the CRC32C (Castagnoli) table for the index checksum, the
// same polynomial the checked stream containers use.
var v3CRC = crc32.MakeTable(crc32.Castagnoli)

// ChunkInfo locates one chunk: the absolute byte range of its container
// body within the archive and how many classes it holds.
type ChunkInfo struct {
	Off     int64 // body offset from the start of the archive
	Len     int64 // body length in bytes
	Classes int
}

// Index is the version-3 class index: where every chunk lives and which
// classes it holds, in archive order.
type Index struct {
	// ChunkClasses is the encoder's classes-per-chunk knob (the last
	// chunk may hold fewer).
	ChunkClasses int
	Chunks       []ChunkInfo
	// Names are all class binary names in archive order.
	Names []string

	starts  []int          // starts[i] = archive ordinal of chunk i's first class
	byName  map[string]int // name -> archive ordinal (first occurrence)
	blobOff int64          // absolute offset of the index blob
}

// finalize builds the derived lookup tables after Chunks/Names are set.
func (ix *Index) finalize() {
	ix.starts = make([]int, len(ix.Chunks)+1)
	for i, ch := range ix.Chunks {
		ix.starts[i+1] = ix.starts[i] + ch.Classes
	}
	ix.byName = make(map[string]int, len(ix.Names))
	for i, n := range ix.Names {
		if _, ok := ix.byName[n]; !ok {
			ix.byName[n] = i
		}
	}
}

// NumClasses is the total class count across all chunks.
func (ix *Index) NumClasses() int { return len(ix.Names) }

// Ordinal returns the archive ordinal of the named class (its first
// occurrence, should an archive carry duplicates).
func (ix *Index) Ordinal(name string) (int, bool) {
	g, ok := ix.byName[name]
	return g, ok
}

// ChunkOf maps an archive ordinal to the chunk holding it.
func (ix *Index) ChunkOf(ordinal int) int {
	return sort.Search(len(ix.Chunks), func(i int) bool { return ix.starts[i+1] > ordinal })
}

// Start is the archive ordinal of the chunk's first class.
func (ix *Index) Start(chunk int) int { return ix.starts[chunk] }

// Locate resolves a class name to its chunk and ordinal within that
// chunk.
func (ix *Index) Locate(name string) (chunk, ord int, ok bool) {
	g, ok := ix.byName[name]
	if !ok {
		return 0, 0, false
	}
	chunk = ix.ChunkOf(g)
	return chunk, g - ix.starts[chunk], true
}

// effectiveBudget resolves the decoded-bytes cap.
func effectiveBudget(o UnpackOpts) int64 {
	if o.MaxDecodedBytes <= 0 {
		return streams.DefaultMaxDecodedBytes
	}
	return o.MaxDecodedBytes
}

// effectiveMaxClasses resolves the class-count cap.
func effectiveMaxClasses(o UnpackOpts) int {
	if o.MaxClassCount <= 0 {
		return DefaultMaxClassCount
	}
	return o.MaxClassCount
}

// EffectiveBudget resolves the decoded-bytes cap for callers outside
// the package; the delta patch decoder shares the container's limits.
func EffectiveBudget(o UnpackOpts) int64 { return effectiveBudget(o) }

// EffectiveMaxClasses resolves the class-count cap (see EffectiveBudget).
func EffectiveMaxClasses(o UnpackOpts) int { return effectiveMaxClasses(o) }

// packV3 encodes the version-3 layout. Chunks are mutually independent
// (each starts from reset models), so chunk encoding itself fans out
// over Options.Concurrency workers; the assembly order is fixed, so the
// output is byte-identical for every worker count.
func packV3(cfs []*classfile.ClassFile, opts Options) ([]byte, error) {
	chunkN := opts.ChunkClasses
	if chunkN <= 0 {
		chunkN = DefaultChunkClasses
	}
	numChunks := (len(cfs) + chunkN - 1) / chunkN
	// With several chunks in flight the per-chunk stream trial coding
	// runs serial — nesting worker pools would oversubscribe — while a
	// single-chunk archive keeps the full worker budget inside it.
	inner := opts.Concurrency
	if numChunks > 1 {
		inner = 1
	}
	bodies := make([][]byte, numChunks)
	if err := par.Do(opts.Concurrency, numChunks, func(i int) error {
		copts := opts
		copts.Concurrency = inner
		body, err := encodeMonolith(cfs[i*chunkN:min((i+1)*chunkN, len(cfs))], copts, Version2)
		if err != nil {
			return err
		}
		bodies[i] = body
		return nil
	}); err != nil {
		return nil, err
	}

	total := 6 + 1 + footerSize + 4
	for _, b := range bodies {
		total += len(b) + varint.MaxLen64
	}
	out := make([]byte, 0, total)
	out = append(out, Magic[:]...)
	out = append(out, Version3, encodeOptions(opts))
	ix := &Index{ChunkClasses: chunkN, Chunks: make([]ChunkInfo, 0, numChunks)}
	for i, body := range bodies {
		out = varint.AppendUint(out, uint64(len(body)))
		ix.Chunks = append(ix.Chunks, ChunkInfo{
			Off:     int64(len(out)),
			Len:     int64(len(body)),
			Classes: min((i+1)*chunkN, len(cfs)) - i*chunkN,
		})
		out = append(out, body...)
	}
	out = varint.AppendUint(out, 0)
	ix.Names = make([]string, len(cfs))
	for i, cf := range cfs {
		ix.Names[i] = cf.ThisClassName()
	}
	blob := encodeIndex(ix)
	out = append(out, blob...)
	out = appendCRC32(out, crc32.Checksum(blob, v3CRC))
	out = appendU64BE(out, uint64(len(blob)))
	return append(out, indexMagic[:]...), nil
}

func appendCRC32(out []byte, c uint32) []byte {
	return append(out, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
}

func appendU64BE(out []byte, v uint64) []byte {
	return append(out, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readU32BE(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func readU64BE(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// encodeIndex serializes the index and wraps it in the blob framing
// (coding byte, raw length, payload), DEFLATE-compressed when smaller.
func encodeIndex(ix *Index) []byte {
	var raw []byte
	raw = varint.AppendUint(raw, uint64(ix.ChunkClasses))
	raw = varint.AppendUint(raw, uint64(len(ix.Chunks)))
	for _, ch := range ix.Chunks {
		raw = varint.AppendUint(raw, uint64(ch.Off))
		raw = varint.AppendUint(raw, uint64(ch.Len))
		raw = varint.AppendUint(raw, uint64(ch.Classes))
	}
	raw = varint.AppendUint(raw, uint64(len(ix.Names)))
	for _, n := range ix.Names {
		raw = varint.AppendUint(raw, uint64(len(n)))
		raw = append(raw, n...)
	}
	payload, coding := raw, idxStore
	if comp, err := archive.Flate(raw); err == nil && len(comp) < len(raw) {
		payload, coding = comp, idxFlate
	}
	blob := make([]byte, 0, len(payload)+varint.MaxLen64+1)
	blob = append(blob, coding)
	blob = varint.AppendUint(blob, uint64(len(raw)))
	return append(blob, payload...)
}

// ReadIndex parses the trailing class index of an in-memory version-3
// archive. Failures caused by the bytes are *corrupt.Error values;
// resource-cap violations (an index claiming a decoded size beyond
// MaxDecodedBytes, or more classes than MaxClassCount) additionally
// wrap corrupt.ErrTooLarge.
func ReadIndex(data []byte, o UnpackOpts) (*Index, error) {
	if _, err := header(data); err != nil {
		return nil, err
	}
	if data[4] != Version3 {
		return nil, corrupt.Errorf(sHeader, 4, "version %d archive has no class index", data[4])
	}
	return ReadIndexAt(bytes.NewReader(data), int64(len(data)), o)
}

// ReadIndexAt reads the class index of a version-3 archive through an
// io.ReaderAt without touching any chunk: one read for the fixed-width
// footer, one for the index blob. The caller is expected to have
// validated the 6-byte header (see ParseHeader). Short reads are
// reported as corruption — against a regular file they mean truncation.
func ReadIndexAt(r io.ReaderAt, size int64, o UnpackOpts) (*Index, error) {
	if size < 6+1+footerSize+4+2 {
		return nil, corrupt.Errorf(sFooter, size, "archive too short for a version-3 footer")
	}
	var foot [footerSize]byte
	if _, err := r.ReadAt(foot[:], size-footerSize); err != nil {
		return nil, corrupt.Errorf(sFooter, size-footerSize, "reading footer: %v", err)
	}
	if !bytes.Equal(foot[8:12], indexMagic[:]) {
		return nil, corrupt.Errorf(sFooter, size-4, "bad footer magic %q", foot[8:12])
	}
	blobLen := readU64BE(foot[:8])
	// The blob sits between the header + at least one sentinel byte and
	// its own CRC + footer.
	if blobLen < 2 || blobLen > uint64(size-footerSize-4-7) {
		return nil, corrupt.Errorf(sFooter, size-footerSize, "implausible index length %d for %d-byte archive", blobLen, size)
	}
	blobOff := size - footerSize - 4 - int64(blobLen)
	buf := make([]byte, blobLen+4)
	if _, err := r.ReadAt(buf, blobOff); err != nil {
		return nil, corrupt.Errorf(sIndex, blobOff, "reading index: %v", err)
	}
	blob := buf[:blobLen]
	if got, want := crc32.Checksum(blob, v3CRC), readU32BE(buf[blobLen:]); got != want {
		return nil, corrupt.Errorf(sIndex, blobOff, "index checksum %08x, want %08x", got, want)
	}
	raw, err := decodeIndexBlob(blob, o)
	if err != nil {
		return nil, err
	}
	ix, err := parseIndexRaw(raw, blobOff-1, o)
	if err != nil {
		return nil, err
	}
	ix.blobOff = blobOff
	return ix, nil
}

// decodeIndexBlob undoes the blob framing: coding byte, declared raw
// length (charged against MaxDecodedBytes before inflation), payload.
func decodeIndexBlob(blob []byte, o UnpackOpts) ([]byte, error) {
	coding := blob[0]
	rawLen, n, err := varint.Uint(blob[1:])
	if err != nil {
		return nil, corrupt.Errorf(sIndex, 1, "index raw length: %v", err)
	}
	payload := blob[1+n:]
	if rawLen > uint64(effectiveBudget(o)) {
		return nil, corrupt.TooLarge(sIndex, 0,
			"index declares %d decoded bytes, budget %d", rawLen, effectiveBudget(o))
	}
	switch coding {
	case idxStore:
		if uint64(len(payload)) != rawLen {
			return nil, corrupt.Errorf(sIndex, 0, "stored index is %d bytes, declared %d", len(payload), rawLen)
		}
		return payload, nil
	case idxFlate:
		raw, err := archive.InflateLimit(payload, int64(rawLen))
		if err != nil {
			return nil, corrupt.Errorf(sIndex, 0, "inflate index: %v", err)
		}
		if uint64(len(raw)) != rawLen {
			return nil, corrupt.Errorf(sIndex, 0, "index inflated to %d bytes, declared %d", len(raw), rawLen)
		}
		return raw, nil
	}
	return nil, corrupt.Errorf(sIndex, 0, "unknown index coding %d", coding)
}

// parseIndexRaw parses the decompressed index. chunkLimit is the last
// byte position a chunk body may occupy (the byte before the index
// blob); every declared range is validated against it before use.
func parseIndexRaw(raw []byte, chunkLimit int64, o UnpackOpts) (*Index, error) {
	pos := 0
	next := func(what string) (uint64, error) {
		v, n, err := varint.Uint(raw[pos:])
		if err != nil {
			return 0, corrupt.Errorf(sIndex, int64(pos), "%s: %v", what, err)
		}
		pos += n
		return v, nil
	}
	chunkClasses, err := next("chunk size")
	if err != nil {
		return nil, err
	}
	if chunkClasses > math.MaxInt32 {
		return nil, corrupt.Errorf(sIndex, int64(pos), "implausible chunk size %d", chunkClasses)
	}
	numChunks, err := next("chunk count")
	if err != nil {
		return nil, err
	}
	// Every chunk entry takes at least 3 varint bytes, so a larger count
	// is a lie; the bound also keeps the preallocation proportional to
	// real input.
	if numChunks > uint64(len(raw)-pos)/3+1 {
		return nil, corrupt.Errorf(sIndex, int64(pos),
			"implausible chunk count %d for %d index bytes", numChunks, len(raw))
	}
	maxClasses := effectiveMaxClasses(o)
	ix := &Index{ChunkClasses: int(chunkClasses), Chunks: make([]ChunkInfo, 0, numChunks)}
	minOff := int64(7) // header plus at least one length-prefix byte
	totalClasses := 0
	for i := uint64(0); i < numChunks; i++ {
		off, err := next("chunk offset")
		if err != nil {
			return nil, err
		}
		length, err := next("chunk length")
		if err != nil {
			return nil, err
		}
		count, err := next("chunk class count")
		if err != nil {
			return nil, err
		}
		if off < uint64(minOff) || off > uint64(chunkLimit) || length > uint64(chunkLimit)-off {
			return nil, corrupt.Errorf(sIndex, int64(pos),
				"chunk %d range [%d,+%d) outside [%d,%d)", i, off, length, minOff, chunkLimit)
		}
		if count == 0 || count > uint64(maxClasses-totalClasses) {
			return nil, corrupt.TooLarge(sIndex, int64(pos),
				"chunk %d class count %d exceeds remaining cap %d", i, count, maxClasses-totalClasses)
		}
		totalClasses += int(count)
		ix.Chunks = append(ix.Chunks, ChunkInfo{Off: int64(off), Len: int64(length), Classes: int(count)})
		minOff = int64(off) + int64(length) + 1 // plus the next length prefix
	}
	numNames, err := next("class count")
	if err != nil {
		return nil, err
	}
	if numNames != uint64(totalClasses) {
		return nil, corrupt.Errorf(sIndex, int64(pos),
			"index lists %d names for %d chunked classes", numNames, totalClasses)
	}
	// Each name entry takes at least its 1-byte length prefix.
	if numNames > uint64(len(raw)-pos) {
		return nil, corrupt.Errorf(sIndex, int64(pos),
			"implausible name count %d for %d index bytes", numNames, len(raw)-pos)
	}
	ix.Names = make([]string, 0, numNames)
	for i := uint64(0); i < numNames; i++ {
		nameLen, err := next("name length")
		if err != nil {
			return nil, err
		}
		if nameLen > uint64(len(raw)-pos) {
			return nil, corrupt.Errorf(sIndex, int64(pos), "truncated name %d", i)
		}
		ix.Names = append(ix.Names, string(raw[pos:pos+int(nameLen)]))
		pos += int(nameLen)
	}
	if pos != len(raw) {
		return nil, corrupt.Errorf(sIndex, int64(pos), "%d trailing index bytes", len(raw)-pos)
	}
	ix.finalize()
	return ix, nil
}

// DecodeChunk decodes one container body — a version-3 chunk, or the
// whole body of a version-1/2 archive — invoking visit with each class
// and its ordinal within the body. checked selects the container layout
// (true for every version-3 chunk and version-2 body). It returns the
// decoded wire-stream bytes the body expanded to, which is what
// MaxDecodedBytes budgets; callers decoding several chunks charge a
// shared budget by shrinking o.MaxDecodedBytes as they go.
func DecodeChunk(opts Options, body []byte, checked bool, o UnpackOpts, visit func(ord int, cf *classfile.ClassFile) error) (int64, error) {
	var r *streams.Reader
	var err error
	if checked {
		r, err = streams.NewCheckedReaderLimit(body, o.Concurrency, o.MaxDecodedBytes)
	} else {
		r, err = streams.NewReaderLimit(body, o.Concurrency, o.MaxDecodedBytes)
	}
	if err != nil {
		return 0, err
	}
	u := newUnpacker(opts, r)
	if opts.Preload {
		preloadUnpacker(u)
	}
	count, err := u.meta.Uint()
	if err != nil {
		return r.DecodedBytes(), fmt.Errorf("core: class count: %w", err)
	}
	maxClasses := effectiveMaxClasses(o)
	if count > uint64(maxClasses) {
		return r.DecodedBytes(), corrupt.TooLarge(sMeta, -1, "class count %d exceeds cap %d", count, maxClasses)
	}
	for i := uint64(0); i < count; i++ {
		cf, err := u.class()
		if err != nil {
			return r.DecodedBytes(), fmt.Errorf("core: unpack class %d: %w", i, err)
		}
		if err := visit(int(i), cf); err != nil {
			return r.DecodedBytes(), err
		}
	}
	return r.DecodedBytes(), nil
}

// unpackV3 sequentially decodes an in-memory version-3 archive: the
// index is parsed (and so validated) first, then each chunk is decoded
// in order and cross-checked against it — framing offsets, class counts
// and class names must all agree. The decoded-bytes budget is shared
// across chunks.
func unpackV3(data []byte, o UnpackOpts, visit func(*classfile.ClassFile) error) error {
	opts, err := header(data)
	if err != nil {
		return err
	}
	ix, err := ReadIndex(data, o)
	if err != nil {
		return err
	}
	budget := effectiveBudget(o)
	pos := 6
	g := 0
	for ci, ch := range ix.Chunks {
		n, w, err := varint.Uint(data[pos:])
		if err != nil {
			return corrupt.Errorf(sChunks, int64(pos), "chunk %d length: %v", ci, err)
		}
		pos += w
		if int64(pos) != ch.Off || int64(n) != ch.Len {
			return corrupt.Errorf(sIndex, int64(pos),
				"index places chunk %d at [%d,+%d), framing says [%d,+%d)", ci, ch.Off, ch.Len, pos, n)
		}
		if n > uint64(len(data)-pos) {
			return corrupt.Errorf(sChunks, int64(pos), "chunk %d body truncated", ci)
		}
		body := data[pos : pos+int(n)]
		pos += int(n)
		if budget < 1 {
			return corrupt.TooLarge(sChunks, int64(pos), "decoded budget exhausted before chunk %d", ci)
		}
		co := o
		co.MaxDecodedBytes = budget
		decoded := 0
		db, err := DecodeChunk(opts, body, true, co, func(ord int, cf *classfile.ClassFile) error {
			if g+ord >= len(ix.Names) {
				return corrupt.Errorf(sIndex, -1, "chunk %d decodes more classes than the index lists", ci)
			}
			if cf.ThisClassName() != ix.Names[g+ord] {
				return corrupt.Errorf(sIndex, -1,
					"chunk %d class %d is %q, index says %q", ci, ord, cf.ThisClassName(), ix.Names[g+ord])
			}
			decoded++
			return visit(cf)
		})
		if err != nil {
			return fmt.Errorf("core: unpack chunk %d: %w", ci, err)
		}
		if decoded != ch.Classes {
			return corrupt.Errorf(sIndex, -1, "chunk %d holds %d classes, index says %d", ci, decoded, ch.Classes)
		}
		g += decoded
		budget -= db
	}
	n, w, err := varint.Uint(data[pos:])
	if err != nil || n != 0 {
		return corrupt.Errorf(sChunks, int64(pos), "missing end-of-chunks sentinel")
	}
	pos += w
	if int64(pos) != ix.blobOff {
		return corrupt.Errorf(sChunks, int64(pos), "%d stray bytes between chunks and index", ix.blobOff-int64(pos))
	}
	return nil
}

// PackStream encodes classfiles supplied one at a time by next (which
// signals the end with io.EOF) into a version-3 archive written to w,
// holding at most one chunk of classes in memory — the streaming
// counterpart of Pack for inputs too large to materialize. The output
// is byte-identical to Pack of the same classfiles with the same
// ChunkClasses, for every Concurrency value.
func PackStream(w io.Writer, next func() (*classfile.ClassFile, error), opts Options) error {
	if !opts.Scheme.Decodable() {
		return fmt.Errorf("core: scheme %v has no decoder", opts.Scheme)
	}
	chunkN := opts.ChunkClasses
	if chunkN <= 0 {
		chunkN = DefaultChunkClasses
	}
	hdr := append(append([]byte{}, Magic[:]...), Version3, encodeOptions(opts))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	ix := &Index{ChunkClasses: chunkN}
	pos := int64(6)
	var scratch []byte
	buf := make([]*classfile.ClassFile, 0, chunkN)
	flush := func() error {
		body, err := encodeMonolith(buf, opts, Version2)
		if err != nil {
			return err
		}
		scratch = varint.AppendUint(scratch[:0], uint64(len(body)))
		if _, err := w.Write(scratch); err != nil {
			return err
		}
		pos += int64(len(scratch))
		ix.Chunks = append(ix.Chunks, ChunkInfo{Off: pos, Len: int64(len(body)), Classes: len(buf)})
		if _, err := w.Write(body); err != nil {
			return err
		}
		pos += int64(len(body))
		for _, cf := range buf {
			ix.Names = append(ix.Names, cf.ThisClassName())
		}
		buf = buf[:0]
		return nil
	}
	for {
		cf, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		buf = append(buf, cf)
		if len(buf) == chunkN {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if len(buf) > 0 {
		if err := flush(); err != nil {
			return err
		}
	}
	var tail []byte
	tail = varint.AppendUint(tail, 0)
	blob := encodeIndex(ix)
	tail = append(tail, blob...)
	tail = appendCRC32(tail, crc32.Checksum(blob, v3CRC))
	tail = appendU64BE(tail, uint64(len(blob)))
	tail = append(tail, indexMagic[:]...)
	_, err := w.Write(tail)
	return err
}

// UnpackReader decodes an archive from a plain io.Reader, invoking
// visit as each class completes. For a version-3 archive it works
// chunk-at-a-time off the length-prefix framing, holding one chunk in
// memory, and verifies the trailing index (checksum, framing, names)
// after the last chunk; version-1/2 archives have no internal framing,
// so they are buffered whole and decoded in place. Failures caused by
// the archive bytes are *corrupt.Error values; I/O failures of r
// surface as corruption too, since a short read from an archive source
// is indistinguishable from truncation.
func UnpackReader(r io.Reader, o UnpackOpts, visit func(*classfile.ClassFile) error) error {
	br := bufio.NewReader(r)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return corrupt.Errorf(sHeader, 0, "reading archive header: %v", err)
	}
	opts, err := header(hdr[:])
	if err != nil {
		return err
	}
	if hdr[4] != Version3 {
		rest, err := io.ReadAll(br)
		if err != nil {
			return corrupt.Errorf(sHeader, 6, "reading archive: %v", err)
		}
		return UnpackStreamOpts(append(hdr[:], rest...), o, visit)
	}
	budget := effectiveBudget(o)
	maxClasses := effectiveMaxClasses(o)
	pos := int64(6)
	classes := 0
	var names []string
	var observed []ChunkInfo
	for ci := 0; ; ci++ {
		n, w, err := readUvarint(br)
		if err != nil {
			return corrupt.Errorf(sChunks, pos, "chunk %d length: %v", ci, err)
		}
		pos += int64(w)
		if n == 0 {
			break
		}
		if budget < 1 || n > uint64(budget)+chunkBodySlack {
			return corrupt.TooLarge(sChunks, pos,
				"chunk %d claims %d bytes against a remaining decode budget of %d", ci, n, budget)
		}
		body, err := readBody(br, int64(n))
		if err != nil {
			return corrupt.Errorf(sChunks, pos, "chunk %d body: %v", ci, err)
		}
		off := pos
		pos += int64(n)
		if classes >= maxClasses {
			return corrupt.TooLarge(sChunks, pos, "class cap %d reached before chunk %d", maxClasses, ci)
		}
		co := o
		co.MaxDecodedBytes = budget
		co.MaxClassCount = maxClasses - classes
		count := 0
		db, err := DecodeChunk(opts, body, true, co, func(ord int, cf *classfile.ClassFile) error {
			count++
			names = append(names, cf.ThisClassName())
			return visit(cf)
		})
		if err != nil {
			return fmt.Errorf("core: unpack chunk %d: %w", ci, err)
		}
		classes += count
		budget -= db
		observed = append(observed, ChunkInfo{Off: off, Len: int64(n), Classes: count})
	}
	tail, err := io.ReadAll(br)
	if err != nil {
		return corrupt.Errorf(sIndex, pos, "reading index: %v", err)
	}
	if len(tail) < footerSize+4+2 {
		return corrupt.Errorf(sFooter, pos, "archive ends without a version-3 footer")
	}
	foot := tail[len(tail)-footerSize:]
	if !bytes.Equal(foot[8:12], indexMagic[:]) {
		return corrupt.Errorf(sFooter, pos+int64(len(tail))-4, "bad footer magic %q", foot[8:12])
	}
	if got := readU64BE(foot[:8]); got != uint64(len(tail)-footerSize-4) {
		return corrupt.Errorf(sFooter, pos, "footer declares a %d-byte index, %d present", got, len(tail)-footerSize-4)
	}
	blob := tail[:len(tail)-footerSize-4]
	if got, want := crc32.Checksum(blob, v3CRC), readU32BE(tail[len(blob):]); got != want {
		return corrupt.Errorf(sIndex, pos, "index checksum %08x, want %08x", got, want)
	}
	raw, err := decodeIndexBlob(blob, o)
	if err != nil {
		return err
	}
	ix, err := parseIndexRaw(raw, pos-1, o)
	if err != nil {
		return err
	}
	if len(ix.Chunks) != len(observed) || len(ix.Names) != len(names) {
		return corrupt.Errorf(sIndex, -1,
			"index lists %d chunks / %d classes, archive held %d / %d",
			len(ix.Chunks), len(ix.Names), len(observed), len(names))
	}
	for i, ch := range ix.Chunks {
		if ch != observed[i] {
			return corrupt.Errorf(sIndex, -1,
				"index places chunk %d at [%d,+%d) with %d classes, archive held [%d,+%d) with %d",
				i, ch.Off, ch.Len, ch.Classes, observed[i].Off, observed[i].Len, observed[i].Classes)
		}
	}
	for i, n := range ix.Names {
		if n != names[i] {
			return corrupt.Errorf(sIndex, -1, "index names class %d %q, archive decoded %q", i, n, names[i])
		}
	}
	return nil
}

// readUvarint reads an unsigned varint byte-by-byte.
func readUvarint(br *bufio.Reader) (v uint64, n int, err error) {
	var shift uint
	for i := 0; ; i++ {
		if i >= varint.MaxLen64 {
			return 0, 0, varint.ErrOverflow
		}
		c, err := br.ReadByte()
		if err != nil {
			return 0, 0, err
		}
		if c < 0x80 {
			if i == varint.MaxLen64-1 && c > 1 {
				return 0, 0, varint.ErrOverflow
			}
			return v | uint64(c)<<shift, i + 1, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
}

// readBody reads exactly n bytes, growing the buffer with the bytes
// actually received rather than trusting the declared length with one
// up-front allocation — a truncated stream fails having allocated only
// what arrived.
func readBody(br *bufio.Reader, n int64) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, br, n); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
