package core

import (
	"classpack/internal/classfile"
	"classpack/internal/ir"
	"classpack/internal/refs"
)

// The §14 extension: "assume a standard set of preloaded references to
// frequently used package names, classes, method references and so on."
// When Options.Preload is set (recorded in the archive header), encoder
// and decoder seed their pools with the identical table below before any
// class is coded, so the most common JDK names never ship on the wire.
//
// The table is part of the format: entries may only ever be appended, and
// both sides must process them in the listed order. Most-frequent entries
// come last, landing nearest the front of the move-to-front queues.

var preloadPackages = []string{
	"java/awt", "java/util", "java/io", "java/lang",
}

var preloadSimpleNames = []string{
	"Component", "Graphics", "Math", "Integer", "Hashtable", "Vector",
	"Enumeration", "IOException", "RuntimeException", "Exception",
	"Runnable", "StringBuffer", "PrintStream", "System", "String", "Object",
}

var preloadMethodNames = []string{
	"main", "run", "size", "get", "put", "valueOf", "length", "equals",
	"hashCode", "toString", "println", "append", "<init>",
}

var preloadFieldNames = []string{
	"err", "out",
}

var preloadClassNames = []string{
	"java/awt/Component", "java/util/Hashtable", "java/util/Vector",
	"java/io/IOException", "java/lang/RuntimeException", "java/lang/Exception",
	"java/lang/Runnable", "java/lang/Math", "java/lang/Integer",
	"java/lang/StringBuffer", "java/io/PrintStream", "java/lang/System",
	"java/lang/String", "java/lang/Object",
}

var preloadDescriptors = []string{
	"(II)I", "(Ljava/lang/Object;)Z", "()Z", "()Ljava/lang/String;",
	"(Ljava/lang/String;)V", "()I", "(I)V", "()V",
}

// preloadMember pairs a member reference with the pool its uses draw from.
type preloadMember struct {
	use  opUse
	kind classfile.ConstKind
	cls  string
	name string
	desc string
}

var preloadMembers = []preloadMember{
	{useGetfield, classfile.KindFieldref, "java/lang/System", "err", "Ljava/io/PrintStream;"},
	{useGetstatic, classfile.KindFieldref, "java/lang/System", "err", "Ljava/io/PrintStream;"},
	{useGetstatic, classfile.KindFieldref, "java/lang/System", "out", "Ljava/io/PrintStream;"},
	{useStatic, classfile.KindMethodref, "java/lang/String", "valueOf", "(I)Ljava/lang/String;"},
	{useStatic, classfile.KindMethodref, "java/lang/Math", "max", "(II)I"},
	{useInterface, classfile.KindInterfaceMethodref, "java/lang/Runnable", "run", "()V"},
	{useVirtual, classfile.KindMethodref, "java/lang/Object", "toString", "()Ljava/lang/String;"},
	{useVirtual, classfile.KindMethodref, "java/lang/StringBuffer", "toString", "()Ljava/lang/String;"},
	{useVirtual, classfile.KindMethodref, "java/lang/StringBuffer", "append",
		"(Ljava/lang/String;)Ljava/lang/StringBuffer;"},
	{useVirtual, classfile.KindMethodref, "java/io/PrintStream", "println", "(I)V"},
	{useVirtual, classfile.KindMethodref, "java/io/PrintStream", "println", "(Ljava/lang/String;)V"},
	{useSpecial, classfile.KindMethodref, "java/lang/StringBuffer", "<init>", "()V"},
	{useSpecial, classfile.KindMethodref, "java/lang/Object", "<init>", "()V"},
}

// preloadClassKeys resolves the class-name table once.
func preloadClassKeys() []ir.ClassKey {
	keys := make([]ir.ClassKey, 0, len(preloadClassNames))
	for _, name := range preloadClassNames {
		k, err := ir.ClassNameToKey(name)
		if err != nil {
			//classpack:vet-allow nopanic preload tables are compile-time constants; any test run catches a bad entry
			panic("core: bad preload class " + name)
		}
		keys = append(keys, k)
	}
	return keys
}

// preloadSignatures resolves the descriptor table once.
func preloadSignatures() []ir.Signature {
	sigs := make([]ir.Signature, 0, len(preloadDescriptors))
	for _, d := range preloadDescriptors {
		sig, err := ir.DescriptorToSignature(d)
		if err != nil {
			//classpack:vet-allow nopanic preload tables are compile-time constants; any test run catches a bad entry
			panic("core: bad preload descriptor " + d)
		}
		sigs = append(sigs, sig)
	}
	return sigs
}

// forEachPreload walks the full table in canonical order, calling visit
// with the pool and canonical key of every entry.
func forEachPreload(visit func(pool poolID, key string)) {
	for _, p := range preloadPackages {
		visit(poolPackage, p)
	}
	for _, s := range preloadSimpleNames {
		visit(poolSimple, s)
	}
	for _, m := range preloadMethodNames {
		visit(poolMethodName, m)
	}
	for _, f := range preloadFieldNames {
		visit(poolFieldName, f)
	}
	for _, k := range preloadClassKeys() {
		visit(poolClass, classKeyStr(k))
	}
	for _, sig := range preloadSignatures() {
		visit(poolSig, sig.SigString())
	}
	for _, m := range preloadMembers {
		ref := preloadMemberRef(m)
		visit(memberPool(ref, m.use), memberKeyStr(ref))
	}
}

func preloadMemberRef(m preloadMember) ir.MemberRef {
	owner, err := ir.ClassNameToKey(m.cls)
	if err != nil {
		//classpack:vet-allow nopanic preload tables are compile-time constants; any test run catches a bad entry
		panic("core: bad preload member class " + m.cls)
	}
	return ir.MemberRef{Kind: m.kind, Owner: owner, Name: m.name, Desc: m.desc}
}

// preloadPacker seeds an encoder-side packer (both passes).
func preloadPacker(p *packer) {
	forEachPreload(func(pool poolID, key string) {
		if p.counting {
			p.seen[pool][key] = true
			return
		}
		//classpack:vet-allow nopanic codec tables are built from Preloadable implementations only
		p.encs[pool].(refs.Preloadable).Preload(key)
	})
}

// preloadUnpacker seeds the decoder pools and object tables.
func preloadUnpacker(u *unpacker) {
	forEachPreload(func(pool poolID, key string) {
		//classpack:vet-allow nopanic codec tables are built from Preloadable implementations only
		u.decs[pool].(refs.Preloadable).Preload(key)
	})
	for _, k := range preloadClassKeys() {
		u.classKeys[classKeyStr(k)] = k
	}
	for _, sig := range preloadSignatures() {
		u.sigs[sig.SigString()] = sig
	}
	for _, m := range preloadMembers {
		ref := preloadMemberRef(m)
		u.members[memberPool(ref, m.use)][memberKeyStr(ref)] = ref
	}
}
