package core

import (
	"bytes"
	"fmt"
	"math"

	"classpack/internal/classfile"
	"classpack/internal/ir"
	"classpack/internal/refs"
	"classpack/internal/streams"
)

// Unpack decodes a packed archive back into classfiles using all cores
// for stream decompression. Decompression is deterministic: the result
// is byte-for-byte the stripped input of Pack regardless of worker
// count.
func Unpack(data []byte) ([]*classfile.ClassFile, error) {
	return UnpackN(data, 0)
}

// UnpackN is Unpack with an explicit worker bound for stream
// decompression (0 = all cores, 1 = serial).
func UnpackN(data []byte, concurrency int) ([]*classfile.ClassFile, error) {
	var out []*classfile.ClassFile
	err := UnpackStreamN(data, concurrency, func(cf *classfile.ClassFile) error {
		out = append(out, cf)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// UnpackStream decodes the archive sequentially, invoking visit as each
// class becomes complete — the wire format is sequential (§2), so an eager
// class loader (§11) can define classes as they arrive instead of caching
// the archive. A visit error aborts decoding and is returned verbatim.
func UnpackStream(data []byte, visit func(*classfile.ClassFile) error) error {
	return UnpackStreamN(data, 0, visit)
}

// UnpackStreamN is UnpackStream with an explicit worker bound for the
// up-front stream decompression (0 = all cores, 1 = serial). Class
// decoding itself stays sequential: reference pools are stateful, so
// each class's references depend on every class before it.
func UnpackStreamN(data []byte, concurrency int, visit func(*classfile.ClassFile) error) error {
	if len(data) < 6 || !bytes.Equal(data[:4], Magic[:]) {
		return fmt.Errorf("core: not a packed archive")
	}
	if data[4] != version {
		return fmt.Errorf("core: unsupported version %d", data[4])
	}
	opts := decodeOptions(data[5])
	if !opts.Scheme.Decodable() {
		return fmt.Errorf("core: archive uses undecodable scheme %v", opts.Scheme)
	}
	r, err := streams.NewReaderN(data[6:], concurrency)
	if err != nil {
		return err
	}
	u := newUnpacker(opts, r)
	if opts.Preload {
		preloadUnpacker(u)
	}
	count, err := u.meta.Uint()
	if err != nil {
		return fmt.Errorf("core: class count: %w", err)
	}
	if count > 1<<20 {
		return fmt.Errorf("core: implausible class count %d", count)
	}
	for i := uint64(0); i < count; i++ {
		cf, err := u.class()
		if err != nil {
			return fmt.Errorf("core: unpack class %d: %w", i, err)
		}
		if err := visit(cf); err != nil {
			return err
		}
	}
	return nil
}

type unpacker struct {
	opts Options
	r    *streams.Reader
	meta *streams.RStream
	decs [numPools]refs.Decoder

	classKeys map[string]ir.ClassKey
	sigs      map[string]ir.Signature
	members   [numPools]map[string]ir.MemberRef
}

func newUnpacker(opts Options, r *streams.Reader) *unpacker {
	u := &unpacker{
		opts:      opts,
		r:         r,
		meta:      r.Stream(sMeta),
		classKeys: make(map[string]ir.ClassKey),
		sigs:      make(map[string]ir.Signature),
	}
	for i := range u.decs {
		u.decs[i], _ = refs.NewDecoder(opts.Scheme)
		u.members[i] = make(map[string]ir.MemberRef)
	}
	return u
}

// strRef decodes a reference in a pool whose objects are plain strings.
func (u *unpacker) strRef(pool poolID, cat string) (string, error) {
	key, isNew, transient, err := u.decs[pool].Decode(u.r.Stream(refStream(pool)), 0)
	if err != nil {
		return "", err
	}
	if !isNew {
		return key, nil
	}
	n, err := u.r.Stream("str." + cat + ".len").Uint()
	if err != nil {
		return "", err
	}
	raw, err := u.r.Stream("str." + cat + ".chr").Raw(int(n))
	if err != nil {
		return "", err
	}
	s := string(raw)
	u.decs[pool].Define(0, s, transient)
	return s, nil
}

func (u *unpacker) pkgRef() (string, error)    { return u.strRef(poolPackage, "pkg") }
func (u *unpacker) simpleRef() (string, error) { return u.strRef(poolSimple, "cls") }
func (u *unpacker) methodNameRef() (string, error) {
	return u.strRef(poolMethodName, "mname")
}
func (u *unpacker) fieldNameRef() (string, error) { return u.strRef(poolFieldName, "fname") }
func (u *unpacker) stringConstRef() (string, error) {
	return u.strRef(poolString, "str")
}

// classRef decodes a class/primitive/array type reference.
func (u *unpacker) classRef() (ir.ClassKey, error) {
	key, isNew, transient, err := u.decs[poolClass].Decode(u.r.Stream(refStream(poolClass)), 0)
	if err != nil {
		return ir.ClassKey{}, err
	}
	if !isNew {
		k, ok := u.classKeys[key]
		if !ok {
			return ir.ClassKey{}, fmt.Errorf("core: unknown class key %q", key)
		}
		return k, nil
	}
	d := u.r.Stream(sClassDef)
	dims, err := d.Uint()
	if err != nil {
		return ir.ClassKey{}, err
	}
	prim, err := d.ReadByte()
	if err != nil {
		return ir.ClassKey{}, err
	}
	k := ir.ClassKey{Dims: int(dims), Prim: prim}
	if prim == 0 {
		if k.Pkg, err = u.pkgRef(); err != nil {
			return ir.ClassKey{}, err
		}
		if k.Simple, err = u.simpleRef(); err != nil {
			return ir.ClassKey{}, err
		}
	}
	ck := classKeyStr(k)
	u.classKeys[ck] = k
	u.decs[poolClass].Define(0, ck, transient)
	return k, nil
}

// sigRef decodes a signature reference.
func (u *unpacker) sigRef() (ir.Signature, error) {
	key, isNew, transient, err := u.decs[poolSig].Decode(u.r.Stream(refStream(poolSig)), 0)
	if err != nil {
		return nil, err
	}
	if !isNew {
		sig, ok := u.sigs[key]
		if !ok {
			return nil, fmt.Errorf("core: unknown signature key %q", key)
		}
		return sig, nil
	}
	n, err := u.meta.Uint()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<16 {
		return nil, fmt.Errorf("core: signature with %d entries", n)
	}
	sig := make(ir.Signature, n)
	for i := range sig {
		if sig[i], err = u.classRef(); err != nil {
			return nil, err
		}
	}
	sk := sig.SigString()
	u.sigs[sk] = sig
	u.decs[poolSig].Define(0, sk, transient)
	return sig, nil
}

// memberRef decodes a field or method reference from the pool implied by
// the instruction's use.
func (u *unpacker) memberRef(use opUse, ctx int) (ir.MemberRef, error) {
	var pool poolID
	var kind classfile.ConstKind
	switch use {
	case useGetfield:
		pool, kind = poolFieldInstance, classfile.KindFieldref
	case useGetstatic:
		pool, kind = poolFieldStatic, classfile.KindFieldref
	case useVirtual:
		pool, kind = poolMethodVirtual, classfile.KindMethodref
	case useSpecial:
		pool, kind = poolMethodSpecial, classfile.KindMethodref
	case useStatic:
		pool, kind = poolMethodStatic, classfile.KindMethodref
	case useInterface:
		pool, kind = poolMethodInterface, classfile.KindInterfaceMethodref
	}
	key, isNew, transient, err := u.decs[pool].Decode(u.r.Stream(refStream(pool)), ctx)
	if err != nil {
		return ir.MemberRef{}, err
	}
	if !isNew {
		m, ok := u.members[pool][key]
		if !ok {
			return ir.MemberRef{}, fmt.Errorf("core: unknown member key %q", key)
		}
		return m, nil
	}
	m := ir.MemberRef{Kind: kind}
	if m.Owner, err = u.classRef(); err != nil {
		return ir.MemberRef{}, err
	}
	if kind == classfile.KindFieldref {
		if m.Name, err = u.fieldNameRef(); err != nil {
			return ir.MemberRef{}, err
		}
		t, err := u.classRef()
		if err != nil {
			return ir.MemberRef{}, err
		}
		m.Desc = ir.KeyToType(t).String()
	} else {
		if m.Name, err = u.methodNameRef(); err != nil {
			return ir.MemberRef{}, err
		}
		sig, err := u.sigRef()
		if err != nil {
			return ir.MemberRef{}, err
		}
		m.Desc = ir.SignatureToDescriptor(sig)
	}
	mk := memberKeyStr(m)
	u.members[pool][mk] = m
	u.decs[pool].Define(ctx, mk, transient)
	return m, nil
}

func (u *unpacker) readF32() (float32, error) {
	raw, err := u.r.Stream(sFloat).Raw(4)
	if err != nil {
		return 0, err
	}
	bits := uint32(raw[0])<<24 | uint32(raw[1])<<16 | uint32(raw[2])<<8 | uint32(raw[3])
	return math.Float32frombits(bits), nil
}

func (u *unpacker) readF64() (float64, error) {
	raw, err := u.r.Stream(sDouble).Raw(8)
	if err != nil {
		return 0, err
	}
	var bits uint64
	for _, b := range raw {
		bits = bits<<8 | uint64(b)
	}
	return math.Float64frombits(bits), nil
}
