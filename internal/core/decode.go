package core

import (
	"bytes"
	"math"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/corrupt"
	"classpack/internal/ir"
	"classpack/internal/refs"
	"classpack/internal/stackstate"
	"classpack/internal/streams"
	"classpack/internal/strip"
)

// sHeader names the fixed archive header in corrupt errors.
const sHeader = "header"

// DefaultMaxClassCount is the class-count cap applied when UnpackOpts
// does not choose one.
const DefaultMaxClassCount = 1 << 20

// UnpackOpts are the decode-side knobs. Coding choices travel in the
// archive header, so decoding needs no scheme configuration — only
// resource bounds for untrusted input and a worker count.
type UnpackOpts struct {
	// Concurrency bounds the workers for the up-front stream
	// decompression (0 = all cores, 1 = serial).
	Concurrency int
	// MaxDecodedBytes caps the total decoded size of all wire streams
	// (0 = streams.DefaultMaxDecodedBytes). The cap is enforced before
	// inflation, so a small archive claiming a huge payload fails in
	// O(header) work with an error wrapping corrupt.ErrTooLarge.
	MaxDecodedBytes int64
	// MaxClassCount caps the number of classes materialized
	// (0 = DefaultMaxClassCount).
	MaxClassCount int
}

// Unpack decodes a packed archive back into classfiles using all cores
// for stream decompression. Decompression is deterministic: the result
// is byte-for-byte the stripped input of Pack regardless of worker
// count.
func Unpack(data []byte) ([]*classfile.ClassFile, error) {
	return UnpackN(data, 0)
}

// UnpackN is Unpack with an explicit worker bound for stream
// decompression (0 = all cores, 1 = serial).
func UnpackN(data []byte, concurrency int) ([]*classfile.ClassFile, error) {
	var out []*classfile.ClassFile
	err := UnpackStreamOpts(data, UnpackOpts{Concurrency: concurrency}, func(cf *classfile.ClassFile) error {
		out = append(out, cf)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// UnpackStream decodes the archive sequentially, invoking visit as each
// class becomes complete — the wire format is sequential (§2), so an eager
// class loader (§11) can define classes as they arrive instead of caching
// the archive. A visit error aborts decoding and is returned verbatim.
func UnpackStream(data []byte, visit func(*classfile.ClassFile) error) error {
	return UnpackStreamN(data, 0, visit)
}

// UnpackStreamN is UnpackStream with an explicit worker bound for the
// up-front stream decompression (0 = all cores, 1 = serial). Class
// decoding itself stays sequential: reference pools are stateful, so
// each class's references depend on every class before it.
func UnpackStreamN(data []byte, concurrency int, visit func(*classfile.ClassFile) error) error {
	return UnpackStreamOpts(data, UnpackOpts{Concurrency: concurrency}, visit)
}

// UnpackStreamOpts is UnpackStream with explicit decode options. Any
// failure caused by the archive bytes (as opposed to a visit error) is
// a *corrupt.Error or wraps one.
func UnpackStreamOpts(data []byte, o UnpackOpts, visit func(*classfile.ClassFile) error) error {
	opts, err := header(data)
	if err != nil {
		return err
	}
	// The version byte picks the container layout: v1 has no integrity
	// data, v2 verifies per-stream and trailer CRC32Cs before decoding,
	// v3 is a sequence of checked chunks plus a trailing class index.
	if data[4] == Version3 {
		return unpackV3(data, o, visit)
	}
	_, err = DecodeChunk(opts, data[6:], data[4] != Version1, o, func(ord int, cf *classfile.ClassFile) error {
		return visit(cf)
	})
	return err
}

// header validates the 6-byte archive header and returns the coding
// options it declares. The version byte must name a known layout and the
// scheme must be decodable; data[4] remains the caller's version switch.
func header(data []byte) (Options, error) {
	if len(data) < 6 || !bytes.Equal(data[:4], Magic[:]) {
		return Options{}, corrupt.Errorf(sHeader, 0, "not a packed archive")
	}
	if data[4] != Version1 && data[4] != Version2 && data[4] != Version3 {
		return Options{}, corrupt.Errorf(sHeader, 4, "unsupported version %d", data[4])
	}
	opts := decodeOptions(data[5])
	if !opts.Scheme.Decodable() {
		return Options{}, corrupt.Errorf(sHeader, 5, "archive uses undecodable scheme %v", opts.Scheme)
	}
	return opts, nil
}

// ParseHeader validates the fixed 6-byte archive header and returns the
// container version and the coding options it declares. It is the entry
// point for random-access readers, which read the header and the
// trailing index (ReadIndexAt) without touching the body.
func ParseHeader(hdr []byte) (version byte, opts Options, err error) {
	opts, err = header(hdr)
	if err != nil {
		return 0, Options{}, err
	}
	return hdr[4], opts, nil
}

type unpacker struct {
	opts Options
	r    *streams.Reader
	meta *streams.RStream
	decs [numPools]refs.Decoder

	classKeys map[string]ir.ClassKey
	sigs      map[string]ir.Signature
	members   [numPools]map[string]ir.MemberRef

	// Derived-value caches and scratch reused across every class in the
	// archive. References repeat heavily (that is the whole premise of
	// the format), so each derived form is computed once per distinct
	// input rather than once per use site.
	classNames map[ir.ClassKey]string
	msigs      map[string]*msigEntry
	ftypes     map[string]classfile.Type
	sim        *stackstate.Sim
	hoffs      []int
	scratch    strip.Scratch
	decoded    map[*classfile.CodeAttr][]bytecode.Instruction
}

// msigEntry caches everything derived from one method descriptor: the
// factored signature, its argument-slot count, and the parameter/return
// types the stack simulation consumes. The type slices are shared across
// instructions; stackstate treats OpInfo.Params as read-only.
type msigEntry struct {
	sig      ir.Signature
	argSlots int
	params   []classfile.Type
	ret      classfile.Type
}

func newUnpacker(opts Options, r *streams.Reader) *unpacker {
	u := &unpacker{
		opts:       opts,
		r:          r,
		meta:       r.Stream(sMeta),
		classKeys:  make(map[string]ir.ClassKey),
		sigs:       make(map[string]ir.Signature),
		classNames: make(map[ir.ClassKey]string),
		msigs:      make(map[string]*msigEntry),
		ftypes:     make(map[string]classfile.Type),
	}
	for i := range u.decs {
		u.decs[i], _ = refs.NewDecoder(opts.Scheme)
		u.members[i] = make(map[string]ir.MemberRef)
	}
	return u
}

// className memoizes ir.KeyToClassName, which joins package and simple
// name into a fresh string on every call.
func (u *unpacker) className(k ir.ClassKey) string {
	if s, ok := u.classNames[k]; ok {
		return s
	}
	s := ir.KeyToClassName(k)
	u.classNames[k] = s
	return s
}

// methodSig memoizes descriptor parsing for method references. Only
// successful parses are cached; a malformed descriptor aborts decoding
// anyway.
func (u *unpacker) methodSig(desc string) (*msigEntry, error) {
	if e, ok := u.msigs[desc]; ok {
		return e, nil
	}
	sig, err := ir.DescriptorToSignature(desc)
	if err != nil {
		return nil, err
	}
	e := &msigEntry{sig: sig, argSlots: sig.ArgSlots()}
	e.params, e.ret, _ = methodTypes(sig)
	u.msigs[desc] = e
	return e, nil
}

// fieldInfoType memoizes the classfile type a field descriptor denotes,
// as consumed by the stack simulation.
func (u *unpacker) fieldInfoType(desc string) (classfile.Type, error) {
	if t, ok := u.ftypes[desc]; ok {
		return t, nil
	}
	k, err := ir.MemberRef{Kind: classfile.KindFieldref, Desc: desc}.FieldTypeKey()
	if err != nil {
		return classfile.Type{}, err
	}
	t := ir.KeyToType(k)
	u.ftypes[desc] = t
	return t, nil
}

// strRef decodes a reference in a pool whose objects are plain strings.
// The defined string is an owned copy (string(raw)), never an alias of
// the decoded stream buffer, so pool entries cannot pin stream memory.
func (u *unpacker) strRef(pool poolID, cat strCat) (string, error) {
	key, isNew, transient, err := u.decs[pool].Decode(u.r.Stream(refStream(pool)), 0)
	if err != nil {
		return "", err
	}
	if !isNew {
		return key, nil
	}
	n, err := u.r.Stream(strLenName[cat]).Uint()
	if err != nil {
		return "", err
	}
	raw, err := u.r.Stream(strChrName[cat]).Raw(int(n))
	if err != nil {
		return "", err
	}
	s := string(raw)
	u.decs[pool].Define(0, s, transient)
	return s, nil
}

func (u *unpacker) pkgRef() (string, error)    { return u.strRef(poolPackage, catPkg) }
func (u *unpacker) simpleRef() (string, error) { return u.strRef(poolSimple, catCls) }
func (u *unpacker) methodNameRef() (string, error) {
	return u.strRef(poolMethodName, catMname)
}
func (u *unpacker) fieldNameRef() (string, error) { return u.strRef(poolFieldName, catFname) }
func (u *unpacker) stringConstRef() (string, error) {
	return u.strRef(poolString, catStr)
}

// classRef decodes a class/primitive/array type reference.
func (u *unpacker) classRef() (ir.ClassKey, error) {
	key, isNew, transient, err := u.decs[poolClass].Decode(u.r.Stream(refStream(poolClass)), 0)
	if err != nil {
		return ir.ClassKey{}, err
	}
	if !isNew {
		k, ok := u.classKeys[key]
		if !ok {
			return ir.ClassKey{}, corrupt.Errorf(refStream(poolClass), -1, "unknown class key %q", key)
		}
		return k, nil
	}
	d := u.r.Stream(sClassDef)
	dims, err := d.Uint()
	if err != nil {
		return ir.ClassKey{}, err
	}
	// The JVM caps array dimensions at 255; anything larger is corrupt
	// and would otherwise size a strings.Repeat allocation.
	if dims > 255 {
		return ir.ClassKey{}, corrupt.Errorf(sClassDef, -1, "array dimensions %d out of range", dims)
	}
	prim, err := d.ReadByte()
	if err != nil {
		return ir.ClassKey{}, err
	}
	k := ir.ClassKey{Dims: int(dims), Prim: prim}
	if prim == 0 {
		if k.Pkg, err = u.pkgRef(); err != nil {
			return ir.ClassKey{}, err
		}
		if k.Simple, err = u.simpleRef(); err != nil {
			return ir.ClassKey{}, err
		}
	}
	ck := classKeyStr(k)
	u.classKeys[ck] = k
	u.decs[poolClass].Define(0, ck, transient)
	return k, nil
}

// sigRef decodes a signature reference.
func (u *unpacker) sigRef() (ir.Signature, error) {
	key, isNew, transient, err := u.decs[poolSig].Decode(u.r.Stream(refStream(poolSig)), 0)
	if err != nil {
		return nil, err
	}
	if !isNew {
		sig, ok := u.sigs[key]
		if !ok {
			return nil, corrupt.Errorf(refStream(poolSig), -1, "unknown signature key %q", key)
		}
		return sig, nil
	}
	n, err := u.meta.Uint()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<16 {
		return nil, corrupt.Errorf(sMeta, -1, "signature with %d entries", n)
	}
	sig := make(ir.Signature, n)
	for i := range sig {
		if sig[i], err = u.classRef(); err != nil {
			return nil, err
		}
	}
	sk := sig.SigString()
	u.sigs[sk] = sig
	u.decs[poolSig].Define(0, sk, transient)
	return sig, nil
}

// memberRef decodes a field or method reference from the pool implied by
// the instruction's use.
func (u *unpacker) memberRef(use opUse, ctx int) (ir.MemberRef, error) {
	var pool poolID
	var kind classfile.ConstKind
	switch use {
	case useGetfield:
		pool, kind = poolFieldInstance, classfile.KindFieldref
	case useGetstatic:
		pool, kind = poolFieldStatic, classfile.KindFieldref
	case useVirtual:
		pool, kind = poolMethodVirtual, classfile.KindMethodref
	case useSpecial:
		pool, kind = poolMethodSpecial, classfile.KindMethodref
	case useStatic:
		pool, kind = poolMethodStatic, classfile.KindMethodref
	case useInterface:
		pool, kind = poolMethodInterface, classfile.KindInterfaceMethodref
	}
	key, isNew, transient, err := u.decs[pool].Decode(u.r.Stream(refStream(pool)), ctx)
	if err != nil {
		return ir.MemberRef{}, err
	}
	if !isNew {
		m, ok := u.members[pool][key]
		if !ok {
			return ir.MemberRef{}, corrupt.Errorf(refStream(pool), -1, "unknown member key %q", key)
		}
		return m, nil
	}
	m := ir.MemberRef{Kind: kind}
	if m.Owner, err = u.classRef(); err != nil {
		return ir.MemberRef{}, err
	}
	if kind == classfile.KindFieldref {
		if m.Name, err = u.fieldNameRef(); err != nil {
			return ir.MemberRef{}, err
		}
		t, err := u.classRef()
		if err != nil {
			return ir.MemberRef{}, err
		}
		m.Desc = ir.KeyToType(t).String()
	} else {
		if m.Name, err = u.methodNameRef(); err != nil {
			return ir.MemberRef{}, err
		}
		sig, err := u.sigRef()
		if err != nil {
			return ir.MemberRef{}, err
		}
		m.Desc = ir.SignatureToDescriptor(sig)
	}
	mk := memberKeyStr(m)
	u.members[pool][mk] = m
	u.decs[pool].Define(ctx, mk, transient)
	return m, nil
}

func (u *unpacker) readF32() (float32, error) {
	raw, err := u.r.Stream(sFloat).Raw(4)
	if err != nil {
		return 0, err
	}
	bits := uint32(raw[0])<<24 | uint32(raw[1])<<16 | uint32(raw[2])<<8 | uint32(raw[3])
	return math.Float32frombits(bits), nil
}

func (u *unpacker) readF64() (float64, error) {
	raw, err := u.r.Stream(sDouble).Raw(8)
	if err != nil {
		return 0, err
	}
	var bits uint64
	for _, b := range raw {
		bits = bits<<8 | uint64(b)
	}
	return math.Float64frombits(bits), nil
}
