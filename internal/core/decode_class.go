package core

import (
	"fmt"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/corrupt"
	"classpack/internal/ir"
	"classpack/internal/stackstate"
	"classpack/internal/strip"
)

// Intermediate decoded structures; constant-pool indices are assigned only
// after the whole class is decoded, then canonicalized by the strip
// renumbering so output matches the encoder's input byte-for-byte.

type dConst struct {
	kind classfile.ConstKind
	i    int32
	f    float32
	l    int64
	d    float64
	s    string
}

type dInner struct {
	inner    ir.ClassKey
	hasOuter bool
	outer    ir.ClassKey
	hasName  bool
	name     string
	access   uint16
}

type dField struct {
	flags    uint64
	name     string
	typ      ir.ClassKey
	hasConst bool
	cv       dConst
}

type dHandler struct {
	start, end, handler int
	hasCatch            bool
	catch               ir.ClassKey
}

type dInsn struct {
	in     bytecode.Instruction
	hasUse bool
	use    opUse
	member ir.MemberRef
	class  ir.ClassKey // for new/anewarray/checkcast/instanceof/multianewarray
	isLdc  bool
	cv     dConst
}

type dCode struct {
	maxStack, maxLocals int
	handlers            []dHandler
	codeLen             int
	insns               []dInsn
}

type dMethod struct {
	flags      uint64
	name       string
	sig        ir.Signature
	exceptions []ir.ClassKey
	code       *dCode
}

// maxCount bounds decoded element counts; anything larger is a corrupt
// archive, caught before allocation.
const maxCount = 1 << 20

func checkCount(n uint64, what string) (int, error) {
	if n > maxCount {
		return 0, corrupt.TooLarge(sMeta, -1, "implausible %s count %d", what, n)
	}
	return int(n), nil
}

func (u *unpacker) class() (*classfile.ClassFile, error) {
	minor, err := u.meta.Uint()
	if err != nil {
		return nil, err
	}
	major, err := u.meta.Uint()
	if err != nil {
		return nil, err
	}
	flags, err := u.meta.Uint()
	if err != nil {
		return nil, err
	}
	this, err := u.classRef()
	if err != nil {
		return nil, err
	}
	var super ir.ClassKey
	if flags&flagHasSuper != 0 {
		if super, err = u.classRef(); err != nil {
			return nil, err
		}
	}
	nIfacesRaw, err := u.meta.Uint()
	if err != nil {
		return nil, err
	}
	nIfaces, err := checkCount(nIfacesRaw, "interface")
	if err != nil {
		return nil, err
	}
	ifaces := make([]ir.ClassKey, nIfaces)
	for i := range ifaces {
		if ifaces[i], err = u.classRef(); err != nil {
			return nil, err
		}
	}
	var inner []dInner
	if flags&flagHasInner != 0 {
		nRaw, err := u.meta.Uint()
		if err != nil {
			return nil, err
		}
		n, err := checkCount(nRaw, "inner class")
		if err != nil {
			return nil, err
		}
		inner = make([]dInner, n)
		for i := range inner {
			if inner[i], err = u.innerEntry(); err != nil {
				return nil, err
			}
		}
	}
	nFieldsRaw, err := u.meta.Uint()
	if err != nil {
		return nil, err
	}
	nFields, err := checkCount(nFieldsRaw, "field")
	if err != nil {
		return nil, err
	}
	fields := make([]dField, nFields)
	for i := range fields {
		if fields[i], err = u.field(); err != nil {
			return nil, err
		}
	}
	nMethodsRaw, err := u.meta.Uint()
	if err != nil {
		return nil, err
	}
	nMethods, err := checkCount(nMethodsRaw, "method")
	if err != nil {
		return nil, err
	}
	methods := make([]dMethod, nMethods)
	for i := range methods {
		if methods[i], err = u.method(); err != nil {
			return nil, err
		}
	}
	return u.build(uint16(minor), uint16(major), flags, this, super, ifaces, inner, fields, methods)
}

func (u *unpacker) innerEntry() (dInner, error) {
	var e dInner
	flags, err := u.meta.Uint()
	if err != nil {
		return e, err
	}
	e.access = uint16(flags)
	if e.inner, err = u.classRef(); err != nil {
		return e, err
	}
	if flags&flagInnerHasOuter != 0 {
		e.hasOuter = true
		if e.outer, err = u.classRef(); err != nil {
			return e, err
		}
	}
	if flags&flagInnerHasName != 0 {
		e.hasName = true
		if e.name, err = u.simpleRef(); err != nil {
			return e, err
		}
	}
	return e, nil
}

func (u *unpacker) field() (dField, error) {
	var f dField
	var err error
	if f.flags, err = u.meta.Uint(); err != nil {
		return f, err
	}
	if f.name, err = u.fieldNameRef(); err != nil {
		return f, err
	}
	if f.typ, err = u.classRef(); err != nil {
		return f, err
	}
	if f.flags&flagHasConst != 0 {
		f.hasConst = true
		if f.cv, err = u.constValue(ir.KeyToType(f.typ)); err != nil {
			return f, err
		}
	}
	return f, nil
}

func (u *unpacker) constValue(t classfile.Type) (dConst, error) {
	var c dConst
	c.kind = constKindForType(t)
	var err error
	switch c.kind {
	case classfile.KindInteger:
		var v int64
		if v, err = u.r.Stream(sIntCV).Int(); err == nil {
			c.i = int32(v)
		}
	case classfile.KindFloat:
		c.f, err = u.readF32()
	case classfile.KindLong:
		c.l, err = u.r.Stream(sLong).Int()
	case classfile.KindDouble:
		c.d, err = u.readF64()
	case classfile.KindString:
		c.s, err = u.stringConstRef()
	default:
		err = fmt.Errorf("core: field type %s cannot carry a constant", t)
	}
	return c, err
}

func (u *unpacker) method() (dMethod, error) {
	var m dMethod
	var err error
	if m.flags, err = u.meta.Uint(); err != nil {
		return m, err
	}
	if m.name, err = u.methodNameRef(); err != nil {
		return m, err
	}
	if m.sig, err = u.sigRef(); err != nil {
		return m, err
	}
	nExcRaw, err := u.meta.Uint()
	if err != nil {
		return m, err
	}
	nExc, err := checkCount(nExcRaw, "exception")
	if err != nil {
		return m, err
	}
	m.exceptions = make([]ir.ClassKey, nExc)
	for i := range m.exceptions {
		if m.exceptions[i], err = u.classRef(); err != nil {
			return m, err
		}
	}
	if m.flags&flagHasCode != 0 {
		if m.code, err = u.code(); err != nil {
			return m, fmt.Errorf("method %s: %w", m.name, err)
		}
	}
	return m, nil
}

func (u *unpacker) code() (*dCode, error) {
	c := &dCode{}
	maxes := u.r.Stream(sMaxes)
	v, err := maxes.Uint()
	if err != nil {
		return nil, err
	}
	c.maxStack = int(v)
	if v, err = maxes.Uint(); err != nil {
		return nil, err
	}
	c.maxLocals = int(v)
	nHandlersRaw, err := u.meta.Uint()
	if err != nil {
		return nil, err
	}
	nHandlers, err := checkCount(nHandlersRaw, "handler")
	if err != nil {
		return nil, err
	}
	hs := u.r.Stream(sHandler)
	c.handlers = make([]dHandler, nHandlers)
	handlerOffsets := u.hoffs[:0]
	for i := range c.handlers {
		h := &c.handlers[i]
		for _, p := range []*int{&h.start, &h.end, &h.handler} {
			v, err := hs.Uint()
			if err != nil {
				return nil, err
			}
			*p = int(v)
		}
		flag, err := hs.ReadByte()
		if err != nil {
			return nil, err
		}
		if flag == 1 {
			h.hasCatch = true
			if h.catch, err = u.classRef(); err != nil {
				return nil, err
			}
		}
		handlerOffsets = append(handlerOffsets, h.handler)
	}
	if v, err = u.meta.Uint(); err != nil {
		return nil, err
	}
	// Bound before narrowing to int, so a 64-bit length can neither
	// wrap negative nor size the decode loop.
	if v > 1<<26 {
		return nil, corrupt.TooLarge(sMeta, -1, "code length %d implausible", v)
	}
	c.codeLen = int(v)
	u.hoffs = handlerOffsets
	var sim *stackstate.Sim
	if u.opts.StackState {
		// Reset copies handlerOffsets, so the u.hoffs scratch can be
		// reused by the next method without corrupting the simulation.
		if u.sim == nil {
			u.sim = stackstate.New(nil, handlerOffsets)
		} else {
			u.sim.Reset(nil, handlerOffsets)
		}
		sim = u.sim
	}
	pos := 0
	for pos < c.codeLen {
		di, next, err := u.insn(pos, sim)
		if err != nil {
			return nil, fmt.Errorf("at offset %d: %w", pos, err)
		}
		c.insns = append(c.insns, di)
		pos = next
	}
	if pos != c.codeLen {
		return nil, fmt.Errorf("core: instructions end at %d, code length %d", pos, c.codeLen)
	}
	return c, nil
}

// ldcFromPseudo maps a typed wire opcode back to the source instruction
// and the constant kind it loads.
func ldcFromPseudo(wire bytecode.Op) (op bytecode.Op, kind classfile.ConstKind, ok bool) {
	switch wire {
	case opLdcInt:
		return bytecode.Ldc, classfile.KindInteger, true
	case opLdcFloat:
		return bytecode.Ldc, classfile.KindFloat, true
	case opLdcString:
		return bytecode.Ldc, classfile.KindString, true
	case opLdcWInt:
		return bytecode.LdcW, classfile.KindInteger, true
	case opLdcWFloat:
		return bytecode.LdcW, classfile.KindFloat, true
	case opLdcWString:
		return bytecode.LdcW, classfile.KindString, true
	case opLdc2Long:
		return bytecode.Ldc2W, classfile.KindLong, true
	case opLdc2Double:
		return bytecode.Ldc2W, classfile.KindDouble, true
	}
	return 0, 0, false
}

func (u *unpacker) insn(pos int, sim *stackstate.Sim) (dInsn, int, error) {
	if sim != nil {
		sim.Begin(pos)
	}
	var di dInsn
	di.in.Offset = pos
	wireByte, err := u.r.Stream(sOpcodes).ReadByte()
	if err != nil {
		return di, 0, err
	}
	wire := bytecode.Op(wireByte)
	var ldcKind classfile.ConstKind
	if op, kind, ok := ldcFromPseudo(wire); ok {
		di.isLdc = true
		di.in.Op = op
		ldcKind = kind
	} else if int(wire) >= numWireOps {
		return di, 0, fmt.Errorf("core: invalid wire opcode 0x%02x", wireByte)
	} else if sim != nil {
		di.in.Op = sim.SourceOp(wire)
	} else {
		di.in.Op = wire
	}

	ctx := 0
	if sim != nil {
		ctx = sim.ContextID()
	}
	var info stackstate.OpInfo
	switch bytecode.FormatOf(di.in.Op) {
	case bytecode.FmtNone:
	case bytecode.FmtLocal:
		if err := u.readReg(&di.in, false); err != nil {
			return di, 0, err
		}
	case bytecode.FmtIinc:
		if err := u.readReg(&di.in, true); err != nil {
			return di, 0, err
		}
	case bytecode.FmtSByte, bytecode.FmtSShort:
		v, err := u.r.Stream(sIntImm).Int()
		if err != nil {
			return di, 0, err
		}
		di.in.A = int(v)
	case bytecode.FmtCP1, bytecode.FmtCP2:
		if di.isLdc {
			if err := u.ldcValue(&di, ldcKind); err != nil {
				return di, 0, err
			}
			info.HasConst = true
			info.Const = constStackKind(ldcKind)
			break
		}
		if err := u.cpOperand(&di, ctx, &info); err != nil {
			return di, 0, err
		}
	case bytecode.FmtInvokeInterface:
		di.hasUse = true
		di.use = useInterface
		if di.member, err = u.memberRef(useInterface, ctx); err != nil {
			return di, 0, err
		}
		e, err := u.methodSig(di.member.Desc)
		if err != nil {
			return di, 0, err
		}
		di.in.B = e.argSlots + 1
		info.HasMethod = true
		info.Params, info.Ret = e.params, e.ret
	case bytecode.FmtMultiANewArray:
		if di.class, err = u.classRef(); err != nil {
			return di, 0, err
		}
		dims, err := u.r.Stream(sMiscOp).ReadByte()
		if err != nil {
			return di, 0, err
		}
		di.in.B = int(dims)
	case bytecode.FmtNewArray:
		atype, err := u.r.Stream(sMiscOp).ReadByte()
		if err != nil {
			return di, 0, err
		}
		di.in.A = int(atype)
	case bytecode.FmtBranch2, bytecode.FmtBranch4:
		rel, err := u.r.Stream(sBranch).Int()
		if err != nil {
			return di, 0, err
		}
		di.in.A = pos + int(rel)
	case bytecode.FmtTableSwitch:
		sw := u.r.Stream(sSwitch)
		def, err := sw.Int()
		if err != nil {
			return di, 0, err
		}
		low, err := sw.Int()
		if err != nil {
			return di, 0, err
		}
		n, err := sw.Uint()
		if err != nil {
			return di, 0, err
		}
		if n > 1<<20 {
			return di, 0, corrupt.TooLarge(sSwitch, -1, "tableswitch with %d targets", n)
		}
		di.in.Default = pos + int(def)
		di.in.Low = int32(low)
		di.in.High = int32(low) + int32(n) - 1
		di.in.Targets = make([]int, n)
		for i := range di.in.Targets {
			rel, err := sw.Int()
			if err != nil {
				return di, 0, err
			}
			di.in.Targets[i] = pos + int(rel)
		}
	case bytecode.FmtLookupSwitch:
		sw := u.r.Stream(sSwitch)
		def, err := sw.Int()
		if err != nil {
			return di, 0, err
		}
		n, err := sw.Uint()
		if err != nil {
			return di, 0, err
		}
		if n > 1<<20 {
			return di, 0, corrupt.TooLarge(sSwitch, -1, "lookupswitch with %d pairs", n)
		}
		di.in.Default = pos + int(def)
		di.in.Keys = make([]int32, n)
		for i := range di.in.Keys {
			if i == 0 {
				k, err := sw.Int()
				if err != nil {
					return di, 0, err
				}
				di.in.Keys[0] = int32(k)
			} else {
				diff, err := sw.Uint()
				if err != nil {
					return di, 0, err
				}
				di.in.Keys[i] = di.in.Keys[i-1] + int32(diff)
			}
		}
		di.in.Targets = make([]int, n)
		for i := range di.in.Targets {
			rel, err := sw.Int()
			if err != nil {
				return di, 0, err
			}
			di.in.Targets[i] = pos + int(rel)
		}
	default:
		return di, 0, fmt.Errorf("core: cannot unpack opcode %s", di.in.Op)
	}

	if sim != nil {
		sim.StepInfo(&di.in, info)
	}
	return di, pos + di.in.Size(), nil
}

// constStackKind maps a pool kind to the stack kind ldc pushes.
func constStackKind(k classfile.ConstKind) stackstate.Kind {
	switch k {
	case classfile.KindInteger:
		return stackstate.Int
	case classfile.KindFloat:
		return stackstate.Float
	case classfile.KindString:
		return stackstate.Ref
	case classfile.KindLong:
		return stackstate.Long
	case classfile.KindDouble:
		return stackstate.Double
	}
	return stackstate.Unknown
}

// methodTypes converts a factored signature to the classfile types the
// stack simulation consumes.
func methodTypes(sig ir.Signature) (params []classfile.Type, ret classfile.Type, ok bool) {
	ret = ir.KeyToType(sig[0])
	params = make([]classfile.Type, 0, len(sig)-1)
	for _, k := range sig[1:] {
		params = append(params, ir.KeyToType(k))
	}
	return params, ret, true
}

func (u *unpacker) readReg(in *bytecode.Instruction, iinc bool) error {
	v, err := u.r.Stream(sRegs).Uint()
	if err != nil {
		return err
	}
	in.A = int(v >> 1)
	redundantWide := v&1 != 0
	if iinc {
		d, err := u.r.Stream(sIntImm).Int()
		if err != nil {
			return err
		}
		in.B = int(d)
		in.Wide = redundantWide || in.A > 0xff || in.B < -128 || in.B > 127
		return nil
	}
	in.Wide = redundantWide || in.A > 0xff
	return nil
}

func (u *unpacker) ldcValue(di *dInsn, kind classfile.ConstKind) error {
	di.cv.kind = kind
	var err error
	switch kind {
	case classfile.KindInteger:
		var v int64
		if v, err = u.r.Stream(sIntLdc).Int(); err == nil {
			di.cv.i = int32(v)
		}
	case classfile.KindFloat:
		di.cv.f, err = u.readF32()
	case classfile.KindString:
		di.cv.s, err = u.stringConstRef()
	case classfile.KindLong:
		di.cv.l, err = u.r.Stream(sLong).Int()
	case classfile.KindDouble:
		di.cv.d, err = u.readF64()
	}
	return err
}

func (u *unpacker) cpOperand(di *dInsn, ctx int, info *stackstate.OpInfo) error {
	var err error
	switch di.in.Op {
	case bytecode.Getfield, bytecode.Putfield:
		di.hasUse = true
		di.use = useGetfield
		di.member, err = u.memberRef(useGetfield, ctx)
	case bytecode.Getstatic, bytecode.Putstatic:
		di.hasUse = true
		di.use = useGetstatic
		di.member, err = u.memberRef(useGetstatic, ctx)
	case bytecode.Invokevirtual:
		di.hasUse = true
		di.use = useVirtual
		di.member, err = u.memberRef(useVirtual, ctx)
	case bytecode.Invokespecial:
		di.hasUse = true
		di.use = useSpecial
		di.member, err = u.memberRef(useSpecial, ctx)
	case bytecode.Invokestatic:
		di.hasUse = true
		di.use = useStatic
		di.member, err = u.memberRef(useStatic, ctx)
	case bytecode.New, bytecode.Anewarray, bytecode.Checkcast, bytecode.Instanceof:
		di.class, err = u.classRef()
		return err
	default:
		return fmt.Errorf("core: unexpected constant-pool instruction %s", di.in.Op)
	}
	if err != nil {
		return err
	}
	switch di.use {
	case useGetfield, useGetstatic:
		t, terr := u.fieldInfoType(di.member.Desc)
		if terr != nil {
			return terr
		}
		info.HasField = true
		info.Field = t
	default:
		e, serr := u.methodSig(di.member.Desc)
		if serr != nil {
			return serr
		}
		info.HasMethod = true
		info.Params, info.Ret = e.params, e.ret
	}
	return nil
}

// build converts the decoded class into a canonical classfile.
func (u *unpacker) build(minor, major uint16, flags uint64, this, super ir.ClassKey,
	ifaces []ir.ClassKey, inner []dInner, fields []dField, methods []dMethod) (*classfile.ClassFile, error) {

	b := classfile.NewEmptyBuilder(uint16(flags))
	b.SetThisClass(u.className(this))
	if flags&flagHasSuper != 0 {
		b.SetSuperClass(u.className(super))
	}
	b.CF.MinorVersion = minor
	b.CF.MajorVersion = major
	for _, k := range ifaces {
		b.AddInterface(u.className(k))
	}
	if len(inner) > 0 {
		ic := &classfile.InnerClassesAttr{}
		ic.NameIndex = b.Utf8("InnerClasses")
		for _, e := range inner {
			entry := classfile.InnerClass{
				Inner:       b.Class(u.className(e.inner)),
				AccessFlags: e.access,
			}
			if e.hasOuter {
				entry.Outer = b.Class(u.className(e.outer))
			}
			if e.hasName {
				entry.InnerName = b.Utf8(e.name)
			}
			ic.Entries = append(ic.Entries, entry)
		}
		b.CF.Attrs = append(b.CF.Attrs, ic)
	}
	addFlagAttrs(b, &b.CF.Attrs, flags)

	for _, f := range fields {
		member := b.AddField(uint16(f.flags), f.name, ir.KeyToType(f.typ).String())
		if f.hasConst {
			var idx uint16
			switch f.cv.kind {
			case classfile.KindInteger:
				idx = b.Int(f.cv.i)
			case classfile.KindFloat:
				idx = b.Float(f.cv.f)
			case classfile.KindLong:
				idx = b.Long(f.cv.l)
			case classfile.KindDouble:
				idx = b.Double(f.cv.d)
			case classfile.KindString:
				idx = b.String(f.cv.s)
			}
			b.AttachConstantValue(member, idx)
		}
		addFlagAttrs(b, &member.Attrs, f.flags)
	}

	decoded := u.decoded
	if decoded == nil {
		decoded = make(map[*classfile.CodeAttr][]bytecode.Instruction)
		u.decoded = decoded
	} else {
		clear(decoded)
	}
	for _, m := range methods {
		member := b.AddMethod(uint16(m.flags), m.name, ir.SignatureToDescriptor(m.sig))
		if m.code != nil {
			attr := &classfile.CodeAttr{
				MaxStack:  uint16(m.code.maxStack),
				MaxLocals: uint16(m.code.maxLocals),
			}
			insns := make([]bytecode.Instruction, len(m.code.insns))
			for i := range m.code.insns {
				di := &m.code.insns[i]
				in := di.in
				if err := u.resolveOperand(b, di, &in); err != nil {
					return nil, err
				}
				insns[i] = in
			}
			for _, h := range m.code.handlers {
				eh := classfile.ExceptionHandler{
					StartPC:   uint16(h.start),
					EndPC:     uint16(h.end),
					HandlerPC: uint16(h.handler),
				}
				if h.hasCatch {
					eh.CatchType = b.Class(u.className(h.catch))
				}
				attr.Handlers = append(attr.Handlers, eh)
			}
			b.AttachCode(member, attr)
			decoded[attr] = insns
		}
		if len(m.exceptions) > 0 {
			names := make([]string, len(m.exceptions))
			for i, k := range m.exceptions {
				names[i] = u.className(k)
			}
			b.AttachExceptions(member, names)
		}
		addFlagAttrs(b, &member.Attrs, m.flags)
	}

	cf, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := strip.RenumberWithCodeScratch(cf, decoded, &u.scratch); err != nil {
		return nil, err
	}
	return cf, nil
}

// addFlagAttrs materializes the Synthetic/Deprecated flag bits as
// attributes (the strip normalization fixes their order).
func addFlagAttrs(b *classfile.Builder, attrs *[]classfile.Attribute, flags uint64) {
	if flags&flagSynthetic != 0 {
		a := &classfile.SyntheticAttr{}
		a.NameIndex = b.Utf8("Synthetic")
		*attrs = append(*attrs, a)
	}
	if flags&flagDeprecated != 0 {
		a := &classfile.DeprecatedAttr{}
		a.NameIndex = b.Utf8("Deprecated")
		*attrs = append(*attrs, a)
	}
}

// resolveOperand interns the decoded symbolic operand and patches the
// instruction's constant-pool index.
func (u *unpacker) resolveOperand(b *classfile.Builder, di *dInsn, in *bytecode.Instruction) error {
	switch {
	case di.isLdc:
		var idx uint16
		switch di.cv.kind {
		case classfile.KindInteger:
			idx = b.Int(di.cv.i)
		case classfile.KindFloat:
			idx = b.Float(di.cv.f)
		case classfile.KindString:
			idx = b.String(di.cv.s)
		case classfile.KindLong:
			idx = b.Long(di.cv.l)
		case classfile.KindDouble:
			idx = b.Double(di.cv.d)
		}
		in.A = int(idx)
	case di.hasUse:
		owner := u.className(di.member.Owner)
		switch di.member.Kind {
		case classfile.KindFieldref:
			in.A = int(b.Fieldref(owner, di.member.Name, di.member.Desc))
		case classfile.KindInterfaceMethodref:
			in.A = int(b.InterfaceMethodref(owner, di.member.Name, di.member.Desc))
		default:
			in.A = int(b.Methodref(owner, di.member.Name, di.member.Desc))
		}
	case bytecode.IsCPRef(in.Op):
		in.A = int(b.Class(u.className(di.class)))
	}
	return nil
}
