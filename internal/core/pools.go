package core

import (
	"strconv"
	"unicode/utf8"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/ir"
	"classpack/internal/refs"
	"classpack/internal/stackstate"
	"classpack/internal/streams"
)

// Canonical pool keys. Keys only need to be unique within their pool and
// identical between passes and directions. The append builders replicate
// the historical fmt verb output byte-for-byte: the keys are move-to-front
// identities, so any drift would change packed archives.

// appendClassKey appends the canonical key of k:
// "<dims>\x00<prim+1 as rune>\x00<pkg>\x00<simple>".
func appendClassKey(dst []byte, k ir.ClassKey) []byte {
	dst = strconv.AppendInt(dst, int64(k.Dims), 10)
	dst = append(dst, 0)
	dst = utf8.AppendRune(dst, rune(k.Prim)+1)
	dst = append(dst, 0)
	dst = append(dst, k.Pkg...)
	dst = append(dst, 0)
	return append(dst, k.Simple...)
}

// appendMemberKey appends the canonical key of m:
// "<ownerKey>\x01<name>\x01<desc>".
func appendMemberKey(dst []byte, m ir.MemberRef) []byte {
	dst = appendClassKey(dst, m.Owner)
	dst = append(dst, 1)
	dst = append(dst, m.Name...)
	dst = append(dst, 1)
	return append(dst, m.Desc...)
}

func classKeyStr(k ir.ClassKey) string { return string(appendClassKey(nil, k)) }

func memberKeyStr(m ir.MemberRef) string { return string(appendMemberKey(nil, m)) }

// keyCache memoizes pool keys and descriptor parses for one Pack. The
// counting and emitting passes traverse the same classes in the same
// order, so sharing one cache makes every emit-pass computation a map
// hit. The comparable IR structs (ClassKey, MemberRef) key directly.
type keyCache struct {
	classKeys  map[ir.ClassKey]string
	memberKeys map[ir.MemberRef]string
	sigs       map[string]sigEntry    // method descriptor -> signature + pool key
	fieldKeys  map[string]ir.ClassKey // field descriptor -> type key
	kbuf       []byte                 // scratch for key building
}

// sigEntry is a parsed method descriptor: the factored signature and
// its canonical pool key.
type sigEntry struct {
	sig ir.Signature
	key string
}

func newKeyCache() *keyCache {
	return &keyCache{
		classKeys:  make(map[ir.ClassKey]string),
		memberKeys: make(map[ir.MemberRef]string),
		sigs:       make(map[string]sigEntry),
		fieldKeys:  make(map[string]ir.ClassKey),
	}
}

func (c *keyCache) classKey(k ir.ClassKey) string {
	if s, ok := c.classKeys[k]; ok {
		return s
	}
	c.kbuf = appendClassKey(c.kbuf[:0], k)
	s := string(c.kbuf)
	c.classKeys[k] = s
	return s
}

func (c *keyCache) memberKey(m ir.MemberRef) string {
	if s, ok := c.memberKeys[m]; ok {
		return s
	}
	c.kbuf = appendMemberKey(c.kbuf[:0], m)
	s := string(c.kbuf)
	c.memberKeys[m] = s
	return s
}

// sigEntry parses a method descriptor once, memoizing the signature and
// its pool key.
func (c *keyCache) sigEntry(desc string) (sigEntry, error) {
	if e, ok := c.sigs[desc]; ok {
		return e, nil
	}
	sig, err := ir.DescriptorToSignature(desc)
	if err != nil {
		return sigEntry{}, err
	}
	e := sigEntry{sig: sig, key: sig.SigString()}
	c.sigs[desc] = e
	return e, nil
}

// fieldKey parses a field descriptor once, memoizing the type key.
func (c *keyCache) fieldKey(desc string) (ir.ClassKey, error) {
	if k, ok := c.fieldKeys[desc]; ok {
		return k, nil
	}
	t, err := classfile.ParseFieldDescriptor(desc)
	if err != nil {
		return ir.ClassKey{}, err
	}
	k := ir.TypeToKey(t)
	c.fieldKeys[desc] = k
	return k, nil
}

// memberPool maps a member reference and its use site to its pool:
// instance vs static fields, and virtual/special/static/interface methods
// are kept apart (§5.1).
func memberPool(m ir.MemberRef, op opUse) poolID {
	switch op {
	case useGetfield:
		return poolFieldInstance
	case useGetstatic:
		return poolFieldStatic
	case useVirtual:
		return poolMethodVirtual
	case useSpecial:
		return poolMethodSpecial
	case useStatic:
		return poolMethodStatic
	case useInterface:
		return poolMethodInterface
	}
	//classpack:vet-allow nopanic use kinds come from internal op tables, never raw decoded ints
	panic("core: bad member use")
}

type opUse int

const (
	useGetfield opUse = iota
	useGetstatic
	useVirtual
	useSpecial
	useStatic
	useInterface
)

// sink is the subset of streams.Stream the walkers write through; the
// counting pass swaps in a discard implementation.
type sink interface {
	WriteByte(byte) error
	Write([]byte) (int, error)
	WriteString(string) (int, error)
	Uint(uint64)
	Int(int64)
}

type discard struct{}

func (discard) WriteByte(byte) error              { return nil }
func (discard) Write(p []byte) (int, error)       { return len(p), nil }
func (discard) WriteString(s string) (int, error) { return len(s), nil }
func (discard) Uint(uint64)                       {}
func (discard) Int(int64)                         {}

// packer holds the encoder state for one pass (counting or emitting).
type packer struct {
	opts     Options
	w        *streams.Writer
	counting bool
	counts   [numPools]map[string]int
	seen     [numPools]map[string]bool
	encs     [numPools]refs.Encoder
	scratch  []byte
	keys     *keyCache
	traces   map[string][]refs.Event // non-nil: record events per pool name

	// Per-method scratch reused across the whole pass.
	insns []bytecode.Instruction
	hoffs []int
	sim   *stackstate.Sim
	res   *stackstate.ClassFileResolver
}

func newCountingPacker(opts Options) *packer {
	p := &packer{opts: opts, counting: true, keys: newKeyCache()}
	for i := range p.counts {
		p.counts[i] = make(map[string]int)
		p.seen[i] = make(map[string]bool)
	}
	return p
}

func newEmittingPacker(opts Options, counts [numPools]map[string]int, keys *keyCache) *packer {
	p := &packer{opts: opts, w: streams.NewWriter(), counts: counts, keys: keys}
	for i := range p.encs {
		p.encs[i] = refs.NewEncoder(opts.Scheme, counts[i])
	}
	return p
}

// st returns the sink for a named stream.
func (p *packer) st(name string) sink {
	if p.counting {
		return discard{}
	}
	return p.w.Stream(name)
}

// ref encodes one reference event; def is invoked exactly when the
// object's definition must follow (first occurrence).
func (p *packer) ref(pool poolID, ctx int, key string, def func()) {
	if p.counting {
		if p.traces != nil {
			p.traces[poolName[pool]] = append(p.traces[poolName[pool]], refs.Event{Ctx: ctx, Key: key})
		}
		p.counts[pool][key]++
		if !p.seen[pool][key] {
			p.seen[pool][key] = true
			def()
		}
		return
	}
	var isNew bool
	p.scratch, isNew = p.encs[pool].Encode(p.scratch[:0], refs.Event{Ctx: ctx, Key: key})
	if _, err := p.w.Stream(refStream(pool)).Write(p.scratch); err != nil {
		//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
		panic(err) // bytes.Buffer writes cannot fail
	}
	if isNew {
		def()
	}
}

// strDef emits a string definition into the category's length and
// character streams (§8).
func (p *packer) strDef(cat strCat, s string) {
	p.st(strLenName[cat]).Uint(uint64(len(s)))
	if _, err := p.st(strChrName[cat]).WriteString(s); err != nil {
		//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
		panic(err)
	}
}

// pkgRef encodes a reference to a package name.
func (p *packer) pkgRef(s string) {
	p.ref(poolPackage, 0, s, func() { p.strDef(catPkg, s) })
}

// simpleRef encodes a reference to a simple class name.
func (p *packer) simpleRef(s string) {
	p.ref(poolSimple, 0, s, func() { p.strDef(catCls, s) })
}

// methodNameRef encodes a reference to a method name; a single pool is
// shared across all method kinds (§5.1.6).
func (p *packer) methodNameRef(s string) {
	p.ref(poolMethodName, 0, s, func() { p.strDef(catMname, s) })
}

// fieldNameRef encodes a reference to a field name.
func (p *packer) fieldNameRef(s string) {
	p.ref(poolFieldName, 0, s, func() { p.strDef(catFname, s) })
}

// stringConstRef encodes a reference to a string constant.
func (p *packer) stringConstRef(s string) {
	p.ref(poolString, 0, s, func() { p.strDef(catStr, s) })
}

// classRef encodes a reference to a class/primitive/array type; new types
// define their dims/primitive shape and factored name (§4).
func (p *packer) classRef(k ir.ClassKey) {
	p.ref(poolClass, 0, p.keys.classKey(k), func() {
		d := p.st(sClassDef)
		d.Uint(uint64(k.Dims))
		if err := d.WriteByte(k.Prim); err != nil {
			//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
			panic(err)
		}
		if k.IsClass() {
			p.pkgRef(k.Pkg)
			p.simpleRef(k.Simple)
		}
	})
}

// sigRef encodes a reference to a method signature; new signatures define
// their return and parameter types as class references (§4).
func (p *packer) sigRef(e sigEntry) {
	p.ref(poolSig, 0, e.key, func() {
		p.st(sMeta).Uint(uint64(len(e.sig)))
		for _, k := range e.sig {
			p.classRef(k)
		}
	})
}

// memberRef encodes a field or method reference in the pool selected by
// its use; new members define owner, name, and type.
func (p *packer) memberRef(m ir.MemberRef, use opUse, ctx int) error {
	pool := memberPool(m, use)
	var defErr error
	p.ref(pool, ctx, p.keys.memberKey(m), func() {
		p.classRef(m.Owner)
		if m.Kind == classfile.KindFieldref {
			p.fieldNameRef(m.Name)
			t, err := p.keys.fieldKey(m.Desc)
			if err != nil {
				defErr = err
				return
			}
			p.classRef(t)
			return
		}
		p.methodNameRef(m.Name)
		e, err := p.keys.sigEntry(m.Desc)
		if err != nil {
			defErr = err
			return
		}
		p.sigRef(e)
	})
	return defErr
}
