package core

import (
	"fmt"

	"classpack/internal/classfile"
	"classpack/internal/ir"
	"classpack/internal/refs"
	"classpack/internal/streams"
)

// Canonical pool keys. Keys only need to be unique within their pool and
// identical between passes and directions.

func classKeyStr(k ir.ClassKey) string {
	return fmt.Sprintf("%d\x00%c\x00%s\x00%s", k.Dims, rune(k.Prim)+1, k.Pkg, k.Simple)
}

func memberKeyStr(m ir.MemberRef) string {
	return classKeyStr(m.Owner) + "\x01" + m.Name + "\x01" + m.Desc
}

// memberPool maps a member reference and its use site to its pool:
// instance vs static fields, and virtual/special/static/interface methods
// are kept apart (§5.1).
func memberPool(m ir.MemberRef, op opUse) poolID {
	switch op {
	case useGetfield:
		return poolFieldInstance
	case useGetstatic:
		return poolFieldStatic
	case useVirtual:
		return poolMethodVirtual
	case useSpecial:
		return poolMethodSpecial
	case useStatic:
		return poolMethodStatic
	case useInterface:
		return poolMethodInterface
	}
	//classpack:vet-allow nopanic use kinds come from internal op tables, never raw decoded ints
	panic("core: bad member use")
}

type opUse int

const (
	useGetfield opUse = iota
	useGetstatic
	useVirtual
	useSpecial
	useStatic
	useInterface
)

// sink is the subset of streams.Stream the walkers write through; the
// counting pass swaps in a discard implementation.
type sink interface {
	WriteByte(byte) error
	Write([]byte) (int, error)
	Uint(uint64)
	Int(int64)
}

type discard struct{}

func (discard) WriteByte(byte) error        { return nil }
func (discard) Write(p []byte) (int, error) { return len(p), nil }
func (discard) Uint(uint64)                 {}
func (discard) Int(int64)                   {}

// packer holds the encoder state for one pass (counting or emitting).
type packer struct {
	opts     Options
	w        *streams.Writer
	counting bool
	counts   [numPools]map[string]int
	seen     [numPools]map[string]bool
	encs     [numPools]refs.Encoder
	scratch  []byte
	traces   map[string][]refs.Event // non-nil: record events per pool name
}

func newCountingPacker(opts Options) *packer {
	p := &packer{opts: opts, counting: true}
	for i := range p.counts {
		p.counts[i] = make(map[string]int)
		p.seen[i] = make(map[string]bool)
	}
	return p
}

func newEmittingPacker(opts Options, counts [numPools]map[string]int) *packer {
	p := &packer{opts: opts, w: streams.NewWriter(), counts: counts}
	for i := range p.encs {
		p.encs[i] = refs.NewEncoder(opts.Scheme, counts[i])
	}
	return p
}

// st returns the sink for a named stream.
func (p *packer) st(name string) sink {
	if p.counting {
		return discard{}
	}
	return p.w.Stream(name)
}

// ref encodes one reference event; def is invoked exactly when the
// object's definition must follow (first occurrence).
func (p *packer) ref(pool poolID, ctx int, key string, def func()) {
	if p.counting {
		if p.traces != nil {
			p.traces[poolName[pool]] = append(p.traces[poolName[pool]], refs.Event{Ctx: ctx, Key: key})
		}
		p.counts[pool][key]++
		if !p.seen[pool][key] {
			p.seen[pool][key] = true
			def()
		}
		return
	}
	var isNew bool
	p.scratch, isNew = p.encs[pool].Encode(p.scratch[:0], refs.Event{Ctx: ctx, Key: key})
	if _, err := p.w.Stream(refStream(pool)).Write(p.scratch); err != nil {
		//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
		panic(err) // bytes.Buffer writes cannot fail
	}
	if isNew {
		def()
	}
}

// strDef emits a string definition into the category's length and
// character streams (§8).
func (p *packer) strDef(cat, s string) {
	lens, chars := strStreams(cat)
	p.st(lens).Uint(uint64(len(s)))
	if _, err := p.st(chars).Write([]byte(s)); err != nil {
		//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
		panic(err)
	}
}

// pkgRef encodes a reference to a package name.
func (p *packer) pkgRef(s string) {
	p.ref(poolPackage, 0, s, func() { p.strDef("pkg", s) })
}

// simpleRef encodes a reference to a simple class name.
func (p *packer) simpleRef(s string) {
	p.ref(poolSimple, 0, s, func() { p.strDef("cls", s) })
}

// methodNameRef encodes a reference to a method name; a single pool is
// shared across all method kinds (§5.1.6).
func (p *packer) methodNameRef(s string) {
	p.ref(poolMethodName, 0, s, func() { p.strDef("mname", s) })
}

// fieldNameRef encodes a reference to a field name.
func (p *packer) fieldNameRef(s string) {
	p.ref(poolFieldName, 0, s, func() { p.strDef("fname", s) })
}

// stringConstRef encodes a reference to a string constant.
func (p *packer) stringConstRef(s string) {
	p.ref(poolString, 0, s, func() { p.strDef("str", s) })
}

// classRef encodes a reference to a class/primitive/array type; new types
// define their dims/primitive shape and factored name (§4).
func (p *packer) classRef(k ir.ClassKey) {
	p.ref(poolClass, 0, classKeyStr(k), func() {
		d := p.st(sClassDef)
		d.Uint(uint64(k.Dims))
		if err := d.WriteByte(k.Prim); err != nil {
			//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
			panic(err)
		}
		if k.IsClass() {
			p.pkgRef(k.Pkg)
			p.simpleRef(k.Simple)
		}
	})
}

// sigRef encodes a reference to a method signature; new signatures define
// their return and parameter types as class references (§4).
func (p *packer) sigRef(sig ir.Signature) {
	p.ref(poolSig, 0, sig.SigString(), func() {
		p.st(sMeta).Uint(uint64(len(sig)))
		for _, k := range sig {
			p.classRef(k)
		}
	})
}

// memberRef encodes a field or method reference in the pool selected by
// its use; new members define owner, name, and type.
func (p *packer) memberRef(m ir.MemberRef, use opUse, ctx int) error {
	pool := memberPool(m, use)
	var defErr error
	p.ref(pool, ctx, memberKeyStr(m), func() {
		p.classRef(m.Owner)
		if m.Kind == classfile.KindFieldref {
			p.fieldNameRef(m.Name)
			t, err := m.FieldTypeKey()
			if err != nil {
				defErr = err
				return
			}
			p.classRef(t)
			return
		}
		p.methodNameRef(m.Name)
		sig, err := m.MethodSignature()
		if err != nil {
			defErr = err
			return
		}
		p.sigRef(sig)
	})
	return defErr
}
