package core

import (
	"fmt"
	"math"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/ir"
	"classpack/internal/refs"
	"classpack/internal/stackstate"
)

// Pack encodes a collection of classfiles into a packed archive. With
// Options.ChunkClasses zero it emits the monolithic version-2 layout;
// a positive ChunkClasses selects the chunked, random-access version 3.
// The classfiles must already be canonicalized with strip.Apply
// (debugging and unrecognized attributes removed); Unpack reproduces
// them byte-for-byte either way.
func Pack(cfs []*classfile.ClassFile, opts Options) ([]byte, error) {
	if opts.ChunkClasses > 0 {
		return PackVersion(cfs, opts, Version3)
	}
	return PackVersion(cfs, opts, version)
}

// PackVersion is Pack with an explicit wire-format version: Version2
// (the default) appends per-stream and whole-container CRC32C checksums,
// Version1 is the legacy checksum-free layout kept writable for
// compatibility tests and old consumers, and Version3 is the chunked
// layout with a trailing seekable class index (Options.ChunkClasses
// picks the chunk size, DefaultChunkClasses when unset).
func PackVersion(cfs []*classfile.ClassFile, opts Options, ver byte) ([]byte, error) {
	if ver != Version1 && ver != Version2 && ver != Version3 {
		return nil, fmt.Errorf("core: unknown pack version %d", ver)
	}
	if !opts.Scheme.Decodable() {
		return nil, fmt.Errorf("core: scheme %v has no decoder", opts.Scheme)
	}
	if ver == Version3 {
		return packV3(cfs, opts)
	}
	body, err := encodeMonolith(cfs, opts, ver)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(body)+6)
	out = append(out, Magic[:]...)
	out = append(out, ver, encodeOptions(opts))
	return append(out, body...), nil
}

// encodeMonolith runs the two-pass encoder over the whole collection and
// serializes the streams as one container body (no archive header).
func encodeMonolith(cfs []*classfile.ClassFile, opts Options, ver byte) ([]byte, error) {
	// Pass 1 counts occurrences per pool so transient objects (§5.1.5)
	// are known in advance; pass 2 emits.
	counter := newCountingPacker(opts)
	if opts.Preload {
		preloadPacker(counter)
	}
	if err := counter.archive(cfs); err != nil {
		return nil, err
	}
	emitter := newEmittingPacker(opts, counter.counts, counter.keys)
	if opts.Preload {
		preloadPacker(emitter)
	}
	if err := emitter.archive(cfs); err != nil {
		return nil, err
	}
	if ver == Version1 {
		return emitter.w.FinishN(opts.Compress, opts.Concurrency)
	}
	return emitter.w.FinishChecked(opts.Compress, opts.Concurrency)
}

// PackStats reports per-stream sizes for the archive that Pack would
// produce; the Table 6 breakdown derives from it.
func PackStats(cfs []*classfile.ClassFile, opts Options) (map[string][2]int, error) {
	counter := newCountingPacker(opts)
	if opts.Preload {
		preloadPacker(counter)
	}
	if err := counter.archive(cfs); err != nil {
		return nil, err
	}
	emitter := newEmittingPacker(opts, counter.counts, counter.keys)
	if opts.Preload {
		preloadPacker(emitter)
	}
	if err := emitter.archive(cfs); err != nil {
		return nil, err
	}
	return emitter.w.SizesN(opts.Compress, opts.Concurrency), nil
}

// Traces records the reference event stream of every pool in encode order
// (contexts included), for the Table 3 scheme-comparison experiments.
// Keys of the returned map are the pool names used in the "ref.*" streams.
func Traces(cfs []*classfile.ClassFile, opts Options) (map[string][]refs.Event, error) {
	p := newCountingPacker(opts)
	p.traces = make(map[string][]refs.Event)
	if err := p.archive(cfs); err != nil {
		return nil, err
	}
	return p.traces, nil
}

func encodeOptions(opts Options) byte {
	b := byte(opts.Scheme) & 0x07
	if opts.StackState {
		b |= 1 << 4
	}
	if opts.Compress {
		b |= 1 << 5
	}
	if opts.Preload {
		b |= 1 << 6
	}
	return b
}

func decodeOptions(b byte) Options {
	return Options{
		Scheme:     refsScheme(b & 0x07),
		StackState: b&(1<<4) != 0,
		Compress:   b&(1<<5) != 0,
		Preload:    b&(1<<6) != 0,
	}
}

func (p *packer) archive(cfs []*classfile.ClassFile) error {
	p.st(sMeta).Uint(uint64(len(cfs)))
	for _, cf := range cfs {
		if err := p.class(cf); err != nil {
			return fmt.Errorf("core: pack %s: %w", cf.ThisClassName(), err)
		}
	}
	return nil
}

// memberFlags folds the attribute-presence bits of §4 into the flags word.
func memberFlags(access uint16, attrs []classfile.Attribute) uint64 {
	f := uint64(access)
	for _, a := range attrs {
		switch a.(type) {
		case *classfile.SyntheticAttr:
			f |= flagSynthetic
		case *classfile.DeprecatedAttr:
			f |= flagDeprecated
		}
	}
	return f
}

func (p *packer) class(cf *classfile.ClassFile) error {
	thisKey, err := ir.ResolveClass(cf, cf.ThisClass)
	if err != nil {
		return err
	}
	var superKey ir.ClassKey
	flags := memberFlags(cf.AccessFlags, cf.Attrs)
	if cf.SuperClass != 0 {
		flags |= flagHasSuper
		if superKey, err = ir.ResolveClass(cf, cf.SuperClass); err != nil {
			return err
		}
	}
	var inner *classfile.InnerClassesAttr
	for _, a := range cf.Attrs {
		switch a := a.(type) {
		case *classfile.InnerClassesAttr:
			inner = a
			flags |= flagHasInner
		case *classfile.SyntheticAttr, *classfile.DeprecatedAttr:
			// folded into flags above
		default:
			return fmt.Errorf("unsupported class attribute %s (strip first)", a.AttrName())
		}
	}
	meta := p.st(sMeta)
	meta.Uint(uint64(cf.MinorVersion))
	meta.Uint(uint64(cf.MajorVersion))
	meta.Uint(flags)
	p.classRef(thisKey)
	if cf.SuperClass != 0 {
		p.classRef(superKey)
	}
	meta.Uint(uint64(len(cf.Interfaces)))
	for _, i := range cf.Interfaces {
		k, err := ir.ResolveClass(cf, i)
		if err != nil {
			return err
		}
		p.classRef(k)
	}
	if inner != nil {
		meta.Uint(uint64(len(inner.Entries)))
		for _, e := range inner.Entries {
			if err := p.innerEntry(cf, e); err != nil {
				return err
			}
		}
	}
	meta.Uint(uint64(len(cf.Fields)))
	for i := range cf.Fields {
		if err := p.field(cf, &cf.Fields[i]); err != nil {
			return fmt.Errorf("field %s: %w", cf.MemberName(&cf.Fields[i]), err)
		}
	}
	meta.Uint(uint64(len(cf.Methods)))
	for i := range cf.Methods {
		if err := p.method(cf, &cf.Methods[i]); err != nil {
			return fmt.Errorf("method %s%s: %w",
				cf.MemberName(&cf.Methods[i]), cf.MemberDesc(&cf.Methods[i]), err)
		}
	}
	return nil
}

func (p *packer) innerEntry(cf *classfile.ClassFile, e classfile.InnerClass) error {
	flags := uint64(e.AccessFlags)
	if e.Outer != 0 {
		flags |= flagInnerHasOuter
	}
	if e.InnerName != 0 {
		flags |= flagInnerHasName
	}
	p.st(sMeta).Uint(flags)
	k, err := ir.ResolveClass(cf, e.Inner)
	if err != nil {
		return err
	}
	p.classRef(k)
	if e.Outer != 0 {
		if k, err = ir.ResolveClass(cf, e.Outer); err != nil {
			return err
		}
		p.classRef(k)
	}
	if e.InnerName != 0 {
		p.simpleRef(cf.Utf8At(e.InnerName))
	}
	return nil
}

func (p *packer) field(cf *classfile.ClassFile, m *classfile.Member) error {
	desc := cf.MemberDesc(m)
	t, err := classfile.ParseFieldDescriptor(desc)
	if err != nil {
		return err
	}
	var cv *classfile.ConstantValueAttr
	flags := memberFlags(m.AccessFlags, m.Attrs)
	for _, a := range m.Attrs {
		switch a := a.(type) {
		case *classfile.ConstantValueAttr:
			cv = a
			flags |= flagHasConst
		case *classfile.SyntheticAttr, *classfile.DeprecatedAttr:
		default:
			return fmt.Errorf("unsupported field attribute %s", a.AttrName())
		}
	}
	p.st(sMeta).Uint(flags)
	p.fieldNameRef(cf.MemberName(m))
	p.classRef(ir.TypeToKey(t))
	if cv != nil {
		if err := p.constValue(cf, t, cv.Index); err != nil {
			return err
		}
	}
	return nil
}

// constValue encodes a field's ConstantValue; its kind is derived from the
// field type on both sides, so no tag is transmitted (§4).
func (p *packer) constValue(cf *classfile.ClassFile, t classfile.Type, idx uint16) error {
	if int(idx) >= len(cf.Pool) {
		return fmt.Errorf("ConstantValue index %d out of range", idx)
	}
	c := &cf.Pool[idx]
	want := constKindForType(t)
	if c.Kind != want {
		return fmt.Errorf("ConstantValue kind %v does not match field type %s", c.Kind, t)
	}
	switch c.Kind {
	case classfile.KindInteger:
		p.st(sIntCV).Int(int64(c.Int))
	case classfile.KindFloat:
		p.writeF32(c.Float)
	case classfile.KindLong:
		p.st(sLong).Int(c.Long)
	case classfile.KindDouble:
		p.writeF64(c.Double)
	case classfile.KindString:
		p.stringConstRef(cf.Utf8At(c.Str))
	}
	return nil
}

// constKindForType maps a field type to its ConstantValue pool kind.
func constKindForType(t classfile.Type) classfile.ConstKind {
	if t.Dims > 0 {
		return classfile.KindInvalid
	}
	switch t.Base {
	case 'B', 'C', 'S', 'Z', 'I':
		return classfile.KindInteger
	case 'F':
		return classfile.KindFloat
	case 'J':
		return classfile.KindLong
	case 'D':
		return classfile.KindDouble
	case 'L':
		return classfile.KindString
	}
	return classfile.KindInvalid
}

func (p *packer) writeF32(v float32) {
	bits := math.Float32bits(v)
	s := p.st(sFloat)
	for shift := 24; shift >= 0; shift -= 8 {
		if err := s.WriteByte(byte(bits >> shift)); err != nil {
			//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
			panic(err)
		}
	}
}

func (p *packer) writeF64(v float64) {
	bits := math.Float64bits(v)
	s := p.st(sDouble)
	for shift := 56; shift >= 0; shift -= 8 {
		if err := s.WriteByte(byte(bits >> shift)); err != nil {
			//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
			panic(err)
		}
	}
}

func (p *packer) method(cf *classfile.ClassFile, m *classfile.Member) error {
	sig, err := p.keys.sigEntry(cf.MemberDesc(m))
	if err != nil {
		return err
	}
	var code *classfile.CodeAttr
	var exc *classfile.ExceptionsAttr
	flags := memberFlags(m.AccessFlags, m.Attrs)
	for _, a := range m.Attrs {
		switch a := a.(type) {
		case *classfile.CodeAttr:
			code = a
			flags |= flagHasCode
		case *classfile.ExceptionsAttr:
			exc = a
		case *classfile.SyntheticAttr, *classfile.DeprecatedAttr:
		default:
			return fmt.Errorf("unsupported method attribute %s", a.AttrName())
		}
	}
	meta := p.st(sMeta)
	meta.Uint(flags)
	p.methodNameRef(cf.MemberName(m))
	p.sigRef(sig)
	if exc != nil {
		meta.Uint(uint64(len(exc.Classes)))
		for _, c := range exc.Classes {
			k, err := ir.ResolveClass(cf, c)
			if err != nil {
				return err
			}
			p.classRef(k)
		}
	} else {
		meta.Uint(0)
	}
	if code != nil {
		return p.code(cf, code)
	}
	return nil
}

func (p *packer) code(cf *classfile.ClassFile, code *classfile.CodeAttr) error {
	maxes := p.st(sMaxes)
	maxes.Uint(uint64(code.MaxStack))
	maxes.Uint(uint64(code.MaxLocals))
	p.st(sMeta).Uint(uint64(len(code.Handlers)))
	handlerOffsets := p.hoffs[:0]
	hs := p.st(sHandler)
	for _, h := range code.Handlers {
		hs.Uint(uint64(h.StartPC))
		hs.Uint(uint64(h.EndPC))
		hs.Uint(uint64(h.HandlerPC))
		if h.CatchType != 0 {
			if err := hs.WriteByte(1); err != nil {
				//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
				panic(err)
			}
			k, err := ir.ResolveClass(cf, h.CatchType)
			if err != nil {
				return err
			}
			p.classRef(k)
		} else if err := hs.WriteByte(0); err != nil {
			//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
			panic(err)
		}
		handlerOffsets = append(handlerOffsets, int(h.HandlerPC))
	}
	p.hoffs = handlerOffsets
	p.st(sMeta).Uint(uint64(len(code.Code)))

	insns, err := bytecode.DecodeAppend(p.insns[:0], code.Code)
	if err != nil {
		return err
	}
	p.insns = insns
	if p.res == nil {
		p.res = stackstate.NewClassFileResolver(cf)
	} else {
		p.res.Reset(cf)
	}
	res := p.res
	var sim *stackstate.Sim
	if p.opts.StackState {
		if p.sim == nil {
			p.sim = stackstate.New(res, handlerOffsets)
		} else {
			p.sim.Reset(res, handlerOffsets)
		}
		sim = p.sim
	}
	for i := range insns {
		if err := p.insn(cf, &insns[i], sim, res); err != nil {
			return fmt.Errorf("at offset %d (%s): %w", insns[i].Offset, insns[i].Op, err)
		}
	}
	return nil
}

// ldcPseudo maps a constant-loading instruction to its typed wire opcode.
func ldcPseudo(op bytecode.Op, kind classfile.ConstKind) (bytecode.Op, error) {
	switch op {
	case bytecode.Ldc, bytecode.LdcW:
		base := opLdcInt
		if op == bytecode.LdcW {
			base = opLdcWInt
		}
		switch kind {
		case classfile.KindInteger:
			return base, nil
		case classfile.KindFloat:
			return base + 1, nil
		case classfile.KindString:
			return base + 2, nil
		}
	case bytecode.Ldc2W:
		switch kind {
		case classfile.KindLong:
			return opLdc2Long, nil
		case classfile.KindDouble:
			return opLdc2Double, nil
		}
	}
	return 0, fmt.Errorf("%s of constant kind %v is not loadable", op, kind)
}

func (p *packer) insn(cf *classfile.ClassFile, in *bytecode.Instruction, sim *stackstate.Sim, res stackstate.Resolver) error {
	if sim != nil {
		sim.Begin(in.Offset)
	}
	ops := p.st(sOpcodes)
	isLdc := in.Op == bytecode.Ldc || in.Op == bytecode.LdcW || in.Op == bytecode.Ldc2W
	wire := in.Op
	if isLdc {
		if int(in.A) >= len(cf.Pool) {
			return fmt.Errorf("constant index %d out of range", in.A)
		}
		var err error
		if wire, err = ldcPseudo(in.Op, cf.Pool[in.A].Kind); err != nil {
			return err
		}
	} else if sim != nil {
		wire = sim.WireOp(in.Op)
	}
	if err := ops.WriteByte(byte(wire)); err != nil {
		//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
		panic(err)
	}

	ctx := 0
	if sim != nil {
		ctx = sim.ContextID()
	}
	switch bytecode.FormatOf(in.Op) {
	case bytecode.FmtNone:
		// no operands
	case bytecode.FmtLocal:
		p.writeReg(in.A, in.Wide && in.A <= 0xff)
	case bytecode.FmtIinc:
		redundant := in.Wide && in.A <= 0xff && in.B >= -128 && in.B <= 127
		p.writeReg(in.A, redundant)
		p.st(sIntImm).Int(int64(in.B))
	case bytecode.FmtSByte, bytecode.FmtSShort:
		p.st(sIntImm).Int(int64(in.A))
	case bytecode.FmtCP1, bytecode.FmtCP2:
		if isLdc {
			if err := p.ldcValue(cf, in.A); err != nil {
				return err
			}
			break
		}
		if err := p.cpOperand(cf, in, ctx); err != nil {
			return err
		}
	case bytecode.FmtInvokeInterface:
		m, err := ir.ResolveMember(cf, uint16(in.A))
		if err != nil {
			return err
		}
		e, err := p.keys.sigEntry(m.Desc)
		if err != nil {
			return err
		}
		if want := e.sig.ArgSlots() + 1; in.B != want {
			return fmt.Errorf("invokeinterface count %d, descriptor implies %d", in.B, want)
		}
		if err := p.memberRef(m, useInterface, ctx); err != nil {
			return err
		}
	case bytecode.FmtMultiANewArray:
		k, err := ir.ResolveClass(cf, uint16(in.A))
		if err != nil {
			return err
		}
		p.classRef(k)
		if err := p.st(sMiscOp).WriteByte(byte(in.B)); err != nil {
			//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
			panic(err)
		}
	case bytecode.FmtNewArray:
		if err := p.st(sMiscOp).WriteByte(byte(in.A)); err != nil {
			//classpack:vet-allow nopanic stream writes land in a bytes.Buffer and cannot fail
			panic(err)
		}
	case bytecode.FmtBranch2, bytecode.FmtBranch4:
		p.st(sBranch).Int(int64(in.A - in.Offset))
	case bytecode.FmtTableSwitch:
		sw := p.st(sSwitch)
		sw.Int(int64(in.Default - in.Offset))
		sw.Int(int64(in.Low))
		sw.Uint(uint64(len(in.Targets)))
		for _, t := range in.Targets {
			sw.Int(int64(t - in.Offset))
		}
	case bytecode.FmtLookupSwitch:
		sw := p.st(sSwitch)
		sw.Int(int64(in.Default - in.Offset))
		sw.Uint(uint64(len(in.Keys)))
		for i, k := range in.Keys {
			if i == 0 {
				sw.Int(int64(k))
			} else {
				diff := int64(k) - int64(in.Keys[i-1])
				if diff <= 0 {
					return fmt.Errorf("lookupswitch keys not ascending")
				}
				sw.Uint(uint64(diff))
			}
		}
		for _, t := range in.Targets {
			sw.Int(int64(t - in.Offset))
		}
	default:
		return fmt.Errorf("cannot pack opcode %s", in.Op)
	}

	if sim != nil {
		sim.StepInfo(in, stackstate.InfoFor(res, in))
	}
	return nil
}

// writeReg encodes a register operand together with a redundant-wide flag
// so that a wide prefix on a small operand survives the round trip.
func (p *packer) writeReg(reg int, redundantWide bool) {
	v := uint64(reg) << 1
	if redundantWide {
		v |= 1
	}
	p.st(sRegs).Uint(v)
}

// ldcValue encodes the constant loaded by an ldc-family instruction into
// its typed value stream; the wire opcode already names the type.
func (p *packer) ldcValue(cf *classfile.ClassFile, idx int) error {
	c := &cf.Pool[idx]
	switch c.Kind {
	case classfile.KindInteger:
		p.st(sIntLdc).Int(int64(c.Int))
	case classfile.KindFloat:
		p.writeF32(c.Float)
	case classfile.KindString:
		p.stringConstRef(cf.Utf8At(c.Str))
	case classfile.KindLong:
		p.st(sLong).Int(c.Long)
	case classfile.KindDouble:
		p.writeF64(c.Double)
	default:
		return fmt.Errorf("ldc of %v", c.Kind)
	}
	return nil
}

// cpOperand encodes the constant-pool operand of a non-ldc instruction.
func (p *packer) cpOperand(cf *classfile.ClassFile, in *bytecode.Instruction, ctx int) error {
	switch in.Op {
	case bytecode.Getfield, bytecode.Putfield:
		m, err := ir.ResolveMember(cf, uint16(in.A))
		if err != nil {
			return err
		}
		return p.memberRef(m, useGetfield, ctx)
	case bytecode.Getstatic, bytecode.Putstatic:
		m, err := ir.ResolveMember(cf, uint16(in.A))
		if err != nil {
			return err
		}
		return p.memberRef(m, useGetstatic, ctx)
	case bytecode.Invokevirtual:
		return p.resolveAndRef(cf, in, useVirtual, ctx)
	case bytecode.Invokespecial:
		return p.resolveAndRef(cf, in, useSpecial, ctx)
	case bytecode.Invokestatic:
		return p.resolveAndRef(cf, in, useStatic, ctx)
	case bytecode.New, bytecode.Anewarray, bytecode.Checkcast, bytecode.Instanceof:
		k, err := ir.ResolveClass(cf, uint16(in.A))
		if err != nil {
			return err
		}
		p.classRef(k)
		return nil
	default:
		return fmt.Errorf("unexpected constant-pool instruction %s", in.Op)
	}
}

func (p *packer) resolveAndRef(cf *classfile.ClassFile, in *bytecode.Instruction, use opUse, ctx int) error {
	m, err := ir.ResolveMember(cf, uint16(in.A))
	if err != nil {
		return err
	}
	return p.memberRef(m, use, ctx)
}
