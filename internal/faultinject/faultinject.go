// Package faultinject provides deterministic, seedable fault injection
// for the robustness test suites: byte-level corrupters that model the
// damage a production archive actually suffers (flipped bits, torn
// writes, zeroed pages, duplicated blocks), and failing-io wrappers that
// make readers and HTTP transports fail on demand.
//
// Everything here is deterministic: a Fault applies the same damage
// every time, and the random Plan generator is driven by an explicit
// seed, so a failing chaos case replays from its table entry alone.
package faultinject

import (
	"fmt"
	"math/rand"
)

// Fault is one deterministic corruption of a byte string. Apply returns
// a damaged copy and never mutates its input; out-of-range faults clamp
// to the input so any fault is applicable to any data.
type Fault interface {
	Name() string
	Apply(data []byte) []byte
}

// BitFlip flips one bit: bit Bit (0-7) of the byte at Off.
type BitFlip struct {
	Off int
	Bit uint
}

func (f BitFlip) Name() string { return fmt.Sprintf("bitflip@%d.%d", f.Off, f.Bit%8) }

func (f BitFlip) Apply(data []byte) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	off := clamp(f.Off, len(out)-1)
	out[off] ^= 1 << (f.Bit % 8)
	return out
}

// Truncate cuts the data off at Off, modeling a torn write or a short
// download.
type Truncate struct {
	Off int
}

func (f Truncate) Name() string { return fmt.Sprintf("truncate@%d", f.Off) }

func (f Truncate) Apply(data []byte) []byte {
	return append([]byte(nil), data[:clamp(f.Off, len(data))]...)
}

// ZeroPage overwrites Len bytes at Off with zeros, modeling a lost disk
// page or an unwritten sparse region.
type ZeroPage struct {
	Off, Len int
}

func (f ZeroPage) Name() string { return fmt.Sprintf("zeropage@%d+%d", f.Off, f.Len) }

func (f ZeroPage) Apply(data []byte) []byte {
	out := append([]byte(nil), data...)
	off := clamp(f.Off, len(out))
	end := clamp(off+f.Len, len(out))
	for i := off; i < end; i++ {
		out[i] = 0
	}
	return out
}

// DupBlock inserts a second copy of the Len bytes at Off immediately
// after the original, modeling a replayed or duplicated write.
type DupBlock struct {
	Off, Len int
}

func (f DupBlock) Name() string { return fmt.Sprintf("dupblock@%d+%d", f.Off, f.Len) }

func (f DupBlock) Apply(data []byte) []byte {
	off := clamp(f.Off, len(data))
	end := clamp(off+f.Len, len(data))
	out := make([]byte, 0, len(data)+(end-off))
	out = append(out, data[:end]...)
	out = append(out, data[off:end]...)
	return append(out, data[end:]...)
}

// clamp bounds v to [0, max].
func clamp(v, max int) int {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}

// Plan generates random-but-reproducible faults from an explicit seed.
type Plan struct {
	rng *rand.Rand
}

// NewPlan returns a fault generator whose output is fully determined by
// seed.
func NewPlan(seed int64) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed))}
}

// Next picks one random fault positioned within n bytes of data. The
// sequence of faults depends only on the seed and the sizes asked for.
func (p *Plan) Next(n int) Fault {
	if n < 1 {
		n = 1
	}
	off := p.rng.Intn(n)
	switch p.rng.Intn(4) {
	case 0:
		return BitFlip{Off: off, Bit: uint(p.rng.Intn(8))}
	case 1:
		return Truncate{Off: off}
	case 2:
		return ZeroPage{Off: off, Len: 1 + p.rng.Intn(64)}
	default:
		return DupBlock{Off: off, Len: 1 + p.rng.Intn(64)}
	}
}
