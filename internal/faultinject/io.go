package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
)

// ErrInjected is the error every failing wrapper returns, so tests can
// tell injected faults from real ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected failure")

// FailingReader wraps an io.Reader and fails the Nth Read call (1-based).
// With Short set, the failing call instead returns half the requested
// bytes and no error — a short read — and subsequent calls fail.
type FailingReader struct {
	R      io.Reader
	FailOn int
	Short  bool
	calls  int
}

func (f *FailingReader) Read(p []byte) (int, error) {
	f.calls++
	if f.calls == f.FailOn && f.Short && len(p) > 1 {
		return f.R.Read(p[:len(p)/2])
	}
	if f.calls >= f.FailOn && (!f.Short || f.calls > f.FailOn) {
		return 0, ErrInjected
	}
	return f.R.Read(p)
}

// FailingRoundTripper makes the first FailFirst HTTP attempts fail, then
// delegates to Next (http.DefaultTransport when nil). With Status == 0
// the failure is a transport error (connection refused analogue);
// otherwise it is a complete HTTP response with that status code and a
// JSON error body shaped like jpackd's envelope. Attempts counts every
// RoundTrip, so tests can assert how often a client retried. Safe for
// concurrent use.
type FailingRoundTripper struct {
	Next      http.RoundTripper
	FailFirst int32
	Status    int
	// RetryAfter, when non-empty, is set as the Retry-After header on
	// injected HTTP responses — for testing clients that honor the
	// server's shed/drain backpressure hint.
	RetryAfter string
	attempts   atomic.Int32
}

// Attempts reports how many requests have passed through.
func (f *FailingRoundTripper) Attempts() int { return int(f.attempts.Load()) }

func (f *FailingRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	n := f.attempts.Add(1)
	if req.Body != nil {
		req.Body.Close()
	}
	if n <= f.FailFirst {
		if f.Status == 0 {
			return nil, fmt.Errorf("attempt %d: %w", n, ErrInjected)
		}
		return injectedResponse(req, f.Status, f.RetryAfter), nil
	}
	next := f.Next
	if next == nil {
		next = http.DefaultTransport
	}
	// The body was consumed above to mimic a server that read the
	// request before failing; rebuild it for the real attempt.
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		req.Body = body
	}
	return next.RoundTrip(req)
}

// injectedResponse builds a minimal jpackd-style error response.
func injectedResponse(req *http.Request, status int, retryAfter string) *http.Response {
	body := fmt.Sprintf(`{"error":{"code":"injected","message":"injected %d"}}`, status)
	h := http.Header{"Content-Type": []string{"application/json; charset=utf-8"}}
	if retryAfter != "" {
		h.Set("Retry-After", retryAfter)
	}
	return &http.Response{
		StatusCode: status,
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     h,
		Body:       io.NopCloser(strings.NewReader(body)),
		Request:    req,
	}
}
