package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFaultsNeverMutateInput(t *testing.T) {
	orig := []byte("0123456789abcdef")
	faults := []Fault{
		BitFlip{Off: 3, Bit: 1},
		Truncate{Off: 4},
		ZeroPage{Off: 2, Len: 8},
		DupBlock{Off: 1, Len: 4},
	}
	for _, f := range faults {
		snapshot := append([]byte(nil), orig...)
		f.Apply(orig)
		if !bytes.Equal(orig, snapshot) {
			t.Errorf("%s mutated its input", f.Name())
		}
	}
}

func TestFaultShapes(t *testing.T) {
	data := []byte{0, 0, 0, 0}
	if got := (BitFlip{Off: 1, Bit: 3}).Apply(data); got[1] != 8 {
		t.Errorf("BitFlip: %v", got)
	}
	if got := (Truncate{Off: 2}).Apply(data); len(got) != 2 {
		t.Errorf("Truncate: %d bytes", len(got))
	}
	if got := (ZeroPage{Off: 1, Len: 2}).Apply([]byte{9, 9, 9, 9}); !bytes.Equal(got, []byte{9, 0, 0, 9}) {
		t.Errorf("ZeroPage: %v", got)
	}
	if got := (DupBlock{Off: 1, Len: 2}).Apply([]byte{1, 2, 3, 4}); !bytes.Equal(got, []byte{1, 2, 3, 2, 3, 4}) {
		t.Errorf("DupBlock: %v", got)
	}
}

func TestFaultsClampOutOfRange(t *testing.T) {
	data := []byte{1, 2, 3}
	cases := []Fault{
		BitFlip{Off: 99, Bit: 12},
		BitFlip{Off: -5},
		Truncate{Off: 99},
		Truncate{Off: -1},
		ZeroPage{Off: 99, Len: 99},
		ZeroPage{Off: -3, Len: -3},
		DupBlock{Off: 99, Len: 99},
		DupBlock{Off: -1, Len: -1},
	}
	for _, f := range cases {
		got := f.Apply(data) // must not panic
		if len(got) > 2*len(data) {
			t.Errorf("%s grew data unexpectedly: %d bytes", f.Name(), len(got))
		}
	}
	for _, f := range cases {
		if got := f.Apply(nil); len(got) != 0 {
			t.Errorf("%s on empty input returned %d bytes", f.Name(), len(got))
		}
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	a, b := NewPlan(7), NewPlan(7)
	for i := 0; i < 100; i++ {
		if fa, fb := a.Next(1000), b.Next(1000); fa.Name() != fb.Name() {
			t.Fatalf("plans diverged at step %d: %s vs %s", i, fa.Name(), fb.Name())
		}
	}
	c := NewPlan(8)
	same := 0
	for i := 0; i < 100; i++ {
		if NewPlan(7).Next(1000).Name() == c.Next(1000).Name() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestFailingReader(t *testing.T) {
	fr := &FailingReader{R: strings.NewReader("0123456789"), FailOn: 2}
	buf := make([]byte, 4)
	if n, err := fr.Read(buf); err != nil || n != 4 {
		t.Fatalf("first read: n=%d err=%v", n, err)
	}
	if _, err := fr.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read err = %v, want ErrInjected", err)
	}
	if _, err := fr.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("reads after the failure must keep failing, got %v", err)
	}
}

func TestFailingReaderShort(t *testing.T) {
	fr := &FailingReader{R: strings.NewReader("0123456789"), FailOn: 1, Short: true}
	buf := make([]byte, 8)
	n, err := fr.Read(buf)
	if err != nil || n != 4 {
		t.Fatalf("short read: n=%d err=%v, want 4 bytes and no error", n, err)
	}
	if _, err := fr.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after short read err = %v, want ErrInjected", err)
	}
	// io.ReadFull surfaces the injected error, not a silent short result.
	fr = &FailingReader{R: strings.NewReader("0123456789"), FailOn: 1, Short: true}
	if _, err := io.ReadFull(fr, make([]byte, 10)); !errors.Is(err, ErrInjected) {
		t.Fatalf("ReadFull err = %v, want ErrInjected", err)
	}
}
