package faultinject

import (
	"errors"
	"io/fs"
	"os"
	"sync"

	"classpack/internal/vfs"
)

// ErrCrashed is returned by every CrashFS operation at and after a
// scripted crash point: the simulated process is dead, so nothing more
// reaches the disk.
var ErrCrashed = errors.New("faultinject: process crashed")

// CrashFS implements vfs.FS (castore's write-path filesystem seam) over
// the real filesystem with two
// injectable failure modes, driving the process-level fault drills:
//
//   - A scripted crash point (CrashAt): the Nth invocation of a named
//     operation behaves like a kill -9 at that instant — the operation
//     is not performed (a crashing write is torn: only the first half
//     of the buffer lands), it returns ErrCrashed, and every later
//     operation returns ErrCrashed too. Whatever the earlier operations
//     wrote stays on disk, exactly the state a restarted daemon finds.
//
//   - A standing write error (SetWriteError): data-writing operations
//     (write, sync) fail with the given error — ENOSPC and EIO drills —
//     while creates, removes, and renames still work, like a full disk
//     that can still drop files. Clearing it models the disk recovering.
//
// Operation names, in the order one castore Put performs them:
// "mkdir", "create", "write", "sync", "close", "chmod", "rename",
// "syncdir"; "remove" covers deletions. Trace returns the sequence
// actually performed, so a drill can enumerate every crash point of a
// write path without hard-coding its shape. Safe for concurrent use.
type CrashFS struct {
	mu       sync.Mutex
	crashed  bool
	script   map[string]int // op -> invocations remaining before the crash fires
	writeErr error
	trace    []string
}

// NewCrashFS returns a CrashFS with no scripted faults: a transparent
// pass-through that records its operation trace.
func NewCrashFS() *CrashFS { return &CrashFS{} }

// CrashAt scripts the crash: the nth (1-based) invocation of op fails
// as a process death. Scripting a new point resets a previous crash, so
// one CrashFS can drive a drill matrix point by point.
func (c *CrashFS) CrashAt(op string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = false
	c.script = map[string]int{op: n}
}

// SetWriteError makes write and sync operations fail with err until
// cleared with SetWriteError(nil).
func (c *CrashFS) SetWriteError(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writeErr = err
}

// Trace returns a copy of the operations performed so far.
func (c *CrashFS) Trace() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.trace...)
}

// ResetTrace clears the recorded operation trace.
func (c *CrashFS) ResetTrace() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trace = nil
}

// errCrashNow distinguishes "this very call triggered the crash" (the
// torn-write case acts on it) from calls arriving after death.
var errCrashNow = errors.New("faultinject: crash point reached")

// step records op and decides its fate: nil to proceed, errCrashNow if
// this call is the scripted crash, ErrCrashed if the process is already
// dead.
func (c *CrashFS) step(op string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	c.trace = append(c.trace, op)
	if n, ok := c.script[op]; ok {
		if n <= 1 {
			c.crashed = true
			return errCrashNow
		}
		c.script[op] = n - 1
	}
	return nil
}

func (c *CrashFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := c.step("mkdir"); err != nil {
		return ErrCrashed
	}
	return os.MkdirAll(path, perm)
}

func (c *CrashFS) CreateTemp(dir, pattern string) (vfs.File, error) {
	if err := c.step("create"); err != nil {
		return nil, ErrCrashed
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &crashFile{f: f, fs: c}, nil
}

func (c *CrashFS) Chmod(name string, mode fs.FileMode) error {
	if err := c.step("chmod"); err != nil {
		return ErrCrashed
	}
	return os.Chmod(name, mode)
}

func (c *CrashFS) Rename(oldpath, newpath string) error {
	if err := c.step("rename"); err != nil {
		return ErrCrashed
	}
	return os.Rename(oldpath, newpath)
}

func (c *CrashFS) Remove(name string) error {
	if err := c.step("remove"); err != nil {
		return ErrCrashed
	}
	return os.Remove(name)
}

func (c *CrashFS) SyncDir(dir string) error {
	if err := c.step("syncdir"); err != nil {
		return ErrCrashed
	}
	return vfs.SyncDir(dir)
}

// crashFile is the CrashFS file handle; its write and sync honor both
// the crash script and the standing write error.
type crashFile struct {
	f  *os.File
	fs *CrashFS
}

func (cf *crashFile) Name() string { return cf.f.Name() }

func (cf *crashFile) Write(p []byte) (int, error) {
	cf.fs.mu.Lock()
	werr := cf.fs.writeErr
	cf.fs.mu.Unlock()
	if werr != nil {
		return 0, werr
	}
	switch err := cf.fs.step("write"); err {
	case nil:
		return cf.f.Write(p)
	case errCrashNow:
		// Torn write: half the buffer lands before the process dies.
		if len(p) > 1 {
			cf.f.Write(p[:len(p)/2])
		}
		return 0, ErrCrashed
	default:
		return 0, ErrCrashed
	}
}

func (cf *crashFile) Sync() error {
	cf.fs.mu.Lock()
	werr := cf.fs.writeErr
	cf.fs.mu.Unlock()
	if werr != nil {
		return werr
	}
	if err := cf.fs.step("sync"); err != nil {
		return ErrCrashed
	}
	return cf.f.Sync()
}

func (cf *crashFile) Close() error {
	if err := cf.fs.step("close"); err != nil {
		// The process died with the descriptor open; release it quietly
		// so the drill process itself does not leak file handles.
		cf.f.Close()
		return ErrCrashed
	}
	return cf.f.Close()
}
