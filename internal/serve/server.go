// Package serve implements jpackd, the streaming pack/unpack HTTP
// service: POST /pack compresses an uploaded jar into the Pugh wire
// format, POST /unpack rebuilds a jar from a packed archive (with
// ?salvage=1 recovering what it can from damaged input as a JSON
// damage report plus partial jar), POST
// /verify structurally checks a jar's classes, and GET /archive/{digest}
// re-serves previously packed artifacts from a content-addressed cache
// (internal/castore) — whole, as a ?classes= subset jar, or one class at
// a time via /archive/{digest}/class/{name}, decoding only the chunks a
// version-3 archive needs. GET /delta/{from}/{to} computes a CJPD patch
// between any two cached archives so clients holding the old version
// download only the changed classes.
// Concurrent encode jobs are bounded by deadline-aware admission
// control — a bounded queue with 429 + Retry-After load shedding and a
// memory-budget gate over admitted request bytes — feeding the
// classpack worker-pool pipeline; concurrent identical /pack requests
// are coalesced onto one encode (singleflight by content digest); a
// failing cache volume flips the server into degraded mode (serve and
// encode without caching, auto-probed for recovery) instead of failing
// requests; request bodies are size-capped, every request carries a
// deadline, errors are structured JSON, and GET /metrics exports expvar
// counters including an encode-latency histogram. GET /healthz reports
// {"status":"ok"} or {"status":"degraded"}.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"classpack"
	"classpack/internal/archive"
	"classpack/internal/castore"
	"classpack/internal/par"
)

// Default operational limits; see Config.
const (
	DefaultMaxRequestBytes = 64 << 20
	DefaultRequestTimeout  = 2 * time.Minute
	DefaultDrainTimeout    = 30 * time.Second
	// DefaultQueueFactor scales MaxJobs into the default queue bound:
	// up to 4 requests may wait per job slot before shedding begins.
	DefaultQueueFactor = 4
	// DefaultRetryAfterHint floors the Retry-After value on shed (429)
	// responses when no wait estimate is available yet.
	DefaultRetryAfterHint = time.Second
	// DefaultProbeInterval bounds how often a degraded cache volume is
	// re-probed for recovery.
	DefaultProbeInterval = 5 * time.Second
)

// Header names the server sets on pack/archive responses.
const (
	HeaderDigest  = "X-Jpackd-Digest"  // content digest of the packed artifact's input
	HeaderCache   = "X-Jpackd-Cache"   // "hit" or "miss" on POST /pack
	HeaderSkipped = "X-Jpackd-Skipped" // JSON array of non-class jar members (miss only)
)

// Config parameterizes a Server. The zero value is usable: default
// pack options, no cache, default limits.
type Config struct {
	// Options are the pack options every /pack request encodes with.
	// Concurrency bounds the workers *within* one encode job; MaxJobs
	// bounds how many jobs run at once, so total parallelism is roughly
	// MaxJobs x Concurrency. The packed bytes do not depend on either.
	// The decode-side fields (MaxDecodedBytes, MaxClassCount) bound
	// every /unpack request against decompression bombs.
	Options classpack.Options

	// Store, when non-nil, caches pack results by content digest.
	// Repeated packs of identical input are served from it without
	// re-encoding, and GET /archive/{digest} reads from it.
	Store *castore.Store

	// MaxRequestBytes caps request bodies (0 = DefaultMaxRequestBytes).
	MaxRequestBytes int64
	// RequestTimeout bounds each request, including time spent waiting
	// for a job slot (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// MaxJobs bounds concurrent encode/decode/verify jobs
	// (0 = GOMAXPROCS).
	MaxJobs int
	// MaxQueue bounds how many requests may wait for a job slot before
	// admission control sheds new arrivals with 429 + Retry-After
	// (0 = DefaultQueueFactor*MaxJobs; negative = no queueing, shed
	// whenever every slot is busy).
	MaxQueue int
	// MemoryBudget caps the total request-body bytes admitted to job
	// slots at once; requests beyond it are shed with 429 (0 =
	// unlimited). A single request larger than the whole budget is
	// still admitted when nothing else is in flight.
	MemoryBudget int64
	// RetryAfterHint floors the Retry-After value on shed responses
	// (0 = DefaultRetryAfterHint). When the queue has history, the
	// estimate from observed job durations is used instead if larger.
	RetryAfterHint time.Duration
	// ProbeInterval bounds how often a degraded cache volume is
	// re-probed for recovery (0 = DefaultProbeInterval).
	ProbeInterval time.Duration
	// DrainTimeout bounds how long Serve waits for in-flight requests
	// after its context is cancelled (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration

	// EnablePprof exposes the runtime profiler under GET /debug/pprof/
	// (CPU, heap, goroutine, trace). Off by default: the endpoints
	// reveal internals and let any client start a profile, so they are
	// only for operator-trusted deployments. Profiler requests bypass
	// the request deadline (a 30s CPU profile must outlive
	// RequestTimeout).
	EnablePprof bool

	// packStarted, when set, is called after a pack job acquires its
	// slot and before encoding begins. Test-only seam for exercising
	// in-flight shutdown and queue-timeout behavior.
	packStarted func()
}

// Server is the jpackd HTTP service. Create one with New; it is safe
// for concurrent use.
type Server struct {
	cfg     Config
	metrics *Metrics
	adm     *admission
	flight  packFlight
	deg     *degrade
	handler http.Handler
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = DefaultQueueFactor * cfg.MaxJobs
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.RetryAfterHint <= 0 {
		cfg.RetryAfterHint = DefaultRetryAfterHint
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(),
	}
	s.adm = newAdmission(cfg.MaxJobs, cfg.MaxQueue, cfg.MemoryBudget, cfg.RetryAfterHint, s.metrics)
	s.deg = newDegrade(cfg.Store, cfg.ProbeInterval, s.metrics)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /pack", s.handlePack)
	mux.HandleFunc("POST /unpack", s.handleUnpack)
	mux.HandleFunc("POST /verify", s.handleVerify)
	mux.HandleFunc("GET /archive/{digest}", s.handleArchive)
	mux.HandleFunc("GET /archive/{digest}/class/{name...}", s.handleArchiveClass)
	mux.HandleFunc("GET /delta/{from}/{to}", s.handleDelta)
	mux.Handle("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.handler = s.instrument(mux)
	if cfg.EnablePprof {
		// Profiler endpoints mount on a root mux *outside* instrument:
		// a ?seconds=30 CPU profile must not be cut off by the request
		// deadline, and profile bodies shouldn't count against the
		// request-size cap. They still tick the request counter.
		root := http.NewServeMux()
		root.HandleFunc("GET /debug/pprof/", func(w http.ResponseWriter, r *http.Request) {
			s.metrics.Requests.Add(1)
			pprof.Index(w, r)
		})
		root.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		root.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		root.Handle("/", s.handler)
		s.handler = root
	}
	return s
}

// Metrics exposes the server's counters (e.g. for the smoke check).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the root HTTP handler: request accounting, body size
// cap, and per-request deadline wrapped around the endpoint mux.
func (s *Server) Handler() http.Handler { return s.handler }

func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Requests.Add(1)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// Serve accepts connections on ln until ctx is cancelled (e.g. by
// SIGTERM via signal.NotifyContext), then stops the listener and drains
// in-flight requests for up to DrainTimeout before returning. A request
// mid-encode at cancellation time runs to completion and its response
// is delivered before Serve returns.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// Shed the job queue first: requests that hold a slot run to
		// completion under the drain; requests still waiting for one are
		// woken and answered 503 immediately, so the drain window is
		// spent finishing admitted work, not starting queued work.
		s.adm.startDrain()
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		shutdownErr <- hs.Shutdown(dctx)
	}()
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Serve only returns ErrServerClosed once Shutdown has begun, so
	// this receive waits exactly for the drain to finish.
	//classpack:vet-allow ctxflow bounded by DrainTimeout: Shutdown's context expires and its error is sent exactly once
	return <-shutdownErr
}

// apiError is a structured endpoint failure: an HTTP status plus a
// stable machine-readable code. retryAfter, when set, becomes a
// Retry-After header so shed clients know when to come back.
type apiError struct {
	status     int
	code       string
	message    string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.message }

func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, message: fmt.Sprintf(format, args...)}
}

// writeError emits the structured JSON error envelope every endpoint
// uses: {"error":{"code":...,"message":...}}.
func (s *Server) writeError(w http.ResponseWriter, err *apiError) {
	s.metrics.Errors.Add(1)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err.retryAfter > 0 {
		// Whole seconds, rounded up: Retry-After has no finer grain.
		secs := (err.retryAfter + time.Second - 1) / time.Second
		w.Header().Set("Retry-After", itoa(int64(secs)))
	}
	w.WriteHeader(err.status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": err.code, "message": err.message},
	})
}

// handleHealthz is the liveness probe; it also reports (and, as a probe
// visit, helps recover from) cache-degraded mode.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.deg.maybeProbe()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	status := "ok"
	if s.deg.active() {
		status = "degraded"
	}
	json.NewEncoder(w).Encode(map[string]string{"status": status})
}

// readBody drains the (size-capped) request body, translating the cap
// and client disconnects into structured errors.
func (s *Server) readBody(r *http.Request) ([]byte, *apiError) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, errf(http.StatusRequestEntityTooLarge, "too_large",
				"request body exceeds the %d-byte limit", tooBig.Limit)
		}
		return nil, errf(http.StatusBadRequest, "bad_request", "reading request body: %v", err)
	}
	s.metrics.BytesIn.Add(int64(len(data)))
	return data, nil
}

// acquireJob admits one sizeless job through admission control (decode,
// verify, and extraction jobs whose memory cost the body cap already
// bounds). The returned release func must be called exactly once.
func (s *Server) acquireJob(ctx context.Context) (release func(), apiErr *apiError) {
	return s.adm.acquire(ctx, 0)
}

// writePayload sends a binary response body and counts it.
func (s *Server) writePayload(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", itoa(int64(len(data))))
	if _, err := w.Write(data); err == nil {
		s.metrics.BytesOut.Add(int64(len(data)))
	}
}

// cacheKey derives the content digest for a pack input: SHA-256 over
// the pack-option fingerprint and the input bytes, so archives packed
// under different options never alias. Concurrency is excluded — packed
// bytes are identical at every worker count.
func (s *Server) cacheKey(input []byte) string {
	o := s.cfg.Options
	fp := fmt.Sprintf("cjp1 scheme=%d stackstate=%t compress=%t preload=%t chunk=%d",
		o.Scheme, o.StackState, o.Compress, o.Preload, o.ChunkClasses)
	return castore.Key([]byte(fp), input)
}

// cacheGet reads one object from the store, translating read failures
// into a logged, counted miss: the request still succeeds by
// re-encoding, but the failure stays visible.
func (s *Server) cacheGet(digest string) ([]byte, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	packed, ok, err := s.cfg.Store.Get(digest)
	if err != nil {
		s.metrics.CacheErrors.Add(1)
		log.Printf("jpackd: cache read for %s failed: %v", digest, err)
		return nil, false
	}
	return packed, ok
}

// cachePut stores an encode result, best-effort: a full or failing disk
// must not fail the request — the encoded bytes are already in hand.
// The first write failure flips the server into degraded mode, after
// which writes are bypassed (counted, not attempted) until a recovery
// probe finds the volume healthy again.
func (s *Server) cachePut(digest string, packed []byte) {
	if s.cfg.Store == nil {
		return
	}
	if s.deg.active() {
		s.metrics.CacheBypass.Add(1)
		s.deg.maybeProbe()
		return
	}
	if err := s.cfg.Store.Put(digest, packed); err != nil {
		s.metrics.CacheErrors.Add(1)
		log.Printf("jpackd: cache write for %s failed: %v", digest, err)
		s.deg.onPutError(err)
	}
}

// packResponse writes a successful /pack payload with its headers.
// skipped is included only when non-nil (misses and coalesced
// responses; cache hits no longer know it).
func (s *Server) packResponse(w http.ResponseWriter, digest, cache string, packed []byte, skipped []string) {
	w.Header().Set(HeaderDigest, digest)
	w.Header().Set(HeaderCache, cache)
	if skipped != nil {
		skippedJSON, _ := json.Marshal(skipped)
		w.Header().Set(HeaderSkipped, string(skippedJSON))
	}
	s.writePayload(w, packed)
}

func (s *Server) handlePack(w http.ResponseWriter, r *http.Request) {
	s.metrics.PackRequests.Add(1)
	input, apiErr := s.readBody(r)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	digest := s.cacheKey(input)
	if packed, ok := s.cacheGet(digest); ok {
		s.metrics.CacheHits.Add(1)
		s.packResponse(w, digest, "hit", packed, nil)
		return
	}
	s.metrics.CacheMisses.Add(1)
	// Singleflight: concurrent identical packs coalesce onto the first
	// request's encode. Followers wait on the leader's result without
	// consuming job slots or queue positions.
	call, leader := s.flight.join(digest)
	if !leader {
		select {
		case <-call.done:
			res := call.res
			if res.apiErr != nil {
				s.writeError(w, res.apiErr)
				return
			}
			s.metrics.Coalesced.Add(1)
			s.packResponse(w, digest, "coalesced", res.packed, res.skipped)
		case <-r.Context().Done():
			s.writeError(w, errf(http.StatusServiceUnavailable, "timeout",
				"request deadline expired while awaiting the in-flight encode for this digest"))
		}
		return
	}
	res := s.encodePack(r, input, digest)
	s.flight.finish(digest, call, res)
	if res.apiErr != nil {
		s.writeError(w, res.apiErr)
		return
	}
	s.packResponse(w, digest, res.cache, res.packed, res.skipped)
}

// encodePack runs the leader's half of a /pack: admission, encode,
// cache write. Its packResult is shared verbatim with every coalesced
// follower.
func (s *Server) encodePack(r *http.Request, input []byte, digest string) packResult {
	// Double-check the cache after winning the flight: a previous
	// leader may have finished between this request's miss and its
	// join, and serving its cached bytes skips a whole encode.
	if packed, ok := s.cacheGet(digest); ok {
		s.metrics.CacheHits.Add(1)
		return packResult{packed: packed, cache: "hit"}
	}
	release, apiErr := s.adm.acquire(r.Context(), int64(len(input)))
	if apiErr != nil {
		return packResult{apiErr: apiErr}
	}
	defer release()
	if s.cfg.packStarted != nil {
		s.cfg.packStarted()
	}
	opts := s.cfg.Options
	start := time.Now()
	packed, skipped, err := classpack.PackJar(input, &opts)
	s.metrics.observeEncode(time.Since(start))
	if err != nil {
		return packResult{apiErr: errf(http.StatusUnprocessableEntity, "encode_failed", "pack: %v", err)}
	}
	s.metrics.Encodes.Add(1)
	s.cachePut(digest, packed)
	if skipped == nil {
		skipped = []string{}
	}
	return packResult{packed: packed, skipped: skipped, cache: "miss"}
}

func (s *Server) handleUnpack(w http.ResponseWriter, r *http.Request) {
	s.metrics.UnpackRequests.Add(1)
	input, apiErr := s.readBody(r)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	release, apiErr := s.acquireJob(r.Context())
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	defer release()
	opts := s.cfg.Options
	if r.URL.Query().Get("salvage") == "1" {
		s.salvageUnpack(w, input, &opts)
		return
	}
	jar, err := classpack.UnpackToJarOpts(input, &opts)
	if err != nil {
		// A failed decode means the client sent a bad archive — that is a
		// 400, not a server fault. Cap violations and malformed bytes get
		// distinct codes so clients can tell bomb rejection from garbage.
		code := "decode_failed"
		if _, ok := classpack.AsCorrupt(err); ok {
			code = "corrupt_archive"
		}
		if errors.Is(err, classpack.ErrTooLarge) {
			code = "archive_limits"
		}
		s.writeError(w, errf(http.StatusBadRequest, code, "unpack: %v", err))
		return
	}
	s.metrics.Decodes.Add(1)
	s.writePayload(w, jar)
}

// SalvageResponse is the JSON body of POST /unpack?salvage=1: the
// salvage accounting and damage report plus the rebuilt jar of every
// recovered class (base64 in the JSON encoding). The response status is
// 200 when the archive was clean and 206 Partial Content when anything
// was lost or damaged, so callers can tell at the HTTP layer.
type SalvageResponse struct {
	Total     int                      `json:"total"`
	Recovered int                      `json:"recovered"`
	Lost      int                      `json:"lost"`
	Damage    []classpack.DamageRegion `json:"damage,omitempty"`
	Jar       []byte                   `json:"jar"`
}

// salvageUnpack answers POST /unpack?salvage=1: decode as much of a
// damaged archive as possible instead of failing the request.
func (s *Server) salvageUnpack(w http.ResponseWriter, input []byte, opts *classpack.Options) {
	res, err := classpack.Salvage(input, opts)
	if err != nil {
		// Salvage only errors on inputs that are not a packed archive at
		// all; there is nothing to recover from those.
		s.writeError(w, errf(http.StatusBadRequest, "not_archive", "salvage: %v", err))
		return
	}
	jar, err := res.Jar()
	if err != nil {
		s.writeError(w, errf(http.StatusInternalServerError, "internal", "rebuilding jar: %v", err))
		return
	}
	s.metrics.Salvages.Add(1)
	body := SalvageResponse{
		Total:     res.TotalClasses,
		Recovered: res.Recovered,
		Lost:      res.Lost,
		Damage:    res.Damage,
		Jar:       jar,
	}
	status := http.StatusOK
	if res.Lost > 0 || len(res.Damage) > 0 {
		status = http.StatusPartialContent
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if json.NewEncoder(w).Encode(body) == nil {
		s.metrics.BytesOut.Add(int64(len(jar)))
	}
}

// VerifyResult is the JSON body of POST /verify responses.
type VerifyResult struct {
	Classes int            `json:"classes"`           // class members checked
	Skipped int            `json:"skipped"`           // non-class members ignored
	Invalid []InvalidClass `json:"invalid,omitempty"` // failures, in jar order

	// Bytecode mode (?bytecode=1) only: per-method verifier verdicts,
	// in jar order, plus the total method count.
	Methods  int             `json:"methods,omitempty"`
	Verdicts []MethodVerdict `json:"verdicts,omitempty"`
}

// InvalidClass names one class member that failed verification.
type InvalidClass struct {
	Name  string `json:"name"`
	Error string `json:"error"`
}

// MethodVerdict is one method's bytecode-verification outcome in a
// ?bytecode=1 response. PC is -1 when the failure is structural (or the
// method is ok); Op and Error are empty for clean methods.
type MethodVerdict struct {
	Name   string `json:"name"` // jar member holding the method
	Class  string `json:"class"`
	Method string `json:"method"`
	Desc   string `json:"desc"`
	OK     bool   `json:"ok"`
	PC     int    `json:"pc"`
	Op     string `json:"op,omitempty"`
	Error  string `json:"error,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.metrics.VerifyRequests.Add(1)
	input, apiErr := s.readBody(r)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	deep := r.URL.Query().Get("deep") == "1"
	bytecodeMode := r.URL.Query().Get("bytecode") == "1"
	members, err := archive.ReadJar(input)
	if err != nil {
		s.writeError(w, errf(http.StatusBadRequest, "bad_jar", "reading jar: %v", err))
		return
	}
	var names []string
	var classes [][]byte
	res := VerifyResult{}
	for _, m := range members {
		if strings.HasSuffix(m.Name, ".class") {
			names = append(names, m.Name)
			classes = append(classes, m.Data)
		} else {
			res.Skipped++
		}
	}
	release, apiErr := s.acquireJob(r.Context())
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	defer release()
	res.Classes = len(classes)
	if bytecodeMode {
		s.verifyBytecode(names, classes, &res)
	} else {
		errs := classpack.VerifyAll(classes, deep, s.cfg.Options.Concurrency)
		for i, e := range errs {
			if e != nil {
				res.Invalid = append(res.Invalid, InvalidClass{Name: names[i], Error: e.Error()})
			}
		}
	}
	s.metrics.Verifies.Add(1)
	status := http.StatusOK
	if len(res.Invalid) > 0 || failedVerdicts(res.Verdicts) {
		status = http.StatusUnprocessableEntity
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(res)
}

// verifyBytecode fills res with per-method verifier verdicts for every
// class, in jar order. Classes fan out over the configured worker
// bound; verdict order is independent of it.
func (s *Server) verifyBytecode(names []string, classes [][]byte, res *VerifyResult) {
	perClass := make([][]classpack.MethodVerdict, len(classes))
	parseErrs := make([]error, len(classes))
	_ = par.Do(s.cfg.Options.Concurrency, len(classes), func(i int) error {
		perClass[i], parseErrs[i] = classpack.VerifyBytecode(classes[i])
		return nil
	})
	for i := range classes {
		if parseErrs[i] != nil {
			res.Invalid = append(res.Invalid, InvalidClass{Name: names[i], Error: parseErrs[i].Error()})
			continue
		}
		for _, v := range perClass[i] {
			res.Methods++
			res.Verdicts = append(res.Verdicts, MethodVerdict{
				Name:   names[i],
				Class:  v.Class,
				Method: v.Method,
				Desc:   v.Desc,
				OK:     v.OK,
				PC:     v.PC,
				Op:     v.Op,
				Error:  v.Err,
			})
		}
	}
}

// failedVerdicts reports whether any per-method verdict failed.
func failedVerdicts(vs []MethodVerdict) bool {
	for _, v := range vs {
		if !v.OK {
			return true
		}
	}
	return false
}

// loadArchive resolves the request's {digest} path value against the
// content-addressed store.
func (s *Server) loadArchive(r *http.Request) ([]byte, *apiError) {
	return s.loadCached(r.PathValue("digest"))
}

// openCached opens a cached archive for lazy extraction. Failures are
// server faults: the store only holds archives this server packed.
func (s *Server) openCached(packed []byte) (*classpack.Archive, *apiError) {
	opts := s.cfg.Options
	a, err := classpack.OpenArchiveBytes(packed, &opts)
	if err != nil {
		return nil, errf(http.StatusInternalServerError, "corrupt_cache",
			"opening cached archive: %v", err)
	}
	return a, nil
}

func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	s.metrics.ArchiveRequests.Add(1)
	packed, apiErr := s.loadArchive(r)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	if pat := r.URL.Query().Get("classes"); pat != "" {
		s.archiveSubset(w, r, packed, pat)
		return
	}
	w.Header().Set(HeaderDigest, r.PathValue("digest"))
	s.writePayload(w, packed)
}

// archiveSubset answers GET /archive/{digest}?classes=P: a jar holding
// every class matching the comma-separated name-or-glob patterns P.
// Version-3 archives decode only the chunks the selection touches; the
// rest of the archive is never unpacked.
func (s *Server) archiveSubset(w http.ResponseWriter, r *http.Request, packed []byte, pat string) {
	release, apiErr := s.acquireJob(r.Context())
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	defer release()
	a, apiErr := s.openCached(packed)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	// Selection resolves to ordinals, not names, so archives holding
	// duplicate class names still serve every matching occurrence.
	ords, err := a.SelectOrdinals(strings.Split(pat, ",")...)
	if err != nil {
		s.writeError(w, errf(http.StatusBadRequest, "bad_pattern", "classes pattern: %v", err))
		return
	}
	if len(ords) == 0 {
		s.writeError(w, errf(http.StatusNotFound, "no_match", "no classes match %q", pat))
		return
	}
	files, err := a.ExtractOrdinals(ords)
	if err != nil {
		s.writeError(w, errf(http.StatusInternalServerError, "corrupt_cache", "extracting classes: %v", err))
		return
	}
	jar, err := classpack.JarFromFiles(files)
	if err != nil {
		s.writeError(w, errf(http.StatusInternalServerError, "internal", "building jar: %v", err))
		return
	}
	s.metrics.Decodes.Add(1)
	s.metrics.ClassBytesDecoded.Add(a.DecodedBytes())
	w.Header().Set(HeaderDigest, r.PathValue("digest"))
	s.writePayload(w, jar)
}

// handleArchiveClass answers GET /archive/{digest}/class/{name}: one
// class file (".class" suffix optional), served lazily. On version-3
// archives only the chunk containing the class is decoded, so the cost
// is O(chunk) regardless of archive size.
func (s *Server) handleArchiveClass(w http.ResponseWriter, r *http.Request) {
	s.metrics.ClassRequests.Add(1)
	packed, apiErr := s.loadArchive(r)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	release, apiErr := s.acquireJob(r.Context())
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	defer release()
	a, apiErr := s.openCached(packed)
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	name := r.PathValue("name")
	data, err := a.ExtractClass(name)
	if err != nil {
		if errors.Is(err, classpack.ErrClassNotFound) {
			s.writeError(w, errf(http.StatusNotFound, "class_not_found",
				"no class %q in archive", name))
			return
		}
		if errors.Is(err, classpack.ErrAmbiguousClass) {
			s.writeError(w, errf(http.StatusConflict, "class_ambiguous",
				"class %q occurs more than once in archive; fetch the whole archive instead", name))
			return
		}
		s.writeError(w, errf(http.StatusInternalServerError, "corrupt_cache",
			"extracting %q: %v", name, err))
		return
	}
	s.metrics.ClassBytesDecoded.Add(a.DecodedBytes())
	w.Header().Set(HeaderDigest, r.PathValue("digest"))
	s.writePayload(w, data)
}

// loadCached fetches one cached archive by digest for the delta
// endpoint, distinguishing malformed digests (400), absent objects
// (404) and failing store reads (500 + cache_errors).
func (s *Server) loadCached(digest string) ([]byte, *apiError) {
	if !castore.ValidKey(digest) {
		return nil, errf(http.StatusBadRequest, "bad_digest",
			"digest must be 64 lowercase hex digits")
	}
	if s.cfg.Store == nil {
		return nil, errf(http.StatusNotFound, "not_found", "no archive cache configured")
	}
	packed, ok, err := s.cfg.Store.Get(digest)
	if err != nil {
		s.metrics.CacheErrors.Add(1)
		log.Printf("jpackd: cache read for %s failed: %v", digest, err)
		return nil, errf(http.StatusInternalServerError, "internal", "cache read: %v", err)
	}
	if !ok {
		return nil, errf(http.StatusNotFound, "not_found", "no archive with digest %s", digest)
	}
	return packed, nil
}

// handleDelta answers GET /delta/{from}/{to}: a CJPD patch that
// transforms the cached archive {from} into the cached archive {to}
// (both content digests previously returned by POST /pack). Clients
// holding the old archive download the patch — typically a small
// fraction of the new archive — and reconstruct the new bytes locally
// with ApplyDelta. Diffing is lazy: unchanged chunks of version-3
// archives are matched by hash without being decoded.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	s.metrics.DeltaRequests.Add(1)
	oldArc, apiErr := s.loadCached(r.PathValue("from"))
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	newArc, apiErr := s.loadCached(r.PathValue("to"))
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	release, apiErr := s.acquireJob(r.Context())
	if apiErr != nil {
		s.writeError(w, apiErr)
		return
	}
	defer release()
	opts := s.cfg.Options
	patch, err := classpack.Diff(oldArc, newArc, &opts)
	if err != nil {
		// Both inputs came from this server's own cache, so a failing
		// diff is a server fault, not a client error.
		s.writeError(w, errf(http.StatusInternalServerError, "delta_failed", "diff: %v", err))
		return
	}
	if saved := int64(len(newArc)) - int64(len(patch)); saved > 0 {
		s.metrics.DeltaBytesSaved.Add(saved)
	}
	w.Header().Set(HeaderDigest, r.PathValue("to"))
	s.writePayload(w, patch)
}
