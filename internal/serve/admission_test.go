package serve

import (
	"testing"
	"time"
)

// newTestAdmission builds an admission gate with innocuous defaults for
// estimator-focused tests: 2 slots, a deep queue, no memory budget, a
// 1-second Retry-After floor.
func newTestAdmission(t *testing.T) *admission {
	t.Helper()
	return newAdmission(2, 64, 0, time.Second, newMetrics())
}

// TestEstimateWaitNoSamples: before any job completes there is no data,
// and the estimator must say so with zero rather than invent a wait.
func TestEstimateWaitNoSamples(t *testing.T) {
	a := newTestAdmission(t)
	if got := a.estimateWait(10); got != 0 {
		t.Fatalf("estimateWait with no samples = %v, want 0", got)
	}
}

// TestObserveInstantJobIsStillASample: a job that completes inside a
// microsecond must move the estimator out of its no-data state — zero
// is the sentinel, not a legal sample value.
func TestObserveInstantJobIsStillASample(t *testing.T) {
	a := newTestAdmission(t)
	a.observe(0)
	if got := a.estimateWait(0); got <= 0 {
		t.Fatalf("estimateWait after an instant job = %v, want > 0", got)
	}
}

// TestObserveNegativeDurationClamped: a clock hiccup handing observe a
// negative duration must not poison the estimate or re-arm the no-data
// sentinel.
func TestObserveNegativeDurationClamped(t *testing.T) {
	a := newTestAdmission(t)
	a.observe(-5 * time.Millisecond)
	if got := a.estimateWait(0); got <= 0 {
		t.Fatalf("estimateWait after a negative sample = %v, want > 0", got)
	}
	a.observe(80 * time.Millisecond)
	if got := a.estimateWait(0); got < 0 {
		t.Fatalf("estimateWait went negative: %v", got)
	}
}

// TestObserveEWMASmoothing pins the alpha-1/8 fold: the second sample
// moves the estimate an eighth of the way toward itself.
func TestObserveEWMASmoothing(t *testing.T) {
	a := newTestAdmission(t)
	a.observe(100 * time.Millisecond)
	a.observe(200 * time.Millisecond)
	want := int64(112500) // 100ms + (200ms-100ms)/8, in µs
	if got := a.ewmaMicros.Load(); got != want {
		t.Fatalf("ewmaMicros after two samples = %d, want %d", got, want)
	}
}

// TestEstimateWaitScalesWithQueueDepth: with 2 slots, a request queued
// behind 4 others waits about three job durations (two ahead of it per
// slot, plus its own).
func TestEstimateWaitScalesWithQueueDepth(t *testing.T) {
	a := newTestAdmission(t)
	a.observe(80 * time.Millisecond)
	base := a.estimateWait(0)
	if base != 80*time.Millisecond {
		t.Fatalf("estimateWait(0) = %v, want the single 80ms sample", base)
	}
	if got, want := a.estimateWait(4), 3*base; got != want {
		t.Fatalf("estimateWait(4) = %v, want %v", got, want)
	}
}

// TestShedRetryAfterFloor: the Retry-After hint never drops below the
// configured floor, and rises to the queue estimate once that exceeds
// it.
func TestShedRetryAfterFloor(t *testing.T) {
	a := newTestAdmission(t)
	if e := a.shed("no samples yet"); e.retryAfter != time.Second {
		t.Fatalf("retryAfter with no samples = %v, want the %v floor", e.retryAfter, time.Second)
	}
	// One slow sample pushes the estimate past the floor: 10 waiters on
	// 2 slots ≈ 6 jobs ≈ 18s.
	a.observe(3 * time.Second)
	a.waiters.Add(10)
	e := a.shed("deep queue")
	if e.retryAfter <= time.Second {
		t.Fatalf("retryAfter with a deep queue = %v, want above the floor", e.retryAfter)
	}
}
