package serve

import (
	"expvar"
	"net/http"
	"time"
)

// encodeBucketsMs are the upper bounds (milliseconds, inclusive) of the
// encode-latency histogram exported under encode_ms_le_*. The final
// +Inf bucket is "encode_ms_le_inf", so the bucket counts are cumulative
// in the usual le-histogram sense only when summed by the reader; here
// each counter holds its own bucket's observations.
var encodeBucketsMs = []int64{1, 5, 25, 100, 500, 2500, 10000}

// Metrics is the operational counter set one Server instance exports at
// GET /metrics. Counters are expvar types but deliberately not
// expvar.Publish'ed: publishing is process-global and would collide when
// several servers run in one process (tests, embedded use). The map
// renders to the same JSON expvar would serve.
type Metrics struct {
	m expvar.Map

	Requests        expvar.Int // all HTTP requests, any endpoint
	PackRequests    expvar.Int
	UnpackRequests  expvar.Int
	VerifyRequests  expvar.Int
	ArchiveRequests expvar.Int
	ClassRequests   expvar.Int // GET /archive/{digest}/class/{name}

	// ClassBytesDecoded counts wire bytes decoded serving single classes
	// and ?classes= subsets. On version-3 archives this grows by one
	// chunk per cold request, not the whole archive — the counter is how
	// operators (and the acceptance test) observe lazy decoding working.
	ClassBytesDecoded expvar.Int

	CacheHits   expvar.Int // pack served from the content-addressed store
	CacheMisses expvar.Int
	// CacheErrors counts store reads that failed outright (I/O errors, not
	// ordinary misses). Each one is also logged; a rising counter means
	// the cache volume is sick even though requests still succeed by
	// re-encoding.
	CacheErrors expvar.Int
	// CacheBypass counts cache writes skipped while the server is in
	// degraded mode — encodes that succeeded but were served uncached.
	CacheBypass expvar.Int

	// Coalesced counts /pack responses served from another request's
	// in-flight encode: a herd of N identical packs is 1 encode plus N-1
	// coalesced responses.
	Coalesced expvar.Int

	// Shed counts requests refused with 429 by admission control (queue
	// full, memory budget exhausted, or deadline shorter than the
	// estimated queue wait). QueueDepth and MemInflight are gauges of
	// the current queue length and admitted request bytes.
	Shed        expvar.Int
	QueueDepth  expvar.Int
	MemInflight expvar.Int

	// Degraded is a 0/1 gauge of cache-degraded mode; DegradedTotal
	// counts how many times the server entered it.
	Degraded      expvar.Int
	DegradedTotal expvar.Int

	DeltaRequests expvar.Int // GET /delta/{from}/{to}
	// DeltaBytesSaved accumulates len(new archive) - len(patch) over
	// successful delta responses: the bandwidth the endpoint saved its
	// callers versus re-downloading the whole new archive.
	DeltaBytesSaved expvar.Int

	Encodes  expvar.Int // pack jobs actually run (cache misses that encoded)
	Decodes  expvar.Int
	Salvages expvar.Int // unpack?salvage=1 jobs run
	Verifies expvar.Int

	BytesIn  expvar.Int // request bodies read
	BytesOut expvar.Int // response payloads written (errors excluded)

	Errors expvar.Int // requests answered with a structured error

	encodeBuckets []*expvar.Int // parallel to encodeBucketsMs, plus +Inf last
}

func newMetrics() *Metrics {
	mt := &Metrics{}
	set := func(name string, v *expvar.Int) { mt.m.Set(name, v) }
	set("requests_total", &mt.Requests)
	set("requests_pack", &mt.PackRequests)
	set("requests_unpack", &mt.UnpackRequests)
	set("requests_verify", &mt.VerifyRequests)
	set("requests_archive", &mt.ArchiveRequests)
	set("requests_class", &mt.ClassRequests)
	set("class_bytes_decoded", &mt.ClassBytesDecoded)
	set("cache_hits", &mt.CacheHits)
	set("cache_misses", &mt.CacheMisses)
	set("cache_errors", &mt.CacheErrors)
	set("cache_bypass_total", &mt.CacheBypass)
	set("coalesced_total", &mt.Coalesced)
	set("shed_total", &mt.Shed)
	set("queue_depth", &mt.QueueDepth)
	set("mem_inflight_bytes", &mt.MemInflight)
	set("degraded", &mt.Degraded)
	set("degraded_total", &mt.DegradedTotal)
	set("delta_requests", &mt.DeltaRequests)
	set("delta_bytes_saved", &mt.DeltaBytesSaved)
	set("encodes_total", &mt.Encodes)
	set("decodes_total", &mt.Decodes)
	set("salvages_total", &mt.Salvages)
	set("verifies_total", &mt.Verifies)
	set("bytes_in", &mt.BytesIn)
	set("bytes_out", &mt.BytesOut)
	set("errors_total", &mt.Errors)
	for _, ub := range encodeBucketsMs {
		v := new(expvar.Int)
		mt.encodeBuckets = append(mt.encodeBuckets, v)
		mt.m.Set("encode_ms_le_"+itoa(ub), v)
	}
	inf := new(expvar.Int)
	mt.encodeBuckets = append(mt.encodeBuckets, inf)
	mt.m.Set("encode_ms_le_inf", inf)
	return mt
}

// itoa is strconv.FormatInt without the import noise at call sites.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// observeEncode files one encode duration into its latency bucket.
func (mt *Metrics) observeEncode(d time.Duration) {
	ms := d.Milliseconds()
	for i, ub := range encodeBucketsMs {
		if ms <= ub {
			mt.encodeBuckets[i].Add(1)
			return
		}
	}
	mt.encodeBuckets[len(mt.encodeBuckets)-1].Add(1)
}

// ServeHTTP renders the counters as the expvar JSON object.
func (mt *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write([]byte(mt.m.String()))
}
