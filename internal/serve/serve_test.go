package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"classpack"
	"classpack/internal/archive"
	"classpack/internal/castore"
	"classpack/internal/classfile"
	"classpack/internal/faultinject"
	"classpack/internal/minijava"
	"classpack/internal/serve/client"
	"classpack/internal/synth"
)

// testJar compiles a small program and wraps it, plus one resource
// member, into a deterministic jar. It also returns the raw class bytes
// by member name for round-trip assertions.
func testJar(t *testing.T) (jar []byte, classes map[string][]byte) {
	t.Helper()
	cfs, err := minijava.Compile(`
class Main { public static void main(String[] a) { System.out.println(new Box().get()); } }
class Box { public int get() { return 42; } }
`, minijava.CompileOptions{SourceFile: "Box.java"})
	if err != nil {
		t.Fatal(err)
	}
	classes = make(map[string][]byte)
	var members []archive.File
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			t.Fatal(err)
		}
		name := cf.ThisClassName() + ".class"
		classes[name] = data
		members = append(members, archive.File{Name: name, Data: data})
	}
	members = append(members, archive.File{Name: "META-INF/app.properties", Data: []byte("k=v\n")})
	jar, err = archive.WriteJar(members)
	if err != nil {
		t.Fatal(err)
	}
	return jar, classes
}

// startServer runs a Server on a loopback listener and returns a client
// for it plus the cancel that triggers graceful shutdown. Cleanup waits
// for Serve to drain.
func startServer(t *testing.T, cfg Config) (*Server, *client.Client, context.CancelFunc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, client.New("http://"+ln.Addr().String(), nil), cancel
}

func newStore(t *testing.T) *castore.Store {
	t.Helper()
	st, err := castore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPackCacheHitAndArchiveRoundTrip(t *testing.T) {
	jar, classes := testJar(t)
	_, c, _ := startServer(t, Config{Store: newStore(t)})
	ctx := context.Background()

	first, err := c.Pack(ctx, jar)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache != "miss" {
		t.Fatalf("first pack cache = %q, want miss", first.Cache)
	}
	if len(first.Skipped) != 1 || first.Skipped[0] != "META-INF/app.properties" {
		t.Fatalf("skipped = %v, want the one resource member", first.Skipped)
	}
	if !castore.ValidKey(first.Digest) {
		t.Fatalf("digest %q is not a valid key", first.Digest)
	}

	// Second pack of identical input: served from the cache, no re-encode.
	second, err := c.Pack(ctx, jar)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cache != "hit" {
		t.Fatalf("second pack cache = %q, want hit", second.Cache)
	}
	if second.Digest != first.Digest {
		t.Fatalf("digest changed across identical packs: %s vs %s", first.Digest, second.Digest)
	}
	if !bytes.Equal(second.Packed, first.Packed) {
		t.Fatal("cache hit returned different bytes")
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["encodes_total"] != 1 || m["cache_hits"] != 1 || m["cache_misses"] != 1 {
		t.Fatalf("metrics after hit: encodes=%d hits=%d misses=%d, want 1/1/1",
			m["encodes_total"], m["cache_hits"], m["cache_misses"])
	}
	if m["requests_pack"] != 2 || m["bytes_in"] != int64(2*len(jar)) {
		t.Fatalf("metrics accounting: requests_pack=%d bytes_in=%d", m["requests_pack"], m["bytes_in"])
	}
	var bucketSum int64
	for k, v := range m {
		if strings.HasPrefix(k, "encode_ms_le_") {
			bucketSum += v
		}
	}
	if bucketSum != 1 {
		t.Fatalf("encode latency histogram holds %d observations, want 1", bucketSum)
	}

	// GET /archive/{digest} returns the exact artifact, and it unpacks
	// back to the canonicalized (stripped) classes byte for byte.
	fetched, err := c.Archive(ctx, first.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetched, first.Packed) {
		t.Fatal("GET /archive returned different bytes than POST /pack")
	}
	files, err := classpack.Unpack(fetched)
	if err != nil {
		t.Fatalf("unpacking fetched archive: %v", err)
	}
	if len(files) != len(classes) {
		t.Fatalf("unpacked %d classes, want %d", len(files), len(classes))
	}
	for _, f := range files {
		orig, ok := classes[f.Name]
		if !ok {
			t.Fatalf("unexpected class %s", f.Name)
		}
		want, err := classpack.Strip(orig)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Data, want) {
			t.Fatalf("%s: unpacked bytes differ from stripped original", f.Name)
		}
	}
}

func TestUnpackEndpoint(t *testing.T) {
	jar, classes := testJar(t)
	_, c, _ := startServer(t, Config{})
	ctx := context.Background()

	res, err := c.Pack(ctx, jar)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := c.Unpack(ctx, res.Packed)
	if err != nil {
		t.Fatal(err)
	}
	members, err := archive.ReadJar(rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != len(classes) {
		t.Fatalf("rebuilt jar has %d members, want %d", len(members), len(classes))
	}
	for _, mb := range members {
		want, err := classpack.Strip(classes[mb.Name])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mb.Data, want) {
			t.Fatalf("%s: rebuilt jar member differs from stripped original", mb.Name)
		}
	}

	if _, err := c.Unpack(ctx, []byte("not an archive")); err == nil {
		t.Fatal("unpack of garbage accepted")
	} else {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Code != "corrupt_archive" {
			t.Fatalf("unpack of garbage: %v, want corrupt_archive", err)
		}
		if apiErr.Status != http.StatusBadRequest {
			t.Fatalf("unpack of garbage: status %d, want 400", apiErr.Status)
		}
	}
}

func TestUnpackSalvageEndpoint(t *testing.T) {
	jar, classes := testJar(t)
	s, c, _ := startServer(t, Config{})
	ctx := context.Background()

	res, err := c.Pack(ctx, jar)
	if err != nil {
		t.Fatal(err)
	}

	// A pristine archive salvages cleanly: 200, nothing lost, no damage.
	sres, err := c.UnpackSalvage(ctx, res.Packed)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Partial || sres.Lost != 0 || len(sres.Damage) != 0 || sres.Recovered != len(classes) {
		t.Fatalf("salvage of pristine archive: %+v", sres)
	}
	if _, err := archive.ReadJar(sres.Jar); err != nil {
		t.Fatalf("salvaged jar unreadable: %v", err)
	}

	// Damage near the end of the archive: 206 with a damage report and
	// the recovered/lost accounting intact.
	flip := faultinject.BitFlip{Off: len(res.Packed) - 10, Bit: 2}
	sres, err = c.UnpackSalvage(ctx, flip.Apply(res.Packed))
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Partial || len(sres.Damage) == 0 {
		t.Fatalf("salvage of damaged archive not partial: %+v", sres)
	}
	if sres.Recovered+sres.Lost != sres.Total {
		t.Fatalf("salvage accounting: %d + %d != %d", sres.Recovered, sres.Lost, sres.Total)
	}
	if _, err := archive.ReadJar(sres.Jar); err != nil {
		t.Fatalf("salvaged jar unreadable: %v", err)
	}
	if got := s.Metrics().Salvages.Value(); got != 2 {
		t.Fatalf("salvages_total = %d, want 2", got)
	}

	// Garbage is rejected outright — there is nothing to salvage.
	_, err = c.UnpackSalvage(ctx, []byte("not an archive"))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "not_archive" {
		t.Fatalf("salvage of garbage: %v, want not_archive", err)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	jar, classes := testJar(t)
	_, c, _ := startServer(t, Config{})
	ctx := context.Background()

	res, err := c.Verify(ctx, jar, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes != len(classes) || res.Skipped != 1 || len(res.Invalid) != 0 {
		t.Fatalf("verify of valid jar: %+v", res)
	}

	// A jar with one garbage class member reports exactly that member.
	bad, err := archive.WriteJar([]archive.File{
		{Name: "Main.class", Data: classes["Main.class"]},
		{Name: "Bad.class", Data: []byte{1, 2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = c.Verify(ctx, bad, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Invalid) != 1 || res.Invalid[0].Name != "Bad.class" {
		t.Fatalf("verify of bad jar: %+v", res)
	}

	if _, err := c.Verify(ctx, []byte("not a zip"), false); err == nil {
		t.Fatal("verify of non-jar accepted")
	}
}

func TestOversizedRequestRejected(t *testing.T) {
	jar, _ := testJar(t)
	_, c, _ := startServer(t, Config{MaxRequestBytes: 64})
	_, err := c.Pack(context.Background(), jar)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "too_large" || apiErr.Status != 413 {
		t.Fatalf("oversized pack: %v, want too_large/413", err)
	}
}

func TestJobQueueTimeout(t *testing.T) {
	jar, _ := testJar(t)
	gate := make(chan struct{})
	started := make(chan struct{})
	first := true
	cfg := Config{
		MaxJobs:        1,
		RequestTimeout: 300 * time.Millisecond,
		packStarted: func() {
			if first {
				first = false
				close(started)
				<-gate
			}
		},
	}
	_, c, _ := startServer(t, cfg)
	ctx := context.Background()

	firstDone := make(chan error, 1)
	go func() {
		_, err := c.Pack(ctx, jar)
		firstDone <- err
	}()
	<-started

	// The only job slot is held; this request's deadline expires while
	// queued and must come back as a structured timeout.
	_, err := c.Pack(ctx, jar)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "timeout" || apiErr.Status != 503 {
		t.Fatalf("queued pack: %v, want timeout/503", err)
	}

	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatalf("slot-holding pack failed: %v", err)
	}
}

func TestSigtermDrainsInFlightPack(t *testing.T) {
	jar, _ := testJar(t)
	gate := make(chan struct{})
	started := make(chan struct{})
	once := false
	cfg := Config{
		DrainTimeout: 30 * time.Second,
		packStarted: func() {
			if !once {
				once = true
				close(started)
				<-gate
			}
		},
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()
	c := client.New("http://"+ln.Addr().String(), nil)

	packDone := make(chan error, 1)
	var packRes *client.PackResult
	go func() {
		res, err := c.Pack(context.Background(), jar)
		packRes = res
		packDone <- err
	}()
	<-started

	// SIGTERM arrives while the pack is mid-encode.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The listener must close promptly: new connections get refused
	// while the in-flight request is still running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after SIGTERM")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Release the encoder: the drained request must complete successfully.
	close(gate)
	if err := <-packDone; err != nil {
		t.Fatalf("in-flight pack failed during shutdown: %v", err)
	}
	if len(packRes.Packed) == 0 {
		t.Fatal("in-flight pack returned no bytes")
	}
	if _, err := classpack.Unpack(packRes.Packed); err != nil {
		t.Fatalf("archive delivered during shutdown does not unpack: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after drain: %v", err)
	}
	stop()
}

func TestArchiveErrors(t *testing.T) {
	_, c, _ := startServer(t, Config{Store: newStore(t)})
	ctx := context.Background()

	_, err := c.Archive(ctx, strings.Repeat("ab", 32))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "not_found" || apiErr.Status != 404 {
		t.Fatalf("absent digest: %v, want not_found/404", err)
	}
	_, err = c.Archive(ctx, "NOT-HEX")
	if !errors.As(err, &apiErr) || apiErr.Code != "bad_digest" || apiErr.Status != 400 {
		t.Fatalf("malformed digest: %v, want bad_digest/400", err)
	}

	// Without a store, pack still works (just never cached) and archive
	// fetches are 404.
	_, c2, _ := startServer(t, Config{})
	jar, _ := testJar(t)
	res, err := c2.Pack(ctx, jar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Archive(ctx, res.Digest); err == nil {
		t.Fatal("archive fetch without a store succeeded")
	}
}

func TestPackOfGarbageJar(t *testing.T) {
	_, c, _ := startServer(t, Config{})
	_, err := c.Pack(context.Background(), []byte("definitely not a zip"))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "encode_failed" || apiErr.Status != 422 {
		t.Fatalf("pack of garbage: %v, want encode_failed/422", err)
	}
}

// TestUnpackMalformedArchives uploads truncated and bit-flipped archives
// to a live daemon: every decode failure must come back as a structured
// 400 (never a 5xx or a dropped connection), cap violations as
// archive_limits, and the daemon must keep serving afterwards.
func TestUnpackMalformedArchives(t *testing.T) {
	jar, _ := testJar(t)
	_, c, _ := startServer(t, Config{})
	ctx := context.Background()

	res, err := c.Pack(ctx, jar)
	if err != nil {
		t.Fatal(err)
	}
	packed := res.Packed

	checkRejected := func(desc string, data []byte) {
		t.Helper()
		_, err := c.Unpack(ctx, data)
		if err == nil {
			return // a mutation may leave the archive decodable; that's fine
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("%s: transport-level failure instead of an API error: %v", desc, err)
		}
		if apiErr.Status != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", desc, apiErr.Status, apiErr.Code)
		}
		switch apiErr.Code {
		case "corrupt_archive", "archive_limits", "decode_failed":
		default:
			t.Fatalf("%s: unexpected error code %q", desc, apiErr.Code)
		}
	}

	// Truncations across the archive, including the empty body.
	for cut := 0; cut < len(packed); cut += len(packed)/40 + 1 {
		desc := fmt.Sprintf("truncated to %d bytes", cut)
		if _, err := c.Unpack(ctx, packed[:cut]); err == nil {
			t.Fatalf("%s: accepted", desc)
		}
		checkRejected(desc, packed[:cut])
	}
	// Single-byte flips.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		mut := append([]byte(nil), packed...)
		i := rng.Intn(len(mut))
		mut[i] ^= byte(1 + rng.Intn(255))
		checkRejected(fmt.Sprintf("bit flip at %d", i), mut)
	}

	// The daemon survived all of it: a pristine unpack still works.
	if _, err := c.Unpack(ctx, packed); err != nil {
		t.Fatalf("daemon unhealthy after malformed uploads: %v", err)
	}
}

func TestVerifyBytecodeEndpoint(t *testing.T) {
	jar, classes := testJar(t)
	_, c, _ := startServer(t, Config{})
	ctx := context.Background()

	res, err := c.VerifyBytecode(ctx, jar)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes != len(classes) || res.Methods == 0 || len(res.Verdicts) != res.Methods {
		t.Fatalf("bytecode verify of valid jar: %+v", res)
	}
	for _, v := range res.Verdicts {
		if !v.OK || v.Error != "" {
			t.Fatalf("valid jar got failing verdict: %+v", v)
		}
	}

	// Break one method body: the response pinpoints it by pc and opcode.
	var name string
	var data []byte
	for name, data = range classes {
		break
	}
	cf, err := classfile.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for mi := range cf.Methods {
		if code := classfile.CodeOf(&cf.Methods[mi]); code != nil && len(code.Code) > 0 {
			code.Code = []byte{0x60, 0xb1} // iadd on an empty stack; return
			break
		}
	}
	bad, err := classfile.Write(cf)
	if err != nil {
		t.Fatal(err)
	}
	badJar, err := archive.WriteJar([]archive.File{{Name: name, Data: bad}})
	if err != nil {
		t.Fatal(err)
	}
	res, err = c.VerifyBytecode(ctx, badJar)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, v := range res.Verdicts {
		if v.OK {
			continue
		}
		failures++
		if v.Name != name || v.PC < 0 || v.Op == "" || v.Error == "" {
			t.Fatalf("failing verdict lacks location: %+v", v)
		}
	}
	if failures != 1 {
		t.Fatalf("%d failing verdicts, want 1: %+v", failures, res.Verdicts)
	}
}

// TestArchiveClassEndpoints pins the lazy-serving acceptance from the
// version-3 container work: on a >=500-class chunked archive, a single
// class GET decodes only the chunk containing that class (observed via
// the class_bytes_decoded counter), and ?classes= subsets come back as
// jars without a full unpack.
func TestArchiveClassEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("large synth archive skipped in -short mode")
	}
	p, err := synth.ProfileByName("rt")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfs) < 500 {
		t.Fatalf("corpus has %d classes, want >= 500", len(cfs))
	}
	var members []archive.File
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, archive.File{Name: cf.ThisClassName() + ".class", Data: data})
	}
	jar, err := archive.WriteJar(members)
	if err != nil {
		t.Fatal(err)
	}

	opts := classpack.DefaultOptions()
	opts.ChunkClasses = 16
	s, c, _ := startServer(t, Config{Store: newStore(t), Options: opts})
	ctx := context.Background()

	res, err := c.Pack(ctx, jar)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packed) < 6 || res.Packed[4] != 3 {
		t.Fatalf("server packed container version %d, want 3", res.Packed[4])
	}

	// Ground truth: a local lazy archive over the same bytes gives the
	// per-class payloads and the total decode cost of touching every
	// chunk.
	local, err := classpack.OpenArchiveBytes(res.Packed, &opts)
	if err != nil {
		t.Fatal(err)
	}
	names := local.ClassNames()
	ords := make([]int, local.NumClasses())
	for g := range ords {
		ords[g] = g
	}
	if _, err := local.ExtractOrdinals(ords); err != nil {
		t.Fatal(err)
	}
	fullDecoded := local.DecodedBytes()

	// By-name endpoints need unambiguous names: the synth corpus carries
	// a few duplicate class names, which by-name extraction refuses.
	seen := make(map[string]int)
	for _, n := range names {
		seen[n]++
	}
	var unique []string
	for _, n := range names {
		if seen[n] == 1 {
			unique = append(unique, n)
		}
	}
	if len(unique) < 10 {
		t.Fatalf("only %d unique class names", len(unique))
	}

	// One class via GET /archive/{digest}/class/{name}: byte-equal to
	// the local extraction and only one chunk's worth of decoding.
	target := unique[len(unique)/2]
	got, err := c.ArchiveClass(ctx, res.Digest, target)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.ExtractClass(target)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served class %q differs from local extraction", target)
	}
	single := s.Metrics().ClassBytesDecoded.Value()
	if single <= 0 {
		t.Fatal("class_bytes_decoded did not advance")
	}
	if single*5 > fullDecoded {
		t.Errorf("single class GET decoded %d of %d total bytes — not O(chunk)", single, fullDecoded)
	}

	// ".class" suffix is accepted, and unknown names are structured 404s.
	if got2, err := c.ArchiveClass(ctx, res.Digest, target+".class"); err != nil || !bytes.Equal(got2, got) {
		t.Fatalf("suffixed fetch: %v", err)
	}
	var apiErr *client.APIError
	if _, err := c.ArchiveClass(ctx, res.Digest, "no/such/Class"); !errors.As(err, &apiErr) || apiErr.Code != "class_not_found" || apiErr.Status != http.StatusNotFound {
		t.Fatalf("missing class: err = %v, want class_not_found 404", err)
	}

	// A ?classes= subset comes back as a jar of exactly the selection,
	// in archive order.
	sel := []string{unique[len(unique)-1], unique[0], unique[len(unique)/3]}
	subsetJar, err := c.ArchiveClasses(ctx, res.Digest, sel)
	if err != nil {
		t.Fatal(err)
	}
	subset, err := archive.ReadJar(subsetJar)
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != len(sel) {
		t.Fatalf("subset jar has %d members, want %d", len(subset), len(sel))
	}
	for _, m := range subset {
		want, err := local.ExtractClass(m.Name)
		if err != nil {
			t.Fatalf("unexpected subset member %s: %v", m.Name, err)
		}
		if !bytes.Equal(m.Data, want) {
			t.Fatalf("subset member %s differs from local extraction", m.Name)
		}
	}

	// Pattern failure modes: no match is a 404, a malformed glob a 400.
	if _, err := c.ArchiveClasses(ctx, res.Digest, []string{"no/such/*"}); !errors.As(err, &apiErr) || apiErr.Code != "no_match" {
		t.Fatalf("no-match subset: err = %v, want no_match", err)
	}
	if _, err := c.ArchiveClasses(ctx, res.Digest, []string{"a[/b"}); !errors.As(err, &apiErr) || apiErr.Code != "bad_pattern" {
		t.Fatalf("malformed pattern: err = %v, want bad_pattern", err)
	}
}

// synthJar builds a jar over the "rt" synth corpus at the given scale,
// returning the jar and the raw class bytes in member order.
func synthJar(t *testing.T, scale float64) ([]byte, [][]byte) {
	t.Helper()
	p, err := synth.ProfileByName("rt")
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, scale)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([][]byte, len(cfs))
	var members []archive.File
	for i, cf := range cfs {
		if raw[i], err = classfile.Write(cf); err != nil {
			t.Fatal(err)
		}
		members = append(members, archive.File{Name: cf.ThisClassName() + ".class", Data: raw[i]})
	}
	jar, err := archive.WriteJar(members)
	if err != nil {
		t.Fatal(err)
	}
	return jar, raw
}

// TestDeltaEndpoint pins GET /delta/{from}/{to}: between two cached
// archives that differ in ~5% of their classes, the served patch is a
// small fraction of the new archive, reconstructs it byte-for-byte via
// ApplyDelta, and moves the delta_requests / delta_bytes_saved
// counters. Unknown and malformed digests are structured 404s/400s.
func TestDeltaEndpoint(t *testing.T) {
	oldJar, raw := synthJar(t, 0.1)
	mutated, changed, err := synth.MutateClasses(raw, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("version bump mutated nothing")
	}
	var members []archive.File
	for i, data := range mutated {
		members = append(members, archive.File{Name: fmt.Sprintf("c%d.class", i), Data: data})
	}
	newJar, err := archive.WriteJar(members)
	if err != nil {
		t.Fatal(err)
	}

	opts := classpack.DefaultOptions()
	opts.ChunkClasses = 16
	s, c, _ := startServer(t, Config{Store: newStore(t), Options: opts})
	ctx := context.Background()

	oldRes, err := c.Pack(ctx, oldJar)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := c.Pack(ctx, newJar)
	if err != nil {
		t.Fatal(err)
	}

	patch, err := c.Delta(ctx, oldRes.Digest, newRes.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if len(patch)*4 > len(newRes.Packed) {
		t.Errorf("patch is %d bytes for a %d-byte archive — no bandwidth saved",
			len(patch), len(newRes.Packed))
	}
	got, err := classpack.ApplyDelta(oldRes.Packed, patch, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newRes.Packed) {
		t.Fatal("ApplyDelta(old, served patch) differs from the new archive")
	}

	if v := s.Metrics().DeltaRequests.Value(); v != 1 {
		t.Errorf("delta_requests = %d, want 1", v)
	}
	if v := s.Metrics().DeltaBytesSaved.Value(); v != int64(len(newRes.Packed)-len(patch)) {
		t.Errorf("delta_bytes_saved = %d, want %d", v, len(newRes.Packed)-len(patch))
	}

	// Failure modes: unknown digest 404, malformed digest 400, and the
	// self-delta degenerate case still applies cleanly.
	var apiErr *client.APIError
	unknown := strings.Repeat("ab", 32)
	if _, err := c.Delta(ctx, unknown, newRes.Digest); !errors.As(err, &apiErr) ||
		apiErr.Code != "not_found" || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown from-digest: err = %v, want not_found 404", err)
	}
	if _, err := c.Delta(ctx, oldRes.Digest, unknown); !errors.As(err, &apiErr) ||
		apiErr.Code != "not_found" || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown to-digest: err = %v, want not_found 404", err)
	}
	if _, err := c.Delta(ctx, "zz", newRes.Digest); !errors.As(err, &apiErr) ||
		apiErr.Code != "bad_digest" || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("malformed digest: err = %v, want bad_digest 400", err)
	}
	self, err := c.Delta(ctx, oldRes.Digest, oldRes.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := classpack.ApplyDelta(oldRes.Packed, self, &opts); err != nil || !bytes.Equal(got, oldRes.Packed) {
		t.Fatalf("self-delta did not round-trip: %v", err)
	}
}

// TestArchiveClassAmbiguous pins the duplicate-name fix at the HTTP
// layer: a cached archive holding two classes with the same name serves
// a structured 409 for that name instead of silently picking one, while
// a ?classes= glob subset still returns every occurrence.
func TestArchiveClassAmbiguous(t *testing.T) {
	_, classes := testJar(t)
	box := classes["Box.class"]
	twin, ok, err := synth.MutateClass(box)
	if err != nil || !ok {
		t.Fatalf("mutating Box: ok=%v err=%v", ok, err)
	}
	members := []archive.File{
		{Name: "Box.class", Data: box},
		{Name: "Main.class", Data: classes["Main.class"]},
		{Name: "Box.class", Data: twin},
	}
	dupJar, err := archive.WriteJar(members)
	if err != nil {
		t.Fatal(err)
	}

	opts := classpack.DefaultOptions()
	opts.ChunkClasses = 1
	_, c, _ := startServer(t, Config{Store: newStore(t), Options: opts})
	ctx := context.Background()
	res, err := c.Pack(ctx, dupJar)
	if err != nil {
		t.Fatal(err)
	}

	var apiErr *client.APIError
	if _, err := c.ArchiveClass(ctx, res.Digest, "Box"); !errors.As(err, &apiErr) ||
		apiErr.Code != "class_ambiguous" || apiErr.Status != http.StatusConflict {
		t.Fatalf("ambiguous class: err = %v, want class_ambiguous 409", err)
	}
	// The unambiguous member still serves.
	if _, err := c.ArchiveClass(ctx, res.Digest, "Main"); err != nil {
		t.Fatalf("unambiguous class: %v", err)
	}
	// Glob subsets address occurrences by ordinal, so both twins come back.
	subsetJar, err := c.ArchiveClasses(ctx, res.Digest, []string{"Box*"})
	if err != nil {
		t.Fatal(err)
	}
	subset, err := archive.ReadJar(subsetJar)
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 2 {
		t.Fatalf("subset holds %d members, want both Box occurrences", len(subset))
	}
}

// TestCacheReadErrorsSurfaced pins the cache-miss-vs-error fix: when the
// store read fails outright (the object path is unreadable, not merely
// absent), POST /pack still succeeds by re-encoding but counts a
// cache_error, and GET /archive reports a 500 instead of a 404.
func TestCacheReadErrorsSurfaced(t *testing.T) {
	jar, _ := testJar(t)
	st := newStore(t)
	s, c, _ := startServer(t, Config{Store: st})
	ctx := context.Background()

	res, err := c.Pack(ctx, jar)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the stored object: replace its file with a directory, so
	// Get fails with a real I/O error rather than a not-exist miss.
	objPath := filepath.Join(st.Dir(), res.Digest[:2], res.Digest)
	if err := os.Remove(objPath); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(objPath, "x"), 0o755); err != nil {
		t.Fatal(err)
	}

	second, err := c.Pack(ctx, jar)
	if err != nil {
		t.Fatalf("pack must survive a failing cache read: %v", err)
	}
	if second.Cache != "miss" {
		t.Fatalf("cache = %q, want miss after read failure", second.Cache)
	}
	if v := s.Metrics().CacheErrors.Value(); v < 1 {
		t.Errorf("cache_errors = %d, want >= 1 after a failing read", v)
	}

	var apiErr *client.APIError
	if _, err := c.Archive(ctx, res.Digest); !errors.As(err, &apiErr) ||
		apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("archive over broken cache: err = %v, want HTTP 500", err)
	}
}
