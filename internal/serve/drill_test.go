package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"testing"
	"time"

	"classpack"
	"classpack/internal/archive"
	"classpack/internal/castore"
	"classpack/internal/faultinject"
	"classpack/internal/serve/client"
)

// startDrillServer is startServer plus the base URL, for drills that
// need raw HTTP requests (no client retry machinery in the way).
func startDrillServer(t *testing.T, cfg Config) (*Server, string, context.CancelFunc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, "http://" + ln.Addr().String(), cancel
}

// distinctJar returns a valid jar whose content differs per i, so packs
// of different i never share a digest (no coalescing, no cache hits).
func distinctJar(t *testing.T, base []byte, i int) []byte {
	t.Helper()
	members, err := archive.ReadJar(base)
	if err != nil {
		t.Fatal(err)
	}
	for m := range members {
		if members[m].Name == "META-INF/app.properties" {
			members[m].Data = []byte(fmt.Sprintf("k=%d\n", i))
		}
	}
	jar, err := archive.WriteJar(members)
	if err != nil {
		t.Fatal(err)
	}
	return jar
}

// healthzStatus fetches GET /healthz and returns the reported status.
func healthzStatus(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return body.Status
}

// TestDrillHerdCoalesces is the thundering-herd drill: 100 concurrent
// identical /pack requests must cost exactly one encode — one leader
// holding the single job slot, 99 followers served from its result.
func TestDrillHerdCoalesces(t *testing.T) {
	const herd = 100
	jar, _ := testJar(t)
	gate := make(chan struct{})
	started := make(chan struct{})
	once := false
	var mu sync.Mutex
	cfg := Config{
		MaxJobs: 1,
		Store:   newStore(t),
		packStarted: func() {
			mu.Lock()
			first := !once
			once = true
			mu.Unlock()
			if first {
				close(started)
				<-gate
			}
		},
	}
	s, c, _ := startServer(t, cfg)
	digest := s.cacheKey(jar)

	type outcome struct {
		res *client.PackResult
		err error
	}
	results := make(chan outcome, herd)
	for i := 0; i < herd; i++ {
		go func() {
			res, err := c.Pack(context.Background(), jar)
			results <- outcome{res, err}
		}()
	}
	<-started

	// Deterministic release: every follower is parked on the leader's
	// flight before the encode is allowed to finish.
	deadline := time.Now().Add(10 * time.Second)
	for s.flight.waiting(digest) != herd-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers coalesced before deadline", s.flight.waiting(digest), herd-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)

	counts := map[string]int{}
	var packed []byte
	for i := 0; i < herd; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("herd pack: %v", o.err)
		}
		counts[o.res.Cache]++
		if packed == nil {
			packed = o.res.Packed
		} else if !bytes.Equal(packed, o.res.Packed) {
			t.Fatal("herd responses are not byte-identical")
		}
	}
	if counts["miss"] != 1 || counts["coalesced"] != herd-1 {
		t.Fatalf("cache outcomes = %v, want 1 miss + %d coalesced", counts, herd-1)
	}
	if got := s.metrics.Encodes.Value(); got != 1 {
		t.Fatalf("encodes_total = %d after herd of %d, want exactly 1", got, herd)
	}
	if got := s.metrics.Coalesced.Value(); got != herd-1 {
		t.Fatalf("coalesced_total = %d, want %d", got, herd-1)
	}

	// The flight retired and the leader's result was cached: the next
	// identical pack is an ordinary cache hit.
	res, err := c.Pack(context.Background(), jar)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "hit" {
		t.Fatalf("post-herd pack cache = %q, want hit", res.Cache)
	}
}

// rawPack posts a jar without client retry machinery and returns the
// response status, Retry-After header, and decoded error code (if any).
func rawPack(t *testing.T, base string, jar []byte) (status int, retryAfter string, code string) {
	t.Helper()
	resp, err := http.Post(base+"/pack", "application/octet-stream", bytes.NewReader(jar))
	if err != nil {
		t.Fatalf("raw pack: %v", err)
	}
	defer resp.Body.Close()
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	body, _ := io.ReadAll(resp.Body)
	json.Unmarshal(body, &envelope)
	return resp.StatusCode, resp.Header.Get("Retry-After"), envelope.Error.Code
}

// TestDrillOverloadSheds429 is the overload drill: with the single job
// slot held and the queue full, further requests are refused immediately
// with 429 + Retry-After instead of piling up.
func TestDrillOverloadSheds429(t *testing.T) {
	jar, _ := testJar(t)
	gate := make(chan struct{})
	started := make(chan struct{})
	once := false
	var mu sync.Mutex
	cfg := Config{
		MaxJobs:  1,
		MaxQueue: 2,
		packStarted: func() {
			mu.Lock()
			first := !once
			once = true
			mu.Unlock()
			if first {
				close(started)
				<-gate
			}
		},
	}
	s, base, _ := startDrillServer(t, cfg)
	c := client.New(base, nil)

	errs := make(chan error, 3)
	go func() { _, err := c.Pack(context.Background(), jar); errs <- err }()
	<-started
	for i := 1; i <= 2; i++ {
		queued := distinctJar(t, jar, i)
		go func() { _, err := c.Pack(context.Background(), queued); errs <- err }()
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.adm.waiters.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth = %d, want 2", s.adm.waiters.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// Slot busy, queue full: the next arrival must be shed, not queued.
	status, retryAfter, code := rawPack(t, base, distinctJar(t, jar, 3))
	if status != http.StatusTooManyRequests || code != "overloaded" {
		t.Fatalf("shed response = %d/%q, want 429/overloaded", status, code)
	}
	if retryAfter == "" || retryAfter == "0" {
		t.Fatalf("Retry-After = %q, want a positive seconds hint", retryAfter)
	}
	if got := s.metrics.Shed.Value(); got < 1 {
		t.Fatalf("shed_total = %d, want >= 1", got)
	}

	close(gate)
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("admitted/queued pack failed after release: %v", err)
		}
	}
}

// TestDrillMemoryBudgetSheds: request bytes beyond the admission memory
// budget are shed even when job slots are free.
func TestDrillMemoryBudgetSheds(t *testing.T) {
	jar, _ := testJar(t)
	gate := make(chan struct{})
	started := make(chan struct{})
	once := false
	var mu sync.Mutex
	cfg := Config{
		MaxJobs:      4,
		MemoryBudget: int64(len(jar)) + 1, // one jar fits; two never do
		packStarted: func() {
			mu.Lock()
			first := !once
			once = true
			mu.Unlock()
			if first {
				close(started)
				<-gate
			}
		},
	}
	s, base, _ := startDrillServer(t, cfg)
	c := client.New(base, nil)

	done := make(chan error, 1)
	go func() { _, err := c.Pack(context.Background(), jar); done <- err }()
	<-started

	status, _, code := rawPack(t, base, distinctJar(t, jar, 1))
	if status != http.StatusTooManyRequests || code != "overloaded" {
		t.Fatalf("over-budget response = %d/%q, want 429/overloaded", status, code)
	}
	if got := s.metrics.MemInflight.Value(); got != int64(len(jar)) {
		t.Fatalf("mem_inflight_bytes = %d, want %d", got, len(jar))
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("in-budget pack: %v", err)
	}
	// Budget released: the same oversize-relative-to-remaining request is
	// admitted now that nothing is in flight.
	if _, err := c.Pack(context.Background(), distinctJar(t, jar, 1)); err != nil {
		t.Fatalf("pack after budget release: %v", err)
	}
}

// TestDrillDiskFullDegradesAndRecovers is the disk-fault drill: a full
// cache volume must not fail requests — the server flips to degraded
// (encode and serve, skip caching), reports it in /healthz and metrics,
// and recovers by itself once the volume heals.
func TestDrillDiskFullDegradesAndRecovers(t *testing.T) {
	jar, _ := testJar(t)
	cfs := faultinject.NewCrashFS()
	st, err := castore.OpenFS(t.TempDir(), 0, cfs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Store:         st,
		ProbeInterval: time.Millisecond,
	}
	s, base, _ := startDrillServer(t, cfg)
	c := client.New(base, nil)
	ctx := context.Background()

	if got := healthzStatus(t, base); got != "ok" {
		t.Fatalf("healthz before fault = %q, want ok", got)
	}

	// The disk fills. The next pack must still succeed — the cache write
	// fails and flips degraded mode.
	cfs.SetWriteError(syscall.ENOSPC)
	if _, err := c.Pack(ctx, jar); err != nil {
		t.Fatalf("pack on full disk: %v", err)
	}
	if !s.deg.active() || s.metrics.Degraded.Value() != 1 {
		t.Fatal("server not degraded after ENOSPC cache write")
	}
	if got := healthzStatus(t, base); got != "degraded" {
		t.Fatalf("healthz during fault = %q, want degraded", got)
	}

	// Degraded service keeps working: encodes succeed, cache writes are
	// bypassed rather than retried against the sick disk.
	other := distinctJar(t, jar, 1)
	if _, err := c.Pack(ctx, other); err != nil {
		t.Fatalf("pack while degraded: %v", err)
	}
	if got := s.metrics.CacheBypass.Value(); got < 1 {
		t.Fatalf("cache_bypass_total = %d, want >= 1", got)
	}

	// The disk heals: healthz visits double as recovery probes.
	cfs.SetWriteError(nil)
	deadline := time.Now().Add(10 * time.Second)
	for healthzStatus(t, base) != "ok" {
		if time.Now().After(deadline) {
			t.Fatal("server still degraded after the volume recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.metrics.Degraded.Value() != 0 || s.metrics.DegradedTotal.Value() != 1 {
		t.Fatalf("degraded=%d degraded_total=%d after recovery, want 0/1",
			s.metrics.Degraded.Value(), s.metrics.DegradedTotal.Value())
	}

	// Caching resumed: pack, then pack again and observe the hit.
	if _, err := c.Pack(ctx, other); err != nil {
		t.Fatal(err)
	}
	res, err := c.Pack(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "hit" {
		t.Fatalf("post-recovery pack cache = %q, want hit — caching did not resume", res.Cache)
	}
}

// TestDrillDrainUnderLoad is the shutdown drill: SIGTERM with a request
// mid-encode and others queued must finish the admitted request (full
// body delivered) and shed the queued ones with 503, never dropping a
// connection mid-response.
func TestDrillDrainUnderLoad(t *testing.T) {
	jar, _ := testJar(t)
	gate := make(chan struct{})
	started := make(chan struct{})
	once := false
	var mu sync.Mutex
	cfg := Config{
		MaxJobs:      1,
		MaxQueue:     4,
		DrainTimeout: 30 * time.Second,
		packStarted: func() {
			mu.Lock()
			first := !once
			once = true
			mu.Unlock()
			if first {
				close(started)
				<-gate
			}
		},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	admitted := client.New(base, nil)
	admittedDone := make(chan error, 1)
	var admittedRes *client.PackResult
	go func() {
		res, err := admitted.Pack(context.Background(), jar)
		admittedRes = res
		admittedDone <- err
	}()
	<-started

	// Two more requests queue behind the held slot. Their clients must
	// not retry: the shed 503 is the assertion.
	queuedDone := make(chan error, 2)
	for i := 1; i <= 2; i++ {
		queued := distinctJar(t, jar, i)
		qc := client.NewRetry(base, nil, client.RetryPolicy{MaxAttempts: 1})
		go func() { _, err := qc.Pack(context.Background(), queued); queuedDone <- err }()
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.adm.waiters.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth = %d, want 2", s.adm.waiters.Load())
		}
		time.Sleep(time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The queued requests are woken and shed promptly — the drain window
	// belongs to admitted work.
	for i := 0; i < 2; i++ {
		select {
		case err := <-queuedDone:
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Code != "draining" {
				t.Fatalf("queued pack during drain: %v, want 503/draining", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("queued request not shed within 10s of SIGTERM")
		}
	}

	// The admitted request, released mid-drain, completes with a full,
	// valid body.
	close(gate)
	if err := <-admittedDone; err != nil {
		t.Fatalf("admitted pack failed during drain: %v", err)
	}
	if _, err := classpack.Unpack(admittedRes.Packed); err != nil {
		t.Fatalf("body delivered during drain does not unpack: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after drain: %v", err)
	}
}
