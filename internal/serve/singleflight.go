package serve

import "sync"

// packFlight coalesces concurrent identical /pack requests: the first
// request for a digest becomes the leader and runs the encode; every
// request for the same digest arriving before the leader finishes waits
// on the leader's result instead of encoding (or even queueing) itself.
// A thundering herd of N identical packs therefore costs one job slot
// and one encode, with N-1 responses counted as coalesced_total.
//
// The key is the cache digest — input bytes plus the pack-option
// fingerprint — so "identical" means identical output, and sharing the
// leader's bytes is always correct, cache or no cache.
type packFlight struct {
	mu    sync.Mutex
	calls map[string]*packCall
}

// packCall is one in-flight leader encode and its shared outcome.
type packCall struct {
	done    chan struct{} // closed once res is final
	waiters int           // followers currently waiting (drill observability)
	res     packResult
}

// packResult is the shared outcome of a pack encode: the payload on
// success, or the structured error every coalesced caller repeats.
type packResult struct {
	packed  []byte
	skipped []string
	cache   string // "miss", or "hit" when the post-join double-check found it
	apiErr  *apiError
}

// join registers interest in digest: the first caller becomes the
// leader (leader == true) and must call finish exactly once; later
// callers get the same call to wait on.
func (g *packFlight) join(digest string) (c *packCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*packCall)
	}
	if c, ok := g.calls[digest]; ok {
		c.waiters++
		return c, false
	}
	c = &packCall{done: make(chan struct{})}
	g.calls[digest] = c
	return c, true
}

// finish publishes the leader's result and retires the flight, so the
// next request for the same digest starts fresh (and, on success, hits
// the cache instead).
func (g *packFlight) finish(digest string, c *packCall, res packResult) {
	g.mu.Lock()
	c.res = res
	delete(g.calls, digest)
	g.mu.Unlock()
	close(c.done)
}

// waiting reports how many followers are currently coalesced behind the
// digest's leader; the herd drill uses it to synchronize deterministically.
func (g *packFlight) waiting(digest string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[digest]; ok {
		return c.waiters
	}
	return 0
}
