package serve

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// admission is the server's load-shedding front door, replacing the
// bare job semaphore: a bounded, deadline-aware queue in front of the
// MaxJobs slots plus a memory-budget gate over admitted request bytes.
// A request that cannot be queued — the queue is full, the memory
// budget is exhausted, or its deadline would expire before a slot could
// plausibly free up — is shed immediately with 429 and a Retry-After
// hint instead of waiting to fail, so overload degrades into fast,
// explicit backpressure rather than a pile-up of doomed connections.
type admission struct {
	slots      chan struct{} // cap = MaxJobs
	queueBound int64         // max requests waiting for a slot
	memBudget  int64         // cap on admitted request bytes; 0 = unlimited
	retryHint  time.Duration // floor for the Retry-After hint

	waiters     atomic.Int64
	memInflight atomic.Int64
	ewmaMicros  atomic.Int64 // smoothed job duration, for wait estimates

	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once

	m *Metrics
}

func newAdmission(maxJobs, queueBound int, memBudget int64, retryHint time.Duration, m *Metrics) *admission {
	return &admission{
		slots:      make(chan struct{}, maxJobs),
		queueBound: int64(queueBound),
		memBudget:  memBudget,
		retryHint:  retryHint,
		drainCh:    make(chan struct{}),
		m:          m,
	}
}

// startDrain flips the gate into shutdown mode: no new request is
// admitted or queued, and every request already waiting for a slot is
// woken and shed with 503. Requests that hold a slot are unaffected —
// they run to completion under the http.Server drain.
func (a *admission) startDrain() {
	a.draining.Store(true)
	a.drainOnce.Do(func() { close(a.drainCh) })
}

// acquire admits one job of the given request size, blocking in the
// bounded queue until a slot frees. The returned release must be called
// exactly once; it is idempotent against double calls. On shed or
// timeout the release is nil and the apiError carries the HTTP status
// (429 with Retry-After for shed, 503 for deadline expiry and drain).
func (a *admission) acquire(ctx context.Context, size int64) (release func(), apiErr *apiError) {
	if a.draining.Load() {
		return nil, errf(http.StatusServiceUnavailable, "draining",
			"server is draining; request not admitted")
	}
	memReserved := false
	if a.memBudget > 0 && size > 0 {
		for {
			cur := a.memInflight.Load()
			// A single request bigger than the whole budget is admitted
			// when nothing else is in flight — same rule as the castore
			// cap: the request is serviceable, so serve it.
			if cur > 0 && cur+size > a.memBudget {
				return nil, a.shed("memory budget exhausted: %d of %d bytes already admitted", cur, a.memBudget)
			}
			if a.memInflight.CompareAndSwap(cur, cur+size) {
				break
			}
		}
		memReserved = true
		a.m.MemInflight.Set(a.memInflight.Load())
	}
	relMem := func() {
		if memReserved {
			a.m.MemInflight.Set(a.memInflight.Add(-size))
		}
	}
	select {
	case a.slots <- struct{}{}:
		return a.admitted(size, memReserved), nil
	default:
	}
	w := a.waiters.Add(1)
	a.m.QueueDepth.Set(w)
	unqueue := func() { a.m.QueueDepth.Set(a.waiters.Add(-1)) }
	if w > a.queueBound {
		unqueue()
		relMem()
		return nil, a.shed("job queue full: %d jobs running, %d queued", cap(a.slots), a.queueBound)
	}
	// Deadline-aware shedding: a request whose deadline will expire
	// before the queue can plausibly reach it is refused now — a fast
	// 429 the client can back off from beats a slow, certain 503.
	if dl, ok := ctx.Deadline(); ok {
		if est := a.estimateWait(w); est > 0 && time.Until(dl) < est {
			unqueue()
			relMem()
			return nil, a.shed("deadline %v away but estimated queue wait is %v",
				time.Until(dl).Round(time.Millisecond), est.Round(time.Millisecond))
		}
	}
	select {
	case a.slots <- struct{}{}:
		unqueue()
		return a.admitted(size, memReserved), nil
	case <-ctx.Done():
		unqueue()
		relMem()
		return nil, errf(http.StatusServiceUnavailable, "timeout",
			"request deadline expired while waiting for a job slot (%d jobs max)", cap(a.slots))
	case <-a.drainCh:
		unqueue()
		relMem()
		return nil, errf(http.StatusServiceUnavailable, "draining",
			"server is draining; queued request shed")
	}
}

// admitted builds the release closure for a request that holds a slot.
func (a *admission) admitted(size int64, memReserved bool) func() {
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			//classpack:vet-allow ctxflow receives back the slot this request's admit sent, which is still buffered in the channel, so it never blocks
			<-a.slots
			if memReserved {
				a.m.MemInflight.Set(a.memInflight.Add(-size))
			}
			a.observe(time.Since(start))
		})
	}
}

// shed counts and builds the 429 backpressure error, with a Retry-After
// derived from the current queue state (floored at the configured hint).
func (a *admission) shed(format string, args ...any) *apiError {
	a.m.Shed.Add(1)
	ra := a.retryHint
	if est := a.estimateWait(a.waiters.Load()); est > ra {
		ra = est
	}
	e := errf(http.StatusTooManyRequests, "overloaded", format, args...)
	e.retryAfter = ra
	return e
}

// estimateWait guesses how long a request queued behind `queued` others
// will wait for a slot, from the smoothed job duration. Zero when no
// job has completed yet — no data, no estimate.
func (a *admission) estimateWait(queued int64) time.Duration {
	ew := time.Duration(a.ewmaMicros.Load()) * time.Microsecond
	if ew <= 0 {
		return 0
	}
	slots := int64(cap(a.slots))
	if slots < 1 {
		slots = 1
	}
	if queued < 0 {
		queued = 0
	}
	return ew * time.Duration(queued/slots+1)
}

// observe folds one completed job duration into the EWMA (alpha 1/8).
func (a *admission) observe(d time.Duration) {
	us := d.Microseconds()
	// Zero is the estimator's "no samples yet" sentinel. A job that
	// completes inside a microsecond (or a clock hiccup yielding a
	// negative duration) is still a sample: clamp it to 1µs so the
	// first such job doesn't leave — or the estimator doesn't start
	// from — the no-data state it should have exited.
	if us <= 0 {
		us = 1
	}
	for {
		old := a.ewmaMicros.Load()
		nw := us
		if old != 0 {
			nw = old + (us-old)/8
		}
		if a.ewmaMicros.CompareAndSwap(old, nw) {
			return
		}
	}
}
