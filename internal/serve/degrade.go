package serve

import (
	"log"
	"sync/atomic"
	"time"

	"classpack/internal/castore"
)

// degrade tracks the cache volume's health. A failing cache write —
// ENOSPC, EIO, a read-only remount — flips the server into degraded
// mode: requests keep succeeding (encode and serve, reads still
// attempted), but cache writes are bypassed instead of retried against
// a sick disk. While degraded, the volume is re-probed at most once per
// interval (from the cache-write path and from /healthz, so even an
// idle server behind a load-balancer health check recovers); the first
// successful probe restores normal caching. The flag is visible in
// /healthz and the degraded metric.
type degrade struct {
	store      *castore.Store
	probeEvery time.Duration
	m          *Metrics

	flag      atomic.Bool
	probing   atomic.Bool
	lastProbe atomic.Int64 // UnixNano of the last probe start
}

func newDegrade(store *castore.Store, probeEvery time.Duration, m *Metrics) *degrade {
	return &degrade{store: store, probeEvery: probeEvery, m: m}
}

// active reports whether the server is currently in degraded mode.
func (d *degrade) active() bool { return d.flag.Load() }

// onPutError records a failed cache write and enters degraded mode.
// Every Put error is treated as volume sickness: the write path is its
// own probe, and a healthy disk does not fail castore.Put.
func (d *degrade) onPutError(err error) {
	if d.flag.CompareAndSwap(false, true) {
		d.m.Degraded.Set(1)
		d.m.DegradedTotal.Add(1)
		log.Printf("jpackd: cache write failed (%v); entering degraded mode: serving without caching", err)
	}
}

// maybeProbe re-probes the volume when degraded, at most once per
// probeEvery and never concurrently; the probe itself runs in the
// background so no request waits on a sick disk. A successful probe
// exits degraded mode.
func (d *degrade) maybeProbe() {
	if d.store == nil || !d.flag.Load() {
		return
	}
	now := time.Now().UnixNano()
	last := d.lastProbe.Load()
	if now-last < int64(d.probeEvery) || !d.lastProbe.CompareAndSwap(last, now) {
		return
	}
	if !d.probing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer d.probing.Store(false)
		if err := d.store.Probe(); err != nil {
			return // still sick; the next interval re-probes
		}
		if d.flag.CompareAndSwap(true, false) {
			d.m.Degraded.Set(0)
			log.Print("jpackd: cache volume recovered; degraded mode off, caching resumed")
		}
	}()
}
