// Package client is the Go client for jpackd (internal/serve): it
// uploads jars for packing, downloads packed archives back into jars
// (including salvage mode for damaged archives), runs remote
// verification, and fetches cached artifacts by digest. Transient
// failures — connection errors, 5xx responses, and 429 load shedding —
// are retried with capped, jittered exponential backoff (see
// RetryPolicy), honoring the server's Retry-After hint when it asks for
// a longer wait; jpackd requests are idempotent, so replays are safe.
// The jpack "remote" subcommand is built on it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// APIError is a structured error returned by the server's JSON error
// envelope.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // stable machine-readable code, e.g. "too_large"
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("jpackd: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// RetryPolicy bounds the client's automatic retries. Every jpackd
// request is idempotent — the server is a pure function of the request
// body (with a cache in front) — so retrying is always safe; the policy
// only decides how hard to try. Zero fields take the defaults noted on
// each field.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (0 = 3; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (0 = 50ms); each
	// further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (0 = 2s).
	MaxDelay time.Duration
	// MaxRetryAfter caps how long a server-sent Retry-After header can
	// stretch one wait beyond the computed backoff (0 = 30s). A shed or
	// draining server knows its own recovery horizon better than the
	// client's schedule does, so its hint is honored verbatim up to
	// this bound — without jitter, which the test pins.
	MaxRetryAfter time.Duration
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.MaxRetryAfter <= 0 {
		p.MaxRetryAfter = 30 * time.Second
	}
	return p
}

// delay returns the jittered backoff before retry number retry (1-based):
// exponential growth capped at MaxDelay, then "equal jitter" — half
// fixed, half uniformly random — so synchronized clients spread out.
func (p RetryPolicy) delay(retry int, intn func(int64) int64) time.Duration {
	d := p.BaseDelay << (retry - 1)
	if d > p.MaxDelay || d <= 0 { // <= 0 guards shift overflow
		d = p.MaxDelay
	}
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	return time.Duration(half + intn(half))
}

// Client talks to one jpackd server. The zero value is not usable;
// call New or NewRetry.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
	intn  func(int64) int64 // jitter source; rand.Int63n outside tests
	sleep func(ctx context.Context, d time.Duration) error
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8750"). httpClient may be nil for
// http.DefaultClient; deadlines come from the per-call context. The
// default RetryPolicy applies; use NewRetry to change or disable it.
func New(base string, httpClient *http.Client) *Client {
	return NewRetry(base, httpClient, RetryPolicy{})
}

// NewRetry is New with an explicit retry policy.
func NewRetry(base string, httpClient *http.Client, policy RetryPolicy) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:  strings.TrimRight(base, "/"),
		hc:    httpClient,
		retry: policy.withDefaults(),
		intn:  rand.Int63n,
		sleep: sleepCtx,
	}
}

// sleepCtx waits for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do sends req with retries per the client's policy. Transport errors,
// 5xx responses, and 429 load shedding are retried with capped,
// jittered exponential backoff; when the server sends Retry-After with
// a longer wait than the backoff, the server's hint wins (capped at
// MaxRetryAfter). Context cancellation and deadline expiry stop
// retrying immediately, both between attempts and mid-backoff. The
// final attempt's response or error is returned as-is.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	for attempt := 1; ; attempt++ {
		resp, err := c.hc.Do(req)
		retryable := false
		retryAfter := time.Duration(0)
		if err != nil {
			// A transport failure with a live context (connection refused,
			// reset, injected fault) is worth retrying; one caused by the
			// caller's context is not.
			retryable = req.Context().Err() == nil
		} else if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			retryable = true
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		}
		if !retryable || attempt >= c.retry.MaxAttempts {
			return resp, err
		}
		if resp != nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
			resp.Body.Close()
		}
		wait := c.retry.delay(attempt, c.intn)
		if ra := min(retryAfter, c.retry.MaxRetryAfter); ra > wait {
			wait = ra
		}
		if serr := c.sleep(req.Context(), wait); serr != nil {
			if err == nil {
				err = fmt.Errorf("jpackd: giving up after HTTP %d: %w", resp.StatusCode, serr)
			}
			return nil, err
		}
		if req.GetBody != nil {
			body, berr := req.GetBody()
			if berr != nil {
				return nil, berr
			}
			req.Body = body
		}
	}
}

// parseRetryAfter reads a Retry-After header value in either RFC 9110
// form — delay seconds or an HTTP-date — returning 0 for absent,
// malformed, or already-elapsed values.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// PackResult is what POST /pack returns.
type PackResult struct {
	Packed  []byte   // the packed archive
	Digest  string   // content digest; usable with Archive
	Cache   string   // "hit" or "miss"
	Skipped []string // non-class jar members (reported on misses only)
}

// Pack uploads a jar and returns the packed archive.
func (c *Client) Pack(ctx context.Context, jar []byte) (*PackResult, error) {
	resp, err := c.post(ctx, "/pack", jar)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	packed, err := c.payload(resp)
	if err != nil {
		return nil, err
	}
	res := &PackResult{
		Packed: packed,
		Digest: resp.Header.Get("X-Jpackd-Digest"),
		Cache:  resp.Header.Get("X-Jpackd-Cache"),
	}
	if raw := resp.Header.Get("X-Jpackd-Skipped"); raw != "" {
		if err := json.Unmarshal([]byte(raw), &res.Skipped); err != nil {
			return nil, fmt.Errorf("jpackd: malformed skipped header: %w", err)
		}
	}
	return res, nil
}

// Unpack uploads a packed archive and returns the rebuilt jar.
func (c *Client) Unpack(ctx context.Context, packed []byte) ([]byte, error) {
	resp, err := c.post(ctx, "/unpack", packed)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return c.payload(resp)
}

// DamageRegion mirrors one entry of the server's salvage damage report.
type DamageRegion struct {
	Stream      string `json:"stream"`
	Offset      int64  `json:"offset"`
	Cause       string `json:"cause"`
	ClassesLost int    `json:"classes_lost"`
}

// SalvageResult mirrors the server's POST /unpack?salvage=1 response:
// accounting, damage report, and the jar of recovered classes. Partial
// reports when the server answered 206 Partial Content (classes lost or
// damage found).
type SalvageResult struct {
	Total     int            `json:"total"`
	Recovered int            `json:"recovered"`
	Lost      int            `json:"lost"`
	Damage    []DamageRegion `json:"damage"`
	Jar       []byte         `json:"jar"`
	Partial   bool           `json:"-"`
}

// UnpackSalvage uploads a (possibly damaged) packed archive and returns
// whatever the server could recover plus its damage report. Damage is
// reported in the result, not as an error; err is non-nil only for
// transport failures or inputs the server rejected outright.
func (c *Client) UnpackSalvage(ctx context.Context, packed []byte) (*SalvageResult, error) {
	resp, err := c.post(ctx, "/unpack?salvage=1", packed)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		return nil, c.apiError(resp)
	}
	var res SalvageResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("jpackd: decoding salvage response: %w", err)
	}
	res.Partial = resp.StatusCode == http.StatusPartialContent
	return &res, nil
}

// VerifyResult mirrors the server's POST /verify response body.
type VerifyResult struct {
	Classes int `json:"classes"`
	Skipped int `json:"skipped"`
	Invalid []struct {
		Name  string `json:"name"`
		Error string `json:"error"`
	} `json:"invalid"`

	// Bytecode mode only (VerifyBytecode): per-method verdicts.
	Methods  int             `json:"methods"`
	Verdicts []MethodVerdict `json:"verdicts"`
}

// MethodVerdict mirrors one per-method entry of a ?bytecode=1 verify
// response.
type MethodVerdict struct {
	Name   string `json:"name"`
	Class  string `json:"class"`
	Method string `json:"method"`
	Desc   string `json:"desc"`
	OK     bool   `json:"ok"`
	PC     int    `json:"pc"`
	Op     string `json:"op"`
	Error  string `json:"error"`
}

// Verify uploads a jar for structural verification of its classes.
// Invalid classes are reported in the result, not as an error; err is
// non-nil only for transport or request failures.
func (c *Client) Verify(ctx context.Context, jar []byte, deep bool) (*VerifyResult, error) {
	path := "/verify"
	if deep {
		path += "?deep=1"
	}
	return c.verify(ctx, path, jar)
}

// VerifyBytecode uploads a jar for per-method dataflow bytecode
// verification; the result carries one verdict per method.
func (c *Client) VerifyBytecode(ctx context.Context, jar []byte) (*VerifyResult, error) {
	return c.verify(ctx, "/verify?bytecode=1", jar)
}

func (c *Client) verify(ctx context.Context, path string, jar []byte) (*VerifyResult, error) {
	resp, err := c.post(ctx, path, jar)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// 422 with a verify body is a successful call reporting invalid
	// classes; anything else non-2xx is an API error.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
		return nil, c.apiError(resp)
	}
	var res VerifyResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("jpackd: decoding verify response: %w", err)
	}
	return &res, nil
}

// Archive fetches a previously packed artifact by its content digest.
func (c *Client) Archive(ctx context.Context, digest string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/archive/"+digest, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return c.payload(resp)
}

// ArchiveClass fetches one class file from a cached archive by name
// (".class" suffix optional). On version-3 archives the server decodes
// only the chunk containing the class.
func (c *Client) ArchiveClass(ctx context.Context, digest, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/archive/"+digest+"/class/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return c.payload(resp)
}

// ArchiveClasses fetches a subset jar from a cached archive: every
// class matching any of the exact-name-or-glob patterns, in archive
// order.
func (c *Client) ArchiveClasses(ctx context.Context, digest string, patterns []string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/archive/"+digest+"?classes="+url.QueryEscape(strings.Join(patterns, ",")), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return c.payload(resp)
}

// Delta fetches a CJPD patch transforming the cached archive with
// digest from into the cached archive with digest to. Apply it locally
// with classpack.ApplyDelta(oldArchive, patch, opts); unknown digests
// are APIErrors with code "not_found".
func (c *Client) Delta(ctx context.Context, from, to string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/delta/"+from+"/"+to, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return c.payload(resp)
}

// Metrics fetches the server's counters as a flat name -> value map.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.apiError(resp)
	}
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("jpackd: decoding metrics: %w", err)
	}
	return m, nil
}

func (c *Client) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	// bytes.Reader bodies give the request a GetBody, which do uses to
	// replay the payload on retries.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	return c.do(req)
}

// payload reads a binary response, converting error envelopes.
func (c *Client) payload(resp *http.Response) ([]byte, error) {
	if resp.StatusCode != http.StatusOK {
		return nil, c.apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// apiError decodes the server's JSON error envelope, falling back to a
// bare status error for non-JSON bodies (e.g. proxies in the path).
func (c *Client) apiError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode, Code: "unknown"}
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &envelope) == nil && envelope.Error.Code != "" {
		apiErr.Code = envelope.Error.Code
		apiErr.Message = envelope.Error.Message
	} else {
		apiErr.Message = http.StatusText(resp.StatusCode)
	}
	return apiErr
}
