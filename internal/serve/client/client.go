// Package client is the Go client for jpackd (internal/serve): it
// uploads jars for packing, downloads packed archives back into jars,
// runs remote verification, and fetches cached artifacts by digest.
// The jpack "remote" subcommand is built on it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// APIError is a structured error returned by the server's JSON error
// envelope.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // stable machine-readable code, e.g. "too_large"
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("jpackd: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// Client talks to one jpackd server. The zero value is not usable;
// call New.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8750"). httpClient may be nil for
// http.DefaultClient; deadlines come from the per-call context.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// PackResult is what POST /pack returns.
type PackResult struct {
	Packed  []byte   // the packed archive
	Digest  string   // content digest; usable with Archive
	Cache   string   // "hit" or "miss"
	Skipped []string // non-class jar members (reported on misses only)
}

// Pack uploads a jar and returns the packed archive.
func (c *Client) Pack(ctx context.Context, jar []byte) (*PackResult, error) {
	resp, err := c.post(ctx, "/pack", jar)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	packed, err := c.payload(resp)
	if err != nil {
		return nil, err
	}
	res := &PackResult{
		Packed: packed,
		Digest: resp.Header.Get("X-Jpackd-Digest"),
		Cache:  resp.Header.Get("X-Jpackd-Cache"),
	}
	if raw := resp.Header.Get("X-Jpackd-Skipped"); raw != "" {
		if err := json.Unmarshal([]byte(raw), &res.Skipped); err != nil {
			return nil, fmt.Errorf("jpackd: malformed skipped header: %w", err)
		}
	}
	return res, nil
}

// Unpack uploads a packed archive and returns the rebuilt jar.
func (c *Client) Unpack(ctx context.Context, packed []byte) ([]byte, error) {
	resp, err := c.post(ctx, "/unpack", packed)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return c.payload(resp)
}

// VerifyResult mirrors the server's POST /verify response body.
type VerifyResult struct {
	Classes int `json:"classes"`
	Skipped int `json:"skipped"`
	Invalid []struct {
		Name  string `json:"name"`
		Error string `json:"error"`
	} `json:"invalid"`
}

// Verify uploads a jar for structural verification of its classes.
// Invalid classes are reported in the result, not as an error; err is
// non-nil only for transport or request failures.
func (c *Client) Verify(ctx context.Context, jar []byte, deep bool) (*VerifyResult, error) {
	path := "/verify"
	if deep {
		path += "?deep=1"
	}
	resp, err := c.post(ctx, path, jar)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// 422 with a verify body is a successful call reporting invalid
	// classes; anything else non-2xx is an API error.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
		return nil, c.apiError(resp)
	}
	var res VerifyResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("jpackd: decoding verify response: %w", err)
	}
	return &res, nil
}

// Archive fetches a previously packed artifact by its content digest.
func (c *Client) Archive(ctx context.Context, digest string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/archive/"+digest, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return c.payload(resp)
}

// Metrics fetches the server's counters as a flat name -> value map.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, c.apiError(resp)
	}
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("jpackd: decoding metrics: %w", err)
	}
	return m, nil
}

func (c *Client) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	return c.hc.Do(req)
}

// payload reads a binary response, converting error envelopes.
func (c *Client) payload(resp *http.Response) ([]byte, error) {
	if resp.StatusCode != http.StatusOK {
		return nil, c.apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// apiError decodes the server's JSON error envelope, falling back to a
// bare status error for non-JSON bodies (e.g. proxies in the path).
func (c *Client) apiError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode, Code: "unknown"}
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &envelope) == nil && envelope.Error.Code != "" {
		apiErr.Code = envelope.Error.Code
		apiErr.Message = envelope.Error.Message
	} else {
		apiErr.Message = http.StatusText(resp.StatusCode)
	}
	return apiErr
}
