package client

import (
	"testing"
	"time"
)

// TestParseRetryAfterSeconds covers the delay-seconds form: positive
// values parse, zero and negative mean "now" and collapse to 0, and
// anything that is not an integer falls through to the (failing)
// HTTP-date parse. TestParseRetryAfterHTTPDate covers the date form.
func TestParseRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"7", 7 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"garbage", 0},
		{"1.5", 0}, // RFC 9110 delay-seconds is an integer
		{"Wed, 99 Foo 2026 00:00:00 GMT", 0}, // date-shaped but malformed
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
