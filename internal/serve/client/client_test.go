package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"classpack/internal/faultinject"
)

// echoServer answers every POST by echoing the request body, so tests
// can verify that retried requests replayed their payload intact.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("server read: %v", err)
		}
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// fastClient builds a client over ft with millisecond backoff.
func fastClient(base string, ft *faultinject.FailingRoundTripper) *Client {
	return NewRetry(base, &http.Client{Transport: ft},
		RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond})
}

func TestRetryRecoversFromTransportErrors(t *testing.T) {
	srv := echoServer(t)
	ft := &faultinject.FailingRoundTripper{FailFirst: 2} // Status 0: transport error
	c := fastClient(srv.URL, ft)
	payload := bytes.Repeat([]byte("archive"), 100)
	got, err := c.Unpack(context.Background(), payload)
	if err != nil {
		t.Fatalf("Unpack with 2 injected transport failures: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("retried request did not replay the body intact")
	}
	if ft.Attempts() != 3 {
		t.Fatalf("made %d attempts, want 3", ft.Attempts())
	}
}

func TestRetryRecoversFrom5xx(t *testing.T) {
	srv := echoServer(t)
	ft := &faultinject.FailingRoundTripper{FailFirst: 2, Status: http.StatusServiceUnavailable}
	c := fastClient(srv.URL, ft)
	payload := []byte("p")
	if _, err := c.Unpack(context.Background(), payload); err != nil {
		t.Fatalf("Unpack with 2 injected 503s: %v", err)
	}
	if ft.Attempts() != 3 {
		t.Fatalf("made %d attempts, want 3", ft.Attempts())
	}
}

func TestRetryGivesUpAndSurfacesFinalError(t *testing.T) {
	srv := echoServer(t)
	ft := &faultinject.FailingRoundTripper{FailFirst: 100, Status: http.StatusBadGateway}
	c := fastClient(srv.URL, ft)
	_, err := c.Unpack(context.Background(), []byte("p"))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want APIError with status 502", err)
	}
	if ft.Attempts() != 3 {
		t.Fatalf("made %d attempts, want MaxAttempts = 3", ft.Attempts())
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	srv := echoServer(t)
	ft := &faultinject.FailingRoundTripper{FailFirst: 100, Status: http.StatusNotFound}
	c := fastClient(srv.URL, ft)
	_, err := c.Unpack(context.Background(), []byte("p"))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want APIError with status 404", err)
	}
	if ft.Attempts() != 1 {
		t.Fatalf("made %d attempts, want 1 — client errors must not be retried", ft.Attempts())
	}
}

func TestRetryHonorsContextCancellation(t *testing.T) {
	srv := echoServer(t)
	ft := &faultinject.FailingRoundTripper{FailFirst: 100} // endless transport errors
	c := fastClient(srv.URL, ft)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel during the first backoff: the client must stop instead of
	// burning its remaining attempts.
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	if _, err := c.Unpack(ctx, []byte("p")); err == nil {
		t.Fatal("Unpack succeeded despite cancellation")
	}
	if ft.Attempts() != 1 {
		t.Fatalf("made %d attempts after cancellation, want 1", ft.Attempts())
	}
}

func TestNoRetryAfterDeadlineExpiry(t *testing.T) {
	srv := echoServer(t)
	ft := &faultinject.FailingRoundTripper{FailFirst: 100}
	c := fastClient(srv.URL, ft)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before the first attempt
	if _, err := c.Unpack(ctx, []byte("p")); err == nil {
		t.Fatal("Unpack succeeded with a dead context")
	}
	if ft.Attempts() != 1 {
		t.Fatalf("made %d attempts with a dead context, want 1", ft.Attempts())
	}
}

// TestBackoffGrowthAndCap pins the backoff schedule: exponential from
// BaseDelay, capped at MaxDelay, with equal jitter (half fixed, half
// random) at every step.
func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond}.withDefaults()
	noJitter := func(n int64) int64 { return 0 }
	fullJitter := func(n int64) int64 { return n - 1 }
	wantFloor := []time.Duration{50, 100, 200, 200, 200} // ms: half of min(base<<k, cap)
	for i, want := range wantFloor {
		lo := p.delay(i+1, noJitter)
		hi := p.delay(i+1, fullJitter)
		if lo != want*time.Millisecond {
			t.Errorf("delay(%d) floor = %v, want %v", i+1, lo, want*time.Millisecond)
		}
		if hi < lo || hi >= 2*lo+time.Millisecond {
			t.Errorf("delay(%d) ceiling = %v, want within [%v, %v)", i+1, hi, lo, 2*lo)
		}
	}
	// Huge retry numbers must not overflow the shift into a negative wait.
	if d := p.delay(200, noJitter); d <= 0 || d > p.MaxDelay {
		t.Errorf("delay(200) = %v, want within (0, %v]", d, p.MaxDelay)
	}
}

// recordSleeps replaces c.sleep with one that records each wait and
// returns immediately, so tests pin exact durations without waiting.
func recordSleeps(c *Client) *[]time.Duration {
	var waits []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return ctx.Err()
	}
	return &waits
}

// TestRetryAfterHonored pins the Retry-After contract: a 429 from a
// shedding server is retried, and its Retry-After hint replaces the
// (shorter) jittered backoff as the exact wait.
func TestRetryAfterHonored(t *testing.T) {
	srv := echoServer(t)
	ft := &faultinject.FailingRoundTripper{
		FailFirst: 1, Status: http.StatusTooManyRequests, RetryAfter: "2",
	}
	c := fastClient(srv.URL, ft)
	waits := recordSleeps(c)
	payload := []byte("p")
	got, err := c.Unpack(context.Background(), payload)
	if err != nil {
		t.Fatalf("Unpack with 1 injected 429: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("retried request did not replay the body intact")
	}
	if ft.Attempts() != 2 {
		t.Fatalf("made %d attempts, want 2 — 429 must be retryable", ft.Attempts())
	}
	if len(*waits) != 1 || (*waits)[0] != 2*time.Second {
		t.Fatalf("waits = %v, want exactly [2s] from the Retry-After header", *waits)
	}
}

// TestRetryAfterCapped pins MaxRetryAfter: a hostile or confused server
// cannot park the client for an hour.
func TestRetryAfterCapped(t *testing.T) {
	srv := echoServer(t)
	ft := &faultinject.FailingRoundTripper{
		FailFirst: 1, Status: http.StatusServiceUnavailable, RetryAfter: "3600",
	}
	c := NewRetry(srv.URL, &http.Client{Transport: ft}, RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond,
		MaxDelay: 4 * time.Millisecond, MaxRetryAfter: 250 * time.Millisecond,
	})
	waits := recordSleeps(c)
	if _, err := c.Unpack(context.Background(), []byte("p")); err != nil {
		t.Fatalf("Unpack with 1 injected 503: %v", err)
	}
	if len(*waits) != 1 || (*waits)[0] != 250*time.Millisecond {
		t.Fatalf("waits = %v, want exactly [250ms] — Retry-After must be capped", *waits)
	}
}

// TestRetryAfterNeverShortensBackoff: a tiny or malformed Retry-After
// must not undercut the client's own jittered schedule.
func TestRetryAfterNeverShortensBackoff(t *testing.T) {
	for _, header := range []string{"0", "-5", "soon", ""} {
		srv := echoServer(t)
		ft := &faultinject.FailingRoundTripper{
			FailFirst: 1, Status: http.StatusTooManyRequests, RetryAfter: header,
		}
		c := fastClient(srv.URL, ft)
		c.intn = func(int64) int64 { return 0 } // deterministic jitter floor
		waits := recordSleeps(c)
		if _, err := c.Unpack(context.Background(), []byte("p")); err != nil {
			t.Fatalf("Retry-After %q: Unpack: %v", header, err)
		}
		want := 500 * time.Microsecond // half of BaseDelay, zero jitter
		if len(*waits) != 1 || (*waits)[0] != want {
			t.Fatalf("Retry-After %q: waits = %v, want [%v] from backoff", header, *waits, want)
		}
	}
}

func TestParseRetryAfterHTTPDate(t *testing.T) {
	v := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	d := parseRetryAfter(v)
	if d <= 8*time.Second || d > 10*time.Second {
		t.Fatalf("parseRetryAfter(%q) = %v, want ~10s", v, d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Fatalf("parseRetryAfter(past date) = %v, want 0", d)
	}
}
