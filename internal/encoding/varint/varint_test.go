package varint

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUintRoundTripSmall(t *testing.T) {
	for v := uint64(0); v < 1<<16; v++ {
		b := AppendUint(nil, v)
		got, n, err := Uint(b)
		if err != nil {
			t.Fatalf("Uint(%d): %v", v, err)
		}
		if got != v || n != len(b) {
			t.Fatalf("Uint(%d) = %d (n=%d, len=%d)", v, got, n, len(b))
		}
	}
}

func TestUintRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		b := AppendUint(nil, v)
		got, n, err := Uint(b)
		return err == nil && got == v && n == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 1}, {127, 1}, {128, 2}, {16383, 2}, {16384, 3},
		{math.MaxUint32, 5}, {math.MaxUint64, 10},
	}
	for _, c := range cases {
		b := AppendUint(nil, c.v)
		if len(b) != c.want {
			t.Errorf("len(AppendUint(%d)) = %d, want %d", c.v, len(b), c.want)
		}
	}
}

func TestUintTruncated(t *testing.T) {
	b := AppendUint(nil, math.MaxUint64)
	for i := 0; i < len(b); i++ {
		if _, _, err := Uint(b[:i]); err != io.ErrUnexpectedEOF {
			t.Errorf("Uint(truncated %d): err = %v, want ErrUnexpectedEOF", i, err)
		}
	}
}

func TestUintOverflow(t *testing.T) {
	// Eleven continuation bytes can never be a valid 64-bit varint.
	b := bytes.Repeat([]byte{0xff}, 11)
	if _, _, err := Uint(b); err != ErrOverflow {
		t.Errorf("Uint(11 x 0xff): err = %v, want ErrOverflow", err)
	}
	// Ten bytes whose last byte sets bits beyond 64 also overflow.
	b = append(bytes.Repeat([]byte{0x80}, 9), 0x02)
	if _, _, err := Uint(b); err != ErrOverflow {
		t.Errorf("Uint(shift overflow): err = %v, want ErrOverflow", err)
	}
}

func TestZigzagPaperExample(t *testing.T) {
	// §6: {−3,−2,−1,0,1,2,3} is encoded as {5,3,1,0,2,4,6}.
	in := []int64{-3, -2, -1, 0, 1, 2, 3}
	want := []uint64{5, 3, 1, 0, 2, 4, 6}
	for i, x := range in {
		if got := Zigzag(x); got != want[i] {
			t.Errorf("Zigzag(%d) = %d, want %d", x, got, want[i])
		}
		if back := Unzigzag(want[i]); back != x {
			t.Errorf("Unzigzag(%d) = %d, want %d", want[i], back, x)
		}
	}
}

func TestZigzagRoundTripQuick(t *testing.T) {
	f := func(x int64) bool { return Unzigzag(Zigzag(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntRoundTrip(t *testing.T) {
	for _, x := range []int64{0, -1, 1, math.MinInt64, math.MaxInt64, -128, 127, 1 << 40} {
		b := AppendInt(nil, x)
		got, n, err := Int(b)
		if err != nil || got != x || n != len(b) {
			t.Errorf("Int round trip %d: got %d n=%d err=%v", x, got, n, err)
		}
	}
}

func TestBoundedExhaustive(t *testing.T) {
	for _, n := range []int{1, 2, 255, 256, 257, 300, 511, 512, 1000, 4243, 1 << 16} {
		c := NewBounded(n)
		for x := 0; x < n; x++ {
			b := c.Append(nil, x)
			if len(b) > c.MaxSize() {
				t.Fatalf("n=%d x=%d: len %d > MaxSize %d", n, x, len(b), c.MaxSize())
			}
			got, used, err := c.Decode(b)
			if err != nil || got != x || used != len(b) {
				t.Fatalf("n=%d x=%d: got %d used=%d err=%v", n, x, got, used, err)
			}
		}
	}
}

func TestBoundedTwoByteMax(t *testing.T) {
	// §6 promises at most two bytes for any n ≤ 2^16.
	c := NewBounded(1 << 16)
	if c.MaxSize() != 2 {
		t.Fatalf("MaxSize = %d, want 2", c.MaxSize())
	}
	if got := len(c.Append(nil, 1<<16-1)); got != 2 {
		t.Fatalf("max value encodes in %d bytes, want 2", got)
	}
}

func TestBoundedSmallRangesSingleByte(t *testing.T) {
	c := NewBounded(256)
	for x := 0; x < 256; x++ {
		if got := len(c.Append(nil, x)); got != 1 {
			t.Fatalf("n=256 x=%d encodes in %d bytes, want 1", x, got)
		}
	}
}

func TestBoundedPanics(t *testing.T) {
	for _, n := range []int{0, -1, 1<<16 + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBounded(%d) did not panic", n)
				}
			}()
			NewBounded(n)
		}()
	}
	c := NewBounded(10)
	for _, x := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Append(%d) did not panic", x)
				}
			}()
			c.Append(nil, x)
		}()
	}
}

func TestBoundedDecodeErrors(t *testing.T) {
	c := NewBounded(300)
	if _, _, err := c.Decode(nil); err != io.ErrUnexpectedEOF {
		t.Errorf("Decode(nil): %v", err)
	}
	if _, _, err := c.Decode([]byte{0xff}); err != io.ErrUnexpectedEOF {
		t.Errorf("Decode(short two-byte): %v", err)
	}
	// A second byte pushing the value past n must error.
	if _, _, err := c.Decode([]byte{0xff, 0xff}); err == nil {
		t.Errorf("Decode(out-of-range) succeeded")
	}
}

func TestStreamReadWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	var vals []uint64
	var ints []int64
	for i := 0; i < 1000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		vals = append(vals, v)
		if err := WriteUint(&buf, v); err != nil {
			t.Fatal(err)
		}
		x := int64(rng.Uint64()) >> uint(rng.Intn(63))
		ints = append(ints, x)
		if err := WriteInt(&buf, x); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i := range vals {
		v, err := ReadUint(r)
		if err != nil || v != vals[i] {
			t.Fatalf("ReadUint[%d] = %d, %v; want %d", i, v, err, vals[i])
		}
		x, err := ReadInt(r)
		if err != nil || x != ints[i] {
			t.Fatalf("ReadInt[%d] = %d, %v; want %d", i, x, err, ints[i])
		}
	}
	if _, err := ReadUint(r); err != io.EOF {
		t.Fatalf("ReadUint at end: %v, want EOF", err)
	}
}

func TestReadUintTruncatedStream(t *testing.T) {
	r := bytes.NewReader([]byte{0x80})
	if _, err := ReadUint(r); err != io.ErrUnexpectedEOF {
		t.Fatalf("ReadUint truncated: %v", err)
	}
}
