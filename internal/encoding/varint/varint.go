// Package varint implements the integer byte codings of §6 of the paper:
// a 7-bit little-endian-group unsigned varint, a zigzag mapping for signed
// values, and a bounded-range coding that uses the known range [0, n) to
// emit one byte for small values and exactly two bytes otherwise.
package varint

import (
	"errors"
	"fmt"
	"io"
)

// ErrOverflow is returned when a varint is longer than the maximum width
// for a 64-bit value.
var ErrOverflow = errors.New("varint: value overflows 64 bits")

// MaxLen64 is the maximum byte length of a varint-encoded uint64.
const MaxLen64 = 10

// AppendUint appends the unsigned varint encoding of v to dst.
// The low seven bits of each byte carry payload; the high bit is set when
// more bytes follow. Values below 128 use a single byte.
func AppendUint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Uint decodes an unsigned varint from b, returning the value and the
// number of bytes consumed. It returns n == 0 on truncated input and an
// error for encodings longer than MaxLen64.
func Uint(b []byte) (v uint64, n int, err error) {
	var shift uint
	for i, c := range b {
		if i >= MaxLen64 {
			return 0, 0, ErrOverflow
		}
		if c < 0x80 {
			if i == MaxLen64-1 && c > 1 {
				return 0, 0, ErrOverflow
			}
			return v | uint64(c)<<shift, i + 1, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0, io.ErrUnexpectedEOF
}

// Zigzag maps a signed value onto the unsigned coding so that values of
// small magnitude get short encodings: x ≥ 0 ? 2x : −2x−1.
// Thus {−3,−2,−1,0,1,2,3} maps to {5,3,1,0,2,4,6} as in §6 of the paper.
func Zigzag(x int64) uint64 {
	return uint64(x<<1) ^ uint64(x>>63)
}

// Unzigzag inverts Zigzag.
func Unzigzag(v uint64) int64 {
	return int64(v>>1) ^ -int64(v&1)
}

// AppendInt appends the zigzag varint encoding of x to dst.
func AppendInt(dst []byte, x int64) []byte {
	return AppendUint(dst, Zigzag(x))
}

// Int decodes a zigzag varint from b.
func Int(b []byte) (x int64, n int, err error) {
	v, n, err := Uint(b)
	return Unzigzag(v), n, err
}

// Bounded encodes values drawn from a known range [0, n) with n ≤ 65536.
// Following §6: the highest r = ⌊(n−256)/255⌋ one-byte patterns (when
// n > 256) are reserved to introduce a second byte, so every value fits in
// at most two bytes while values below the reservation threshold keep a
// one-byte coding with a skewed byte distribution.
type Bounded struct {
	n int // exclusive upper bound of the value range
	r int // number of reserved first-byte patterns
}

// NewBounded returns the coding for values in [0, n). It panics if
// n < 1 or n > 65536; a bound that small or large has no two-byte coding.
func NewBounded(n int) Bounded {
	if n < 1 || n > 1<<16 {
		panic(fmt.Sprintf("varint: bounded range %d out of (0, 65536]", n))
	}
	r := 0
	if n > 256 {
		// r reserved lead bytes must cover the n-256+r values that do not
		// fit in the 256-r unreserved single bytes: r*256 >= n-256+r.
		r = (n - 256 + 254) / 255
	}
	return Bounded{n: n, r: r}
}

// N returns the exclusive upper bound of the coding's range.
func (c Bounded) N() int { return c.n }

// MaxSize returns the maximum encoded size in bytes (1 or 2).
func (c Bounded) MaxSize() int {
	if c.r == 0 {
		return 1
	}
	return 2
}

// Append appends the encoding of x to dst. It panics if x is outside
// [0, n): range errors here are always encoder bugs, not data errors.
func (c Bounded) Append(dst []byte, x int) []byte {
	if x < 0 || x >= c.n {
		panic(fmt.Sprintf("varint: bounded value %d out of [0, %d)", x, c.n))
	}
	lim := 256 - c.r
	if x < lim {
		return append(dst, byte(x))
	}
	// Two-byte form from §6: [((x−lim) mod r) + lim, ⌊(x−lim)/r⌋].
	return append(dst, byte((x-lim)%c.r+lim), byte((x-lim)/c.r))
}

// Decode reads one value from b, returning it and the bytes consumed.
func (c Bounded) Decode(b []byte) (x, n int, err error) {
	if len(b) == 0 {
		return 0, 0, io.ErrUnexpectedEOF
	}
	lim := 256 - c.r
	first := int(b[0])
	if first < lim {
		return first, 1, nil
	}
	if len(b) < 2 {
		return 0, 0, io.ErrUnexpectedEOF
	}
	x = lim + (first - lim) + int(b[1])*c.r
	if x >= c.n {
		return 0, 0, fmt.Errorf("varint: bounded decode %d out of [0, %d)", x, c.n)
	}
	return x, 2, nil
}

// ByteReader is the subset of io.Reader needed by the stream decoders.
type ByteReader interface {
	ReadByte() (byte, error)
}

// ReadUint decodes an unsigned varint from r.
func ReadUint(r ByteReader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		c, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if i >= MaxLen64 || (i == MaxLen64-1 && c > 1) {
			return 0, ErrOverflow
		}
		if c < 0x80 {
			return v | uint64(c)<<shift, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
}

// ReadInt decodes a zigzag varint from r.
func ReadInt(r ByteReader) (int64, error) {
	v, err := ReadUint(r)
	return Unzigzag(v), err
}

// ByteWriter is the subset of io.Writer needed by the stream encoders.
type ByteWriter interface {
	WriteByte(byte) error
}

// WriteUint writes the unsigned varint encoding of v to w.
func WriteUint(w ByteWriter, v uint64) error {
	for v >= 0x80 {
		if err := w.WriteByte(byte(v) | 0x80); err != nil {
			return err
		}
		v >>= 7
	}
	return w.WriteByte(byte(v))
}

// WriteInt writes the zigzag varint encoding of x to w.
func WriteInt(w ByteWriter, x int64) error {
	return WriteUint(w, Zigzag(x))
}
