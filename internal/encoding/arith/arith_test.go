package arith

import (
	"math"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, n int, syms []int) []byte {
	t.Helper()
	buf, err := EncodeAll(n, syms)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(n, buf, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, got[i], syms[i])
		}
	}
	return buf
}

func TestRoundTripSmall(t *testing.T) {
	roundTrip(t, 2, []int{0, 1, 0, 0, 1, 1, 1, 0})
	roundTrip(t, 1, []int{0, 0, 0})
	roundTrip(t, 5, nil)
	roundTrip(t, 3, []int{2})
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		syms := make([]int, rng.Intn(5000))
		for i := range syms {
			syms[i] = rng.Intn(n)
		}
		roundTrip(t, n, syms)
	}
}

func TestRoundTripSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	syms := make([]int, 50000)
	for i := range syms {
		s := int(rng.ExpFloat64() * 3)
		if s > 255 {
			s = 255
		}
		syms[i] = s
	}
	buf := roundTrip(t, 256, syms)
	// Adaptive coding of a skewed stream must land well under 8 bits/sym
	// and near the empirical entropy.
	counts := make([]float64, 256)
	for _, s := range syms {
		counts[s]++
	}
	entropy := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / float64(len(syms))
			entropy -= p * math.Log2(p)
		}
	}
	gotBits := float64(len(buf) * 8)
	idealBits := entropy * float64(len(syms))
	if gotBits > idealBits*1.1+1024 {
		t.Fatalf("coded %f bits, entropy bound %f", gotBits, idealBits)
	}
}

func TestEncodeRange(t *testing.T) {
	e := NewEncoder(4)
	if err := e.Encode(4); err == nil {
		t.Fatal("out-of-range symbol accepted")
	}
	if err := e.Encode(-1); err == nil {
		t.Fatal("negative symbol accepted")
	}
}

func TestModelRescale(t *testing.T) {
	// Enough updates to force several rescales; coding must stay correct.
	syms := make([]int, maxTotal/increment*4)
	for i := range syms {
		syms[i] = i % 3
	}
	roundTrip(t, 3, syms)
}
