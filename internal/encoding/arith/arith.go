// Package arith implements an adaptive order-0 arithmetic coder
// (Witten–Neal–Cleary style). The paper (§5) compares zlib on a
// move-to-front byte stream against an arithmetic coding of the raw MTF
// indices, where an index with probability p costs log2(1/p) bits; this
// package provides that comparator.
package arith

import (
	"fmt"
	"io"
)

const (
	codeBits  = 32
	topValue  = 1<<codeBits - 1
	firstQtr  = topValue/4 + 1
	half      = 2 * firstQtr
	thirdQtr  = 3 * firstQtr
	maxTotal  = 1 << 16 // rescale threshold for the adaptive model
	increment = 32
)

// model is an adaptive frequency model over n symbols with cumulative
// counts maintained in a Fenwick tree.
type model struct {
	n    int
	tree []uint32 // Fenwick tree of counts, 1-based
	sum  uint32
}

func newModel(n int) *model {
	m := &model{n: n, tree: make([]uint32, n+1)}
	for s := 0; s < n; s++ {
		m.add(s, 1)
	}
	return m
}

func (m *model) add(s int, d uint32) {
	for i := s + 1; i <= m.n; i += i & -i {
		m.tree[i] += d
	}
	m.sum += d
}

// cumBelow returns the total count of symbols < s.
func (m *model) cumBelow(s int) uint32 {
	var c uint32
	for i := s; i > 0; i -= i & -i {
		c += m.tree[i]
	}
	return c
}

func (m *model) count(s int) uint32 { return m.cumBelow(s+1) - m.cumBelow(s) }

// find returns the symbol whose cumulative interval contains target.
func (m *model) find(target uint32) int {
	pos := 0
	step := 1
	for step<<1 <= m.n {
		step <<= 1
	}
	var acc uint32
	for ; step > 0; step >>= 1 {
		if pos+step <= m.n && acc+m.tree[pos+step] <= target {
			pos += step
			acc += m.tree[pos]
		}
	}
	return pos // count of symbols fully below target
}

func (m *model) update(s int) {
	m.add(s, increment)
	if m.sum >= maxTotal {
		m.rescale()
	}
}

func (m *model) rescale() {
	counts := make([]uint32, m.n)
	for s := 0; s < m.n; s++ {
		counts[s] = (m.count(s) + 1) / 2
		if counts[s] == 0 {
			counts[s] = 1
		}
	}
	m.tree = make([]uint32, m.n+1)
	m.sum = 0
	for s, c := range counts {
		m.add(s, c)
	}
}

// Encoder arithmetic-codes a symbol stream adaptively.
type Encoder struct {
	m        *model
	low      uint64
	high     uint64
	pending  int
	w        bitAppender
	finished bool
}

type bitAppender struct {
	buf  []byte
	cur  byte
	nCur uint
}

func (b *bitAppender) bit(v int) {
	b.cur = b.cur<<1 | byte(v)
	b.nCur++
	if b.nCur == 8 {
		b.buf = append(b.buf, b.cur)
		b.cur, b.nCur = 0, 0
	}
}

func (b *bitAppender) bytes() []byte {
	if b.nCur > 0 {
		return append(b.buf, b.cur<<(8-b.nCur))
	}
	return b.buf
}

// NewEncoder returns an encoder over an alphabet of n symbols (n ≥ 1).
func NewEncoder(n int) *Encoder {
	return &Encoder{m: newModel(n), low: 0, high: topValue}
}

func (e *Encoder) outputBit(v int) {
	e.w.bit(v)
	for ; e.pending > 0; e.pending-- {
		e.w.bit(1 - v)
	}
}

// Encode codes symbol s and updates the model.
func (e *Encoder) Encode(s int) error {
	if s < 0 || s >= e.m.n {
		return fmt.Errorf("arith: symbol %d out of range [0,%d)", s, e.m.n)
	}
	total := uint64(e.m.sum)
	lo := uint64(e.m.cumBelow(s))
	hi := lo + uint64(e.m.count(s))
	width := e.high - e.low + 1
	e.high = e.low + width*hi/total - 1
	e.low = e.low + width*lo/total
	for {
		switch {
		case e.high < half:
			e.outputBit(0)
		case e.low >= half:
			e.outputBit(1)
			e.low -= half
			e.high -= half
		case e.low >= firstQtr && e.high < thirdQtr:
			e.pending++
			e.low -= firstQtr
			e.high -= firstQtr
		default:
			e.m.update(s)
			return nil
		}
		e.low <<= 1
		e.high = e.high<<1 | 1
	}
}

// Bytes finalizes the stream and returns the coded bytes. The encoder
// cannot be used after Bytes.
func (e *Encoder) Bytes() []byte {
	if !e.finished {
		e.finished = true
		e.pending++
		if e.low < firstQtr {
			e.outputBit(0)
		} else {
			e.outputBit(1)
		}
	}
	return e.w.bytes()
}

// Decoder decodes a stream produced by Encoder with the same alphabet size.
type Decoder struct {
	m     *model
	low   uint64
	high  uint64
	value uint64
	buf   []byte
	pos   uint // bit position; reads past the end yield zero bits
}

// NewDecoder returns a decoder for buf over an alphabet of n symbols.
func NewDecoder(n int, buf []byte) *Decoder {
	d := &Decoder{m: newModel(n), high: topValue, buf: buf}
	for i := 0; i < codeBits; i++ {
		d.value = d.value<<1 | d.nextBit()
	}
	return d
}

func (d *Decoder) nextBit() uint64 {
	if d.pos >= uint(len(d.buf))*8 {
		d.pos++
		return 0
	}
	b := d.buf[d.pos/8] >> (7 - d.pos%8) & 1
	d.pos++
	return uint64(b)
}

// Decode returns the next symbol. Decoding more symbols than were encoded
// returns arbitrary symbols, not an error: the caller knows the count.
func (d *Decoder) Decode() (int, error) {
	total := uint64(d.m.sum)
	width := d.high - d.low + 1
	target := ((d.value-d.low+1)*total - 1) / width
	if target >= total {
		return 0, io.ErrUnexpectedEOF
	}
	s := d.m.find(uint32(target))
	lo := uint64(d.m.cumBelow(s))
	hi := lo + uint64(d.m.count(s))
	d.high = d.low + width*hi/total - 1
	d.low = d.low + width*lo/total
	for {
		switch {
		case d.high < half:
			// nothing
		case d.low >= half:
			d.low -= half
			d.high -= half
			d.value -= half
		case d.low >= firstQtr && d.high < thirdQtr:
			d.low -= firstQtr
			d.high -= firstQtr
			d.value -= firstQtr
		default:
			d.m.update(s)
			return s, nil
		}
		d.low <<= 1
		d.high = d.high<<1 | 1
		d.value = d.value<<1 | d.nextBit()
	}
}

// EncodeAll codes an entire symbol stream over an alphabet of n symbols.
func EncodeAll(n int, syms []int) ([]byte, error) {
	e := NewEncoder(n)
	for _, s := range syms {
		if err := e.Encode(s); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// DecodeAll decodes count symbols from buf.
func DecodeAll(n int, buf []byte, count int) ([]int, error) {
	d := NewDecoder(n, buf)
	out := make([]int, count)
	for i := range out {
		s, err := d.Decode()
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
