// Package huffman implements canonical Huffman coding over small symbol
// alphabets. The Jazz baseline (§13.1) uses a fixed Huffman code per kind
// of constant-pool index, and the custom-opcode competitor (§7.2) uses
// Huffman code lengths as its entropy estimate.
package huffman

import (
	"container/heap"
	"fmt"
	"sort"
)

// maxCodeLen bounds code lengths so decode tables stay small; codes longer
// than this are flattened by repeatedly halving large counts.
const maxCodeLen = 24

// Code is a canonical Huffman code for symbols 0..n-1.
type Code struct {
	lengths []uint8  // bit length per symbol; 0 = symbol absent
	codes   []uint32 // canonical code bits per symbol
	// decode tables: firstCode[l] is the first canonical code of length l,
	// offset[l] indexes into symbolsByLen.
	firstCode    [maxCodeLen + 2]uint32
	offset       [maxCodeLen + 2]int
	symbolsByLen []int
	maxLen       uint
}

// New builds a canonical code from per-symbol frequency counts.
// Symbols with zero count get no code. At least one symbol must have a
// nonzero count.
func New(counts []int) (*Code, error) {
	n := 0
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("huffman: negative count %d", c)
		}
		if c > 0 {
			n++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("huffman: no symbols with nonzero count")
	}
	lengths := buildLengths(counts)
	return FromLengths(lengths)
}

// FromLengths builds the canonical code for the given code lengths
// (0 = absent). Lengths must satisfy the Kraft equality or inequality.
func FromLengths(lengths []uint8) (*Code, error) {
	c := &Code{
		lengths: append([]uint8(nil), lengths...),
		codes:   make([]uint32, len(lengths)),
	}
	var lenCount [maxCodeLen + 2]int
	for s, l := range lengths {
		if l > maxCodeLen {
			return nil, fmt.Errorf("huffman: symbol %d length %d exceeds max %d", s, l, maxCodeLen)
		}
		if l > 0 {
			lenCount[l]++
			if uint(l) > c.maxLen {
				c.maxLen = uint(l)
			}
		}
	}
	// Kraft check.
	kraft := uint64(0)
	for l := 1; l <= maxCodeLen; l++ {
		kraft += uint64(lenCount[l]) << (maxCodeLen - l)
	}
	if kraft > 1<<maxCodeLen {
		return nil, fmt.Errorf("huffman: code lengths oversubscribed")
	}
	// Canonical first codes.
	code := uint32(0)
	total := 0
	for l := 1; l <= int(c.maxLen); l++ {
		code = (code + uint32(lenCount[l-1])) << 1
		c.firstCode[l] = code
		c.offset[l] = total
		total += lenCount[l]
		code += 0 // codes of this length begin at firstCode[l]
	}
	// Assign codes symbol-major (symbols in increasing order share lengths
	// in canonical order).
	next := make([]uint32, maxCodeLen+2)
	fill := make([]int, maxCodeLen+2)
	for l := 1; l <= int(c.maxLen); l++ {
		next[l] = c.firstCode[l]
	}
	c.symbolsByLen = make([]int, total)
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		c.codes[s] = next[l]
		next[l]++
		c.symbolsByLen[c.offset[l]+fill[l]] = s
		fill[l]++
	}
	return c, nil
}

// Lengths returns the per-symbol code lengths (for serializing the code).
func (c *Code) Lengths() []uint8 { return append([]uint8(nil), c.lengths...) }

// SymbolLen returns the code length in bits for symbol s (0 if absent).
func (c *Code) SymbolLen(s int) int { return int(c.lengths[s]) }

// Encode appends symbol s to w. It panics if s has no code, which is an
// encoder bug (the counts passed to New missed a symbol).
func (c *Code) Encode(w *BitWriter, s int) {
	l := c.lengths[s]
	if l == 0 {
		panic(fmt.Sprintf("huffman: symbol %d has no code", s))
	}
	w.WriteBits(uint64(c.codes[s]), uint(l))
}

// Decode reads one symbol from r.
func (c *Code) Decode(r *BitReader) (int, error) {
	code := uint32(0)
	for l := uint(1); l <= c.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(bit)
		// Codes of length l occupy [firstCode[l], firstCode[l]+count).
		idx := int(code) - int(c.firstCode[l])
		if idx >= 0 {
			end := c.offset[l+1]
			if int(l) == int(c.maxLen) {
				end = len(c.symbolsByLen)
			}
			if c.offset[l]+idx < end {
				return c.symbolsByLen[c.offset[l]+idx], nil
			}
		}
	}
	return 0, fmt.Errorf("huffman: invalid code")
}

// buildLengths computes code lengths via a pairing heap over (count,
// symbol-set) nodes. Counts are flattened until the deepest code fits
// maxCodeLen.
func buildLengths(counts []int) []uint8 {
	scaled := append([]int(nil), counts...)
	for {
		lengths, deepest := treeLengths(scaled)
		if deepest <= maxCodeLen {
			return lengths
		}
		// Halve (rounding up to 1) and retry: flattens the distribution.
		for i, c := range scaled {
			if c > 0 {
				scaled[i] = (c + 1) / 2
			}
		}
	}
}

type hNode struct {
	count       int
	order       int // tiebreak for determinism
	left, right *hNode
	symbol      int
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].order < h[j].order
}
func (h hHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x any)        { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() any          { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }
func (h hHeap) Peek() *hNode       { return h[0] }
func (h *hHeap) PopNode() *hNode   { return heap.Pop(h).(*hNode) }
func (h *hHeap) PushNode(n *hNode) { heap.Push(h, n) }

func treeLengths(counts []int) (lengths []uint8, deepest int) {
	lengths = make([]uint8, len(counts))
	var leaves []*hNode
	for s, c := range counts {
		if c > 0 {
			leaves = append(leaves, &hNode{count: c, order: s, symbol: s})
		}
	}
	if len(leaves) == 1 {
		lengths[leaves[0].symbol] = 1
		return lengths, 1
	}
	h := hHeap(append([]*hNode(nil), leaves...))
	heap.Init(&h)
	order := len(counts)
	for h.Len() > 1 {
		a, b := h.PopNode(), h.PopNode()
		h.PushNode(&hNode{count: a.count + b.count, order: order, left: a, right: b})
		order++
	}
	root := h.Peek()
	var walk func(n *hNode, depth int)
	walk = func(n *hNode, depth int) {
		if n.left == nil {
			lengths[n.symbol] = uint8(depth)
			if depth > deepest {
				deepest = depth
			}
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths, deepest
}

// EstimateBits returns the total Huffman-coded size in bits of a stream
// with the given symbol counts; it is the log2(1/p) entropy proxy used by
// the custom-opcode search (§7.2).
func EstimateBits(counts []int) int {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		return 0
	}
	code, err := New(counts)
	if err != nil {
		return 0
	}
	bits := 0
	for s, c := range counts {
		if c > 0 {
			bits += c * code.SymbolLen(s)
		}
	}
	return bits
}

// SortedSymbols returns the symbols with nonzero counts in decreasing
// count order (ties by symbol); used to assign small ids to frequent
// objects in the Freq reference scheme.
func SortedSymbols(counts []int) []int {
	var syms []int
	for s, c := range counts {
		if c > 0 {
			syms = append(syms, s)
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if counts[syms[i]] != counts[syms[j]] {
			return counts[syms[i]] > counts[syms[j]]
		}
		return syms[i] < syms[j]
	})
	return syms
}
