package huffman

import (
	"math/rand"
	"testing"
)

func TestBitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var w BitWriter
	type item struct {
		v uint64
		n uint
	}
	var items []item
	for i := 0; i < 2000; i++ {
		n := uint(1 + rng.Intn(63))
		v := rng.Uint64() & (1<<n - 1)
		items = append(items, item{v, n})
		w.WriteBits(v, n)
	}
	r := NewBitReader(w.Bytes())
	for i, it := range items {
		v, err := r.ReadBits(it.n)
		if err != nil || v != it.v {
			t.Fatalf("item %d: got %d err=%v, want %d", i, v, err, it.v)
		}
	}
}

func TestBitReaderEOF(t *testing.T) {
	r := NewBitReader([]byte{0xff})
	if _, err := r.ReadBits(9); err == nil {
		t.Fatal("ReadBits(9) of 1 byte succeeded")
	}
	if v, err := r.ReadBits(8); err != nil || v != 0xff {
		t.Fatalf("ReadBits(8) = %d, %v", v, err)
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("read past end succeeded")
	}
}

func roundTrip(t *testing.T, counts []int, stream []int) {
	t.Helper()
	c, err := New(counts)
	if err != nil {
		t.Fatal(err)
	}
	var w BitWriter
	for _, s := range stream {
		c.Encode(&w, s)
	}
	// Rebuild from serialized lengths, as the Jazz decoder does.
	c2, err := FromLengths(c.Lengths())
	if err != nil {
		t.Fatal(err)
	}
	r := NewBitReader(w.Bytes())
	for i, want := range stream {
		got, err := c2.Decode(r)
		if err != nil || got != want {
			t.Fatalf("symbol %d: got %d err=%v, want %d", i, got, err, want)
		}
	}
}

func TestRoundTripUniform(t *testing.T) {
	counts := make([]int, 16)
	var stream []int
	for s := range counts {
		counts[s] = 1
		stream = append(stream, s)
	}
	roundTrip(t, counts, stream)
}

func TestRoundTripSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 300)
	var stream []int
	for i := 0; i < 20000; i++ {
		s := int(rng.ExpFloat64() * 20)
		if s >= len(counts) {
			s = len(counts) - 1
		}
		counts[s]++
		stream = append(stream, s)
	}
	roundTrip(t, counts, stream)
}

func TestSingleSymbol(t *testing.T) {
	roundTrip(t, []int{0, 5, 0}, []int{1, 1, 1})
}

func TestSkewedBeatsFixedWidth(t *testing.T) {
	// A heavily skewed distribution must code in fewer bits than fixed width.
	counts := make([]int, 256)
	counts[0] = 10000
	for s := 1; s < 256; s++ {
		counts[s] = 1
	}
	bits := EstimateBits(counts)
	total := 10000 + 255
	if bits >= total*8 {
		t.Fatalf("Huffman %d bits not better than fixed %d", bits, total*8)
	}
}

func TestExtremeSkewCapsLength(t *testing.T) {
	// Fibonacci-like counts force deep trees; lengths must stay capped.
	counts := make([]int, 40)
	a, b := 1, 1
	for i := range counts {
		counts[i] = a
		a, b = b, a+b
		if a > 1<<40 {
			a = 1 << 40
		}
	}
	c, err := New(counts)
	if err != nil {
		t.Fatal(err)
	}
	for s := range counts {
		if l := c.SymbolLen(s); l == 0 || l > maxCodeLen {
			t.Fatalf("symbol %d length %d out of (0,%d]", s, l, maxCodeLen)
		}
	}
	// And it must still round-trip.
	stream := []int{0, 39, 20, 5, 39, 0}
	roundTrip(t, counts, stream)
}

func TestErrors(t *testing.T) {
	if _, err := New([]int{0, 0}); err == nil {
		t.Error("New with all-zero counts succeeded")
	}
	if _, err := New([]int{-1, 2}); err == nil {
		t.Error("New with negative count succeeded")
	}
	if _, err := FromLengths([]uint8{1, 1, 1}); err == nil {
		t.Error("oversubscribed lengths accepted")
	}
	if _, err := FromLengths([]uint8{maxCodeLen + 1}); err == nil {
		t.Error("overlong length accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	c, err := New([]int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := NewBitReader(nil)
	if _, err := c.Decode(r); err == nil {
		t.Fatal("Decode of empty input succeeded")
	}
}

func TestSortedSymbols(t *testing.T) {
	got := SortedSymbols([]int{3, 0, 9, 3, 1})
	want := []int{2, 0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
