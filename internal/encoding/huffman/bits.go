package huffman

import "io"

// BitWriter writes MSB-first bit strings into a byte slice.
type BitWriter struct {
	buf  []byte
	cur  uint64
	nCur uint // bits held in cur
}

// WriteBits appends the low n bits of v, most significant bit first.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for n > 0 {
		take := 8 - w.nCur%8
		if take > n {
			take = n
		}
		bits := (v >> (n - take)) & (1<<take - 1)
		w.cur = w.cur<<take | bits
		w.nCur += take
		n -= take
		if w.nCur%8 == 0 {
			w.buf = append(w.buf, byte(w.cur))
			w.cur = 0
		}
	}
}

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
func (w *BitWriter) Bytes() []byte {
	if rem := w.nCur % 8; rem != 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-rem)))
		w.cur = 0
		w.nCur += 8 - rem
	}
	return w.buf
}

// BitLen reports the number of bits written so far (before padding).
func (w *BitWriter) BitLen() int { return int(w.nCur) }

// BitReader reads MSB-first bit strings from a byte slice. Reads past the
// end return io.ErrUnexpectedEOF.
type BitReader struct {
	buf []byte
	pos uint // bit position
}

// NewBitReader returns a reader over b.
func NewBitReader(b []byte) *BitReader { return &BitReader{buf: b} }

// ReadBits reads n bits MSB-first.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if r.pos+n > uint(len(r.buf))*8 {
		return 0, io.ErrUnexpectedEOF
	}
	var v uint64
	for n > 0 {
		byteIdx := r.pos / 8
		bitOff := r.pos % 8
		avail := 8 - bitOff
		take := avail
		if take > n {
			take = n
		}
		chunk := uint64(r.buf[byteIdx]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.pos += take
		n -= take
	}
	return v, nil
}

// ReadBit reads a single bit.
func (r *BitReader) ReadBit() (uint64, error) { return r.ReadBits(1) }
