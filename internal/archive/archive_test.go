package archive

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func sampleFiles() []File {
	rng := rand.New(rand.NewSource(2))
	var files []File
	for i := 0; i < 5; i++ {
		data := make([]byte, 2000+rng.Intn(3000))
		for j := range data {
			data[j] = byte("abcdefgh"[rng.Intn(8)]) // compressible
		}
		files = append(files, File{
			Name: strings.Repeat("p/", i) + "C.class",
			Data: data,
		})
	}
	return files
}

func TestJarRoundTrip(t *testing.T) {
	files := sampleFiles()
	jar, err := WriteJar(files)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadJar(jar)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(files) {
		t.Fatalf("got %d files, want %d", len(back), len(files))
	}
	for i := range files {
		if back[i].Name != files[i].Name || !bytes.Equal(back[i].Data, files[i].Data) {
			t.Fatalf("file %d corrupted", i)
		}
	}
}

func TestJ0rGzRoundTrip(t *testing.T) {
	files := sampleFiles()
	gz, err := WriteJ0rGz(files)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadJ0rGz(gz)
	if err != nil {
		t.Fatal(err)
	}
	for i := range files {
		if !bytes.Equal(back[i].Data, files[i].Data) {
			t.Fatalf("file %d corrupted", i)
		}
	}
}

func TestSizeOrdering(t *testing.T) {
	// For compressible shared-content files: j0r.gz < jar < stored,
	// the §2.1 observation motivating whole-archive compression.
	files := sampleFiles()
	jar, _ := WriteJar(files)
	stored, _ := WriteStored(files)
	j0rgz, _ := WriteJ0rGz(files)
	if !(len(j0rgz) < len(jar) && len(jar) < len(stored)) {
		t.Fatalf("sizes j0rgz=%d jar=%d stored=%d violate expected order",
			len(j0rgz), len(jar), len(stored))
	}
}

func TestDeterministic(t *testing.T) {
	files := sampleFiles()
	a, _ := WriteJar(files)
	b, _ := WriteJar(files)
	if !bytes.Equal(a, b) {
		t.Fatal("WriteJar is not deterministic")
	}
	c, _ := WriteJ0rGz(files)
	d, _ := WriteJ0rGz(files)
	if !bytes.Equal(c, d) {
		t.Fatal("WriteJ0rGz is not deterministic")
	}
}

func TestFlateRoundTrip(t *testing.T) {
	data := []byte(strings.Repeat("compressing java class files ", 100))
	comp, err := Flate(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(data) {
		t.Fatalf("flate did not compress: %d >= %d", len(comp), len(data))
	}
	if FlateSize(data) != len(comp) {
		t.Fatalf("FlateSize = %d, want %d", FlateSize(data), len(comp))
	}
	back, err := Inflate(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("inflate mismatch")
	}
}

func TestGzipWholeRoundTrip(t *testing.T) {
	data := []byte(strings.Repeat("xyz", 1000))
	gz, err := GzipWhole(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := GunzipWhole(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("gzip roundtrip mismatch")
	}
}

func TestReadJarErrors(t *testing.T) {
	if _, err := ReadJar([]byte("not a zip")); err == nil {
		t.Fatal("ReadJar accepted junk")
	}
	if _, err := ReadJ0rGz([]byte("not gzip")); err == nil {
		t.Fatal("ReadJ0rGz accepted junk")
	}
}
