// Package archive implements the baseline container formats the paper
// compares against (§2): jar files (zip archives with per-file DEFLATE
// compression), uncompressed "j0r" archives (zip with stored entries), and
// j0r.gz archives (a stored zip compressed with gzip as a whole, §2.1).
// Output is deterministic: entries carry no timestamps.
package archive

import (
	"archive/zip"
	"bytes"
	"compress/flate"
	"compress/gzip"
	"fmt"
	"io"
)

// File is one archive member.
type File struct {
	Name string
	Data []byte
}

func writeZip(files []File, method uint16) ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	// Maximum compression, matching the paper's gzip usage.
	zw.RegisterCompressor(zip.Deflate, func(w io.Writer) (io.WriteCloser, error) {
		return flate.NewWriter(w, flate.BestCompression)
	})
	for _, f := range files {
		w, err := zw.CreateHeader(&zip.FileHeader{Name: f.Name, Method: method})
		if err != nil {
			return nil, fmt.Errorf("archive: %s: %w", f.Name, err)
		}
		if _, err := w.Write(f.Data); err != nil {
			return nil, fmt.Errorf("archive: %s: %w", f.Name, err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteJar builds a jar (zip, per-file DEFLATE).
func WriteJar(files []File) ([]byte, error) { return writeZip(files, zip.Deflate) }

// WriteStored builds a "j0r": a jar whose entries are stored uncompressed.
func WriteStored(files []File) ([]byte, error) { return writeZip(files, zip.Store) }

// GzipWhole compresses data as one gzip stream at maximum compression.
func GzipWhole(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	gw, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	if err != nil {
		return nil, err
	}
	if _, err := gw.Write(data); err != nil {
		return nil, err
	}
	if err := gw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GunzipWhole decompresses a single gzip stream.
func GunzipWhole(data []byte) ([]byte, error) {
	gr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer gr.Close()
	return io.ReadAll(gr)
}

// WriteJ0rGz builds a j0r.gz: individual files stored uncompressed in a
// jar, the jar gzip'd as a whole (§2.1).
func WriteJ0rGz(files []File) ([]byte, error) {
	stored, err := WriteStored(files)
	if err != nil {
		return nil, err
	}
	return GzipWhole(stored)
}

// ReadJar lists the members of a jar or j0r produced by this package (or
// any zip archive).
func ReadJar(data []byte) ([]File, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	var out []File
	for _, zf := range zr.File {
		r, err := zf.Open()
		if err != nil {
			return nil, fmt.Errorf("archive: %s: %w", zf.Name, err)
		}
		payload, err := io.ReadAll(r)
		r.Close()
		if err != nil {
			return nil, fmt.Errorf("archive: %s: %w", zf.Name, err)
		}
		out = append(out, File{Name: zf.Name, Data: payload})
	}
	return out, nil
}

// ReadJ0rGz is the inverse of WriteJ0rGz.
func ReadJ0rGz(data []byte) ([]File, error) {
	stored, err := GunzipWhole(data)
	if err != nil {
		return nil, err
	}
	return ReadJar(stored)
}

// FlateSize returns the DEFLATE-compressed size of data at maximum
// compression, without gzip framing — the measurement the paper uses when
// it reports zlib sizes excluding header bytes.
func FlateSize(data []byte) int {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		return 0
	}
	if _, err := fw.Write(data); err != nil {
		return 0
	}
	if err := fw.Close(); err != nil {
		return 0
	}
	return buf.Len()
}

// Flate compresses data with raw DEFLATE at maximum compression.
func Flate(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(data); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Inflate decompresses raw DEFLATE data.
func Inflate(data []byte) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(data))
	defer fr.Close()
	return io.ReadAll(fr)
}
