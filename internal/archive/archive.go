// Package archive implements the baseline container formats the paper
// compares against (§2): jar files (zip archives with per-file DEFLATE
// compression), uncompressed "j0r" archives (zip with stored entries), and
// j0r.gz archives (a stored zip compressed with gzip as a whole, §2.1).
// Output is deterministic: entries carry no timestamps.
package archive

import (
	"archive/zip"
	"bytes"
	"compress/flate"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sync"
)

// File is one archive member.
type File struct {
	Name string
	Data []byte
}

// Constructing a flate.Writer allocates its full match-finder state
// (hundreds of KB) and dominates the allocation profile on small
// corpora, so writers, readers, and scratch buffers are pooled and
// Reset between uses. All pooled writers use BestCompression — the only
// level this package compresses at — so a recycled writer always
// behaves identically to a fresh one.
var (
	flateWriterPool sync.Pool // *flate.Writer at BestCompression
	flateReaderPool sync.Pool // flateReader
	gzipWriterPool  sync.Pool // *gzip.Writer at BestCompression
	bufferPool      sync.Pool // *bytes.Buffer
)

// flateReader is what flate.NewReader actually returns: a ReadCloser
// that can be Reset onto a new source.
type flateReader interface {
	io.ReadCloser
	flate.Resetter
}

func getFlateWriter(w io.Writer) *flate.Writer {
	if fw, ok := flateWriterPool.Get().(*flate.Writer); ok {
		fw.Reset(w)
		return fw
	}
	fw, err := flate.NewWriter(w, flate.BestCompression)
	if err != nil {
		panic(err) // BestCompression is a valid level
	}
	return fw
}

func putFlateWriter(fw *flate.Writer) { flateWriterPool.Put(fw) }

func getFlateReader(data []byte) flateReader {
	src := bytes.NewReader(data)
	if fr, ok := flateReaderPool.Get().(flateReader); ok {
		if fr.Reset(src, nil) == nil {
			return fr
		}
	}
	return flate.NewReader(src).(flateReader)
}

func putFlateReader(fr flateReader) { flateReaderPool.Put(fr) }

func getBuffer() *bytes.Buffer {
	if b, ok := bufferPool.Get().(*bytes.Buffer); ok {
		b.Reset()
		return b
	}
	return new(bytes.Buffer)
}

// maxPooledBuffer bounds retained scratch capacity so one huge archive
// does not pin its buffer for the life of the process.
const maxPooledBuffer = 4 << 20

func putBuffer(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuffer {
		bufferPool.Put(b)
	}
}

// pooledDeflater returns its flate.Writer to the pool when the zip
// writer closes the entry.
type pooledDeflater struct{ fw *flate.Writer }

func (d *pooledDeflater) Write(p []byte) (int, error) { return d.fw.Write(p) }

func (d *pooledDeflater) Close() error {
	err := d.fw.Close()
	putFlateWriter(d.fw)
	d.fw = nil
	return err
}

func writeZip(files []File, method uint16) ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	// Maximum compression, matching the paper's gzip usage.
	zw.RegisterCompressor(zip.Deflate, func(w io.Writer) (io.WriteCloser, error) {
		return &pooledDeflater{fw: getFlateWriter(w)}, nil
	})
	for _, f := range files {
		w, err := zw.CreateHeader(&zip.FileHeader{Name: f.Name, Method: method})
		if err != nil {
			return nil, fmt.Errorf("archive: %s: %w", f.Name, err)
		}
		if _, err := w.Write(f.Data); err != nil {
			return nil, fmt.Errorf("archive: %s: %w", f.Name, err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteJar builds a jar (zip, per-file DEFLATE).
func WriteJar(files []File) ([]byte, error) { return writeZip(files, zip.Deflate) }

// WriteStored builds a "j0r": a jar whose entries are stored uncompressed.
func WriteStored(files []File) ([]byte, error) { return writeZip(files, zip.Store) }

// GzipWhole compresses data as one gzip stream at maximum compression.
func GzipWhole(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	gw, ok := gzipWriterPool.Get().(*gzip.Writer)
	if ok {
		gw.Reset(&buf)
	} else {
		var err error
		if gw, err = gzip.NewWriterLevel(&buf, gzip.BestCompression); err != nil {
			//classpack:vet-allow poolbalance Get missed (fresh pool); there is no writer to return on this path
			return nil, err
		}
	}
	_, werr := gw.Write(data)
	cerr := gw.Close()
	gzipWriterPool.Put(gw)
	if werr != nil {
		return nil, werr
	}
	if cerr != nil {
		return nil, cerr
	}
	return buf.Bytes(), nil
}

// GunzipWhole decompresses a single gzip stream.
func GunzipWhole(data []byte) ([]byte, error) {
	gr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer gr.Close()
	return io.ReadAll(gr)
}

// WriteJ0rGz builds a j0r.gz: individual files stored uncompressed in a
// jar, the jar gzip'd as a whole (§2.1).
func WriteJ0rGz(files []File) ([]byte, error) {
	stored, err := WriteStored(files)
	if err != nil {
		return nil, err
	}
	return GzipWhole(stored)
}

// ReadJar lists the members of a jar or j0r produced by this package (or
// any zip archive).
func ReadJar(data []byte) ([]File, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	var out []File
	for _, zf := range zr.File {
		r, err := zf.Open()
		if err != nil {
			return nil, fmt.Errorf("archive: %s: %w", zf.Name, err)
		}
		payload, err := io.ReadAll(r)
		r.Close()
		if err != nil {
			return nil, fmt.Errorf("archive: %s: %w", zf.Name, err)
		}
		out = append(out, File{Name: zf.Name, Data: payload})
	}
	return out, nil
}

// ReadJ0rGz is the inverse of WriteJ0rGz.
func ReadJ0rGz(data []byte) ([]File, error) {
	stored, err := GunzipWhole(data)
	if err != nil {
		return nil, err
	}
	return ReadJar(stored)
}

// countWriter discards its input, keeping only the byte count.
type countWriter int64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

// FlateSize returns the DEFLATE-compressed size of data at maximum
// compression, without gzip framing — the measurement the paper uses when
// it reports zlib sizes excluding header bytes. The compressed bytes are
// counted, never materialized.
func FlateSize(data []byte) int {
	var n countWriter
	fw := getFlateWriter(&n)
	_, werr := fw.Write(data)
	cerr := fw.Close()
	putFlateWriter(fw)
	if werr != nil || cerr != nil {
		return 0
	}
	return int(n)
}

// Flate compresses data with raw DEFLATE at maximum compression.
func Flate(data []byte) ([]byte, error) {
	buf := getBuffer()
	defer putBuffer(buf)
	fw := getFlateWriter(buf)
	_, werr := fw.Write(data)
	cerr := fw.Close()
	putFlateWriter(fw)
	if werr != nil {
		return nil, werr
	}
	if cerr != nil {
		return nil, cerr
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// Inflate decompresses raw DEFLATE data.
func Inflate(data []byte) ([]byte, error) {
	fr := getFlateReader(data)
	buf := getBuffer()
	defer putBuffer(buf)
	if _, err := buf.ReadFrom(fr); err != nil {
		// A reader that saw corrupt input is dropped, not recycled.
		fr.Close()
		//classpack:vet-allow poolbalance a reader that saw corrupt input is dropped, not recycled
		return nil, err
	}
	if err := fr.Close(); err != nil {
		//classpack:vet-allow poolbalance a reader whose Close failed is dropped, not recycled
		return nil, err
	}
	putFlateReader(fr)
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// ErrInflateTooLarge reports a DEFLATE stream that decompressed past the
// caller's cap; inflation stops at the cap rather than materializing the
// rest, which is the bomb guard for length-prefixed formats whose
// declared sizes cannot be trusted.
var ErrInflateTooLarge = errors.New("archive: inflated data exceeds limit")

// InflateLimit decompresses raw DEFLATE data, failing with
// ErrInflateTooLarge as soon as the output would exceed max bytes. At
// most max+1 bytes are ever buffered, regardless of how much the stream
// claims to expand to.
func InflateLimit(data []byte, max int64) ([]byte, error) {
	if max < 0 {
		max = 0
	}
	fr := getFlateReader(data)
	buf := getBuffer()
	defer putBuffer(buf)
	// Read one byte past the cap: hitting it proves the stream is too
	// large without inflating the remainder.
	n, err := buf.ReadFrom(io.LimitReader(fr, max+1))
	if err != nil {
		fr.Close()
		//classpack:vet-allow poolbalance a reader that saw corrupt input is dropped, not recycled
		return nil, err
	}
	if n > max {
		fr.Close()
		//classpack:vet-allow poolbalance a reader mid-stream at the cap is dropped, not recycled
		return nil, ErrInflateTooLarge
	}
	if err := fr.Close(); err != nil {
		//classpack:vet-allow poolbalance a reader whose Close failed is dropped, not recycled
		return nil, err
	}
	putFlateReader(fr)
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}
