// Package mtf implements the move-to-front queues used to encode references
// (§5 of the paper). The queue is backed by an indexed skiplist [Pug90]
// whose links record the distance they travel forward in the list, giving
// expected O(log n) cost for every operation:
//
//   - the decompressor fetches the element at position k and moves it to
//     the front (Take);
//   - the compressor finds a previously seen element via a hashtable from
//     elements to skiplist nodes, walks forward to the end of the list
//     summing link distances to recover its position, and moves it to the
//     front (Use).
package mtf

import "fmt"

const (
	maxLevel = 32
	// pBits controls the level distribution: a node is promoted one level
	// with probability 1/4 (two random bits both zero).
	pBits = 2
)

type node[K comparable] struct {
	key  K
	next []link[K]
	// inline backs next for the common short nodes, merging the node and
	// link-slice allocations: with p = 1/4 promotion, 255 of 256 nodes
	// have at most 4 levels.
	inline [4]link[K]
}

// link is a forward pointer annotated with the number of list positions it
// skips (1 for a pointer to the immediate successor).
type link[K comparable] struct {
	to   *node[K]
	span int
}

// Queue is a move-to-front queue over keys of type K.
// The zero value is not ready for use; call New.
type Queue[K comparable] struct {
	head  *node[K] // sentinel before position 1
	tail  *node[K] // sentinel after the last position
	index map[K]*node[K]
	size  int
	level int // highest level in use (≥ 1)
	rng   uint64
}

// New returns an empty move-to-front queue.
func New[K comparable]() *Queue[K] {
	q := &Queue[K]{
		head:  &node[K]{next: make([]link[K], maxLevel)},
		tail:  &node[K]{next: make([]link[K], maxLevel)},
		index: make(map[K]*node[K]),
		level: 1,
		rng:   0x9e3779b97f4a7c15,
	}
	for i := range q.head.next {
		q.head.next[i] = link[K]{to: q.tail, span: 1}
	}
	return q
}

// Len reports the number of elements in the queue.
func (q *Queue[K]) Len() int { return q.size }

// Contains reports whether k is in the queue.
func (q *Queue[K]) Contains(k K) bool {
	_, ok := q.index[k]
	return ok
}

// Use looks up k. If present it returns k's 1-based position measured from
// the front and moves k to the front; ok is false (and the queue unchanged)
// otherwise.
func (q *Queue[K]) Use(k K) (pos int, ok bool) {
	n, ok := q.index[k]
	if !ok {
		return 0, false
	}
	pos = q.rankOf(n)
	if pos > 1 {
		q.removeAt(pos)
		q.insertNodeFront(n)
	}
	return pos, true
}

// Position returns k's 1-based position without modifying the queue.
func (q *Queue[K]) Position(k K) (pos int, ok bool) {
	n, ok := q.index[k]
	if !ok {
		return 0, false
	}
	return q.rankOf(n), true
}

// PushFront inserts a key not currently in the queue at position 1.
// It panics if k is already present: the reference encoders guarantee
// each key is inserted exactly once.
func (q *Queue[K]) PushFront(k K) {
	if _, ok := q.index[k]; ok {
		//classpack:vet-allow nopanic encoder-side contract: each key is inserted exactly once; decoders never call PushFront
		panic(fmt.Sprintf("mtf: PushFront of present key %v", k))
	}
	n := &node[K]{key: k}
	if h := q.randLevel(); h <= len(n.inline) {
		n.next = n.inline[:h]
	} else {
		n.next = make([]link[K], h)
	}
	q.index[k] = n
	q.insertNodeFront(n)
}

// Encode performs the compressor's one-step coding of k: it returns k's
// 1-based position and moves it to the front if k was seen before, or
// returns 0 and inserts k at the front otherwise.
func (q *Queue[K]) Encode(k K) int {
	if pos, ok := q.Use(k); ok {
		return pos
	}
	q.PushFront(k)
	return 0
}

// Take returns the element at 1-based position pos and moves it to the
// front; it is the decompressor's counterpart to Use. It panics when pos
// is out of range — decoders of untrusted streams must use TryTake,
// which reports the range violation as a value instead.
func (q *Queue[K]) Take(pos int) K {
	k, ok := q.TryTake(pos)
	if !ok {
		//classpack:vet-allow nopanic documented encoder-side API; decoders of untrusted streams use TryTake
		panic(fmt.Sprintf("mtf: Take(%d) with %d elements", pos, q.size))
	}
	return k
}

// TryTake is Take for positions decoded from untrusted data: ok is false
// (and the queue unchanged) when pos is outside [1, Len()], which means
// the reference stream is corrupt.
func (q *Queue[K]) TryTake(pos int) (k K, ok bool) {
	if pos < 1 || pos > q.size {
		return k, false
	}
	n := q.nodeAt(pos)
	if pos > 1 {
		q.removeAt(pos)
		q.insertNodeFront(n)
	}
	return n.key, true
}

// Keys returns the queue contents from front to back; it is O(n) and
// intended for tests.
func (q *Queue[K]) Keys() []K {
	out := make([]K, 0, q.size)
	for n := q.head.next[0].to; n != q.tail; n = n.next[0].to {
		out = append(out, n.key)
	}
	return out
}

// rankOf returns the 1-based position of n by walking forward to the tail
// sentinel along each node's highest link, summing the recorded distances
// (§5 of the paper): position = size + 1 − distance to tail.
func (q *Queue[K]) rankOf(n *node[K]) int {
	dist := 0
	cur := n
	for cur != q.tail {
		l := cur.next[len(cur.next)-1]
		dist += l.span
		cur = l.to
	}
	return q.size + 1 - dist
}

// nodeAt returns the node at 1-based position pos by descending from the
// head, using spans to skip ahead.
func (q *Queue[K]) nodeAt(pos int) *node[K] {
	cur := q.head
	remaining := pos
	for lvl := q.level - 1; lvl >= 0; lvl-- {
		for cur.next[lvl].span <= remaining && cur.next[lvl].to != q.tail {
			remaining -= cur.next[lvl].span
			cur = cur.next[lvl].to
		}
		if remaining == 0 {
			return cur
		}
	}
	return cur
}

// removeAt unlinks the node at 1-based position pos.
func (q *Queue[K]) removeAt(pos int) {
	cur := q.head
	remaining := pos
	var target *node[K]
	for lvl := q.level - 1; lvl >= 0; lvl-- {
		for cur.next[lvl].span < remaining {
			remaining -= cur.next[lvl].span
			cur = cur.next[lvl].to
		}
		// cur.next[lvl] either lands exactly on the target (span ==
		// remaining) or jumps past it.
		if cur.next[lvl].span == remaining {
			target = cur.next[lvl].to
			cur.next[lvl] = link[K]{
				to:   target.next[lvl].to,
				span: remaining + target.next[lvl].span - 1,
			}
			// Continue from cur at the next level down; remaining unchanged.
		} else {
			cur.next[lvl].span--
		}
	}
	if target == nil {
		//classpack:vet-allow nopanic the target rank was validated by TryTake before removal
		panic("mtf: removeAt did not find target")
	}
	// Levels above q.level hold only the head→tail link, whose span still
	// counts every position and must shrink with the list.
	for lvl := q.level; lvl < maxLevel; lvl++ {
		q.head.next[lvl].span--
	}
	q.size--
	q.shrinkLevel()
}

// insertNodeFront links n (with its levels already allocated) at position 1.
func (q *Queue[K]) insertNodeFront(n *node[K]) {
	// Inserting at the front means the predecessor at every level is the
	// head sentinel, so all maxLevel spans can be maintained directly.
	h := len(n.next)
	if h > q.level {
		q.level = h
	}
	for lvl := 0; lvl < maxLevel; lvl++ {
		if lvl < h {
			n.next[lvl] = link[K]{to: q.head.next[lvl].to, span: q.head.next[lvl].span}
			q.head.next[lvl] = link[K]{to: n, span: 1}
		} else {
			q.head.next[lvl].span++
		}
	}
	q.size++
}

func (q *Queue[K]) shrinkLevel() {
	for q.level > 1 && q.head.next[q.level-1].to == q.tail {
		q.level--
	}
}

// randLevel draws a level from the geometric distribution with p = 1/4
// using a splitmix64 step, so queue shape is deterministic for a given
// operation sequence.
func (q *Queue[K]) randLevel() int {
	q.rng += 0x9e3779b97f4a7c15
	z := q.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	lvl := 1
	for lvl < maxLevel && z&(1<<pBits-1) == 0 {
		lvl++
		z >>= pBits
	}
	return lvl
}

// Naive is a reference move-to-front queue backed by a slice. It has the
// same semantics as Queue with O(n) operations; it exists to property-test
// Queue and to quantify the skiplist's benefit in benchmarks.
type Naive[K comparable] struct {
	keys []K
}

// NewNaive returns an empty reference queue.
func NewNaive[K comparable]() *Naive[K] { return &Naive[K]{} }

// Len reports the number of elements in the queue.
func (q *Naive[K]) Len() int { return len(q.keys) }

// Use mirrors Queue.Use.
func (q *Naive[K]) Use(k K) (pos int, ok bool) {
	for i, key := range q.keys {
		if key == k {
			copy(q.keys[1:], q.keys[:i])
			q.keys[0] = k
			return i + 1, true
		}
	}
	return 0, false
}

// PushFront mirrors Queue.PushFront.
func (q *Naive[K]) PushFront(k K) {
	q.keys = append(q.keys, k)
	copy(q.keys[1:], q.keys[:len(q.keys)-1])
	q.keys[0] = k
}

// Encode mirrors Queue.Encode.
func (q *Naive[K]) Encode(k K) int {
	if pos, ok := q.Use(k); ok {
		return pos
	}
	q.PushFront(k)
	return 0
}

// Take mirrors Queue.Take.
func (q *Naive[K]) Take(pos int) K {
	k := q.keys[pos-1]
	copy(q.keys[1:], q.keys[:pos-1])
	q.keys[0] = k
	return k
}

// TryTake mirrors Queue.TryTake.
func (q *Naive[K]) TryTake(pos int) (k K, ok bool) {
	if pos < 1 || pos > len(q.keys) {
		return k, false
	}
	return q.Take(pos), true
}

// Keys returns the queue contents from front to back.
func (q *Naive[K]) Keys() []K {
	out := make([]K, len(q.keys))
	copy(out, q.keys)
	return out
}
