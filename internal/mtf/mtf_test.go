package mtf

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestEncodeBasics(t *testing.T) {
	q := New[string]()
	// First sightings encode as 0.
	for _, k := range []string{"a", "b", "c"} {
		if got := q.Encode(k); got != 0 {
			t.Fatalf("Encode(%q) = %d, want 0", k, got)
		}
	}
	// List is now c, b, a (most recent first).
	if got := q.Encode("a"); got != 3 {
		t.Fatalf("Encode(a) = %d, want 3", got)
	}
	// List is a, c, b.
	if got := q.Encode("a"); got != 1 {
		t.Fatalf("Encode(a again) = %d, want 1", got)
	}
	if got := q.Encode("c"); got != 2 {
		t.Fatalf("Encode(c) = %d, want 2", got)
	}
	if want := []string{"c", "a", "b"}; !reflect.DeepEqual(q.Keys(), want) {
		t.Fatalf("Keys = %v, want %v", q.Keys(), want)
	}
}

func TestTakeMirrorsEncode(t *testing.T) {
	// Decoding the compressor's output must reproduce the key sequence.
	rng := rand.New(rand.NewSource(7))
	enc := New[int]()
	var keys []int
	var codes []int
	for i := 0; i < 5000; i++ {
		k := rng.Intn(300)
		keys = append(keys, k)
		codes = append(codes, enc.Encode(k))
	}
	dec := New[int]()
	for i, c := range codes {
		var got int
		if c == 0 {
			// A new object: the wire carries its value out of band.
			got = keys[i]
			dec.PushFront(got)
		} else {
			got = dec.Take(c)
		}
		if got != keys[i] {
			t.Fatalf("step %d: decoded %d, want %d", i, got, keys[i])
		}
	}
	if !reflect.DeepEqual(enc.Keys(), dec.Keys()) {
		t.Fatal("encoder and decoder queues diverged")
	}
}

func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := New[int]()
	ref := NewNaive[int]()
	for i := 0; i < 20000; i++ {
		switch op := rng.Intn(10); {
		case op < 6: // Encode
			k := rng.Intn(500)
			got, want := q.Encode(k), ref.Encode(k)
			if got != want {
				t.Fatalf("step %d: Encode(%d) = %d, want %d", i, k, got, want)
			}
		case op < 8: // Use (may miss)
			k := rng.Intn(800)
			gp, gok := q.Use(k)
			wp, wok := ref.Use(k)
			if gp != wp || gok != wok {
				t.Fatalf("step %d: Use(%d) = (%d,%v), want (%d,%v)", i, k, gp, gok, wp, wok)
			}
		case op < 9: // Take
			if q.Len() == 0 {
				continue
			}
			pos := 1 + rng.Intn(q.Len())
			got, want := q.Take(pos), ref.Take(pos)
			if got != want {
				t.Fatalf("step %d: Take(%d) = %d, want %d", i, pos, got, want)
			}
		default: // Position
			k := rng.Intn(800)
			gp, gok := q.Position(k)
			wp, wok := func() (int, bool) {
				for j, key := range ref.Keys() {
					if key == k {
						return j + 1, true
					}
				}
				return 0, false
			}()
			if gp != wp || gok != wok {
				t.Fatalf("step %d: Position(%d) = (%d,%v), want (%d,%v)", i, k, gp, gok, wp, wok)
			}
		}
		if q.Len() != ref.Len() {
			t.Fatalf("step %d: Len %d != %d", i, q.Len(), ref.Len())
		}
	}
	if !reflect.DeepEqual(q.Keys(), ref.Keys()) {
		t.Fatal("final queue contents diverged from reference")
	}
}

func TestContains(t *testing.T) {
	q := New[string]()
	if q.Contains("x") {
		t.Fatal("empty queue contains x")
	}
	q.PushFront("x")
	if !q.Contains("x") || q.Contains("y") {
		t.Fatal("Contains wrong after PushFront")
	}
}

func TestPushFrontDuplicatePanics(t *testing.T) {
	q := New[int]()
	q.PushFront(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate PushFront did not panic")
		}
	}()
	q.PushFront(1)
}

func TestTakeOutOfRangePanics(t *testing.T) {
	q := New[int]()
	q.PushFront(1)
	for _, pos := range []int{0, 2, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Take(%d) did not panic", pos)
				}
			}()
			q.Take(pos)
		}()
	}
}

func TestLargeSequentialScan(t *testing.T) {
	// Repeatedly taking the last element exercises deep positions.
	q := New[int]()
	const n = 4000
	for i := 0; i < n; i++ {
		q.PushFront(i)
	}
	// Front is n-1 ... back is 0. Taking position n each time cycles the
	// oldest element to the front.
	for i := 0; i < n; i++ {
		if got := q.Take(n); got != i {
			t.Fatalf("Take(%d) #%d = %d, want %d", n, i, got, i)
		}
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
}

func TestPositionStable(t *testing.T) {
	q := New[int]()
	for i := 0; i < 100; i++ {
		q.PushFront(i)
	}
	// Position must not mutate the queue.
	before := q.Keys()
	for i := 0; i < 100; i++ {
		if pos, ok := q.Position(i); !ok || pos != 100-i {
			t.Fatalf("Position(%d) = %d, want %d", i, pos, 100-i)
		}
	}
	if !reflect.DeepEqual(before, q.Keys()) {
		t.Fatal("Position mutated the queue")
	}
}

func BenchmarkSkiplistEncode(b *testing.B) {
	benchEncode(b, func() interface{ Encode(int) int } { return New[int]() })
}

func BenchmarkNaiveEncode(b *testing.B) {
	benchEncode(b, func() interface{ Encode(int) int } { return NewNaive[int]() })
}

func benchEncode(b *testing.B, mk func() interface{ Encode(int) int }) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int, 1<<16)
	for i := range keys {
		keys[i] = int(rng.ExpFloat64() * 400) // skewed like reference traces
	}
	b.ResetTimer()
	q := mk()
	for i := 0; i < b.N; i++ {
		q.Encode(keys[i&(1<<16-1)])
	}
}

func TestTryTakeOutOfRange(t *testing.T) {
	q := New[int]()
	q.PushFront(7)
	q.PushFront(8)
	for _, pos := range []int{0, -1, 3, 1 << 30} {
		if k, ok := q.TryTake(pos); ok {
			t.Errorf("TryTake(%d) = %v, true; want rejection", pos, k)
		}
		if q.Len() != 2 {
			t.Fatalf("TryTake(%d) mutated the queue: len %d", pos, q.Len())
		}
	}
	// Valid positions still behave like Take: the taken element moves to
	// the front.
	if k, ok := q.TryTake(2); !ok || k != 7 {
		t.Fatalf("TryTake(2) = %v, %v; want 7, true", k, ok)
	}
	if k, ok := q.TryTake(1); !ok || k != 7 {
		t.Fatalf("TryTake(1) after move-to-front = %v, %v; want 7, true", k, ok)
	}

	n := NewNaive[int]()
	n.PushFront(7)
	for _, pos := range []int{0, -1, 2} {
		if k, ok := n.TryTake(pos); ok {
			t.Errorf("Naive.TryTake(%d) = %v, true; want rejection", pos, k)
		}
	}
	if k, ok := n.TryTake(1); !ok || k != 7 {
		t.Fatalf("Naive.TryTake(1) = %v, %v; want 7, true", k, ok)
	}
}
