// Package streams implements the multi-stream container of the wire
// format: dissimilar data (opcodes, registers, references, string
// characters, ...) is separated into named byte streams that are coded
// independently (§4, §7), following the stream separation idea of Ernst
// et al. that the paper builds on.
//
// Each stream picks its own coding, as §14 suggests ("the compression
// stage could try several encoding methods of each kind of data, and
// select the one that happens to work best ... the encoded data would
// include a description of the encoding mechanism"): DEFLATE, an adaptive
// arithmetic coder, or raw storage — whichever is smallest — with a flag
// byte recording the choice.
package streams

import (
	"bytes"
	"fmt"
	"sort"

	"classpack/internal/archive"
	"classpack/internal/encoding/arith"
	"classpack/internal/encoding/varint"
)

// Stream coding identifiers (the per-stream flag byte).
const (
	codingFlate byte = 0
	codingStore byte = 1
	codingArith byte = 2
)

// Writer accumulates named streams and serializes them into a container.
type Writer struct {
	streams map[string]*Stream
	order   []string
}

// NewWriter returns an empty container writer.
func NewWriter() *Writer {
	return &Writer{streams: make(map[string]*Stream)}
}

// Stream returns the named stream, creating it on first use.
func (w *Writer) Stream(name string) *Stream {
	s, ok := w.streams[name]
	if !ok {
		s = &Stream{}
		w.streams[name] = s
		w.order = append(w.order, name)
	}
	return s
}

// arithTrialLimit bounds the streams offered to the arithmetic coder:
// above this size DEFLATE's pattern matching essentially always wins, so
// trying (and decoding) the much slower coder buys nothing.
const arithTrialLimit = 1 << 16

// encodeStream picks the smallest coding for a stream's raw bytes.
func encodeStream(raw []byte, compress bool) (byte, []byte) {
	payload, coding := raw, codingStore
	if !compress || len(raw) == 0 {
		return coding, payload
	}
	if comp, err := archive.Flate(raw); err == nil && len(comp) < len(payload) {
		payload, coding = comp, codingFlate
	}
	if len(raw) <= arithTrialLimit {
		syms := make([]int, len(raw))
		for i, b := range raw {
			syms[i] = int(b)
		}
		if coded, err := arith.EncodeAll(256, syms); err == nil && len(coded) < len(payload) {
			payload, coding = coded, codingArith
		}
	}
	return coding, payload
}

// Finish serializes all streams, choosing each stream's coding per §14.
func (w *Writer) Finish(compress bool) ([]byte, error) {
	names := append([]string(nil), w.order...)
	sort.Strings(names)
	var out []byte
	out = varint.AppendUint(out, uint64(len(names)))
	for _, name := range names {
		raw := w.streams[name].buf.Bytes()
		out = varint.AppendUint(out, uint64(len(name)))
		out = append(out, name...)
		out = varint.AppendUint(out, uint64(len(raw)))
		coding, payload := encodeStream(raw, compress)
		out = append(out, coding)
		out = varint.AppendUint(out, uint64(len(payload)))
		out = append(out, payload...)
	}
	return out, nil
}

// Sizes reports per-stream raw and encoded sizes as they would serialize
// with the given compression setting.
func (w *Writer) Sizes(compress bool) map[string][2]int {
	out := make(map[string][2]int, len(w.streams))
	for name, s := range w.streams {
		raw := s.buf.Len()
		_, payload := encodeStream(s.buf.Bytes(), compress)
		out[name] = [2]int{raw, len(payload)}
	}
	return out
}

// Stream is one named byte stream. It implements varint.ByteWriter.
type Stream struct {
	buf bytes.Buffer
}

// WriteByte appends one byte.
func (s *Stream) WriteByte(b byte) error { return s.buf.WriteByte(b) }

// Write appends raw bytes.
func (s *Stream) Write(p []byte) (int, error) { return s.buf.Write(p) }

// Uint appends an unsigned varint.
func (s *Stream) Uint(v uint64) { _ = varint.WriteUint(s, v) }

// Int appends a zigzag varint.
func (s *Stream) Int(v int64) { _ = varint.WriteInt(s, v) }

// Len reports the stream's raw length.
func (s *Stream) Len() int { return s.buf.Len() }

// Reader reads a container produced by Writer.
type Reader struct {
	streams map[string]*RStream
}

// NewReader parses the container.
func NewReader(data []byte) (*Reader, error) {
	r := &Reader{streams: make(map[string]*RStream)}
	pos := 0
	next := func() (uint64, error) {
		v, n, err := varint.Uint(data[pos:])
		pos += n
		return v, err
	}
	count, err := next()
	if err != nil {
		return nil, fmt.Errorf("streams: header: %w", err)
	}
	for i := uint64(0); i < count; i++ {
		nameLen, err := next()
		if err != nil {
			return nil, fmt.Errorf("streams: name length: %w", err)
		}
		if pos+int(nameLen) > len(data) {
			return nil, fmt.Errorf("streams: truncated name")
		}
		name := string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		rawLen, err := next()
		if err != nil {
			return nil, fmt.Errorf("streams: %s: raw length: %w", name, err)
		}
		if pos >= len(data) {
			return nil, fmt.Errorf("streams: %s: missing flag", name)
		}
		coding := data[pos]
		pos++
		encLen, err := next()
		if err != nil {
			return nil, fmt.Errorf("streams: %s: encoded length: %w", name, err)
		}
		if pos+int(encLen) > len(data) {
			return nil, fmt.Errorf("streams: %s: truncated payload", name)
		}
		payload := data[pos : pos+int(encLen)]
		pos += int(encLen)
		if rawLen > uint64(len(data))*1024+1<<20 {
			return nil, fmt.Errorf("streams: %s: implausible raw length %d", name, rawLen)
		}
		var raw []byte
		switch coding {
		case codingStore:
			raw = payload
		case codingFlate:
			raw, err = archive.Inflate(payload)
			if err != nil {
				return nil, fmt.Errorf("streams: %s: inflate: %w", name, err)
			}
		case codingArith:
			syms, aerr := arith.DecodeAll(256, payload, int(rawLen))
			if aerr != nil {
				return nil, fmt.Errorf("streams: %s: arith: %w", name, aerr)
			}
			raw = make([]byte, len(syms))
			for i, v := range syms {
				raw[i] = byte(v)
			}
		default:
			return nil, fmt.Errorf("streams: %s: unknown coding %d", name, coding)
		}
		if uint64(len(raw)) != rawLen {
			return nil, fmt.Errorf("streams: %s: raw length %d, want %d", name, len(raw), rawLen)
		}
		r.streams[name] = &RStream{buf: raw}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("streams: %d trailing bytes", len(data)-pos)
	}
	return r, nil
}

// Stream returns the named stream; absent names yield an empty stream so
// that decoders reading zero elements do not special-case.
func (r *Reader) Stream(name string) *RStream {
	s, ok := r.streams[name]
	if !ok {
		s = &RStream{}
		r.streams[name] = s
	}
	return s
}

// RStream reads one stream. It implements varint.ByteReader.
type RStream struct {
	buf []byte
	pos int
}

// ReadByte reads one byte.
func (s *RStream) ReadByte() (byte, error) {
	if s.pos >= len(s.buf) {
		return 0, fmt.Errorf("streams: read past end of stream")
	}
	b := s.buf[s.pos]
	s.pos++
	return b, nil
}

// Raw reads n raw bytes.
func (s *RStream) Raw(n int) ([]byte, error) {
	if s.pos+n > len(s.buf) {
		return nil, fmt.Errorf("streams: raw read of %d bytes past end", n)
	}
	b := s.buf[s.pos : s.pos+n]
	s.pos += n
	return b, nil
}

// Uint reads an unsigned varint.
func (s *RStream) Uint() (uint64, error) { return varint.ReadUint(s) }

// Int reads a zigzag varint.
func (s *RStream) Int() (int64, error) { return varint.ReadInt(s) }

// Remaining reports unread bytes.
func (s *RStream) Remaining() int { return len(s.buf) - s.pos }
