// Package streams implements the multi-stream container of the wire
// format: dissimilar data (opcodes, registers, references, string
// characters, ...) is separated into named byte streams that are coded
// independently (§4, §7), following the stream separation idea of Ernst
// et al. that the paper builds on.
//
// Each stream picks its own coding, as §14 suggests ("the compression
// stage could try several encoding methods of each kind of data, and
// select the one that happens to work best ... the encoded data would
// include a description of the encoding mechanism"): DEFLATE, an adaptive
// arithmetic coder, or raw storage — whichever is smallest — with a flag
// byte recording the choice.
//
// The reader side treats the container as hostile input: every declared
// length is validated against the bytes actually present, the total
// decoded size is charged against a caller-supplied budget before any
// allocation, and stream inflation is capped incrementally so a small
// archive claiming a huge payload fails fast instead of exhausting
// memory. Failures are reported as *corrupt.Error values naming the
// stream and offset.
package streams

import (
	"bytes"
	"sort"

	"classpack/internal/archive"
	"classpack/internal/corrupt"
	"classpack/internal/encoding/arith"
	"classpack/internal/encoding/varint"
	"classpack/internal/par"
)

// Stream coding identifiers (the per-stream flag byte).
const (
	codingFlate byte = 0
	codingStore byte = 1
	codingArith byte = 2
)

// DefaultMaxDecodedBytes is the decoded-size budget NewReader and
// NewReaderN enforce when the caller does not choose one: the sum of all
// streams' decoded bytes may not exceed it.
const DefaultMaxDecodedBytes = int64(1) << 30

// Writer accumulates named streams and serializes them into a container.
type Writer struct {
	streams map[string]*Stream
	order   []string
}

// NewWriter returns an empty container writer.
func NewWriter() *Writer {
	return &Writer{streams: make(map[string]*Stream)}
}

// Stream returns the named stream, creating it on first use.
func (w *Writer) Stream(name string) *Stream {
	s, ok := w.streams[name]
	if !ok {
		s = &Stream{}
		w.streams[name] = s
		w.order = append(w.order, name)
	}
	return s
}

// arithTrialLimit bounds the streams offered to the arithmetic coder:
// above this size DEFLATE's pattern matching essentially always wins, so
// trying (and decoding) the much slower coder buys nothing. The decoder
// enforces the same bound, so an archive claiming a huge
// arithmetic-coded stream is rejected outright.
const arithTrialLimit = 1 << 16

// encodeStream picks the smallest coding for a stream's raw bytes.
func encodeStream(raw []byte, compress bool) (byte, []byte) {
	payload, coding := raw, codingStore
	if !compress || len(raw) == 0 {
		return coding, payload
	}
	if comp, err := archive.Flate(raw); err == nil && len(comp) < len(payload) {
		payload, coding = comp, codingFlate
	}
	if len(raw) <= arithTrialLimit {
		syms := make([]int, len(raw))
		for i, b := range raw {
			syms[i] = int(b)
		}
		if coded, err := arith.EncodeAll(256, syms); err == nil && len(coded) < len(payload) {
			payload, coding = coded, codingArith
		}
	}
	return coding, payload
}

// Finish serializes all streams serially, choosing each stream's coding
// per §14. It is FinishN with one worker.
func (w *Writer) Finish(compress bool) ([]byte, error) {
	return w.FinishN(compress, 1)
}

// FinishN serializes all streams, trial-coding the mutually independent
// streams on up to concurrency workers (<= 0 meaning all cores). The
// container is assembled in sorted name order after all codings are
// chosen, so the output is byte-identical for every concurrency value.
func (w *Writer) FinishN(compress bool, concurrency int) ([]byte, error) {
	names := append([]string(nil), w.order...)
	sort.Strings(names)
	type coded struct {
		coding  byte
		payload []byte
	}
	encs := make([]coded, len(names))
	if err := par.Do(concurrency, len(names), func(i int) error {
		coding, payload := encodeStream(w.streams[names[i]].buf.Bytes(), compress)
		encs[i] = coded{coding, payload}
		return nil
	}); err != nil {
		return nil, err
	}
	var out []byte
	out = varint.AppendUint(out, uint64(len(names)))
	for i, name := range names {
		raw := w.streams[name].buf.Bytes()
		out = varint.AppendUint(out, uint64(len(name)))
		out = append(out, name...)
		out = varint.AppendUint(out, uint64(len(raw)))
		out = append(out, encs[i].coding)
		out = varint.AppendUint(out, uint64(len(encs[i].payload)))
		out = append(out, encs[i].payload...)
	}
	return out, nil
}

// Sizes reports per-stream raw and encoded sizes as they would serialize
// with the given compression setting. It is SizesN with one worker.
func (w *Writer) Sizes(compress bool) map[string][2]int {
	return w.SizesN(compress, 1)
}

// SizesN is Sizes with the trial codings run on up to concurrency
// workers (<= 0 meaning all cores).
func (w *Writer) SizesN(compress bool, concurrency int) map[string][2]int {
	names := append([]string(nil), w.order...)
	encoded := make([]int, len(names))
	_ = par.Do(concurrency, len(names), func(i int) error {
		_, payload := encodeStream(w.streams[names[i]].buf.Bytes(), compress)
		encoded[i] = len(payload)
		return nil
	})
	out := make(map[string][2]int, len(names))
	for i, name := range names {
		out[name] = [2]int{w.streams[name].buf.Len(), encoded[i]}
	}
	return out
}

// Stream is one named byte stream. It implements varint.ByteWriter.
type Stream struct {
	buf bytes.Buffer
}

// WriteByte appends one byte.
func (s *Stream) WriteByte(b byte) error { return s.buf.WriteByte(b) }

// Write appends raw bytes.
func (s *Stream) Write(p []byte) (int, error) { return s.buf.Write(p) }

// Uint appends an unsigned varint.
func (s *Stream) Uint(v uint64) { _ = varint.WriteUint(s, v) }

// Int appends a zigzag varint.
func (s *Stream) Int(v int64) { _ = varint.WriteInt(s, v) }

// Len reports the stream's raw length.
func (s *Stream) Len() int { return s.buf.Len() }

// Reader reads a container produced by Writer.
type Reader struct {
	streams map[string]*RStream
}

// NewReader parses the container, decoding stream payloads serially with
// the default decoded-size budget. It is NewReaderN with one worker.
func NewReader(data []byte) (*Reader, error) {
	return NewReaderN(data, 1)
}

// NewReaderN is NewReaderLimit with the default decoded-size budget.
func NewReaderN(data []byte, concurrency int) (*Reader, error) {
	return NewReaderLimit(data, concurrency, DefaultMaxDecodedBytes)
}

// entry is one stream's header fields and undecoded payload.
type entry struct {
	name    string
	rawLen  uint64
	coding  byte
	payload []byte
}

// containerStream names the stream directory itself in corrupt errors.
const containerStream = "container"

// NewReaderLimit parses the container, walking the headers serially and
// then decoding the independent stream payloads on up to concurrency
// workers (<= 0 meaning all cores). The decoded streams are identical
// for every concurrency value.
//
// maxDecoded (<= 0 meaning DefaultMaxDecodedBytes) caps the sum of all
// streams' declared decoded sizes; the budget is charged while walking
// the directory — before any payload is inflated or allocated — and each
// stream's inflation is additionally capped at its declared size, so a
// bomb archive fails in O(header) work.
func NewReaderLimit(data []byte, concurrency int, maxDecoded int64) (*Reader, error) {
	if maxDecoded <= 0 {
		maxDecoded = DefaultMaxDecodedBytes
	}
	pos := 0
	next := func() (uint64, error) {
		v, n, err := varint.Uint(data[pos:])
		pos += n
		return v, err
	}
	count, err := next()
	if err != nil {
		return nil, corrupt.Errorf(containerStream, int64(pos), "stream count: %v", err)
	}
	// Each directory entry needs at least 4 bytes (name length, raw
	// length, flag, encoded length), so a count beyond that is a lie; the
	// bound also keeps the preallocation proportional to real input.
	if count > uint64(len(data))/4+1 {
		return nil, corrupt.Errorf(containerStream, int64(pos),
			"implausible stream count %d for %d bytes", count, len(data))
	}
	entries := make([]entry, 0, count)
	budget := maxDecoded
	for i := uint64(0); i < count; i++ {
		nameLen, err := next()
		if err != nil {
			return nil, corrupt.Errorf(containerStream, int64(pos), "name length: %v", err)
		}
		if nameLen == 0 {
			return nil, corrupt.Errorf(containerStream, int64(pos), "empty stream name")
		}
		if nameLen > uint64(len(data)-pos) {
			return nil, corrupt.Errorf(containerStream, int64(pos), "truncated name")
		}
		name := string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		rawLen, err := next()
		if err != nil {
			return nil, corrupt.Errorf(containerStream, int64(pos), "%s: raw length: %v", name, err)
		}
		if pos >= len(data) {
			return nil, corrupt.Errorf(containerStream, int64(pos), "%s: missing flag", name)
		}
		coding := data[pos]
		pos++
		encLen, err := next()
		if err != nil {
			return nil, corrupt.Errorf(containerStream, int64(pos), "%s: encoded length: %v", name, err)
		}
		if encLen > uint64(len(data)-pos) {
			return nil, corrupt.Errorf(containerStream, int64(pos), "%s: truncated payload", name)
		}
		payload := data[pos : pos+int(encLen)]
		pos += int(encLen)
		if rawLen > uint64(budget) {
			return nil, corrupt.TooLarge(containerStream, int64(pos),
				"%s: declared decoded size %d exceeds remaining budget %d (cap %d)",
				name, rawLen, budget, maxDecoded)
		}
		budget -= int64(rawLen)
		entries = append(entries, entry{name: name, rawLen: rawLen, coding: coding, payload: payload})
	}
	if pos != len(data) {
		return nil, corrupt.Errorf(containerStream, int64(pos), "%d trailing bytes", len(data)-pos)
	}
	raws := make([][]byte, len(entries))
	if err := par.Do(concurrency, len(entries), func(i int) error {
		raw, err := decodeStream(&entries[i])
		raws[i] = raw
		return err
	}); err != nil {
		return nil, err
	}
	r := &Reader{streams: make(map[string]*RStream, len(entries))}
	for i, e := range entries {
		r.streams[e.name] = &RStream{name: e.name, buf: raws[i]}
	}
	return r, nil
}

// decodeStream reverses one stream's coding. The declared raw length was
// budget-checked by the caller; inflation is still capped at that length
// so a payload lying about its size cannot decompress past it.
func decodeStream(e *entry) ([]byte, error) {
	var raw []byte
	switch e.coding {
	case codingStore:
		raw = e.payload
	case codingFlate:
		var err error
		raw, err = archive.InflateLimit(e.payload, int64(e.rawLen))
		if err != nil {
			return nil, corrupt.Errorf(e.name, -1, "inflate: %v", err)
		}
	case codingArith:
		if e.rawLen > arithTrialLimit {
			return nil, corrupt.Errorf(e.name, -1,
				"arith-coded stream claims %d bytes, limit %d", e.rawLen, arithTrialLimit)
		}
		syms, err := arith.DecodeAll(256, e.payload, int(e.rawLen))
		if err != nil {
			return nil, corrupt.Errorf(e.name, -1, "arith: %v", err)
		}
		raw = make([]byte, len(syms))
		for i, v := range syms {
			raw[i] = byte(v)
		}
	default:
		return nil, corrupt.Errorf(e.name, -1, "unknown coding %d", e.coding)
	}
	if uint64(len(raw)) != e.rawLen {
		return nil, corrupt.Errorf(e.name, -1, "raw length %d, want %d", len(raw), e.rawLen)
	}
	return raw, nil
}

// Stream returns the named stream; absent names yield an empty stream so
// that decoders reading zero elements do not special-case.
func (r *Reader) Stream(name string) *RStream {
	s, ok := r.streams[name]
	if !ok {
		s = &RStream{name: name}
		r.streams[name] = s
	}
	return s
}

// RStream reads one stream. It implements varint.ByteReader.
type RStream struct {
	name string
	buf  []byte
	pos  int
}

// Name returns the stream's name in the container ("" for streams
// constructed directly in tests).
func (s *RStream) Name() string { return s.name }

// ReadByte reads one byte.
func (s *RStream) ReadByte() (byte, error) {
	if s.pos >= len(s.buf) {
		return 0, corrupt.Errorf(s.name, int64(s.pos), "read past end of stream")
	}
	b := s.buf[s.pos]
	s.pos++
	return b, nil
}

// Raw reads n raw bytes.
func (s *RStream) Raw(n int) ([]byte, error) {
	if n < 0 {
		return nil, corrupt.Errorf(s.name, int64(s.pos), "negative raw read of %d bytes", n)
	}
	if n > len(s.buf)-s.pos {
		return nil, corrupt.Errorf(s.name, int64(s.pos), "raw read of %d bytes past end", n)
	}
	b := s.buf[s.pos : s.pos+n]
	s.pos += n
	return b, nil
}

// Uint reads an unsigned varint.
func (s *RStream) Uint() (uint64, error) { return varint.ReadUint(s) }

// Int reads a zigzag varint.
func (s *RStream) Int() (int64, error) { return varint.ReadInt(s) }

// Remaining reports unread bytes.
func (s *RStream) Remaining() int { return len(s.buf) - s.pos }
