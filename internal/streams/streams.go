// Package streams implements the multi-stream container of the wire
// format: dissimilar data (opcodes, registers, references, string
// characters, ...) is separated into named byte streams that are coded
// independently (§4, §7), following the stream separation idea of Ernst
// et al. that the paper builds on.
//
// Each stream picks its own coding, as §14 suggests ("the compression
// stage could try several encoding methods of each kind of data, and
// select the one that happens to work best ... the encoded data would
// include a description of the encoding mechanism"): DEFLATE, an adaptive
// arithmetic coder, or raw storage — whichever is smallest — with a flag
// byte recording the choice.
package streams

import (
	"bytes"
	"fmt"
	"sort"

	"classpack/internal/archive"
	"classpack/internal/encoding/arith"
	"classpack/internal/encoding/varint"
	"classpack/internal/par"
)

// Stream coding identifiers (the per-stream flag byte).
const (
	codingFlate byte = 0
	codingStore byte = 1
	codingArith byte = 2
)

// Writer accumulates named streams and serializes them into a container.
type Writer struct {
	streams map[string]*Stream
	order   []string
}

// NewWriter returns an empty container writer.
func NewWriter() *Writer {
	return &Writer{streams: make(map[string]*Stream)}
}

// Stream returns the named stream, creating it on first use.
func (w *Writer) Stream(name string) *Stream {
	s, ok := w.streams[name]
	if !ok {
		s = &Stream{}
		w.streams[name] = s
		w.order = append(w.order, name)
	}
	return s
}

// arithTrialLimit bounds the streams offered to the arithmetic coder:
// above this size DEFLATE's pattern matching essentially always wins, so
// trying (and decoding) the much slower coder buys nothing.
const arithTrialLimit = 1 << 16

// encodeStream picks the smallest coding for a stream's raw bytes.
func encodeStream(raw []byte, compress bool) (byte, []byte) {
	payload, coding := raw, codingStore
	if !compress || len(raw) == 0 {
		return coding, payload
	}
	if comp, err := archive.Flate(raw); err == nil && len(comp) < len(payload) {
		payload, coding = comp, codingFlate
	}
	if len(raw) <= arithTrialLimit {
		syms := make([]int, len(raw))
		for i, b := range raw {
			syms[i] = int(b)
		}
		if coded, err := arith.EncodeAll(256, syms); err == nil && len(coded) < len(payload) {
			payload, coding = coded, codingArith
		}
	}
	return coding, payload
}

// Finish serializes all streams serially, choosing each stream's coding
// per §14. It is FinishN with one worker.
func (w *Writer) Finish(compress bool) ([]byte, error) {
	return w.FinishN(compress, 1)
}

// FinishN serializes all streams, trial-coding the mutually independent
// streams on up to concurrency workers (<= 0 meaning all cores). The
// container is assembled in sorted name order after all codings are
// chosen, so the output is byte-identical for every concurrency value.
func (w *Writer) FinishN(compress bool, concurrency int) ([]byte, error) {
	names := append([]string(nil), w.order...)
	sort.Strings(names)
	type coded struct {
		coding  byte
		payload []byte
	}
	encs := make([]coded, len(names))
	if err := par.Do(concurrency, len(names), func(i int) error {
		coding, payload := encodeStream(w.streams[names[i]].buf.Bytes(), compress)
		encs[i] = coded{coding, payload}
		return nil
	}); err != nil {
		return nil, err
	}
	var out []byte
	out = varint.AppendUint(out, uint64(len(names)))
	for i, name := range names {
		raw := w.streams[name].buf.Bytes()
		out = varint.AppendUint(out, uint64(len(name)))
		out = append(out, name...)
		out = varint.AppendUint(out, uint64(len(raw)))
		out = append(out, encs[i].coding)
		out = varint.AppendUint(out, uint64(len(encs[i].payload)))
		out = append(out, encs[i].payload...)
	}
	return out, nil
}

// Sizes reports per-stream raw and encoded sizes as they would serialize
// with the given compression setting. It is SizesN with one worker.
func (w *Writer) Sizes(compress bool) map[string][2]int {
	return w.SizesN(compress, 1)
}

// SizesN is Sizes with the trial codings run on up to concurrency
// workers (<= 0 meaning all cores).
func (w *Writer) SizesN(compress bool, concurrency int) map[string][2]int {
	names := append([]string(nil), w.order...)
	encoded := make([]int, len(names))
	_ = par.Do(concurrency, len(names), func(i int) error {
		_, payload := encodeStream(w.streams[names[i]].buf.Bytes(), compress)
		encoded[i] = len(payload)
		return nil
	})
	out := make(map[string][2]int, len(names))
	for i, name := range names {
		out[name] = [2]int{w.streams[name].buf.Len(), encoded[i]}
	}
	return out
}

// Stream is one named byte stream. It implements varint.ByteWriter.
type Stream struct {
	buf bytes.Buffer
}

// WriteByte appends one byte.
func (s *Stream) WriteByte(b byte) error { return s.buf.WriteByte(b) }

// Write appends raw bytes.
func (s *Stream) Write(p []byte) (int, error) { return s.buf.Write(p) }

// Uint appends an unsigned varint.
func (s *Stream) Uint(v uint64) { _ = varint.WriteUint(s, v) }

// Int appends a zigzag varint.
func (s *Stream) Int(v int64) { _ = varint.WriteInt(s, v) }

// Len reports the stream's raw length.
func (s *Stream) Len() int { return s.buf.Len() }

// Reader reads a container produced by Writer.
type Reader struct {
	streams map[string]*RStream
}

// NewReader parses the container, decoding stream payloads serially. It
// is NewReaderN with one worker.
func NewReader(data []byte) (*Reader, error) {
	return NewReaderN(data, 1)
}

// entry is one stream's header fields and undecoded payload.
type entry struct {
	name    string
	rawLen  uint64
	coding  byte
	payload []byte
}

// NewReaderN parses the container, walking the headers serially and then
// decoding the independent stream payloads on up to concurrency workers
// (<= 0 meaning all cores). The decoded streams are identical for every
// concurrency value.
func NewReaderN(data []byte, concurrency int) (*Reader, error) {
	pos := 0
	next := func() (uint64, error) {
		v, n, err := varint.Uint(data[pos:])
		pos += n
		return v, err
	}
	count, err := next()
	if err != nil {
		return nil, fmt.Errorf("streams: header: %w", err)
	}
	entries := make([]entry, 0, count)
	for i := uint64(0); i < count; i++ {
		nameLen, err := next()
		if err != nil {
			return nil, fmt.Errorf("streams: name length: %w", err)
		}
		if pos+int(nameLen) > len(data) {
			return nil, fmt.Errorf("streams: truncated name")
		}
		name := string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		rawLen, err := next()
		if err != nil {
			return nil, fmt.Errorf("streams: %s: raw length: %w", name, err)
		}
		if pos >= len(data) {
			return nil, fmt.Errorf("streams: %s: missing flag", name)
		}
		coding := data[pos]
		pos++
		encLen, err := next()
		if err != nil {
			return nil, fmt.Errorf("streams: %s: encoded length: %w", name, err)
		}
		if pos+int(encLen) > len(data) {
			return nil, fmt.Errorf("streams: %s: truncated payload", name)
		}
		payload := data[pos : pos+int(encLen)]
		pos += int(encLen)
		if rawLen > uint64(len(data))*1024+1<<20 {
			return nil, fmt.Errorf("streams: %s: implausible raw length %d", name, rawLen)
		}
		entries = append(entries, entry{name: name, rawLen: rawLen, coding: coding, payload: payload})
	}
	if pos != len(data) {
		return nil, fmt.Errorf("streams: %d trailing bytes", len(data)-pos)
	}
	raws := make([][]byte, len(entries))
	if err := par.Do(concurrency, len(entries), func(i int) error {
		raw, err := decodeStream(&entries[i])
		raws[i] = raw
		return err
	}); err != nil {
		return nil, err
	}
	r := &Reader{streams: make(map[string]*RStream, len(entries))}
	for i, e := range entries {
		r.streams[e.name] = &RStream{buf: raws[i]}
	}
	return r, nil
}

// decodeStream reverses one stream's coding.
func decodeStream(e *entry) ([]byte, error) {
	var raw []byte
	switch e.coding {
	case codingStore:
		raw = e.payload
	case codingFlate:
		var err error
		raw, err = archive.Inflate(e.payload)
		if err != nil {
			return nil, fmt.Errorf("streams: %s: inflate: %w", e.name, err)
		}
	case codingArith:
		syms, err := arith.DecodeAll(256, e.payload, int(e.rawLen))
		if err != nil {
			return nil, fmt.Errorf("streams: %s: arith: %w", e.name, err)
		}
		raw = make([]byte, len(syms))
		for i, v := range syms {
			raw[i] = byte(v)
		}
	default:
		return nil, fmt.Errorf("streams: %s: unknown coding %d", e.name, e.coding)
	}
	if uint64(len(raw)) != e.rawLen {
		return nil, fmt.Errorf("streams: %s: raw length %d, want %d", e.name, len(raw), e.rawLen)
	}
	return raw, nil
}

// Stream returns the named stream; absent names yield an empty stream so
// that decoders reading zero elements do not special-case.
func (r *Reader) Stream(name string) *RStream {
	s, ok := r.streams[name]
	if !ok {
		s = &RStream{}
		r.streams[name] = s
	}
	return s
}

// RStream reads one stream. It implements varint.ByteReader.
type RStream struct {
	buf []byte
	pos int
}

// ReadByte reads one byte.
func (s *RStream) ReadByte() (byte, error) {
	if s.pos >= len(s.buf) {
		return 0, fmt.Errorf("streams: read past end of stream")
	}
	b := s.buf[s.pos]
	s.pos++
	return b, nil
}

// Raw reads n raw bytes.
func (s *RStream) Raw(n int) ([]byte, error) {
	if s.pos+n > len(s.buf) {
		return nil, fmt.Errorf("streams: raw read of %d bytes past end", n)
	}
	b := s.buf[s.pos : s.pos+n]
	s.pos += n
	return b, nil
}

// Uint reads an unsigned varint.
func (s *RStream) Uint() (uint64, error) { return varint.ReadUint(s) }

// Int reads a zigzag varint.
func (s *RStream) Int() (int64, error) { return varint.ReadInt(s) }

// Remaining reports unread bytes.
func (s *RStream) Remaining() int { return len(s.buf) - s.pos }
