// Package streams implements the multi-stream container of the wire
// format: dissimilar data (opcodes, registers, references, string
// characters, ...) is separated into named byte streams that are coded
// independently (§4, §7), following the stream separation idea of Ernst
// et al. that the paper builds on.
//
// Each stream picks its own coding, as §14 suggests ("the compression
// stage could try several encoding methods of each kind of data, and
// select the one that happens to work best ... the encoded data would
// include a description of the encoding mechanism"): DEFLATE, an adaptive
// arithmetic coder, or raw storage — whichever is smallest — with a flag
// byte recording the choice.
//
// The reader side treats the container as hostile input: every declared
// length is validated against the bytes actually present, the total
// decoded size is charged against a caller-supplied budget before any
// allocation, and stream inflation is capped incrementally so a small
// archive claiming a huge payload fails fast instead of exhausting
// memory. Failures are reported as *corrupt.Error values naming the
// stream and offset.
//
// Two container layouts exist. The original ("plain") layout carries no
// integrity data. The checked layout — produced by FinishChecked and read
// by NewCheckedReaderLimit — follows every stream's encoded payload with
// a CRC32C (Castagnoli) of those payload bytes and ends the container
// with a trailer CRC32C over everything that precedes it, so corruption
// is detected before decoding and localized to one stream. The salvage
// reader (NewSalvageReader) uses that localization to quarantine damaged
// streams instead of failing the whole container.
package streams

import (
	"bytes"
	"hash/crc32"
	"sort"

	"classpack/internal/archive"
	"classpack/internal/corrupt"
	"classpack/internal/encoding/arith"
	"classpack/internal/encoding/varint"
	"classpack/internal/par"
)

// castagnoli is the CRC32C table shared by writer and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcSize is the width of each checksum in the checked layout.
const crcSize = 4

// appendCRC appends a big-endian CRC32C.
func appendCRC(out []byte, c uint32) []byte {
	return append(out, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
}

// readCRC decodes a big-endian CRC32C.
func readCRC(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Stream coding identifiers (the per-stream flag byte).
const (
	codingFlate byte = 0
	codingStore byte = 1
	codingArith byte = 2
)

// DefaultMaxDecodedBytes is the decoded-size budget NewReader and
// NewReaderN enforce when the caller does not choose one: the sum of all
// streams' decoded bytes may not exceed it.
const DefaultMaxDecodedBytes = int64(1) << 30

// Writer accumulates named streams and serializes them into a container.
type Writer struct {
	streams map[string]*Stream
	order   []string
}

// NewWriter returns an empty container writer.
func NewWriter() *Writer {
	return &Writer{streams: make(map[string]*Stream)}
}

// Stream returns the named stream, creating it on first use.
func (w *Writer) Stream(name string) *Stream {
	s, ok := w.streams[name]
	if !ok {
		s = &Stream{}
		w.streams[name] = s
		w.order = append(w.order, name)
	}
	return s
}

// arithTrialLimit bounds the streams offered to the arithmetic coder:
// above this size DEFLATE's pattern matching essentially always wins, so
// trying (and decoding) the much slower coder buys nothing. The decoder
// enforces the same bound, so an archive claiming a huge
// arithmetic-coded stream is rejected outright.
const arithTrialLimit = 1 << 16

// encodeStream picks the smallest coding for a stream's raw bytes.
func encodeStream(raw []byte, compress bool) (byte, []byte) {
	payload, coding := raw, codingStore
	if !compress || len(raw) == 0 {
		return coding, payload
	}
	if comp, err := archive.Flate(raw); err == nil && len(comp) < len(payload) {
		payload, coding = comp, codingFlate
	}
	if len(raw) <= arithTrialLimit {
		syms := make([]int, len(raw))
		for i, b := range raw {
			syms[i] = int(b)
		}
		if coded, err := arith.EncodeAll(256, syms); err == nil && len(coded) < len(payload) {
			payload, coding = coded, codingArith
		}
	}
	return coding, payload
}

// Finish serializes all streams serially, choosing each stream's coding
// per §14. It is FinishN with one worker.
func (w *Writer) Finish(compress bool) ([]byte, error) {
	return w.FinishN(compress, 1)
}

// FinishN serializes all streams in the plain (unchecked) layout,
// trial-coding the mutually independent streams on up to concurrency
// workers (<= 0 meaning all cores). The container is assembled in sorted
// name order after all codings are chosen, so the output is
// byte-identical for every concurrency value.
func (w *Writer) FinishN(compress bool, concurrency int) ([]byte, error) {
	return w.finish(compress, concurrency, false)
}

// FinishChecked serializes all streams in the checked layout: each
// stream's directory entry is followed by a CRC32C of its encoded
// payload, and the container ends with a trailer CRC32C over every byte
// that precedes it. Like FinishN, the output is byte-identical for every
// concurrency value.
func (w *Writer) FinishChecked(compress bool, concurrency int) ([]byte, error) {
	return w.finish(compress, concurrency, true)
}

func (w *Writer) finish(compress bool, concurrency int, checked bool) ([]byte, error) {
	names := append([]string(nil), w.order...)
	sort.Strings(names)
	type coded struct {
		coding  byte
		payload []byte
	}
	encs := make([]coded, len(names))
	if err := par.Do(concurrency, len(names), func(i int) error {
		coding, payload := encodeStream(w.streams[names[i]].buf.Bytes(), compress)
		encs[i] = coded{coding, payload}
		return nil
	}); err != nil {
		return nil, err
	}
	var out []byte
	out = varint.AppendUint(out, uint64(len(names)))
	for i, name := range names {
		raw := w.streams[name].buf.Bytes()
		out = varint.AppendUint(out, uint64(len(name)))
		out = append(out, name...)
		out = varint.AppendUint(out, uint64(len(raw)))
		out = append(out, encs[i].coding)
		out = varint.AppendUint(out, uint64(len(encs[i].payload)))
		out = append(out, encs[i].payload...)
		if checked {
			out = appendCRC(out, crc32.Checksum(encs[i].payload, castagnoli))
		}
	}
	if checked {
		out = appendCRC(out, crc32.Checksum(out, castagnoli))
	}
	return out, nil
}

// Sizes reports per-stream raw and encoded sizes as they would serialize
// with the given compression setting. It is SizesN with one worker.
func (w *Writer) Sizes(compress bool) map[string][2]int {
	return w.SizesN(compress, 1)
}

// SizesN is Sizes with the trial codings run on up to concurrency
// workers (<= 0 meaning all cores).
func (w *Writer) SizesN(compress bool, concurrency int) map[string][2]int {
	names := append([]string(nil), w.order...)
	encoded := make([]int, len(names))
	_ = par.Do(concurrency, len(names), func(i int) error {
		_, payload := encodeStream(w.streams[names[i]].buf.Bytes(), compress)
		encoded[i] = len(payload)
		return nil
	})
	out := make(map[string][2]int, len(names))
	for i, name := range names {
		out[name] = [2]int{w.streams[name].buf.Len(), encoded[i]}
	}
	return out
}

// Stream is one named byte stream. It implements varint.ByteWriter.
type Stream struct {
	buf bytes.Buffer
}

// WriteByte appends one byte.
func (s *Stream) WriteByte(b byte) error { return s.buf.WriteByte(b) }

// Write appends raw bytes.
func (s *Stream) Write(p []byte) (int, error) { return s.buf.Write(p) }

// WriteString appends a string without an intermediate []byte copy.
func (s *Stream) WriteString(str string) (int, error) { return s.buf.WriteString(str) }

// Uint appends an unsigned varint.
func (s *Stream) Uint(v uint64) { _ = varint.WriteUint(s, v) }

// Int appends a zigzag varint.
func (s *Stream) Int(v int64) { _ = varint.WriteInt(s, v) }

// Len reports the stream's raw length.
func (s *Stream) Len() int { return s.buf.Len() }

// Reader reads a container produced by Writer.
type Reader struct {
	streams map[string]*RStream
	decoded int64
}

// DecodedBytes is the total decoded size of all streams the container
// materialized — what MaxDecodedBytes budgets. Callers decoding several
// containers against one shared budget (the version-3 chunk layout)
// subtract it after each container.
func (r *Reader) DecodedBytes() int64 { return r.decoded }

// NewReader parses the container, decoding stream payloads serially with
// the default decoded-size budget. It is NewReaderN with one worker.
func NewReader(data []byte) (*Reader, error) {
	return NewReaderN(data, 1)
}

// NewReaderN is NewReaderLimit with the default decoded-size budget.
func NewReaderN(data []byte, concurrency int) (*Reader, error) {
	return NewReaderLimit(data, concurrency, DefaultMaxDecodedBytes)
}

// entry is one stream's header fields and undecoded payload. payloadOff
// is the payload's byte offset within the container; quarantine is the
// damage that poisoned the stream in salvage mode (nil when intact).
type entry struct {
	name       string
	rawLen     uint64
	coding     byte
	payload    []byte
	payloadOff int64
	quarantine *corrupt.Error
}

// Names of container sections (as opposed to wire streams) in corrupt
// errors: the stream directory itself and the trailer checksum.
const (
	containerStream = "container"
	trailerStream   = "trailer"
)

// NewReaderLimit parses a plain (unchecked) container, walking the
// headers serially and then decoding the independent stream payloads on
// up to concurrency workers (<= 0 meaning all cores). The decoded
// streams are identical for every concurrency value.
//
// maxDecoded (<= 0 meaning DefaultMaxDecodedBytes) caps the sum of all
// streams' declared decoded sizes; the budget is charged while walking
// the directory — before any payload is inflated or allocated — and each
// stream's inflation is additionally capped at its declared size, so a
// bomb archive fails in O(header) work.
func NewReaderLimit(data []byte, concurrency int, maxDecoded int64) (*Reader, error) {
	return newReader(data, concurrency, maxDecoded, false)
}

// NewCheckedReaderLimit is NewReaderLimit for the checked layout: the
// container trailer CRC32C is verified first, then each stream's payload
// CRC32C while walking the directory. Any mismatch fails with a
// *corrupt.Error naming the damaged stream (or "trailer").
func NewCheckedReaderLimit(data []byte, concurrency int, maxDecoded int64) (*Reader, error) {
	return newReader(data, concurrency, maxDecoded, true)
}

func newReader(data []byte, concurrency int, maxDecoded int64, checked bool) (*Reader, error) {
	body := data
	if checked {
		var err error
		if body, err = checkTrailer(data); err != nil {
			return nil, err
		}
	}
	entries, err := walkEntries(body, maxDecoded, checked, nil)
	if err != nil {
		return nil, err
	}
	raws := make([][]byte, len(entries))
	if err := par.Do(concurrency, len(entries), func(i int) error {
		raw, err := decodeStream(&entries[i])
		raws[i] = raw
		return err
	}); err != nil {
		return nil, err
	}
	r := &Reader{streams: make(map[string]*RStream, len(entries))}
	for i, e := range entries {
		r.streams[e.name] = &RStream{name: e.name, buf: raws[i]}
		r.decoded += int64(len(raws[i]))
	}
	return r, nil
}

// checkTrailer verifies the whole-container trailer CRC32C and returns
// the container body with the trailer stripped.
func checkTrailer(data []byte) ([]byte, error) {
	if len(data) < crcSize {
		return nil, corrupt.Errorf(trailerStream, int64(len(data)),
			"container too short for trailer checksum")
	}
	body := data[:len(data)-crcSize]
	got := crc32.Checksum(body, castagnoli)
	if want := readCRC(data[len(body):]); got != want {
		return nil, corrupt.Errorf(trailerStream, int64(len(body)),
			"container checksum %08x, want %08x", got, want)
	}
	return body, nil
}

// walkEntries parses the stream directory of body (the trailer, if any,
// already stripped). In strict mode (damage == nil) the first failure
// aborts with an error. In salvage mode (damage != nil) directory-level
// failures are recorded and stop the walk — entries parsed so far are
// still returned — while per-stream checksum mismatches only quarantine
// the one stream and the walk continues.
func walkEntries(body []byte, maxDecoded int64, checked bool, damage *[]*corrupt.Error) ([]entry, error) {
	if maxDecoded <= 0 {
		maxDecoded = DefaultMaxDecodedBytes
	}
	salvage := damage != nil
	fail := func(e *corrupt.Error) *corrupt.Error {
		if salvage {
			*damage = append(*damage, e)
			return nil
		}
		return e
	}
	pos := 0
	next := func() (uint64, error) {
		v, n, err := varint.Uint(body[pos:])
		pos += n
		return v, err
	}
	count, err := next()
	if err != nil {
		return nil, fail(corrupt.Errorf(containerStream, int64(pos), "stream count: %v", err))
	}
	// Each directory entry needs at least 4 bytes (name length, raw
	// length, flag, encoded length), so a count beyond that is a lie; the
	// bound also keeps the preallocation proportional to real input.
	if count > uint64(len(body))/4+1 {
		return nil, fail(corrupt.Errorf(containerStream, int64(pos),
			"implausible stream count %d for %d bytes", count, len(body)))
	}
	entries := make([]entry, 0, count)
	budget := maxDecoded
	for i := uint64(0); i < count; i++ {
		nameLen, err := next()
		if err != nil {
			return entries, fail(corrupt.Errorf(containerStream, int64(pos), "name length: %v", err))
		}
		if nameLen == 0 {
			return entries, fail(corrupt.Errorf(containerStream, int64(pos), "empty stream name"))
		}
		if nameLen > uint64(len(body)-pos) {
			return entries, fail(corrupt.Errorf(containerStream, int64(pos), "truncated name"))
		}
		name := string(body[pos : pos+int(nameLen)])
		pos += int(nameLen)
		rawLen, err := next()
		if err != nil {
			return entries, fail(corrupt.Errorf(containerStream, int64(pos), "%s: raw length: %v", name, err))
		}
		if pos >= len(body) {
			return entries, fail(corrupt.Errorf(containerStream, int64(pos), "%s: missing flag", name))
		}
		coding := body[pos]
		pos++
		encLen, err := next()
		if err != nil {
			return entries, fail(corrupt.Errorf(containerStream, int64(pos), "%s: encoded length: %v", name, err))
		}
		if encLen > uint64(len(body)-pos) {
			return entries, fail(corrupt.Errorf(containerStream, int64(pos), "%s: truncated payload", name))
		}
		payloadOff := int64(pos)
		payload := body[pos : pos+int(encLen)]
		pos += int(encLen)
		e := entry{name: name, rawLen: rawLen, coding: coding, payload: payload, payloadOff: payloadOff}
		if checked {
			if len(body)-pos < crcSize {
				return entries, fail(corrupt.Errorf(containerStream, int64(pos), "%s: missing payload checksum", name))
			}
			want := readCRC(body[pos:])
			pos += crcSize
			if got := crc32.Checksum(payload, castagnoli); got != want {
				ce := corrupt.Errorf(name, payloadOff, "payload checksum %08x, want %08x", got, want)
				if !salvage {
					return entries, ce
				}
				// The stream is damaged but its framing is intact, so the
				// walk continues; the stream itself is quarantined.
				*damage = append(*damage, ce)
				e.quarantine = ce
			}
		}
		if e.quarantine == nil {
			if rawLen > uint64(budget) {
				ce := corrupt.TooLarge(containerStream, int64(pos),
					"%s: declared decoded size %d exceeds remaining budget %d (cap %d)",
					name, rawLen, budget, maxDecoded)
				return entries, fail(ce)
			}
			budget -= int64(rawLen)
		}
		entries = append(entries, e)
	}
	if pos != len(body) {
		return entries, fail(corrupt.Errorf(containerStream, int64(pos), "%d trailing bytes", len(body)-pos))
	}
	return entries, nil
}

// NewSalvageReader parses as much of a container as it can instead of
// failing on the first error. Damaged parts are quarantined: a stream
// whose checksum mismatches (checked layout) or whose payload fails to
// decode is still present in the Reader, but every read from it fails
// with the quarantining *corrupt.Error, so consumers discover the damage
// exactly where the stream is first needed. The returned damage list
// describes everything quarantined, in container order.
//
// checked selects the layout; a trailer mismatch alone (with all
// per-stream checksums intact) is recorded as damage but quarantines
// nothing.
func NewSalvageReader(data []byte, concurrency int, maxDecoded int64, checked bool) (*Reader, []*corrupt.Error) {
	var damage []*corrupt.Error
	body := data
	if checked {
		if len(data) < crcSize {
			damage = append(damage, corrupt.Errorf(trailerStream, int64(len(data)),
				"container too short for trailer checksum"))
		} else {
			body = data[:len(data)-crcSize]
			got := crc32.Checksum(body, castagnoli)
			if want := readCRC(data[len(body):]); got != want {
				damage = append(damage, corrupt.Errorf(trailerStream, int64(len(body)),
					"container checksum %08x, want %08x", got, want))
			}
		}
	}
	entries, _ := walkEntries(body, maxDecoded, checked, &damage)
	raws := make([][]byte, len(entries))
	quarantines := make([]*corrupt.Error, len(entries))
	_ = par.Do(concurrency, len(entries), func(i int) error {
		if entries[i].quarantine != nil {
			quarantines[i] = entries[i].quarantine
			return nil
		}
		raw, err := decodeStream(&entries[i])
		if err != nil {
			ce, ok := corrupt.As(err)
			if !ok {
				ce = corrupt.New(entries[i].name, entries[i].payloadOff, err)
			}
			quarantines[i] = ce
			return nil
		}
		raws[i] = raw
		return nil
	})
	r := &Reader{streams: make(map[string]*RStream, len(entries))}
	for i, e := range entries {
		if quarantines[i] != nil {
			if e.quarantine == nil {
				damage = append(damage, quarantines[i])
			}
			r.streams[e.name] = &RStream{name: e.name, fail: quarantines[i]}
			continue
		}
		r.streams[e.name] = &RStream{name: e.name, buf: raws[i]}
		r.decoded += int64(len(raws[i]))
	}
	return r, damage
}

// Section describes one stream's encoded payload location within a
// container, for tools that need to target or report physical regions
// (the fault-injection harness, salvage damage reports).
type Section struct {
	Name string
	Off  int64 // payload offset within the container bytes
	Len  int64 // payload length in bytes
}

// Sections lists the payload regions of a container without decoding
// any payloads. checked selects the layout.
func Sections(data []byte, checked bool) ([]Section, error) {
	body := data
	if checked {
		var err error
		if body, err = checkTrailer(data); err != nil {
			return nil, err
		}
	}
	entries, err := walkEntries(body, 1<<62, checked, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Section, len(entries))
	for i, e := range entries {
		out[i] = Section{Name: e.name, Off: e.payloadOff, Len: int64(len(e.payload))}
	}
	return out, nil
}

// decodeStream reverses one stream's coding. The declared raw length was
// budget-checked by the caller; inflation is still capped at that length
// so a payload lying about its size cannot decompress past it.
func decodeStream(e *entry) ([]byte, error) {
	var raw []byte
	switch e.coding {
	case codingStore:
		raw = e.payload
	case codingFlate:
		var err error
		raw, err = archive.InflateLimit(e.payload, int64(e.rawLen))
		if err != nil {
			return nil, corrupt.Errorf(e.name, -1, "inflate: %v", err)
		}
	case codingArith:
		if e.rawLen > arithTrialLimit {
			return nil, corrupt.Errorf(e.name, -1,
				"arith-coded stream claims %d bytes, limit %d", e.rawLen, arithTrialLimit)
		}
		syms, err := arith.DecodeAll(256, e.payload, int(e.rawLen))
		if err != nil {
			return nil, corrupt.Errorf(e.name, -1, "arith: %v", err)
		}
		raw = make([]byte, len(syms))
		for i, v := range syms {
			raw[i] = byte(v)
		}
	default:
		return nil, corrupt.Errorf(e.name, -1, "unknown coding %d", e.coding)
	}
	if uint64(len(raw)) != e.rawLen {
		return nil, corrupt.Errorf(e.name, -1, "raw length %d, want %d", len(raw), e.rawLen)
	}
	return raw, nil
}

// Stream returns the named stream; absent names yield an empty stream so
// that decoders reading zero elements do not special-case.
func (r *Reader) Stream(name string) *RStream {
	s, ok := r.streams[name]
	if !ok {
		s = &RStream{name: name}
		r.streams[name] = s
	}
	return s
}

// RStream reads one stream. It implements varint.ByteReader. A
// quarantined stream (salvage mode) carries a non-nil fail error that
// every read returns, so damage surfaces exactly where the stream is
// first consumed.
type RStream struct {
	name string
	buf  []byte
	pos  int
	fail *corrupt.Error
}

// Name returns the stream's name in the container ("" for streams
// constructed directly in tests).
func (s *RStream) Name() string { return s.name }

// Quarantined reports the damage that poisoned this stream, if any.
func (s *RStream) Quarantined() *corrupt.Error { return s.fail }

// ReadByte reads one byte.
func (s *RStream) ReadByte() (byte, error) {
	if s.fail != nil {
		return 0, s.fail
	}
	if s.pos >= len(s.buf) {
		return 0, corrupt.Errorf(s.name, int64(s.pos), "read past end of stream")
	}
	b := s.buf[s.pos]
	s.pos++
	return b, nil
}

// Raw reads n raw bytes.
func (s *RStream) Raw(n int) ([]byte, error) {
	if s.fail != nil {
		return nil, s.fail
	}
	if n < 0 {
		return nil, corrupt.Errorf(s.name, int64(s.pos), "negative raw read of %d bytes", n)
	}
	if n > len(s.buf)-s.pos {
		return nil, corrupt.Errorf(s.name, int64(s.pos), "raw read of %d bytes past end", n)
	}
	b := s.buf[s.pos : s.pos+n]
	s.pos += n
	return b, nil
}

// Uint reads an unsigned varint.
func (s *RStream) Uint() (uint64, error) { return varint.ReadUint(s) }

// Int reads a zigzag varint.
func (s *RStream) Int() (int64, error) { return varint.ReadInt(s) }

// Remaining reports unread bytes.
func (s *RStream) Remaining() int { return len(s.buf) - s.pos }
