package streams

import (
	"bytes"
	"errors"
	"testing"

	"classpack/internal/corrupt"
)

// checkedWriter builds a three-stream writer with known contents.
func checkedWriter() *Writer {
	w := NewWriter()
	w.Stream("a.ints").Uint(300)
	w.Stream("b.raw").Write(bytes.Repeat([]byte("payload"), 50))
	w.Stream("c.code").Write(bytes.Repeat([]byte{0x2a, 0xb4}, 200))
	return w
}

func TestCheckedRoundTrip(t *testing.T) {
	w := checkedWriter()
	plain, err := w.FinishN(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := w.FinishChecked(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Overhead is exactly one CRC per stream plus the trailer.
	if want := len(plain) + crcSize*(3+1); len(checked) != want {
		t.Fatalf("checked container is %d bytes, want %d", len(checked), want)
	}
	r, err := NewCheckedReaderLimit(checked, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := r.Stream("a.ints").Uint(); err != nil || v != 300 {
		t.Fatalf("a.ints = %d, %v", v, err)
	}
	if r.Stream("b.raw").Remaining() != 350 {
		t.Fatalf("b.raw has %d bytes", r.Stream("b.raw").Remaining())
	}
	// The unchecked reader must not accept the checked layout: the CRC
	// bytes corrupt its framing.
	if _, err := NewReaderLimit(checked, 1, 0); err == nil {
		t.Fatal("unchecked reader parsed a checked container")
	}
}

func TestCheckedDeterministicAcrossWorkers(t *testing.T) {
	w := checkedWriter()
	want, err := w.FinishChecked(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 0} {
		got, err := w.FinishChecked(true, n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("FinishChecked differs at concurrency %d", n)
		}
	}
}

func TestCheckedReaderRejectsAnyFlip(t *testing.T) {
	checked, err := checkedWriter().FinishChecked(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The trailer covers every byte, so any single flip must be caught.
	for off := 0; off < len(checked); off += 37 {
		damaged := append([]byte(nil), checked...)
		damaged[off] ^= 0x40
		_, err := NewCheckedReaderLimit(damaged, 1, 0)
		var ce *corrupt.Error
		if !errors.As(err, &ce) {
			t.Fatalf("flip at %d: err = %v, want *corrupt.Error", off, err)
		}
		if ce.Stream != trailerStream {
			t.Fatalf("flip at %d attributed to %q, want trailer (checked first)", off, ce.Stream)
		}
	}
	// Truncation below the trailer size is also a trailer error.
	if _, err := NewCheckedReaderLimit(checked[:2], 1, 0); err == nil {
		t.Fatal("truncated container accepted")
	}
}

func TestSalvageReaderQuarantinesOnlyDamagedStream(t *testing.T) {
	checked, err := checkedWriter().FinishChecked(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	sections, err := Sections(checked, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) != 3 {
		t.Fatalf("%d sections, want 3", len(sections))
	}
	var target Section
	for _, s := range sections {
		if s.Name == "b.raw" {
			target = s
		}
	}
	if target.Len == 0 {
		t.Fatal("b.raw payload not found or empty")
	}
	damaged := append([]byte(nil), checked...)
	damaged[target.Off+target.Len/2] ^= 1

	r, damage := NewSalvageReader(damaged, 1, 0, true)
	names := map[string]bool{}
	for _, d := range damage {
		names[d.Stream] = true
	}
	// The flip breaks both the covering trailer and b.raw's own CRC.
	if !names[trailerStream] || !names["b.raw"] || len(names) != 2 {
		t.Fatalf("damage report %v, want exactly trailer and b.raw", damage)
	}
	// The damaged stream is quarantined: present, but every read fails
	// with the quarantining error.
	q := r.Stream("b.raw").Quarantined()
	if q == nil || q.Stream != "b.raw" {
		t.Fatalf("b.raw quarantine = %v", q)
	}
	if _, err := r.Stream("b.raw").ReadByte(); !errors.Is(err, q) {
		t.Fatalf("read of quarantined stream: %v, want the quarantine error", err)
	}
	if _, err := r.Stream("b.raw").Raw(1); !errors.Is(err, q) {
		t.Fatalf("Raw of quarantined stream: %v, want the quarantine error", err)
	}
	// Undamaged neighbors decode intact.
	if v, err := r.Stream("a.ints").Uint(); err != nil || v != 300 {
		t.Fatalf("a.ints after salvage = %d, %v", v, err)
	}
	if r.Stream("c.code").Quarantined() != nil {
		t.Fatal("undamaged stream quarantined")
	}
}

func TestSalvageReaderTrailerOnlyDamage(t *testing.T) {
	checked, err := checkedWriter().FinishChecked(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte(nil), checked...)
	damaged[len(damaged)-1] ^= 1 // inside the trailer CRC itself
	r, damage := NewSalvageReader(damaged, 1, 0, true)
	if len(damage) != 1 || damage[0].Stream != trailerStream {
		t.Fatalf("damage = %v, want exactly one trailer region", damage)
	}
	for _, name := range []string{"a.ints", "b.raw", "c.code"} {
		if r.Stream(name).Quarantined() != nil {
			t.Fatalf("stream %s quarantined by trailer-only damage", name)
		}
	}
}

func TestSectionsLayouts(t *testing.T) {
	w := checkedWriter()
	for _, checked := range []bool{true, false} {
		data, err := w.finish(true, 1, checked)
		if err != nil {
			t.Fatal(err)
		}
		sections, err := Sections(data, checked)
		if err != nil {
			t.Fatalf("checked=%v: %v", checked, err)
		}
		if len(sections) != 3 {
			t.Fatalf("checked=%v: %d sections, want 3", checked, len(sections))
		}
		var prevEnd int64
		for _, s := range sections {
			if s.Off < prevEnd || s.Off+s.Len > int64(len(data)) {
				t.Fatalf("checked=%v: section %s [%d,+%d) out of order or bounds",
					checked, s.Name, s.Off, s.Len)
			}
			prevEnd = s.Off + s.Len
		}
	}
	if _, err := Sections([]byte{0xff, 0xff}, false); err == nil {
		t.Fatal("Sections accepted garbage")
	}
}
