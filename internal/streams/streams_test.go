package streams

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Stream("ops.code").Write(bytes.Repeat([]byte{0x2a, 0xb4, 0x60}, 500))
	w.Stream("int.meta").Uint(42)
	w.Stream("int.meta").Int(-7)
	w.Stream("str.pkg.chr").Write([]byte("java/lang"))
	w.Stream("empty") // created but never written

	for _, compress := range []bool{true, false} {
		data, err := w.Finish(compress)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(data)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		ops := r.Stream("ops.code")
		raw, err := ops.Raw(1500)
		if err != nil {
			t.Fatal(err)
		}
		if raw[0] != 0x2a || raw[1499] != 0x60 {
			t.Fatal("ops stream corrupted")
		}
		if ops.Remaining() != 0 {
			t.Fatalf("ops has %d bytes left", ops.Remaining())
		}
		meta := r.Stream("int.meta")
		if v, err := meta.Uint(); err != nil || v != 42 {
			t.Fatalf("Uint = %d, %v", v, err)
		}
		if v, err := meta.Int(); err != nil || v != -7 {
			t.Fatalf("Int = %d, %v", v, err)
		}
		if s := r.Stream("str.pkg.chr"); s.Remaining() != 9 {
			t.Fatalf("pkg stream has %d bytes", s.Remaining())
		}
		if r.Stream("empty").Remaining() != 0 {
			t.Fatal("empty stream not empty")
		}
	}
}

func TestAbsentStreamIsEmpty(t *testing.T) {
	w := NewWriter()
	data, err := w.Finish(true)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stream("never.created")
	if s.Remaining() != 0 {
		t.Fatal("absent stream not empty")
	}
	if _, err := s.ReadByte(); err == nil {
		t.Fatal("read from absent stream succeeded")
	}
	if _, err := s.Uint(); err == nil {
		t.Fatal("Uint from absent stream succeeded")
	}
	if _, err := s.Raw(1); err == nil {
		t.Fatal("Raw from absent stream succeeded")
	}
}

func TestCompressionFallsBackToStore(t *testing.T) {
	// Incompressible data must be stored, never inflated in size by much.
	w := NewWriter()
	rng := rand.New(rand.NewSource(1))
	noise := make([]byte, 4096)
	rng.Read(noise)
	w.Stream("msc.noise").Write(noise)
	data, err := w.Finish(true)
	if err != nil {
		t.Fatal(err)
	}
	overhead := len(data) - len(noise)
	if overhead > 64 {
		t.Fatalf("container overhead %d bytes on incompressible data", overhead)
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := r.Stream("msc.noise").Raw(len(noise))
	if err != nil || !bytes.Equal(back, noise) {
		t.Fatal("noise corrupted")
	}
}

func TestCompressibleStreamShrinks(t *testing.T) {
	w := NewWriter()
	w.Stream("str.x.chr").Write([]byte(strings.Repeat("the same words again ", 400)))
	data, err := w.Finish(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 2000 {
		t.Fatalf("compressed container is %d bytes", len(data))
	}
}

func TestSizes(t *testing.T) {
	w := NewWriter()
	w.Stream("a").Write([]byte(strings.Repeat("x", 1000)))
	w.Stream("b").Write([]byte{1, 2, 3})
	sizes := w.Sizes(true)
	if sizes["a"][0] != 1000 || sizes["a"][1] >= 1000 {
		t.Fatalf("sizes[a] = %v", sizes["a"])
	}
	if sizes["b"][0] != 3 || sizes["b"][1] != 3 {
		t.Fatalf("sizes[b] = %v", sizes["b"])
	}
}

func TestReaderErrors(t *testing.T) {
	w := NewWriter()
	w.Stream("s").Write([]byte("hello world, a stream"))
	data, err := w.Finish(true)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": data[:len(data)/2],
		"trailing":  append(append([]byte{}, data...), 0xff),
	}
	for name, d := range cases {
		if _, err := NewReader(d); err == nil {
			t.Errorf("%s: NewReader succeeded", name)
		}
	}
}

func TestDeterministicOrder(t *testing.T) {
	// Streams serialize in sorted name order regardless of creation order.
	mk := func(order []string) []byte {
		w := NewWriter()
		for _, n := range order {
			w.Stream(n).Write([]byte(n))
		}
		data, err := w.Finish(true)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := mk([]string{"z", "a", "m"})
	b := mk([]string{"m", "z", "a"})
	if !bytes.Equal(a, b) {
		t.Fatal("container depends on stream creation order")
	}
}

func TestFinishNDeterministicAcrossConcurrency(t *testing.T) {
	// A container with many streams of different codings must serialize
	// byte-identically at every worker count, and NewReaderN must decode
	// it identically too.
	build := func() *Writer {
		w := NewWriter()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 40; i++ {
			s := w.Stream(fmt.Sprintf("s.%02d", i))
			switch i % 3 {
			case 0: // compressible
				s.Write([]byte(strings.Repeat("abcabcabd", 200)))
			case 1: // incompressible
				noise := make([]byte, 2048)
				rng.Read(noise)
				s.Write(noise)
			case 2: // short and skewed
				for k := 0; k < 300; k++ {
					s.WriteByte(byte(rng.Intn(3)))
				}
			}
		}
		return w
	}
	var want []byte
	for _, j := range []int{1, 2, 7, 0} {
		data, err := build().FinishN(true, j)
		if err != nil {
			t.Fatalf("FinishN(j=%d): %v", j, err)
		}
		if want == nil {
			want = data
		} else if !bytes.Equal(data, want) {
			t.Fatalf("FinishN(j=%d) differs from serial container", j)
		}
		r, err := NewReaderN(data, j)
		if err != nil {
			t.Fatalf("NewReaderN(j=%d): %v", j, err)
		}
		for i := 0; i < 40; i++ {
			name := fmt.Sprintf("s.%02d", i)
			if r.Stream(name).Remaining() == 0 {
				t.Fatalf("NewReaderN(j=%d): stream %s empty", j, name)
			}
		}
	}
}

func TestSizesNMatchesSerial(t *testing.T) {
	w := NewWriter()
	w.Stream("a").Write([]byte(strings.Repeat("x", 1000)))
	w.Stream("b").Write([]byte{1, 2, 3})
	w.Stream("c").Write(bytes.Repeat([]byte{7, 8}, 900))
	serial := w.Sizes(true)
	for _, j := range []int{2, 0} {
		got := w.SizesN(true, j)
		if len(got) != len(serial) {
			t.Fatalf("SizesN(j=%d) has %d entries, want %d", j, len(got), len(serial))
		}
		for name, v := range serial {
			if got[name] != v {
				t.Fatalf("SizesN(j=%d)[%s] = %v, want %v", j, name, got[name], v)
			}
		}
	}
}

func TestArithCodingSelected(t *testing.T) {
	// A short, heavily skewed stream with no repeating patterns: the
	// adaptive arithmetic coder beats DEFLATE, and the container must
	// pick it and still round-trip.
	rng := rand.New(rand.NewSource(5))
	var raw []byte
	for i := 0; i < 600; i++ {
		v := byte(0)
		if rng.Intn(10) == 0 {
			v = byte(1 + rng.Intn(3))
		}
		raw = append(raw, v)
	}
	w := NewWriter()
	w.Stream("msc.skewed").Write(raw)
	data, err := w.Finish(true)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := r.Stream("msc.skewed").Raw(len(raw))
	if err != nil || !bytes.Equal(back, raw) {
		t.Fatal("skewed stream corrupted")
	}
	// The coding decision itself: at least confirm the container is far
	// smaller than the raw stream (either coder must achieve this).
	if len(data) > len(raw)/2 {
		t.Fatalf("container %d bytes for %d raw", len(data), len(raw))
	}
	coding, payload := encodeStream(raw, true)
	if coding != codingArith {
		t.Logf("coding = %d (flate won on this stream); payload %d", coding, len(payload))
	}
}
