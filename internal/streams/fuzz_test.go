package streams

import (
	"testing"

	"classpack/internal/corrupt"
)

// FuzzStreamsReader throws arbitrary bytes at the container parser and,
// when parsing succeeds, drains every stream through all read paths.
// Nothing may panic, and the decoded-byte budget must hold.
func FuzzStreamsReader(f *testing.F) {
	w := NewWriter()
	w.Stream("a.ints").Uint(300)
	w.Stream("a.ints").Int(-5)
	w.Stream("b.raw").Write([]byte("hello streams container"))
	for i := 0; i < 512; i++ {
		w.Stream("c.zeros").WriteByte(0) // compresses, exercising flate decode
	}
	seed, err := w.Finish(true)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	checked, err := w.FinishChecked(true, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(checked)
	empty, err := NewWriter().Finish(false)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{0})
	f.Add([]byte{})

	const budget = int64(1) << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		// The checked reader and the salvage walkers (both layouts) parse
		// the same bytes first: none may panic, and salvage damage
		// reports must name a stream.
		_, _ = NewCheckedReaderLimit(data, 1, budget)
		for _, isChecked := range []bool{true, false} {
			_, damage := NewSalvageReader(data, 1, budget, isChecked)
			for _, d := range damage {
				if d.Stream == "" {
					t.Fatalf("salvage damage without a stream name: %v", d)
				}
			}
		}
		r, err := NewReaderLimit(data, 1, budget)
		if err != nil {
			if ce, ok := corrupt.As(err); ok && ce.Stream == "" {
				t.Fatalf("corrupt error without a stream name: %v", err)
			}
			return
		}
		total := 0
		for name := range r.streams {
			s := r.Stream(name)
			total += s.Remaining()
			// Drain through every accessor; each consumes at least one
			// byte while bytes remain, so the loop terminates.
			for s.Remaining() > 0 {
				switch s.Remaining() % 4 {
				case 0:
					_, _ = s.Uint()
				case 1:
					_, _ = s.Int()
				case 2:
					_, _ = s.Raw(1)
				default:
					_, _ = s.ReadByte()
				}
			}
			if _, err := s.ReadByte(); err == nil {
				t.Fatalf("stream %s: read past end succeeded", name)
			}
			if _, err := s.Raw(-1); err == nil {
				t.Fatalf("stream %s: negative Raw succeeded", name)
			}
		}
		if int64(total) > budget {
			t.Fatalf("decoded %d bytes past the %d budget", total, budget)
		}
	})
}
