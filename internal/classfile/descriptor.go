package classfile

import (
	"strings"

	"classpack/internal/corrupt"
)

// Type is a parsed field or return type. Primitives are identified by
// their descriptor character; reference types carry the class binary name.
type Type struct {
	Dims int    // array dimensions, 0 for scalars
	Base byte   // 'B','C','D','F','I','J','S','Z','V', or 'L' for references
	Name string // binary class name when Base == 'L'
}

// Void is the void return type.
var Void = Type{Base: 'V'}

// PrimitiveType returns the Type for a primitive descriptor character.
func PrimitiveType(c byte) Type { return Type{Base: c} }

// ObjectType returns the Type for a class binary name.
func ObjectType(name string) Type { return Type{Base: 'L', Name: name} }

// ArrayOf returns t with one more array dimension.
func ArrayOf(t Type) Type { t.Dims++; return t }

// IsRef reports whether the type is a reference (class or array).
func (t Type) IsRef() bool { return t.Dims > 0 || t.Base == 'L' }

// IsWide reports whether the type occupies two local/stack slots.
func (t Type) IsWide() bool { return t.Dims == 0 && (t.Base == 'J' || t.Base == 'D') }

// Slots returns the number of stack/local slots the type occupies
// (0 for void).
func (t Type) Slots() int {
	if t.Base == 'V' && t.Dims == 0 {
		return 0
	}
	if t.IsWide() {
		return 2
	}
	return 1
}

// String returns the JVM descriptor form of the type.
func (t Type) String() string {
	var b strings.Builder
	for i := 0; i < t.Dims; i++ {
		b.WriteByte('[')
	}
	if t.Base == 'L' {
		b.WriteByte('L')
		b.WriteString(t.Name)
		b.WriteByte(';')
	} else {
		b.WriteByte(t.Base)
	}
	return b.String()
}

func parseType(s string, pos int, allowVoid bool) (Type, int, error) {
	var t Type
	for pos < len(s) && s[pos] == '[' {
		t.Dims++
		pos++
	}
	if pos >= len(s) {
		return t, pos, corrupt.Errorf("descriptor", int64(pos), "truncated descriptor %q", s)
	}
	switch c := s[pos]; c {
	case 'B', 'C', 'D', 'F', 'I', 'J', 'S', 'Z':
		t.Base = c
		return t, pos + 1, nil
	case 'V':
		if !allowVoid || t.Dims > 0 {
			return t, pos, corrupt.Errorf("descriptor", int64(pos), "void in invalid position in %q", s)
		}
		t.Base = 'V'
		return t, pos + 1, nil
	case 'L':
		end := strings.IndexByte(s[pos:], ';')
		if end < 0 {
			return t, pos, corrupt.Errorf("descriptor", int64(pos), "unterminated class type in %q", s)
		}
		t.Base = 'L'
		t.Name = s[pos+1 : pos+end]
		if t.Name == "" {
			return t, pos, corrupt.Errorf("descriptor", int64(pos), "empty class name in %q", s)
		}
		return t, pos + end + 1, nil
	default:
		return t, pos, corrupt.Errorf("descriptor", int64(pos), "bad descriptor char %q in %q", c, s)
	}
}

// ParseFieldDescriptor parses a field descriptor such as "[Ljava/lang/String;".
func ParseFieldDescriptor(s string) (Type, error) {
	t, pos, err := parseType(s, 0, false)
	if err != nil {
		return t, err
	}
	if pos != len(s) {
		return t, corrupt.Errorf("descriptor", int64(pos), "trailing characters in field descriptor %q", s)
	}
	return t, nil
}

// ParseMethodDescriptor parses a method descriptor such as
// "(ILjava/lang/String;)V" into parameter types and a return type.
func ParseMethodDescriptor(s string) (params []Type, ret Type, err error) {
	if len(s) == 0 || s[0] != '(' {
		return nil, ret, corrupt.Errorf("descriptor", 0, "method descriptor %q missing '('", s)
	}
	pos := 1
	for pos < len(s) && s[pos] != ')' {
		var t Type
		t, pos, err = parseType(s, pos, false)
		if err != nil {
			return nil, ret, err
		}
		params = append(params, t)
	}
	if pos >= len(s) {
		return nil, ret, corrupt.Errorf("descriptor", int64(pos), "method descriptor %q missing ')'", s)
	}
	pos++ // ')'
	ret, pos, err = parseType(s, pos, true)
	if err != nil {
		return nil, ret, err
	}
	if pos != len(s) {
		return nil, ret, corrupt.Errorf("descriptor", int64(pos), "trailing characters in method descriptor %q", s)
	}
	return params, ret, nil
}

// MethodDescriptor builds a descriptor string from parameter and return
// types.
func MethodDescriptor(params []Type, ret Type) string {
	var b strings.Builder
	b.WriteByte('(')
	for _, p := range params {
		b.WriteString(p.String())
	}
	b.WriteByte(')')
	b.WriteString(ret.String())
	return b.String()
}

// SplitClassName splits a binary name into package ("java/lang", possibly
// empty) and simple name ("String") — the factoring of §4.
func SplitClassName(binary string) (pkg, simple string) {
	if i := strings.LastIndexByte(binary, '/'); i >= 0 {
		return binary[:i], binary[i+1:]
	}
	return "", binary
}

// JoinClassName is the inverse of SplitClassName.
func JoinClassName(pkg, simple string) string {
	if pkg == "" {
		return simple
	}
	return pkg + "/" + simple
}
