package classfile

import "fmt"

// Builder constructs a ClassFile with a deduplicated constant pool. It is
// used by the MiniJava code generator, the corpus synthesizer, and the
// unpacker when rebuilding classfiles.
type Builder struct {
	CF *ClassFile

	utf8    map[string]uint16
	class   map[uint16]uint16 // name utf8 index -> class index
	str     map[uint16]uint16 // utf8 index -> string index
	ints    map[int32]uint16
	floats  map[uint32]uint16
	longs   map[int64]uint16
	doubles map[uint64]uint16
	nats    map[[2]uint16]uint16
	refs    map[[3]uint16]uint16 // kind, class, nat
}

// NewBuilder starts a classfile for the given binary class name, superclass
// (empty for java/lang/Object itself) and access flags, using classfile
// version 45.3 (JDK 1.1/1.2 era, matching the paper).
func NewBuilder(name, super string, accessFlags uint16) *Builder {
	b := NewEmptyBuilder(accessFlags)
	b.SetThisClass(name)
	if super != "" {
		b.SetSuperClass(super)
	}
	return b
}

// NewEmptyBuilder starts a classfile with an empty constant pool and no
// this-class set; callers control interning order and must call
// SetThisClass before Build.
func NewEmptyBuilder(accessFlags uint16) *Builder {
	b := &Builder{
		CF: &ClassFile{
			MinorVersion: 3,
			MajorVersion: 45,
			Pool:         make([]Constant, 1),
			AccessFlags:  accessFlags,
		},
		utf8:    make(map[string]uint16),
		class:   make(map[uint16]uint16),
		str:     make(map[uint16]uint16),
		ints:    make(map[int32]uint16),
		floats:  make(map[uint32]uint16),
		longs:   make(map[int64]uint16),
		doubles: make(map[uint64]uint16),
		nats:    make(map[[2]uint16]uint16),
		refs:    make(map[[3]uint16]uint16),
	}
	return b
}

// SetThisClass interns and records the class's own name.
func (b *Builder) SetThisClass(name string) { b.CF.ThisClass = b.Class(name) }

// SetSuperClass interns and records the superclass name.
func (b *Builder) SetSuperClass(name string) { b.CF.SuperClass = b.Class(name) }

func (b *Builder) add(c Constant) uint16 {
	idx := uint16(len(b.CF.Pool))
	b.CF.Pool = append(b.CF.Pool, c)
	if c.Kind.Wide() {
		b.CF.Pool = append(b.CF.Pool, Constant{})
	}
	return idx
}

// Utf8 interns a Utf8 constant and returns its index.
func (b *Builder) Utf8(s string) uint16 {
	if idx, ok := b.utf8[s]; ok {
		return idx
	}
	idx := b.add(Constant{Kind: KindUtf8, Utf8: s})
	b.utf8[s] = idx
	return idx
}

// Class interns a Class constant for a binary name.
func (b *Builder) Class(name string) uint16 {
	n := b.Utf8(name)
	if idx, ok := b.class[n]; ok {
		return idx
	}
	idx := b.add(Constant{Kind: KindClass, Name: n})
	b.class[n] = idx
	return idx
}

// String interns a String constant.
func (b *Builder) String(s string) uint16 {
	n := b.Utf8(s)
	if idx, ok := b.str[n]; ok {
		return idx
	}
	idx := b.add(Constant{Kind: KindString, Str: n})
	b.str[n] = idx
	return idx
}

// Int interns an Integer constant.
func (b *Builder) Int(v int32) uint16 {
	if idx, ok := b.ints[v]; ok {
		return idx
	}
	idx := b.add(Constant{Kind: KindInteger, Int: v})
	b.ints[v] = idx
	return idx
}

// Float interns a Float constant (keyed by bit pattern so NaNs intern).
func (b *Builder) Float(v float32) uint16 {
	key := float32Bits(v)
	if idx, ok := b.floats[key]; ok {
		return idx
	}
	idx := b.add(Constant{Kind: KindFloat, Float: v})
	b.floats[key] = idx
	return idx
}

// Long interns a Long constant.
func (b *Builder) Long(v int64) uint16 {
	if idx, ok := b.longs[v]; ok {
		return idx
	}
	idx := b.add(Constant{Kind: KindLong, Long: v})
	b.longs[v] = idx
	return idx
}

// Double interns a Double constant (keyed by bit pattern).
func (b *Builder) Double(v float64) uint16 {
	key := float64Bits(v)
	if idx, ok := b.doubles[key]; ok {
		return idx
	}
	idx := b.add(Constant{Kind: KindDouble, Double: v})
	b.doubles[key] = idx
	return idx
}

// NameAndType interns a NameAndType constant.
func (b *Builder) NameAndType(name, desc string) uint16 {
	key := [2]uint16{b.Utf8(name), b.Utf8(desc)}
	if idx, ok := b.nats[key]; ok {
		return idx
	}
	idx := b.add(Constant{Kind: KindNameAndType, Name: key[0], Desc: key[1]})
	b.nats[key] = idx
	return idx
}

func (b *Builder) memberRef(kind ConstKind, class, name, desc string) uint16 {
	key := [3]uint16{uint16(kind), b.Class(class), b.NameAndType(name, desc)}
	if idx, ok := b.refs[key]; ok {
		return idx
	}
	idx := b.add(Constant{Kind: kind, Class: key[1], NameAndType: key[2]})
	b.refs[key] = idx
	return idx
}

// Fieldref interns a Fieldref constant.
func (b *Builder) Fieldref(class, name, desc string) uint16 {
	return b.memberRef(KindFieldref, class, name, desc)
}

// Methodref interns a Methodref constant.
func (b *Builder) Methodref(class, name, desc string) uint16 {
	return b.memberRef(KindMethodref, class, name, desc)
}

// InterfaceMethodref interns an InterfaceMethodref constant.
func (b *Builder) InterfaceMethodref(class, name, desc string) uint16 {
	return b.memberRef(KindInterfaceMethodref, class, name, desc)
}

// AddInterface declares that the class implements the named interface.
func (b *Builder) AddInterface(name string) {
	b.CF.Interfaces = append(b.CF.Interfaces, b.Class(name))
}

// AddField appends a field and returns a pointer to it for attaching
// attributes.
func (b *Builder) AddField(flags uint16, name, desc string) *Member {
	b.CF.Fields = append(b.CF.Fields, Member{
		AccessFlags: flags,
		Name:        b.Utf8(name),
		Desc:        b.Utf8(desc),
	})
	return &b.CF.Fields[len(b.CF.Fields)-1]
}

// AddMethod appends a method and returns a pointer to it for attaching a
// Code attribute.
func (b *Builder) AddMethod(flags uint16, name, desc string) *Member {
	b.CF.Methods = append(b.CF.Methods, Member{
		AccessFlags: flags,
		Name:        b.Utf8(name),
		Desc:        b.Utf8(desc),
	})
	return &b.CF.Methods[len(b.CF.Methods)-1]
}

// AttachCode adds a Code attribute to a method, interning the attribute
// name. The caller fills in the code and limits.
func (b *Builder) AttachCode(m *Member, code *CodeAttr) {
	code.NameIndex = b.Utf8("Code")
	m.Attrs = append(m.Attrs, code)
}

// AttachConstantValue adds a ConstantValue attribute to a field.
func (b *Builder) AttachConstantValue(m *Member, constIndex uint16) {
	m.Attrs = append(m.Attrs, &ConstantValueAttr{
		attrBase: attrBase{NameIndex: b.Utf8("ConstantValue")},
		Index:    constIndex,
	})
}

// AttachExceptions adds an Exceptions attribute to a method.
func (b *Builder) AttachExceptions(m *Member, classes []string) {
	ex := &ExceptionsAttr{attrBase: attrBase{NameIndex: b.Utf8("Exceptions")}}
	for _, c := range classes {
		ex.Classes = append(ex.Classes, b.Class(c))
	}
	m.Attrs = append(m.Attrs, ex)
}

// AttachSourceFile adds a SourceFile attribute to the class.
func (b *Builder) AttachSourceFile(file string) {
	b.CF.Attrs = append(b.CF.Attrs, &SourceFileAttr{
		attrBase: attrBase{NameIndex: b.Utf8("SourceFile")},
		Index:    b.Utf8(file),
	})
}

// Build finalizes and returns the classfile.
func (b *Builder) Build() (*ClassFile, error) {
	if len(b.CF.Pool) > 0xFFFF {
		return nil, fmt.Errorf("classfile: %s: constant pool overflow (%d entries)",
			b.CF.ThisClassName(), len(b.CF.Pool))
	}
	return b.CF, nil
}
