// Package classfile models Java class files of the JDK 1.0–1.2 era — the
// input format of the paper — with a binary reader, a binary writer, and
// helpers for building and verifying files. Parse followed by Write
// reproduces the input byte-for-byte for well-formed files.
package classfile

// Magic is the classfile magic number.
const Magic = 0xCAFEBABE

// ConstKind is a constant-pool tag (JVM spec §4.4).
type ConstKind uint8

// Constant pool tags.
const (
	KindInvalid            ConstKind = 0 // also marks the phantom slot after Long/Double
	KindUtf8               ConstKind = 1
	KindInteger            ConstKind = 3
	KindFloat              ConstKind = 4
	KindLong               ConstKind = 5
	KindDouble             ConstKind = 6
	KindClass              ConstKind = 7
	KindString             ConstKind = 8
	KindFieldref           ConstKind = 9
	KindMethodref          ConstKind = 10
	KindInterfaceMethodref ConstKind = 11
	KindNameAndType        ConstKind = 12
)

// String returns the JVM spec name of the tag.
func (k ConstKind) String() string {
	switch k {
	case KindUtf8:
		return "Utf8"
	case KindInteger:
		return "Integer"
	case KindFloat:
		return "Float"
	case KindLong:
		return "Long"
	case KindDouble:
		return "Double"
	case KindClass:
		return "Class"
	case KindString:
		return "String"
	case KindFieldref:
		return "Fieldref"
	case KindMethodref:
		return "Methodref"
	case KindInterfaceMethodref:
		return "InterfaceMethodref"
	case KindNameAndType:
		return "NameAndType"
	default:
		return "Invalid"
	}
}

// Wide reports whether the tag occupies two constant-pool slots.
func (k ConstKind) Wide() bool { return k == KindLong || k == KindDouble }

// Constant is one constant-pool entry. Only the fields relevant to Kind
// are meaningful.
type Constant struct {
	Kind ConstKind

	Utf8   string  // KindUtf8 (decoded from modified UTF-8)
	Int    int32   // KindInteger
	Float  float32 // KindFloat
	Long   int64   // KindLong
	Double float64 // KindDouble

	// Index fields reference other pool entries.
	Class       uint16 // Fieldref/Methodref/InterfaceMethodref: owner Class
	NameAndType uint16 // Fieldref/Methodref/InterfaceMethodref
	Name        uint16 // Class: binary-name Utf8; NameAndType: name Utf8
	Desc        uint16 // NameAndType: descriptor Utf8
	Str         uint16 // String: Utf8
}

// Access flags (JVM spec tables 4.1, 4.4, 4.5).
const (
	AccPublic       = 0x0001
	AccPrivate      = 0x0002
	AccProtected    = 0x0004
	AccStatic       = 0x0008
	AccFinal        = 0x0010
	AccSuper        = 0x0020 // classes
	AccSynchronized = 0x0020 // methods
	AccVolatile     = 0x0040
	AccTransient    = 0x0080
	AccNative       = 0x0100
	AccInterface    = 0x0200
	AccAbstract     = 0x0400
	AccStrict       = 0x0800
)

// ClassFile is a parsed class file.
type ClassFile struct {
	MinorVersion uint16
	MajorVersion uint16
	// Pool is the constant pool. Pool[0] is unused (KindInvalid); the slot
	// following a Long or Double entry is present and KindInvalid, matching
	// the on-disk numbering.
	Pool        []Constant
	AccessFlags uint16
	ThisClass   uint16 // Class entry
	SuperClass  uint16 // Class entry; 0 for java/lang/Object
	Interfaces  []uint16
	Fields      []Member
	Methods     []Member
	Attrs       []Attribute
}

// Member is a field or method declaration.
type Member struct {
	AccessFlags uint16
	Name        uint16 // Utf8
	Desc        uint16 // Utf8
	Attrs       []Attribute
}

// Attribute is a classfile attribute. NameIndex is the Utf8 entry holding
// the attribute name as it appeared on disk (or 0 for attributes built
// programmatically; the writer then resolves the name by content).
type Attribute interface {
	// AttrName returns the JVM attribute name ("Code", "Exceptions", ...).
	AttrName() string
	nameIndex() uint16
}

type attrBase struct{ NameIndex uint16 }

func (a attrBase) nameIndex() uint16 { return a.NameIndex }

// CodeAttr is the Code attribute of a non-abstract method.
type CodeAttr struct {
	attrBase
	MaxStack  uint16
	MaxLocals uint16
	Code      []byte
	Handlers  []ExceptionHandler
	Attrs     []Attribute
}

// AttrName implements Attribute.
func (*CodeAttr) AttrName() string { return "Code" }

// ExceptionHandler is one entry of a Code attribute's exception table.
type ExceptionHandler struct {
	StartPC, EndPC, HandlerPC uint16
	CatchType                 uint16 // Class entry, or 0 for finally
}

// ConstantValueAttr gives a field its compile-time constant.
type ConstantValueAttr struct {
	attrBase
	Index uint16 // Integer/Float/Long/Double/String entry
}

// AttrName implements Attribute.
func (*ConstantValueAttr) AttrName() string { return "ConstantValue" }

// ExceptionsAttr lists a method's declared checked exceptions.
type ExceptionsAttr struct {
	attrBase
	Classes []uint16 // Class entries
}

// AttrName implements Attribute.
func (*ExceptionsAttr) AttrName() string { return "Exceptions" }

// SourceFileAttr names the compilation unit.
type SourceFileAttr struct {
	attrBase
	Index uint16 // Utf8
}

// AttrName implements Attribute.
func (*SourceFileAttr) AttrName() string { return "SourceFile" }

// LineNumber maps a bytecode offset to a source line.
type LineNumber struct {
	StartPC, Line uint16
}

// LineNumberTableAttr is debugging information inside Code.
type LineNumberTableAttr struct {
	attrBase
	Entries []LineNumber
}

// AttrName implements Attribute.
func (*LineNumberTableAttr) AttrName() string { return "LineNumberTable" }

// LocalVariable describes one debug local-variable range.
type LocalVariable struct {
	StartPC, Length uint16
	Name, Desc      uint16 // Utf8
	Slot            uint16
}

// LocalVariableTableAttr is debugging information inside Code.
type LocalVariableTableAttr struct {
	attrBase
	Entries []LocalVariable
}

// AttrName implements Attribute.
func (*LocalVariableTableAttr) AttrName() string { return "LocalVariableTable" }

// SyntheticAttr marks compiler-generated members.
type SyntheticAttr struct{ attrBase }

// AttrName implements Attribute.
func (*SyntheticAttr) AttrName() string { return "Synthetic" }

// DeprecatedAttr marks deprecated members.
type DeprecatedAttr struct{ attrBase }

// AttrName implements Attribute.
func (*DeprecatedAttr) AttrName() string { return "Deprecated" }

// InnerClass is one InnerClasses table row.
type InnerClass struct {
	Inner, Outer uint16 // Class entries (Outer may be 0)
	InnerName    uint16 // Utf8, or 0 for anonymous
	AccessFlags  uint16
}

// InnerClassesAttr records nested-class relationships.
type InnerClassesAttr struct {
	attrBase
	Entries []InnerClass
}

// AttrName implements Attribute.
func (*InnerClassesAttr) AttrName() string { return "InnerClasses" }

// UnknownAttr preserves attributes this package does not interpret.
type UnknownAttr struct {
	attrBase
	Name string
	Data []byte
}

// AttrName implements Attribute.
func (a *UnknownAttr) AttrName() string { return a.Name }

// Utf8At returns the Utf8 string at pool index i, or "" if i does not name
// a Utf8 entry.
func (cf *ClassFile) Utf8At(i uint16) string {
	if int(i) < len(cf.Pool) && cf.Pool[i].Kind == KindUtf8 {
		return cf.Pool[i].Utf8
	}
	return ""
}

// ClassNameAt returns the binary name ("java/lang/String") of the Class
// entry at pool index i, or "".
func (cf *ClassFile) ClassNameAt(i uint16) string {
	if int(i) < len(cf.Pool) && cf.Pool[i].Kind == KindClass {
		return cf.Utf8At(cf.Pool[i].Name)
	}
	return ""
}

// ThisClassName returns the binary name of the class itself.
func (cf *ClassFile) ThisClassName() string { return cf.ClassNameAt(cf.ThisClass) }

// SuperClassName returns the binary name of the superclass, or "" for
// java/lang/Object.
func (cf *ClassFile) SuperClassName() string { return cf.ClassNameAt(cf.SuperClass) }

// MemberName returns the name string of a field or method.
func (cf *ClassFile) MemberName(m *Member) string { return cf.Utf8At(m.Name) }

// MemberDesc returns the descriptor string of a field or method.
func (cf *ClassFile) MemberDesc(m *Member) string { return cf.Utf8At(m.Desc) }

// CodeOf returns the method's Code attribute, or nil.
func CodeOf(m *Member) *CodeAttr {
	for _, a := range m.Attrs {
		if c, ok := a.(*CodeAttr); ok {
			return c
		}
	}
	return nil
}
