package classfile

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildSample constructs a classfile exercising every constant kind and
// attribute this package models.
func buildSample(t *testing.T) *ClassFile {
	t.Helper()
	b := NewBuilder("com/example/Sample", "java/lang/Object", AccPublic|AccSuper)
	b.AddInterface("java/lang/Runnable")
	b.AttachSourceFile("Sample.java")

	f := b.AddField(AccPrivate|AccStatic|AccFinal, "LIMIT", "I")
	b.AttachConstantValue(f, b.Int(42))
	f2 := b.AddField(AccPrivate, "name", "Ljava/lang/String;")
	f2.Attrs = append(f2.Attrs, &SyntheticAttr{attrBase{b.Utf8("Synthetic")}})
	fd := b.AddField(AccPublic|AccStatic, "RATIO", "D")
	b.AttachConstantValue(fd, b.Double(3.25))
	fl := b.AddField(AccPublic|AccStatic, "BIG", "J")
	b.AttachConstantValue(fl, b.Long(1<<40))
	ff := b.AddField(AccPublic|AccStatic, "EPS", "F")
	b.AttachConstantValue(ff, b.Float(0.5))
	fs := b.AddField(AccPublic|AccStatic, "GREETING", "Ljava/lang/String;")
	b.AttachConstantValue(fs, b.String("hello, world"))

	m := b.AddMethod(AccPublic, "run", "()V")
	b.Methodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
	b.Fieldref("java/lang/System", "out", "Ljava/io/PrintStream;")
	b.InterfaceMethodref("java/lang/Runnable", "run", "()V")
	code := &CodeAttr{MaxStack: 2, MaxLocals: 1, Code: []byte{0xb1}} // return
	code.Handlers = []ExceptionHandler{{StartPC: 0, EndPC: 0, HandlerPC: 0, CatchType: b.Class("java/lang/Exception")}}
	code.Attrs = append(code.Attrs, &LineNumberTableAttr{
		attrBase: attrBase{b.Utf8("LineNumberTable")},
		Entries:  []LineNumber{{StartPC: 0, Line: 10}},
	})
	code.Attrs = append(code.Attrs, &LocalVariableTableAttr{
		attrBase: attrBase{b.Utf8("LocalVariableTable")},
		Entries:  []LocalVariable{{StartPC: 0, Length: 1, Name: b.Utf8("this"), Desc: b.Utf8("Lcom/example/Sample;"), Slot: 0}},
	})
	b.AttachCode(m, code)
	b.AttachExceptions(m, []string{"java/io/IOException"})

	dep := b.AddMethod(AccPublic, "old", "()V")
	dep.Attrs = append(dep.Attrs, &DeprecatedAttr{attrBase{b.Utf8("Deprecated")}})
	abs := b.AddMethod(AccPublic|AccAbstract, "todo", "(IJ[Ljava/lang/String;)Ljava/lang/Object;")
	_ = abs

	b.CF.Attrs = append(b.CF.Attrs, &InnerClassesAttr{
		attrBase: attrBase{b.Utf8("InnerClasses")},
		Entries: []InnerClass{{
			Inner:       b.Class("com/example/Sample$Inner"),
			Outer:       b.CF.ThisClass,
			InnerName:   b.Utf8("Inner"),
			AccessFlags: AccPublic,
		}},
	})
	b.CF.Attrs = append(b.CF.Attrs, &UnknownAttr{
		attrBase: attrBase{b.Utf8("X-Custom")},
		Name:     "X-Custom",
		Data:     []byte{1, 2, 3, 4},
	})

	cf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

func TestBuildVerifyWriteParseRoundTrip(t *testing.T) {
	cf := buildSample(t)
	if err := Verify(cf); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	data, err := Write(cf)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	cf2, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Verify(cf2); err != nil {
		t.Fatalf("Verify parsed: %v", err)
	}
	data2, err := Write(cf2)
	if err != nil {
		t.Fatalf("Write parsed: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("parse∘write is not identity")
	}
	if got := cf2.ThisClassName(); got != "com/example/Sample" {
		t.Fatalf("ThisClassName = %q", got)
	}
	if got := cf2.SuperClassName(); got != "java/lang/Object" {
		t.Fatalf("SuperClassName = %q", got)
	}
	if len(cf2.Fields) != 6 || len(cf2.Methods) != 3 {
		t.Fatalf("got %d fields, %d methods", len(cf2.Fields), len(cf2.Methods))
	}
	// Constant values survive.
	var sawDouble, sawLong, sawString bool
	for _, c := range cf2.Pool {
		switch c.Kind {
		case KindDouble:
			sawDouble = c.Double == 3.25
		case KindLong:
			sawLong = c.Long == 1<<40
		case KindString:
			if cf2.Utf8At(c.Str) == "hello, world" {
				sawString = true
			}
		}
	}
	if !sawDouble || !sawLong || !sawString {
		t.Fatalf("constants lost: double=%v long=%v string=%v", sawDouble, sawLong, sawString)
	}
}

func TestParseErrors(t *testing.T) {
	good, err := Write(buildSample(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      {0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0},
		"truncated":      good[:len(good)/2],
		"trailing":       append(append([]byte(nil), good...), 0),
		"bad pool count": {0xca, 0xfe, 0xba, 0xbe, 0, 3, 0, 45, 0, 0},
	}
	for name, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: Parse succeeded", name)
		}
	}
}

func TestParseRejectsBadTag(t *testing.T) {
	data := []byte{0xca, 0xfe, 0xba, 0xbe, 0, 3, 0, 45, 0, 2, 99}
	if _, err := Parse(data); err == nil || !strings.Contains(err.Error(), "tag") {
		t.Fatalf("err = %v, want tag error", err)
	}
}

func TestVerifyCatchesBadReferences(t *testing.T) {
	cf := buildSample(t)
	saved := cf.ThisClass
	cf.ThisClass = 9999
	if err := Verify(cf); err == nil {
		t.Error("Verify accepted out-of-range this_class")
	}
	cf.ThisClass = saved

	// Point a Class constant's name at a non-Utf8 entry.
	for i := 1; i < len(cf.Pool); i++ {
		if cf.Pool[i].Kind == KindClass {
			savedName := cf.Pool[i].Name
			cf.Pool[i].Name = cf.ThisClass
			if err := Verify(cf); err == nil {
				t.Error("Verify accepted Class.Name pointing at a Class")
			}
			cf.Pool[i].Name = savedName
			break
		}
	}

	// Bad member descriptor.
	bad := cf.Pool[cf.Fields[0].Desc].Utf8
	cf.Pool[cf.Fields[0].Desc].Utf8 = "NotADescriptor"
	if err := Verify(cf); err == nil {
		t.Error("Verify accepted bad field descriptor")
	}
	cf.Pool[cf.Fields[0].Desc].Utf8 = bad
}

func TestModifiedUTF8(t *testing.T) {
	cases := []string{
		"", "plain ascii", "café", "\x00embedded nul\x00",
		"世界", "emoji \U0001F600 pair", strings.Repeat("x", 1000),
	}
	for _, s := range cases {
		enc := EncodeModifiedUTF8(s)
		// Modified UTF-8 never contains NUL or 4-byte sequences.
		for _, c := range enc {
			if c == 0 {
				t.Errorf("%q: NUL byte in encoding", s)
			}
			if c&0xF8 == 0xF0 {
				t.Errorf("%q: 4-byte UTF-8 lead in encoding", s)
			}
		}
		got, err := DecodeModifiedUTF8(enc)
		if err != nil || got != s {
			t.Errorf("roundtrip %q: got %q, err %v", s, got, err)
		}
	}
}

func TestModifiedUTF8Quick(t *testing.T) {
	f := func(s string) bool {
		got, err := DecodeModifiedUTF8(EncodeModifiedUTF8(s))
		// Arbitrary Go strings may hold invalid UTF-8, which range-over-string
		// maps to U+FFFD; compare against that normalization.
		want := strings.ToValidUTF8(s, "�")
		return err == nil && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModifiedUTF8DecodeErrors(t *testing.T) {
	cases := [][]byte{
		{0x00},                   // raw NUL
		{0xC0},                   // truncated 2-byte
		{0xE0, 0x80},             // truncated 3-byte
		{0xF0, 0x80, 0x80, 0x80}, // 4-byte form is invalid in modified UTF-8
		{0xC0, 0x00},             // bad continuation
	}
	for _, b := range cases {
		if _, err := DecodeModifiedUTF8(b); err == nil {
			t.Errorf("DecodeModifiedUTF8(% x) succeeded", b)
		}
	}
}

// TestModifiedUTF8SurrogateHandling pins the decoder's UTF-16 semantics
// against the reference (unit collection + utf16.Decode) after the
// zero-copy rewrite: surrogate pairs combine, unpaired surrogates become
// U+FFFD, NUL travels as C0 80, and the ASCII fast path aliases its
// input.
func TestModifiedUTF8SurrogateHandling(t *testing.T) {
	enc3 := func(u uint16) []byte { // one UTF-16 unit as a 3-byte sequence
		return []byte{0xE0 | byte(u>>12), 0x80 | byte(u>>6&0x3F), 0x80 | byte(u&0x3F)}
	}
	cat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"surrogate pair", cat(enc3(0xD83D), enc3(0xDE00)), "\U0001F600"},
		{"pair between ascii", cat([]byte("a"), enc3(0xD83D), enc3(0xDE00), []byte("b")), "a\U0001F600b"},
		{"embedded nul", []byte{'a', 0xC0, 0x80, 'b'}, "a\x00b"},
		{"lone high surrogate", enc3(0xD800), "�"},
		{"lone low surrogate", enc3(0xDC00), "�"},
		{"high at end after ascii", cat([]byte("x"), enc3(0xDBFF)), "x�"},
		{"high then non-surrogate", cat(enc3(0xD800), enc3(0x4E16)), "�世"},
		{"high then high then low", cat(enc3(0xD83D), enc3(0xD83D), enc3(0xDE00)), "�\U0001F600"},
		{"low then high", cat(enc3(0xDC00), enc3(0xD800)), "��"},
		{"bmp cjk", enc3(0x4E16), "世"},
	}
	for _, tc := range cases {
		got, err := DecodeModifiedUTF8(tc.in)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.name, got, tc.want)
		}
	}
	// A high surrogate followed by a malformed sequence is an encoding
	// error, not U+FFFD.
	if _, err := DecodeModifiedUTF8(cat(enc3(0xD800), []byte{0xE0, 0x80})); err == nil {
		t.Error("high surrogate + truncated sequence decoded without error")
	}
}

func TestDescriptors(t *testing.T) {
	params, ret, err := ParseMethodDescriptor("(I[[Ljava/lang/String;D)Ljava/util/List;")
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 3 {
		t.Fatalf("params = %v", params)
	}
	if params[0] != (Type{Base: 'I'}) {
		t.Errorf("param 0 = %+v", params[0])
	}
	if params[1].Dims != 2 || params[1].Name != "java/lang/String" {
		t.Errorf("param 1 = %+v", params[1])
	}
	if !params[2].IsWide() || params[2].Slots() != 2 {
		t.Errorf("param 2 = %+v", params[2])
	}
	if ret.Name != "java/util/List" || ret.IsWide() {
		t.Errorf("ret = %+v", ret)
	}
	if got := MethodDescriptor(params, ret); got != "(I[[Ljava/lang/String;D)Ljava/util/List;" {
		t.Errorf("MethodDescriptor = %q", got)
	}

	if _, err := ParseFieldDescriptor("V"); err == nil {
		t.Error("void field descriptor accepted")
	}
	if _, err := ParseFieldDescriptor("Ljava/lang/String"); err == nil {
		t.Error("unterminated class descriptor accepted")
	}
	if _, err := ParseFieldDescriptor("II"); err == nil {
		t.Error("trailing junk accepted")
	}
	if _, _, err := ParseMethodDescriptor("()"); err == nil {
		t.Error("missing return type accepted")
	}
	if _, _, err := ParseMethodDescriptor("(V)V"); err == nil {
		t.Error("void parameter accepted")
	}

	v, err := ParseFieldDescriptor("[[[I")
	if err != nil || v.Dims != 3 || v.Base != 'I' {
		t.Errorf("array descriptor = %+v, %v", v, err)
	}
	if v.String() != "[[[I" {
		t.Errorf("String() = %q", v.String())
	}
}

func TestSplitJoinClassName(t *testing.T) {
	cases := []struct{ bin, pkg, simple string }{
		{"java/lang/String", "java/lang", "String"},
		{"Main", "", "Main"},
		{"a/B", "a", "B"},
	}
	for _, c := range cases {
		pkg, simple := SplitClassName(c.bin)
		if pkg != c.pkg || simple != c.simple {
			t.Errorf("SplitClassName(%q) = %q, %q", c.bin, pkg, simple)
		}
		if got := JoinClassName(pkg, simple); got != c.bin {
			t.Errorf("JoinClassName(%q, %q) = %q", pkg, simple, got)
		}
	}
}

func TestBuilderInterning(t *testing.T) {
	b := NewBuilder("A", "java/lang/Object", AccPublic)
	if b.Utf8("x") != b.Utf8("x") {
		t.Error("Utf8 not interned")
	}
	if b.Class("C") != b.Class("C") {
		t.Error("Class not interned")
	}
	if b.Int(7) != b.Int(7) {
		t.Error("Int not interned")
	}
	if b.Methodref("C", "m", "()V") != b.Methodref("C", "m", "()V") {
		t.Error("Methodref not interned")
	}
	if b.Long(7) == b.Long(8) {
		t.Error("distinct longs collided")
	}
	// Wide constants consume two slots.
	before := len(b.CF.Pool)
	b.Double(9.75)
	if len(b.CF.Pool) != before+2 {
		t.Errorf("Double added %d slots, want 2", len(b.CF.Pool)-before)
	}
}

func TestWriterResolvesAttrNamesByContent(t *testing.T) {
	b := NewBuilder("A", "java/lang/Object", AccPublic)
	b.Utf8("SourceFile")
	src := b.Utf8("A.java")
	// Attribute with NameIndex 0 forces content lookup.
	b.CF.Attrs = append(b.CF.Attrs, &SourceFileAttr{Index: src})
	cf, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := Write(cf)
	if err != nil {
		t.Fatal(err)
	}
	cf2, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(cf2.Attrs) != 1 || cf2.Attrs[0].AttrName() != "SourceFile" {
		t.Fatalf("attrs = %v", cf2.Attrs)
	}
}

func TestWriterMissingAttrName(t *testing.T) {
	b := NewBuilder("A", "java/lang/Object", AccPublic)
	b.CF.Attrs = append(b.CF.Attrs, &SourceFileAttr{Index: b.Utf8("A.java")})
	cf, _ := b.Build()
	if _, err := Write(cf); err == nil {
		t.Fatal("Write succeeded without a Utf8 for the attribute name")
	}
}

func TestParseNeverPanicsOnCorruptInput(t *testing.T) {
	good, err := Write(buildSample(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	try := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked: %v", r)
			}
		}()
		if cf, err := Parse(data); err == nil {
			// A mutated file that still parses must also survive Verify
			// and Write without panicking.
			_ = Verify(cf)
			_, _ = Write(cf)
		}
	}
	for trial := 0; trial < 4000; trial++ {
		mut := append([]byte(nil), good...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		try(mut)
	}
	for cut := 0; cut < len(good); cut++ {
		try(good[:cut])
	}
}
