package classfile

import (
	"fmt"
	"math"
)

func float32Bits(v float32) uint32 { return math.Float32bits(v) }
func float64Bits(v float64) uint64 { return math.Float64bits(v) }

// Verify performs structural verification of the classfile: every
// constant-pool cross reference must point at an entry of the right kind,
// member descriptors must parse, and attributes must reference valid
// entries. It does not decode bytecode; see the bytecode package.
func Verify(cf *ClassFile) error {
	ck := func(idx uint16, kinds ...ConstKind) error {
		if int(idx) >= len(cf.Pool) || idx == 0 {
			return fmt.Errorf("classfile: pool index %d out of range [1,%d)", idx, len(cf.Pool))
		}
		got := cf.Pool[idx].Kind
		for _, k := range kinds {
			if got == k {
				return nil
			}
		}
		return fmt.Errorf("classfile: pool index %d is %v, want %v", idx, got, kinds)
	}
	for i := 1; i < len(cf.Pool); i++ {
		c := &cf.Pool[i]
		var err error
		switch c.Kind {
		case KindClass:
			err = ck(c.Name, KindUtf8)
		case KindString:
			err = ck(c.Str, KindUtf8)
		case KindFieldref, KindMethodref, KindInterfaceMethodref:
			if err = ck(c.Class, KindClass); err == nil {
				err = ck(c.NameAndType, KindNameAndType)
			}
		case KindNameAndType:
			if err = ck(c.Name, KindUtf8); err == nil {
				err = ck(c.Desc, KindUtf8)
			}
		case KindInvalid:
			// Must be the phantom slot of a preceding wide constant.
			if i == 0 || !cf.Pool[i-1].Kind.Wide() {
				err = fmt.Errorf("classfile: stray invalid constant at %d", i)
			}
		}
		if err != nil {
			return fmt.Errorf("constant %d: %w", i, err)
		}
		if c.Kind.Wide() {
			i++
		}
	}
	if err := ck(cf.ThisClass, KindClass); err != nil {
		return fmt.Errorf("this_class: %w", err)
	}
	if cf.SuperClass != 0 {
		if err := ck(cf.SuperClass, KindClass); err != nil {
			return fmt.Errorf("super_class: %w", err)
		}
	}
	for _, i := range cf.Interfaces {
		if err := ck(i, KindClass); err != nil {
			return fmt.Errorf("interface: %w", err)
		}
	}
	for mi := range cf.Fields {
		if err := verifyMember(cf, &cf.Fields[mi], true, ck); err != nil {
			return fmt.Errorf("field %d: %w", mi, err)
		}
	}
	for mi := range cf.Methods {
		if err := verifyMember(cf, &cf.Methods[mi], false, ck); err != nil {
			return fmt.Errorf("method %d: %w", mi, err)
		}
	}
	return verifyAttrs(cf, cf.Attrs, ck)
}

func verifyMember(cf *ClassFile, m *Member, isField bool, ck func(uint16, ...ConstKind) error) error {
	if err := ck(m.Name, KindUtf8); err != nil {
		return err
	}
	if err := ck(m.Desc, KindUtf8); err != nil {
		return err
	}
	desc := cf.Utf8At(m.Desc)
	if isField {
		if _, err := ParseFieldDescriptor(desc); err != nil {
			return err
		}
	} else {
		if _, _, err := ParseMethodDescriptor(desc); err != nil {
			return err
		}
	}
	return verifyAttrs(cf, m.Attrs, ck)
}

func verifyAttrs(cf *ClassFile, attrs []Attribute, ck func(uint16, ...ConstKind) error) error {
	for _, a := range attrs {
		if idx := a.nameIndex(); idx != 0 {
			if err := ck(idx, KindUtf8); err != nil {
				return fmt.Errorf("attribute name: %w", err)
			}
			if got := cf.Utf8At(idx); got != a.AttrName() {
				return fmt.Errorf("classfile: attribute name index says %q, type says %q", got, a.AttrName())
			}
		}
		var err error
		switch a := a.(type) {
		case *CodeAttr:
			for _, h := range a.Handlers {
				if h.CatchType != 0 {
					if err = ck(h.CatchType, KindClass); err != nil {
						break
					}
				}
				if int(h.StartPC) > len(a.Code) || int(h.EndPC) > len(a.Code) || int(h.HandlerPC) >= len(a.Code) {
					err = fmt.Errorf("classfile: handler range [%d,%d)->%d outside code of length %d",
						h.StartPC, h.EndPC, h.HandlerPC, len(a.Code))
					break
				}
			}
			if err == nil {
				err = verifyAttrs(cf, a.Attrs, ck)
			}
		case *ConstantValueAttr:
			err = ck(a.Index, KindInteger, KindFloat, KindLong, KindDouble, KindString)
		case *ExceptionsAttr:
			for _, c := range a.Classes {
				if err = ck(c, KindClass); err != nil {
					break
				}
			}
		case *SourceFileAttr:
			err = ck(a.Index, KindUtf8)
		case *LocalVariableTableAttr:
			for _, e := range a.Entries {
				if err = ck(e.Name, KindUtf8); err != nil {
					break
				}
				if err = ck(e.Desc, KindUtf8); err != nil {
					break
				}
			}
		case *InnerClassesAttr:
			for _, e := range a.Entries {
				if err = ck(e.Inner, KindClass); err != nil {
					break
				}
				if e.Outer != 0 {
					if err = ck(e.Outer, KindClass); err != nil {
						break
					}
				}
				if e.InnerName != 0 {
					if err = ck(e.InnerName, KindUtf8); err != nil {
						break
					}
				}
			}
		}
		if err != nil {
			return fmt.Errorf("attribute %s: %w", a.AttrName(), err)
		}
	}
	return nil
}
