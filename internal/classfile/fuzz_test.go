package classfile_test

import (
	"testing"

	"classpack/internal/classfile"
	"classpack/internal/synth"
)

// FuzzReadClassFile throws arbitrary bytes at the class-file parser.
// Parsing may fail with an error, never a panic; a class that parses
// must survive Verify and Write without panicking either.
func FuzzReadClassFile(f *testing.F) {
	p, err := synth.ProfileByName("209_db")
	if err != nil {
		f.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.05)
	if err != nil {
		f.Fatal(err)
	}
	if len(cfs) > 4 {
		cfs = cfs[:4]
	}
	for _, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{0xCA, 0xFE, 0xBA, 0xBE})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cf, err := classfile.Parse(data)
		if err != nil {
			return
		}
		// Verify may reject a structurally parsed but inconsistent pool;
		// Write re-serializes whatever parsed. Neither may panic.
		_ = classfile.Verify(cf)
		_, _ = classfile.Write(cf)
	})
}
