package classfile

import (
	"encoding/binary"
	"fmt"
	"math"
)

func float32FromBits(v uint32) float32 { return math.Float32frombits(v) }
func float64FromBits(v uint64) float64 { return math.Float64frombits(v) }

type writer struct {
	buf []byte
	utf []byte // modified-UTF-8 scratch, reused across pool entries
	cf  *ClassFile
	err error
}

func (w *writer) u1(v byte)    { w.buf = append(w.buf, v) }
func (w *writer) u2(v uint16)  { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u4(v uint32)  { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) raw(b []byte) { w.buf = append(w.buf, b...) }

func (w *writer) setErr(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Write serializes the classfile.
func Write(cf *ClassFile) ([]byte, error) {
	w := &writer{cf: cf, buf: make([]byte, 0, 1024)}
	w.u4(Magic)
	w.u2(cf.MinorVersion)
	w.u2(cf.MajorVersion)
	writePool(w, cf)
	w.u2(cf.AccessFlags)
	w.u2(cf.ThisClass)
	w.u2(cf.SuperClass)
	w.u2(uint16(len(cf.Interfaces)))
	for _, i := range cf.Interfaces {
		w.u2(i)
	}
	writeMembers(w, cf.Fields)
	writeMembers(w, cf.Methods)
	writeAttrs(w, cf.Attrs)
	return w.buf, w.err
}

func writePool(w *writer, cf *ClassFile) {
	if len(cf.Pool) == 0 || len(cf.Pool) > 0xFFFF {
		w.setErr(fmt.Errorf("classfile: constant pool size %d out of range", len(cf.Pool)))
		return
	}
	w.u2(uint16(len(cf.Pool)))
	for i := 1; i < len(cf.Pool); i++ {
		c := &cf.Pool[i]
		if c.Kind == KindInvalid {
			w.setErr(fmt.Errorf("classfile: invalid constant at index %d", i))
			return
		}
		w.u1(byte(c.Kind))
		switch c.Kind {
		case KindUtf8:
			w.utf = AppendModifiedUTF8(w.utf[:0], c.Utf8)
			if len(w.utf) > 0xFFFF {
				w.setErr(fmt.Errorf("classfile: Utf8 entry %d too long (%d bytes)", i, len(w.utf)))
				return
			}
			w.u2(uint16(len(w.utf)))
			w.raw(w.utf)
		case KindInteger:
			w.u4(uint32(c.Int))
		case KindFloat:
			w.u4(math.Float32bits(c.Float))
		case KindLong:
			w.u4(uint32(uint64(c.Long) >> 32))
			w.u4(uint32(uint64(c.Long)))
			i++ // phantom slot
		case KindDouble:
			bits := math.Float64bits(c.Double)
			w.u4(uint32(bits >> 32))
			w.u4(uint32(bits))
			i++ // phantom slot
		case KindClass:
			w.u2(c.Name)
		case KindString:
			w.u2(c.Str)
		case KindFieldref, KindMethodref, KindInterfaceMethodref:
			w.u2(c.Class)
			w.u2(c.NameAndType)
		case KindNameAndType:
			w.u2(c.Name)
			w.u2(c.Desc)
		default:
			w.setErr(fmt.Errorf("classfile: cannot write constant tag %d", c.Kind))
			return
		}
	}
}

func writeMembers(w *writer, members []Member) {
	w.u2(uint16(len(members)))
	for i := range members {
		m := &members[i]
		w.u2(m.AccessFlags)
		w.u2(m.Name)
		w.u2(m.Desc)
		writeAttrs(w, m.Attrs)
	}
}

func writeAttrs(w *writer, attrs []Attribute) {
	w.u2(uint16(len(attrs)))
	for _, a := range attrs {
		writeAttr(w, a)
	}
}

// attrNameIndex resolves the pool index for an attribute's name, preferring
// the index recorded at parse time and falling back to a content lookup for
// programmatically built attributes.
func (w *writer) attrNameIndex(a Attribute) uint16 {
	if idx := a.nameIndex(); idx != 0 {
		return idx
	}
	name := a.AttrName()
	for i := 1; i < len(w.cf.Pool); i++ {
		if w.cf.Pool[i].Kind == KindUtf8 && w.cf.Pool[i].Utf8 == name {
			return uint16(i)
		}
	}
	w.setErr(fmt.Errorf("classfile: no Utf8 constant for attribute name %q", name))
	return 0
}

func writeAttr(w *writer, a Attribute) {
	w.u2(w.attrNameIndex(a))
	lenPos := len(w.buf)
	w.u4(0) // patched below
	switch a := a.(type) {
	case *CodeAttr:
		w.u2(a.MaxStack)
		w.u2(a.MaxLocals)
		w.u4(uint32(len(a.Code)))
		w.raw(a.Code)
		w.u2(uint16(len(a.Handlers)))
		for _, h := range a.Handlers {
			w.u2(h.StartPC)
			w.u2(h.EndPC)
			w.u2(h.HandlerPC)
			w.u2(h.CatchType)
		}
		writeAttrs(w, a.Attrs)
	case *ConstantValueAttr:
		w.u2(a.Index)
	case *ExceptionsAttr:
		w.u2(uint16(len(a.Classes)))
		for _, c := range a.Classes {
			w.u2(c)
		}
	case *SourceFileAttr:
		w.u2(a.Index)
	case *LineNumberTableAttr:
		w.u2(uint16(len(a.Entries)))
		for _, e := range a.Entries {
			w.u2(e.StartPC)
			w.u2(e.Line)
		}
	case *LocalVariableTableAttr:
		w.u2(uint16(len(a.Entries)))
		for _, e := range a.Entries {
			w.u2(e.StartPC)
			w.u2(e.Length)
			w.u2(e.Name)
			w.u2(e.Desc)
			w.u2(e.Slot)
		}
	case *SyntheticAttr, *DeprecatedAttr:
		// empty body
	case *InnerClassesAttr:
		w.u2(uint16(len(a.Entries)))
		for _, e := range a.Entries {
			w.u2(e.Inner)
			w.u2(e.Outer)
			w.u2(e.InnerName)
			w.u2(e.AccessFlags)
		}
	case *UnknownAttr:
		w.raw(a.Data)
	default:
		w.setErr(fmt.Errorf("classfile: cannot write attribute %T", a))
	}
	binary.BigEndian.PutUint32(w.buf[lenPos:], uint32(len(w.buf)-lenPos-4))
}
