package classfile

import (
	"unicode/utf16"

	"classpack/internal/corrupt"
)

// EncodeModifiedUTF8 converts a Go string (standard UTF-8) to the JVM's
// modified UTF-8: U+0000 becomes the two-byte sequence C0 80, and code
// points above U+FFFF are written as surrogate pairs (two three-byte
// sequences) rather than four-byte UTF-8.
func EncodeModifiedUTF8(s string) []byte {
	out := make([]byte, 0, len(s))
	for _, r := range s {
		switch {
		case r == 0:
			out = append(out, 0xC0, 0x80)
		case r < 0x80:
			out = append(out, byte(r))
		case r < 0x800:
			out = append(out, 0xC0|byte(r>>6), 0x80|byte(r&0x3F))
		case r < 0x10000:
			out = append(out, 0xE0|byte(r>>12), 0x80|byte(r>>6&0x3F), 0x80|byte(r&0x3F))
		default:
			hi, lo := utf16.EncodeRune(r)
			for _, u := range []rune{hi, lo} {
				out = append(out, 0xE0|byte(u>>12), 0x80|byte(u>>6&0x3F), 0x80|byte(u&0x3F))
			}
		}
	}
	return out
}

// DecodeModifiedUTF8 converts JVM modified UTF-8 bytes to a Go string.
func DecodeModifiedUTF8(b []byte) (string, error) {
	var units []uint16
	for i := 0; i < len(b); {
		c := b[i]
		switch {
		case c&0x80 == 0:
			if c == 0 {
				return "", corrupt.Errorf("utf8", int64(i), "NUL byte in modified UTF-8")
			}
			units = append(units, uint16(c))
			i++
		case c&0xE0 == 0xC0:
			if i+1 >= len(b) || b[i+1]&0xC0 != 0x80 {
				return "", corrupt.Errorf("utf8", int64(i), "truncated 2-byte sequence")
			}
			units = append(units, uint16(c&0x1F)<<6|uint16(b[i+1]&0x3F))
			i += 2
		case c&0xF0 == 0xE0:
			if i+2 >= len(b) || b[i+1]&0xC0 != 0x80 || b[i+2]&0xC0 != 0x80 {
				return "", corrupt.Errorf("utf8", int64(i), "truncated 3-byte sequence")
			}
			units = append(units, uint16(c&0x0F)<<12|uint16(b[i+1]&0x3F)<<6|uint16(b[i+2]&0x3F))
			i += 3
		default:
			return "", corrupt.Errorf("utf8", int64(i), "invalid modified UTF-8 byte 0x%02x", c)
		}
	}
	return string(utf16.Decode(units)), nil
}
