package classfile

import (
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"

	"classpack/internal/corrupt"
)

// EncodeModifiedUTF8 converts a Go string (standard UTF-8) to the JVM's
// modified UTF-8: U+0000 becomes the two-byte sequence C0 80, and code
// points above U+FFFF are written as surrogate pairs (two three-byte
// sequences) rather than four-byte UTF-8.
func EncodeModifiedUTF8(s string) []byte {
	return AppendModifiedUTF8(make([]byte, 0, len(s)), s)
}

// AppendModifiedUTF8 appends the modified UTF-8 encoding of s to dst.
// ASCII text without NUL — almost every pool string — is a straight copy.
func AppendModifiedUTF8(dst []byte, s string) []byte {
	i := 0
	for i < len(s) && s[i]-1 < 0x7F {
		i++
	}
	dst = append(dst, s[:i]...)
	if i == len(s) {
		return dst
	}
	for _, r := range s[i:] {
		switch {
		case r == 0:
			dst = append(dst, 0xC0, 0x80)
		case r < 0x80:
			dst = append(dst, byte(r))
		case r < 0x800:
			dst = append(dst, 0xC0|byte(r>>6), 0x80|byte(r&0x3F))
		case r < 0x10000:
			dst = append(dst, 0xE0|byte(r>>12), 0x80|byte(r>>6&0x3F), 0x80|byte(r&0x3F))
		default:
			hi, lo := utf16.EncodeRune(r)
			for _, u := range []rune{hi, lo} {
				dst = append(dst, 0xE0|byte(u>>12), 0x80|byte(u>>6&0x3F), 0x80|byte(u&0x3F))
			}
		}
	}
	return dst
}

// decodeUnit decodes the UTF-16 code unit starting at b[i] and reports
// its encoded width.
func decodeUnit(b []byte, i int) (uint16, int, error) {
	c := b[i]
	switch {
	case c&0x80 == 0:
		if c == 0 {
			return 0, 0, corrupt.Errorf("utf8", int64(i), "NUL byte in modified UTF-8")
		}
		return uint16(c), 1, nil
	case c&0xE0 == 0xC0:
		if i+1 >= len(b) || b[i+1]&0xC0 != 0x80 {
			return 0, 0, corrupt.Errorf("utf8", int64(i), "truncated 2-byte sequence")
		}
		return uint16(c&0x1F)<<6 | uint16(b[i+1]&0x3F), 2, nil
	case c&0xF0 == 0xE0:
		if i+2 >= len(b) || b[i+1]&0xC0 != 0x80 || b[i+2]&0xC0 != 0x80 {
			return 0, 0, corrupt.Errorf("utf8", int64(i), "truncated 3-byte sequence")
		}
		return uint16(c&0x0F)<<12 | uint16(b[i+1]&0x3F)<<6 | uint16(b[i+2]&0x3F), 3, nil
	default:
		return 0, 0, corrupt.Errorf("utf8", int64(i), "invalid modified UTF-8 byte 0x%02x", c)
	}
}

// DecodeModifiedUTF8 converts JVM modified UTF-8 bytes to a Go string.
//
// When every byte is plain ASCII (no NUL, no multi-byte sequences) the
// returned string ALIASES b instead of copying — the dominant case for
// pool strings. Callers must not modify b while the string is reachable;
// Parse inherits (and documents) the same rule for its input buffer.
//
// Surrogate handling matches utf16.Decode exactly: a high surrogate
// immediately followed by a low surrogate combines into one code point;
// any unpaired surrogate decodes to U+FFFD.
func DecodeModifiedUTF8(b []byte) (string, error) {
	i := 0
	for i < len(b) && b[i]-1 < 0x7F {
		i++
	}
	if i == len(b) {
		if len(b) == 0 {
			return "", nil
		}
		return unsafe.String(&b[0], len(b)), nil
	}
	if b[i]&0x80 == 0 { // ASCII scan stopped on a NUL byte
		return "", corrupt.Errorf("utf8", int64(i), "NUL byte in modified UTF-8")
	}
	out := make([]byte, 0, len(b))
	out = append(out, b[:i]...)
	for i < len(b) {
		u, n, err := decodeUnit(b, i)
		if err != nil {
			return "", err
		}
		i += n
		switch {
		case u < 0xD800 || u >= 0xE000:
			out = utf8.AppendRune(out, rune(u))
		case u >= 0xDC00: // unpaired low surrogate
			out = utf8.AppendRune(out, utf8.RuneError)
		case i >= len(b): // high surrogate at end of input
			out = utf8.AppendRune(out, utf8.RuneError)
		default:
			u2, n2, err := decodeUnit(b, i)
			if err != nil {
				return "", err
			}
			if u2 >= 0xDC00 && u2 < 0xE000 {
				out = utf8.AppendRune(out, utf16.DecodeRune(rune(u), rune(u2)))
				i += n2
			} else {
				// High surrogate not followed by a low one: U+FFFD for
				// the high unit; u2 is re-decoded by the next iteration.
				out = utf8.AppendRune(out, utf8.RuneError)
			}
		}
	}
	return string(out), nil
}
