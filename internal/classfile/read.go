package classfile

import (
	"encoding/binary"
	"fmt"
)

// ParseError describes a malformed classfile.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("classfile: offset %d: %s", e.Offset, e.Msg)
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) fail(format string, args ...any) error {
	return &ParseError{Offset: r.pos, Msg: fmt.Sprintf(format, args...)}
}

func (r *reader) need(n int) error {
	if r.pos+n > len(r.buf) {
		return r.fail("need %d bytes, have %d", n, len(r.buf)-r.pos)
	}
	return nil
}

func (r *reader) u1() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) u2() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u4() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if err := r.need(n); err != nil {
		return nil, err
	}
	b := r.buf[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return b, nil
}

// Parse decodes a classfile from data.
//
// The returned ClassFile aliases data where it can instead of copying:
// ASCII pool strings and raw byte payloads (bytecode, attribute bodies)
// point into the input buffer. Callers must not modify data while the
// ClassFile — or any string taken from it — is still in use.
func Parse(data []byte) (*ClassFile, error) {
	r := &reader{buf: data}
	magic, err := r.u4()
	if err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, r.fail("bad magic 0x%08x", magic)
	}
	cf := &ClassFile{}
	if cf.MinorVersion, err = r.u2(); err != nil {
		return nil, err
	}
	if cf.MajorVersion, err = r.u2(); err != nil {
		return nil, err
	}
	if err := parsePool(r, cf); err != nil {
		return nil, err
	}
	if cf.AccessFlags, err = r.u2(); err != nil {
		return nil, err
	}
	if cf.ThisClass, err = r.u2(); err != nil {
		return nil, err
	}
	if cf.SuperClass, err = r.u2(); err != nil {
		return nil, err
	}
	nIfaces, err := r.u2()
	if err != nil {
		return nil, err
	}
	if int(nIfaces)*2 > len(r.buf)-r.pos {
		return nil, r.fail("interface count %d overruns input", nIfaces)
	}
	cf.Interfaces = make([]uint16, nIfaces)
	for i := range cf.Interfaces {
		if cf.Interfaces[i], err = r.u2(); err != nil {
			return nil, err
		}
	}
	if cf.Fields, err = parseMembers(r, cf); err != nil {
		return nil, err
	}
	if cf.Methods, err = parseMembers(r, cf); err != nil {
		return nil, err
	}
	if cf.Attrs, err = parseAttrs(r, cf); err != nil {
		return nil, err
	}
	if r.pos != len(data) {
		return nil, r.fail("%d trailing bytes", len(data)-r.pos)
	}
	return cf, nil
}

func parsePool(r *reader, cf *ClassFile) error {
	count, err := r.u2()
	if err != nil {
		return err
	}
	if count == 0 {
		return r.fail("constant pool count 0")
	}
	cf.Pool = make([]Constant, count)
	for i := 1; i < int(count); i++ {
		tag, err := r.u1()
		if err != nil {
			return err
		}
		c := &cf.Pool[i]
		c.Kind = ConstKind(tag)
		switch c.Kind {
		case KindUtf8:
			n, err := r.u2()
			if err != nil {
				return err
			}
			raw, err := r.bytes(int(n))
			if err != nil {
				return err
			}
			s, err := DecodeModifiedUTF8(raw)
			if err != nil {
				return r.fail("entry %d: %v", i, err)
			}
			c.Utf8 = s
		case KindInteger:
			v, err := r.u4()
			if err != nil {
				return err
			}
			c.Int = int32(v)
		case KindFloat:
			v, err := r.u4()
			if err != nil {
				return err
			}
			c.Float = float32FromBits(v)
		case KindLong:
			hi, err := r.u4()
			if err != nil {
				return err
			}
			lo, err := r.u4()
			if err != nil {
				return err
			}
			c.Long = int64(uint64(hi)<<32 | uint64(lo))
			i++ // phantom slot
		case KindDouble:
			hi, err := r.u4()
			if err != nil {
				return err
			}
			lo, err := r.u4()
			if err != nil {
				return err
			}
			c.Double = float64FromBits(uint64(hi)<<32 | uint64(lo))
			i++ // phantom slot
		case KindClass:
			if c.Name, err = r.u2(); err != nil {
				return err
			}
		case KindString:
			if c.Str, err = r.u2(); err != nil {
				return err
			}
		case KindFieldref, KindMethodref, KindInterfaceMethodref:
			if c.Class, err = r.u2(); err != nil {
				return err
			}
			if c.NameAndType, err = r.u2(); err != nil {
				return err
			}
		case KindNameAndType:
			if c.Name, err = r.u2(); err != nil {
				return err
			}
			if c.Desc, err = r.u2(); err != nil {
				return err
			}
		default:
			return r.fail("entry %d: unsupported constant tag %d", i, tag)
		}
	}
	return nil
}

func parseMembers(r *reader, cf *ClassFile) ([]Member, error) {
	count, err := r.u2()
	if err != nil {
		return nil, err
	}
	if int(count)*8 > len(r.buf)-r.pos {
		return nil, r.fail("member count %d overruns input", count)
	}
	members := make([]Member, count)
	for i := range members {
		m := &members[i]
		if m.AccessFlags, err = r.u2(); err != nil {
			return nil, err
		}
		if m.Name, err = r.u2(); err != nil {
			return nil, err
		}
		if m.Desc, err = r.u2(); err != nil {
			return nil, err
		}
		if m.Attrs, err = parseAttrs(r, cf); err != nil {
			return nil, err
		}
	}
	return members, nil
}

func parseAttrs(r *reader, cf *ClassFile) ([]Attribute, error) {
	count, err := r.u2()
	if err != nil {
		return nil, err
	}
	if int(count)*6 > len(r.buf)-r.pos {
		return nil, r.fail("attribute count %d overruns input", count)
	}
	attrs := make([]Attribute, 0, count)
	for i := 0; i < int(count); i++ {
		a, err := parseAttr(r, cf)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

func parseAttr(r *reader, cf *ClassFile) (Attribute, error) {
	nameIdx, err := r.u2()
	if err != nil {
		return nil, err
	}
	length, err := r.u4()
	if err != nil {
		return nil, err
	}
	body, err := r.bytes(int(length))
	if err != nil {
		return nil, err
	}
	name := cf.Utf8At(nameIdx)
	br := &reader{buf: body}
	base := attrBase{NameIndex: nameIdx}
	var a Attribute
	switch name {
	case "Code":
		a, err = parseCode(br, cf, base)
	case "ConstantValue":
		cv := &ConstantValueAttr{attrBase: base}
		cv.Index, err = br.u2()
		a = cv
	case "Exceptions":
		ex := &ExceptionsAttr{attrBase: base}
		var n uint16
		if n, err = br.u2(); err == nil && int(n)*2 > len(br.buf)-br.pos {
			err = br.fail("exception count %d overruns attribute", n)
		}
		if err == nil {
			ex.Classes = make([]uint16, n)
			for i := range ex.Classes {
				if ex.Classes[i], err = br.u2(); err != nil {
					break
				}
			}
		}
		a = ex
	case "SourceFile":
		sf := &SourceFileAttr{attrBase: base}
		sf.Index, err = br.u2()
		a = sf
	case "LineNumberTable":
		ln := &LineNumberTableAttr{attrBase: base}
		var n uint16
		if n, err = br.u2(); err == nil && int(n)*4 > len(br.buf)-br.pos {
			err = br.fail("line number count %d overruns attribute", n)
		}
		if err == nil {
			ln.Entries = make([]LineNumber, n)
			for i := range ln.Entries {
				if ln.Entries[i].StartPC, err = br.u2(); err != nil {
					break
				}
				if ln.Entries[i].Line, err = br.u2(); err != nil {
					break
				}
			}
		}
		a = ln
	case "LocalVariableTable":
		lv := &LocalVariableTableAttr{attrBase: base}
		var n uint16
		if n, err = br.u2(); err == nil && int(n)*10 > len(br.buf)-br.pos {
			err = br.fail("local variable count %d overruns attribute", n)
		}
		if err == nil {
			lv.Entries = make([]LocalVariable, n)
			for i := range lv.Entries {
				e := &lv.Entries[i]
				for _, p := range []*uint16{&e.StartPC, &e.Length, &e.Name, &e.Desc, &e.Slot} {
					if *p, err = br.u2(); err != nil {
						break
					}
				}
				if err != nil {
					break
				}
			}
		}
		a = lv
	case "Synthetic":
		a = &SyntheticAttr{attrBase: base}
	case "Deprecated":
		a = &DeprecatedAttr{attrBase: base}
	case "InnerClasses":
		ic := &InnerClassesAttr{attrBase: base}
		var n uint16
		if n, err = br.u2(); err == nil && int(n)*8 > len(br.buf)-br.pos {
			err = br.fail("inner class count %d overruns attribute", n)
		}
		if err == nil {
			ic.Entries = make([]InnerClass, n)
			for i := range ic.Entries {
				e := &ic.Entries[i]
				for _, p := range []*uint16{&e.Inner, &e.Outer, &e.InnerName, &e.AccessFlags} {
					if *p, err = br.u2(); err != nil {
						break
					}
				}
				if err != nil {
					break
				}
			}
		}
		a = ic
	default:
		return &UnknownAttr{attrBase: base, Name: name, Data: body}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("classfile: attribute %q: %w", name, err)
	}
	if _, ok := a.(*UnknownAttr); !ok && br.pos != len(body) {
		return nil, fmt.Errorf("classfile: attribute %q: %d trailing bytes", name, len(body)-br.pos)
	}
	return a, nil
}

func parseCode(r *reader, cf *ClassFile, base attrBase) (*CodeAttr, error) {
	c := &CodeAttr{attrBase: base}
	var err error
	if c.MaxStack, err = r.u2(); err != nil {
		return nil, err
	}
	if c.MaxLocals, err = r.u2(); err != nil {
		return nil, err
	}
	codeLen, err := r.u4()
	if err != nil {
		return nil, err
	}
	if c.Code, err = r.bytes(int(codeLen)); err != nil {
		return nil, err
	}
	nHandlers, err := r.u2()
	if err != nil {
		return nil, err
	}
	if int(nHandlers)*8 > len(r.buf)-r.pos {
		return nil, r.fail("handler count %d overruns input", nHandlers)
	}
	c.Handlers = make([]ExceptionHandler, nHandlers)
	for i := range c.Handlers {
		h := &c.Handlers[i]
		for _, p := range []*uint16{&h.StartPC, &h.EndPC, &h.HandlerPC, &h.CatchType} {
			if *p, err = r.u2(); err != nil {
				return nil, err
			}
		}
	}
	if c.Attrs, err = parseAttrs(r, cf); err != nil {
		return nil, err
	}
	return c, nil
}
