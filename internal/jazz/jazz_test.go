package jazz

import (
	"bytes"
	"math/rand"
	"testing"

	"classpack/internal/archive"
	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/synth"
)

func corpus(t testing.TB, name string) ([]*classfile.ClassFile, [][]byte) {
	t.Helper()
	p, err := synth.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := synth.GenerateStripped(p, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([][]byte, len(cfs))
	for i, cf := range cfs {
		if raw[i], err = classfile.Write(cf); err != nil {
			t.Fatal(err)
		}
	}
	return cfs, raw
}

func TestRoundTrip(t *testing.T) {
	for _, name := range []string{"Hanoi", "222_mpegaudio", "213_javac"} {
		t.Run(name, func(t *testing.T) {
			cfs, want := corpus(t, name)
			packed, err := Pack(cfs)
			if err != nil {
				t.Fatalf("Pack: %v", err)
			}
			back, err := Unpack(packed)
			if err != nil {
				t.Fatalf("Unpack: %v", err)
			}
			if len(back) != len(cfs) {
				t.Fatalf("got %d classes, want %d", len(back), len(cfs))
			}
			for i, cf := range back {
				if err := classfile.Verify(cf); err != nil {
					t.Fatalf("class %d: %v", i, err)
				}
				got, err := classfile.Write(cf)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want[i]) {
					t.Fatalf("class %d (%s) differs after Jazz round trip", i, cf.ThisClassName())
				}
			}
		})
	}
}

func TestJazzBetweenJ0rGzAndPacked(t *testing.T) {
	// The paper's Table 6 shape: Packed < Jazz, and Jazz typically under
	// the j0r.gz baseline thanks to the shared global pool.
	cfs, raw := corpus(t, "202_jess")
	jazzData, err := Pack(cfs)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := core.Pack(cfs, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var files []archive.File
	for i, d := range raw {
		files = append(files, archive.File{Name: cfs[i].ThisClassName() + ".class", Data: d})
	}
	j0rgz, err := archive.WriteJ0rGz(files)
	if err != nil {
		t.Fatal(err)
	}
	if !(len(packed) < len(jazzData)) {
		t.Errorf("packed %d not smaller than jazz %d", len(packed), len(jazzData))
	}
	if !(len(jazzData) < len(j0rgz)*13/10) {
		t.Errorf("jazz %d far above j0r.gz %d", len(jazzData), len(j0rgz))
	}
}

func TestUnpackErrors(t *testing.T) {
	cfs, _ := corpus(t, "Hanoi")
	packed, err := Pack(cfs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack([]byte("bogus!")); err == nil {
		t.Error("junk accepted")
	}
	if _, err := Unpack(packed[:len(packed)/3]); err == nil {
		t.Error("truncated archive accepted")
	}
}

func TestPackDeterministic(t *testing.T) {
	cfs, _ := corpus(t, "Hanoi")
	a, err := Pack(cfs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pack(cfs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Jazz Pack is not deterministic")
	}
}

func TestUnpackNeverPanicsOnCorruptInput(t *testing.T) {
	cfs, _ := corpus(t, "Hanoi")
	packed, err := Pack(cfs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	try := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("jazz.Unpack panicked: %v", r)
			}
		}()
		_, _ = Unpack(data)
	}
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), packed...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		try(mut)
	}
	for cut := 0; cut < len(packed); cut += 11 {
		try(packed[:cut])
	}
}

func TestEmptyArchive(t *testing.T) {
	packed, err := Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty archive decoded %d classes", len(out))
	}
}
