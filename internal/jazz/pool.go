// Package jazz reimplements the Jazz archive format of Bradley, Horspool
// and Vitek [BHV98] as described in §13.1 of the paper, to serve as the
// comparison baseline: a single global constant pool shared across all
// classfiles, retaining the standard kinds of constant-pool entries
// (no factoring of package names out of class names or class names out of
// signatures), with references coded by a fixed per-kind Huffman code that
// ignores locality of reference.
package jazz

import (
	"fmt"
	"math"

	"classpack/internal/classfile"
)

// globalPool is the deduplicated union of every classfile's constants,
// kept in per-kind subpools; references are (kind, subindex) pairs.
type globalPool struct {
	utf8    []string
	ints    []int32
	floats  []float32
	longs   []int64
	doubles []float64
	classes []int    // utf8 subindex
	strings []int    // utf8 subindex
	nats    [][2]int // name utf8, desc utf8
	fields  [][2]int // class subindex, nat subindex
	methods [][2]int
	imeths  [][2]int

	utf8Idx   map[string]int
	intIdx    map[int32]int
	floatIdx  map[uint32]int
	longIdx   map[int64]int
	doubleIdx map[uint64]int
	classIdx  map[int]int
	stringIdx map[int]int
	natIdx    map[[2]int]int
	fieldIdx  map[[2]int]int
	methodIdx map[[2]int]int
	imethIdx  map[[2]int]int
}

func newGlobalPool() *globalPool {
	return &globalPool{
		utf8Idx: map[string]int{}, intIdx: map[int32]int{},
		floatIdx: map[uint32]int{}, longIdx: map[int64]int{},
		doubleIdx: map[uint64]int{}, classIdx: map[int]int{},
		stringIdx: map[int]int{}, natIdx: map[[2]int]int{},
		fieldIdx: map[[2]int]int{}, methodIdx: map[[2]int]int{},
		imethIdx: map[[2]int]int{},
	}
}

func internIdx[K comparable](idx map[K]int, list *[]K, k K) int {
	if i, ok := idx[k]; ok {
		return i
	}
	i := len(*list)
	*list = append(*list, k)
	idx[k] = i
	return i
}

func (g *globalPool) internUtf8(s string) int { return internIdx(g.utf8Idx, &g.utf8, s) }
func (g *globalPool) internInt(v int32) int   { return internIdx(g.intIdx, &g.ints, v) }
func (g *globalPool) internLong(v int64) int  { return internIdx(g.longIdx, &g.longs, v) }

func (g *globalPool) internFloat(v float32) int {
	key := math.Float32bits(v)
	if i, ok := g.floatIdx[key]; ok {
		return i
	}
	i := len(g.floats)
	g.floats = append(g.floats, v)
	g.floatIdx[key] = i
	return i
}

func (g *globalPool) internDouble(v float64) int {
	key := math.Float64bits(v)
	if i, ok := g.doubleIdx[key]; ok {
		return i
	}
	i := len(g.doubles)
	g.doubles = append(g.doubles, v)
	g.doubleIdx[key] = i
	return i
}

func (g *globalPool) internClass(name string) int {
	u := g.internUtf8(name)
	if i, ok := g.classIdx[u]; ok {
		return i
	}
	i := len(g.classes)
	g.classes = append(g.classes, u)
	g.classIdx[u] = i
	return i
}

func (g *globalPool) internString(s string) int {
	u := g.internUtf8(s)
	if i, ok := g.stringIdx[u]; ok {
		return i
	}
	i := len(g.strings)
	g.strings = append(g.strings, u)
	g.stringIdx[u] = i
	return i
}

func (g *globalPool) internNAT(name, desc string) int {
	key := [2]int{g.internUtf8(name), g.internUtf8(desc)}
	return internIdx(g.natIdx, &g.nats, key)
}

func (g *globalPool) internMember(kind classfile.ConstKind, class, name, desc string) int {
	key := [2]int{g.internClass(class), g.internNAT(name, desc)}
	switch kind {
	case classfile.KindFieldref:
		return internIdx(g.fieldIdx, &g.fields, key)
	case classfile.KindMethodref:
		return internIdx(g.methodIdx, &g.methods, key)
	default:
		return internIdx(g.imethIdx, &g.imeths, key)
	}
}

// addFile interns every constant of a classfile into the global pool
// (stripped files contain only reachable constants).
func (g *globalPool) addFile(cf *classfile.ClassFile) error {
	for i := 1; i < len(cf.Pool); i++ {
		c := &cf.Pool[i]
		switch c.Kind {
		case classfile.KindUtf8:
			g.internUtf8(c.Utf8)
		case classfile.KindInteger:
			g.internInt(c.Int)
		case classfile.KindFloat:
			g.internFloat(c.Float)
		case classfile.KindLong:
			g.internLong(c.Long)
			i++
		case classfile.KindDouble:
			g.internDouble(c.Double)
			i++
		case classfile.KindClass:
			g.internClass(cf.Utf8At(c.Name))
		case classfile.KindString:
			g.internString(cf.Utf8At(c.Str))
		case classfile.KindNameAndType:
			g.internNAT(cf.Utf8At(c.Name), cf.Utf8At(c.Desc))
		case classfile.KindFieldref, classfile.KindMethodref, classfile.KindInterfaceMethodref:
			nat := cf.Pool[c.NameAndType]
			g.internMember(c.Kind, cf.ClassNameAt(c.Class), cf.Utf8At(nat.Name), cf.Utf8At(nat.Desc))
		case classfile.KindInvalid:
			return fmt.Errorf("jazz: stray invalid constant at %d", i)
		}
	}
	return nil
}

// Subindex resolution for a (file, pool index) reference.

func (g *globalPool) utf8Of(cf *classfile.ClassFile, idx uint16) (int, error) {
	if int(idx) >= len(cf.Pool) || cf.Pool[idx].Kind != classfile.KindUtf8 {
		return 0, fmt.Errorf("jazz: index %d is not Utf8", idx)
	}
	return g.internUtf8(cf.Pool[idx].Utf8), nil
}

func (g *globalPool) classOf(cf *classfile.ClassFile, idx uint16) (int, error) {
	if int(idx) >= len(cf.Pool) || cf.Pool[idx].Kind != classfile.KindClass {
		return 0, fmt.Errorf("jazz: index %d is not Class", idx)
	}
	return g.internClass(cf.ClassNameAt(idx)), nil
}

func (g *globalPool) memberOf(cf *classfile.ClassFile, idx uint16) (kind classfile.ConstKind, sub int, err error) {
	if int(idx) >= len(cf.Pool) {
		return 0, 0, fmt.Errorf("jazz: member index %d out of range", idx)
	}
	c := &cf.Pool[idx]
	switch c.Kind {
	case classfile.KindFieldref, classfile.KindMethodref, classfile.KindInterfaceMethodref:
	default:
		return 0, 0, fmt.Errorf("jazz: index %d is %v, not a member", idx, c.Kind)
	}
	nat := cf.Pool[c.NameAndType]
	return c.Kind, g.internMember(c.Kind, cf.ClassNameAt(c.Class),
		cf.Utf8At(nat.Name), cf.Utf8At(nat.Desc)), nil
}

// ldcUnion maps an ldc-able constant (int, float, string) to the union
// alphabet used for ldc operands, whose type is not known from context.
func (g *globalPool) ldcUnion(cf *classfile.ClassFile, idx uint16) (int, error) {
	if int(idx) >= len(cf.Pool) {
		return 0, fmt.Errorf("jazz: ldc index %d out of range", idx)
	}
	c := &cf.Pool[idx]
	switch c.Kind {
	case classfile.KindInteger:
		return g.internInt(c.Int), nil
	case classfile.KindFloat:
		return len(g.ints) + g.internFloat(c.Float), nil
	case classfile.KindString:
		return len(g.ints) + len(g.floats) + g.internString(cf.Utf8At(c.Str)), nil
	default:
		return 0, fmt.Errorf("jazz: ldc of %v", c.Kind)
	}
}

// ldc2Union maps a long or double to the ldc2 union alphabet.
func (g *globalPool) ldc2Union(cf *classfile.ClassFile, idx uint16) (int, error) {
	if int(idx) >= len(cf.Pool) {
		return 0, fmt.Errorf("jazz: ldc2 index %d out of range", idx)
	}
	c := &cf.Pool[idx]
	switch c.Kind {
	case classfile.KindLong:
		return g.internLong(c.Long), nil
	case classfile.KindDouble:
		return len(g.longs) + g.internDouble(c.Double), nil
	default:
		return 0, fmt.Errorf("jazz: ldc2 of %v", c.Kind)
	}
}

// Alphabet identifiers for the per-kind Huffman codes.
type alphabet int

const (
	aUtf8 alphabet = iota
	aClass
	aField
	aMethod
	aIMeth
	aLdc
	aLdc2
	aCVInt
	aCVFloat
	aCVLong
	aCVDouble
	aCVString
	numAlphabets
)

// size returns the symbol-space size of an alphabet given the pool.
func (g *globalPool) size(a alphabet) int {
	switch a {
	case aUtf8:
		return len(g.utf8)
	case aClass:
		return len(g.classes)
	case aField:
		return len(g.fields)
	case aMethod:
		return len(g.methods)
	case aIMeth:
		return len(g.imeths)
	case aLdc:
		return len(g.ints) + len(g.floats) + len(g.strings)
	case aLdc2:
		return len(g.longs) + len(g.doubles)
	case aCVInt:
		return len(g.ints)
	case aCVFloat:
		return len(g.floats)
	case aCVLong:
		return len(g.longs)
	case aCVDouble:
		return len(g.doubles)
	case aCVString:
		return len(g.strings)
	}
	return 0
}
