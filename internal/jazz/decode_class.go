package jazz

import (
	"fmt"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/strip"
)

func (r *jzReader) class() (*classfile.ClassFile, error) {
	minor, err := r.bits(16)
	if err != nil {
		return nil, err
	}
	major, err := r.bits(16)
	if err != nil {
		return nil, err
	}
	access, err := r.bits(16)
	if err != nil {
		return nil, err
	}
	hasSuper, err := r.bit()
	if err != nil {
		return nil, err
	}
	hasInner, err := r.bit()
	if err != nil {
		return nil, err
	}
	synth, err := r.bit()
	if err != nil {
		return nil, err
	}
	depr, err := r.bit()
	if err != nil {
		return nil, err
	}
	this, err := r.classRef()
	if err != nil {
		return nil, err
	}
	b := classfile.NewEmptyBuilder(uint16(access))
	b.SetThisClass(this)
	b.CF.MinorVersion = uint16(minor)
	b.CF.MajorVersion = uint16(major)
	if hasSuper {
		super, err := r.classRef()
		if err != nil {
			return nil, err
		}
		b.SetSuperClass(super)
	}
	nIfaces, err := r.bits(16)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nIfaces; i++ {
		name, err := r.classRef()
		if err != nil {
			return nil, err
		}
		b.AddInterface(name)
	}
	if hasInner {
		n, err := r.bits(16)
		if err != nil {
			return nil, err
		}
		ic := &classfile.InnerClassesAttr{}
		ic.NameIndex = b.Utf8("InnerClasses")
		for i := uint64(0); i < n; i++ {
			acc, err := r.bits(16)
			if err != nil {
				return nil, err
			}
			inner, err := r.classRef()
			if err != nil {
				return nil, err
			}
			entry := classfile.InnerClass{AccessFlags: uint16(acc), Inner: b.Class(inner)}
			hasOuter, err := r.bit()
			if err != nil {
				return nil, err
			}
			if hasOuter {
				outer, err := r.classRef()
				if err != nil {
					return nil, err
				}
				entry.Outer = b.Class(outer)
			}
			hasName, err := r.bit()
			if err != nil {
				return nil, err
			}
			if hasName {
				name, err := r.utf8Ref()
				if err != nil {
					return nil, err
				}
				entry.InnerName = b.Utf8(name)
			}
			ic.Entries = append(ic.Entries, entry)
		}
		b.CF.Attrs = append(b.CF.Attrs, ic)
	}
	addSynthDepr(b, &b.CF.Attrs, synth, depr)

	nFields, err := r.bits(16)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nFields; i++ {
		if err := r.field(b); err != nil {
			return nil, err
		}
	}
	nMethods, err := r.bits(16)
	if err != nil {
		return nil, err
	}
	decoded := make(map[*classfile.CodeAttr][]bytecode.Instruction)
	for i := uint64(0); i < nMethods; i++ {
		if err := r.method(b, decoded); err != nil {
			return nil, err
		}
	}
	cf, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := strip.RenumberWithCode(cf, decoded); err != nil {
		return nil, err
	}
	return cf, nil
}

func addSynthDepr(b *classfile.Builder, attrs *[]classfile.Attribute, synth, depr bool) {
	if synth {
		a := &classfile.SyntheticAttr{}
		a.NameIndex = b.Utf8("Synthetic")
		*attrs = append(*attrs, a)
	}
	if depr {
		a := &classfile.DeprecatedAttr{}
		a.NameIndex = b.Utf8("Deprecated")
		*attrs = append(*attrs, a)
	}
}

func (r *jzReader) field(b *classfile.Builder) error {
	access, err := r.bits(16)
	if err != nil {
		return err
	}
	name, err := r.utf8Ref()
	if err != nil {
		return err
	}
	desc, err := r.utf8Ref()
	if err != nil {
		return err
	}
	hasConst, err := r.bit()
	if err != nil {
		return err
	}
	synth, err := r.bit()
	if err != nil {
		return err
	}
	depr, err := r.bit()
	if err != nil {
		return err
	}
	m := b.AddField(uint16(access), name, desc)
	if hasConst {
		t, err := classfile.ParseFieldDescriptor(desc)
		if err != nil {
			return err
		}
		var idx uint16
		switch {
		case t.Dims == 0 && (t.Base == 'I' || t.Base == 'Z' || t.Base == 'B' || t.Base == 'C' || t.Base == 'S'):
			sub, err := r.ref(aCVInt)
			if err != nil {
				return err
			}
			idx = b.Int(r.g.ints[sub])
		case t.Dims == 0 && t.Base == 'F':
			sub, err := r.ref(aCVFloat)
			if err != nil {
				return err
			}
			idx = b.Float(r.g.floats[sub])
		case t.Dims == 0 && t.Base == 'J':
			sub, err := r.ref(aCVLong)
			if err != nil {
				return err
			}
			idx = b.Long(r.g.longs[sub])
		case t.Dims == 0 && t.Base == 'D':
			sub, err := r.ref(aCVDouble)
			if err != nil {
				return err
			}
			idx = b.Double(r.g.doubles[sub])
		default:
			sub, err := r.ref(aCVString)
			if err != nil {
				return err
			}
			idx = b.String(r.g.utf8[r.g.strings[sub]])
		}
		b.AttachConstantValue(m, idx)
	}
	addSynthDepr(b, &m.Attrs, synth, depr)
	return nil
}

func (r *jzReader) method(b *classfile.Builder, decoded map[*classfile.CodeAttr][]bytecode.Instruction) error {
	access, err := r.bits(16)
	if err != nil {
		return err
	}
	name, err := r.utf8Ref()
	if err != nil {
		return err
	}
	desc, err := r.utf8Ref()
	if err != nil {
		return err
	}
	hasCode, err := r.bit()
	if err != nil {
		return err
	}
	hasExc, err := r.bit()
	if err != nil {
		return err
	}
	synth, err := r.bit()
	if err != nil {
		return err
	}
	depr, err := r.bit()
	if err != nil {
		return err
	}
	m := b.AddMethod(uint16(access), name, desc)
	if hasExc {
		n, err := r.bits(16)
		if err != nil {
			return err
		}
		names := make([]string, n)
		for i := range names {
			if names[i], err = r.classRef(); err != nil {
				return err
			}
		}
		b.AttachExceptions(m, names)
	}
	if hasCode {
		attr, insns, err := r.code(b)
		if err != nil {
			return fmt.Errorf("method %s: %w", name, err)
		}
		b.AttachCode(m, attr)
		decoded[attr] = insns
	}
	addSynthDepr(b, &m.Attrs, synth, depr)
	return nil
}

func (r *jzReader) code(b *classfile.Builder) (*classfile.CodeAttr, []bytecode.Instruction, error) {
	maxStack, err := r.bits(16)
	if err != nil {
		return nil, nil, err
	}
	maxLocals, err := r.bits(16)
	if err != nil {
		return nil, nil, err
	}
	attr := &classfile.CodeAttr{MaxStack: uint16(maxStack), MaxLocals: uint16(maxLocals)}
	nHandlers, err := r.bits(16)
	if err != nil {
		return nil, nil, err
	}
	for i := uint64(0); i < nHandlers; i++ {
		var h classfile.ExceptionHandler
		start, err := r.bits(16)
		if err != nil {
			return nil, nil, err
		}
		end, err := r.bits(16)
		if err != nil {
			return nil, nil, err
		}
		hp, err := r.bits(16)
		if err != nil {
			return nil, nil, err
		}
		h.StartPC, h.EndPC, h.HandlerPC = uint16(start), uint16(end), uint16(hp)
		hasCatch, err := r.bit()
		if err != nil {
			return nil, nil, err
		}
		if hasCatch {
			name, err := r.classRef()
			if err != nil {
				return nil, nil, err
			}
			h.CatchType = b.Class(name)
		}
		attr.Handlers = append(attr.Handlers, h)
	}
	codeLen, err := r.bits(32)
	if err != nil {
		return nil, nil, err
	}
	if codeLen > 1<<26 {
		return nil, nil, fmt.Errorf("jazz: implausible code length %d", codeLen)
	}
	var insns []bytecode.Instruction
	pos := 0
	for pos < int(codeLen) {
		in, err := r.insn(b, pos)
		if err != nil {
			return nil, nil, fmt.Errorf("at offset %d: %w", pos, err)
		}
		insns = append(insns, in)
		pos += in.Size()
	}
	if pos != int(codeLen) {
		return nil, nil, fmt.Errorf("jazz: code ends at %d, want %d", pos, codeLen)
	}
	return attr, insns, nil
}

func (r *jzReader) insn(b *classfile.Builder, pos int) (bytecode.Instruction, error) {
	in := bytecode.Instruction{Offset: pos}
	opb, err := r.bits(8)
	if err != nil {
		return in, err
	}
	if bytecode.Op(opb) == bytecode.Wide {
		in.Wide = true
		if opb, err = r.bits(8); err != nil {
			return in, err
		}
	}
	in.Op = bytecode.Op(opb)
	switch bytecode.FormatOf(in.Op) {
	case bytecode.FmtNone:
	case bytecode.FmtLocal:
		w := uint(8)
		if in.Wide {
			w = 16
		}
		v, err := r.bits(w)
		if err != nil {
			return in, err
		}
		in.A = int(v)
	case bytecode.FmtIinc:
		w := uint(8)
		if in.Wide {
			w = 16
		}
		v, err := r.bits(w)
		if err != nil {
			return in, err
		}
		in.A = int(v)
		d, err := r.bits(w)
		if err != nil {
			return in, err
		}
		if in.Wide {
			in.B = int(int16(d))
		} else {
			in.B = int(int8(d))
		}
	case bytecode.FmtSByte:
		v, err := r.bits(8)
		if err != nil {
			return in, err
		}
		in.A = int(int8(v))
	case bytecode.FmtSShort:
		v, err := r.bits(16)
		if err != nil {
			return in, err
		}
		in.A = int(int16(v))
	case bytecode.FmtNewArray:
		v, err := r.bits(8)
		if err != nil {
			return in, err
		}
		in.A = int(v)
	case bytecode.FmtCP1, bytecode.FmtCP2:
		if err := r.cpOperand(b, &in); err != nil {
			return in, err
		}
	case bytecode.FmtInvokeInterface:
		sub, err := r.ref(aIMeth)
		if err != nil {
			return in, err
		}
		owner, name, desc, err := r.g.memberContent(aIMeth, sub)
		if err != nil {
			return in, err
		}
		in.A = int(b.InterfaceMethodref(owner, name, desc))
		count, err := r.bits(8)
		if err != nil {
			return in, err
		}
		in.B = int(count)
	case bytecode.FmtMultiANewArray:
		name, err := r.classRef()
		if err != nil {
			return in, err
		}
		in.A = int(b.Class(name))
		dims, err := r.bits(8)
		if err != nil {
			return in, err
		}
		in.B = int(dims)
	case bytecode.FmtBranch2:
		v, err := r.bits(16)
		if err != nil {
			return in, err
		}
		in.A = pos + int(int16(v))
	case bytecode.FmtBranch4:
		v, err := r.bits(32)
		if err != nil {
			return in, err
		}
		in.A = pos + int(int32(v))
	case bytecode.FmtTableSwitch:
		def, err := r.bits(32)
		if err != nil {
			return in, err
		}
		low, err := r.bits(32)
		if err != nil {
			return in, err
		}
		n, err := r.bits(32)
		if err != nil {
			return in, err
		}
		if n > 1<<20 {
			return in, fmt.Errorf("jazz: tableswitch %d targets", n)
		}
		in.Default = pos + int(int32(def))
		in.Low = int32(low)
		in.High = in.Low + int32(n) - 1
		in.Targets = make([]int, n)
		for i := range in.Targets {
			t, err := r.bits(32)
			if err != nil {
				return in, err
			}
			in.Targets[i] = pos + int(int32(t))
		}
	case bytecode.FmtLookupSwitch:
		def, err := r.bits(32)
		if err != nil {
			return in, err
		}
		n, err := r.bits(32)
		if err != nil {
			return in, err
		}
		if n > 1<<20 {
			return in, fmt.Errorf("jazz: lookupswitch %d pairs", n)
		}
		in.Default = pos + int(int32(def))
		in.Keys = make([]int32, n)
		in.Targets = make([]int, n)
		for i := range in.Keys {
			k, err := r.bits(32)
			if err != nil {
				return in, err
			}
			t, err := r.bits(32)
			if err != nil {
				return in, err
			}
			in.Keys[i] = int32(k)
			in.Targets[i] = pos + int(int32(t))
		}
	default:
		return in, fmt.Errorf("jazz: cannot decode opcode 0x%02x", opb)
	}
	return in, nil
}

func (r *jzReader) cpOperand(b *classfile.Builder, in *bytecode.Instruction) error {
	g := r.g
	switch in.Op {
	case bytecode.Ldc, bytecode.LdcW:
		sub, err := r.ref(aLdc)
		if err != nil {
			return err
		}
		switch {
		case sub < len(g.ints):
			in.A = int(b.Int(g.ints[sub]))
		case sub < len(g.ints)+len(g.floats):
			in.A = int(b.Float(g.floats[sub-len(g.ints)]))
		case sub < len(g.ints)+len(g.floats)+len(g.strings):
			in.A = int(b.String(g.utf8[g.strings[sub-len(g.ints)-len(g.floats)]]))
		default:
			return fmt.Errorf("jazz: ldc union %d out of range", sub)
		}
	case bytecode.Ldc2W:
		sub, err := r.ref(aLdc2)
		if err != nil {
			return err
		}
		switch {
		case sub < len(g.longs):
			in.A = int(b.Long(g.longs[sub]))
		case sub < len(g.longs)+len(g.doubles):
			in.A = int(b.Double(g.doubles[sub-len(g.longs)]))
		default:
			return fmt.Errorf("jazz: ldc2 union %d out of range", sub)
		}
	case bytecode.Getfield, bytecode.Putfield, bytecode.Getstatic, bytecode.Putstatic:
		sub, err := r.ref(aField)
		if err != nil {
			return err
		}
		owner, name, desc, err := g.memberContent(aField, sub)
		if err != nil {
			return err
		}
		in.A = int(b.Fieldref(owner, name, desc))
	case bytecode.Invokevirtual, bytecode.Invokespecial, bytecode.Invokestatic:
		sub, err := r.ref(aMethod)
		if err != nil {
			return err
		}
		owner, name, desc, err := g.memberContent(aMethod, sub)
		if err != nil {
			return err
		}
		in.A = int(b.Methodref(owner, name, desc))
	case bytecode.New, bytecode.Anewarray, bytecode.Checkcast, bytecode.Instanceof:
		name, err := r.classRef()
		if err != nil {
			return err
		}
		in.A = int(b.Class(name))
	default:
		return fmt.Errorf("jazz: unexpected cp instruction %s", in.Op)
	}
	return nil
}
