package jazz

import (
	"testing"
)

// FuzzJazzDecode feeds arbitrary bytes to the Jazz-format decoder. Any
// input may fail, but none may panic or return classes without error.
func FuzzJazzDecode(f *testing.F) {
	cfs, _ := corpus(f, "209_db")
	packed, err := Pack(cfs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(packed)
	f.Add(packed[:len(packed)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Unpack(data)
		if err != nil {
			return
		}
		for i, cf := range out {
			if cf == nil {
				t.Fatalf("class %d is nil without an error", i)
			}
		}
	})
}
