package jazz

import (
	"encoding/binary"
	"fmt"
	"math"

	"classpack/internal/archive"
	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/encoding/huffman"
	"classpack/internal/encoding/varint"
)

// magic identifies a Jazz archive produced by this package.
var magic = [4]byte{'J', 'A', 'Z', '1'}

// jzWriter runs the two-pass structure walk: counting symbol frequencies,
// then emitting Huffman-coded references into one bitstream.
type jzWriter struct {
	g        *globalPool
	counting bool
	counts   [numAlphabets][]int
	codes    [numAlphabets]*huffman.Code
	bw       *huffman.BitWriter
}

func (w *jzWriter) ref(a alphabet, sym int) {
	if w.counting {
		w.counts[a][sym]++
		return
	}
	w.codes[a].Encode(w.bw, sym)
}

func (w *jzWriter) bits(v uint64, n uint) {
	if !w.counting {
		w.bw.WriteBits(v, n)
	}
}

// Pack encodes stripped classfiles into a Jazz archive.
func Pack(cfs []*classfile.ClassFile) ([]byte, error) {
	g := newGlobalPool()
	for _, cf := range cfs {
		if err := g.addFile(cf); err != nil {
			return nil, err
		}
	}
	w := &jzWriter{g: g, counting: true}
	for a := alphabet(0); a < numAlphabets; a++ {
		w.counts[a] = make([]int, g.size(a))
	}
	if err := w.walk(cfs); err != nil {
		return nil, err
	}
	// Build the fixed per-kind codes from global frequencies (§13.1).
	lengths := make([][]uint8, numAlphabets)
	for a := alphabet(0); a < numAlphabets; a++ {
		used := false
		for _, c := range w.counts[a] {
			if c > 0 {
				used = true
				break
			}
		}
		if !used {
			lengths[a] = make([]uint8, g.size(a))
			continue
		}
		code, err := huffman.New(w.counts[a])
		if err != nil {
			return nil, err
		}
		w.codes[a] = code
		lengths[a] = code.Lengths()
	}
	w.counting = false
	w.bw = &huffman.BitWriter{}
	if err := w.walk(cfs); err != nil {
		return nil, err
	}
	bitstream := w.bw.Bytes()

	// Header section: pool table + codebooks, DEFLATE-compressed.
	var header []byte
	header = g.serialize(header)
	for a := alphabet(0); a < numAlphabets; a++ {
		header = varint.AppendUint(header, uint64(len(lengths[a])))
		header = append(header, lengths[a]...)
	}
	header = varint.AppendUint(header, uint64(len(cfs)))
	compHeader, err := archive.Flate(header)
	if err != nil {
		return nil, err
	}

	out := append([]byte{}, magic[:]...)
	out = varint.AppendUint(out, uint64(len(compHeader)))
	out = varint.AppendUint(out, uint64(len(header)))
	out = append(out, compHeader...)
	out = varint.AppendUint(out, uint64(len(bitstream)))
	return append(out, bitstream...), nil
}

// serialize writes the global pool table (varint cross references).
func (g *globalPool) serialize(out []byte) []byte {
	out = varint.AppendUint(out, uint64(len(g.utf8)))
	for _, s := range g.utf8 {
		out = varint.AppendUint(out, uint64(len(s)))
		out = append(out, s...)
	}
	out = varint.AppendUint(out, uint64(len(g.ints)))
	for _, v := range g.ints {
		out = varint.AppendInt(out, int64(v))
	}
	out = varint.AppendUint(out, uint64(len(g.floats)))
	for _, v := range g.floats {
		out = binary.BigEndian.AppendUint32(out, math.Float32bits(v))
	}
	out = varint.AppendUint(out, uint64(len(g.longs)))
	for _, v := range g.longs {
		out = varint.AppendInt(out, v)
	}
	out = varint.AppendUint(out, uint64(len(g.doubles)))
	for _, v := range g.doubles {
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(v))
	}
	appendRefList := func(out []byte, list []int) []byte {
		out = varint.AppendUint(out, uint64(len(list)))
		for _, v := range list {
			out = varint.AppendUint(out, uint64(v))
		}
		return out
	}
	out = appendRefList(out, g.classes)
	out = appendRefList(out, g.strings)
	appendPairList := func(out []byte, list [][2]int) []byte {
		out = varint.AppendUint(out, uint64(len(list)))
		for _, p := range list {
			out = varint.AppendUint(out, uint64(p[0]))
			out = varint.AppendUint(out, uint64(p[1]))
		}
		return out
	}
	out = appendPairList(out, g.nats)
	out = appendPairList(out, g.fields)
	out = appendPairList(out, g.methods)
	return appendPairList(out, g.imeths)
}

func (w *jzWriter) walk(cfs []*classfile.ClassFile) error {
	for _, cf := range cfs {
		if err := w.class(cf); err != nil {
			return fmt.Errorf("jazz: %s: %w", cf.ThisClassName(), err)
		}
	}
	return nil
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// extAttrs extracts the flag-encoded attributes common to all levels.
func extAttrs(attrs []classfile.Attribute) (synth, depr bool) {
	for _, a := range attrs {
		switch a.(type) {
		case *classfile.SyntheticAttr:
			synth = true
		case *classfile.DeprecatedAttr:
			depr = true
		}
	}
	return
}

func (w *jzWriter) class(cf *classfile.ClassFile) error {
	g := w.g
	w.bits(uint64(cf.MinorVersion), 16)
	w.bits(uint64(cf.MajorVersion), 16)
	w.bits(uint64(cf.AccessFlags), 16)
	synth, depr := extAttrs(cf.Attrs)
	var inner *classfile.InnerClassesAttr
	for _, a := range cf.Attrs {
		switch a := a.(type) {
		case *classfile.InnerClassesAttr:
			inner = a
		case *classfile.SyntheticAttr, *classfile.DeprecatedAttr:
		default:
			return fmt.Errorf("unsupported class attribute %s", a.AttrName())
		}
	}
	w.bits(boolBit(cf.SuperClass != 0), 1)
	w.bits(boolBit(inner != nil), 1)
	w.bits(boolBit(synth), 1)
	w.bits(boolBit(depr), 1)
	sub, err := g.classOf(cf, cf.ThisClass)
	if err != nil {
		return err
	}
	w.ref(aClass, sub)
	if cf.SuperClass != 0 {
		if sub, err = g.classOf(cf, cf.SuperClass); err != nil {
			return err
		}
		w.ref(aClass, sub)
	}
	w.bits(uint64(len(cf.Interfaces)), 16)
	for _, i := range cf.Interfaces {
		if sub, err = g.classOf(cf, i); err != nil {
			return err
		}
		w.ref(aClass, sub)
	}
	if inner != nil {
		w.bits(uint64(len(inner.Entries)), 16)
		for _, e := range inner.Entries {
			w.bits(uint64(e.AccessFlags), 16)
			if sub, err = g.classOf(cf, e.Inner); err != nil {
				return err
			}
			w.ref(aClass, sub)
			w.bits(boolBit(e.Outer != 0), 1)
			if e.Outer != 0 {
				if sub, err = g.classOf(cf, e.Outer); err != nil {
					return err
				}
				w.ref(aClass, sub)
			}
			w.bits(boolBit(e.InnerName != 0), 1)
			if e.InnerName != 0 {
				if sub, err = g.utf8Of(cf, e.InnerName); err != nil {
					return err
				}
				w.ref(aUtf8, sub)
			}
		}
	}
	w.bits(uint64(len(cf.Fields)), 16)
	for i := range cf.Fields {
		if err := w.field(cf, &cf.Fields[i]); err != nil {
			return err
		}
	}
	w.bits(uint64(len(cf.Methods)), 16)
	for i := range cf.Methods {
		if err := w.method(cf, &cf.Methods[i]); err != nil {
			return err
		}
	}
	return nil
}

func (w *jzWriter) field(cf *classfile.ClassFile, m *classfile.Member) error {
	g := w.g
	w.bits(uint64(m.AccessFlags), 16)
	sub, err := g.utf8Of(cf, m.Name)
	if err != nil {
		return err
	}
	w.ref(aUtf8, sub)
	if sub, err = g.utf8Of(cf, m.Desc); err != nil {
		return err
	}
	w.ref(aUtf8, sub)
	synth, depr := extAttrs(m.Attrs)
	var cv *classfile.ConstantValueAttr
	for _, a := range m.Attrs {
		if c, ok := a.(*classfile.ConstantValueAttr); ok {
			cv = c
		}
	}
	w.bits(boolBit(cv != nil), 1)
	w.bits(boolBit(synth), 1)
	w.bits(boolBit(depr), 1)
	if cv != nil {
		c := &cf.Pool[cv.Index]
		switch c.Kind {
		case classfile.KindInteger:
			w.ref(aCVInt, g.internInt(c.Int))
		case classfile.KindFloat:
			w.ref(aCVFloat, g.internFloat(c.Float))
		case classfile.KindLong:
			w.ref(aCVLong, g.internLong(c.Long))
		case classfile.KindDouble:
			w.ref(aCVDouble, g.internDouble(c.Double))
		case classfile.KindString:
			w.ref(aCVString, g.internString(cf.Utf8At(c.Str)))
		default:
			return fmt.Errorf("ConstantValue of %v", c.Kind)
		}
		// One tag bit pair selects the subpool on decode... the field
		// descriptor determines it instead; nothing extra to write.
	}
	return nil
}

func (w *jzWriter) method(cf *classfile.ClassFile, m *classfile.Member) error {
	g := w.g
	w.bits(uint64(m.AccessFlags), 16)
	sub, err := g.utf8Of(cf, m.Name)
	if err != nil {
		return err
	}
	w.ref(aUtf8, sub)
	if sub, err = g.utf8Of(cf, m.Desc); err != nil {
		return err
	}
	w.ref(aUtf8, sub)
	synth, depr := extAttrs(m.Attrs)
	code := classfile.CodeOf(m)
	var exc *classfile.ExceptionsAttr
	for _, a := range m.Attrs {
		if e, ok := a.(*classfile.ExceptionsAttr); ok {
			exc = e
		}
	}
	w.bits(boolBit(code != nil), 1)
	w.bits(boolBit(exc != nil), 1)
	w.bits(boolBit(synth), 1)
	w.bits(boolBit(depr), 1)
	if exc != nil {
		w.bits(uint64(len(exc.Classes)), 16)
		for _, c := range exc.Classes {
			if sub, err = g.classOf(cf, c); err != nil {
				return err
			}
			w.ref(aClass, sub)
		}
	}
	if code != nil {
		return w.code(cf, code)
	}
	return nil
}

func (w *jzWriter) code(cf *classfile.ClassFile, code *classfile.CodeAttr) error {
	g := w.g
	w.bits(uint64(code.MaxStack), 16)
	w.bits(uint64(code.MaxLocals), 16)
	w.bits(uint64(len(code.Handlers)), 16)
	for _, h := range code.Handlers {
		w.bits(uint64(h.StartPC), 16)
		w.bits(uint64(h.EndPC), 16)
		w.bits(uint64(h.HandlerPC), 16)
		w.bits(boolBit(h.CatchType != 0), 1)
		if h.CatchType != 0 {
			sub, err := g.classOf(cf, h.CatchType)
			if err != nil {
				return err
			}
			w.ref(aClass, sub)
		}
	}
	w.bits(uint64(len(code.Code)), 32)
	insns, err := bytecode.Decode(code.Code)
	if err != nil {
		return err
	}
	for i := range insns {
		if err := w.insn(cf, &insns[i]); err != nil {
			return err
		}
	}
	return nil
}

func (w *jzWriter) insn(cf *classfile.ClassFile, in *bytecode.Instruction) error {
	g := w.g
	if in.Wide {
		w.bits(uint64(bytecode.Wide), 8)
	}
	w.bits(uint64(in.Op), 8)
	switch bytecode.FormatOf(in.Op) {
	case bytecode.FmtNone:
	case bytecode.FmtLocal:
		if in.Wide {
			w.bits(uint64(in.A), 16)
		} else {
			w.bits(uint64(in.A), 8)
		}
	case bytecode.FmtIinc:
		if in.Wide {
			w.bits(uint64(in.A), 16)
			w.bits(uint64(uint16(int16(in.B))), 16)
		} else {
			w.bits(uint64(in.A), 8)
			w.bits(uint64(uint8(int8(in.B))), 8)
		}
	case bytecode.FmtSByte:
		w.bits(uint64(uint8(int8(in.A))), 8)
	case bytecode.FmtSShort:
		w.bits(uint64(uint16(int16(in.A))), 16)
	case bytecode.FmtNewArray:
		w.bits(uint64(in.A), 8)
	case bytecode.FmtCP1, bytecode.FmtCP2:
		switch in.Op {
		case bytecode.Ldc, bytecode.LdcW:
			sub, err := g.ldcUnion(cf, uint16(in.A))
			if err != nil {
				return err
			}
			w.ref(aLdc, sub)
		case bytecode.Ldc2W:
			sub, err := g.ldc2Union(cf, uint16(in.A))
			if err != nil {
				return err
			}
			w.ref(aLdc2, sub)
		case bytecode.Getfield, bytecode.Putfield, bytecode.Getstatic, bytecode.Putstatic:
			_, sub, err := g.memberOf(cf, uint16(in.A))
			if err != nil {
				return err
			}
			w.ref(aField, sub)
		case bytecode.Invokevirtual, bytecode.Invokespecial, bytecode.Invokestatic:
			_, sub, err := g.memberOf(cf, uint16(in.A))
			if err != nil {
				return err
			}
			w.ref(aMethod, sub)
		case bytecode.New, bytecode.Anewarray, bytecode.Checkcast, bytecode.Instanceof:
			sub, err := g.classOf(cf, uint16(in.A))
			if err != nil {
				return err
			}
			w.ref(aClass, sub)
		default:
			return fmt.Errorf("jazz: unexpected cp instruction %s", in.Op)
		}
	case bytecode.FmtInvokeInterface:
		_, sub, err := g.memberOf(cf, uint16(in.A))
		if err != nil {
			return err
		}
		w.ref(aIMeth, sub)
		w.bits(uint64(in.B), 8)
	case bytecode.FmtMultiANewArray:
		sub, err := g.classOf(cf, uint16(in.A))
		if err != nil {
			return err
		}
		w.ref(aClass, sub)
		w.bits(uint64(in.B), 8)
	case bytecode.FmtBranch2:
		w.bits(uint64(uint16(int16(in.A-in.Offset))), 16)
	case bytecode.FmtBranch4:
		w.bits(uint64(uint32(int32(in.A-in.Offset))), 32)
	case bytecode.FmtTableSwitch:
		w.bits(uint64(uint32(int32(in.Default-in.Offset))), 32)
		w.bits(uint64(uint32(in.Low)), 32)
		w.bits(uint64(uint32(len(in.Targets))), 32)
		for _, t := range in.Targets {
			w.bits(uint64(uint32(int32(t-in.Offset))), 32)
		}
	case bytecode.FmtLookupSwitch:
		w.bits(uint64(uint32(int32(in.Default-in.Offset))), 32)
		w.bits(uint64(uint32(len(in.Keys))), 32)
		for i, k := range in.Keys {
			w.bits(uint64(uint32(k)), 32)
			w.bits(uint64(uint32(int32(in.Targets[i]-in.Offset))), 32)
		}
	default:
		return fmt.Errorf("jazz: cannot encode %s", in.Op)
	}
	return nil
}
