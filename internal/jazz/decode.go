package jazz

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"classpack/internal/archive"
	"classpack/internal/classfile"
	"classpack/internal/corrupt"
	"classpack/internal/encoding/huffman"
	"classpack/internal/encoding/varint"
)

type jzReader struct {
	g     *globalPool
	codes [numAlphabets]*huffman.Code
	br    *huffman.BitReader
}

func (r *jzReader) ref(a alphabet) (int, error) {
	if r.codes[a] == nil {
		return 0, fmt.Errorf("jazz: reference in empty alphabet %d", a)
	}
	return r.codes[a].Decode(r.br)
}

func (r *jzReader) bits(n uint) (uint64, error) { return r.br.ReadBits(n) }

func (r *jzReader) bit() (bool, error) {
	v, err := r.br.ReadBits(1)
	return v == 1, err
}

// Unpack decodes a Jazz archive back into classfiles.
func Unpack(data []byte) ([]*classfile.ClassFile, error) {
	if len(data) < 4 || !bytes.Equal(data[:4], magic[:]) {
		return nil, corrupt.Errorf("jazz", 0, "bad magic")
	}
	pos := 4
	next := func() (int, error) {
		if pos >= len(data) {
			return 0, corrupt.Errorf("jazz", int64(pos), "truncated archive")
		}
		v, n, err := varint.Uint(data[pos:])
		pos += n
		if err != nil {
			return 0, err
		}
		if v > uint64(len(data))*64+1<<20 {
			return 0, corrupt.Errorf("jazz", int64(pos), "implausible length %d", v)
		}
		return int(v), nil
	}
	compLen, err := next()
	if err != nil {
		return nil, err
	}
	rawLen, err := next()
	if err != nil {
		return nil, err
	}
	if pos+compLen > len(data) {
		return nil, corrupt.Errorf("jazz", int64(pos), "truncated header")
	}
	// Inflation is capped at the declared length so a bomb header stops
	// at rawLen+1 bytes instead of materializing its full expansion.
	header, err := archive.InflateLimit(data[pos:pos+compLen], int64(rawLen))
	if err != nil {
		return nil, err
	}
	if len(header) != rawLen {
		return nil, corrupt.Errorf("jazz", int64(pos), "header length %d, want %d", len(header), rawLen)
	}
	pos += compLen
	bsLen, err := next()
	if err != nil {
		return nil, err
	}
	if pos+bsLen > len(data) {
		return nil, corrupt.Errorf("jazz", int64(pos), "truncated bitstream")
	}
	bitstream := data[pos : pos+bsLen]

	g, rest, classCount, codes, err := parseHeader(header)
	if err != nil {
		return nil, err
	}
	_ = rest
	r := &jzReader{g: g, codes: codes, br: huffman.NewBitReader(bitstream)}
	// Preallocation trusts classCount only up to a token amount; a lying
	// count costs append growth, not an up-front allocation.
	prealloc := classCount
	if prealloc > 4096 {
		prealloc = 4096
	}
	out := make([]*classfile.ClassFile, 0, prealloc)
	for i := 0; i < classCount; i++ {
		cf, err := r.class()
		if err != nil {
			return nil, fmt.Errorf("jazz: class %d: %w", i, err)
		}
		out = append(out, cf)
	}
	return out, nil
}

func parseHeader(header []byte) (*globalPool, []byte, int, [numAlphabets]*huffman.Code, error) {
	var codes [numAlphabets]*huffman.Code
	g := newGlobalPool()
	pos := 0
	next := func() (int, error) {
		if pos >= len(header) {
			return 0, corrupt.Errorf("jazz", int64(pos), "truncated header")
		}
		v, n, err := varint.Uint(header[pos:])
		pos += n
		if err != nil {
			return 0, err
		}
		if v > uint64(len(header))+1<<20 {
			return 0, fmt.Errorf("jazz: implausible value %d", v)
		}
		return int(v), nil
	}
	fail := func(err error) (*globalPool, []byte, int, [numAlphabets]*huffman.Code, error) {
		return nil, nil, 0, codes, err
	}
	n, err := next()
	if err != nil {
		return fail(err)
	}
	if n < 0 || n > len(header) {
		return fail(fmt.Errorf("jazz: implausible utf8 count %d", n))
	}
	for i := 0; i < n; i++ {
		l, err := next()
		if err != nil {
			return fail(err)
		}
		if l < 0 || pos+l > len(header) {
			return fail(fmt.Errorf("jazz: truncated utf8 table"))
		}
		g.internUtf8(string(header[pos : pos+l]))
		pos += l
	}
	if n, err = next(); err != nil {
		return fail(err)
	}
	for i := 0; i < n; i++ {
		if pos >= len(header) {
			return fail(fmt.Errorf("jazz: truncated int table"))
		}
		v, used, verr := varint.Int(header[pos:])
		pos += used
		if verr != nil {
			return fail(verr)
		}
		g.internInt(int32(v))
	}
	if n, err = next(); err != nil {
		return fail(err)
	}
	for i := 0; i < n; i++ {
		if pos+4 > len(header) {
			return fail(fmt.Errorf("jazz: truncated float table"))
		}
		g.internFloat(math.Float32frombits(binary.BigEndian.Uint32(header[pos:])))
		pos += 4
	}
	if n, err = next(); err != nil {
		return fail(err)
	}
	for i := 0; i < n; i++ {
		if pos >= len(header) {
			return fail(fmt.Errorf("jazz: truncated long table"))
		}
		v, used, verr := varint.Int(header[pos:])
		pos += used
		if verr != nil {
			return fail(verr)
		}
		g.internLong(v)
	}
	if n, err = next(); err != nil {
		return fail(err)
	}
	for i := 0; i < n; i++ {
		if pos+8 > len(header) {
			return fail(fmt.Errorf("jazz: truncated double table"))
		}
		g.internDouble(math.Float64frombits(binary.BigEndian.Uint64(header[pos:])))
		pos += 8
	}
	readRefList := func() ([]int, error) {
		n, err := next()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > len(header) {
			return nil, fmt.Errorf("jazz: implausible list length %d", n)
		}
		out := make([]int, n)
		for i := range out {
			if out[i], err = next(); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	classes, err := readRefList()
	if err != nil {
		return fail(err)
	}
	for _, u := range classes {
		if u >= len(g.utf8) {
			return fail(fmt.Errorf("jazz: class utf8 %d out of range", u))
		}
		g.internClass(g.utf8[u])
	}
	strs, err := readRefList()
	if err != nil {
		return fail(err)
	}
	for _, u := range strs {
		if u >= len(g.utf8) {
			return fail(fmt.Errorf("jazz: string utf8 %d out of range", u))
		}
		g.internString(g.utf8[u])
	}
	readPairList := func() ([][2]int, error) {
		n, err := next()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > len(header) {
			return nil, fmt.Errorf("jazz: implausible list length %d", n)
		}
		out := make([][2]int, n)
		for i := range out {
			if out[i][0], err = next(); err != nil {
				return nil, err
			}
			if out[i][1], err = next(); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	nats, err := readPairList()
	if err != nil {
		return fail(err)
	}
	for _, p := range nats {
		if p[0] >= len(g.utf8) || p[1] >= len(g.utf8) {
			return fail(fmt.Errorf("jazz: NAT utf8 out of range"))
		}
		g.internNAT(g.utf8[p[0]], g.utf8[p[1]])
	}
	for _, dst := range []struct {
		kind classfile.ConstKind
	}{{classfile.KindFieldref}, {classfile.KindMethodref}, {classfile.KindInterfaceMethodref}} {
		pairs, err := readPairList()
		if err != nil {
			return fail(err)
		}
		for _, p := range pairs {
			if p[0] >= len(g.classes) || p[1] >= len(g.nats) {
				return fail(fmt.Errorf("jazz: member subindex out of range"))
			}
			nat := g.nats[p[1]]
			g.internMember(dst.kind, g.utf8[g.classes[p[0]]], g.utf8[nat[0]], g.utf8[nat[1]])
		}
	}
	for a := alphabet(0); a < numAlphabets; a++ {
		n, err := next()
		if err != nil {
			return fail(err)
		}
		if n != g.size(a) {
			return fail(fmt.Errorf("jazz: alphabet %d size %d, pool says %d", a, n, g.size(a)))
		}
		if pos+n > len(header) {
			return fail(fmt.Errorf("jazz: truncated codebook"))
		}
		lengths := make([]uint8, n)
		copy(lengths, header[pos:pos+n])
		pos += n
		allZero := true
		for _, l := range lengths {
			if l != 0 {
				allZero = false
				break
			}
		}
		if !allZero {
			code, err := huffman.FromLengths(lengths)
			if err != nil {
				return fail(err)
			}
			codes[a] = code
		}
	}
	classCount, err := next()
	if err != nil {
		return fail(err)
	}
	return g, header[pos:], classCount, codes, nil
}

// memberContent resolves a member subpool entry to (class, name, desc).
func (g *globalPool) memberContent(a alphabet, sub int) (owner, name, desc string, err error) {
	var pair [2]int
	switch a {
	case aField:
		if sub >= len(g.fields) {
			return "", "", "", fmt.Errorf("jazz: field %d out of range", sub)
		}
		pair = g.fields[sub]
	case aMethod:
		if sub >= len(g.methods) {
			return "", "", "", fmt.Errorf("jazz: method %d out of range", sub)
		}
		pair = g.methods[sub]
	default:
		if sub >= len(g.imeths) {
			return "", "", "", fmt.Errorf("jazz: interface method %d out of range", sub)
		}
		pair = g.imeths[sub]
	}
	nat := g.nats[pair[1]]
	return g.utf8[g.classes[pair[0]]], g.utf8[nat[0]], g.utf8[nat[1]], nil
}

func (r *jzReader) className(sub int) (string, error) {
	if sub >= len(r.g.classes) {
		return "", fmt.Errorf("jazz: class %d out of range", sub)
	}
	return r.g.utf8[r.g.classes[sub]], nil
}

func (r *jzReader) classRef() (string, error) {
	sub, err := r.ref(aClass)
	if err != nil {
		return "", err
	}
	return r.className(sub)
}

func (r *jzReader) utf8Ref() (string, error) {
	sub, err := r.ref(aUtf8)
	if err != nil {
		return "", err
	}
	if sub >= len(r.g.utf8) {
		return "", fmt.Errorf("jazz: utf8 %d out of range", sub)
	}
	return r.g.utf8[sub], nil
}
