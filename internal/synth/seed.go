package synth

import (
	"fmt"
	"strings"

	"classpack/internal/classfile"
	"classpack/internal/minijava"
)

// The paper's three smallest GUI-free benchmarks are variants of a Towers
// of Hanoi demo applet. We seed those corpora with genuine compiler output:
// a Hanoi solver written in MiniJava and compiled by internal/minijava, so
// part of every Hanoi corpus is bytecode a real compiler produced.
const hanoiSource = `
class HanoiMain {
    public static void main(String[] args) {
        Solver s;
        Stats st;
        s = new Solver();
        st = new Stats();
        System.out.println("towers of hanoi");
        System.out.println(s.solve(10, 0, 2, 1, st));
        System.out.println(st.reads());
    }
}

class Solver {
    int moves;
    public int solve(int n, int from, int to, int via, Stats st) {
        int ignore;
        if (0 < n) {
            ignore = this.solve(n - 1, from, via, to, st);
            moves = moves + 1;
            ignore = st.record(from, to);
            ignore = this.solve(n - 1, via, to, from, st);
        }
        return moves;
    }
}

class Stats {
    int[] perPeg;
    int total;
    boolean ready;
    public int record(int from, int to) {
        if (!ready) {
            perPeg = new int[3];
            ready = true;
        }
        perPeg[to] = perPeg[to] + 1;
        total = total + 1;
        return total;
    }
    public int reads() {
        int i;
        int acc;
        i = 0;
        acc = 0;
        if (ready) {
            while (i < perPeg.length) {
                acc = acc + perPeg[i] * (i + 1);
                i = i + 1;
            }
        }
        return acc;
    }
}

class Peg extends Stats {
    public int record(int from, int to) {
        return from + to;
    }
}
`

// seedClasses compiles the profile's seed program, if it has one, and
// registers the classes for cross-references from generated code.
func (w *world) seedClasses() ([]*classfile.ClassFile, int, error) {
	if !strings.HasPrefix(w.p.Name, "Hanoi") {
		return nil, 0, nil
	}
	cfs, err := minijava.Compile(hanoiSource, minijava.CompileOptions{
		Package:    "hanoi",
		SourceFile: "Hanoi.java",
	})
	if err != nil {
		return nil, 0, fmt.Errorf("synth: seed program: %w", err)
	}
	total := 0
	for _, cf := range cfs {
		size, err := strippedSize(cf)
		if err != nil {
			return nil, 0, err
		}
		total += size
		gc := &genClass{name: cf.ThisClassName()}
		for mi := range cf.Methods {
			m := &cf.Methods[mi]
			if cf.MemberName(m) == "<init>" || m.AccessFlags&classfile.AccStatic != 0 {
				continue
			}
			gc.methods = append(gc.methods, genMember{
				name: cf.MemberName(m),
				desc: cf.MemberDesc(m),
			})
		}
		w.classes = append(w.classes, gc)
	}
	return cfs, total, nil
}
