package synth

import (
	"fmt"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
)

// codeGen emits one stack-correct method body through the assembler,
// tracking operand-slot depth and local allocation so the generated code
// decodes, verifies, and exercises the packer's stack simulation the way
// compiler output would.
type codeGen struct {
	w      *world
	b      *classfile.Builder
	gc     *genClass
	a      *bytecode.Assembler
	static bool
	super  string

	locals   []classfile.Type // slot-indexed; wide values own two slots
	loadable []bool           // definitely assigned on every path (readable)
	cond     int              // conditional nesting depth during emission
	depth    int              // current operand slots
	maxDepth int
	budget   int // remaining statements

	handlers []handlerReq
}

// nested emits body at one deeper conditional level: locals first assigned
// inside it are not definitely assigned afterwards and stay unloadable,
// keeping generated code acceptable to the JVM's dataflow verifier.
func (g *codeGen) nested(body func()) {
	g.cond++
	body()
	g.cond--
}

type handlerReq struct {
	start, end, handler bytecode.Label
	catchType           string // "" for finally
}

func (g *codeGen) push(n int) {
	g.depth += n
	if g.depth > g.maxDepth {
		g.maxDepth = g.depth
	}
}

func (g *codeGen) pop(n int) { g.depth -= n }

// newLocal allocates a local slot (two for wide types). The slot is
// loadable by later statements only when allocated in straight-line code.
func (g *codeGen) newLocal(t classfile.Type) int {
	slot := len(g.locals)
	g.locals = append(g.locals, t)
	g.loadable = append(g.loadable, g.cond == 0)
	if t.IsWide() {
		g.locals = append(g.locals, classfile.Type{})
		g.loadable = append(g.loadable, false)
	}
	return slot
}

// localsOf lists the definitely-assigned slots holding a given base kind.
func (g *codeGen) localsOf(base byte) []int {
	var out []int
	for i, t := range g.locals {
		if t.Dims == 0 && t.Base == base && g.loadable[i] {
			out = append(out, i)
		}
	}
	return out
}

// genMethod generates a method with the given descriptor and appends it to
// the class. super is the superclass name (needed by constructors).
func (w *world) genMethod(b *classfile.Builder, gc *genClass, name, desc string, static bool, super string) {
	flags := uint16(classfile.AccPublic)
	if static {
		flags |= classfile.AccStatic
	}
	m := b.AddMethod(flags, name, desc)
	params, ret, err := classfile.ParseMethodDescriptor(desc)
	if err != nil {
		panic(fmt.Sprintf("synth: bad generated descriptor %q: %v", desc, err))
	}
	g := &codeGen{
		w: w, b: b, gc: gc, a: bytecode.NewAssembler(),
		static: static, super: super,
		budget: 1 + w.rng.Intn(2*w.p.BodyStmts),
	}
	if !static {
		g.locals = append(g.locals, classfile.ObjectType(gc.name))
		g.loadable = append(g.loadable, true)
	}
	for _, p := range params {
		g.newLocal(p)
	}
	gc.methods = append(gc.methods, genMember{name: name, desc: desc, static: static})

	if name == "<init>" {
		g.emitLoadLocal(classfile.ObjectType(gc.name), 0)
		g.a.CP(bytecode.Invokespecial, b.Methodref(super, "<init>", "()V"))
		g.pop(1)
	}
	for g.budget > 0 {
		g.budget--
		g.stmt(2)
	}
	g.ret(ret)

	code, err := g.a.Assemble()
	if err != nil {
		panic(fmt.Sprintf("synth: assemble %s.%s: %v", gc.name, name, err))
	}
	attr := &classfile.CodeAttr{
		MaxStack:  uint16(g.maxDepth + 2),
		MaxLocals: uint16(len(g.locals)),
		Code:      code,
	}
	for _, h := range g.handlers {
		eh := classfile.ExceptionHandler{
			StartPC:   uint16(g.a.OffsetOf(h.start)),
			EndPC:     uint16(g.a.OffsetOf(h.end)),
			HandlerPC: uint16(g.a.OffsetOf(h.handler)),
		}
		if h.catchType != "" {
			eh.CatchType = b.Class(h.catchType)
		}
		attr.Handlers = append(attr.Handlers, eh)
	}
	g.attachDebug(attr)
	b.AttachCode(m, attr)
}

// attachDebug adds the debugging attributes javac emits by default
// (stripped again by the §2 canonicalization, but present in the
// "as distributed" jar baseline of Table 1).
func (g *codeGen) attachDebug(attr *classfile.CodeAttr) {
	r := g.w.rng
	lnt := &classfile.LineNumberTableAttr{}
	lnt.NameIndex = g.b.Utf8("LineNumberTable")
	line := 10 + r.Intn(400)
	for off := 0; off < len(attr.Code); off += 3 + r.Intn(9) {
		lnt.Entries = append(lnt.Entries, classfile.LineNumber{
			StartPC: uint16(off), Line: uint16(line),
		})
		line += 1 + r.Intn(3)
	}
	attr.Attrs = append(attr.Attrs, lnt)

	lvt := &classfile.LocalVariableTableAttr{}
	lvt.NameIndex = g.b.Utf8("LocalVariableTable")
	for slot, t := range g.locals {
		if t == (classfile.Type{}) {
			continue // upper half of a wide local
		}
		name := "this"
		if slot > 0 || g.static {
			name = pick(r, nounWords)
		}
		lvt.Entries = append(lvt.Entries, classfile.LocalVariable{
			StartPC: 0, Length: uint16(len(attr.Code)),
			Name: g.b.Utf8(name), Desc: g.b.Utf8(t.String()), Slot: uint16(slot),
		})
	}
	attr.Attrs = append(attr.Attrs, lvt)
}

// genTableInit emits an mpegaudio-style static initializer filling integer
// arrays with constant tables.
func (w *world) genTableInit(b *classfile.Builder, gc *genClass) {
	m := b.AddMethod(classfile.AccPublic|classfile.AccStatic, "initTables", "()V")
	g := &codeGen{w: w, b: b, gc: gc, a: bytecode.NewAssembler(), static: true, super: "java/lang/Object"}
	nTables := 1 + w.rng.Intn(3)
	for t := 0; t < nTables; t++ {
		n := 16 + w.rng.Intn(48)
		slot := g.newLocal(classfile.Type{Dims: 1, Base: 'I'})
		g.constInt(n)
		g.a.NewArray(10) // T_INT
		g.a.Local(bytecode.Astore, slot)
		g.pop(1)
		for i := 0; i < n; i++ {
			g.a.Local(bytecode.Aload, slot)
			g.push(1)
			g.constInt(i)
			g.constInt(w.rng.Intn(1 << 16))
			g.a.Op(bytecode.Iastore)
			g.pop(3)
		}
	}
	g.a.Op(bytecode.Return)
	code, err := g.a.Assemble()
	if err != nil {
		panic(fmt.Sprintf("synth: table init: %v", err))
	}
	b.AttachCode(m, &classfile.CodeAttr{
		MaxStack: uint16(g.maxDepth + 2), MaxLocals: uint16(len(g.locals)), Code: code,
	})
	gc.methods = append(gc.methods, genMember{name: "initTables", desc: "()V", static: true})
}

func (g *codeGen) ret(t classfile.Type) {
	switch {
	case t.Slots() == 0:
		g.a.Op(bytecode.Return)
	case t.Dims > 0 || t.Base == 'L':
		g.a.Op(bytecode.AconstNull)
		g.push(1)
		g.a.Op(bytecode.Areturn)
		g.pop(1)
	case t.Base == 'J':
		g.longExpr(1)
		g.a.Op(bytecode.Lreturn)
		g.pop(2)
	case t.Base == 'D':
		g.doubleExpr(1)
		g.a.Op(bytecode.Dreturn)
		g.pop(2)
	case t.Base == 'F':
		g.floatExpr(1)
		g.a.Op(bytecode.Freturn)
		g.pop(1)
	default:
		g.intExpr(1)
		g.a.Op(bytecode.Ireturn)
		g.pop(1)
	}
}

func (g *codeGen) emitLoadLocal(t classfile.Type, slot int) {
	switch {
	case t.IsRef():
		g.a.Local(bytecode.Aload, slot)
		g.push(1)
	case t.Base == 'J':
		g.a.Local(bytecode.Lload, slot)
		g.push(2)
	case t.Base == 'D':
		g.a.Local(bytecode.Dload, slot)
		g.push(2)
	case t.Base == 'F':
		g.a.Local(bytecode.Fload, slot)
		g.push(1)
	default:
		g.a.Local(bytecode.Iload, slot)
		g.push(1)
	}
}

// constInt pushes an int constant using the shortest instruction.
func (g *codeGen) constInt(v int) {
	switch {
	case v >= -1 && v <= 5:
		g.a.Op(bytecode.Iconst0 + bytecode.Op(v))
	case v >= -128 && v <= 127:
		g.a.SByte(v)
	case v >= -32768 && v <= 32767:
		g.a.SShort(v)
	default:
		g.a.Ldc(g.b.Int(int32(v)))
	}
	g.push(1)
}

// intExpr pushes one int value; d bounds recursion depth.
func (g *codeGen) intExpr(d int) {
	r := g.w.rng
	if d <= 0 {
		g.constInt(r.Intn(64))
		return
	}
	switch r.Intn(12) {
	case 0, 1:
		g.constInt(r.Intn(200) - 20)
	case 2:
		// A shared "interesting" constant via ldc.
		vals := []int{0xff, 0xffff, 1000, 1024, 31, 4096, 65599, 123456}
		g.a.Ldc(g.b.Int(int32(pick(r, vals))))
		g.push(1)
	case 3, 4:
		if ls := g.localsOf('I'); len(ls) > 0 {
			g.emitLoadLocal(classfile.PrimitiveType('I'), pick(r, ls))
			return
		}
		g.constInt(r.Intn(32))
	case 5, 6:
		if g.loadOwnField('I') {
			return
		}
		g.constInt(r.Intn(16))
	case 7:
		g.intExpr(d - 1)
		g.intExpr(d - 1)
		g.a.Op(pick(r, []bytecode.Op{bytecode.Iadd, bytecode.Isub, bytecode.Imul,
			bytecode.Iand, bytecode.Ior, bytecode.Ixor, bytecode.Ishl, bytecode.Ishr}))
		g.pop(1)
	case 8:
		g.intExpr(d - 1)
		g.intExpr(d - 1)
		fn := pick(r, []string{"max", "min"})
		g.a.CP(bytecode.Invokestatic, g.b.Methodref("java/lang/Math", fn, "(II)I"))
		g.pop(1)
	case 9:
		g.stringExpr(d - 1)
		g.a.CP(bytecode.Invokevirtual, g.b.Methodref("java/lang/String", "length", "()I"))
	case 10:
		g.longExpr(d - 1)
		g.a.Op(bytecode.L2i)
		g.pop(1)
	default:
		g.intExpr(d - 1)
		g.a.CP(bytecode.Invokestatic, g.b.Methodref("java/lang/Math", "abs", "(I)I"))
	}
}

// loadOwnField pushes a field of the given primitive base from this class
// if one exists; reports success.
func (g *codeGen) loadOwnField(base byte) bool {
	var cands []genMember
	for _, f := range g.gc.fields {
		if f.desc == string(base) && (f.static || !g.static) {
			cands = append(cands, f)
		}
	}
	if len(cands) == 0 {
		return false
	}
	f := pick(g.w.rng, cands)
	slots := 1
	if base == 'J' || base == 'D' {
		slots = 2
	}
	if f.static {
		g.a.CP(bytecode.Getstatic, g.b.Fieldref(g.gc.name, f.name, f.desc))
		g.push(slots)
		return true
	}
	g.a.Local(bytecode.Aload, 0)
	g.push(1)
	g.a.CP(bytecode.Getfield, g.b.Fieldref(g.gc.name, f.name, f.desc))
	g.pop(1)
	g.push(slots)
	return true
}

func (g *codeGen) longExpr(d int) {
	r := g.w.rng
	if d <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			g.a.Op(bytecode.Lconst0 + bytecode.Op(r.Intn(2)))
			g.push(2)
		} else {
			g.a.Ldc2(g.b.Long(r.Int63n(1 << 40)))
			g.push(2)
		}
		return
	}
	switch r.Intn(4) {
	case 0:
		if ls := g.localsOf('J'); len(ls) > 0 {
			g.emitLoadLocal(classfile.PrimitiveType('J'), pick(r, ls))
			return
		}
		g.intExpr(d - 1)
		g.a.Op(bytecode.I2l)
		g.push(1)
	case 1:
		g.intExpr(d - 1)
		g.a.Op(bytecode.I2l)
		g.push(1)
	case 2:
		g.longExpr(d - 1)
		g.longExpr(d - 1)
		g.a.Op(pick(r, []bytecode.Op{bytecode.Ladd, bytecode.Lsub, bytecode.Lmul, bytecode.Land}))
		g.pop(2)
	default:
		g.a.CP(bytecode.Invokestatic, g.b.Methodref("java/lang/System", "currentTimeMillis", "()J"))
		g.push(2)
	}
}

func (g *codeGen) floatExpr(d int) {
	r := g.w.rng
	if d <= 0 || r.Intn(2) == 0 {
		if r.Intn(2) == 0 {
			g.a.Op(bytecode.Fconst0 + bytecode.Op(r.Intn(3)))
			g.push(1)
		} else {
			g.a.Ldc(g.b.Float(float32(r.Intn(100)) / 4))
			g.push(1)
		}
		return
	}
	if r.Intn(2) == 0 {
		g.intExpr(d - 1)
		g.a.Op(bytecode.I2f)
		return
	}
	g.floatExpr(d - 1)
	g.floatExpr(d - 1)
	g.a.Op(pick(r, []bytecode.Op{bytecode.Fadd, bytecode.Fsub, bytecode.Fmul}))
	g.pop(1)
}

func (g *codeGen) doubleExpr(d int) {
	r := g.w.rng
	if d <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			g.a.Op(bytecode.Dconst0 + bytecode.Op(r.Intn(2)))
			g.push(2)
		} else {
			g.a.Ldc2(g.b.Double(float64(r.Intn(10000)) / 16))
			g.push(2)
		}
		return
	}
	switch r.Intn(4) {
	case 0:
		if ls := g.localsOf('D'); len(ls) > 0 {
			g.emitLoadLocal(classfile.PrimitiveType('D'), pick(r, ls))
			return
		}
		g.intExpr(d - 1)
		g.a.Op(bytecode.I2d)
		g.push(1)
	case 1:
		g.doubleExpr(d - 1)
		g.a.CP(bytecode.Invokestatic, g.b.Methodref("java/lang/Math",
			pick(r, []string{"sqrt", "floor"}), "(D)D"))
	case 2:
		g.doubleExpr(d - 1)
		g.doubleExpr(d - 1)
		g.a.Op(pick(r, []bytecode.Op{bytecode.Dadd, bytecode.Dsub, bytecode.Dmul, bytecode.Ddiv}))
		g.pop(2)
	default:
		g.intExpr(d - 1)
		g.a.Op(bytecode.I2d)
		g.push(1)
	}
}

// stringExpr pushes a java/lang/String reference.
func (g *codeGen) stringExpr(d int) {
	r := g.w.rng
	if d <= 0 || r.Intn(2) == 0 {
		g.a.Ldc(g.b.String(g.w.sentence()))
		g.push(1)
		return
	}
	switch r.Intn(3) {
	case 0:
		g.intExpr(d - 1)
		g.a.CP(bytecode.Invokestatic, g.b.Methodref("java/lang/String", "valueOf", "(I)Ljava/lang/String;"))
	case 1:
		if ls := g.localsOfRef("java/lang/String"); len(ls) > 0 {
			g.a.Local(bytecode.Aload, pick(r, ls))
			g.push(1)
			return
		}
		g.a.Ldc(g.b.String(g.w.sentence()))
		g.push(1)
	default:
		g.stringExpr(d - 1)
		g.stringExpr(d - 1)
		g.a.CP(bytecode.Invokevirtual, g.b.Methodref("java/lang/String", "concat",
			"(Ljava/lang/String;)Ljava/lang/String;"))
		g.pop(1)
	}
}

func (g *codeGen) localsOfRef(name string) []int {
	var out []int
	for i, t := range g.locals {
		if t.Dims == 0 && t.Base == 'L' && t.Name == name && g.loadable[i] {
			out = append(out, i)
		}
	}
	return out
}
