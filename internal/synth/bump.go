package synth

import (
	"bytes"
	"math/rand"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
)

// MutateClass derives a behaviorally-tweaked variant of one serialized
// class: the first mutable instruction in method order — a bipush/sipush
// immediate or an iconst — has its constant changed, and the class is
// re-serialized. The mutation is verifier-safe (the replacement pushes
// the same type with the same width) and deterministic. ok reports
// whether the class held a mutable instruction; when false, data is
// returned unchanged.
func MutateClass(data []byte) (out []byte, ok bool, err error) {
	cf, err := classfile.Parse(data)
	if err != nil {
		return nil, false, err
	}
	for mi := range cf.Methods {
		for _, a := range cf.Methods[mi].Attrs {
			c, isCode := a.(*classfile.CodeAttr)
			if !isCode {
				continue
			}
			insns, err := bytecode.Decode(c.Code)
			if err != nil {
				continue // synthetic corpora decode; skip oddities
			}
			for _, in := range insns {
				var mutated []byte
				switch {
				case in.Op == bytecode.Bipush:
					mutated = bytes.Clone(c.Code)
					mutated[in.Offset+1] ^= 0x01
				case in.Op == bytecode.Sipush:
					mutated = bytes.Clone(c.Code)
					mutated[in.Offset+2] ^= 0x01
				case in.Op >= bytecode.IconstM1 && in.Op <= bytecode.Iconst5:
					mutated = bytes.Clone(c.Code)
					// Rotate within the iconst family: same stack effect,
					// different constant.
					next := in.Op + 1
					if next > bytecode.Iconst5 {
						next = bytecode.IconstM1
					}
					mutated[in.Offset] = byte(next)
				default:
					continue
				}
				// Parse may alias c.Code to data; swap in the private copy
				// so the caller's input bytes stay untouched.
				c.Code = mutated
				out, err := classfile.Write(cf)
				if err != nil {
					return nil, false, err
				}
				return out, true, nil
			}
		}
	}
	return data, false, nil
}

// MutateClasses derives a synthetic "next release" of a serialized class
// corpus: each class is independently selected with probability rate
// (deterministically, from seed) and, when selected, mutated via
// MutateClass. At least one class is mutated whenever rate > 0 and the
// corpus has a mutable class, so a version bump is never a no-op.
// Unselected classes share the input slices; the input is never
// modified. changed reports how many classes actually differ.
func MutateClasses(files [][]byte, rate float64, seed int64) (out [][]byte, changed int, err error) {
	rng := rand.New(rand.NewSource(seed))
	out = make([][]byte, len(files))
	for i, f := range files {
		out[i] = f
		if rng.Float64() >= rate {
			continue
		}
		mut, ok, err := MutateClass(f)
		if err != nil {
			return nil, 0, err
		}
		if ok {
			out[i] = mut
			changed++
		}
	}
	if changed == 0 && rate > 0 {
		for i, f := range files {
			mut, ok, err := MutateClass(f)
			if err != nil {
				return nil, 0, err
			}
			if ok {
				out[i] = mut
				changed++
				break
			}
		}
	}
	return out, changed, nil
}
