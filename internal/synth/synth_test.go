package synth

import (
	"bytes"
	"testing"

	"classpack/internal/bytecode"
	"classpack/internal/classfile"
	"classpack/internal/core"
	"classpack/internal/strip"
)

func genSmall(t testing.TB, name string) []*classfile.ClassFile {
	t.Helper()
	p, err := ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfs, err := GenerateStripped(p, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfs) == 0 {
		t.Fatal("empty corpus")
	}
	return cfs
}

func TestGeneratedClassesAreValid(t *testing.T) {
	for _, name := range []string{"Hanoi", "222_mpegaudio", "javafig_dashO", "213_javac"} {
		t.Run(name, func(t *testing.T) {
			for _, cf := range genSmall(t, name) {
				if err := classfile.Verify(cf); err != nil {
					t.Fatalf("%s: %v", cf.ThisClassName(), err)
				}
				for mi := range cf.Methods {
					code := classfile.CodeOf(&cf.Methods[mi])
					if code == nil {
						continue
					}
					if err := bytecode.Check(code.Code); err != nil {
						t.Fatalf("%s.%s: %v", cf.ThisClassName(),
							cf.MemberName(&cf.Methods[mi]), err)
					}
				}
			}
		})
	}
}

func TestGeneratedClassesRoundTripClassfile(t *testing.T) {
	for _, cf := range genSmall(t, "202_jess") {
		data, err := classfile.Write(cf)
		if err != nil {
			t.Fatal(err)
		}
		cf2, err := classfile.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", cf.ThisClassName(), err)
		}
		data2, err := classfile.Write(cf2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("%s: parse∘write not identity", cf.ThisClassName())
		}
	}
}

func TestGeneratedCorpusPacksRoundTrip(t *testing.T) {
	// End-to-end: a generated corpus survives pack/unpack byte-for-byte.
	cfs := genSmall(t, "213_javac")
	want := make([][]byte, len(cfs))
	for i, cf := range cfs {
		data, err := classfile.Write(cf)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = data
	}
	packed, err := core.Pack(cfs, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	back, err := core.Unpack(packed)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	for i, cf := range back {
		got, err := classfile.Write(cf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("class %d (%s) differs after round trip", i, cf.ThisClassName())
		}
	}
	total := 0
	for _, d := range want {
		total += len(d)
	}
	if len(packed) >= total/2 {
		t.Errorf("packed %d bytes vs %d raw: less than 2x compression", len(packed), total)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t, "Hanoi")
	b := genSmall(t, "Hanoi")
	if len(a) != len(b) {
		t.Fatalf("class counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		da, _ := classfile.Write(a[i])
		db, _ := classfile.Write(b[i])
		if !bytes.Equal(da, db) {
			t.Fatalf("class %d differs between runs", i)
		}
	}
}

func TestGenerateHitsTarget(t *testing.T) {
	p, _ := ProfileByName("Hanoi")
	scale := 0.5
	cfs, err := GenerateStripped(p, scale)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, cf := range cfs {
		data, _ := classfile.Write(cf)
		total += len(data)
	}
	target := int(float64(p.TargetKB) * 1024 * scale)
	if total < target || total > target*2 {
		t.Fatalf("total %d not within [target, 2*target] for target %d", total, target)
	}
}

func TestObfuscatedProfileUsesShortNames(t *testing.T) {
	cfs := genSmall(t, "Hanoi_jax")
	long := 0
	total := 0
	for _, cf := range cfs {
		for mi := range cf.Methods {
			name := cf.MemberName(&cf.Methods[mi])
			if name == "<init>" || name == "run" {
				continue
			}
			total++
			if len(name) > 4 {
				long++
			}
		}
	}
	if total > 0 && long*4 > total {
		t.Fatalf("%d/%d obfuscated method names are long", long, total)
	}
}

func TestNumericProfileHasIntTables(t *testing.T) {
	cfs := genSmall(t, "222_mpegaudio")
	stores := 0
	for _, cf := range cfs {
		for mi := range cf.Methods {
			code := classfile.CodeOf(&cf.Methods[mi])
			if code == nil {
				continue
			}
			insns, err := bytecode.Decode(code.Code)
			if err != nil {
				t.Fatal(err)
			}
			for i := range insns {
				if insns[i].Op == bytecode.Iastore {
					stores++
				}
			}
		}
	}
	if stores < 50 {
		t.Fatalf("only %d iastore instructions; numeric tables missing", stores)
	}
}

func TestStripIdempotentOnCorpus(t *testing.T) {
	for _, cf := range genSmall(t, "icebrowserbean") {
		before, _ := classfile.Write(cf)
		if err := strip.Apply(cf, strip.Options{}); err != nil {
			t.Fatal(err)
		}
		after, _ := classfile.Write(cf)
		if !bytes.Equal(before, after) {
			t.Fatalf("%s: strip not idempotent on generated corpus", cf.ThisClassName())
		}
	}
}

func TestProfileLookup(t *testing.T) {
	if len(Profiles()) != 19 {
		t.Fatalf("got %d profiles, want 19", len(Profiles()))
	}
	for _, p := range Profiles() {
		if Description(p.Name) == "" {
			t.Errorf("no description for %s", p.Name)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestUnstrippedCarriesDebugInfo(t *testing.T) {
	p, _ := ProfileByName("Hanoi")
	cfs, err := Generate(p, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	unstripped, stripped := 0, 0
	sawLNT := false
	for _, cf := range cfs {
		if err := classfile.Verify(cf); err != nil {
			t.Fatalf("%s: %v", cf.ThisClassName(), err)
		}
		data, err := classfile.Write(cf)
		if err != nil {
			t.Fatal(err)
		}
		unstripped += len(data)
		for mi := range cf.Methods {
			if code := classfile.CodeOf(&cf.Methods[mi]); code != nil {
				for _, a := range code.Attrs {
					if _, ok := a.(*classfile.LineNumberTableAttr); ok {
						sawLNT = true
					}
				}
			}
		}
		if err := strip.Apply(cf, strip.Options{}); err != nil {
			t.Fatal(err)
		}
		data, err = classfile.Write(cf)
		if err != nil {
			t.Fatal(err)
		}
		stripped += len(data)
	}
	if !sawLNT {
		t.Fatal("no LineNumberTable in unstripped output")
	}
	// §2: stripping typically gives ~20% improvement; require a clear gap.
	if stripped >= unstripped*95/100 {
		t.Fatalf("stripping saved too little: %d -> %d", unstripped, stripped)
	}
}

func TestHanoiCorporaCarryCompilerOutput(t *testing.T) {
	cfs := genSmall(t, "Hanoi")
	found := map[string]bool{}
	for _, cf := range cfs {
		found[cf.ThisClassName()] = true
	}
	for _, want := range []string{"hanoi/HanoiMain", "hanoi/Solver", "hanoi/Stats", "hanoi/Peg"} {
		if !found[want] {
			t.Errorf("Hanoi corpus missing seeded class %s", want)
		}
	}
	// Non-Hanoi corpora do not carry the seed.
	for _, cf := range genSmall(t, "209_db") {
		if cf.ThisClassName() == "hanoi/Solver" {
			t.Fatal("seed leaked into 209_db")
		}
	}
}
