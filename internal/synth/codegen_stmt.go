package synth

import (
	"classpack/internal/bytecode"
	"classpack/internal/classfile"
)

// stmt emits one statement; the operand stack is empty on entry and exit.
// d bounds nesting depth of control structures.
func (g *codeGen) stmt(d int) {
	r := g.w.rng
	choices := 14
	if g.w.p.StringRich {
		choices = 17 // extra weight on string statements
	}
	switch c := r.Intn(choices); {
	case c <= 1:
		g.assignLocalStmt()
	case c == 2:
		g.assignFieldStmt()
	case c == 3 || c == 4:
		g.callStmt(d)
	case c == 5:
		g.printlnStmt(d)
	case c == 6 && d > 0:
		g.ifStmt(d)
	case c == 7 && d > 0:
		g.loopStmt(d)
	case c == 8 && d > 0:
		g.switchStmt(d)
	case c == 9 && d > 0:
		g.tryStmt(d)
	case c == 10:
		g.iincStmt()
	case c == 11:
		g.arrayStmt()
	case c == 12:
		g.interfaceCallStmt()
	default:
		g.stringBufferStmt(d)
	}
}

// assignLocalStmt declares or reuses a local and stores an expression.
func (g *codeGen) assignLocalStmt() {
	r := g.w.rng
	var t classfile.Type
	switch r.Intn(6) {
	case 0, 1, 2:
		t = classfile.PrimitiveType('I')
	case 3:
		t = classfile.PrimitiveType('J')
	case 4:
		t = classfile.PrimitiveType('D')
	default:
		t = classfile.ObjectType("java/lang/String")
	}
	reuse := -1
	if ls := g.localsOfType(t); len(ls) > 0 && r.Intn(2) == 0 {
		reuse = pick(r, ls)
	} else if len(g.locals) > 200 {
		return // avoid runaway frames
	}
	// Emit the value first: the slot is allocated only afterwards, so the
	// expression can never read the still-unassigned local.
	var store bytecode.Op
	slots := 1
	switch t.Base {
	case 'I':
		g.intExpr(2)
		store = bytecode.Istore
	case 'J':
		g.longExpr(2)
		store = bytecode.Lstore
		slots = 2
	case 'D':
		g.doubleExpr(2)
		store = bytecode.Dstore
		slots = 2
	default:
		g.stringExpr(2)
		store = bytecode.Astore
	}
	slot := reuse
	if slot < 0 {
		slot = g.newLocal(t)
	}
	g.a.Local(store, slot)
	g.pop(slots)
}

func (g *codeGen) localsOfType(t classfile.Type) []int {
	if t.Base == 'L' {
		return g.localsOfRef(t.Name)
	}
	return g.localsOf(t.Base)
}

// assignFieldStmt stores into one of this class's fields.
func (g *codeGen) assignFieldStmt() {
	var cands []genMember
	for _, f := range g.gc.fields {
		switch f.desc {
		case "I", "J", "D", "Ljava/lang/String;":
			if f.static || !g.static {
				cands = append(cands, f)
			}
		}
	}
	if len(cands) == 0 {
		g.assignLocalStmt()
		return
	}
	f := pick(g.w.rng, cands)
	if !f.static {
		g.a.Local(bytecode.Aload, 0)
		g.push(1)
	}
	slots := 1
	switch f.desc {
	case "I":
		g.intExpr(2)
	case "J":
		g.longExpr(2)
		slots = 2
	case "D":
		g.doubleExpr(2)
		slots = 2
	default:
		g.stringExpr(2)
	}
	ref := g.b.Fieldref(g.gc.name, f.name, f.desc)
	if f.static {
		g.a.CP(bytecode.Putstatic, ref)
		g.pop(slots)
	} else {
		g.a.CP(bytecode.Putfield, ref)
		g.pop(slots + 1)
	}
}

// pushArgsFor pushes argument expressions for a descriptor and returns the
// slot count pushed.
func (g *codeGen) pushArgsFor(desc string, d int) int {
	params, _, err := classfile.ParseMethodDescriptor(desc)
	if err != nil {
		panic(err)
	}
	slots := 0
	for _, p := range params {
		g.exprOf(p, d)
		slots += p.Slots()
	}
	return slots
}

func (g *codeGen) exprOf(t classfile.Type, d int) {
	switch {
	case t.Dims > 0:
		// A small fresh array of the element type.
		g.constInt(1 + g.w.rng.Intn(4))
		if t.Dims == 1 && t.Base != 'L' {
			g.a.NewArray(newArrayType(t.Base))
		} else {
			elem := t
			elem.Dims--
			g.a.CP(bytecode.Anewarray, g.b.Class(arrayElemName(elem)))
		}
	case t.Base == 'I', t.Base == 'Z', t.Base == 'B', t.Base == 'C', t.Base == 'S':
		g.intExpr(d)
	case t.Base == 'J':
		g.longExpr(d)
	case t.Base == 'F':
		g.floatExpr(d)
	case t.Base == 'D':
		g.doubleExpr(d)
	case t.Name == "java/lang/String":
		g.stringExpr(d)
	default:
		g.a.Op(bytecode.AconstNull)
		g.push(1)
	}
}

// arrayElemName renders the anewarray class operand for an element type.
func arrayElemName(t classfile.Type) string {
	if t.Dims == 0 && t.Base == 'L' {
		return t.Name
	}
	return t.String()
}

// newArrayType maps a primitive descriptor to the newarray type code.
func newArrayType(base byte) int {
	switch base {
	case 'Z':
		return 4
	case 'C':
		return 5
	case 'F':
		return 6
	case 'D':
		return 7
	case 'B':
		return 8
	case 'S':
		return 9
	case 'I':
		return 10
	case 'J':
		return 11
	}
	return 10
}

// popResult discards a call result.
func (g *codeGen) popResult(desc string) {
	_, ret, err := classfile.ParseMethodDescriptor(desc)
	if err != nil {
		panic(err)
	}
	switch ret.Slots() {
	case 1:
		g.a.Op(bytecode.Pop)
		g.pop(1)
	case 2:
		g.a.Op(bytecode.Pop2)
		g.pop(2)
	}
}

// callStmt invokes a method: own, another generated class's, or stdlib.
func (g *codeGen) callStmt(d int) {
	r := g.w.rng
	switch r.Intn(4) {
	case 0: // own instance or static method generated earlier
		var cands []genMember
		for _, m := range g.gc.methods {
			if m.name != "<init>" && (m.static || !g.static) {
				cands = append(cands, m)
			}
		}
		if len(cands) == 0 {
			g.stdlibCall(d)
			return
		}
		m := pick(r, cands)
		if m.static {
			n := g.pushArgsFor(m.desc, d)
			g.a.CP(bytecode.Invokestatic, g.b.Methodref(g.gc.name, m.name, m.desc))
			g.pop(n)
		} else {
			g.a.Local(bytecode.Aload, 0)
			g.push(1)
			n := g.pushArgsFor(m.desc, d)
			g.a.CP(bytecode.Invokevirtual, g.b.Methodref(g.gc.name, m.name, m.desc))
			g.pop(n + 1)
		}
		g.pushRet(m.desc)
		g.popResult(m.desc)
	case 1: // another generated class
		var classes []*genClass
		for _, c := range g.w.classes {
			if !c.iface && len(c.methods) > 0 {
				classes = append(classes, c)
			}
		}
		if len(classes) == 0 {
			g.stdlibCall(d)
			return
		}
		c := classes[zipfPick(r, len(classes))]
		var cands []genMember
		for _, m := range c.methods {
			if m.name != "<init>" {
				cands = append(cands, m)
			}
		}
		if len(cands) == 0 {
			g.stdlibCall(d)
			return
		}
		m := pick(r, cands)
		if m.static {
			n := g.pushArgsFor(m.desc, d)
			g.a.CP(bytecode.Invokestatic, g.b.Methodref(c.name, m.name, m.desc))
			g.pop(n)
		} else {
			// new C(); then the call.
			g.a.CP(bytecode.New, g.b.Class(c.name))
			g.push(1)
			g.a.Op(bytecode.Dup)
			g.push(1)
			g.a.CP(bytecode.Invokespecial, g.b.Methodref(c.name, "<init>", "()V"))
			g.pop(1)
			n := g.pushArgsFor(m.desc, d)
			g.a.CP(bytecode.Invokevirtual, g.b.Methodref(c.name, m.name, m.desc))
			g.pop(n + 1)
		}
		g.pushRet(m.desc)
		g.popResult(m.desc)
	default:
		g.stdlibCall(d)
	}
}

// pushRet accounts for a call's return value landing on the stack.
func (g *codeGen) pushRet(desc string) {
	_, ret, err := classfile.ParseMethodDescriptor(desc)
	if err != nil {
		panic(err)
	}
	g.push(ret.Slots())
}

// stdlibCall invokes a member of the simulated standard library, either a
// static or an instance method on a freshly constructed receiver.
func (g *codeGen) stdlibCall(d int) {
	r := g.w.rng
	if r.Intn(2) == 0 {
		site := pick(r, stdStatics)
		n := g.pushArgsFor(site.member.desc, d)
		g.a.CP(bytecode.Invokestatic, g.b.Methodref(site.class, site.member.name, site.member.desc))
		g.pop(n)
		g.pushRet(site.member.desc)
		g.popResult(site.member.desc)
		return
	}
	site := pick(r, stdInstance)
	g.a.CP(bytecode.New, g.b.Class(site.class))
	g.push(1)
	g.a.Op(bytecode.Dup)
	g.push(1)
	g.a.CP(bytecode.Invokespecial, g.b.Methodref(site.class, "<init>", "()V"))
	g.pop(1)
	n := g.pushArgsFor(site.member.desc, d)
	g.a.CP(bytecode.Invokevirtual, g.b.Methodref(site.class, site.member.name, site.member.desc))
	g.pop(n + 1)
	g.pushRet(site.member.desc)
	g.popResult(site.member.desc)
}

func (g *codeGen) printlnStmt(d int) {
	g.a.CP(bytecode.Getstatic, g.b.Fieldref("java/lang/System", "out", "Ljava/io/PrintStream;"))
	g.push(1)
	if g.w.rng.Intn(3) == 0 {
		g.intExpr(d)
		g.a.CP(bytecode.Invokevirtual, g.b.Methodref("java/io/PrintStream", "println", "(I)V"))
	} else {
		g.stringExpr(d)
		g.a.CP(bytecode.Invokevirtual, g.b.Methodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V"))
	}
	g.pop(2)
}

func (g *codeGen) ifStmt(d int) {
	r := g.w.rng
	elseL := g.a.NewLabel()
	endL := g.a.NewLabel()
	if r.Intn(2) == 0 {
		g.intExpr(1)
		g.a.Branch(pick(r, []bytecode.Op{bytecode.Ifeq, bytecode.Ifne, bytecode.Iflt,
			bytecode.Ifgt, bytecode.Ifle, bytecode.Ifge}), elseL)
		g.pop(1)
	} else {
		g.intExpr(1)
		g.intExpr(1)
		g.a.Branch(pick(r, []bytecode.Op{bytecode.IfIcmpeq, bytecode.IfIcmpne,
			bytecode.IfIcmplt, bytecode.IfIcmpge}), elseL)
		g.pop(2)
	}
	n := 1 + r.Intn(2)
	g.nested(func() {
		for i := 0; i < n; i++ {
			g.stmt(d - 1)
		}
	})
	if r.Intn(2) == 0 {
		g.a.Branch(bytecode.Goto, endL)
		g.a.Bind(elseL)
		g.nested(func() { g.stmt(d - 1) })
	} else {
		g.a.Bind(elseL)
	}
	g.a.Bind(endL)
}

func (g *codeGen) loopStmt(d int) {
	r := g.w.rng
	i := g.newLocal(classfile.PrimitiveType('I'))
	g.constInt(0)
	g.a.Local(bytecode.Istore, i)
	g.pop(1)
	loop := g.a.NewLabel()
	end := g.a.NewLabel()
	g.a.Bind(loop)
	g.emitLoadLocal(classfile.PrimitiveType('I'), i)
	g.constInt(2 + r.Intn(30))
	g.a.Branch(bytecode.IfIcmpge, end)
	g.pop(2)
	n := 1 + r.Intn(2)
	g.nested(func() {
		for k := 0; k < n; k++ {
			g.stmt(d - 1)
		}
	})
	g.a.Iinc(i, 1)
	g.a.Branch(bytecode.Goto, loop)
	g.a.Bind(end)
}

func (g *codeGen) switchStmt(d int) {
	r := g.w.rng
	g.intExpr(1)
	end := g.a.NewLabel()
	nCases := 2 + r.Intn(4)
	labels := make([]bytecode.Label, nCases)
	for i := range labels {
		labels[i] = g.a.NewLabel()
	}
	def := g.a.NewLabel()
	if r.Intn(2) == 0 {
		g.a.TableSwitch(int32(r.Intn(4)), labels, def)
	} else {
		keys := make([]int32, nCases)
		k := int32(r.Intn(10) - 5)
		for i := range keys {
			keys[i] = k
			k += int32(1 + r.Intn(100))
		}
		g.a.LookupSwitch(keys, labels, def)
	}
	g.pop(1)
	for _, l := range labels {
		g.a.Bind(l)
		g.nested(func() { g.stmt(d - 1) })
		g.a.Branch(bytecode.Goto, end)
	}
	g.a.Bind(def)
	g.a.Bind(end)
}

func (g *codeGen) tryStmt(d int) {
	r := g.w.rng
	start := g.a.NewLabel()
	endTry := g.a.NewLabel()
	handler := g.a.NewLabel()
	done := g.a.NewLabel()
	g.a.Bind(start)
	n := 1 + r.Intn(2)
	g.nested(func() {
		for i := 0; i < n; i++ {
			g.stmt(d - 1)
		}
	})
	g.a.Bind(endTry)
	g.a.Branch(bytecode.Goto, done)
	g.a.Bind(handler)
	// Handler entry: the thrown exception is on the stack.
	g.push(1)
	if r.Intn(2) == 0 {
		g.a.Op(bytecode.Pop)
		g.pop(1)
	} else {
		slot := g.newLocal(classfile.ObjectType("java/lang/Exception"))
		g.a.Local(bytecode.Astore, slot)
		g.pop(1)
	}
	g.a.Bind(done)
	catch := pick(r, []string{"java/lang/Exception", "java/lang/RuntimeException", "java/io/IOException", ""})
	g.handlers = append(g.handlers, handlerReq{start: start, end: endTry, handler: handler, catchType: catch})
}

func (g *codeGen) iincStmt() {
	if ls := g.localsOf('I'); len(ls) > 0 {
		g.a.Iinc(pick(g.w.rng, ls), g.w.rng.Intn(7)-3)
		return
	}
	g.assignLocalStmt()
}

// arrayStmt creates and pokes an int array.
func (g *codeGen) arrayStmt() {
	r := g.w.rng
	slot := g.newLocal(classfile.Type{Dims: 1, Base: 'I'})
	g.constInt(2 + r.Intn(16))
	g.a.NewArray(10)
	g.a.Local(bytecode.Astore, slot)
	g.pop(1)
	g.a.Local(bytecode.Aload, slot)
	g.push(1)
	g.constInt(r.Intn(2))
	g.intExpr(1)
	g.a.Op(bytecode.Iastore)
	g.pop(3)
}

// interfaceCallStmt exercises invokeinterface through an interface this
// class implements (Runnable counts).
func (g *codeGen) interfaceCallStmt() {
	if g.static {
		g.printlnStmt(1)
		return
	}
	if hasIface(g.b.CF, "java/lang/Runnable") {
		g.a.Local(bytecode.Aload, 0)
		g.push(1)
		g.a.InvokeInterface(g.b.InterfaceMethodref("java/lang/Runnable", "run", "()V"), 1)
		g.pop(1)
		return
	}
	// Find a generated interface this class implements.
	for _, ifc := range g.w.ifaces {
		if hasIface(g.b.CF, ifc.name) && len(ifc.methods) > 0 {
			m := pick(g.w.rng, ifc.methods)
			g.a.Local(bytecode.Aload, 0)
			g.push(1)
			n := g.pushArgsFor(m.desc, 1)
			params, _, _ := classfile.ParseMethodDescriptor(m.desc)
			count := 1
			for _, p := range params {
				count += p.Slots()
			}
			g.a.InvokeInterface(g.b.InterfaceMethodref(ifc.name, m.name, m.desc), count)
			g.pop(n + 1)
			g.pushRet(m.desc)
			g.popResult(m.desc)
			return
		}
	}
	g.printlnStmt(1)
}

// stringBufferStmt builds a string with StringBuffer, the dominant string
// pattern in 1.2-era compiled code.
func (g *codeGen) stringBufferStmt(d int) {
	sb := "java/lang/StringBuffer"
	g.a.CP(bytecode.New, g.b.Class(sb))
	g.push(1)
	g.a.Op(bytecode.Dup)
	g.push(1)
	g.a.CP(bytecode.Invokespecial, g.b.Methodref(sb, "<init>", "()V"))
	g.pop(1)
	n := 1 + g.w.rng.Intn(3)
	for i := 0; i < n; i++ {
		if g.w.rng.Intn(3) == 0 {
			g.intExpr(d)
			g.a.CP(bytecode.Invokevirtual, g.b.Methodref(sb, "append", "(I)Ljava/lang/StringBuffer;"))
			g.pop(1)
		} else {
			g.stringExpr(d)
			g.a.CP(bytecode.Invokevirtual, g.b.Methodref(sb, "append",
				"(Ljava/lang/String;)Ljava/lang/StringBuffer;"))
			g.pop(1)
		}
	}
	g.a.CP(bytecode.Invokevirtual, g.b.Methodref(sb, "toString", "()Ljava/lang/String;"))
	g.a.Op(bytecode.Pop)
	g.pop(1)
}
