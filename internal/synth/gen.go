package synth

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"classpack/internal/classfile"
	"classpack/internal/strip"
)

// Profile shapes one generated corpus; the built-in profiles mirror the
// paper's Table 1 benchmarks.
type Profile struct {
	Name string
	// TargetKB is the approximate total size of the stripped, uncompressed
	// classfiles (the paper's sj0r column).
	TargetKB int
	// PackageCount bounds the number of distinct packages.
	PackageCount int
	// AvgMethods and AvgFields shape class declarations.
	AvgMethods int
	AvgFields  int
	// BodyStmts is the average number of statements per method body.
	BodyStmts int
	// Obfuscated uses one/two-letter names (DashO/JAX-processed programs).
	Obfuscated bool
	// NumericTables adds mpegaudio-style static integer table
	// initializers, inflating integer constants.
	NumericTables bool
	// StringRich biases statement selection toward string constants.
	StringRich bool
}

// genMember is a declared member of a generated class.
type genMember struct {
	name   string
	desc   string
	static bool
}

// genClass is a class available for cross-references.
type genClass struct {
	name    string
	iface   bool
	fields  []genMember
	methods []genMember
}

// world is the state threaded through corpus generation.
type world struct {
	p       Profile
	rng     *rand.Rand
	pkgs    []string
	classes []*genClass // generated so far, referenceable
	ifaces  []*genClass
	nameSeq int
}

// Generate produces the corpus for a profile at the given scale factor
// (1.0 = the paper's sizes). Returned classfiles carry debugging
// attributes (SourceFile, LineNumberTable, LocalVariableTable) the way
// compiler output does; GenerateStripped applies the §2 canonicalization.
// The size target tracks the profile's TargetKB against the *stripped*
// sizes, matching the paper's sj0r column.
func Generate(p Profile, scale float64) ([]*classfile.ClassFile, error) {
	h := fnv.New64a()
	h.Write([]byte(p.Name))
	w := &world{p: p, rng: rand.New(rand.NewSource(int64(h.Sum64())))}
	w.makePackages()

	target := int(float64(p.TargetKB) * 1024 * scale)
	// Floor the target so even the smallest corpus spans several classes;
	// cross-file sharing is the point of the format.
	if target < 8192 {
		target = 8192
	}
	out, total, err := w.seedClasses()
	if err != nil {
		return nil, err
	}
	for total < target {
		cf, size, err := w.genClassFile()
		if err != nil {
			return nil, fmt.Errorf("synth %s: %w", p.Name, err)
		}
		out = append(out, cf)
		total += size
	}
	return out, nil
}

// GenerateStripped generates a corpus and applies the §2 strip, yielding
// the canonical classfiles all compressed formats consume.
func GenerateStripped(p Profile, scale float64) ([]*classfile.ClassFile, error) {
	cfs, err := Generate(p, scale)
	if err != nil {
		return nil, err
	}
	if err := strip.ApplyAll(cfs, strip.Options{}); err != nil {
		return nil, err
	}
	return cfs, nil
}

// strippedSize measures the stripped serialized size of a classfile
// without mutating it.
func strippedSize(cf *classfile.ClassFile) (int, error) {
	data, err := classfile.Write(cf)
	if err != nil {
		return 0, err
	}
	cp, err := classfile.Parse(data)
	if err != nil {
		return 0, err
	}
	if err := strip.Apply(cp, strip.Options{}); err != nil {
		return 0, err
	}
	out, err := classfile.Write(cp)
	if err != nil {
		return 0, err
	}
	return len(out), nil
}

func (w *world) makePackages() {
	roots := []string{"com/app", "com/app/core", "com/app/ui", "com/app/io",
		"com/app/util", "com/app/model", "com/app/event", "com/app/text",
		"org/lib", "org/lib/base", "org/lib/net", "org/lib/tools"}
	n := w.p.PackageCount
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		if i < len(roots) {
			w.pkgs = append(w.pkgs, roots[i])
		} else {
			w.pkgs = append(w.pkgs, fmt.Sprintf("%s/%s",
				roots[i%len(roots)], strings.ToLower(pick(w.rng, nounWords))))
		}
	}
}

func pick[T any](rng *rand.Rand, s []T) T { return s[rng.Intn(len(s))] }

// zipfPick picks an index into [0,n) biased strongly toward recent (high)
// indices, modelling locality of reference between classes.
func zipfPick(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	// Square the uniform sample: recent classes are referenced most.
	f := rng.Float64()
	return n - 1 - int(f*f*float64(n))
}

func (w *world) className() string {
	if w.p.Obfuscated {
		w.nameSeq++
		return obfName(w.nameSeq)
	}
	name := pick(w.rng, typeWords)
	if w.rng.Intn(2) == 0 {
		name = pick(w.rng, adjWords) + name
	}
	w.nameSeq++
	if w.nameSeq > 50 {
		name = fmt.Sprintf("%s%d", name, w.nameSeq%100)
	}
	return name
}

func obfName(seq int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	s := string(alpha[seq%26])
	if seq >= 26 {
		s += string(alpha[(seq/26)%26])
	}
	if seq >= 26*26 {
		s = fmt.Sprintf("%s%d", s, seq/(26*26))
	}
	return s
}

func (w *world) memberName(verb bool) string {
	if w.p.Obfuscated {
		w.nameSeq++
		return obfName(w.nameSeq)
	}
	if verb {
		n := pick(w.rng, verbWords) + strings.Title(pick(w.rng, nounWords))
		return n
	}
	return pick(w.rng, nounWords)
}

// fieldType draws a field type descriptor.
func (w *world) fieldType() string {
	switch w.rng.Intn(10) {
	case 0, 1, 2:
		return "I"
	case 3:
		return "J"
	case 4:
		return "D"
	case 5:
		return "Z"
	case 6:
		return "Ljava/lang/String;"
	case 7:
		if len(w.classes) > 0 {
			return "L" + w.classes[zipfPick(w.rng, len(w.classes))].name + ";"
		}
		return "Ljava/lang/Object;"
	case 8:
		return "[I"
	default:
		return "Ljava/lang/Object;"
	}
}

// genClassFile builds one class (or occasionally an interface), strips and
// serializes it, and registers it for future cross references.
func (w *world) genClassFile() (*classfile.ClassFile, int, error) {
	if len(w.classes) > 3 && w.rng.Intn(12) == 0 {
		return w.genInterface()
	}
	pkg := w.pkgs[w.rng.Intn(len(w.pkgs))]
	name := pkg + "/" + w.className()

	super := "java/lang/Object"
	if len(w.classes) > 2 && w.rng.Intn(3) == 0 {
		cand := w.classes[zipfPick(w.rng, len(w.classes))]
		if !cand.iface {
			super = cand.name
		}
	} else if w.rng.Intn(8) == 0 {
		super = "java/awt/Component"
	}

	b := classfile.NewBuilder(name, super, classfile.AccPublic|classfile.AccSuper)
	b.AttachSourceFile(simpleOf(name) + ".java")
	gc := &genClass{name: name}

	var implemented *genClass
	if w.rng.Intn(4) == 0 {
		b.AddInterface("java/lang/Runnable")
	} else if len(w.ifaces) > 0 && w.rng.Intn(3) == 0 {
		implemented = w.ifaces[w.rng.Intn(len(w.ifaces))]
		b.AddInterface(implemented.name)
	}

	nFields := 1 + w.rng.Intn(2*w.p.AvgFields)
	for i := 0; i < nFields; i++ {
		flags := uint16(classfile.AccPrivate)
		switch w.rng.Intn(5) {
		case 0:
			flags = classfile.AccPublic
		case 1:
			flags = classfile.AccProtected
		}
		static := w.rng.Intn(4) == 0
		if static {
			flags |= classfile.AccStatic
		}
		fname := w.memberName(false)
		desc := w.fieldType()
		f := b.AddField(flags, fname, desc)
		if static && w.rng.Intn(3) == 0 {
			flags |= classfile.AccFinal
			f.AccessFlags |= classfile.AccFinal
			switch desc {
			case "I", "Z":
				b.AttachConstantValue(f, b.Int(int32(w.rng.Intn(10000)-500)))
			case "J":
				b.AttachConstantValue(f, b.Long(w.rng.Int63n(1<<45)))
			case "D":
				b.AttachConstantValue(f, b.Double(float64(w.rng.Intn(1000))/8))
			case "Ljava/lang/String;":
				b.AttachConstantValue(f, b.String(w.sentence()))
			}
		}
		gc.fields = append(gc.fields, genMember{name: fname, desc: desc, static: flags&classfile.AccStatic != 0})
	}

	// Constructor.
	w.genMethod(b, gc, "<init>", "()V", false, super)

	if implemented != nil {
		for _, m := range implemented.methods {
			w.genMethod(b, gc, m.name, m.desc, false, super)
		}
	}
	if hasIface(b.CF, "java/lang/Runnable") {
		w.genMethod(b, gc, "run", "()V", false, super)
	}

	nMethods := 1 + w.rng.Intn(2*w.p.AvgMethods)
	for i := 0; i < nMethods; i++ {
		mname := w.memberName(true)
		desc := w.methodDesc()
		static := w.rng.Intn(5) == 0
		w.genMethod(b, gc, mname, desc, static, super)
	}
	if w.p.NumericTables && w.rng.Intn(2) == 0 {
		w.genTableInit(b, gc)
	}

	cf, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	if err := classfile.Verify(cf); err != nil {
		return nil, 0, err
	}
	size, err := strippedSize(cf)
	if err != nil {
		return nil, 0, err
	}
	w.classes = append(w.classes, gc)
	return cf, size, nil
}

func hasIface(cf *classfile.ClassFile, name string) bool {
	for _, i := range cf.Interfaces {
		if cf.ClassNameAt(i) == name {
			return true
		}
	}
	return false
}

func (w *world) genInterface() (*classfile.ClassFile, int, error) {
	pkg := w.pkgs[w.rng.Intn(len(w.pkgs))]
	name := pkg + "/" + w.className()
	b := classfile.NewBuilder(name, "java/lang/Object",
		classfile.AccPublic|classfile.AccInterface|classfile.AccAbstract)
	b.AttachSourceFile(simpleOf(name) + ".java")
	gc := &genClass{name: name, iface: true}
	n := 1 + w.rng.Intn(4)
	for i := 0; i < n; i++ {
		mname := w.memberName(true)
		desc := w.methodDesc()
		b.AddMethod(classfile.AccPublic|classfile.AccAbstract, mname, desc)
		gc.methods = append(gc.methods, genMember{name: mname, desc: desc})
	}
	cf, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	size, err := strippedSize(cf)
	if err != nil {
		return nil, 0, err
	}
	w.ifaces = append(w.ifaces, gc)
	w.classes = append(w.classes, gc)
	return cf, size, nil
}

// methodDesc draws a method descriptor from a realistic shape
// distribution.
func (w *world) methodDesc() string {
	rets := []string{"V", "V", "V", "I", "I", "Z", "Ljava/lang/String;", "D", "J", "Ljava/lang/Object;"}
	ret := pick(w.rng, rets)
	n := w.rng.Intn(4)
	var sb strings.Builder
	sb.WriteByte('(')
	for i := 0; i < n; i++ {
		sb.WriteString(pick(w.rng, []string{"I", "I", "Ljava/lang/String;", "J", "D", "Z", "[I", "Ljava/lang/Object;"}))
	}
	sb.WriteByte(')')
	sb.WriteString(ret)
	return sb.String()
}

func (w *world) sentence() string {
	n := 2 + w.rng.Intn(7)
	words := make([]string, n)
	for i := range words {
		words[i] = pick(w.rng, stringSentenceWords)
	}
	return strings.Join(words, " ")
}

// simpleOf returns the simple name of a binary class name.
func simpleOf(binary string) string {
	_, simple := classfile.SplitClassName(binary)
	return simple
}
