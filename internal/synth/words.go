// Package synth generates deterministic, parseable corpora of Java class
// files whose statistical shape matches the paper's benchmarks (Table 1):
// package trees with Zipf-reused names, inheritance over a simulated
// standard library, and method bodies produced by a small stack-correct
// code generator. Every generated file round-trips through the classfile
// codec and passes structural verification.
package synth

// Identifier material. Names are composed from these lists with a
// deterministic RNG; reuse across classes follows a Zipf distribution so
// constant-pool sharing behaves like real software.

var nounWords = []string{
	"item", "value", "node", "list", "table", "index", "buffer", "stream",
	"count", "name", "state", "event", "handler", "widget", "panel", "frame",
	"image", "color", "font", "point", "size", "bounds", "cache", "entry",
	"parent", "child", "owner", "target", "source", "result", "status",
	"config", "option", "filter", "format", "header", "footer", "label",
	"model", "view", "queue", "stack", "graph", "edge", "vertex", "token",
	"symbol", "scope", "type", "field", "method", "clazz", "pool", "slot",
	"offset", "length", "width", "height", "depth", "level", "rank", "score",
	"total", "delta", "ratio", "factor", "weight", "mask", "flags", "bits",
	"data", "info", "spec", "desc", "attr", "prop", "key", "hash", "seed",
}

var verbWords = []string{
	"get", "set", "add", "remove", "insert", "delete", "find", "lookup",
	"create", "build", "make", "init", "reset", "clear", "update", "refresh",
	"compute", "calculate", "process", "handle", "dispatch", "fire", "notify",
	"read", "write", "parse", "format", "encode", "decode", "compress",
	"expand", "open", "close", "start", "stop", "run", "execute", "apply",
	"check", "validate", "verify", "test", "compare", "merge", "split",
	"copy", "clone", "swap", "sort", "search", "scan", "visit", "walk",
	"draw", "paint", "render", "layout", "resize", "move", "show", "hide",
	"load", "store", "save", "flush", "push", "pop", "peek", "next", "prev",
}

var adjWords = []string{
	"Abstract", "Base", "Basic", "Simple", "Default", "Generic", "Common",
	"Shared", "Local", "Remote", "Fast", "Lazy", "Eager", "Cached", "Sorted",
	"Linked", "Indexed", "Packed", "Buffered", "Filtered", "Composite",
	"Nested", "Inner", "Outer", "Custom", "Virtual", "Dynamic", "Static",
}

var typeWords = []string{
	"Manager", "Handler", "Builder", "Factory", "Adapter", "Wrapper",
	"Visitor", "Listener", "Iterator", "Context", "Registry", "Resolver",
	"Parser", "Scanner", "Lexer", "Emitter", "Encoder", "Decoder", "Reader",
	"Writer", "Buffer", "Stream", "Table", "Entry", "Node", "Tree", "Graph",
	"Panel", "Frame", "Dialog", "Widget", "Canvas", "Layout", "Renderer",
	"Model", "Event", "Action", "Command", "Task", "Worker", "Engine",
	"Filter", "Cache", "Pool", "Queue", "Stack", "Set", "Map", "Helper",
	"Util", "Support", "Impl", "Proxy", "Stub", "Info", "Descriptor",
}

var stringSentenceWords = []string{
	"the", "a", "an", "of", "in", "to", "for", "with", "on", "at", "from",
	"error", "warning", "invalid", "missing", "unexpected", "unknown",
	"argument", "parameter", "value", "file", "stream", "index", "bounds",
	"null", "empty", "found", "not", "cannot", "failed", "unable", "open",
	"close", "read", "write", "parse", "load", "save", "element", "state",
	"connection", "timeout", "resource", "property", "default", "internal",
	"buffer", "overflow", "underflow", "type", "format", "version",
}

// Simulated standard-library surface (JDK 1.2 era): the classes, fields
// and methods generated code may reference externally.
type stdMember struct {
	name, desc string
	static     bool
}

type stdClass struct {
	name    string
	super   string
	iface   bool
	methods []stdMember
	fields  []stdMember
}

// hasDefaultCtor reports whether generated code can instantiate the class
// with `new C(); invokespecial <init>()V`.
func (c *stdClass) hasDefaultCtor() bool {
	for _, m := range c.methods {
		if m.name == "<init>" && m.desc == "()V" {
			return true
		}
	}
	return false
}

// stdCallSite is one callable stdlib member, precomputed for the code
// generator.
type stdCallSite struct {
	class  string
	member stdMember
	iface  bool
}

var stdStatics, stdInstance []stdCallSite

func init() {
	for i := range stdlib {
		c := &stdlib[i]
		for _, m := range c.methods {
			if m.name == "<init>" {
				continue
			}
			switch {
			case m.static:
				stdStatics = append(stdStatics, stdCallSite{class: c.name, member: m})
			case c.hasDefaultCtor() && !c.iface:
				stdInstance = append(stdInstance, stdCallSite{class: c.name, member: m})
			}
		}
	}
}

var stdlib = []stdClass{
	{name: "java/lang/Object", methods: []stdMember{
		{name: "<init>", desc: "()V"},
		{name: "toString", desc: "()Ljava/lang/String;"},
		{name: "hashCode", desc: "()I"},
		{name: "equals", desc: "(Ljava/lang/Object;)Z"},
		{name: "getClass", desc: "()Ljava/lang/Class;"},
	}},
	{name: "java/lang/String", super: "java/lang/Object", methods: []stdMember{
		{name: "length", desc: "()I"},
		{name: "charAt", desc: "(I)C"},
		{name: "indexOf", desc: "(I)I"},
		{name: "substring", desc: "(II)Ljava/lang/String;"},
		{name: "equals", desc: "(Ljava/lang/Object;)Z"},
		{name: "valueOf", desc: "(I)Ljava/lang/String;", static: true},
		{name: "concat", desc: "(Ljava/lang/String;)Ljava/lang/String;"},
	}},
	{name: "java/lang/StringBuffer", super: "java/lang/Object", methods: []stdMember{
		{name: "<init>", desc: "()V"},
		{name: "append", desc: "(Ljava/lang/String;)Ljava/lang/StringBuffer;"},
		{name: "append", desc: "(I)Ljava/lang/StringBuffer;"},
		{name: "toString", desc: "()Ljava/lang/String;"},
	}},
	{name: "java/lang/System", super: "java/lang/Object",
		fields: []stdMember{
			{name: "out", desc: "Ljava/io/PrintStream;", static: true},
			{name: "err", desc: "Ljava/io/PrintStream;", static: true},
		},
		methods: []stdMember{
			{name: "currentTimeMillis", desc: "()J", static: true},
			{name: "arraycopy", desc: "(Ljava/lang/Object;ILjava/lang/Object;II)V", static: true},
		}},
	{name: "java/io/PrintStream", super: "java/lang/Object", methods: []stdMember{
		{name: "println", desc: "(Ljava/lang/String;)V"},
		{name: "println", desc: "(I)V"},
		{name: "print", desc: "(Ljava/lang/String;)V"},
		{name: "flush", desc: "()V"},
	}},
	{name: "java/lang/Math", super: "java/lang/Object", methods: []stdMember{
		{name: "abs", desc: "(I)I", static: true},
		{name: "max", desc: "(II)I", static: true},
		{name: "min", desc: "(II)I", static: true},
		{name: "sqrt", desc: "(D)D", static: true},
		{name: "floor", desc: "(D)D", static: true},
	}},
	{name: "java/util/Vector", super: "java/lang/Object", methods: []stdMember{
		{name: "<init>", desc: "()V"},
		{name: "addElement", desc: "(Ljava/lang/Object;)V"},
		{name: "elementAt", desc: "(I)Ljava/lang/Object;"},
		{name: "size", desc: "()I"},
		{name: "removeElementAt", desc: "(I)V"},
	}},
	{name: "java/util/Hashtable", super: "java/lang/Object", methods: []stdMember{
		{name: "<init>", desc: "()V"},
		{name: "put", desc: "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;"},
		{name: "get", desc: "(Ljava/lang/Object;)Ljava/lang/Object;"},
		{name: "size", desc: "()I"},
	}},
	{name: "java/util/Enumeration", super: "java/lang/Object", iface: true, methods: []stdMember{
		{name: "hasMoreElements", desc: "()Z"},
		{name: "nextElement", desc: "()Ljava/lang/Object;"},
	}},
	{name: "java/lang/Runnable", super: "java/lang/Object", iface: true, methods: []stdMember{
		{name: "run", desc: "()V"},
	}},
	{name: "java/lang/Exception", super: "java/lang/Object", methods: []stdMember{
		{name: "<init>", desc: "()V"},
		{name: "<init>", desc: "(Ljava/lang/String;)V"},
		{name: "getMessage", desc: "()Ljava/lang/String;"},
	}},
	{name: "java/lang/RuntimeException", super: "java/lang/Exception", methods: []stdMember{
		{name: "<init>", desc: "(Ljava/lang/String;)V"},
	}},
	{name: "java/io/IOException", super: "java/lang/Exception", methods: []stdMember{
		{name: "<init>", desc: "()V"},
	}},
	{name: "java/lang/Integer", super: "java/lang/Object", methods: []stdMember{
		{name: "<init>", desc: "(I)V"},
		{name: "intValue", desc: "()I"},
		{name: "parseInt", desc: "(Ljava/lang/String;)I", static: true},
		{name: "toString", desc: "(I)Ljava/lang/String;", static: true},
	}},
	{name: "java/awt/Component", super: "java/lang/Object", methods: []stdMember{
		{name: "repaint", desc: "()V"},
		{name: "setSize", desc: "(II)V"},
		{name: "getWidth", desc: "()I"},
		{name: "getHeight", desc: "()I"},
		{name: "setVisible", desc: "(Z)V"},
	}},
	{name: "java/awt/Graphics", super: "java/lang/Object", methods: []stdMember{
		{name: "drawLine", desc: "(IIII)V"},
		{name: "drawRect", desc: "(IIII)V"},
		{name: "fillRect", desc: "(IIII)V"},
		{name: "drawString", desc: "(Ljava/lang/String;II)V"},
	}},
}

// stdlibByName indexes the simulated library.
var stdlibByName = func() map[string]*stdClass {
	m := make(map[string]*stdClass, len(stdlib))
	for i := range stdlib {
		m[stdlib[i].name] = &stdlib[i]
	}
	return m
}()
