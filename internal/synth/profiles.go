package synth

import "fmt"

// Profiles returns the 19 corpus profiles mirroring the paper's Table 1
// benchmarks. TargetKB matches the paper's sj0r column (stripped,
// uncompressed classfile bytes); the other knobs approximate each
// program's character as described in Table 1.
func Profiles() []Profile {
	return []Profile{
		{Name: "rt", TargetKB: 8937, PackageCount: 12, AvgMethods: 8, AvgFields: 4, BodyStmts: 6},
		{Name: "swingall", TargetKB: 3265, PackageCount: 10, AvgMethods: 9, AvgFields: 5, BodyStmts: 6},
		{Name: "tools", TargetKB: 1557, PackageCount: 6, AvgMethods: 7, AvgFields: 3, BodyStmts: 8, StringRich: true},
		{Name: "icebrowserbean", TargetKB: 226, PackageCount: 3, AvgMethods: 6, AvgFields: 4, BodyStmts: 6, StringRich: true},
		{Name: "jmark20", TargetKB: 309, PackageCount: 3, AvgMethods: 6, AvgFields: 3, BodyStmts: 9},
		{Name: "visaj", TargetKB: 2189, PackageCount: 8, AvgMethods: 8, AvgFields: 5, BodyStmts: 6},
		{Name: "ImageEditor", TargetKB: 454, PackageCount: 4, AvgMethods: 7, AvgFields: 4, BodyStmts: 6},
		{Name: "Hanoi", TargetKB: 86, PackageCount: 2, AvgMethods: 5, AvgFields: 3, BodyStmts: 5},
		{Name: "Hanoi_big", TargetKB: 56, PackageCount: 2, AvgMethods: 5, AvgFields: 3, BodyStmts: 5},
		{Name: "Hanoi_jax", TargetKB: 38, PackageCount: 1, AvgMethods: 5, AvgFields: 3, BodyStmts: 5, Obfuscated: true},
		{Name: "javafig", TargetKB: 357, PackageCount: 4, AvgMethods: 7, AvgFields: 4, BodyStmts: 6},
		{Name: "javafig_dashO", TargetKB: 269, PackageCount: 3, AvgMethods: 7, AvgFields: 4, BodyStmts: 6, Obfuscated: true},
		{Name: "201_compress", TargetKB: 15, PackageCount: 1, AvgMethods: 5, AvgFields: 4, BodyStmts: 9},
		{Name: "202_jess", TargetKB: 270, PackageCount: 3, AvgMethods: 6, AvgFields: 3, BodyStmts: 6, StringRich: true},
		{Name: "205_raytrace", TargetKB: 52, PackageCount: 1, AvgMethods: 6, AvgFields: 4, BodyStmts: 8},
		{Name: "209_db", TargetKB: 10, PackageCount: 1, AvgMethods: 5, AvgFields: 3, BodyStmts: 6, StringRich: true},
		{Name: "213_javac", TargetKB: 516, PackageCount: 5, AvgMethods: 8, AvgFields: 3, BodyStmts: 8, StringRich: true},
		{Name: "222_mpegaudio", TargetKB: 120, PackageCount: 1, AvgMethods: 6, AvgFields: 4, BodyStmts: 9, NumericTables: true},
		{Name: "228_jack", TargetKB: 115, PackageCount: 2, AvgMethods: 6, AvgFields: 3, BodyStmts: 7, StringRich: true},
	}
}

// ProfileByName looks up a built-in profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("synth: unknown profile %q", name)
}

// Description gives the Table 1 one-line description for a profile name.
func Description(name string) string {
	desc := map[string]string{
		"rt":             "Java 1.2 runtime",
		"swingall":       "Sun's new set of GUI widgets (JFC/Swing 1.1)",
		"tools":          "Java 1.2 tools (javadoc, javac, jar, ...)",
		"icebrowserbean": "HTML browser",
		"jmark20":        "Byte's java benchmark program",
		"visaj":          "Visual GUI builder",
		"ImageEditor":    "Image editor, distributed with VisaJ",
		"Hanoi":          "Demo applet distributed with Jax",
		"Hanoi_big":      "Hanoi, partially jax'd",
		"Hanoi_jax":      "Hanoi, fully jax'd",
		"javafig":        "Java version of xfig",
		"javafig_dashO":  "javafig, processed by dashO",
		"201_compress":   "Modified Lempel-Ziv method (LZW)",
		"202_jess":       "Java Expert Shell System",
		"205_raytrace":   "Raytracing a dinosaur",
		"209_db":         "Memory-resident database functions",
		"213_javac":      "Sun's JDK 1.0.2 Java compiler",
		"222_mpegaudio":  "Decompresses MPEG Layer 3 audio",
		"228_jack":       "A Java parser generator (PCCTS-based)",
	}
	return desc[name]
}
